// Netstack: the disaggregated IO path over an actual network. Several
// BlockServers listen on loopback TCP; compute-side worker threads
// (goroutines) drain their bound queue pairs and forward each IO over the
// frontend RPC protocol, exactly like Figure 1's architecture. The example
// reports per-BlockServer traffic and per-worker-thread request counts —
// skewness straight through the wire.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"ebslab/internal/cluster"
	"ebslab/internal/hypervisor"
	"ebslab/internal/netblock"
	"ebslab/internal/storage"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

func main() {
	// A tiny fleet: one compute node, a handful of disks.
	cfg := workload.DefaultConfig()
	cfg.Seed = 3
	cfg.DCs = 1
	cfg.NodesPerDC = 1
	cfg.BSPerDC = 3
	cfg.BSPerCluster = 3
	cfg.Users = 2
	cfg.DurationSec = 10
	fleet, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	top := fleet.Topology

	// Storage cluster: one netblock server per BlockServer, over TCP.
	nBS := len(top.StorageNodes)
	servers := make([]*netblock.Server, nBS)
	clients := make([]*netblock.Client, nBS)
	for b := 0; b < nBS; b++ {
		servers[b] = netblock.NewServer(storage.NewBlockServer(storage.NewChunkServer(8 << 20)))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go servers[b].Serve(l)
		if clients[b], err = netblock.Dial("tcp", l.Addr().String()); err != nil {
			log.Fatal(err)
		}
		defer clients[b].Close()
		defer servers[b].Close()
	}
	// Register every segment with its BlockServer (16 MiB logical each, to
	// keep the demo light; offsets are folded into this window).
	const segLogical = 16 << 20
	for seg := range top.Segments {
		bs := fleet.Seg2BS.BSOf(cluster.SegmentID(seg))
		if err := clients[bs].AddSegment(storage.SegKey(seg), segLogical/storage.BlockSize); err != nil {
			log.Fatal(err)
		}
	}

	// Compute side: per-worker-thread IO queues under the production
	// round-robin binding.
	binding := hypervisor.RoundRobin(top, 0)
	queues := make([]chan workload.Event, binding.WTs)
	for i := range queues {
		queues[i] = make(chan workload.Event, 1024)
	}
	wtOf := map[cluster.QPID]int8{}
	for i, qp := range binding.QPs {
		wtOf[qp] = binding.WTOf[i]
	}

	// Worker threads: drain the queue, forward over RPC.
	var wg sync.WaitGroup
	served := make([]int, binding.WTs)
	for wt := 0; wt < binding.WTs; wt++ {
		wt := wt
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, storage.BlockSize)
			for ev := range queues[wt] {
				vd := top.VDOfQP(ev.QP)
				seg := top.SegmentOfOffset(vd, ev.Offset)
				bs := fleet.Seg2BS.BSOf(seg)
				// Fold the offset into the demo segment window, one block.
				off := (ev.Offset % segLogical) / storage.BlockSize * storage.BlockSize
				if off+storage.BlockSize > segLogical {
					off = 0
				}
				var err error
				if ev.Op == trace.OpWrite {
					err = clients[bs].Write(storage.SegKey(seg), off, buf)
				} else {
					_, err = clients[bs].Read(storage.SegKey(seg), off, storage.BlockSize)
				}
				if err != nil {
					log.Fatalf("WT%d: %v", wt, err)
				}
				served[wt]++
			}
		}()
	}

	// Submit sampled IOs from the generator into the bound queues.
	var submitted int
	for vd := range top.VDs {
		fleet.GenEvents(cluster.VDID(vd), cfg.DurationSec, 4, func(ev workload.Event) {
			if submitted >= 2000 {
				return
			}
			submitted++
			queues[wtOf[ev.QP]] <- ev
		})
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()

	fmt.Printf("pushed %d IOs through %d worker threads to %d BlockServers over TCP\n\n",
		submitted, binding.WTs, nBS)
	fmt.Println("worker-thread request counts (round-robin binding):")
	for wt, n := range served {
		fmt.Printf("  WT%d: %5d\n", wt, n)
	}
	fmt.Println("\nper-BlockServer traffic:")
	for b := 0; b < nBS; b++ {
		r, w, _, err := clients[b].Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  BS%d: read %6.2f MiB, write %6.2f MiB (%d RPCs)\n",
			b, float64(r)/(1<<20), float64(w)/(1<<20), servers[b].Requests())
	}
}
