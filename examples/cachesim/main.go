// Cachesim: the §7 caching scenario. One virtual disk from a synthesized
// fleet is replayed through FIFO, LRU, and a FrozenHot-style pinned cache at
// several block sizes, then the same stream is evaluated for latency gains
// with the cache deployed on the compute node (CN-cache) versus the
// BlockServer (BS-cache).
package main

import (
	"fmt"
	"log"

	"ebslab/internal/cache"
	"ebslab/internal/latency"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Seed = 11
	cfg.DCs = 1
	cfg.NodesPerDC = 8
	cfg.BSPerDC = 6
	cfg.BSPerCluster = 6
	cfg.Users = 8
	cfg.DurationSec = 180

	fleet, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Pick the write-hottest disk: the one with the biggest hot range
	// appetite.
	best, bestScore := 0, 0.0
	for vd := range fleet.Models {
		m := &fleet.Models[vd]
		if score := m.HotAccessFrac * m.MeanWriteBps; score > bestScore {
			best, bestScore = vd, score
		}
	}
	m := &fleet.Models[best]
	fmt.Printf("disk %d: hot range %d MiB at offset %d MiB, hot write frac %.0f%%\n\n",
		best, m.HotspotLen>>20, m.HotspotOffset>>20, 100*m.HotAccessFrac)

	var accesses []cache.Access
	fleet.GenEvents(fleet.Models[best].VD, cfg.DurationSec, 1, func(ev workload.Event) {
		accesses = append(accesses, cache.Access{
			TimeUS: ev.TimeUS, Offset: ev.Offset, Size: ev.Size,
			Write: ev.Op == trace.OpWrite,
		})
	})
	fmt.Printf("replaying %d IOs\n\n", len(accesses))

	capBytes := fleet.Topology.VDs[best].Capacity
	fmt.Printf("%-9s %8s %8s %10s\n", "block", "FIFO", "LRU", "FrozenHot")
	for _, mib := range []int64{64, 256, 1024, 2048} {
		blockSize := mib << 20
		pages := int(blockSize / cache.PageSize)
		rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
		fifo := cache.Simulate(cache.NewFIFO(pages), accesses)
		lru := cache.Simulate(cache.NewLRU(pages), accesses)
		var fcRatio float64
		if rep.Hottest >= 0 {
			fc := cache.Simulate(cache.NewFrozen(rep.Hottest*blockSize, blockSize), accesses)
			fcRatio = fc.HitRatio()
		}
		fmt.Printf("%4d MiB  %7.1f%% %7.1f%% %9.1f%%\n",
			mib, 100*fifo.HitRatio(), 100*lru.HitRatio(), 100*fcRatio)
	}

	// Latency gains by deployment location for a 2 GiB frozen cache.
	blockSize := int64(2048) << 20
	rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
	if rep.Hottest < 0 {
		log.Fatal("no hottest block found")
	}
	model := latency.Default()
	fmt.Printf("\nlatency gain with a 2 GiB frozen cache (lower = better):\n")
	fmt.Printf("%-10s %-6s %8s %8s %8s %10s\n", "location", "op", "p0", "p50", "p99", "hit ratio")
	for _, loc := range []latency.CacheLocation{latency.CNCache, latency.BSCache} {
		for _, g := range latency.EvaluateGain(model, accesses, rep.Hottest*blockSize, blockSize, loc, 1) {
			fmt.Printf("%-10s %-6s %7.1f%% %7.1f%% %7.1f%% %9.1f%%\n",
				loc, g.Op, 100*g.P0, 100*g.P50, 100*g.P99, 100*g.HitRatio)
		}
	}
}
