// Balancer: the §6 storage-cluster scenario. A cluster of BlockServers
// serves segments whose write traffic is volatile; the Appendix A balancer
// migrates hot segments each period. The example compares the five importer
// selection policies of Figure 4(b) on the same traffic and shows why
// picking the currently-coldest BS keeps re-creating hotspots while the
// oracle (and to a lesser degree prediction) keeps placements valid longer.
package main

import (
	"fmt"
	"math/rand"

	"ebslab/internal/balancer"
	"ebslab/internal/cluster"
	"ebslab/internal/predict"
	"ebslab/internal/stats"
)

func main() {
	const (
		nBS      = 8
		nSegs    = 96
		nPeriods = 120
	)
	rng := rand.New(rand.NewSource(42))

	// Place segments round-robin and synthesize volatile write traffic:
	// every segment has a base load, and a rotating subset bursts hard for
	// a stretch of periods (hotspots move, so yesterday's coldest BS is a
	// poor bet for tomorrow).
	placement := cluster.NewSegmentMap(nSegs, nBS)
	traffic := make([][]balancer.RW, nSegs)
	for s := 0; s < nSegs; s++ {
		placement.Assign(cluster.SegmentID(s), cluster.StorageNodeID(s%nBS))
		traffic[s] = make([]balancer.RW, nPeriods)
		base := 4 + 4*rng.Float64()
		burstAt := rng.Intn(nPeriods)
		burstLen := 10 + rng.Intn(20)
		for p := 0; p < nPeriods; p++ {
			w := base * (0.8 + 0.4*rng.Float64())
			if p >= burstAt && p < burstAt+burstLen {
				w += 60
			}
			traffic[s][p] = balancer.RW{W: w, R: w * 0.2}
		}
	}

	policies := []balancer.ImporterPolicy{
		&balancer.RandomPolicy{Rng: rand.New(rand.NewSource(1))},
		balancer.MinTrafficPolicy{},
		balancer.MinVariancePolicy{},
		balancer.LunulePolicy{Window: 4},
		&balancer.PredictorPolicy{
			Label: "arima-predict",
			New:   func() predict.Predictor { return predict.NewARIMA(4, 1) },
		},
		balancer.OraclePolicy{},
	}

	fmt.Printf("%-16s %10s %12s %14s %14s\n",
		"importer", "migrations", "median-ivl", "final write-CoV", "mean write-CoV")
	for _, p := range policies {
		res := balancer.Run(placement, traffic, p, balancer.DefaultConfig())
		ivls := balancer.OutMigrationIntervals(res.Migrations, nPeriods)
		fmt.Printf("%-16s %10d %12.3f %14.3f %14.3f\n",
			res.Policy, len(res.Migrations), stats.Median(ivls),
			res.WriteCoV[nPeriods-1], stats.Mean(stats.DropNaN(res.WriteCoV)))
	}

	// Figure 5(c): adding a read pass balances reads without hurting
	// writes, because segments are read- xor write-dominant.
	for s := 0; s < nSegs; s += 7 { // make some segments read-hot
		for p := range traffic[s] {
			traffic[s][p].R = 80
			traffic[s][p].W = 1
		}
	}
	cfg := balancer.DefaultConfig()
	wo := balancer.Run(placement, traffic, balancer.OraclePolicy{}, cfg)
	cfg.Mode = balancer.WriteThenRead
	wtr := balancer.Run(placement, traffic, balancer.OraclePolicy{}, cfg)
	fmt.Printf("\nwrite-only:      mean read-CoV %.3f, mean write-CoV %.3f\n",
		stats.Mean(stats.DropNaN(wo.ReadCoV)), stats.Mean(stats.DropNaN(wo.WriteCoV)))
	fmt.Printf("write-then-read: mean read-CoV %.3f, mean write-CoV %.3f\n",
		stats.Mean(stats.DropNaN(wtr.ReadCoV)), stats.Mean(stats.DropNaN(wtr.WriteCoV)))
}
