// Quickstart: generate a small synthetic EBS fleet, push IO through the
// full stack (hypervisor worker threads -> throttle -> BlockServer ->
// ChunkServer), and print the headline skewness statistics the paper is
// about. Also demonstrates the storage substrate directly by writing and
// reading real bytes through a BlockServer.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ebslab/internal/core"
	"ebslab/internal/ebs"
	"ebslab/internal/stats"
	"ebslab/internal/storage"
	"ebslab/internal/workload"
)

func main() {
	// 1. A small fleet: 1 DC, 16 compute nodes, ~60 VMs.
	cfg := workload.DefaultConfig()
	cfg.Seed = 7
	cfg.DCs = 1
	cfg.NodesPerDC = 16
	cfg.BSPerDC = 6
	cfg.BSPerCluster = 6
	cfg.Users = 12
	cfg.DurationSec = 120

	fleet, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d VMs, %d VDs, %d QPs, %d segments on %d BlockServers\n",
		len(fleet.Topology.VMs), len(fleet.Topology.VDs), len(fleet.Topology.QPs),
		len(fleet.Topology.Segments), len(fleet.Topology.StorageNodes))

	// 2. Skewness at a glance: Table 3-style statistics.
	study := core.NewStudyFromFleet(fleet)
	fmt.Println()
	fmt.Print(study.Table3Baseline().Render())

	// 3. End-to-end IO: simulate 30 seconds across all CPUs and look at
	// latency. The worker count never changes the result, only the
	// wall-clock time.
	ds, err := ebs.New(fleet).Run(context.Background(), ebs.Options{
		DurationSec: 30, TraceSampleEvery: 1, EventSampleEvery: 8, MaxVDs: 30,
		Workers: 0, // one worker per CPU
	})
	if err != nil {
		log.Fatal(err)
	}
	var lat []float64
	for i := range ds.Trace {
		lat = append(lat, ds.Trace[i].TotalLatency())
	}
	fmt.Printf("\nend-to-end: %d IOs, p50 %.0f us, p99 %.0f us\n",
		len(lat), stats.Quantile(lat, 0.5), stats.Quantile(lat, 0.99))

	// 4. The storage substrate is a real engine: write bytes through a
	// BlockServer and read them back after garbage collection.
	bs := storage.NewBlockServer(storage.NewChunkServer(16 << 10))
	if err := bs.AddSegment(1, 64<<20); err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("skew"), storage.BlockSize/4)
	for i := 0; i < 32; i++ { // overwrite to build garbage
		if err := bs.Write(1, 0, payload); err != nil {
			log.Fatal(err)
		}
	}
	freed, err := bs.CollectGarbage(0.5)
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, storage.BlockSize)
	if _, err := bs.Read(1, 0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("storage round trip mismatch")
	}
	fmt.Printf("storage substrate: GC reclaimed %d chunks; data intact\n", freed)
}
