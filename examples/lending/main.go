// Lending: the §5 scenario end-to-end. A database VM mounts several disks;
// one of them bursts and slams into its individual throughput cap while the
// VM as a whole has plenty of purchased-but-idle capacity. The example
// measures the Resource Available Rate during the throttle, then enables
// Appendix B's limited lending at several rates and reports how much of the
// throttling it removes — including the backfire case the paper warns
// about.
package main

import (
	"fmt"

	"ebslab/internal/stats"
	"ebslab/internal/throttle"
)

func main() {
	// A 4-disk VM: one hot data disk (index 0) plus three mostly idle
	// disks. Caps follow a typical mid-tier subscription.
	caps := []throttle.Caps{
		{Tput: 120e6, IOPS: 6000},
		{Tput: 120e6, IOPS: 6000},
		{Tput: 200e6, IOPS: 10000},
		{Tput: 200e6, IOPS: 10000},
	}
	const dur = 300
	demand := make([][]throttle.Demand, len(caps))
	for vd := range demand {
		demand[vd] = make([]throttle.Demand, dur)
	}
	for t := 0; t < dur; t++ {
		// Disk 0: steady 60 MB/s writes with a 4x burst for a minute.
		rate := 60e6
		if t >= 60 && t < 120 {
			rate = 260e6
		}
		demand[0][t] = throttle.Demand{WriteBps: rate, WriteIOPS: rate / 16384}
		// Disk 1: light logging. Disks 2, 3: idle backup volumes.
		demand[1][t] = throttle.Demand{WriteBps: 8e6, WriteIOPS: 500}
	}

	base := throttle.Simulate(caps, demand)
	fmt.Printf("without lending: disk0 throttled %d of %d seconds\n",
		base.ThrottledSecs[0], dur)

	var rars []float64
	for _, ev := range base.Events {
		rars = append(rars, ev.RAR)
	}
	fmt.Printf("median RAR during throttle: %.0f%% of the VM's cap sits idle\n\n",
		100*stats.Median(rars))

	fmt.Println("limited lending (Appendix B):")
	for _, p := range []float64{0.2, 0.4, 0.6, 0.8} {
		lent := throttle.SimulateWithLending(caps, demand, throttle.Lending{Rate: p, PeriodSec: 60})
		gain := throttle.LendingGain(base, lent)
		fmt.Printf("  p=%.1f: throttled %3d s (gain %+.2f), lender throttled %d s\n",
			p, lent.ThrottledSecs[0], gain, lent.ThrottledSecs[1]+lent.ThrottledSecs[2]+lent.ThrottledSecs[3])
	}

	// The backfire: if a lender bursts right after lending its cap away,
	// aggressive lending hurts.
	fmt.Println("\nbackfire scenario (lender bursts after lending):")
	// The backup disks now carry steady load (small pool), and disk 1 runs
	// just under its *nominal* caps while disk 0 is borrowing: fine without
	// lending, throttled once part of its cap was lent away and the
	// depleted pool cannot lend it back.
	for t := 50; t < 120; t++ {
		demand[2][t] = throttle.Demand{WriteBps: 120e6, WriteIOPS: 6000}
		demand[3][t] = throttle.Demand{WriteBps: 120e6, WriteIOPS: 6000}
	}
	for t := 61; t < 119; t++ {
		demand[1][t] = throttle.Demand{WriteBps: 118e6, WriteIOPS: 5900}
	}
	base2 := throttle.Simulate(caps, demand)
	for _, p := range []float64{0.4, 0.8} {
		lent := throttle.SimulateWithLending(caps, demand, throttle.Lending{Rate: p, PeriodSec: 60})
		fmt.Printf("  p=%.1f: gain %+.2f (disk1 throttled %d s vs %d s without lending)\n",
			p, throttle.LendingGain(base2, lent), lent.ThrottledSecs[1], base2.ThrottledSecs[1])
	}
}
