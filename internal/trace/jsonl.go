package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ebslab/internal/cluster"
)

// jsonRecord is the JSONL wire form of Record (field names chosen for
// interoperability with common trace tooling).
type jsonRecord struct {
	TraceID uint64     `json:"trace_id"`
	TimeUS  int64      `json:"time_us"`
	Op      string     `json:"op"`
	Size    int32      `json:"size"`
	Offset  int64      `json:"offset"`
	DC      int32      `json:"dc"`
	Node    int32      `json:"node"`
	User    int32      `json:"user"`
	VM      int32      `json:"vm"`
	VD      int32      `json:"vd"`
	QP      int32      `json:"qp"`
	WT      int8       `json:"wt"`
	Storage int32      `json:"storage"`
	Segment int32      `json:"segment"`
	Latency [5]float32 `json:"latency_us"`
}

// WriteTraceJSONL writes records as one JSON object per line.
func WriteTraceJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		r := &records[i]
		jr := jsonRecord{
			TraceID: r.TraceID, TimeUS: r.TimeUS, Op: r.Op.String(),
			Size: r.Size, Offset: r.Offset,
			DC: int32(r.DC), Node: int32(r.Node), User: int32(r.User),
			VM: int32(r.VM), VD: int32(r.VD), QP: int32(r.QP), WT: r.WT,
			Storage: int32(r.Storage), Segment: int32(r.Segment),
			Latency: r.Latency,
		}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("trace: jsonl encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL reads records written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for line := 1; ; line++ {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		rec := Record{
			TraceID: jr.TraceID, TimeUS: jr.TimeUS,
			Size: jr.Size, Offset: jr.Offset,
			DC: cluster.DCID(jr.DC), Node: cluster.NodeID(jr.Node), User: cluster.UserID(jr.User),
			VM: cluster.VMID(jr.VM), VD: cluster.VDID(jr.VD), QP: cluster.QPID(jr.QP), WT: jr.WT,
			Storage: cluster.StorageNodeID(jr.Storage), Segment: cluster.SegmentID(jr.Segment),
			Latency: jr.Latency,
		}
		switch jr.Op {
		case "R":
			rec.Op = OpRead
		case "W":
			rec.Op = OpWrite
		default:
			return nil, fmt.Errorf("trace: jsonl line %d: bad op %q", line, jr.Op)
		}
		if err := checkRecord(&rec); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}
