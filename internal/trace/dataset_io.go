package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// Dataset file names within a directory.
const (
	FileTraceCSV      = "trace.csv"
	FileTraceJSONL    = "trace.jsonl"
	FileMetricCompute = "metric_compute.csv"
	FileMetricStorage = "metric_storage.csv"
	FileSpecVD        = "spec_vd.csv"
	FileSpecVM        = "spec_vm.csv"
)

// SaveDir writes the dataset's five files (plus a JSONL mirror of the
// trace) into dir, creating it if needed. The topology itself is not
// serialized — it is regenerable from the workload seed.
func SaveDir(ds *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: save dir: %w", err)
	}
	steps := []struct {
		name string
		fn   func(*os.File) error
	}{
		{FileTraceCSV, func(f *os.File) error { return WriteTraceCSV(f, ds.Trace) }},
		{FileTraceJSONL, func(f *os.File) error { return WriteTraceJSONL(f, ds.Trace) }},
		{FileMetricCompute, func(f *os.File) error { return WriteMetricCSV(f, ds.Compute) }},
		{FileMetricStorage, func(f *os.File) error { return WriteMetricCSV(f, ds.Storage) }},
		{FileSpecVD, func(f *os.File) error { return WriteVDSpecCSV(f, ds.VDSpecs) }},
		{FileSpecVM, func(f *os.File) error { return WriteVMSpecCSV(f, ds.VMSpecs) }},
	}
	for _, st := range steps {
		f, err := os.Create(filepath.Join(dir, st.name))
		if err != nil {
			return fmt.Errorf("trace: create %s: %w", st.name, err)
		}
		if err := st.fn(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: write %s: %w", st.name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: close %s: %w", st.name, err)
		}
	}
	return nil
}

// LoadDir reads a dataset saved by SaveDir. The Topology and Seg2BS fields
// are left nil (regenerate the fleet from its seed to get them);
// DurationSec is inferred from the metric rows.
func LoadDir(dir string) (*Dataset, error) {
	ds := &Dataset{}
	read := func(name string, fn func(*os.File) error) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("trace: open %s: %w", name, err)
		}
		defer f.Close()
		return fn(f)
	}
	if err := read(FileTraceCSV, func(f *os.File) error {
		var err error
		ds.Trace, err = ReadTraceCSV(f)
		return err
	}); err != nil {
		return nil, err
	}
	if err := read(FileMetricCompute, func(f *os.File) error {
		var err error
		ds.Compute, err = ReadMetricCSV(f)
		return err
	}); err != nil {
		return nil, err
	}
	if err := read(FileMetricStorage, func(f *os.File) error {
		var err error
		ds.Storage, err = ReadMetricCSV(f)
		return err
	}); err != nil {
		return nil, err
	}
	if err := read(FileSpecVD, func(f *os.File) error {
		var err error
		ds.VDSpecs, err = ReadVDSpecCSV(f)
		return err
	}); err != nil {
		return nil, err
	}
	if err := read(FileSpecVM, func(f *os.File) error {
		var err error
		ds.VMSpecs, err = ReadVMSpecCSV(f)
		return err
	}); err != nil {
		return nil, err
	}
	for i := range ds.Compute {
		if int(ds.Compute[i].Sec)+1 > ds.DurationSec {
			ds.DurationSec = int(ds.Compute[i].Sec) + 1
		}
	}
	return ds, nil
}
