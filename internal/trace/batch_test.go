package trace

import (
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
)

// randRecord synthesizes an arbitrary record from the rng.
func randRecord(rng *rand.Rand) Record {
	rec := Record{
		TraceID: rng.Uint64(),
		TimeUS:  rng.Int63n(1 << 40),
		Op:      Op(rng.Intn(2)),
		Size:    int32(rng.Intn(4<<20) &^ 4095),
		Offset:  rng.Int63n(1 << 42),
		DC:      cluster.DCID(rng.Intn(4)),
		Node:    cluster.NodeID(rng.Intn(100)),
		User:    cluster.UserID(rng.Intn(50)),
		VM:      cluster.VMID(rng.Intn(200)),
		VD:      cluster.VDID(rng.Intn(300)),
		QP:      cluster.QPID(rng.Intn(900)),
		WT:      int8(rng.Intn(16)),
		Storage: cluster.StorageNodeID(rng.Intn(40)),
		Segment: cluster.SegmentID(rng.Intn(2000)),
	}
	for s := range rec.Latency {
		rec.Latency[s] = float32(rng.Float64() * 1000)
	}
	return rec
}

// TestBatchRoundTrip checks Append/Record field fidelity across every column.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBatch(64)
	var want []Record
	for i := 0; i < 64; i++ {
		rec := randRecord(rng)
		want = append(want, rec)
		if got := b.Append(&rec); got != i {
			t.Fatalf("Append returned row %d, want %d", got, i)
		}
	}
	if !b.Full() || b.Len() != 64 {
		t.Fatalf("batch Len=%d Full=%v after filling capacity 64", b.Len(), b.Full())
	}
	for i, w := range want {
		if got := b.Record(i); got != w {
			t.Fatalf("row %d: %+v != %+v", i, got, w)
		}
		if gt, wt := b.TotalLatencyAt(i), w.TotalLatency(); gt != wt {
			t.Fatalf("row %d: TotalLatencyAt %v != %v", i, gt, wt)
		}
	}
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Fatalf("Len=%d Full=%v after Reset", b.Len(), b.Full())
	}
}

// TestBatchPool checks pooled acquisition: default-capacity batches come
// back empty with full capacity; odd capacities allocate fresh.
func TestBatchPool(t *testing.T) {
	b := GetBatch(DefaultBatchCap)
	rng := rand.New(rand.NewSource(2))
	rec := randRecord(rng)
	for !b.Full() {
		b.Append(&rec)
	}
	b.Release()

	b2 := GetBatch(DefaultBatchCap)
	if b2.Len() != 0 || b2.Cap() != DefaultBatchCap {
		t.Fatalf("pooled batch Len=%d Cap=%d, want 0/%d", b2.Len(), b2.Cap(), DefaultBatchCap)
	}
	b2.Release()

	small := GetBatch(7)
	if small.Cap() != 7 || small.Len() != 0 {
		t.Fatalf("custom batch Len=%d Cap=%d, want 0/7", small.Len(), small.Cap())
	}
	small.Release() // no-op for non-default capacity
}

// FuzzBatch drives append/reset/pool-reuse from a byte script against a
// plain []Record reference model and requires identical contents at every
// step.
func FuzzBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5, 0, 0, 6}, int64(1))
	f.Add([]byte{0}, int64(2))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 0, 9}, int64(3))
	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 8 // tiny, to exercise Full boundaries often
		b := GetBatch(capacity)
		defer b.Release()
		var ref []Record
		check := func() {
			if b.Len() != len(ref) {
				t.Fatalf("Len %d != ref %d", b.Len(), len(ref))
			}
			for i, w := range ref {
				if got := b.Record(i); got != w {
					t.Fatalf("row %d: %+v != %+v", i, got, w)
				}
			}
		}
		for _, op := range script {
			switch {
			case op == 0: // reset
				b.Reset()
				ref = ref[:0]
			case op%3 == 1: // pool round-trip (non-default cap: contents must survive release+reacquire semantics don't apply; simulate by fresh)
				b.Reset()
				ref = ref[:0]
				b.Release()
				b = GetBatch(capacity)
			default: // append (flushing the reference model when full)
				if b.Full() {
					b.Reset()
					ref = ref[:0]
				}
				rec := randRecord(rng)
				i := b.Append(&rec)
				if i != len(ref) {
					t.Fatalf("Append row %d, ref has %d", i, len(ref))
				}
				ref = append(ref, rec)
			}
			check()
		}
	})
}
