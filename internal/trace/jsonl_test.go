package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	in := []Record{
		{
			TraceID: 9, TimeUS: 123, Op: OpRead, Size: 4096, Offset: 1 << 31,
			DC: 2, Node: 3, User: 4, VM: 5, VD: 6, QP: 7, WT: 3, Storage: 8, Segment: 9,
			Latency: [NumStages]float32{1, 2, 3, 4, 5},
		},
		{TraceID: 10, Op: OpWrite, Size: 512},
	}
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, in); err != nil {
		t.Fatalf("WriteTraceJSONL: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("jsonl lines = %d", lines)
	}
	out, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadTraceJSONL: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("records = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestJSONLRejectsBadInput(t *testing.T) {
	if _, err := ReadTraceJSONL(strings.NewReader(`{"op":"X"}`)); err == nil {
		t.Fatal("bad opcode accepted")
	}
	if _, err := ReadTraceJSONL(strings.NewReader(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	for name, in := range map[string]string{
		"negative size":   `{"op":"R","size":-4096,"time_us":1}`,
		"zero size":       `{"op":"R","time_us":1}`,
		"negative offset": `{"op":"R","size":4096,"offset":-1}`,
		"negative time":   `{"op":"R","size":4096,"time_us":-1}`,
		"nan latency":     `{"op":"R","size":4096,"latency_us":[1,"NaN",1,1,1]}`,
		"neg latency":     `{"op":"W","size":4096,"latency_us":[1,-2,1,1,1]}`,
	} {
		if _, err := ReadTraceJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTraceJSONL accepted malformed input", name)
		}
	}
	out, err := ReadTraceJSONL(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %d records", err, len(out))
	}
}
