package trace

import (
	"bytes"
	"math"
	"testing"
)

// The codec fuzzers assert two properties on arbitrary input: the readers
// never panic, and any input they accept round-trips — re-encoding the
// parsed records and parsing again yields identical values (floats compared
// by bit pattern so NaN latencies cannot mask a real mismatch). Seeds that
// pin known tricky shapes live in testdata/fuzz; `make fuzz-smoke` gives
// each target a short randomized run in CI.

const fuzzTraceCSVSeed = `trace_id,time_us,op,size,offset,dc,node,user,vm,vd,qp,wt,storage,segment,lat_compute_us,lat_frontend_us,lat_bs_us,lat_backend_us,lat_cs_us
1,1000,R,4096,0,0,1,2,3,4,5,0,6,7,10,20,30,40,50
2,2000,W,8192,4096,0,1,2,3,4,5,1,6,7,1.5,2.5,3.5,4.5,5.5
`

const fuzzMetricCSVSeed = `domain,sec,dc,user,vm,vd,node,qp,wt,storage,segment,read_bps,write_bps,read_iops,write_iops
compute,0,0,1,2,3,4,5,0,0,0,1024,2048,10,20
storage,1,0,1,2,3,0,0,0,6,7,512.5,0,3,0
`

const fuzzTraceJSONLSeed = `{"trace_id":1,"time_us":1000,"op":"R","size":4096,"offset":0,"dc":0,"node":1,"user":2,"vm":3,"vd":4,"qp":5,"wt":0,"storage":6,"segment":7,"latency_us":[10,20,30,40,50]}
{"trace_id":2,"time_us":2000,"op":"W","size":8192,"offset":4096,"dc":0,"node":1,"user":2,"vm":3,"vd":4,"qp":5,"wt":1,"storage":6,"segment":7,"latency_us":[1.5,2.5,3.5,4.5,5.5]}
`

func f32Eq(a, b [NumStages]float32) bool {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func recordsEqual(a, b Record) bool {
	la, lb := a.Latency, b.Latency
	a.Latency, b.Latency = [NumStages]float32{}, [NumStages]float32{}
	return a == b && f32Eq(la, lb)
}

func FuzzReadTraceCSV(f *testing.F) {
	f.Add([]byte(fuzzTraceCSVSeed))
	f.Add([]byte("trace_id,time_us,op\n1,2,R\n"))               // short header
	f.Add([]byte(""))                                           // empty
	f.Add([]byte(fuzzTraceCSVSeed + "3,9e99,R,1,2,,,,,,,,,\n")) // bad row
	f.Add([]byte(fuzzTraceCSVSeed[:len(fuzzTraceCSVSeed)/2]))   // truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadTraceCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTraceCSV(&buf, recs); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadTraceCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !recordsEqual(recs[i], again[i]) {
				t.Fatalf("record %d changed across round trip:\n%+v\n%+v", i, recs[i], again[i])
			}
		}
	})
}

func FuzzReadMetricCSV(f *testing.F) {
	f.Add([]byte(fuzzMetricCSVSeed))
	f.Add([]byte("domain,sec\ncompute,0\n"))
	f.Add([]byte(fuzzMetricCSVSeed + "chunk,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n")) // bad domain
	f.Add([]byte(fuzzMetricCSVSeed + "compute,0,0,0,0,0,0,0,0,0,0,NaN,Inf,-Inf,1e308\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := ReadMetricCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMetricCSV(&buf, rows); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadMetricCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("round trip changed row count: %d -> %d", len(rows), len(again))
		}
		for i := range rows {
			a, b := rows[i], again[i]
			for _, p := range [][2]*float64{
				{&a.ReadBps, &b.ReadBps}, {&a.WriteBps, &b.WriteBps},
				{&a.ReadIOPS, &b.ReadIOPS}, {&a.WriteIOPS, &b.WriteIOPS},
			} {
				if math.Float64bits(*p[0]) != math.Float64bits(*p[1]) {
					t.Fatalf("row %d: rate changed across round trip: %v != %v", i, *p[0], *p[1])
				}
				*p[0], *p[1] = 0, 0
			}
			if a != b {
				t.Fatalf("row %d changed across round trip:\n%+v\n%+v", i, a, b)
			}
		}
	})
}

func FuzzReadTraceJSONL(f *testing.F) {
	f.Add([]byte(fuzzTraceJSONLSeed))
	f.Add([]byte(`{"op":"X"}` + "\n"))
	f.Add([]byte(`{"trace_id":1,"op":"R","latency_us":[1,2,3,4,5,6]}` + "\n")) // too many stages
	f.Add([]byte("not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadTraceJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTraceJSONL(&buf, recs); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadTraceJSONL(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !recordsEqual(recs[i], again[i]) {
				t.Fatalf("record %d changed across round trip:\n%+v\n%+v", i, recs[i], again[i])
			}
		}
	})
}
