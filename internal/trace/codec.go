package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ebslab/internal/cluster"
)

// checkRecord rejects decoded records no simulation could have produced —
// NaN or negative stage latencies, non-positive sizes, negative offsets or
// timestamps. Both trace decoders apply it to every record, so malformed
// foreign input fails loudly with the line position instead of leaking
// poison values (a single NaN latency would silently corrupt every sketch
// and metric it touches) into downstream consumers.
func checkRecord(rec *Record) error {
	if rec.TimeUS < 0 {
		return fmt.Errorf("time_us %d is negative", rec.TimeUS)
	}
	if rec.Size <= 0 {
		return fmt.Errorf("size %d, want > 0", rec.Size)
	}
	if rec.Offset < 0 {
		return fmt.Errorf("offset %d is negative", rec.Offset)
	}
	for s := 0; s < int(NumStages); s++ {
		l := float64(rec.Latency[s])
		if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
			return fmt.Errorf("stage %d latency %g, want finite and >= 0", s, l)
		}
	}
	return nil
}

// traceHeader is the CSV column layout for Record.
var traceHeader = []string{
	"trace_id", "time_us", "op", "size", "offset",
	"dc", "node", "user", "vm", "vd", "qp", "wt", "storage", "segment",
	"lat_compute_us", "lat_frontend_us", "lat_bs_us", "lat_backend_us", "lat_cs_us",
}

// WriteTraceCSV writes records to w as CSV with a header row.
func WriteTraceCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(traceHeader))
	for i := range records {
		r := &records[i]
		row[0] = strconv.FormatUint(r.TraceID, 10)
		row[1] = strconv.FormatInt(r.TimeUS, 10)
		row[2] = r.Op.String()
		row[3] = strconv.FormatInt(int64(r.Size), 10)
		row[4] = strconv.FormatInt(r.Offset, 10)
		row[5] = strconv.FormatInt(int64(r.DC), 10)
		row[6] = strconv.FormatInt(int64(r.Node), 10)
		row[7] = strconv.FormatInt(int64(r.User), 10)
		row[8] = strconv.FormatInt(int64(r.VM), 10)
		row[9] = strconv.FormatInt(int64(r.VD), 10)
		row[10] = strconv.FormatInt(int64(r.QP), 10)
		row[11] = strconv.FormatInt(int64(r.WT), 10)
		row[12] = strconv.FormatInt(int64(r.Storage), 10)
		row[13] = strconv.FormatInt(int64(r.Segment), 10)
		for s := 0; s < int(NumStages); s++ {
			row[14+s] = strconv.FormatFloat(float64(r.Latency[s]), 'g', -1, 32)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV reads records written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != len(traceHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(traceHeader))
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		var rec Record
		if rec.TraceID, err = strconv.ParseUint(row[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d trace_id: %w", line, err)
		}
		if rec.TimeUS, err = strconv.ParseInt(row[1], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d time_us: %w", line, err)
		}
		switch row[2] {
		case "R":
			rec.Op = OpRead
		case "W":
			rec.Op = OpWrite
		default:
			return nil, fmt.Errorf("trace: line %d: bad opcode %q", line, row[2])
		}
		ints := []struct {
			col  int
			bits int
			dst  func(int64)
		}{
			{3, 32, func(v int64) { rec.Size = int32(v) }},
			{4, 64, func(v int64) { rec.Offset = v }},
			{5, 32, func(v int64) { rec.DC = cluster.DCID(v) }},
			{6, 32, func(v int64) { rec.Node = cluster.NodeID(v) }},
			{7, 32, func(v int64) { rec.User = cluster.UserID(v) }},
			{8, 32, func(v int64) { rec.VM = cluster.VMID(v) }},
			{9, 32, func(v int64) { rec.VD = cluster.VDID(v) }},
			{10, 32, func(v int64) { rec.QP = cluster.QPID(v) }},
			{11, 8, func(v int64) { rec.WT = int8(v) }},
			{12, 32, func(v int64) { rec.Storage = cluster.StorageNodeID(v) }},
			{13, 32, func(v int64) { rec.Segment = cluster.SegmentID(v) }},
		}
		for _, f := range ints {
			v, err := strconv.ParseInt(row[f.col], 10, f.bits)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d col %s: %w", line, traceHeader[f.col], err)
			}
			f.dst(v)
		}
		for s := 0; s < int(NumStages); s++ {
			v, err := strconv.ParseFloat(row[14+s], 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d col %s: %w", line, traceHeader[14+s], err)
			}
			rec.Latency[s] = float32(v)
		}
		if err := checkRecord(&rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

// metricHeader is the CSV column layout for MetricRow.
var metricHeader = []string{
	"domain", "sec", "dc", "user", "vm", "vd",
	"node", "qp", "wt", "storage", "segment",
	"read_bps", "write_bps", "read_iops", "write_iops",
}

// WriteMetricCSV writes metric rows to w as CSV with a header row.
func WriteMetricCSV(w io.Writer, rows []MetricRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(metricHeader); err != nil {
		return fmt.Errorf("trace: write metric header: %w", err)
	}
	row := make([]string, len(metricHeader))
	for i := range rows {
		m := &rows[i]
		row[0] = m.Domain.String()
		row[1] = strconv.FormatInt(int64(m.Sec), 10)
		row[2] = strconv.FormatInt(int64(m.DC), 10)
		row[3] = strconv.FormatInt(int64(m.User), 10)
		row[4] = strconv.FormatInt(int64(m.VM), 10)
		row[5] = strconv.FormatInt(int64(m.VD), 10)
		row[6] = strconv.FormatInt(int64(m.Node), 10)
		row[7] = strconv.FormatInt(int64(m.QP), 10)
		row[8] = strconv.FormatInt(int64(m.WT), 10)
		row[9] = strconv.FormatInt(int64(m.Storage), 10)
		row[10] = strconv.FormatInt(int64(m.Segment), 10)
		row[11] = strconv.FormatFloat(m.ReadBps, 'g', -1, 64)
		row[12] = strconv.FormatFloat(m.WriteBps, 'g', -1, 64)
		row[13] = strconv.FormatFloat(m.ReadIOPS, 'g', -1, 64)
		row[14] = strconv.FormatFloat(m.WriteIOPS, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write metric row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMetricCSV reads metric rows written by WriteMetricCSV.
func ReadMetricCSV(r io.Reader) ([]MetricRow, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read metric header: %w", err)
	}
	if len(header) != len(metricHeader) {
		return nil, fmt.Errorf("trace: metric header has %d columns, want %d", len(header), len(metricHeader))
	}
	var out []MetricRow
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: metric line %d: %w", line, err)
		}
		var m MetricRow
		switch row[0] {
		case "compute":
			m.Domain = DomainCompute
		case "storage":
			m.Domain = DomainStorage
		default:
			return nil, fmt.Errorf("trace: metric line %d: bad domain %q", line, row[0])
		}
		ints := []struct {
			col int
			dst func(int64)
		}{
			{1, func(v int64) { m.Sec = int32(v) }},
			{2, func(v int64) { m.DC = cluster.DCID(v) }},
			{3, func(v int64) { m.User = cluster.UserID(v) }},
			{4, func(v int64) { m.VM = cluster.VMID(v) }},
			{5, func(v int64) { m.VD = cluster.VDID(v) }},
			{6, func(v int64) { m.Node = cluster.NodeID(v) }},
			{7, func(v int64) { m.QP = cluster.QPID(v) }},
			{8, func(v int64) { m.WT = int8(v) }},
			{9, func(v int64) { m.Storage = cluster.StorageNodeID(v) }},
			{10, func(v int64) { m.Segment = cluster.SegmentID(v) }},
		}
		for _, f := range ints {
			v, err := strconv.ParseInt(row[f.col], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: metric line %d col %s: %w", line, metricHeader[f.col], err)
			}
			f.dst(v)
		}
		floats := []struct {
			col int
			dst *float64
		}{
			{11, &m.ReadBps}, {12, &m.WriteBps}, {13, &m.ReadIOPS}, {14, &m.WriteIOPS},
		}
		for _, f := range floats {
			v, err := strconv.ParseFloat(row[f.col], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: metric line %d col %s: %w", line, metricHeader[f.col], err)
			}
			*f.dst = v
		}
		out = append(out, m)
	}
}
