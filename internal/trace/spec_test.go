package trace

import (
	"bytes"
	"strings"
	"testing"

	"ebslab/internal/cluster"
)

func TestVDSpecCSVRoundTrip(t *testing.T) {
	in := []VDSpec{
		{VD: 1, Capacity: 64 << 30, ThroughputCap: 1.2e8, IOPSCap: 3000, NumQPs: 4},
		{VD: 2, Capacity: 40 << 30, ThroughputCap: 1e8, IOPSCap: 1800, NumQPs: 1},
	}
	var buf bytes.Buffer
	if err := WriteVDSpecCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadVDSpecCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("row %d: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestVMSpecCSVRoundTrip(t *testing.T) {
	in := []VMSpec{
		{VM: 7, Node: 3, App: cluster.AppDatabase, VDs: []cluster.VDID{1, 2, 9}},
		{VM: 8, Node: 4, App: cluster.AppBigData, VDs: []cluster.VDID{5}},
	}
	var buf bytes.Buffer
	if err := WriteVMSpecCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadVMSpecCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	for i := range in {
		if in[i].VM != out[i].VM || in[i].Node != out[i].Node || in[i].App != out[i].App {
			t.Fatalf("row %d header fields differ", i)
		}
		if len(in[i].VDs) != len(out[i].VDs) {
			t.Fatalf("row %d VD count differs", i)
		}
		for j := range in[i].VDs {
			if in[i].VDs[j] != out[i].VDs[j] {
				t.Fatalf("row %d VDs differ", i)
			}
		}
	}
}

func TestSpecCSVRejectsBadInput(t *testing.T) {
	for name, in := range map[string]string{
		"vd empty":  "",
		"vd header": "a,b\n",
		"vd number": strings.Join(vdSpecHeader, ",") + "\nx,1,1,1,1\n",
		"vd cap":    strings.Join(vdSpecHeader, ",") + "\n1,x,1,1,1\n",
	} {
		if _, err := ReadVDSpecCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	for name, in := range map[string]string{
		"vm empty":  "",
		"vm header": "a\n",
		"vm app":    strings.Join(vmSpecHeader, ",") + "\n1,2,NotAnApp,3\n",
		"vm vds":    strings.Join(vmSpecHeader, ",") + "\n1,2,Database,a|b\n",
	} {
		if _, err := ReadVMSpecCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
