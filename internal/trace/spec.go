package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ebslab/internal/cluster"
)

// vdSpecHeader is the CSV layout for VDSpec.
var vdSpecHeader = []string{"vd", "capacity", "tput_cap_bps", "iops_cap", "num_qps"}

// WriteVDSpecCSV writes the virtual-disk specification dataset.
func WriteVDSpecCSV(w io.Writer, specs []VDSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(vdSpecHeader); err != nil {
		return fmt.Errorf("trace: vdspec header: %w", err)
	}
	for i := range specs {
		s := &specs[i]
		row := []string{
			strconv.FormatInt(int64(s.VD), 10),
			strconv.FormatInt(s.Capacity, 10),
			strconv.FormatFloat(s.ThroughputCap, 'g', -1, 64),
			strconv.FormatFloat(s.IOPSCap, 'g', -1, 64),
			strconv.Itoa(s.NumQPs),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: vdspec row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadVDSpecCSV reads the dataset written by WriteVDSpecCSV.
func ReadVDSpecCSV(r io.Reader) ([]VDSpec, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: vdspec header: %w", err)
	}
	if len(header) != len(vdSpecHeader) {
		return nil, fmt.Errorf("trace: vdspec header has %d columns, want %d", len(header), len(vdSpecHeader))
	}
	var out []VDSpec
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: vdspec line %d: %w", line, err)
		}
		var s VDSpec
		vd, err := strconv.ParseInt(row[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: vdspec line %d vd: %w", line, err)
		}
		s.VD = cluster.VDID(vd)
		if s.Capacity, err = strconv.ParseInt(row[1], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: vdspec line %d capacity: %w", line, err)
		}
		if s.ThroughputCap, err = strconv.ParseFloat(row[2], 64); err != nil {
			return nil, fmt.Errorf("trace: vdspec line %d tput: %w", line, err)
		}
		if s.IOPSCap, err = strconv.ParseFloat(row[3], 64); err != nil {
			return nil, fmt.Errorf("trace: vdspec line %d iops: %w", line, err)
		}
		if s.NumQPs, err = strconv.Atoi(row[4]); err != nil {
			return nil, fmt.Errorf("trace: vdspec line %d qps: %w", line, err)
		}
		out = append(out, s)
	}
}

// vmSpecHeader is the CSV layout for VMSpec; VDs are '|'-separated.
var vmSpecHeader = []string{"vm", "node", "app", "vds"}

// WriteVMSpecCSV writes the VM specification dataset (including the
// inferred application class, §2.3).
func WriteVMSpecCSV(w io.Writer, specs []VMSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(vmSpecHeader); err != nil {
		return fmt.Errorf("trace: vmspec header: %w", err)
	}
	for i := range specs {
		s := &specs[i]
		vds := make([]string, len(s.VDs))
		for j, vd := range s.VDs {
			vds[j] = strconv.FormatInt(int64(vd), 10)
		}
		row := []string{
			strconv.FormatInt(int64(s.VM), 10),
			strconv.FormatInt(int64(s.Node), 10),
			s.App.String(),
			strings.Join(vds, "|"),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: vmspec row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// appByName maps AppClass names back to values.
var appByName = func() map[string]cluster.AppClass {
	m := make(map[string]cluster.AppClass, cluster.NumAppClasses)
	for a := cluster.AppClass(0); int(a) < cluster.NumAppClasses; a++ {
		m[a.String()] = a
	}
	return m
}()

// ReadVMSpecCSV reads the dataset written by WriteVMSpecCSV.
func ReadVMSpecCSV(r io.Reader) ([]VMSpec, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: vmspec header: %w", err)
	}
	if len(header) != len(vmSpecHeader) {
		return nil, fmt.Errorf("trace: vmspec header has %d columns, want %d", len(header), len(vmSpecHeader))
	}
	var out []VMSpec
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: vmspec line %d: %w", line, err)
		}
		var s VMSpec
		vm, err := strconv.ParseInt(row[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: vmspec line %d vm: %w", line, err)
		}
		s.VM = cluster.VMID(vm)
		node, err := strconv.ParseInt(row[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: vmspec line %d node: %w", line, err)
		}
		s.Node = cluster.NodeID(node)
		app, ok := appByName[row[2]]
		if !ok {
			return nil, fmt.Errorf("trace: vmspec line %d: unknown app %q", line, row[2])
		}
		s.App = app
		if row[3] != "" {
			for _, part := range strings.Split(row[3], "|") {
				vd, err := strconv.ParseInt(part, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("trace: vmspec line %d vds: %w", line, err)
				}
				s.VDs = append(s.VDs, cluster.VDID(vd))
			}
		}
		out = append(out, s)
	}
}
