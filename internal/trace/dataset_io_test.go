package trace

import (
	"os"
	"path/filepath"
	"testing"

	"ebslab/internal/cluster"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := &Dataset{
		DurationSec: 3,
		Trace: []Record{
			{TraceID: 1, TimeUS: 5, Op: OpWrite, Size: 4096, VD: 2, QP: 3, Segment: 4},
		},
		Compute: []MetricRow{
			{Domain: DomainCompute, Sec: 2, VD: 2, QP: 3, WriteBps: 4096, WriteIOPS: 1},
		},
		Storage: []MetricRow{
			{Domain: DomainStorage, Sec: 2, VD: 2, Segment: 4, WriteBps: 4096, WriteIOPS: 1},
		},
		VDSpecs: []VDSpec{{VD: 2, Capacity: 64 << 30, ThroughputCap: 1e8, IOPSCap: 1800, NumQPs: 1}},
		VMSpecs: []VMSpec{{VM: 1, Node: 0, App: cluster.AppDatabase, VDs: []cluster.VDID{2}}},
	}
	if err := SaveDir(in, dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	for _, name := range []string{
		FileTraceCSV, FileTraceJSONL, FileMetricCompute, FileMetricStorage, FileSpecVD, FileSpecVM,
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	out, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(out.Trace) != 1 || out.Trace[0] != in.Trace[0] {
		t.Fatalf("trace round trip: %+v", out.Trace)
	}
	if len(out.Compute) != 1 || out.Compute[0] != in.Compute[0] {
		t.Fatalf("compute round trip: %+v", out.Compute)
	}
	if len(out.Storage) != 1 || len(out.VDSpecs) != 1 || len(out.VMSpecs) != 1 {
		t.Fatal("dataset parts missing")
	}
	if out.DurationSec != 3 {
		t.Fatalf("inferred duration = %d, want 3", out.DurationSec)
	}
}

func TestLoadDirMissingFiles(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir on empty dir succeeded")
	}
}
