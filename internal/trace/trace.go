// Package trace defines the two datasets the study is built on (§2.3):
//
//   - the per-IO *trace* dataset, a 1/3200 sample of block IOs annotated with
//     opcode, size, LBA offset, the EBS-stack entities the IO traversed, and
//     its latency across the five major stack components; and
//   - the per-second *metric* dataset, a full-scale (unsampled) statistical
//     aggregation of throughput and IOPS at the QP-WT level (compute domain)
//     and the segment level (storage domain), following Table 1.
//
// The package also defines the supplementary specification dataset (VM/VD
// configuration and inferred application), plus CSV codecs so datasets can be
// written to and read from disk by cmd/tracegen and cmd/analyze.
package trace

import (
	"fmt"

	"ebslab/internal/cluster"
)

// Op is a block IO opcode.
type Op uint8

// The two block IO opcodes.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "R"
	}
	return "W"
}

// SampleRate is the paper's trace downsampling rate: one out of every 3200
// IOs is traced (§2.3).
const SampleRate = 3200

// Stage indexes the five major EBS-stack components whose latency each trace
// records (§2.3): compute node, frontend network, BlockServer, backend
// network, ChunkServer.
type Stage uint8

// The five latency stages of the EBS stack.
const (
	StageComputeNode Stage = iota
	StageFrontendNet
	StageBlockServer
	StageBackendNet
	StageChunkServer
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageComputeNode:
		return "compute_node"
	case StageFrontendNet:
		return "frontend_net"
	case StageBlockServer:
		return "block_server"
	case StageBackendNet:
		return "backend_net"
	case StageChunkServer:
		return "chunk_server"
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Record is one traced IO. Times are in microseconds relative to the start
// of the observation window; latencies are in microseconds per stage.
type Record struct {
	TraceID uint64
	TimeUS  int64
	Op      Op
	Size    int32 // bytes
	Offset  int64 // byte offset into the VD's logical address space

	// Stack path (§2.3 "EBS stack-related information").
	DC      cluster.DCID
	Node    cluster.NodeID
	User    cluster.UserID
	VM      cluster.VMID
	VD      cluster.VDID
	QP      cluster.QPID
	WT      int8 // worker-thread index within the compute node
	Storage cluster.StorageNodeID
	Segment cluster.SegmentID

	// Latency per stage, microseconds.
	Latency [NumStages]float32
}

// TotalLatency returns the end-to-end latency of the IO in microseconds.
func (r *Record) TotalLatency() float64 {
	var t float64
	for _, l := range r.Latency {
		t += float64(l)
	}
	return t
}

// Domain distinguishes the two metric sub-datasets of Table 1.
type Domain uint8

// Metric domains.
const (
	DomainCompute Domain = iota
	DomainStorage
)

func (d Domain) String() string {
	if d == DomainCompute {
		return "compute"
	}
	return "storage"
}

// MetricRow is one row of the metric dataset (Table 1): a one-second
// statistical aggregate of all (not downsampled) IOs at either the QP-WT
// level (compute domain) or the segment level (storage domain). The slash
// convention of Table 1 maps to the explicit Read*/Write* fields.
type MetricRow struct {
	Domain Domain
	Sec    int32 // second index within the observation window
	DC     cluster.DCID

	// User information.
	User cluster.UserID
	VM   cluster.VMID
	VD   cluster.VDID

	// Record unit: compute domain fills QP and WT (and Node); storage domain
	// fills Segment and Storage.
	Node    cluster.NodeID
	QP      cluster.QPID
	WT      int8
	Storage cluster.StorageNodeID
	Segment cluster.SegmentID

	// Metrics: throughput in bytes/s and IOPS in ops/s.
	ReadBps   float64
	WriteBps  float64
	ReadIOPS  float64
	WriteIOPS float64
}

// Bps returns the summed read+write throughput of the row.
func (m *MetricRow) Bps() float64 { return m.ReadBps + m.WriteBps }

// IOPS returns the summed read+write IOPS of the row.
func (m *MetricRow) IOPS() float64 { return m.ReadIOPS + m.WriteIOPS }

// VDSpec is the subscription-level specification of a virtual disk (§2.3
// "specification data").
type VDSpec struct {
	VD            cluster.VDID
	Capacity      int64   // bytes
	ThroughputCap float64 // bytes/s (read+write aggregated, §5.2)
	IOPSCap       float64 // ops/s (read+write aggregated)
	NumQPs        int
}

// VMSpec records a VM's configuration and its inferred application.
type VMSpec struct {
	VM   cluster.VMID
	Node cluster.NodeID
	App  cluster.AppClass
	VDs  []cluster.VDID
}

// Dataset bundles everything a study run consumes: the static topology, the
// sampled IO trace, the full-scale metric rows, and the specification data.
type Dataset struct {
	Topology *cluster.Topology
	Seg2BS   *cluster.SegmentMap

	// DurationSec is the length of the observation window in seconds.
	DurationSec int

	Trace   []Record
	Compute []MetricRow // compute-domain metric rows
	Storage []MetricRow // storage-domain metric rows

	VDSpecs []VDSpec
	VMSpecs []VMSpec
}

// Sampled reports whether an IO with the given trace ID is captured by a
// 1-in-SampleRate downsampler. It uses a splitmix64 hash so sampling is
// deterministic, uniform, and independent of issue order.
func Sampled(traceID uint64) bool {
	return hash64(traceID)%SampleRate == 0
}

// hash64 is the splitmix64 finalizer, a fast high-quality 64-bit mixer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
