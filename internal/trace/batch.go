package trace

import (
	"sync"

	"ebslab/internal/cluster"
)

// DefaultBatchCap is the row capacity of pooled batches: large enough to
// amortize per-flush work, small enough that a batch (~100 KiB) stays cache-
// and pool-friendly.
const DefaultBatchCap = 1024

// Batch is a fixed-capacity columnar (structure-of-arrays) block of trace
// records: one parallel slice per Record field, each sized to the batch
// capacity with rows [0, Len()) valid. The simulation hot path fills batches
// field by field and hands them to batched consumers (diting.Tracer.EmitBatch,
// sketch.Set.ObserveBatch), which stream down each column without
// materializing Record structs. Columns are exported for exactly that access
// pattern; use Next/Append to advance the row count.
//
// A Batch is not safe for concurrent use. Batches produced by the engine
// hold rows of a single virtual disk in event order — consumers may exploit
// the run structure but must stay correct without it.
type Batch struct {
	TraceID []uint64
	TimeUS  []int64
	Op      []Op
	Size    []int32
	Offset  []int64
	DC      []cluster.DCID
	Node    []cluster.NodeID
	User    []cluster.UserID
	VM      []cluster.VMID
	VD      []cluster.VDID
	QP      []cluster.QPID
	WT      []int8
	Storage []cluster.StorageNodeID
	Segment []cluster.SegmentID
	Lat     [][NumStages]float32

	n int
}

// NewBatch allocates an empty batch with the given row capacity.
func NewBatch(capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	return &Batch{
		TraceID: make([]uint64, capacity),
		TimeUS:  make([]int64, capacity),
		Op:      make([]Op, capacity),
		Size:    make([]int32, capacity),
		Offset:  make([]int64, capacity),
		DC:      make([]cluster.DCID, capacity),
		Node:    make([]cluster.NodeID, capacity),
		User:    make([]cluster.UserID, capacity),
		VM:      make([]cluster.VMID, capacity),
		VD:      make([]cluster.VDID, capacity),
		QP:      make([]cluster.QPID, capacity),
		WT:      make([]int8, capacity),
		Storage: make([]cluster.StorageNodeID, capacity),
		Segment: make([]cluster.SegmentID, capacity),
		Lat:     make([][NumStages]float32, capacity),
	}
}

// Len returns the number of valid rows.
func (b *Batch) Len() int { return b.n }

// Cap returns the row capacity.
func (b *Batch) Cap() int { return len(b.TimeUS) }

// Full reports whether the batch has no free rows.
func (b *Batch) Full() bool { return b.n == len(b.TimeUS) }

// Reset empties the batch, keeping its columns for reuse.
func (b *Batch) Reset() { b.n = 0 }

// Next reserves the next row and returns its index; the caller fills every
// column at that index. The batch must not be full.
func (b *Batch) Next() int {
	i := b.n
	b.n++
	return i
}

// Append copies one record into the next row and returns its index. The
// batch must not be full. It is the record-at-a-time adapter onto the
// columnar layout; hot paths fill columns directly via Next.
func (b *Batch) Append(rec *Record) int {
	i := b.Next()
	b.TraceID[i] = rec.TraceID
	b.TimeUS[i] = rec.TimeUS
	b.Op[i] = rec.Op
	b.Size[i] = rec.Size
	b.Offset[i] = rec.Offset
	b.DC[i] = rec.DC
	b.Node[i] = rec.Node
	b.User[i] = rec.User
	b.VM[i] = rec.VM
	b.VD[i] = rec.VD
	b.QP[i] = rec.QP
	b.WT[i] = rec.WT
	b.Storage[i] = rec.Storage
	b.Segment[i] = rec.Segment
	b.Lat[i] = rec.Latency
	return i
}

// Record materializes row i as a Record.
func (b *Batch) Record(i int) Record {
	return Record{
		TraceID: b.TraceID[i],
		TimeUS:  b.TimeUS[i],
		Op:      b.Op[i],
		Size:    b.Size[i],
		Offset:  b.Offset[i],
		DC:      b.DC[i],
		Node:    b.Node[i],
		User:    b.User[i],
		VM:      b.VM[i],
		VD:      b.VD[i],
		QP:      b.QP[i],
		WT:      b.WT[i],
		Storage: b.Storage[i],
		Segment: b.Segment[i],
		Latency: b.Lat[i],
	}
}

// TotalLatencyAt sums row i's per-stage latencies in stage order, exactly as
// Record.TotalLatency does.
func (b *Batch) TotalLatencyAt(i int) float64 {
	var t float64
	for _, l := range b.Lat[i] {
		t += float64(l)
	}
	return t
}

// batchPool recycles DefaultBatchCap batches; odd-sized batches (tests use
// tiny capacities to force flush boundaries) are allocated fresh.
var batchPool = sync.Pool{New: func() any { return NewBatch(DefaultBatchCap) }}

// GetBatch returns an empty batch with the given row capacity, pooled when
// the capacity is DefaultBatchCap. Release it when done.
func GetBatch(capacity int) *Batch {
	if capacity == DefaultBatchCap {
		b := batchPool.Get().(*Batch)
		b.Reset()
		return b
	}
	return NewBatch(capacity)
}

// Release returns the batch to the pool. The batch (and any views into its
// columns) must not be used after Release.
func (b *Batch) Release() {
	if b.Cap() == DefaultBatchCap {
		batchPool.Put(b)
	}
}
