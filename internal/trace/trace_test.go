package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Fatalf("Op strings = %q/%q", OpRead, OpWrite)
	}
}

func TestStageString(t *testing.T) {
	want := []string{"compute_node", "frontend_net", "block_server", "backend_net", "chunk_server"}
	for s := Stage(0); s < NumStages; s++ {
		if got := s.String(); got != want[s] {
			t.Errorf("Stage(%d) = %q, want %q", s, got, want[s])
		}
	}
	if got := Stage(9).String(); got != "Stage(9)" {
		t.Errorf("unknown stage = %q", got)
	}
}

func TestTotalLatency(t *testing.T) {
	r := Record{Latency: [NumStages]float32{1, 2, 3, 4, 5}}
	if got := r.TotalLatency(); got != 15 {
		t.Fatalf("TotalLatency = %v, want 15", got)
	}
}

func TestMetricRowSums(t *testing.T) {
	m := MetricRow{ReadBps: 10, WriteBps: 5, ReadIOPS: 100, WriteIOPS: 50}
	if m.Bps() != 15 || m.IOPS() != 150 {
		t.Fatalf("Bps/IOPS = %v/%v", m.Bps(), m.IOPS())
	}
}

func TestSampledRate(t *testing.T) {
	// The splitmix64-based sampler should select very close to 1/3200.
	const n = 3_200_000
	var hits int
	for i := uint64(0); i < n; i++ {
		if Sampled(i) {
			hits++
		}
	}
	got := float64(hits) / n
	want := 1.0 / SampleRate
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("sampling rate = %v, want within 10%% of %v", got, want)
	}
}

func TestSampledDeterministic(t *testing.T) {
	for i := uint64(0); i < 10_000; i++ {
		if Sampled(i) != Sampled(i) {
			t.Fatal("Sampled is not deterministic")
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	in := []Record{
		{
			TraceID: 42, TimeUS: 1_000_000, Op: OpWrite, Size: 4096, Offset: 1 << 30,
			DC: 1, Node: 2, User: 3, VM: 4, VD: 5, QP: 6, WT: 1, Storage: 7, Segment: 8,
			Latency: [NumStages]float32{10.5, 20, 30, 40, 50.25},
		},
		{
			TraceID: 43, TimeUS: 2, Op: OpRead, Size: 512, Offset: 0,
			Latency: [NumStages]float32{1, 1, 1, 1, 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, in); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	out, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTraceCSV: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestTraceCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "a,b\n",
		"bad op":      strings.Join(traceHeader, ",") + "\n1,2,X,4,5,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n",
		"bad number":  strings.Join(traceHeader, ",") + "\nx,2,R,4,5,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n",
		"bad latency": strings.Join(traceHeader, ",") + "\n1,2,R,4,5,0,0,0,0,0,0,0,0,0,zzz,0,0,0,0\n",
		// Hardened domain checks: parseable values no run could produce must
		// fail with a positional error, not decode into poison records.
		"nan latency":      strings.Join(traceHeader, ",") + "\n1,2,R,4,5,0,0,0,0,0,0,0,0,0,NaN,0,0,0,0\n",
		"inf latency":      strings.Join(traceHeader, ",") + "\n1,2,R,4,5,0,0,0,0,0,0,0,0,0,0,+Inf,0,0,0\n",
		"negative latency": strings.Join(traceHeader, ",") + "\n1,2,R,4,5,0,0,0,0,0,0,0,0,0,0,0,-1,0,0\n",
		"negative size":    strings.Join(traceHeader, ",") + "\n1,2,R,-4,5,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n",
		"zero size":        strings.Join(traceHeader, ",") + "\n1,2,R,0,5,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n",
		"negative offset":  strings.Join(traceHeader, ",") + "\n1,2,R,4,-5,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n",
		"negative time":    strings.Join(traceHeader, ",") + "\n1,-2,R,4,5,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n",
	}
	for name, in := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTraceCSV accepted malformed input", name)
		}
	}
}

func TestMetricCSVRoundTrip(t *testing.T) {
	in := []MetricRow{
		{
			Domain: DomainCompute, Sec: 17, DC: 0, User: 1, VM: 2, VD: 3,
			Node: 4, QP: 5, WT: 2,
			ReadBps: 35e6, WriteBps: 14e6, ReadIOPS: 3200, WriteIOPS: 9000,
		},
		{
			Domain: DomainStorage, Sec: 17, DC: 2, User: 1, VM: 2, VD: 3,
			Storage: 9, Segment: 11,
			ReadBps: 21e6, WriteBps: 13e6, ReadIOPS: 3000, WriteIOPS: 8000,
		},
	}
	var buf bytes.Buffer
	if err := WriteMetricCSV(&buf, in); err != nil {
		t.Fatalf("WriteMetricCSV: %v", err)
	}
	out, err := ReadMetricCSV(&buf)
	if err != nil {
		t.Fatalf("ReadMetricCSV: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip length %d, want 2", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("row %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestMetricCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "a\n",
		"bad domain": strings.Join(metricHeader, ",") + "\nnope,1,0,0,0,0,0,0,0,0,0,1,1,1,1\n",
		"bad float":  strings.Join(metricHeader, ",") + "\ncompute,1,0,0,0,0,0,0,0,0,0,x,1,1,1\n",
	}
	for name, in := range cases {
		if _, err := ReadMetricCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadMetricCSV accepted malformed input", name)
		}
	}
}

func TestTraceCSVRoundTripProperty(t *testing.T) {
	// Property: any record in the decoder's accepted domain (non-negative
	// time and offset, positive size) survives a round trip unchanged.
	f := func(id uint64, timeUS int64, size int32, offset int64, write bool) bool {
		if timeUS < 0 {
			timeUS = ^timeUS
		}
		if offset < 0 {
			offset = ^offset
		}
		size &= 1<<31 - 1
		if size == 0 {
			size = 4096
		}
		rec := Record{TraceID: id, TimeUS: timeUS, Size: size, Offset: offset}
		if write {
			rec.Op = OpWrite
		}
		var buf bytes.Buffer
		if err := WriteTraceCSV(&buf, []Record{rec}); err != nil {
			return false
		}
		out, err := ReadTraceCSV(&buf)
		return err == nil && len(out) == 1 && out[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
