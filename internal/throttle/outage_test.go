package throttle

import (
	"math"
	"reflect"
	"testing"
)

// outageCaps is the standard three-VD group for the outage tests: 100 B/s
// throughput each, IOPS caps high enough to never bind.
func outageCaps() []Caps {
	return []Caps{
		{Tput: 100, IOPS: 1000},
		{Tput: 100, IOPS: 1000},
		{Tput: 100, IOPS: 1000},
	}
}

func TestOutagesNilDownMatchesLending(t *testing.T) {
	caps := outageCaps()
	demand := [][]Demand{
		flatDemand(6, Demand{WriteBps: 200, WriteIOPS: 1}),
		flatDemand(6, Demand{}),
		flatDemand(6, Demand{}),
	}
	lend := Lending{Rate: 0.5, PeriodSec: 10}
	want, wantMsgs := SimulateWithLendingAudited(caps, demand, lend)
	got, gotMsgs := SimulateWithLendingOutages(caps, demand, lend, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("nil down schedule diverged from plain lending")
	}
	if len(wantMsgs) != 0 || len(gotMsgs) != 0 {
		t.Fatalf("audit violations: %v / %v", wantMsgs, gotMsgs)
	}
}

// TestDownVDCannotBorrow: a VD inside a crash window is unreachable, so its
// throttle must play out exactly as if lending did not exist.
func TestDownVDCannotBorrow(t *testing.T) {
	caps := outageCaps()
	demand := [][]Demand{
		flatDemand(3, Demand{WriteBps: 200, WriteIOPS: 1}),
		flatDemand(3, Demand{}),
		flatDemand(3, Demand{}),
	}
	lend := Lending{Rate: 0.5, PeriodSec: 10}
	down := func(t, vd int) bool { return vd == 0 }

	got, msgs := SimulateWithLendingOutages(caps, demand, lend, down)
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	if want := Simulate(caps, demand); !reflect.DeepEqual(got, want) {
		t.Fatalf("down borrower diverged from the no-lending replay:\n got %+v\nwant %+v", got, want)
	}
	// Sanity: a healthy VD0 would have borrowed its way to more throughput.
	healthy := SimulateWithLending(caps, demand, lend)
	if healthy.DeliveredBps[0] <= got.DeliveredBps[0] {
		t.Fatal("lending never helped the healthy run; the borrow bar is vacuous")
	}
}

// TestDownLenderExcluded: a crashed VD's headroom is an artifact, not spare
// capacity — the borrow must be capped by the *healthy* peers' headroom.
func TestDownLenderExcluded(t *testing.T) {
	caps := outageCaps()
	// VD0 over cap by 50; VD1 idle (headroom 100, but down); VD2 nearly
	// full (headroom 10). AR = 300-240 = 60, extra = 0.9*60 = 54, so with
	// VD1 lending VD0 would be unthrottled — with VD1 down the loan clips
	// at VD2's 10.
	demand := [][]Demand{
		flatDemand(1, Demand{WriteBps: 150, WriteIOPS: 1}),
		flatDemand(1, Demand{}),
		flatDemand(1, Demand{WriteBps: 90, WriteIOPS: 1}),
	}
	lend := Lending{Rate: 0.9, PeriodSec: 10}

	all := SimulateWithLending(caps, demand, lend)
	if all.DeliveredBps[0] < 150-1e-6 {
		t.Fatalf("with every lender healthy VD0 should be unthrottled, delivered %v", all.DeliveredBps[0])
	}
	down := func(t, vd int) bool { return vd == 1 }
	got, msgs := SimulateWithLendingOutages(caps, demand, lend, down)
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	if want := 110.0; math.Abs(got.DeliveredBps[0]-want) > 1e-6 {
		t.Fatalf("VD0 delivered %v, want %v (nominal 100 + VD2's headroom 10)", got.DeliveredBps[0], want)
	}
}

// TestFlipRevokesLoans: a crash window opening mid-period snaps every
// effective cap back to nominal. The borrower re-borrows, but its big lender
// is now down, so the post-flip loan is visibly smaller.
func TestFlipRevokesLoans(t *testing.T) {
	caps := outageCaps()
	const dur = 4
	// VD0 over cap by 50; VD1 nearly full (headroom 5); VD2 idle (headroom
	// 100). Pre-flip extra = 0.9*55 = 49.5 — VD0 is essentially unthrottled.
	// At t=2 VD2 crashes: the loan is revoked and the re-borrow clips at
	// VD1's 5.
	demand := [][]Demand{
		flatDemand(dur, Demand{WriteBps: 150, WriteIOPS: 1}),
		flatDemand(dur, Demand{WriteBps: 95, WriteIOPS: 1}),
		flatDemand(dur, Demand{}),
	}
	lend := Lending{Rate: 0.9, PeriodSec: 100}
	down := func(t, vd int) bool { return vd == 2 && t >= 2 }

	got, msgs := SimulateWithLendingOutages(caps, demand, lend, down)
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	// Pre-flip seconds ride the big loan: nearly no queueing.
	if d := got.QueueDelaySec[0][1]; d > 0.05 {
		t.Fatalf("pre-flip queue delay %v; the big loan never landed", d)
	}
	// Post-flip the effective cap is ~105 against offer ~151: had the loan
	// survived the flip, the delay would have stayed near zero.
	if d := got.QueueDelaySec[0][2]; d < 0.3 {
		t.Fatalf("post-flip queue delay %v; the crash did not revoke the loan", d)
	}
	// And the run as a whole delivered less than an outage-free one.
	clean, _ := SimulateWithLendingOutages(caps, demand, lend, nil)
	if got.DeliveredBps[0] >= clean.DeliveredBps[0]-1 {
		t.Fatalf("revocation cost no throughput: %v vs %v", got.DeliveredBps[0], clean.DeliveredBps[0])
	}
}
