package throttle

import "testing"

// Edge cases of the Appendix B lending model: zero-cap tenants on both
// sides of a loan, revocation at the period boundary, and the clamp that
// keeps a lender's effective cap from going below its own demand.

// TestLendingZeroCapBorrower: a VD with zero nominal caps can still borrow
// the group's headroom — and without lending it is throttled every second it
// offers load.
func TestLendingZeroCapBorrower(t *testing.T) {
	caps := []Caps{{}, {Tput: 1000, IOPS: 100}}
	demand := [][]Demand{
		flatDemand(20, Demand{WriteBps: 200, WriteIOPS: 2}),
		flatDemand(20, Demand{}),
	}
	without := Simulate(caps, demand)
	if without.ThrottledSecs[0] != 20 {
		t.Fatalf("zero-cap VD throttled %d/20 secs without lending", without.ThrottledSecs[0])
	}
	with, msgs := SimulateWithLendingAudited(caps, demand, Lending{Rate: 0.5, PeriodSec: 10})
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	// 0.5 x AR = 400 B/s and 49 IOPS borrowed, both above the offered load.
	if with.ThrottledSecs[0] != 0 {
		t.Errorf("zero-cap VD still throttled %d secs after borrowing", with.ThrottledSecs[0])
	}
	if with.ThrottledSecs[1] != 0 {
		t.Errorf("idle lender throttled %d secs", with.ThrottledSecs[1])
	}
}

// TestLendingZeroCapLenderHasNothingToGive: when the only peer has zero
// caps, no headroom exists, so lending must change nothing — and must not
// drive any effective cap negative.
func TestLendingZeroCapLenderHasNothingToGive(t *testing.T) {
	caps := []Caps{{Tput: 1000, IOPS: 10}, {}}
	demand := [][]Demand{
		flatDemand(15, Demand{WriteBps: 100, WriteIOPS: 50}),
		flatDemand(15, Demand{}),
	}
	without := Simulate(caps, demand)
	with, msgs := SimulateWithLendingAudited(caps, demand, Lending{Rate: 0.8, PeriodSec: 5})
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	if with.TotalThrottledSecs != without.TotalThrottledSecs {
		t.Errorf("lending with no lendable headroom changed throttling: %d != %d",
			with.TotalThrottledSecs, without.TotalThrottledSecs)
	}
	for vd := range caps {
		if with.ThrottledSecs[vd] != without.ThrottledSecs[vd] {
			t.Errorf("vd %d: throttled secs %d != %d", vd, with.ThrottledSecs[vd], without.ThrottledSecs[vd])
		}
	}
}

// TestLendingRevokedAtPeriodBoundary: a loan lives only until the next
// period boundary ("Init {Cap_i}" in Algorithm 2). The borrower sails
// through the first period on borrowed cap, then the reset returns the
// group to nominal just as the lender's own demand arrives, and the
// borrower is throttled for the whole second period.
func TestLendingRevokedAtPeriodBoundary(t *testing.T) {
	const period = 5
	caps := []Caps{{Tput: 100, IOPS: 1000}, {Tput: 1000, IOPS: 1000}}
	demand := [][]Demand{
		flatDemand(2*period, Demand{WriteBps: 200, WriteIOPS: 1}),
		append(flatDemand(period, Demand{}), flatDemand(period, Demand{WriteBps: 1000, WriteIOPS: 1})...),
	}
	res, msgs := SimulateWithLendingAudited(caps, demand, Lending{Rate: 0.5, PeriodSec: period})
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	// Period 1: borrowed 0.5 x (1100-200) = 450 B/s on top of the 100 cap.
	// Period 2: reset to nominal, no available resource left to borrow.
	if res.ThrottledSecs[0] != period {
		t.Fatalf("borrower throttled %d secs, want exactly the %d post-revocation secs", res.ThrottledSecs[0], period)
	}
	for _, ev := range res.Events {
		if ev.VD == 0 && ev.Sec < period {
			t.Fatalf("borrower throttled at sec %d despite holding the loan", ev.Sec)
		}
	}
	// The revocation must make the lender whole: its full-cap demand in
	// period 2 flows un-throttled.
	if res.ThrottledSecs[1] != 0 {
		t.Errorf("lender throttled %d secs after the loan was revoked", res.ThrottledSecs[1])
	}
}

// TestLendingClampsAtLenderCapBoundary: when p x AR exceeds the lenders'
// headroom, the loan is clamped so no lender's effective cap drops below its
// current demand. The scenario throttles the borrower in the IOPS dimension
// while the throughput dimension has far more available resource than the
// single lender can cover.
func TestLendingClampsAtLenderCapBoundary(t *testing.T) {
	caps := []Caps{{Tput: 10000, IOPS: 10}, {Tput: 100, IOPS: 1000}}
	demand := [][]Demand{
		flatDemand(10, Demand{WriteBps: 50, WriteIOPS: 50}),
		flatDemand(10, Demand{WriteBps: 50}),
	}
	res, msgs := SimulateWithLendingAudited(caps, demand, Lending{Rate: 0.5, PeriodSec: 10})
	// The audit is the assertion: an unclamped transfer would send the
	// lender's throughput cap negative and blow the summed-budget law.
	if len(msgs) != 0 {
		t.Fatalf("audit violations: %v", msgs)
	}
	if res.ThrottledSecs[0] != 0 {
		t.Errorf("borrower throttled %d secs despite ample IOPS headroom", res.ThrottledSecs[0])
	}
	if res.ThrottledSecs[1] != 0 {
		t.Errorf("lender throttled %d secs; the clamp should stop at its demand", res.ThrottledSecs[1])
	}
}
