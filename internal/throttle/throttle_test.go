package throttle

import (
	"math"
	"testing"
)

// flatDemand builds a constant demand series.
func flatDemand(dur int, d Demand) []Demand {
	out := make([]Demand, dur)
	for i := range out {
		out[i] = d
	}
	return out
}

func TestNoThrottleUnderCap(t *testing.T) {
	caps := []Caps{{Tput: 100, IOPS: 100}}
	demand := [][]Demand{flatDemand(10, Demand{WriteBps: 50, WriteIOPS: 50})}
	res := Simulate(caps, demand)
	if res.TotalThrottledSecs != 0 || len(res.Events) != 0 {
		t.Fatalf("under-cap run throttled: %+v", res)
	}
	if math.Abs(res.DeliveredBps[0]-50) > 1e-9 {
		t.Fatalf("delivered = %v, want 50", res.DeliveredBps[0])
	}
}

func TestThroughputThrottle(t *testing.T) {
	caps := []Caps{{Tput: 100, IOPS: 1e9}}
	demand := [][]Demand{flatDemand(5, Demand{WriteBps: 200, WriteIOPS: 1})}
	res := Simulate(caps, demand)
	if res.ThrottledSecs[0] != 5 {
		t.Fatalf("throttled secs = %d, want 5", res.ThrottledSecs[0])
	}
	for _, ev := range res.Events {
		if ev.Dim != ByTput {
			t.Fatalf("dimension = %v, want throughput", ev.Dim)
		}
		if ev.WrRatio != 1 {
			t.Fatalf("wr_ratio = %v, want 1 (pure write)", ev.WrRatio)
		}
	}
	// Delivered clamps at the cap.
	if res.DeliveredBps[0] > 100+1e-9 {
		t.Fatalf("delivered %v above cap", res.DeliveredBps[0])
	}
}

func TestIOPSThrottle(t *testing.T) {
	caps := []Caps{{Tput: 1e12, IOPS: 10}}
	demand := [][]Demand{flatDemand(3, Demand{ReadBps: 1, ReadIOPS: 100})}
	res := Simulate(caps, demand)
	if res.ThrottledSecs[0] != 3 {
		t.Fatalf("throttled secs = %d, want 3", res.ThrottledSecs[0])
	}
	if res.Events[0].Dim != ByIOPS {
		t.Fatalf("dimension = %v, want iops", res.Events[0].Dim)
	}
	if res.Events[0].WrRatio != -1 {
		t.Fatalf("wr_ratio = %v, want -1 (pure read)", res.Events[0].WrRatio)
	}
}

func TestBacklogExtendsThrottle(t *testing.T) {
	// One second of 3x-cap burst, then idle: the backlog takes two more
	// seconds to drain, so three seconds show queued IO.
	caps := []Caps{{Tput: 100, IOPS: 1e9}}
	demand := [][]Demand{make([]Demand, 6)}
	demand[0][0] = Demand{WriteBps: 300, WriteIOPS: 3}
	res := Simulate(caps, demand)
	if res.ThrottledSecs[0] != 2 {
		// t=0: offer 300 > 100 (throttle, backlog 200 -> deliver 100)
		// t=1: offer 200 > 100 (throttle, backlog 100)
		// t=2: offer 100 == cap (no throttle), drains fully.
		t.Fatalf("throttled secs = %d, want 2", res.ThrottledSecs[0])
	}
}

func TestRARReflectsGroupHeadroom(t *testing.T) {
	// VD0 throttles while VD1 idles: the group has plenty of headroom, so
	// the event's RAR should be high (the Fig 3(b) symptom).
	caps := []Caps{{Tput: 100, IOPS: 1e9}, {Tput: 900, IOPS: 1e9}}
	demand := [][]Demand{
		flatDemand(2, Demand{WriteBps: 200, WriteIOPS: 1}),
		flatDemand(2, Demand{WriteBps: 0}),
	}
	res := Simulate(caps, demand)
	if len(res.Events) == 0 {
		t.Fatal("expected throttle events")
	}
	// Group cap 1000, load 200 => RAR 0.8.
	if got := res.Events[0].RAR; math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("RAR = %v, want 0.8", got)
	}
}

func TestRARClampsToZero(t *testing.T) {
	caps := []Caps{{Tput: 100, IOPS: 1e9}}
	demand := [][]Demand{flatDemand(1, Demand{WriteBps: 500, WriteIOPS: 1})}
	res := Simulate(caps, demand)
	if res.Events[0].RAR != 0 {
		t.Fatalf("overloaded RAR = %v, want 0", res.Events[0].RAR)
	}
}

func TestSimulatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched demand should panic")
		}
	}()
	Simulate([]Caps{{Tput: 1, IOPS: 1}}, nil)
}

func TestLendingShortensThrottle(t *testing.T) {
	// VD0 bursts to 2x cap for a while; VD1 idles with a huge cap. With
	// lending, VD0 borrows headroom and throttles less.
	caps := []Caps{{Tput: 100, IOPS: 1e9}, {Tput: 900, IOPS: 1e9}}
	dur := 120
	d0 := make([]Demand, dur)
	for i := 0; i < 30; i++ {
		d0[i] = Demand{WriteBps: 200, WriteIOPS: 1}
	}
	demand := [][]Demand{d0, flatDemand(dur, Demand{})}

	without := Simulate(caps, demand)
	with := SimulateWithLending(caps, demand, Lending{Rate: 0.8, PeriodSec: 60})
	if with.TotalThrottledSecs >= without.TotalThrottledSecs {
		t.Fatalf("lending did not help: %d >= %d", with.TotalThrottledSecs, without.TotalThrottledSecs)
	}
	gain := LendingGain(without, with)
	if !(gain > 0) {
		t.Fatalf("lending gain = %v, want positive", gain)
	}
}

func TestLendingCanBackfire(t *testing.T) {
	// The lender (VD1) bursts right after lending its cap away: it now
	// throttles where it would not have, which is the negative-gain case the
	// paper warns about (§5.3).
	caps := []Caps{{Tput: 100, IOPS: 1e9}, {Tput: 200, IOPS: 1e9}}
	dur := 60
	d0 := make([]Demand, dur)
	d1 := make([]Demand, dur)
	// VD0 throttles briefly at t=0, triggering a borrow for the period.
	d0[0] = Demand{WriteBps: 150, WriteIOPS: 1}
	// VD1 then runs exactly at its nominal cap for the rest of the period:
	// fine without lending, throttled after lending reduced its cap.
	for i := 1; i < dur; i++ {
		d1[i] = Demand{WriteBps: 200, WriteIOPS: 2}
	}
	demand := [][]Demand{d0, d1}

	without := Simulate(caps, demand)
	with := SimulateWithLending(caps, demand, Lending{Rate: 0.8, PeriodSec: 60})
	if gain := LendingGain(without, with); !(gain < 0) {
		t.Fatalf("expected negative lending gain, got %v (wo=%d w=%d)",
			gain, without.TotalThrottledSecs, with.TotalThrottledSecs)
	}
}

func TestLendingConservesGroupCap(t *testing.T) {
	caps := []Caps{{Tput: 100, IOPS: 100}, {Tput: 300, IOPS: 300}, {Tput: 600, IOPS: 600}}
	eff := append([]Caps(nil), caps...)
	demand := [][]Demand{
		flatDemand(1, Demand{WriteBps: 150, WriteIOPS: 150}),
		flatDemand(1, Demand{WriteBps: 50, WriteIOPS: 50}),
		flatDemand(1, Demand{WriteBps: 100, WriteIOPS: 100}),
	}
	l := Lending{Rate: 0.5, PeriodSec: 60}
	applyLending(&l, eff, caps, demand, 0, 0, nil)
	var sumT, sumI float64
	for _, c := range eff {
		sumT += c.Tput
		sumI += c.IOPS
	}
	if math.Abs(sumT-1000) > 1e-9 || math.Abs(sumI-1000) > 1e-9 {
		t.Fatalf("lending changed group cap: %v/%v", sumT, sumI)
	}
	if eff[0].Tput <= caps[0].Tput {
		t.Fatal("borrower cap did not increase")
	}
	if eff[1].Tput >= caps[1].Tput || eff[2].Tput >= caps[2].Tput {
		t.Fatal("lender caps did not decrease")
	}
}

func TestLendingGainNaNWhenIdle(t *testing.T) {
	r := Result{}
	if !math.IsNaN(LendingGain(r, r)) {
		t.Fatal("gain of two idle runs should be NaN")
	}
}

func TestSimulateWithLendingPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 should panic")
		}
	}()
	SimulateWithLending(nil, nil, Lending{Rate: 0})
}

func TestReductionRate(t *testing.T) {
	// Equation 3: VD(t)=100, AR=100, p=0.5 => 100/150.
	if got := ReductionRate(100, 100, 0.5); math.Abs(got-100.0/150.0) > 1e-12 {
		t.Fatalf("ReductionRate = %v", got)
	}
	if got := ReductionRate(100, 0, 0.8); got != 1 {
		t.Fatalf("no AR should give rate 1, got %v", got)
	}
	if got := ReductionRate(100, -50, 0.8); got != 1 {
		t.Fatalf("negative AR should clamp, got %v", got)
	}
	if !math.IsNaN(ReductionRate(0, 100, 0.5)) {
		t.Fatal("zero load should be NaN")
	}
}

func TestDimensionString(t *testing.T) {
	if ByTput.String() != "throughput" || ByIOPS.String() != "iops" {
		t.Fatal("Dimension strings wrong")
	}
}

func TestDemandSums(t *testing.T) {
	d := Demand{ReadBps: 1, WriteBps: 2, ReadIOPS: 3, WriteIOPS: 4}
	if d.Bps() != 3 || d.IOPS() != 7 {
		t.Fatalf("sums = %v/%v", d.Bps(), d.IOPS())
	}
}

func TestLendingAtMostOncePerPeriod(t *testing.T) {
	// VD0 throttles throughout; with a tiny lending rate it stays throttled,
	// but the lender must only be debited once per period. We detect this by
	// checking the lender never throttles despite running just under its
	// nominal cap: repeated debits would push it over.
	caps := []Caps{{Tput: 100, IOPS: 1e9}, {Tput: 1000, IOPS: 1e9}}
	dur := 30
	demand := [][]Demand{
		flatDemand(dur, Demand{WriteBps: 500, WriteIOPS: 1}),
		flatDemand(dur, Demand{WriteBps: 700, WriteIOPS: 1}),
	}
	with := SimulateWithLending(caps, demand, Lending{Rate: 0.1, PeriodSec: 1000})
	if with.ThrottledSecs[1] != 0 {
		t.Fatalf("lender throttled %d secs; lending applied more than once per period?", with.ThrottledSecs[1])
	}
}
