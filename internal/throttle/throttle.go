// Package throttle models the hypervisor's per-VD traffic throttling (§5):
// every virtual disk carries a throughput cap and an IOPS cap (read+write
// aggregated, like other EBS vendors); IOs beyond the cap queue in the
// hypervisor. The package measures the symptoms the paper reports (abundant
// Resource Available Rate during throttles, one-sided write-dominated
// throttling) and implements the "limited lending" mitigation of Appendix B
// together with its evaluation metrics (reduction rate, lending gain).
package throttle

import (
	"fmt"
	"math"

	"ebslab/internal/stats"
)

// Caps is a VD's subscription: both dimensions are read+write aggregates.
type Caps struct {
	Tput float64 // bytes/s
	IOPS float64 // ops/s
}

// Demand is one second of offered load from a VD.
type Demand struct {
	ReadBps   float64
	WriteBps  float64
	ReadIOPS  float64
	WriteIOPS float64
}

// Bps returns summed read+write throughput demand.
func (d Demand) Bps() float64 { return d.ReadBps + d.WriteBps }

// IOPS returns summed read+write IOPS demand.
func (d Demand) IOPS() float64 { return d.ReadIOPS + d.WriteIOPS }

// Dimension names which cap triggered a throttle.
type Dimension uint8

// Throttle dimensions.
const (
	ByTput Dimension = iota
	ByIOPS
)

func (d Dimension) String() string {
	if d == ByTput {
		return "throughput"
	}
	return "iops"
}

// Event is one (vd, second) throttle occurrence.
type Event struct {
	VD  int // index within the group
	Sec int
	Dim Dimension
	// RAR is the group's Resource Available Rate (Equation 1) in the
	// triggering dimension at the time of the throttle.
	RAR float64
	// WrRatio is the normalized write-to-read ratio (Equation 2) of the
	// VD's demand in the triggering dimension.
	WrRatio float64
	// Load is the VD's offered load in the triggering dimension, and AR the
	// group's absolute available resource there — the inputs of the
	// reduction-rate analysis (Equation 3).
	Load float64
	AR   float64
}

// Result summarizes a group simulation.
type Result struct {
	// ThrottledSecs[vd] counts seconds during which vd had queued IO.
	ThrottledSecs []int
	// TotalThrottledSecs sums ThrottledSecs.
	TotalThrottledSecs int
	// Events lists every throttle occurrence with its RAR and wr_ratio.
	Events []Event
	// DeliveredBps[vd] is the mean delivered throughput.
	DeliveredBps []float64
	// QueueDelaySec[vd][t] estimates how long an IO arriving at second t
	// would wait in the hypervisor queue: the end-of-second backlog divided
	// by the effective cap (in the dimension draining slowest). Zero when
	// unthrottled. The end-to-end simulator folds this into compute-node
	// latency.
	QueueDelaySec [][]float64
}

// Simulate replays a group of VDs (a multi-VD VM, or a tenant's multi-VM
// node with caps flattened per disk) against the hard-threshold throttle.
// demand is indexed [vd][sec]; caps is indexed [vd]. The throttle is a
// queueing model: demand beyond the cap backlogs in the hypervisor and
// drains in later seconds, so a burst's throttle outlasts the burst itself
// (the latency-spike behaviour Calcspar reported on AWS EBS).
func Simulate(caps []Caps, demand [][]Demand) Result {
	return simulate(caps, demand, nil, nil, nil, nil, nil)
}

// Scratch holds the working buffers of a throttle replay so repeated
// simulations (the engine replays one per virtual disk per run) allocate
// nothing in steady state. The zero value is ready to use. A Scratch is not
// safe for concurrent use, and the Result returned by its Simulate aliases
// its buffers: it is valid only until the next call on the same Scratch.
type Scratch struct {
	throttledSecs []int
	deliveredBps  []float64
	queueDelay    [][]float64
	queueDelayBuf []float64
	events        []Event
	backlogB      []float64
	backlogOps    []float64
	eff           []Caps
	lent          []bool
	isDown        []bool
}

// Simulate is Simulate reusing the scratch buffers: identical arithmetic,
// identical Result values, zero steady-state allocation. The Result is
// valid until the next call on this Scratch.
func (sc *Scratch) Simulate(caps []Caps, demand [][]Demand) Result {
	return simulate(caps, demand, nil, nil, nil, sc, nil)
}

// SimulateScheduled is Simulate under an externally planned cap schedule:
// before each second, the effective caps are reset to nominal and capsAt may
// adjust them in place (the control plane's per-epoch lending grants arrive
// this way). The schedule is trusted here — fleet-wide grant conservation is
// an invariant-package law, since a single scheduled group no longer sees
// its lenders. A nil capsAt degrades to Simulate.
func (sc *Scratch) SimulateScheduled(caps []Caps, demand [][]Demand, capsAt func(t int, eff []Caps)) Result {
	return simulate(caps, demand, nil, nil, nil, sc, capsAt)
}

// SimulateScheduledAudited is SimulateScheduled with the delivery laws
// audited. The per-second budget law is checked against the *scheduled* caps
// (a scheduled group may legitimately exceed its nominal sum while borrowing
// fleet-wide); scheduled caps must still be non-negative.
func SimulateScheduledAudited(caps []Caps, demand [][]Demand, capsAt func(t int, eff []Caps)) (Result, []string) {
	a := &auditLog{}
	res := simulate(caps, demand, nil, nil, a, nil, capsAt)
	return res, a.msgs
}

// intsFor returns a zeroed length-n int slice, reusing buf's capacity.
func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// f64For returns a zeroed length-n float64 slice, reusing buf's capacity.
func f64For(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// boolFor returns a zeroed length-n bool slice, reusing buf's capacity.
func boolFor(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// SimulateAudited is Simulate with the conservation audit enabled: every
// second the replay asserts the grant-budget laws (effective caps are
// non-negative and sum to the nominal caps, delivered traffic never exceeds
// the effective cap, backlogs stay within the finite queue bound). It
// returns the result together with any violations found; an empty slice
// means every law held.
func SimulateAudited(caps []Caps, demand [][]Demand) (Result, []string) {
	a := &auditLog{}
	res := simulate(caps, demand, nil, nil, a, nil, nil)
	return res, a.msgs
}

// SimulateWithLendingAudited is SimulateWithLending with the conservation
// audit enabled (see SimulateAudited). Lending makes the budget law
// non-trivial: borrowed headroom must be debited from lenders so the
// group's summed effective cap never exceeds its summed nominal cap.
func SimulateWithLendingAudited(caps []Caps, demand [][]Demand, lend Lending) (Result, []string) {
	if lend.Rate <= 0 || lend.Rate >= 1 {
		panic("throttle: lending rate must be in (0,1)")
	}
	if lend.PeriodSec <= 0 {
		lend.PeriodSec = 60
	}
	a := &auditLog{}
	res := simulate(caps, demand, &lend, nil, a, nil, nil)
	return res, a.msgs
}

// SimulateWithLendingOutages replays the group with lending while a crash
// schedule revokes caps: whenever any VD's down state flips (a crash window
// opens or closes), every effective cap resets to nominal — outstanding
// loans are revoked — and the per-period borrow budget is reset; a VD that
// is currently down can neither borrow nor lend. down(t, vd) reports
// whether vd is inside a crash window at second t (adapt BS windows via the
// VD's placement). The grant-budget audit runs and its findings are
// returned; revocation must never break conservation.
func SimulateWithLendingOutages(caps []Caps, demand [][]Demand, lend Lending, down func(t, vd int) bool) (Result, []string) {
	if lend.Rate <= 0 || lend.Rate >= 1 {
		panic("throttle: lending rate must be in (0,1)")
	}
	if lend.PeriodSec <= 0 {
		lend.PeriodSec = 60
	}
	a := &auditLog{}
	res := simulate(caps, demand, &lend, down, a, nil, nil)
	return res, a.msgs
}

// auditLog accumulates conservation violations, capped so a systemic bug
// cannot flood memory.
type auditLog struct {
	msgs    []string
	dropped int
}

// maxAuditMsgs bounds how many violations one audit retains.
const maxAuditMsgs = 32

func (a *auditLog) addf(format string, args ...any) {
	if len(a.msgs) >= maxAuditMsgs {
		a.dropped++
		return
	}
	a.msgs = append(a.msgs, fmt.Sprintf(format, args...))
}

// auditTol is the relative tolerance of the audit comparisons: backlog
// arithmetic accumulates float residue, so exact comparisons would flag
// rounding, not bugs.
const auditTol = 1e-6

// checkSecond asserts the per-second grant-budget laws after lending.
func (a *auditLog) checkSecond(t int, eff, nominal []Caps) {
	var effT, effI, nomT, nomI float64
	for i := range eff {
		if eff[i].Tput < 0 || eff[i].IOPS < 0 {
			a.addf("sec %d: vd %d effective cap negative (%v tput, %v iops)", t, i, eff[i].Tput, eff[i].IOPS)
		}
		effT += eff[i].Tput
		effI += eff[i].IOPS
		nomT += nominal[i].Tput
		nomI += nominal[i].IOPS
	}
	if effT > nomT*(1+auditTol)+auditTol {
		a.addf("sec %d: summed effective tput cap %v exceeds nominal budget %v", t, effT, nomT)
	}
	if effI > nomI*(1+auditTol)+auditTol {
		a.addf("sec %d: summed effective iops cap %v exceeds nominal budget %v", t, effI, nomI)
	}
}

// checkDelivery asserts per-VD delivery and queue laws for one second.
func (a *auditLog) checkDelivery(t, vd int, deliveredB, deliveredOps float64, eff Caps, backlogB, backlogOps, delay float64) {
	if deliveredB > eff.Tput*(1+auditTol)+auditTol {
		a.addf("sec %d: vd %d delivered %v B/s over effective cap %v", t, vd, deliveredB, eff.Tput)
	}
	if deliveredOps > eff.IOPS*(1+auditTol)+auditTol {
		a.addf("sec %d: vd %d delivered %v IOPS over effective cap %v", t, vd, deliveredOps, eff.IOPS)
	}
	if backlogB < 0 || backlogOps < 0 {
		a.addf("sec %d: vd %d negative backlog (%v B, %v ops)", t, vd, backlogB, backlogOps)
	}
	if lim := maxQueueSecs * eff.Tput; backlogB > lim*(1+auditTol)+auditTol {
		a.addf("sec %d: vd %d byte backlog %v over queue bound %v", t, vd, backlogB, lim)
	}
	if lim := maxQueueSecs * eff.IOPS; backlogOps > lim*(1+auditTol)+auditTol {
		a.addf("sec %d: vd %d ops backlog %v over queue bound %v", t, vd, backlogOps, lim)
	}
	if delay < 0 || delay > maxQueueSecs*(1+auditTol)+auditTol {
		a.addf("sec %d: vd %d queue delay %v outside [0, %v]", t, vd, delay, maxQueueSecs)
	}
}

// simulate optionally applies a lending policy, a crash schedule (down
// state per (second, VD)), an audit, a scratch buffer set, and a scheduled
// cap hook; any of them may be nil. capsAt is mutually exclusive with lend
// and down (the schedule already encodes any grants). With a scratch, the
// returned slices alias its buffers.
func simulate(caps []Caps, demand [][]Demand, lend *Lending, down func(t, vd int) bool, audit *auditLog, sc *Scratch, capsAt func(t int, eff []Caps)) Result {
	if capsAt != nil && (lend != nil || down != nil) {
		panic("throttle: scheduled caps cannot combine with lending or outages")
	}
	n := len(caps)
	if len(demand) != n {
		panic("throttle: demand rows must match caps")
	}
	var dur int
	if n > 0 {
		dur = len(demand[0])
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.throttledSecs = intsFor(sc.throttledSecs, n)
	sc.deliveredBps = f64For(sc.deliveredBps, n)
	// Queue-delay rows are fully overwritten (every (vd, t) cell is assigned
	// each second), so the flat backing buffer is reused without zeroing.
	if cap(sc.queueDelay) < n {
		sc.queueDelay = make([][]float64, n)
	}
	sc.queueDelay = sc.queueDelay[:n]
	if cap(sc.queueDelayBuf) < n*dur {
		sc.queueDelayBuf = make([]float64, n*dur)
	}
	flat := sc.queueDelayBuf[:n*dur]
	for vd := range sc.queueDelay {
		sc.queueDelay[vd] = flat[vd*dur : (vd+1)*dur : (vd+1)*dur]
	}
	res := Result{
		ThrottledSecs: sc.throttledSecs,
		DeliveredBps:  sc.deliveredBps,
		QueueDelaySec: sc.queueDelay,
		Events:        sc.events[:0],
	}
	backlogB := f64For(sc.backlogB, n)
	backlogOps := f64For(sc.backlogOps, n)
	sc.backlogB, sc.backlogOps = backlogB, backlogOps

	// Effective caps, mutated by lending within a period and reset at period
	// boundaries.
	if cap(sc.eff) < n {
		sc.eff = make([]Caps, n)
	}
	eff := sc.eff[:n]
	copy(eff, caps)
	sc.eff = eff
	lentThisPeriod := boolFor(sc.lent, n)
	isDown := boolFor(sc.isDown, n)
	sc.lent, sc.isDown = lentThisPeriod, isDown

	var sumCapT, sumCapI float64
	for _, c := range caps {
		sumCapT += c.Tput
		sumCapI += c.IOPS
	}

	for t := 0; t < dur; t++ {
		if capsAt != nil {
			copy(eff, caps)
			capsAt(t, eff)
		}
		if lend != nil && lend.PeriodSec > 0 && t%lend.PeriodSec == 0 {
			copy(eff, caps)
			for i := range lentThisPeriod {
				lentThisPeriod[i] = false
			}
		}
		if down != nil {
			// A crash window opening or closing anywhere in the group revokes
			// every outstanding loan: effective caps snap back to nominal and
			// the borrow budget resets. Grants must never outlive the fleet
			// state they were computed against.
			flipped := false
			for vd := 0; vd < n; vd++ {
				if d := down(t, vd); d != isDown[vd] {
					isDown[vd] = d
					flipped = true
				}
			}
			if flipped {
				copy(eff, caps)
				for i := range lentThisPeriod {
					lentThisPeriod[i] = false
				}
			}
		}
		// Group-level totals for RAR (Equation 1) use nominal caps and the
		// group's offered load this second.
		var vmT, vmI float64
		for vd := 0; vd < n; vd++ {
			vmT += demand[vd][t].Bps()
			vmI += demand[vd][t].IOPS()
		}

		for vd := 0; vd < n; vd++ {
			d := demand[vd][t]
			offerB := d.Bps() + backlogB[vd]
			offerOps := d.IOPS() + backlogOps[vd]

			overT := overCap(offerB, eff[vd].Tput)
			overI := overCap(offerOps, eff[vd].IOPS)
			if (overT || overI) && lend != nil && !lentThisPeriod[vd] && !isDown[vd] {
				// Appendix B: on the first throttle of this VD in the
				// period, it borrows p x AR(t) from unthrottled peers.
				// A crashed VD is unreachable and may not borrow.
				lentThisPeriod[vd] = true
				applyLending(lend, eff, caps, demand, t, vd, isDown)
				overT = overCap(offerB, eff[vd].Tput)
				overI = overCap(offerOps, eff[vd].IOPS)
			}

			if overT || overI {
				res.ThrottledSecs[vd]++
				res.TotalThrottledSecs++
				dim := ByTput
				if overI && !overT {
					dim = ByIOPS
				}
				ev := Event{VD: vd, Sec: t, Dim: dim}
				// Load is the *delivered* traffic (clipped at the cap), as
				// the paper's metric data would record it; Equation 3's
				// VD(t) is measured, post-throttle throughput.
				if dim == ByTput {
					ev.RAR = rar(sumCapT, vmT)
					ev.WrRatio = stats.WrRatio(d.WriteBps, d.ReadBps)
					ev.Load = math.Min(offerB, eff[vd].Tput)
					ev.AR = math.Max(0, sumCapT-vmT)
				} else {
					ev.RAR = rar(sumCapI, vmI)
					ev.WrRatio = stats.WrRatio(d.WriteIOPS, d.ReadIOPS)
					ev.Load = math.Min(offerOps, eff[vd].IOPS)
					ev.AR = math.Max(0, sumCapI-vmI)
				}
				res.Events = append(res.Events, ev)
			}

			deliveredB := math.Min(offerB, eff[vd].Tput)
			deliveredOps := math.Min(offerOps, eff[vd].IOPS)
			// The binding constraint is whichever dimension clips harder.
			fracB, fracOps := 1.0, 1.0
			if offerB > 0 {
				fracB = deliveredB / offerB
			}
			if offerOps > 0 {
				fracOps = deliveredOps / offerOps
			}
			frac := math.Min(fracB, fracOps)
			backlogB[vd] = offerB * (1 - frac)
			backlogOps[vd] = offerOps * (1 - frac)
			// Hypervisor queues are finite: at most maxQueueSecs worth of
			// drain can be buffered; beyond that the guest blocks and the
			// excess demand never materializes as queued IO.
			if lim := maxQueueSecs * eff[vd].Tput; backlogB[vd] > lim {
				backlogB[vd] = lim
			}
			if lim := maxQueueSecs * eff[vd].IOPS; backlogOps[vd] > lim {
				backlogOps[vd] = lim
			}
			res.DeliveredBps[vd] += offerB * frac
			var delay float64
			if eff[vd].Tput > 0 {
				delay = backlogB[vd] / eff[vd].Tput
			}
			if eff[vd].IOPS > 0 {
				if d := backlogOps[vd] / eff[vd].IOPS; d > delay {
					delay = d
				}
			}
			res.QueueDelaySec[vd][t] = delay
			if audit != nil {
				audit.checkDelivery(t, vd, deliveredB, deliveredOps, eff[vd], backlogB[vd], backlogOps[vd], delay)
			}
		}
		if audit != nil {
			nominal := caps
			if capsAt != nil {
				// A scheduled group is one node of a fleet-wide lending plan;
				// its budget law is conservation against the schedule itself
				// (the fleet-level law lives in the invariant package).
				nominal = eff
			}
			audit.checkSecond(t, eff, nominal)
		}
	}
	if dur > 0 {
		for vd := range res.DeliveredBps {
			res.DeliveredBps[vd] /= float64(dur)
		}
	}
	if audit != nil {
		var sum int
		for _, s := range res.ThrottledSecs {
			sum += s
		}
		if sum != res.TotalThrottledSecs {
			audit.addf("throttled-seconds accounting drift: per-VD sum %d != total %d", sum, res.TotalThrottledSecs)
		}
		if audit.dropped > 0 {
			audit.addf("(%d further violations suppressed)", audit.dropped)
		}
	}
	sc.events = res.Events // retain grown capacity across scratch reuses
	return res
}

// maxQueueSecs bounds the hypervisor IO queue: the backlog can hold at most
// this many seconds of cap-rate drain (beyond that the guest's submission
// blocks, closing the loop).
const maxQueueSecs = 4.0

// overCap compares offered load against a cap with a relative tolerance so
// floating-point residue from backlog arithmetic cannot fabricate throttles.
func overCap(offer, cap float64) bool {
	return offer > cap*(1+1e-9)+1e-9
}

// rar computes Equation 1, clamped to [0,1]; an overloaded group reports 0.
func rar(cap, load float64) float64 {
	if cap <= 0 {
		return math.NaN()
	}
	r := (cap - load) / cap
	if r < 0 {
		return 0
	}
	return r
}
