// Package throttle models the hypervisor's per-VD traffic throttling (§5):
// every virtual disk carries a throughput cap and an IOPS cap (read+write
// aggregated, like other EBS vendors); IOs beyond the cap queue in the
// hypervisor. The package measures the symptoms the paper reports (abundant
// Resource Available Rate during throttles, one-sided write-dominated
// throttling) and implements the "limited lending" mitigation of Appendix B
// together with its evaluation metrics (reduction rate, lending gain).
package throttle

import (
	"math"

	"ebslab/internal/stats"
)

// Caps is a VD's subscription: both dimensions are read+write aggregates.
type Caps struct {
	Tput float64 // bytes/s
	IOPS float64 // ops/s
}

// Demand is one second of offered load from a VD.
type Demand struct {
	ReadBps   float64
	WriteBps  float64
	ReadIOPS  float64
	WriteIOPS float64
}

// Bps returns summed read+write throughput demand.
func (d Demand) Bps() float64 { return d.ReadBps + d.WriteBps }

// IOPS returns summed read+write IOPS demand.
func (d Demand) IOPS() float64 { return d.ReadIOPS + d.WriteIOPS }

// Dimension names which cap triggered a throttle.
type Dimension uint8

// Throttle dimensions.
const (
	ByTput Dimension = iota
	ByIOPS
)

func (d Dimension) String() string {
	if d == ByTput {
		return "throughput"
	}
	return "iops"
}

// Event is one (vd, second) throttle occurrence.
type Event struct {
	VD  int // index within the group
	Sec int
	Dim Dimension
	// RAR is the group's Resource Available Rate (Equation 1) in the
	// triggering dimension at the time of the throttle.
	RAR float64
	// WrRatio is the normalized write-to-read ratio (Equation 2) of the
	// VD's demand in the triggering dimension.
	WrRatio float64
	// Load is the VD's offered load in the triggering dimension, and AR the
	// group's absolute available resource there — the inputs of the
	// reduction-rate analysis (Equation 3).
	Load float64
	AR   float64
}

// Result summarizes a group simulation.
type Result struct {
	// ThrottledSecs[vd] counts seconds during which vd had queued IO.
	ThrottledSecs []int
	// TotalThrottledSecs sums ThrottledSecs.
	TotalThrottledSecs int
	// Events lists every throttle occurrence with its RAR and wr_ratio.
	Events []Event
	// DeliveredBps[vd] is the mean delivered throughput.
	DeliveredBps []float64
	// QueueDelaySec[vd][t] estimates how long an IO arriving at second t
	// would wait in the hypervisor queue: the end-of-second backlog divided
	// by the effective cap (in the dimension draining slowest). Zero when
	// unthrottled. The end-to-end simulator folds this into compute-node
	// latency.
	QueueDelaySec [][]float64
}

// Simulate replays a group of VDs (a multi-VD VM, or a tenant's multi-VM
// node with caps flattened per disk) against the hard-threshold throttle.
// demand is indexed [vd][sec]; caps is indexed [vd]. The throttle is a
// queueing model: demand beyond the cap backlogs in the hypervisor and
// drains in later seconds, so a burst's throttle outlasts the burst itself
// (the latency-spike behaviour Calcspar reported on AWS EBS).
func Simulate(caps []Caps, demand [][]Demand) Result {
	return simulate(caps, demand, nil)
}

// simulate optionally applies a lending policy; lend may be nil.
func simulate(caps []Caps, demand [][]Demand, lend *Lending) Result {
	n := len(caps)
	if len(demand) != n {
		panic("throttle: demand rows must match caps")
	}
	var dur int
	if n > 0 {
		dur = len(demand[0])
	}
	res := Result{
		ThrottledSecs: make([]int, n),
		DeliveredBps:  make([]float64, n),
		QueueDelaySec: make([][]float64, n),
	}
	for vd := range res.QueueDelaySec {
		res.QueueDelaySec[vd] = make([]float64, dur)
	}
	backlogB := make([]float64, n)
	backlogOps := make([]float64, n)

	// Effective caps, mutated by lending within a period and reset at period
	// boundaries.
	eff := append([]Caps(nil), caps...)
	lentThisPeriod := make([]bool, n)

	var sumCapT, sumCapI float64
	for _, c := range caps {
		sumCapT += c.Tput
		sumCapI += c.IOPS
	}

	for t := 0; t < dur; t++ {
		if lend != nil && lend.PeriodSec > 0 && t%lend.PeriodSec == 0 {
			copy(eff, caps)
			for i := range lentThisPeriod {
				lentThisPeriod[i] = false
			}
		}
		// Group-level totals for RAR (Equation 1) use nominal caps and the
		// group's offered load this second.
		var vmT, vmI float64
		for vd := 0; vd < n; vd++ {
			vmT += demand[vd][t].Bps()
			vmI += demand[vd][t].IOPS()
		}

		for vd := 0; vd < n; vd++ {
			d := demand[vd][t]
			offerB := d.Bps() + backlogB[vd]
			offerOps := d.IOPS() + backlogOps[vd]

			overT := overCap(offerB, eff[vd].Tput)
			overI := overCap(offerOps, eff[vd].IOPS)
			if (overT || overI) && lend != nil && !lentThisPeriod[vd] {
				// Appendix B: on the first throttle of this VD in the
				// period, it borrows p x AR(t) from unthrottled peers.
				lentThisPeriod[vd] = true
				applyLending(lend, eff, caps, demand, t, vd)
				overT = overCap(offerB, eff[vd].Tput)
				overI = overCap(offerOps, eff[vd].IOPS)
			}

			if overT || overI {
				res.ThrottledSecs[vd]++
				res.TotalThrottledSecs++
				dim := ByTput
				if overI && !overT {
					dim = ByIOPS
				}
				ev := Event{VD: vd, Sec: t, Dim: dim}
				// Load is the *delivered* traffic (clipped at the cap), as
				// the paper's metric data would record it; Equation 3's
				// VD(t) is measured, post-throttle throughput.
				if dim == ByTput {
					ev.RAR = rar(sumCapT, vmT)
					ev.WrRatio = stats.WrRatio(d.WriteBps, d.ReadBps)
					ev.Load = math.Min(offerB, eff[vd].Tput)
					ev.AR = math.Max(0, sumCapT-vmT)
				} else {
					ev.RAR = rar(sumCapI, vmI)
					ev.WrRatio = stats.WrRatio(d.WriteIOPS, d.ReadIOPS)
					ev.Load = math.Min(offerOps, eff[vd].IOPS)
					ev.AR = math.Max(0, sumCapI-vmI)
				}
				res.Events = append(res.Events, ev)
			}

			deliveredB := math.Min(offerB, eff[vd].Tput)
			deliveredOps := math.Min(offerOps, eff[vd].IOPS)
			// The binding constraint is whichever dimension clips harder.
			fracB, fracOps := 1.0, 1.0
			if offerB > 0 {
				fracB = deliveredB / offerB
			}
			if offerOps > 0 {
				fracOps = deliveredOps / offerOps
			}
			frac := math.Min(fracB, fracOps)
			backlogB[vd] = offerB * (1 - frac)
			backlogOps[vd] = offerOps * (1 - frac)
			// Hypervisor queues are finite: at most maxQueueSecs worth of
			// drain can be buffered; beyond that the guest blocks and the
			// excess demand never materializes as queued IO.
			if lim := maxQueueSecs * eff[vd].Tput; backlogB[vd] > lim {
				backlogB[vd] = lim
			}
			if lim := maxQueueSecs * eff[vd].IOPS; backlogOps[vd] > lim {
				backlogOps[vd] = lim
			}
			res.DeliveredBps[vd] += offerB * frac
			var delay float64
			if eff[vd].Tput > 0 {
				delay = backlogB[vd] / eff[vd].Tput
			}
			if eff[vd].IOPS > 0 {
				if d := backlogOps[vd] / eff[vd].IOPS; d > delay {
					delay = d
				}
			}
			res.QueueDelaySec[vd][t] = delay
		}
	}
	if dur > 0 {
		for vd := range res.DeliveredBps {
			res.DeliveredBps[vd] /= float64(dur)
		}
	}
	return res
}

// maxQueueSecs bounds the hypervisor IO queue: the backlog can hold at most
// this many seconds of cap-rate drain (beyond that the guest's submission
// blocks, closing the loop).
const maxQueueSecs = 4.0

// overCap compares offered load against a cap with a relative tolerance so
// floating-point residue from backlog arithmetic cannot fabricate throttles.
func overCap(offer, cap float64) bool {
	return offer > cap*(1+1e-9)+1e-9
}

// rar computes Equation 1, clamped to [0,1]; an overloaded group reports 0.
func rar(cap, load float64) float64 {
	if cap <= 0 {
		return math.NaN()
	}
	r := (cap - load) / cap
	if r < 0 {
		return 0
	}
	return r
}
