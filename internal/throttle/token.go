package throttle

import "time"

// TokenBucket is the continuous-refill token bucket behind the gateway's
// per-tenant submission caps — the same queue-don't-drop discipline the
// per-VD simulator applies to block IO (§5), lifted to the serving plane:
// a submission beyond the bucket waits in its tenant's FIFO queue until
// tokens accrue; nothing is discarded.
//
// The bucket is driven entirely by the timestamps handed to its methods, so
// callers own the clock (tests pass a testclock.Clock's Now) and replays are
// deterministic. It is not safe for concurrent use; the gateway serializes
// access under its own lock.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a bucket refilling at rate tokens/s with capacity
// burst, full at time now. Non-positive rate or burst are clamped to a
// minimal working bucket (1 token, never refilled / 1 token capacity).
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	if burst <= 0 {
		burst = 1
	}
	if rate < 0 {
		rate = 0
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// refill accrues tokens for the time elapsed since the last observation.
// A clock that moved backward accrues nothing (and does not drain).
func (b *TokenBucket) refill(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	if now.After(b.last) {
		b.last = now
	}
}

// Take consumes one token if a whole one is available and reports whether it
// did. A false return means the caller must queue — never drop.
func (b *TokenBucket) Take(now time.Time) bool {
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the whole tokens available at now.
func (b *TokenBucket) Tokens(now time.Time) int {
	b.refill(now)
	return int(b.tokens)
}

// NextAt returns the earliest time one whole token will be available. When a
// token is already available it returns now; when the bucket never refills
// (rate 0) and is empty it returns the zero time, meaning "never".
func (b *TokenBucket) NextAt(now time.Time) time.Time {
	b.refill(now)
	if b.tokens >= 1 {
		return now
	}
	if b.rate <= 0 {
		return time.Time{}
	}
	need := (1 - b.tokens) / b.rate
	return now.Add(time.Duration(need * float64(time.Second)))
}
