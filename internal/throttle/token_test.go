package throttle

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	t0 := time.Unix(100, 0)
	b := NewTokenBucket(2, 3, t0) // 2 tokens/s, capacity 3, starts full

	for i := 0; i < 3; i++ {
		if !b.Take(t0) {
			t.Fatalf("take %d within burst failed", i)
		}
	}
	if b.Take(t0) {
		t.Fatal("take beyond burst succeeded with no time elapsed")
	}
	if got := b.Tokens(t0); got != 0 {
		t.Fatalf("tokens after burst drain = %d, want 0", got)
	}

	// 0.5s at 2 tokens/s accrues exactly one token.
	t1 := t0.Add(500 * time.Millisecond)
	if want := t1; !b.NextAt(t0).Equal(want) {
		t.Fatalf("NextAt = %v, want %v", b.NextAt(t0), want)
	}
	if !b.Take(t1) {
		t.Fatal("take after refill window failed")
	}
	if b.Take(t1) {
		t.Fatal("second take after a one-token refill succeeded")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := NewTokenBucket(10, 2, t0)
	// A long idle period must not bank more than the burst capacity.
	t1 := t0.Add(time.Hour)
	if got := b.Tokens(t1); got != 2 {
		t.Fatalf("tokens after long idle = %d, want burst 2", got)
	}
}

func TestTokenBucketBackwardClock(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(1, 1, t0)
	if !b.Take(t0) {
		t.Fatal("initial take failed")
	}
	// Time moving backward neither drains nor accrues.
	back := t0.Add(-time.Minute)
	if got := b.Tokens(back); got != 0 {
		t.Fatalf("tokens after backward clock = %d, want 0", got)
	}
	// And the original anchor still governs the refill.
	if !b.Take(t0.Add(time.Second)) {
		t.Fatal("take one second later failed")
	}
}

func TestTokenBucketZeroRate(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := NewTokenBucket(0, 1, t0)
	if !b.Take(t0) {
		t.Fatal("burst take failed")
	}
	if !b.NextAt(t0).IsZero() {
		t.Fatal("an empty zero-rate bucket should report no next token")
	}
	if b.Take(t0.Add(time.Hour)) {
		t.Fatal("zero-rate bucket refilled")
	}
}
