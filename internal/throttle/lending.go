package throttle

import (
	"math"
)

// Lending configures the Appendix B "limited lending" mitigation: pooled
// harvesting of a tenant's unused caps with a bounded lending rate.
type Lending struct {
	// Rate is p in (0,1): the fraction of the group's available resource the
	// throttled VD may borrow.
	Rate float64
	// PeriodSec is the lending period; effective caps reset at each period
	// boundary ("Init {Cap_i}" in Algorithm 2). Each VD borrows at most once
	// per period.
	PeriodSec int
}

// applyLending performs one lending action for vd at second t: it raises
// vd's effective caps by p x AR(t) in each dimension and debits the other
// (unthrottled) VDs proportionally to their headroom, so the group's summed
// effective cap is conserved. A VD marked down in isDown never lends: its
// headroom is an artifact of a crash, not spare capacity.
func applyLending(l *Lending, eff, nominal []Caps, demand [][]Demand, t, vd int, isDown []bool) {
	var sumCapT, sumCapI, loadT, loadI float64
	for i, c := range nominal {
		sumCapT += c.Tput
		sumCapI += c.IOPS
		loadT += demand[i][t].Bps()
		loadI += demand[i][t].IOPS()
	}
	lendDim := func(sumCap, load float64, capOf func(i int) *float64, demOf func(i int) float64) {
		ar := sumCap - load
		if ar <= 0 {
			return
		}
		extra := l.Rate * ar
		// Headroom of potential lenders under their current effective caps.
		var headroom float64
		for i := range eff {
			if i == vd || (isDown != nil && isDown[i]) {
				continue
			}
			h := *capOf(i) - demOf(i)
			if h > 0 {
				headroom += h
			}
		}
		if headroom <= 0 {
			return
		}
		if extra > headroom {
			extra = headroom
		}
		for i := range eff {
			if i == vd || (isDown != nil && isDown[i]) {
				continue
			}
			h := *capOf(i) - demOf(i)
			if h > 0 {
				*capOf(i) -= extra * h / headroom
			}
		}
		*capOf(vd) += extra
	}
	lendDim(sumCapT, loadT,
		func(i int) *float64 { return &eff[i].Tput },
		func(i int) float64 { return demand[i][t].Bps() })
	lendDim(sumCapI, loadI,
		func(i int) *float64 { return &eff[i].IOPS },
		func(i int) float64 { return demand[i][t].IOPS() })
}

// SimulateWithLending replays the group with limited lending enabled.
func SimulateWithLending(caps []Caps, demand [][]Demand, lend Lending) Result {
	if lend.Rate <= 0 || lend.Rate >= 1 {
		panic("throttle: lending rate must be in (0,1)")
	}
	if lend.PeriodSec <= 0 {
		lend.PeriodSec = 60
	}
	return simulate(caps, demand, &lend, nil, nil, nil, nil)
}

// LendingGain compares throttle durations without and with lending:
// (t_wo - t_w) / (t_wo + t_w), in (-1, 1); positive means lending shortened
// throttling. It returns NaN when neither run throttled.
func LendingGain(without, with Result) float64 {
	a := float64(without.TotalThrottledSecs)
	b := float64(with.TotalThrottledSecs)
	if a+b == 0 {
		return math.NaN()
	}
	return (a - b) / (a + b)
}

// ReductionRate computes Equation 3 at a throttle instant: the theoretical
// shortening of the throttle once the VD's offered load vdLoad is served at
// vdLoad + p x AR instead of vdLoad. Lower is better; the result is in
// (0, 1]. It returns NaN for non-positive load.
func ReductionRate(vdLoad, ar, p float64) float64 {
	if vdLoad <= 0 {
		return math.NaN()
	}
	extra := p * ar
	if extra < 0 {
		extra = 0
	}
	return vdLoad / (vdLoad + extra)
}
