package throttle

import (
	"math/rand"
	"reflect"
	"testing"
)

func synthGroup(seed int64, n, dur int) ([]Caps, [][]Demand) {
	rng := rand.New(rand.NewSource(seed))
	caps := make([]Caps, n)
	demand := make([][]Demand, n)
	for vd := range caps {
		caps[vd] = Caps{
			Tput: float64(rng.Intn(200)+50) * 1e6,
			IOPS: float64(rng.Intn(4000) + 500),
		}
		demand[vd] = make([]Demand, dur)
		for t := range demand[vd] {
			d := &demand[vd][t]
			d.ReadBps = rng.Float64() * 3e8
			d.WriteBps = rng.Float64() * 3e8
			d.ReadIOPS = rng.Float64() * 6000
			d.WriteIOPS = rng.Float64() * 6000
		}
	}
	return caps, demand
}

// TestScratchSimulateEquivalence runs several different-shaped groups
// through one Scratch and requires each result to match the allocating
// path exactly — including after the scratch has been dirtied by prior
// calls of other sizes.
func TestScratchSimulateEquivalence(t *testing.T) {
	var sc Scratch
	shapes := []struct{ n, dur int }{{4, 60}, {1, 10}, {8, 120}, {3, 0}, {4, 60}}
	for i, sh := range shapes {
		caps, demand := synthGroup(int64(i+1), sh.n, sh.dur)
		got := sc.Simulate(caps, demand)
		want := Simulate(caps, demand)
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("shape %d (%d vds, %d s): scratch result diverged", i, sh.n, sh.dur)
		}
	}
}

// normalize maps empty-but-non-nil slices to nil so DeepEqual compares
// values, not buffer provenance.
func normalize(r Result) Result {
	if len(r.Events) == 0 {
		r.Events = nil
	}
	rows := make([][]float64, len(r.QueueDelaySec))
	for i, row := range r.QueueDelaySec {
		if len(row) > 0 {
			rows[i] = row
		}
	}
	r.QueueDelaySec = rows
	return r
}

// TestScratchSimulateAllocs pins the steady-state allocation count of the
// scratch path at zero once the buffers have warmed up.
func TestScratchSimulateAllocs(t *testing.T) {
	var sc Scratch
	caps, demand := synthGroup(7, 6, 90)
	sc.Simulate(caps, demand) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		sc.Simulate(caps, demand)
	})
	if allocs != 0 {
		t.Fatalf("Scratch.Simulate allocated %.1f times per run, want 0", allocs)
	}
}
