package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// smallConfig is a fast fleet for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NodesPerDC = 12
	cfg.BSPerDC = 4
	cfg.BSPerCluster = 4
	cfg.Users = 20
	cfg.DurationSec = 60
	return cfg
}

func mustGenerate(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.DCs = 0 },
		func(c *Config) { c.NodesPerDC = -1 },
		func(c *Config) { c.BSPerDC = 1 },
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.DurationSec = 0 },
		func(c *Config) { c.BareMetalFrac = 1.5 },
		func(c *Config) { c.MaxVMsPerNode = 0 },
		func(c *Config) { c.MeanVDsPerVM = 0.5 },
		func(c *Config) { c.MultiQPFrac = -0.1 },
		func(c *Config) { c.TenantZipfS = 1 },
		func(c *Config) { c.RateLogSigma = 0 },
		func(c *Config) { c.CapacityTiers = nil },
		func(c *Config) { c.CapacityWeights = c.CapacityWeights[:1] },
		func(c *Config) { c.CapacityTiers = []int64{0, 1, 2, 3} },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid config", i)
		}
	}
}

func TestGenerateTopologyValid(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	if err := f.Topology.Validate(); err != nil {
		t.Fatalf("topology invalid: %v", err)
	}
	if got := len(f.Topology.Nodes); got != 36 {
		t.Fatalf("nodes = %d, want 36", got)
	}
	if len(f.Models) != len(f.Topology.VDs) {
		t.Fatalf("models = %d, VDs = %d", len(f.Models), len(f.Topology.VDs))
	}
	if f.Seg2BS.Len() != len(f.Topology.Segments) {
		t.Fatalf("segment map covers %d, want %d", f.Seg2BS.Len(), len(f.Topology.Segments))
	}
	for seg := 0; seg < f.Seg2BS.Len(); seg++ {
		if f.Seg2BS.BSOf(cluster.SegmentID(seg)) < 0 {
			t.Fatalf("segment %d unassigned", seg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	if len(a.Topology.VDs) != len(b.Topology.VDs) {
		t.Fatal("same seed produced different VD counts")
	}
	for i := range a.Models {
		if a.Models[i].MeanReadBps != b.Models[i].MeanReadBps ||
			a.Models[i].MeanWriteBps != b.Models[i].MeanWriteBps {
			t.Fatalf("model %d differs across identical generations", i)
		}
	}
	sa := a.VDSeries(0, 30)
	sb := b.VDSeries(0, 30)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("series sample %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestGenerateSeedChangesFleet(t *testing.T) {
	cfg := smallConfig()
	a := mustGenerate(t, cfg)
	cfg.Seed = 99
	b := mustGenerate(t, cfg)
	if len(a.Topology.VDs) == len(b.Topology.VDs) {
		// Counts may coincide; compare a model rate as a stronger signal.
		if a.Models[0].MeanReadBps == b.Models[0].MeanReadBps {
			t.Fatal("different seeds produced identical fleets")
		}
	}
}

func TestModelWeightsNormalized(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	for i := range f.Models {
		m := &f.Models[i]
		for name, w := range map[string][]float64{
			"QPWeightsRead": m.QPWeightsRead, "QPWeightsWrite": m.QPWeightsWrite,
			"SegWeightsRead": m.SegWeightsRead, "SegWeightsWrite": m.SegWeightsWrite,
		} {
			sum := stats.Sum(w)
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("vd %d %s sums to %v", i, name, sum)
			}
			for _, x := range w {
				if x < 0 {
					t.Fatalf("vd %d %s has negative weight", i, name)
				}
			}
		}
		if m.MeanReadBps < 0 || m.MeanWriteBps < 0 {
			t.Fatalf("vd %d has negative mean rate", i)
		}
		if m.HotspotLen <= 0 || m.HotspotOffset < 0 {
			t.Fatalf("vd %d hotspot invalid: off=%d len=%d", i, m.HotspotOffset, m.HotspotLen)
		}
		if m.HotspotOffset+m.HotspotLen > f.Topology.VDs[i].Capacity {
			t.Fatalf("vd %d hotspot exceeds capacity", i)
		}
		if m.HotAccessFrac <= 0 || m.HotAccessFrac > 1 {
			t.Fatalf("vd %d HotAccessFrac = %v", i, m.HotAccessFrac)
		}
	}
}

func TestCapsForCapacity(t *testing.T) {
	tput, iops := capsForCapacity(40 << 30)
	if tput <= 100e6 || iops <= 1800 {
		t.Fatalf("40GiB caps = %v/%v, too small", tput, iops)
	}
	bigT, bigI := capsForCapacity(4 << 40) // 4 TiB: both should hit ceilings
	if bigT != 350e6 || bigI != 50000 {
		t.Fatalf("4TiB caps = %v/%v, want ceilings", bigT, bigI)
	}
}

func TestVDSeriesShape(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	s := f.VDSeries(0, 120)
	if len(s) != 120 {
		t.Fatalf("series length %d, want 120", len(s))
	}
	for i, x := range s {
		if x.ReadBps < 0 || x.WriteBps < 0 || x.ReadIOPS < 0 || x.WriteIOPS < 0 {
			t.Fatalf("sample %d negative: %+v", i, x)
		}
		if math.IsNaN(x.ReadBps) || math.IsInf(x.ReadBps, 0) {
			t.Fatalf("sample %d not finite: %+v", i, x)
		}
	}
}

func TestQPSeriesSumsToVDSeries(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	// Find a multi-QP VD.
	var vd cluster.VDID = -1
	for i := range f.Topology.VDs {
		if len(f.Topology.VDs[i].QPs) > 1 {
			vd = cluster.VDID(i)
			break
		}
	}
	if vd < 0 {
		t.Skip("no multi-QP VD in small fleet")
	}
	const dur = 40
	vdSeries := f.VDSeries(vd, dur)
	sum := make([]Sample, dur)
	for _, qp := range f.Topology.VDs[vd].QPs {
		qs := f.QPSeries(qp, dur)
		for i := range qs {
			sum[i].ReadBps += qs[i].ReadBps
			sum[i].WriteBps += qs[i].WriteBps
		}
	}
	for i := range sum {
		if math.Abs(sum[i].ReadBps-vdSeries[i].ReadBps) > 1e-6*(1+vdSeries[i].ReadBps) {
			t.Fatalf("read sum at %d = %v, want %v", i, sum[i].ReadBps, vdSeries[i].ReadBps)
		}
		if math.Abs(sum[i].WriteBps-vdSeries[i].WriteBps) > 1e-6*(1+vdSeries[i].WriteBps) {
			t.Fatalf("write sum at %d = %v, want %v", i, sum[i].WriteBps, vdSeries[i].WriteBps)
		}
	}
}

func TestSplitQPSeriesMatchesQPSeries(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	vd := cluster.VDID(0)
	const dur = 20
	vdSeries := f.VDSeries(vd, dur)
	split := f.SplitQPSeries(vd, vdSeries)
	for i, qp := range f.Topology.VDs[vd].QPs {
		direct := f.QPSeries(qp, dur)
		for j := range direct {
			if direct[j] != split[i][j] {
				t.Fatalf("qp %d sample %d: split %+v vs direct %+v", qp, j, split[i][j], direct[j])
			}
		}
	}
}

func TestSegmentSeriesSumsToVDSeries(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	// Find a multi-segment VD.
	var vd cluster.VDID = -1
	for i := range f.Topology.VDs {
		if len(f.Topology.VDs[i].Segments) > 1 {
			vd = cluster.VDID(i)
			break
		}
	}
	if vd < 0 {
		t.Skip("no multi-segment VD")
	}
	const dur = 30
	vdSeries := f.VDSeries(vd, dur)
	sumR, sumW := make([]float64, dur), make([]float64, dur)
	for _, seg := range f.Topology.VDs[vd].Segments {
		ss := f.SegmentSeries(seg, dur)
		for i := range ss {
			sumR[i] += ss[i].ReadBps
			sumW[i] += ss[i].WriteBps
		}
	}
	for i := range vdSeries {
		if math.Abs(sumR[i]-vdSeries[i].ReadBps) > 1e-6*(1+vdSeries[i].ReadBps) {
			t.Fatalf("segment read sum at %d = %v, want %v", i, sumR[i], vdSeries[i].ReadBps)
		}
		if math.Abs(sumW[i]-vdSeries[i].WriteBps) > 1e-6*(1+vdSeries[i].WriteBps) {
			t.Fatalf("segment write sum at %d = %v, want %v", i, sumW[i], vdSeries[i].WriteBps)
		}
	}
}

func TestSegmentPeriodMatrixConsistent(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	const dur, period = 60, 15
	mat := f.SegmentPeriodMatrix(dur, period)
	if len(mat) != len(f.Topology.Segments) {
		t.Fatalf("matrix rows = %d, want %d", len(mat), len(f.Topology.Segments))
	}
	if len(mat[0]) != 4 {
		t.Fatalf("matrix cols = %d, want 4", len(mat[0]))
	}
	// Cross-check one segment against its direct series.
	seg := cluster.SegmentID(0)
	ss := f.SegmentSeries(seg, dur)
	var wantR float64
	for t2 := 0; t2 < period; t2++ {
		wantR += ss[t2].ReadBps
	}
	if math.Abs(mat[seg][0].R-wantR) > 1e-6*(1+wantR) {
		t.Fatalf("matrix[0][0].R = %v, want %v", mat[seg][0].R, wantR)
	}
}

func TestFineSlotsConserveMass(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	sec := Sample{ReadBps: 1e6, WriteBps: 2e6}
	r, w := f.FineSlots(0, 7, 100, sec)
	if len(r) != 100 || len(w) != 100 {
		t.Fatalf("slot counts = %d/%d", len(r), len(w))
	}
	if math.Abs(stats.Sum(r)-1e6) > 1 {
		t.Fatalf("read mass = %v, want 1e6", stats.Sum(r))
	}
	if math.Abs(stats.Sum(w)-2e6) > 1 {
		t.Fatalf("write mass = %v, want 2e6", stats.Sum(w))
	}
	// Reads should be more concentrated than writes on average.
	if stats.NormCoV(r) <= stats.NormCoV(w)*0.5 {
		t.Logf("read CoV %v, write CoV %v (stochastic, informational)", stats.NormCoV(r), stats.NormCoV(w))
	}
}

func TestGenEventsWellFormed(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	d := &f.Topology.VDs[0]
	var n int
	var lastTime int64 = -1
	f.GenEvents(0, 30, 1, func(ev Event) {
		n++
		if ev.Offset < 0 || ev.Offset+int64(ev.Size) > d.Capacity {
			t.Fatalf("event outside disk: off=%d size=%d cap=%d", ev.Offset, ev.Size, d.Capacity)
		}
		if ev.Offset%sectorSize != 0 || int64(ev.Size)%sectorSize != 0 {
			t.Fatalf("event not 4KiB aligned: off=%d size=%d", ev.Offset, ev.Size)
		}
		if ev.TimeUS < lastTime {
			t.Fatalf("events out of order: %d after %d", ev.TimeUS, lastTime)
		}
		lastTime = ev.TimeUS
		found := false
		for _, qp := range d.QPs {
			if ev.QP == qp {
				found = true
			}
		}
		if !found {
			t.Fatalf("event on foreign QP %d", ev.QP)
		}
	})
	if n == 0 {
		t.Fatal("no events generated for VD 0 over 30s")
	}
}

func TestGenEventsSamplingReducesCount(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	count := func(sampleEvery int) int {
		var n int
		f.GenEvents(0, 30, sampleEvery, func(Event) { n++ })
		return n
	}
	full, sampled := count(1), count(8)
	if full == 0 {
		t.Skip("VD 0 idle in this window")
	}
	if sampled >= full {
		t.Fatalf("sampled count %d not below full count %d", sampled, full)
	}
}

func TestDistributionHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// zipfWeights: normalized and decreasing.
	w := zipfWeights(10, 1.5)
	if math.Abs(stats.Sum(w)-1) > 1e-12 {
		t.Fatalf("zipf weights sum to %v", stats.Sum(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("zipf weights not decreasing")
		}
	}
	// dirichletLike: normalized, non-negative.
	d := dirichletLike(rng, 8, 0.2)
	if math.Abs(stats.Sum(d)-1) > 1e-9 {
		t.Fatalf("dirichlet weights sum to %v", stats.Sum(d))
	}
	// Small shape should be more skewed than large shape (on average).
	var covSmall, covBig float64
	for i := 0; i < 50; i++ {
		covSmall += stats.NormCoV(dirichletLike(rng, 8, 0.1))
		covBig += stats.NormCoV(dirichletLike(rng, 8, 10))
	}
	if covSmall <= covBig {
		t.Fatalf("shape 0.1 CoV %v not above shape 10 CoV %v", covSmall/50, covBig/50)
	}
	// pareto respects the scale floor.
	for i := 0; i < 1000; i++ {
		if v := pareto(rng, 2, 1.5); v < 2 {
			t.Fatalf("pareto draw %v below xm", v)
		}
	}
	// boundedPareto respects both bounds.
	for i := 0; i < 1000; i++ {
		v := boundedPareto(rng, 3, 1.1, 50)
		if v < 3-1e-9 || v > 50+1e-9 {
			t.Fatalf("boundedPareto draw %v outside [3,50]", v)
		}
	}
	if got := boundedPareto(rng, 5, 1, 5); got != 5 {
		t.Fatalf("degenerate boundedPareto = %v, want 5", got)
	}
}

func TestGammaDrawProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []float64{0.1, 0.5, 1, 2, 10} {
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			v := gammaDraw(rng, shape)
			if v < 0 {
				t.Fatalf("gammaDraw(%v) negative", shape)
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-shape)/shape > 0.15 {
			t.Fatalf("gammaDraw(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestGammaDrawPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gammaDraw(0) should panic")
		}
	}()
	gammaDraw(rand.New(rand.NewSource(1)), 0)
}

func TestSubSeedIndependence(t *testing.T) {
	f := func(master int64, a, b uint64) bool {
		if a == b {
			return true
		}
		return subSeed(master, tagVDSeries, a) != subSeed(master, tagVDSeries, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if subSeed(1, tagVDSeries, 5) == subSeed(1, tagQPSplit, 5) {
		t.Fatal("different tags collided")
	}
}

func TestBetaLikeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := betaLike(rng, 0.3, 0.35)
		if v < 0 || v > 1 {
			t.Fatalf("betaLike out of range: %v", v)
		}
	}
	if betaLike(rng, 0, 0.5) != 0 || betaLike(rng, 1, 0.5) != 1 {
		t.Fatal("betaLike boundary means should clamp")
	}
	// Mean should be near the requested mean.
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		sum += betaLike(rng, 0.3, 0.35)
	}
	if got := sum / n; math.Abs(got-0.3) > 0.05 {
		t.Fatalf("betaLike mean = %v, want ~0.3", got)
	}
}

func TestGeometricAtLeast1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if geometricAtLeast1(rng, 0.5) != 1 {
		t.Fatal("mean <= 1 should return 1")
	}
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		v := geometricAtLeast1(rng, 3)
		if v < 1 {
			t.Fatal("geometric draw below 1")
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-3) > 0.3 {
		t.Fatalf("geometric mean = %v, want ~3", mean)
	}
}

func TestAppTrafficShareWeight(t *testing.T) {
	// BigData should carry the largest popularity x rate product (Table 4:
	// highest traffic share).
	big := AppTrafficShareWeight(cluster.AppBigData)
	for app := cluster.AppClass(0); int(app) < cluster.NumAppClasses; app++ {
		if app == cluster.AppBigData {
			continue
		}
		if AppTrafficShareWeight(app) >= big {
			t.Fatalf("%v share weight >= BigData", app)
		}
	}
}

func TestFineSlotsPersistentMode(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	// Find one persistent and one scattered VD.
	persistent, scattered := cluster.VDID(-1), cluster.VDID(-1)
	for vd := range f.Models {
		if f.Models[vd].SlotPersistent && persistent < 0 {
			persistent = cluster.VDID(vd)
		}
		if !f.Models[vd].SlotPersistent && scattered < 0 {
			scattered = cluster.VDID(vd)
		}
	}
	if persistent < 0 || scattered < 0 {
		t.Skip("fleet lacks one of the slot styles")
	}
	sec := Sample{ReadBps: 1e6, WriteBps: 1e6}
	// Mass conservation holds in both modes.
	for _, vd := range []cluster.VDID{persistent, scattered} {
		r, w := f.FineSlots(vd, 3, 100, sec)
		if math.Abs(stats.Sum(r)-1e6) > 1 || math.Abs(stats.Sum(w)-1e6) > 1 {
			t.Fatalf("vd %d: slot mass not conserved", vd)
		}
	}
	// Persistent runs are contiguous: the set of active slots forms at most
	// one wrap-around run.
	r, _ := f.FineSlots(persistent, 3, 100, sec)
	active := 0
	transitions := 0
	for i := 0; i < 100; i++ {
		if r[i] > 0 {
			active++
		}
		if (r[i] > 0) != (r[(i+1)%100] > 0) {
			transitions++
		}
	}
	if active == 0 || transitions > 2 {
		t.Fatalf("persistent slots not a single run: active=%d transitions=%d", active, transitions)
	}
	// The run's phase persists (drifts slowly) across adjacent seconds:
	// consecutive seconds overlap in active slots.
	r2, _ := f.FineSlots(persistent, 4, 100, sec)
	overlap := 0
	for i := range r {
		if r[i] > 0 && r2[i] > 0 {
			overlap++
		}
	}
	if active > 2 && overlap == 0 {
		t.Fatal("persistent run does not persist across seconds")
	}
}

func TestGenAppEventsHotterReads(t *testing.T) {
	f := mustGenerate(t, smallConfig())
	// Pick a VD whose hot reads are mostly absorbed.
	var vd cluster.VDID = -1
	for i := range f.Models {
		m := &f.Models[i]
		if m.HotReadFrac < 0.5*m.HotAccessFrac && m.MeanReadBps > 1e5 {
			vd = cluster.VDID(i)
			break
		}
	}
	if vd < 0 {
		t.Skip("no absorbed-read VD")
	}
	m := &f.Models[vd]
	inHot := func(ev Event) bool {
		return ev.Offset >= m.HotspotOffset && ev.Offset < m.HotspotOffset+m.HotspotLen
	}
	count := func(gen func(cluster.VDID, int, int, func(Event))) (hot, total int) {
		gen(vd, 60, 1, func(ev Event) {
			if ev.Op != trace.OpRead {
				return
			}
			total++
			if inHot(ev) {
				hot++
			}
		})
		return hot, total
	}
	hotApp, totalApp := count(f.GenAppEvents)
	hotDev, totalDev := count(f.GenEvents)
	if totalApp < 200 || totalDev < 200 {
		t.Skip("too few reads in window")
	}
	appFrac := float64(hotApp) / float64(totalApp)
	devFrac := float64(hotDev) / float64(totalDev)
	if !(appFrac > devFrac) {
		t.Fatalf("app-level hot-read fraction %v not above device-level %v", appFrac, devFrac)
	}
}
