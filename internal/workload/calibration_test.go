package workload

import (
	"math"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// These tests pin the distributional shapes the generator is calibrated to
// (DESIGN.md's calibration targets). They use a moderate fleet so the
// statistics are stable across the fixed seed.

func calibrationFleet(t *testing.T) *Fleet {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DCs = 1
	cfg.NodesPerDC = 80
	cfg.BSPerDC = 12
	cfg.BSPerCluster = 6
	cfg.Users = 60
	cfg.DurationSec = 300
	f, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// vmTotals sums per-VM read/write bytes over the window.
func vmTotals(f *Fleet, dur int) (reads, writes []float64, p2aR, p2aW []float64) {
	top := f.Topology
	vmR := make([]float64, len(top.VMs))
	vmW := make([]float64, len(top.VMs))
	type agg struct{ r, w []float64 }
	series := make([]agg, len(top.VMs))
	for i := range series {
		series[i] = agg{r: make([]float64, dur), w: make([]float64, dur)}
	}
	for vd := range top.VDs {
		vm := top.VDs[vd].VM
		s := f.VDSeries(cluster.VDID(vd), dur)
		for t, smp := range s {
			vmR[vm] += smp.ReadBps
			vmW[vm] += smp.WriteBps
			series[vm].r[t] += smp.ReadBps
			series[vm].w[t] += smp.WriteBps
		}
	}
	for i := range series {
		p2aR = append(p2aR, stats.P2A(series[i].r))
		p2aW = append(p2aW, stats.P2A(series[i].w))
	}
	return vmR, vmW, p2aR, p2aW
}

func TestCalibrationSpatialSkew(t *testing.T) {
	f := calibrationFleet(t)
	reads, writes, _, _ := vmTotals(f, f.Cfg.DurationSec)
	ccrR := stats.CCR(reads, 0.01)
	ccrW := stats.CCR(writes, 0.01)
	// O1: far above the prior study's 16.6%.
	if !(ccrR > 0.17) {
		t.Errorf("VM read 1%%-CCR %v not above 0.17", ccrR)
	}
	if !(ccrW > 0.10) {
		t.Errorf("VM write 1%%-CCR %v not above 0.10", ccrW)
	}
	// Top-20%% dominates.
	if got := stats.CCR(writes, 0.20); !(got > 0.8) {
		t.Errorf("VM write 20%%-CCR %v not above 0.8", got)
	}
}

func TestCalibrationTemporalSkew(t *testing.T) {
	f := calibrationFleet(t)
	_, _, p2aR, p2aW := vmTotals(f, f.Cfg.DurationSec)
	medR := stats.Median(stats.DropNaN(p2aR))
	medW := stats.Median(stats.DropNaN(p2aW))
	// O2: read P2A well above write P2A; both large.
	if !(medR > 2*medW) {
		t.Errorf("median VM read P2A %v not above 2x write %v", medR, medW)
	}
	if !(medR > 20) {
		t.Errorf("median VM read P2A %v too small", medR)
	}
}

func TestCalibrationWriteSeriesAutocorrelated(t *testing.T) {
	// Write traffic must carry short-lag structure (bursts persist for
	// several seconds), or no §6 predictor could possibly work.
	f := calibrationFleet(t)
	var acs []float64
	count := 0
	for vd := range f.Topology.VDs {
		if count >= 60 {
			break
		}
		if f.Models[vd].MeanWriteBps < 1e5 {
			continue
		}
		count++
		series := f.VDSeries(cluster.VDID(vd), 200)
		ws := make([]float64, len(series))
		for i, s := range series {
			ws[i] = s.WriteBps
		}
		if ac := stats.AutoCorr(ws, 1); !math.IsNaN(ac) {
			acs = append(acs, ac)
		}
	}
	if len(acs) < 20 {
		t.Skip("too few active write series")
	}
	if med := stats.Median(acs); !(med > 0.1) {
		t.Errorf("median lag-1 write autocorrelation %v not above 0.1", med)
	}
}

func TestCalibrationSegmentOneSidedness(t *testing.T) {
	f := calibrationFleet(t)
	t2 := f.Topology
	var absWr []float64
	for vd := range t2.VDs {
		m := &f.Models[vd]
		total := m.MeanReadBps + m.MeanWriteBps
		if total < 1e5 {
			continue
		}
		for i := range t2.VDs[vd].Segments {
			r := m.MeanReadBps * m.SegWeightsRead[i]
			w := m.MeanWriteBps * m.SegWeightsWrite[i]
			if r+w < 1e4 {
				continue
			}
			wr := stats.WrRatio(w, r)
			if !math.IsNaN(wr) {
				absWr = append(absWr, math.Abs(wr))
			}
		}
	}
	if med := stats.Median(absWr); !(med > 0.6) {
		t.Errorf("median segment |wr_ratio| %v not above 0.6", med)
	}
}

func TestCalibrationQPWriteMoreConcentratedThanRead(t *testing.T) {
	// §4.2: VD-to-QP CoV is higher for writes (0.81) than reads (0.39).
	f := calibrationFleet(t)
	var covR, covW []float64
	for vd := range f.Topology.VDs {
		m := &f.Models[vd]
		if len(m.QPWeightsRead) < 2 {
			continue
		}
		covR = appendFinite(covR, stats.NormCoV(m.QPWeightsRead))
		covW = appendFinite(covW, stats.NormCoV(m.QPWeightsWrite))
	}
	if len(covR) < 10 {
		t.Skip("too few multi-QP disks")
	}
	if !(stats.Median(covW) > stats.Median(covR)) {
		t.Errorf("write QP CoV %v not above read %v", stats.Median(covW), stats.Median(covR))
	}
}

func appendFinite(xs []float64, v float64) []float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return xs
	}
	return append(xs, v)
}

func TestCalibrationHotReadAbsorption(t *testing.T) {
	// Most disks have hot reads mostly absorbed (HotReadFrac << HotAccessFrac),
	// with a small read-hot minority (§7.2: 5.5% read-dominant).
	f := calibrationFleet(t)
	var absorbed, readHot int
	for vd := range f.Models {
		m := &f.Models[vd]
		if m.HotReadFrac < 0.5*m.HotAccessFrac {
			absorbed++
		} else {
			readHot++
		}
	}
	frac := float64(readHot) / float64(absorbed+readHot)
	if !(frac > 0.01 && frac < 0.2) {
		t.Errorf("read-hot disk fraction %v outside (0.01, 0.2)", frac)
	}
}
