// Package workload synthesizes an EBS fleet and its traffic. It is the
// stand-in for the paper's gated production datasets (310M traces from ~60k
// VMs / ~140k VDs): the generator draws tenant sizes, VM/VD/QP activity,
// read/write mix, temporal bursts, and LBA hotspots from the heavy-tailed
// families the paper reports, so every downstream analysis sees the same
// distributional *shapes* (spatial CCR skew, enormous read P2A, one-sided
// segments, hottest-block concentration) the production data exhibits.
//
// Everything is deterministic given Config.Seed: entity parameters derive
// from per-entity splitmix64 streams, so series can be regenerated on demand
// without storing them.
package workload

import (
	"errors"
	"fmt"

	"ebslab/internal/cluster"
)

// Config controls fleet synthesis. Zero values are replaced by DefaultConfig
// values in Generate; Validate reports impossible combinations.
type Config struct {
	Seed int64 // master seed; same seed => identical fleet and traffic

	DCs          int // number of data centers (compute+storage cluster pairs)
	NodesPerDC   int // compute nodes per DC
	BSPerDC      int // storage nodes (BlockServers) per DC
	BSPerCluster int // BlockServers per storage cluster (balancing domain)
	Users        int // number of tenants across the fleet
	DurationSec  int // default observation-window length in seconds

	// BareMetalFrac is the fraction of compute nodes hosting exactly one VM.
	BareMetalFrac float64
	// MaxVMsPerNode bounds multi-tenant node packing.
	MaxVMsPerNode int
	// MeanVDsPerVM controls the geometric draw of disks per VM (median 2 in
	// the paper's Table 2).
	MeanVDsPerVM float64
	// MultiQPFrac is the probability a VD gets more than one queue pair.
	MultiQPFrac float64

	// TenantZipfS is the Zipf exponent for tenant sizes (larger => a few
	// tenants own most VMs, like the paper's max-9879-VM tenant).
	TenantZipfS float64

	// RateLogSigma is the log-stddev of per-VD mean traffic rates; it is the
	// master knob for spatial skew and is further scaled per app class.
	RateLogSigma float64

	// CapacityTiers are the VD capacity choices in bytes. Small tiers keep
	// segment counts tractable while still spanning multiple segments.
	CapacityTiers []int64
	// CapacityWeights are the draw weights for CapacityTiers (same length).
	CapacityWeights []float64
}

// DefaultConfig returns a laptop-scale configuration whose statistics mirror
// the paper's shapes. Roughly 3 DCs x 120 nodes x ~4 VMs ~= 1.4k VMs and
// ~3k VDs; the paper's fleet is ~40x larger but statistically similar.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		DCs:           3,
		NodesPerDC:    120,
		BSPerDC:       24,
		BSPerCluster:  6,
		Users:         160,
		DurationSec:   900,
		BareMetalFrac: 0.10,
		MaxVMsPerNode: 6,
		MeanVDsPerVM:  2.2,
		MultiQPFrac:   0.35,
		TenantZipfS:   1.5,
		RateLogSigma:  1.9,
		CapacityTiers: []int64{
			40 << 30,  // 40 GiB (system disk)
			64 << 30,  // 64 GiB
			128 << 30, // 128 GiB
			256 << 30, // 256 GiB
		},
		CapacityWeights: []float64{0.40, 0.30, 0.20, 0.10},
	}
}

// Validate reports whether the config is usable.
func (c *Config) Validate() error {
	switch {
	case c.DCs <= 0:
		return errors.New("workload: DCs must be positive")
	case c.NodesPerDC <= 0:
		return errors.New("workload: NodesPerDC must be positive")
	case c.BSPerDC <= 1:
		return errors.New("workload: BSPerDC must be at least 2")
	case c.BSPerCluster < 2 || c.BSPerCluster > c.BSPerDC:
		return fmt.Errorf("workload: BSPerCluster %d outside [2, BSPerDC]", c.BSPerCluster)
	case c.Users <= 0:
		return errors.New("workload: Users must be positive")
	case c.DurationSec <= 0:
		return errors.New("workload: DurationSec must be positive")
	case c.BareMetalFrac < 0 || c.BareMetalFrac > 1:
		return fmt.Errorf("workload: BareMetalFrac %v outside [0,1]", c.BareMetalFrac)
	case c.MaxVMsPerNode <= 0:
		return errors.New("workload: MaxVMsPerNode must be positive")
	case c.MeanVDsPerVM < 1:
		return errors.New("workload: MeanVDsPerVM must be >= 1")
	case c.MultiQPFrac < 0 || c.MultiQPFrac > 1:
		return fmt.Errorf("workload: MultiQPFrac %v outside [0,1]", c.MultiQPFrac)
	case c.TenantZipfS <= 1:
		return errors.New("workload: TenantZipfS must exceed 1")
	case c.RateLogSigma <= 0:
		return errors.New("workload: RateLogSigma must be positive")
	case len(c.CapacityTiers) == 0:
		return errors.New("workload: CapacityTiers must be non-empty")
	case len(c.CapacityTiers) != len(c.CapacityWeights):
		return errors.New("workload: CapacityTiers and CapacityWeights lengths differ")
	}
	for i, cap := range c.CapacityTiers {
		if cap <= 0 {
			return fmt.Errorf("workload: CapacityTiers[%d] = %d", i, cap)
		}
	}
	return nil
}

// appProfile captures how one application class (Appendix D / Table 4)
// shapes traffic. The numbers are calibration knobs, not measurements: they
// are chosen so Table 4's orderings reproduce (BigData: top traffic share,
// least skew; Docker/Database: most skew; FileSystem: tiny share, strongly
// skewed write).
type appProfile struct {
	app cluster.AppClass

	// popWeight is the probability weight of a VM being this class.
	popWeight float64
	// rateScale multiplies the fleet-wide base rate for this class.
	rateScale float64
	// sigmaScale multiplies Config.RateLogSigma: >1 means more spatial skew.
	sigmaScale float64
	// readFrac is the mean fraction of traffic that is reads.
	readFrac float64
	// readBurst and writeBurst are the ON/OFF burst intensities (see
	// trafficParams); reads are far burstier in most classes.
	readBurst, writeBurst burstProfile
	// readIOSize / writeIOSize are mean IO sizes in bytes.
	readIOSize, writeIOSize float64
}

// burstProfile parameterizes the ON/OFF burst process of one direction.
type burstProfile struct {
	onProb    float64 // per-second probability of entering a burst
	meanOnSec float64 // mean burst duration in seconds (geometric)
	paretoXm  float64 // minimum burst magnitude multiplier
	paretoA   float64 // Pareto tail index of burst magnitude (smaller = heavier)
	baseline  float64 // quiescent rate as a fraction of the mean rate
	noise     float64 // lognormal sigma of second-to-second noise
}

// appProfiles indexes profiles by cluster.AppClass. Read burst processes are
// near-idle baselines with rare huge Pareto bursts (that is what produces
// the paper's 10^2..10^4 read P2A); write processes are steadier with
// moderate bursts. sigmaScale ordering follows Table 4's 1%-CCR ordering
// (BigData flattest, Docker most skewed); popWeight x rateScale follows its
// traffic-share column (BigData largest).
var appProfiles = [cluster.NumAppClasses]appProfile{
	cluster.AppBigData: {
		app:       cluster.AppBigData,
		popWeight: 0.22, rateScale: 2.2, sigmaScale: 0.45, readFrac: 0.42,
		readBurst:  burstProfile{onProb: 0.012, meanOnSec: 8, paretoXm: 15, paretoA: 1.3, baseline: 0.15, noise: 0.45},
		writeBurst: burstProfile{onProb: 0.012, meanOnSec: 12, paretoXm: 3, paretoA: 1.7, baseline: 0.55, noise: 0.3},
		readIOSize: 512 << 10, writeIOSize: 256 << 10,
	},
	cluster.AppWebApp: {
		app:       cluster.AppWebApp,
		popWeight: 0.24, rateScale: 0.35, sigmaScale: 0.95, readFrac: 0.15,
		readBurst:  burstProfile{onProb: 0.008, meanOnSec: 3, paretoXm: 60, paretoA: 1.05, baseline: 0.03, noise: 0.6},
		writeBurst: burstProfile{onProb: 0.010, meanOnSec: 6, paretoXm: 4, paretoA: 1.5, baseline: 0.45, noise: 0.4},
		readIOSize: 16 << 10, writeIOSize: 8 << 10,
	},
	cluster.AppMiddleware: {
		app:       cluster.AppMiddleware,
		popWeight: 0.18, rateScale: 1.2, sigmaScale: 1.05, readFrac: 0.30,
		readBurst:  burstProfile{onProb: 0.009, meanOnSec: 4, paretoXm: 50, paretoA: 1.1, baseline: 0.04, noise: 0.5},
		writeBurst: burstProfile{onProb: 0.012, meanOnSec: 8, paretoXm: 3.5, paretoA: 1.6, baseline: 0.5, noise: 0.35},
		readIOSize: 64 << 10, writeIOSize: 32 << 10,
	},
	cluster.AppFileSystem: {
		app:       cluster.AppFileSystem,
		popWeight: 0.06, rateScale: 0.10, sigmaScale: 1.15, readFrac: 0.55,
		readBurst:  burstProfile{onProb: 0.006, meanOnSec: 8, paretoXm: 40, paretoA: 1.15, baseline: 0.05, noise: 0.55},
		writeBurst: burstProfile{onProb: 0.005, meanOnSec: 10, paretoXm: 40, paretoA: 1.05, baseline: 0.05, noise: 0.5},
		readIOSize: 128 << 10, writeIOSize: 128 << 10,
	},
	cluster.AppDatabase: {
		app:       cluster.AppDatabase,
		popWeight: 0.17, rateScale: 1.5, sigmaScale: 1.25, readFrac: 0.28,
		readBurst:  burstProfile{onProb: 0.007, meanOnSec: 4, paretoXm: 80, paretoA: 1.0, baseline: 0.03, noise: 0.6},
		writeBurst: burstProfile{onProb: 0.012, meanOnSec: 10, paretoXm: 5, paretoA: 1.4, baseline: 0.45, noise: 0.4},
		readIOSize: 16 << 10, writeIOSize: 16 << 10,
	},
	cluster.AppDocker: {
		app:       cluster.AppDocker,
		popWeight: 0.13, rateScale: 1.5, sigmaScale: 1.45, readFrac: 0.32,
		readBurst:  burstProfile{onProb: 0.006, meanOnSec: 3, paretoXm: 100, paretoA: 0.95, baseline: 0.02, noise: 0.7},
		writeBurst: burstProfile{onProb: 0.010, meanOnSec: 7, paretoXm: 6, paretoA: 1.35, baseline: 0.4, noise: 0.45},
		readIOSize: 32 << 10, writeIOSize: 64 << 10,
	},
}

// Profile returns the calibration profile for an application class; it is
// exported for tests and documentation tooling via the Apps helper below.
func appProfileFor(app cluster.AppClass) appProfile { return appProfiles[app] }

// AppTrafficShareWeight exposes the popularity x rate product used to seed
// Table 4 style analyses; handy for sanity checks.
func AppTrafficShareWeight(app cluster.AppClass) float64 {
	p := appProfiles[app]
	return p.popWeight * p.rateScale
}
