package workload

import (
	"math"

	"ebslab/internal/cluster"
)

// Sample is one interval of traffic for some entity, expressed as rates.
type Sample struct {
	ReadBps   float64
	WriteBps  float64
	ReadIOPS  float64
	WriteIOPS float64
}

// Bps returns the summed read+write throughput of the sample.
func (s Sample) Bps() float64 { return s.ReadBps + s.WriteBps }

// IOPS returns the summed read+write IOPS of the sample.
func (s Sample) IOPS() float64 { return s.ReadIOPS + s.WriteIOPS }

// RW is a pair of read/write byte counts (or rates, per context).
type RW struct {
	R float64
	W float64
}

// Total returns R+W.
func (x RW) Total() float64 { return x.R + x.W }

// burstState walks one direction's ON/OFF burst process. The process is:
// quiescent at baseline x mean, entering a burst with probability onProb per
// second; burst durations are geometric with the configured mean and burst
// magnitudes are bounded-Pareto multiples of the mean rate. Second-to-second
// lognormal noise rides on top. Heavy Pareto tails with tiny on-probability
// are what produce the enormous peak-to-average ratios of Table 3.
type burstState struct {
	prof        burstProfile
	onRemaining int
	onMag       float64
}

// maxBurstMult bounds burst magnitude so a single sample cannot overflow
// aggregate arithmetic; 2e4 still allows P2A ~ 10^4 windows.
const maxBurstMult = 2e4

// step advances one second and returns the rate multiplier.
func (b *burstState) step(rng interface {
	Float64() float64
	NormFloat64() float64
}) float64 {
	if b.onRemaining == 0 && rng.Float64() < b.prof.onProb {
		mean := b.prof.meanOnSec
		n := 1
		p := 1 / mean
		for rng.Float64() > p && n < 300 {
			n++
		}
		b.onRemaining = n
		b.onMag = boundedParetoF(rng.Float64(), b.prof.paretoXm, b.prof.paretoA, maxBurstMult)
	}
	mult := b.prof.baseline
	if b.onRemaining > 0 {
		mult = b.onMag
		b.onRemaining--
	}
	sigma := b.prof.noise
	noise := math.Exp(-sigma*sigma/2 + sigma*rng.NormFloat64())
	return mult * noise
}

// boundedParetoF is the inverse CDF of a Pareto(xm, a) truncated at hi,
// evaluated at u in [0,1).
func boundedParetoF(u, xm, a, hi float64) float64 {
	if hi <= xm {
		return xm
	}
	l := math.Pow(xm, a)
	h := math.Pow(hi, a)
	return math.Pow(-(u*h-u*l-h)/(h*l), -1/a)
}

// VDSeries generates the per-second traffic series of a VD for durSec
// seconds. The series is deterministic per (fleet seed, vd) and independent
// of any other entity's series.
func (f *Fleet) VDSeries(vd cluster.VDID, durSec int) []Sample {
	return f.VDSeriesInto(nil, vd, durSec)
}

// VDSeriesInto is VDSeries writing into buf (grown only if its capacity is
// short), so per-VD loops can reuse one buffer across the whole fleet.
func (f *Fleet) VDSeriesInto(buf []Sample, vd cluster.VDID, durSec int) []Sample {
	m := &f.Models[vd]
	h := acquireRand(f.Cfg.Seed, tagVDSeries, uint64(vd))
	defer h.Release()
	rng := h.Rand
	rb := burstState{prof: m.ReadBurst}
	wb := burstState{prof: m.WriteBurst}
	if cap(buf) < durSec {
		buf = make([]Sample, durSec)
	}
	out := buf[:durSec]
	for t := 0; t < durSec; t++ {
		r := m.MeanReadBps * rb.step(rng)
		w := m.MeanWriteBps * wb.step(rng)
		out[t] = Sample{
			ReadBps:   r,
			WriteBps:  w,
			ReadIOPS:  r / m.ReadIOSize,
			WriteIOPS: w / m.WriteIOSize,
		}
	}
	return out
}

// scaleSeries returns base with reads scaled by rw and writes by ww.
func scaleSeries(base []Sample, rw, ww float64) []Sample {
	out := make([]Sample, len(base))
	for i, s := range base {
		out[i] = Sample{
			ReadBps:   s.ReadBps * rw,
			WriteBps:  s.WriteBps * ww,
			ReadIOPS:  s.ReadIOPS * rw,
			WriteIOPS: s.WriteIOPS * ww,
		}
	}
	return out
}

// QPSeries generates the per-second traffic series of one queue pair: the
// owning VD's series split by the model's per-QP weights.
func (f *Fleet) QPSeries(qp cluster.QPID, durSec int) []Sample {
	vd := f.Topology.VDOfQP(qp)
	m := &f.Models[vd]
	idx := qpIndex(f.Topology, vd, qp)
	return scaleSeries(f.VDSeries(vd, durSec), m.QPWeightsRead[idx], m.QPWeightsWrite[idx])
}

// SplitQPSeries splits an already-generated VD series across that VD's QPs,
// avoiding regenerating the VD series per queue pair.
func (f *Fleet) SplitQPSeries(vd cluster.VDID, vdSeries []Sample) [][]Sample {
	m := &f.Models[vd]
	qps := f.Topology.VDs[vd].QPs
	out := make([][]Sample, len(qps))
	for i := range qps {
		out[i] = scaleSeries(vdSeries, m.QPWeightsRead[i], m.QPWeightsWrite[i])
	}
	return out
}

// SegmentSeries generates the per-second traffic series of one segment.
func (f *Fleet) SegmentSeries(seg cluster.SegmentID, durSec int) []Sample {
	s := &f.Topology.Segments[seg]
	m := &f.Models[s.VD]
	return scaleSeries(f.VDSeries(s.VD, durSec), m.SegWeightsRead[s.Index], m.SegWeightsWrite[s.Index])
}

// qpIndex returns the position of qp within vd's QP list.
func qpIndex(t *cluster.Topology, vd cluster.VDID, qp cluster.QPID) int {
	for i, q := range t.VDs[vd].QPs {
		if q == qp {
			return i
		}
	}
	panic("workload: QP not owned by VD")
}

// SegmentPeriodMatrix aggregates every segment's traffic into fixed periods:
// the result is indexed [segment][period] and holds bytes moved during each
// period. It streams one VD series at a time, so memory stays proportional
// to segments x periods rather than segments x seconds. This is the input
// the inter-BS balancer experiments (§6) consume.
func (f *Fleet) SegmentPeriodMatrix(durSec, periodSec int) [][]RW {
	if periodSec <= 0 || durSec <= 0 {
		panic("workload: SegmentPeriodMatrix needs positive durations")
	}
	nPeriods := (durSec + periodSec - 1) / periodSec
	out := make([][]RW, len(f.Topology.Segments))
	for i := range out {
		out[i] = make([]RW, nPeriods)
	}
	for vdIdx := range f.Topology.VDs {
		vd := &f.Topology.VDs[vdIdx]
		m := &f.Models[vdIdx]
		series := f.VDSeries(cluster.VDID(vdIdx), durSec)
		for t, s := range series {
			p := t / periodSec
			for j, seg := range vd.Segments {
				out[seg][p].R += s.ReadBps * m.SegWeightsRead[j]
				out[seg][p].W += s.WriteBps * m.SegWeightsWrite[j]
			}
		}
	}
	return out
}

// FineSlots spreads one second of a VD's traffic across slotsPerSec
// sub-second slots and returns per-slot byte counts for reads and writes.
// Persistent disks emit one contiguous run of slots whose phase drifts
// slowly across seconds; scattered disks spray isolated spikes (reads more
// concentrated than writes). The paper finds sub-period bursts defeat QP
// rebinding (§4.3) — scattered disks are exactly that case. Deterministic
// per (fleet seed, vd, sec).
func (f *Fleet) FineSlots(vd cluster.VDID, sec int, slotsPerSec int, secSample Sample) (readBytes, writeBytes []float64) {
	m := &f.Models[vd]
	readBytes = make([]float64, slotsPerSec)
	writeBytes = make([]float64, slotsPerSec)
	if m.SlotPersistent {
		// Contiguous run at a drifting phase; both directions share it (the
		// application's activity window).
		width := int(m.SlotRunFrac * float64(slotsPerSec))
		if width < 1 {
			width = 1
		}
		phase := math.Mod(m.SlotPhase+float64(sec)*m.SlotDrift, 1)
		start := int(phase * float64(slotsPerSec))
		for k := 0; k < width; k++ {
			i := (start + k) % slotsPerSec
			readBytes[i] = secSample.ReadBps / float64(width)
			writeBytes[i] = secSample.WriteBps / float64(width)
		}
		return readBytes, writeBytes
	}
	rng := newRand(f.Cfg.Seed, tagEvents, uint64(vd)<<24|uint64(uint32(sec)))
	rw := dirichletLike(rng, slotsPerSec, 0.05)
	ww := dirichletLike(rng, slotsPerSec, 0.20)
	for i := 0; i < slotsPerSec; i++ {
		readBytes[i] = secSample.ReadBps * rw[i]
		writeBytes[i] = secSample.WriteBps * ww[i]
	}
	return readBytes, writeBytes
}
