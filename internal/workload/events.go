package workload

import (
	"math"
	"sync"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// Event is one block IO issued by a virtual disk.
type Event struct {
	TimeUS int64 // microseconds since window start
	Op     trace.Op
	Size   int32 // bytes, 4 KiB aligned
	Offset int64 // byte offset into the VD, 4 KiB aligned
	QP     cluster.QPID
}

// sectorSize is the alignment quantum of generated IOs.
const sectorSize = 4 << 10

// coldZipfS is the Zipf exponent of the cold-region popularity ranking.
const coldZipfS = 1.2

// permPool recycles region-permutation buffers across genEvents calls.
var permPool = sync.Pool{New: func() any { b := make([]int, 0, 64); return &b }}

// maxEventsPerSec caps post-sampling event generation during extreme bursts
// so pathological configurations cannot hang a simulation.
const maxEventsPerSec = 1 << 20

// GenEvents synthesizes the EBS-visible IO event stream of vd over
// [0, durSec) seconds, keeping one out of every sampleEvery IOs (pass 1 for
// the full stream, or trace.SampleRate to mimic the paper's 1/3200
// tracing). Events are delivered to fn in timestamp order.
//
// The LBA model implements §7's findings: a fraction HotAccessFrac of write
// IOs lands in a contiguous hot range (the "hottest block"), hot writes
// stream sequentially through it (LSM/journal style, which is why FIFO ~=
// LRU in Fig 7a), hot reads are mostly absorbed by the guest page cache
// (HotReadFrac), and cold IOs spread over Zipf-weighted regions of the
// remaining address space.
func (f *Fleet) GenEvents(vd cluster.VDID, durSec, sampleEvery int, fn func(Event)) {
	f.genEvents(vd, durSec, sampleEvery, false, nil, nil, fn)
}

// GenEventsBoosted is GenEvents with a per-second demand multiplier: second
// t draws its IO counts from boost(t) times the calibrated rates. The fault
// layer uses it for hot-tenant traffic storms. A nil boost (or one that
// always returns 1) reproduces GenEvents bit-exactly — the multiplier
// feeds the same Bernoulli draw, consuming the same RNG stream.
func (f *Fleet) GenEventsBoosted(vd cluster.VDID, durSec, sampleEvery int, boost func(sec int) float64, fn func(Event)) {
	f.genEvents(vd, durSec, sampleEvery, false, nil, boost, fn)
}

// GenEventsBoostedOver is GenEventsBoosted consuming a caller-supplied VD
// series (as returned by VDSeries/VDSeriesInto for the same vd and durSec)
// instead of regenerating it. The traffic series and the event stream draw
// from independent RNG streams, so the output is bit-identical; passing the
// series the engine already generated for throttling halves the series work
// per disk.
func (f *Fleet) GenEventsBoostedOver(vd cluster.VDID, series []Sample, sampleEvery int, boost func(sec int) float64, fn func(Event)) {
	f.genEvents(vd, len(series), sampleEvery, false, series, boost, fn)
}

// GenAppEvents synthesizes the *application-level* stream of vd: the IOs as
// the guest issues them, before its page cache absorbs hot-range re-reads.
// Hot reads use the full HotAccessFrac instead of the absorbed HotReadFrac.
// Feed this through guestcache.Filter to regenerate an EBS-visible stream
// from first principles.
func (f *Fleet) GenAppEvents(vd cluster.VDID, durSec, sampleEvery int, fn func(Event)) {
	f.genEvents(vd, durSec, sampleEvery, true, nil, nil, fn)
}

func (f *Fleet) genEvents(vd cluster.VDID, durSec, sampleEvery int, appLevel bool, series []Sample, boost func(sec int) float64, fn func(Event)) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	d := &f.Topology.VDs[vd]
	m := &f.Models[vd]
	if series == nil {
		series = f.VDSeries(vd, durSec)
	}
	h := acquireRand(f.Cfg.Seed, tagEvents, uint64(vd))
	defer h.Release()
	rng := h.Rand

	// Weight totals are hoisted out of the per-IO loop; sumWeights accumulates
	// in pickWeighted's exact order, so every draw is bit-identical.
	coldW := f.coldZipfWeights(m.ColdZipfBlocks)
	coldWTotal := sumWeights(coldW)
	qpWReadTotal := sumWeights(m.QPWeightsRead)
	qpWWriteTotal := sumWeights(m.QPWeightsWrite)
	// Shuffle region ranks so the hot cold-region is not always region 0.
	permBuf := permPool.Get().(*[]int)
	defer permPool.Put(permBuf)
	perm := permInto(rng, m.ColdZipfBlocks, *permBuf)
	*permBuf = perm
	regionLen := d.Capacity / int64(m.ColdZipfBlocks)
	if regionLen < sectorSize {
		regionLen = sectorSize
	}

	seqPos := m.HotspotOffset
	// Recent cold offsets: a fraction of cold accesses re-reference them
	// (temporal locality that an LRU can exploit but FIFO cannot).
	var recent [64]int64
	var recentN, recentIdx int

	for t, s := range series {
		b := 1.0
		if boost != nil {
			b = boost(t)
		}
		rc := countFor(rng, b*s.ReadIOPS/float64(sampleEvery))
		wc := countFor(rng, b*s.WriteIOPS/float64(sampleEvery))
		total := rc + wc
		if total == 0 {
			continue
		}
		if total > maxEventsPerSec {
			scale := float64(maxEventsPerSec) / float64(total)
			rc = int(float64(rc) * scale)
			wc = int(float64(wc) * scale)
			total = rc + wc
			if total == 0 {
				continue
			}
		}
		gapUS := 1e6 / float64(total)
		for k := 0; k < total; k++ {
			var ev Event
			// Choose op proportionally to remaining counts so the mix is
			// exact per second.
			if rng.Float64()*float64(rc+wc) < float64(rc) {
				ev.Op = trace.OpRead
				rc--
			} else {
				ev.Op = trace.OpWrite
				wc--
			}
			ev.TimeUS = int64(float64(t)*1e6 + float64(k)*gapUS)

			meanSize := m.ReadIOSize
			qpW, qpWTotal := m.QPWeightsRead, qpWReadTotal
			if ev.Op == trace.OpWrite {
				meanSize = m.WriteIOSize
				qpW, qpWTotal = m.QPWeightsWrite, qpWWriteTotal
			}
			ev.Size = drawIOSize(rng, meanSize)
			ev.QP = d.QPs[pickWeightedTotal(rng, qpW, qpWTotal)]

			hotFrac := m.HotAccessFrac
			if ev.Op == trace.OpRead && !appLevel {
				hotFrac = m.HotReadFrac
			}
			if rng.Float64() < hotFrac && m.HotspotLen > int64(ev.Size) {
				// Hot range access.
				if ev.Op == trace.OpWrite && m.HotWriteSeq {
					ev.Offset = seqPos
					seqPos += int64(ev.Size)
					if seqPos+int64(ev.Size) > m.HotspotOffset+m.HotspotLen {
						seqPos = m.HotspotOffset
					}
				} else {
					span := m.HotspotLen - int64(ev.Size)
					ev.Offset = m.HotspotOffset + alignDown(int64(rng.Float64()*float64(span)))
				}
			} else if recentN > 0 && rng.Float64() < 0.25 {
				// Re-reference a recent cold offset (temporal locality).
				ev.Offset = recent[rng.Intn(recentN)]
			} else {
				// Cold access: Zipf-weighted region, uniform inside.
				region := perm[pickWeightedTotal(rng, coldW, coldWTotal)]
				base := int64(region) * regionLen
				span := regionLen - int64(ev.Size)
				if span < 0 {
					span = 0
				}
				ev.Offset = base + alignDown(int64(rng.Float64()*float64(span)))
				recent[recentIdx] = ev.Offset
				recentIdx = (recentIdx + 1) % len(recent)
				if recentN < len(recent) {
					recentN++
				}
			}
			if ev.Offset+int64(ev.Size) > d.Capacity {
				ev.Offset = d.Capacity - int64(ev.Size)
				ev.Offset = alignDown(ev.Offset)
			}
			if ev.Offset < 0 {
				ev.Offset = 0
			}
			fn(ev)
		}
	}
}

// countFor turns a fractional expected count into an integer count by
// flooring and adding a Bernoulli remainder, preserving the mean.
func countFor(rng interface{ Float64() float64 }, lambda float64) int {
	if lambda <= 0 || math.IsNaN(lambda) {
		return 0
	}
	n := int(lambda)
	if rng.Float64() < lambda-float64(n) {
		n++
	}
	return n
}

// drawIOSize draws a 4 KiB-aligned IO size around the mean with a lognormal
// spread, clamped to [4 KiB, 4 MiB].
func drawIOSize(rng interface{ NormFloat64() float64 }, mean float64) int32 {
	s := mean * math.Exp(0.4*rng.NormFloat64())
	if s < sectorSize {
		s = sectorSize
	}
	if s > 4<<20 {
		s = 4 << 20
	}
	return int32(alignDown(int64(s)))
}

// alignDown rounds x down to the sector boundary.
func alignDown(x int64) int64 {
	a := x &^ (sectorSize - 1)
	if a < 0 {
		return 0
	}
	return a
}
