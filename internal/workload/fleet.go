package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ebslab/internal/cluster"
)

// Fleet is a generated topology plus the per-entity traffic models needed to
// synthesize series and IO events on demand.
type Fleet struct {
	Cfg      Config
	Topology *cluster.Topology
	Seg2BS   *cluster.SegmentMap

	// StorageClusters are the balancing domains (groups of BlockServers
	// within a DC); ClusterOfVD maps each VD to the index of its serving
	// cluster in StorageClusters.
	StorageClusters []cluster.StorageCluster
	ClusterOfVD     []int

	// Models holds one traffic model per VD, indexed by VDID.
	Models []VDModel

	// Cold-region Zipf weight vectors, lazily built and shared (read-only)
	// across every disk with the same region count.
	zipfMu    sync.Mutex
	zipfCache map[int][]float64
}

// coldZipfWeights returns the shared rank-ordered Zipf(coldZipfS) weight
// vector for n cold regions. The returned slice is cached on the Fleet and
// must be treated as read-only.
func (f *Fleet) coldZipfWeights(n int) []float64 {
	f.zipfMu.Lock()
	defer f.zipfMu.Unlock()
	if w, ok := f.zipfCache[n]; ok {
		return w
	}
	if f.zipfCache == nil {
		f.zipfCache = make(map[int][]float64)
	}
	w := zipfWeights(n, coldZipfS)
	f.zipfCache[n] = w
	return w
}

// VDModel is the per-virtual-disk traffic model. All rates are bytes/s.
type VDModel struct {
	VD  cluster.VDID
	App cluster.AppClass

	// MeanReadBps and MeanWriteBps are long-run mean rates; actual traffic is
	// the burst-modulated series around these means.
	MeanReadBps  float64
	MeanWriteBps float64

	// ReadIOSize / WriteIOSize are mean IO sizes in bytes.
	ReadIOSize  float64
	WriteIOSize float64

	// QPWeightsRead / QPWeightsWrite split VD traffic across its queue pairs
	// (indexed like Topology.VDs[vd].QPs). Write splits are more concentrated
	// than read splits (§4.2, VD-to-QP CoV 0.81 vs 0.39).
	QPWeightsRead  []float64
	QPWeightsWrite []float64

	// SegWeightsRead / SegWeightsWrite split VD traffic across its segments.
	// Independently drawn, so hot read and hot write segments rarely
	// coincide, reproducing the read- xor write-dominant segments of §6.2.2.
	SegWeightsRead  []float64
	SegWeightsWrite []float64

	// Burst processes per direction.
	ReadBurst  burstProfile
	WriteBurst burstProfile

	// LBA hotspot model (§7): a contiguous hot range absorbing HotAccessFrac
	// of write IOs; the hot writer streams sequentially through it. Reads to
	// the hot range are mostly absorbed by the guest page cache before they
	// reach EBS, so HotReadFrac is usually far smaller (§7.2: 93.9% of
	// hottest blocks are write-dominant, only 5.5% read-dominant).
	HotspotOffset  int64   // start of the hot range
	HotspotLen     int64   // length of the hot range in bytes
	HotAccessFrac  float64 // fraction of write IOs landing in the hot range
	HotReadFrac    float64 // fraction of read IOs landing in the hot range
	HotWriteSeq    bool    // hot writes advance sequentially (LSM/journal style)
	ColdZipfBlocks int     // number of Zipf-weighted cold regions

	// Sub-second microstructure (§4.3): persistent disks concentrate each
	// second's traffic in a contiguous slot run at a slowly drifting phase
	// (QP rebinding can chase these); scattered disks spray isolated slot
	// spikes shorter than any rebinding period (these defeat it).
	SlotPersistent bool
	SlotRunFrac    float64 // run width as a fraction of a second (persistent)
	SlotPhase      float64 // initial run phase in [0,1) (persistent)
	SlotDrift      float64 // per-second phase drift in [0,1) (persistent)
}

// MeanBps returns the summed mean rate of the model.
func (m *VDModel) MeanBps() float64 { return m.MeanReadBps + m.MeanWriteBps }

// Generate synthesizes a fleet from cfg. The same cfg (including Seed)
// always produces an identical fleet.
func Generate(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := newRand(cfg.Seed, tagFleet, 0)
	top := &cluster.Topology{DCs: cfg.DCs, Users: cfg.Users}

	tenantW := zipfWeights(cfg.Users, cfg.TenantZipfS)
	appW := make([]float64, cluster.NumAppClasses)
	for i := range appW {
		appW[i] = appProfiles[i].popWeight
	}
	wtChoices := []int{2, 4, 8}
	wtWeights := []float64{0.3, 0.5, 0.2}

	nNodes := cfg.DCs * cfg.NodesPerDC
	for n := 0; n < nNodes; n++ {
		node := cluster.ComputeNode{
			ID:        cluster.NodeID(n),
			DC:        cluster.DCID(n / cfg.NodesPerDC),
			WorkerNum: wtChoices[pickWeighted(rng, wtWeights)],
			BareMetal: rng.Float64() < cfg.BareMetalFrac,
		}
		nVMs := 1
		if !node.BareMetal {
			nVMs = 1 + rng.Intn(cfg.MaxVMsPerNode)
		}
		for v := 0; v < nVMs; v++ {
			vmID := cluster.VMID(len(top.VMs))
			vm := cluster.VM{
				ID:   vmID,
				User: cluster.UserID(pickWeighted(rng, tenantW)),
				Node: node.ID,
				App:  cluster.AppClass(pickWeighted(rng, appW)),
			}
			nVDs := geometricAtLeast1(rng, cfg.MeanVDsPerVM)
			if nVDs > 16 {
				nVDs = 16
			}
			// Bare-metal Type I nodes often mount a single low-demand disk.
			if node.BareMetal && rng.Float64() < 0.6 {
				nVDs = 1
			}
			for d := 0; d < nVDs; d++ {
				vdID := cluster.VDID(len(top.VDs))
				capBytes := cfg.CapacityTiers[pickWeighted(rng, cfg.CapacityWeights)]
				vd := cluster.VD{
					ID:       vdID,
					VM:       vmID,
					Capacity: capBytes,
				}
				vd.ThroughputCap, vd.IOPSCap = capsForCapacity(capBytes)
				nQPs := 1
				if rng.Float64() < cfg.MultiQPFrac {
					nQPs = []int{2, 4, 8}[pickWeighted(rng, []float64{0.5, 0.35, 0.15})]
				}
				for q := 0; q < nQPs; q++ {
					qpID := cluster.QPID(len(top.QPs))
					top.QPs = append(top.QPs, cluster.QP{ID: qpID, VD: vdID})
					vd.QPs = append(vd.QPs, qpID)
				}
				nSegs := int((capBytes + cluster.SegmentSize - 1) / cluster.SegmentSize)
				for s := 0; s < nSegs; s++ {
					segID := cluster.SegmentID(len(top.Segments))
					top.Segments = append(top.Segments, cluster.Segment{ID: segID, VD: vdID, Index: s})
					vd.Segments = append(vd.Segments, segID)
				}
				top.VDs = append(top.VDs, vd)
				vm.VDs = append(vm.VDs, vdID)
			}
			top.VMs = append(top.VMs, vm)
			node.VMs = append(node.VMs, vmID)
		}
		top.Nodes = append(top.Nodes, node)
	}

	nBS := cfg.DCs * cfg.BSPerDC
	for b := 0; b < nBS; b++ {
		top.StorageNodes = append(top.StorageNodes, cluster.StorageNodeInfo{
			ID: cluster.StorageNodeID(b),
			DC: cluster.DCID(b / cfg.BSPerDC),
		})
	}
	if err := top.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated topology invalid: %w", err)
	}

	seg2bs, storClusters, clusterOf := cluster.PlaceSegmentsClustered(
		top, cfg.BSPerDC, cfg.BSPerCluster, newRand(cfg.Seed, tagPlacement, 0))
	f := &Fleet{
		Cfg:             cfg,
		Topology:        top,
		Seg2BS:          seg2bs,
		StorageClusters: storClusters,
		ClusterOfVD:     clusterOf,
	}
	f.Models = buildModels(cfg, top)
	return f, nil
}

// capsForCapacity derives the subscription caps of a VD from its capacity,
// following the tiered shape of public EBS offerings: bigger disks buy more
// throughput and IOPS, with floors and ceilings.
func capsForCapacity(capBytes int64) (tputBps, iops float64) {
	gib := float64(capBytes) / float64(1<<30)
	tputBps = 100e6 + gib*0.5e6
	if tputBps > 350e6 {
		tputBps = 350e6
	}
	iops = 1800 + gib*30
	if iops > 50000 {
		iops = 50000
	}
	return tputBps, iops
}

// buildModels draws per-VD traffic models. VM-level activity is drawn once
// per VM (heavy-tailed), then split across the VM's disks with an extremely
// skewed Dirichlet so the system disk idles while a data disk is hot
// (§4.2, VM-to-VD CoV ~= 0.97).
func buildModels(cfg Config, top *cluster.Topology) []VDModel {
	models := make([]VDModel, len(top.VDs))
	// Fleet-wide base rate: chosen so a typical active VM moves a few MB/s.
	const fleetBase = 4e6

	for vmIdx := range top.VMs {
		vm := &top.VMs[vmIdx]
		prof := appProfiles[vm.App]
		vmRng := newRand(cfg.Seed, tagVDModel, uint64(vmIdx))

		sigma := cfg.RateLogSigma * prof.sigmaScale
		// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); offset mu so the
		// class mean stays rateScale*fleetBase regardless of sigma.
		mu := -sigma * sigma / 2
		vmRate := fleetBase * prof.rateScale * lognormal(vmRng, mu, sigma)

		vdW := dirichletLike(vmRng, len(vm.VDs), 0.12)
		// LBA hotness correlates within a VM: a hot database VM tends to
		// have hot blocks on all of its disks. This correlation is what
		// concentrates cacheable VDs on few compute nodes (Fig 7d).
		vmHotness := betaLike(vmRng, 0.22, 0.7)
		for i, vdID := range vm.VDs {
			vd := &top.VDs[vdID]
			m := &models[vdID]
			m.VD = vdID
			m.App = vm.App

			total := vmRate * vdW[i] * float64(len(vm.VDs))
			// Per-VD read fraction around the class mean, with enough spread
			// that many disks are strongly one-sided.
			rf := betaLike(vmRng, prof.readFrac, 0.65)
			m.MeanReadBps = total * rf
			m.MeanWriteBps = total * (1 - rf)
			// Reads concentrate on fewer actors than writes (Observation 2):
			// an extra mean-one heavy-tail factor widens the read CCR above
			// the write CCR.
			const readSkewSigma = 0.9
			m.MeanReadBps *= lognormal(vmRng, -readSkewSigma*readSkewSigma/2, readSkewSigma)

			m.ReadIOSize = prof.readIOSize * lognormal(vmRng, 0, 0.3)
			m.WriteIOSize = prof.writeIOSize * lognormal(vmRng, 0, 0.3)

			m.QPWeightsRead = dirichletLike(vmRng, len(vd.QPs), 1.2)
			m.QPWeightsWrite = dirichletLike(vmRng, len(vd.QPs), 0.15)
			// Segment concentration varies by disk: some disks hammer one
			// segment (journals, LSM levels), others spread evenly (big
			// scans). The mixture is what lets some storage clusters
			// balance and stay balanced (§6.1.1) while others ping-pong a
			// dominant segment.
			segShape := []float64{0.15, 0.6, 2.5}[pickWeighted(vmRng, []float64{0.35, 0.40, 0.25})]
			m.SegWeightsRead = dirichletLike(vmRng, len(vd.Segments), segShape)
			m.SegWeightsWrite = dirichletLike(vmRng, len(vd.Segments), segShape)

			m.ReadBurst = jitterBurst(vmRng, prof.readBurst)
			m.WriteBurst = jitterBurst(vmRng, prof.writeBurst)

			// LBA hotspot: center it in the write-hottest segment so hot
			// blocks are write-dominant (§7.2).
			hotSeg := argmax(m.SegWeightsWrite)
			segStart := int64(hotSeg) * cluster.SegmentSize
			// Hot ranges are small: mostly 64-128 MiB (journals, LSM WALs).
			hotLen := int64(64<<20) << uint(pickWeighted(vmRng, []float64{0.5, 0.3, 0.15, 0.05}))
			if segStart+hotLen > vd.Capacity {
				hotLen = vd.Capacity - segStart
			}
			m.HotspotOffset = segStart
			m.HotspotLen = hotLen
			m.HotAccessFrac = clamp01(0.05 + 0.9*betaLike(vmRng, vmHotness, 0.25))
			// The guest page cache absorbs most repeated reads of the hot
			// range before they reach EBS; a small minority of disks (cache-
			// bypassing scans, cold restarts) stay read-hot.
			if vmRng.Float64() < 0.06 {
				m.HotReadFrac = m.HotAccessFrac
			} else {
				m.HotReadFrac = 0.15 * m.HotAccessFrac
			}
			m.HotWriteSeq = vmRng.Float64() < 0.8
			m.ColdZipfBlocks = 64

			m.SlotPersistent = vmRng.Float64() < 0.5
			m.SlotRunFrac = 0.05 + 0.25*vmRng.Float64()
			m.SlotPhase = vmRng.Float64()
			m.SlotDrift = 0.02 * vmRng.Float64()
		}
	}
	return models
}

// jitterBurst perturbs a class burst profile per VD so no two disks burst
// identically.
func jitterBurst(rng *rand.Rand, b burstProfile) burstProfile {
	j := b
	j.onProb *= math.Exp(0.5 * rng.NormFloat64())
	j.meanOnSec *= math.Exp(0.3 * rng.NormFloat64())
	j.paretoXm *= math.Exp(0.3 * rng.NormFloat64())
	if j.meanOnSec < 1 {
		j.meanOnSec = 1
	}
	return j
}

// betaLike draws from Beta(mean*c, (1-mean)*c) where the concentration c
// shrinks as spread grows: larger spread pushes mass toward 0 and 1, which
// is how many disks end up strongly read- or write-dominant.
func betaLike(rng *rand.Rand, mean, spread float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean >= 1 {
		return 1
	}
	c := 2*(1/spread-1) + 0.2
	a := gammaDraw(rng, mean*c)
	b := gammaDraw(rng, (1-mean)*c)
	if a+b == 0 {
		return mean
	}
	return a / (a + b)
}

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// argmax returns the index of the largest element (first on ties); it
// panics on empty input.
func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
