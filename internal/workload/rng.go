package workload

import (
	"math"
	"math/rand"

	"ebslab/internal/xrand"
)

// splitmix64 advances and mixes a 64-bit state; it derives independent
// per-entity seeds from the master seed so that regenerating any entity's
// parameters or series never depends on generation order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subSeed derives a deterministic seed for a named stream ("vd-traffic",
// entity 42, master seed s). tag values must be distinct per stream family.
func subSeed(master int64, tag uint64, entity uint64) int64 {
	h := splitmix64(uint64(master) ^ splitmix64(tag))
	h = splitmix64(h ^ splitmix64(entity))
	return int64(h)
}

// Stream tags for subSeed. Each family of random draws gets its own tag so
// streams are mutually independent.
const (
	tagFleet     uint64 = 0xF1EE7
	tagVDModel   uint64 = 0x5E11E
	tagVDSeries  uint64 = 0x7A5C1
	tagQPSplit   uint64 = 0x0B5E5
	tagSegSplit  uint64 = 0x5E650
	tagEvents    uint64 = 0xE7E57
	tagPlacement uint64 = 0x91ACE
)

// newRand builds a *rand.Rand from a derived seed.
func newRand(master int64, tag, entity uint64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(master, tag, entity)))
}

// acquireRand is newRand through the pooled seed-mirroring source: the
// returned handle's embedded *rand.Rand produces the identical stream, but
// acquiring it costs ~100ns and zero allocations instead of a full
// lagged-Fibonacci reseed. Release the handle when the stream is done.
func acquireRand(master int64, tag, entity uint64) *xrand.Rand {
	return xrand.Get(subSeed(master, tag, entity))
}

// permInto writes rand.Perm(n) into buf (grown if needed), replicating the
// stdlib draw-for-draw — including the redundant i=0 Intn(1) call — so the
// RNG stream position after the call is identical.
func permInto(rng *rand.Rand, n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	m := buf[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// lognormal draws exp(N(mu, sigma^2)).
func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// pareto draws from a Pareto distribution with scale xm > 0 and shape a > 0
// via inverse-CDF sampling. Smaller a means a heavier tail.
func pareto(rng *rand.Rand, xm, a float64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/a)
}

// boundedPareto draws from a Pareto(xm, a) truncated at hi by resampling the
// uniform, which keeps the tail shape below the bound.
func boundedPareto(rng *rand.Rand, xm, a, hi float64) float64 {
	if hi <= xm {
		return xm
	}
	// Inverse CDF of the truncated distribution.
	u := rng.Float64()
	l := math.Pow(xm, a)
	h := math.Pow(hi, a)
	x := math.Pow(-(u*h-u*l-h)/(h*l), -1/a)
	return x
}

// zipfWeights returns n weights proportional to 1/rank^s, normalized to sum
// to 1, in rank order (index 0 largest).
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// dirichletLike draws n positive weights summing to 1 whose skew is governed
// by shape: small shape (<1) concentrates mass on few entries; large shape
// approaches uniform. It uses normalized Gamma(shape) variates drawn by the
// Marsaglia-Tsang method.
func dirichletLike(rng *rand.Rand, n int, shape float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = gammaDraw(rng, shape)
		total += w[i]
	}
	if total == 0 {
		// Vanishingly unlikely; fall back to all mass on entry 0.
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// gammaDraw samples Gamma(shape, 1) using Marsaglia & Tsang (2000); for
// shape < 1 it uses the boosting transform.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("workload: gammaDraw needs positive shape")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// pickWeighted returns an index into weights drawn proportionally to the
// weights (which need not be normalized but must be non-negative with a
// positive sum).
func pickWeighted(rng *rand.Rand, weights []float64) int {
	return pickWeightedTotal(rng, weights, sumWeights(weights))
}

// sumWeights sums left to right — the exact accumulation pickWeighted
// performs, so hot loops can hoist the total without changing any draw.
func sumWeights(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	return total
}

// pickWeightedTotal is pickWeighted with the weight total precomputed (it
// must equal sumWeights(weights) bit for bit).
func pickWeightedTotal(rng *rand.Rand, weights []float64, total float64) int {
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// geometricAtLeast1 draws a geometric count >= 1 with the given mean (>= 1).
func geometricAtLeast1(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Mean of 1+Geometric(p) is 1 + (1-p)/p = 1/p.
	p := 1 / mean
	n := 1
	for rng.Float64() > p {
		n++
		if n >= 64 { // guard against pathological draws
			break
		}
	}
	return n
}
