package control

import (
	"fmt"

	"ebslab/internal/predict"
)

// SeriesKind names the entity series a policy is asked to forecast.
type SeriesKind uint8

// Series kinds. BS loads are folded through the live placement (so a policy
// sees the effect of its own past migrations), segment series are the raw
// per-segment byte counts (what a migration actually relocates — forecasting
// them keeps segment choice consistent with the BS-level signal), VD series
// are offered demand against the throttle caps, and WT series are derived
// from per-QP counts under the live binding.
const (
	SeriesBS SeriesKind = iota
	SeriesSeg
	SeriesVDBps
	SeriesVDIOPS
	SeriesWT
	numSeriesKinds
)

func (k SeriesKind) String() string {
	switch k {
	case SeriesBS:
		return "bs"
	case SeriesSeg:
		return "seg"
	case SeriesVDBps:
		return "vd-bps"
	case SeriesVDIOPS:
		return "vd-iops"
	case SeriesWT:
		return "wt"
	}
	return fmt.Sprintf("series-%d", uint8(k))
}

// Policy is the controller's forecasting plug. The controller owns the
// actuation machinery — exporter scans, lending budgets, rebind selection —
// and every shipped policy differs ONLY in how it forecasts the next epoch,
// so a reactive-vs-predictive comparison isolates exactly the prediction
// question the paper poses. Forecast receives one entity's measured history
// hist[0..e] (oldest first, never empty) and returns the expected value of
// epoch e+1. Implementations may keep per-entity state; the controller calls
// Forecast in a fixed entity order, so stateful policies stay deterministic.
type Policy interface {
	Name() string
	Forecast(kind SeriesKind, id int, hist []float64) float64
}

// FutureAware is the oracle hook: before planning each epoch the controller
// hands the policy a lookup of the TRUE next-epoch value of every series
// (computed from the full observation under the live placement). Policies
// without this interface see only the past.
type FutureAware interface {
	SetFuture(func(kind SeriesKind, id int) float64)
}

// NoOp is the null policy: the controller records nothing and the compiled
// timeline is empty, so an actuated run is byte-identical to an uncontrolled
// run — the metamorphic baseline every controlled run is measured against.
type NoOp struct{}

// Name implements Policy.
func (NoOp) Name() string { return "noop" }

// Forecast implements Policy (never consulted; the controller skips planning
// entirely for the no-op policy).
func (NoOp) Forecast(_ SeriesKind, _ int, hist []float64) float64 {
	return hist[len(hist)-1]
}

// Reactive is the production-style threshold controller: it assumes the next
// epoch looks exactly like the last measured one, so every mitigation fires
// one epoch after the hotspot materializes.
type Reactive struct{}

// Name implements Policy.
func (Reactive) Name() string { return "reactive" }

// Forecast implements Policy.
func (Reactive) Forecast(_ SeriesKind, _ int, hist []float64) float64 {
	return hist[len(hist)-1]
}

// Predictive forecasts with a predict.Predictor per entity series (Holt,
// ARIMA, GBT — anything satisfying the interface), refit on its own cadence.
// With a trend-following model it sees a storm ramp inside an epoch and
// mitigates before the ramp completes, which is the whole §8 argument.
type Predictive struct {
	// Label names the policy in logs and reports (e.g. "predictive-holt").
	Label string
	// New constructs one forecaster; each entity series gets its own.
	New func() predict.Predictor
	// RefitEvery throttles refits per series (<= 1: refit every epoch).
	RefitEvery int
	// UpperEnvelope returns max(model forecast, last observation) instead
	// of the raw model output. Mitigation cost is asymmetric: missing a
	// rising hot spot buys a full epoch of imbalance, while over-forecasting
	// a cooling entity merely delays a re-import — so the shipped predictive
	// policies hedge on the hot side and only let the model ADD urgency
	// beyond persistence, never subtract it.
	UpperEnvelope bool

	models map[seriesID]*fitState
}

type seriesID struct {
	kind SeriesKind
	id   int
}

type fitState struct {
	p       predict.Predictor
	lastFit int
	pred    float64
}

// NewPredictive builds a Predictive policy over the forecaster constructor.
func NewPredictive(label string, mk func() predict.Predictor, refitEvery int) *Predictive {
	return &Predictive{Label: label, New: mk, RefitEvery: refitEvery}
}

// Name implements Policy.
func (p *Predictive) Name() string { return p.Label }

// Forecast implements Policy.
func (p *Predictive) Forecast(kind SeriesKind, id int, hist []float64) float64 {
	if p.models == nil {
		p.models = make(map[seriesID]*fitState)
	}
	key := seriesID{kind, id}
	st := p.models[key]
	if st == nil {
		st = &fitState{p: p.New(), lastFit: -1}
		p.models[key] = st
	}
	refit := p.RefitEvery
	if refit < 1 {
		refit = 1
	}
	now := len(hist) - 1
	if st.lastFit < 0 || now-st.lastFit >= refit {
		if err := st.p.Fit(hist); err != nil {
			// Degenerate history (too short, constant): fall back to the
			// reactive forecast rather than poisoning the plan.
			return hist[now]
		}
		st.lastFit = now
		st.pred = st.p.Predict()
	}
	if p.UpperEnvelope && st.pred < hist[now] {
		return hist[now]
	}
	return st.pred
}

// Oracle forecasts with the true next-epoch value — the upper bound on what
// any predictor could buy the controller. It still obeys the actuation
// machinery (thresholds, budgets), so the gap between oracle and predictive
// is forecasting error, not actuation headroom.
type Oracle struct {
	future func(kind SeriesKind, id int) float64
}

// Name implements Policy.
func (o *Oracle) Name() string { return "oracle" }

// SetFuture implements FutureAware.
func (o *Oracle) SetFuture(f func(kind SeriesKind, id int) float64) { o.future = f }

// Forecast implements Policy.
func (o *Oracle) Forecast(kind SeriesKind, id int, hist []float64) float64 {
	if o.future == nil {
		return hist[len(hist)-1]
	}
	return o.future(kind, id)
}

// ByName constructs one of the shipped policies: "noop", "reactive",
// "predictive" (Holt), "predictive-arima", "predictive-gbt", or "oracle".
//
// The shipped predictive policies all hedge on the hot side (UpperEnvelope),
// and the Holt variant pins Alpha=1, Beta=0.3 rather than grid-searching:
// the level then IS the last observation and the trend term is smoothed
// momentum, so the forecast is exactly "persistence plus ramp" — it reacts
// no slower than the reactive policy and earns its keep on multi-epoch
// storm ramps. (Grid-searched Holt minimizes average SSE, which over-smooths
// the level and lags every onset — measurably worse here than persistence.)
func ByName(name string) (Policy, error) {
	upper := func(p *Predictive) *Predictive { p.UpperEnvelope = true; return p }
	switch name {
	case "noop":
		return NoOp{}, nil
	case "reactive":
		return Reactive{}, nil
	case "predictive", "predictive-holt":
		return upper(NewPredictive("predictive-holt", func() predict.Predictor { return &predict.Holt{Alpha: 1, Beta: 0.3} }, 1)), nil
	case "predictive-arima":
		return upper(NewPredictive("predictive-arima", func() predict.Predictor { return predict.NewARIMA(3, 1) }, 1)), nil
	case "predictive-gbt":
		return upper(NewPredictive("predictive-gbt", func() predict.Predictor { return predict.NewGBT(4, 40, 3, 0.1) }, 2)), nil
	case "oracle":
		return &Oracle{}, nil
	}
	return nil, fmt.Errorf("control: unknown policy %q (want noop, reactive, predictive[-holt|-arima|-gbt], oracle)", name)
}
