package control

import (
	"fmt"

	"ebslab/internal/cluster"
)

// Timeline is the compiled output of a control run: for every epoch, the
// placement row, QP→WT binding row, migration-landing bitset, and throttle
// cap deltas the engine should apply to IOs falling in that epoch. The
// engine consumes it with pure lookups — no RNG, no allocation — so applying
// a timeline never perturbs the generator's draws, and an empty timeline is
// arithmetically invisible (the no-op identity the metamorphic suite pins).
//
// Rows are copy-on-write snapshots: a nil row means "use the run's base
// state", and consecutive epochs whose state did not change alias the same
// slice. Only the controller writes a timeline; the engine treats it as
// immutable.
type Timeline struct {
	// EpochSec and DurSec mirror the observation shape that produced the
	// timeline, so EpochOf agrees between passes.
	EpochSec int
	DurSec   int
	// PenaltyUS is the extra backend-network latency an IO pays when it
	// touches a segment during the epoch the segment lands on its new BS
	// (data movement competes with foreground traffic).
	PenaltyUS float64

	bs    [][]cluster.StorageNodeID // [epoch] full placement, nil = base
	wt    [][]int8                  // [epoch] per-QP WT binding, nil = base
	moved [][]uint64                // [epoch] landing bitset over segments, nil = none
	lendT [][]float64               // [epoch] per-VD throughput cap delta, nil = none
	lendI [][]float64               // [epoch] per-VD IOPS cap delta, nil = none
}

// NewTimeline allocates an empty timeline over the window.
func NewTimeline(epochSec, durSec int) *Timeline {
	n := epochs(epochSec, durSec)
	return &Timeline{
		EpochSec: epochSec,
		DurSec:   durSec,
		bs:       make([][]cluster.StorageNodeID, n),
		wt:       make([][]int8, n),
		moved:    make([][]uint64, n),
		lendT:    make([][]float64, n),
		lendI:    make([][]float64, n),
	}
}

func epochs(epochSec, durSec int) int {
	if epochSec <= 0 || durSec <= 0 {
		return 0
	}
	return (durSec + epochSec - 1) / epochSec
}

// Epochs returns the number of epochs the timeline spans.
func (t *Timeline) Epochs() int { return len(t.bs) }

// EpochOf maps a simulated second to its epoch, clamped into range.
func (t *Timeline) EpochOf(sec int) int {
	ep := sec / t.EpochSec
	if max := len(t.bs) - 1; ep > max {
		ep = max
	}
	if ep < 0 {
		ep = 0
	}
	return ep
}

// Empty reports whether the timeline carries no actuation at all; the engine
// skips per-IO lookups entirely for an empty timeline.
func (t *Timeline) Empty() bool {
	for ep := range t.bs {
		if t.bs[ep] != nil || t.wt[ep] != nil || t.moved[ep] != nil ||
			t.lendT[ep] != nil || t.lendI[ep] != nil {
			return false
		}
	}
	return true
}

// BSRow returns epoch ep's placement row (nil: base placement).
func (t *Timeline) BSRow(ep int) []cluster.StorageNodeID { return t.bs[ep] }

// WTRow returns epoch ep's QP→WT binding row (nil: base binding).
func (t *Timeline) WTRow(ep int) []int8 { return t.wt[ep] }

// MovedAt reports whether segment seg lands on a new BS during epoch ep.
func (t *Timeline) MovedAt(ep int, seg int) bool {
	row := t.moved[ep]
	if row == nil {
		return false
	}
	return row[seg>>6]&(1<<(uint(seg)&63)) != 0
}

// LendTput returns epoch ep's per-VD throughput cap deltas (nil: none).
func (t *Timeline) LendTput(ep int) []float64 { return t.lendT[ep] }

// LendIOPS returns epoch ep's per-VD IOPS cap deltas (nil: none).
func (t *Timeline) LendIOPS(ep int) []float64 { return t.lendI[ep] }

// VDLends reports whether any epoch carries a cap delta for VD vd; the
// engine routes such VDs through the scheduled-caps throttle path.
func (t *Timeline) VDLends(vd int) bool {
	for ep := range t.lendT {
		if r := t.lendT[ep]; r != nil && r[vd] != 0 {
			return true
		}
		if r := t.lendI[ep]; r != nil && r[vd] != 0 {
			return true
		}
	}
	return false
}

// setPlacement installs placement row for epochs [ep, end). The row is
// aliased, not copied: the controller clones before the next mutation.
func (t *Timeline) setPlacement(ep int, row []cluster.StorageNodeID) {
	for e := ep; e < len(t.bs); e++ {
		t.bs[e] = row
	}
}

// setBinding installs QP→WT binding row for epochs [ep, end).
func (t *Timeline) setBinding(ep int, row []int8) {
	for e := ep; e < len(t.wt); e++ {
		t.wt[e] = row
	}
}

// markMoved records segment seg as landing during epoch ep.
func (t *Timeline) markMoved(ep, seg, nSegments int) {
	if t.moved[ep] == nil {
		t.moved[ep] = make([]uint64, (nSegments+63)/64)
	}
	t.moved[ep][seg>>6] |= 1 << (uint(seg) & 63)
}

// addLend accumulates a cap delta for VD vd during epoch ep.
func (t *Timeline) addLend(ep, vd, nVDs int, tput, iops float64) {
	if tput != 0 {
		if t.lendT[ep] == nil {
			t.lendT[ep] = make([]float64, nVDs)
		}
		t.lendT[ep][vd] += tput
	}
	if iops != 0 {
		if t.lendI[ep] == nil {
			t.lendI[ep] = make([]float64, nVDs)
		}
		t.lendI[ep][vd] += iops
	}
}

// Validate rejects timelines whose rows cannot index the run's entities.
func (t *Timeline) Validate(nSegments, nQPs, nVDs int) error {
	if t.EpochSec <= 0 || t.DurSec <= 0 {
		return fmt.Errorf("control: timeline window %ds/%ds, want > 0", t.EpochSec, t.DurSec)
	}
	if got := epochs(t.EpochSec, t.DurSec); got != len(t.bs) {
		return fmt.Errorf("control: timeline has %d epochs, window implies %d", len(t.bs), got)
	}
	for ep := range t.bs {
		if r := t.bs[ep]; r != nil && len(r) != nSegments {
			return fmt.Errorf("control: epoch %d placement row has %d segments, fleet has %d", ep, len(r), nSegments)
		}
		if r := t.wt[ep]; r != nil && len(r) != nQPs {
			return fmt.Errorf("control: epoch %d binding row has %d QPs, fleet has %d", ep, len(r), nQPs)
		}
		if r := t.moved[ep]; r != nil && len(r) != (nSegments+63)/64 {
			return fmt.Errorf("control: epoch %d moved bitset sized for %d words, want %d", ep, len(r), (nSegments+63)/64)
		}
		for _, lr := range [][]float64{t.lendT[ep], t.lendI[ep]} {
			if lr != nil && len(lr) != nVDs {
				return fmt.Errorf("control: epoch %d lend row has %d VDs, fleet has %d", ep, len(lr), nVDs)
			}
		}
	}
	return nil
}
