// The golden bake-off pins one fixed (fleet, seed, chaos plan) scenario:
// four policies through the full predict→act loop, metrics and fingerprints
// frozen in testdata/golden/controleval.json. Regenerate after an
// intentional change with
//
//	go test ./internal/control/ctleval -run TestGoldenControlEval -update
package ctleval_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ebslab/internal/chaos"
	"ebslab/internal/control"
	"ebslab/internal/control/ctleval"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden control-eval fixture")

const evalSeed = 2

// evalSpec is the pinned scenario: a one-DC fleet with twelve BlockServers
// under a chaos plan whose storm windows span ~4 epochs and straddle epoch
// boundaries — each onset shows the controller a partial-coverage epoch
// before the full-boost epochs, and that ramp is exactly what a
// momentum-carrying forecaster can act on one epoch before a last-value
// policy does. Crash windows (~3 epochs) exercise the evacuation path and
// the failover penalty accounting at the same time.
func evalSpec() ctleval.Spec {
	cfg := workload.DefaultConfig()
	cfg.Seed = evalSeed
	cfg.DCs = 1
	cfg.NodesPerDC = 4
	cfg.BSPerDC = 12
	cfg.BSPerCluster = 6
	cfg.Users = 16
	cfg.DurationSec = 240
	return ctleval.Spec{
		Fleet: cfg,
		Opts: ebs.Options{
			Seed: evalSeed, DurationSec: 240,
			TraceSampleEvery: 1, EventSampleEvery: 8, Workers: 2,
			Chaos: &chaos.Plan{
				Seed: evalSeed, BSCrashes: 2, MeanDownSec: 30,
				FailoverPenaltyUS: 1500,
				Storms:            12, StormFactor: 8, MeanStormSec: 40,
				Recoverable: true,
			},
		},
		Control: control.Config{EpochSec: 10},
	}
}

func runEval(t *testing.T) *ctleval.Report {
	t.Helper()
	rep, err := ctleval.Run(context.Background(), evalSpec())
	if err != nil {
		t.Fatalf("ctleval.Run: %v", err)
	}
	return rep
}

func TestGoldenControlEval(t *testing.T) {
	rep := runEval(t)
	t.Logf("bake-off:\n%s", rep)

	path := filepath.Join("testdata", "golden", "controleval.json")
	if *update {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("write fixture: %v", err)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	var want ctleval.Report
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("unmarshal fixture: %v", err)
	}
	// Round-trip the live report through JSON so both sides compare in
	// encoding/json's value domain (float64 round-trips exactly).
	live, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal live: %v", err)
	}
	var got ctleval.Report
	if err := json.Unmarshal(live, &got); err != nil {
		t.Fatalf("unmarshal live: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("report drifted from golden fixture; inspect and rerun with -update\ngot:\n%s", rep)
	}
}

// The headline acceptance claim: under a chaos plan whose storms ramp
// across epoch boundaries, the predictive policy beats the reactive policy
// on mean imbalance, and every mitigation policy beats leaving the fleet
// alone.
func TestPredictiveBeatsReactive(t *testing.T) {
	rep := runEval(t)
	noop, re, pred := rep.Find("noop"), rep.Find("reactive"), rep.Find("predictive-holt")
	if noop == nil || re == nil || pred == nil {
		t.Fatalf("bake-off missing a policy: %+v", rep.Outcomes)
	}
	if pred.MeanCoV >= re.MeanCoV {
		t.Errorf("predictive MeanCoV %.4f, want < reactive %.4f\n%s", pred.MeanCoV, re.MeanCoV, rep)
	}
	if re.MeanCoV >= noop.MeanCoV {
		t.Errorf("reactive MeanCoV %.4f, want < uncontrolled %.4f\n%s", re.MeanCoV, noop.MeanCoV, rep)
	}
	if noop.Decisions != 0 {
		t.Errorf("noop made %d decisions, want 0", noop.Decisions)
	}
}

// Metamorphic law 1: the no-op policy's actuated dataset is byte-identical
// to an uncontrolled run of the same options — observing and planning must
// not perturb the simulation.
func TestNoopMatchesUncontrolled(t *testing.T) {
	spec := evalSpec()
	spec.Policies = []string{"noop"}
	rep, err := ctleval.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("ctleval.Run: %v", err)
	}
	fleet, err := workload.Generate(spec.Fleet)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ds, err := ebs.New(fleet).Run(context.Background(), spec.Opts)
	if err != nil {
		t.Fatalf("uncontrolled Run: %v", err)
	}
	if got, want := rep.Outcomes[0].DatasetFP, invariant.Fingerprint(ds); got != want {
		t.Fatalf("noop dataset fingerprint %s, uncontrolled run %s", got, want)
	}
}

// Metamorphic law 2: the decision log and the actuated dataset are
// worker-count invariant — the control loop is sequential and the engine
// merge is commutative, so parallelism must not leak into either.
func TestControlWorkerInvariance(t *testing.T) {
	base := evalSpec()
	base.Policies = []string{"predictive-holt"}
	var fps [2]ctleval.Outcome
	for i, workers := range []int{1, 3} {
		spec := base
		spec.Opts.Workers = workers
		rep, err := ctleval.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fps[i] = rep.Outcomes[0]
	}
	if fps[0].LogFP != fps[1].LogFP {
		t.Errorf("decision log fingerprint differs across worker counts: %s vs %s", fps[0].LogFP, fps[1].LogFP)
	}
	if fps[0].DatasetFP != fps[1].DatasetFP {
		t.Errorf("dataset fingerprint differs across worker counts: %s vs %s", fps[0].DatasetFP, fps[1].DatasetFP)
	}
}

// TestScenarioArm runs a compact bake-off over a scenario-reshaped fleet:
// the harness must bind the spec string itself, the reshaped traffic must
// actually change the noop dataset, and a malformed spec string must be
// rejected before any policy runs.
func TestScenarioArm(t *testing.T) {
	small := evalSpec()
	small.Fleet.DurationSec = 24
	small.Opts.DurationSec = 24
	small.Opts.Chaos = nil
	small.Control = control.Config{EpochSec: 3}
	small.Policies = []string{"noop", "predictive"}

	base, err := ctleval.Run(context.Background(), small)
	if err != nil {
		t.Fatalf("Run(no scenario): %v", err)
	}
	shaped := small
	// lo must undercut this small fleet's demand (a fraction of the caps)
	// for the elastic clip to bite; see the scenario package tests.
	shaped.Scenario = "elastic,hi=2,lo=0.0001,step=3"
	rep, err := ctleval.Run(context.Background(), shaped)
	if err != nil {
		t.Fatalf("Run(elastic scenario): %v", err)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(rep.Outcomes))
	}
	if rep.Outcomes[0].DatasetFP == base.Outcomes[0].DatasetFP {
		t.Error("elastic scenario left the noop dataset unchanged")
	}

	bad := shaped
	bad.Scenario = "quakestorm"
	if _, err := ctleval.Run(context.Background(), bad); err == nil {
		t.Error("unknown scenario accepted")
	}
}
