// Package ctleval runs the mitigation control plane's policy bake-off: one
// fleet, one seed, one (optional) chaos plan, every requested policy run
// through the full predict→act loop, with imbalance and hot-spot metrics
// reported side by side. The no-op policy doubles as the uncontrolled
// baseline — its timeline is empty, so its dataset is byte-identical to a
// plain run — which makes the report self-calibrating: any policy's win or
// loss is read directly against the noop row.
package ctleval

import (
	"context"
	"fmt"
	"strings"

	"ebslab/internal/chaos"
	"ebslab/internal/control"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/scenario"
	"ebslab/internal/workload"
)

// Spec describes one evaluation scenario. The zero value of every field
// defaults sensibly except Fleet, which must be a valid workload config.
type Spec struct {
	// Fleet is the workload configuration the scenario generates.
	Fleet workload.Config
	// Opts are the run options shared by every policy (Chaos may be set
	// here; Control/Observe must be left nil — the harness owns them).
	Opts ebs.Options
	// Control tunes the controller; zero fields take control.Config defaults.
	Control control.Config
	// Scenario, when non-empty, reshapes the fleet's traffic with a
	// scenario-library spec string ("elastic,step=10", ...) before every
	// policy runs — the bake-off then measures how each policy copes with
	// that scenario. Record-sourced replays are rejected by the engine
	// (measured latencies cannot be re-actuated). Opts.Scenario must be
	// left nil; the harness binds the scenario itself.
	Scenario string
	// Policies names the policies to evaluate, in report order (see
	// control.ByName). Empty means the canonical four-way bake-off:
	// noop, reactive, predictive-holt, oracle.
	Policies []string
}

// Outcome is one policy's row of the side-by-side report.
type Outcome struct {
	Policy string
	// Decision-log composition.
	Decisions   int
	Migrations  int
	Evacuations int
	Lends       int
	Rebinds     int
	// Imbalance and hot-spot metrics over the run's epochs, measured under
	// the placement the policy actually produced (control.Imbalance over
	// Plan.BSLoad).
	MeanCoV   float64
	MaxCoV    float64
	PeakShare float64
	// FaultedIOs counts IOs that landed on a crashed BS in the actuated
	// pass — evacuations off dying servers drive this down.
	FaultedIOs int64
	// LogFP fingerprints the decision log; DatasetFP the actuated dataset.
	LogFP     string
	DatasetFP string
}

// Report is the full bake-off result.
type Report struct {
	Epochs   int
	Outcomes []Outcome
}

// DefaultPolicies is the canonical bake-off lineup.
var DefaultPolicies = []string{"noop", "reactive", "predictive-holt", "oracle"}

// Run executes the scenario once per policy. Every policy sees the same
// fleet, seed, and chaos schedule; only the forecasts differ.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	fleet, err := workload.Generate(spec.Fleet)
	if err != nil {
		return nil, fmt.Errorf("ctleval: generate fleet: %w", err)
	}
	if spec.Opts.Control != nil || spec.Opts.Observe != nil {
		return nil, fmt.Errorf("ctleval: Spec.Opts.Control/Observe must be nil; the harness owns the control loop")
	}
	if spec.Opts.Scenario != nil {
		return nil, fmt.Errorf("ctleval: Spec.Opts.Scenario must be nil; set Spec.Scenario (the spec string) and the harness binds it")
	}
	var wl scenario.Workload
	if spec.Scenario != "" {
		built, err := scenario.Build(spec.Scenario)
		if err != nil {
			return nil, fmt.Errorf("ctleval: %w", err)
		}
		wl, err = built.Bind(fleet)
		if err != nil {
			return nil, fmt.Errorf("ctleval: %w", err)
		}
	}
	policies := spec.Policies
	if len(policies) == 0 {
		policies = DefaultPolicies
	}
	sim := ebs.New(fleet)
	rep := &Report{}
	for _, name := range policies {
		pol, err := control.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("ctleval: %w", err)
		}
		opts := spec.Opts
		opts.Scenario = wl
		var cst chaos.Stats
		if opts.Chaos != nil {
			opts.ChaosStats = &cst
		}
		ds, plan, err := sim.RunControlled(ctx, opts, pol, spec.Control)
		if err != nil {
			return nil, fmt.Errorf("ctleval: policy %s: %w", name, err)
		}
		imb := control.Imbalance(plan.BSLoad)
		out := Outcome{
			Policy:     name,
			Decisions:  len(plan.Decisions),
			MeanCoV:    imb.MeanCoV,
			MaxCoV:     imb.MaxCoV,
			PeakShare:  imb.PeakShare,
			FaultedIOs: cst.FaultedIOs,
			LogFP:      plan.LogFingerprint(),
			DatasetFP:  invariant.Fingerprint(ds),
		}
		for _, d := range plan.Decisions {
			switch d.Kind {
			case control.DecMigrate:
				out.Migrations++
			case control.DecEvacuate:
				out.Evacuations++
			case control.DecLend:
				out.Lends++
			case control.DecRebind:
				out.Rebinds++
			}
		}
		rep.Epochs = len(plan.BSLoad)
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep, nil
}

// Find returns the outcome row of one policy, or nil.
func (r *Report) Find(policy string) *Outcome {
	for i := range r.Outcomes {
		if r.Outcomes[i].Policy == policy {
			return &r.Outcomes[i]
		}
	}
	return nil
}

// String renders the side-by-side table the CLI prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %6s %6s %6s %6s %8s\n",
		"policy", "meanCoV", "maxCoV", "peakShr", "migr", "evac", "lend", "rebind", "faulted")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-16s %9.4f %9.4f %9.4f %6d %6d %6d %6d %8d\n",
			o.Policy, o.MeanCoV, o.MaxCoV, o.PeakShare,
			o.Migrations, o.Evacuations, o.Lends, o.Rebinds, o.FaultedIOs)
	}
	return b.String()
}
