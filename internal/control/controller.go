package control

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"ebslab/internal/balancer"
	"ebslab/internal/cluster"
	"ebslab/internal/throttle"
)

// Config tunes the controller's actuation machinery. The thresholds mirror
// the offline balancer's (Algorithm 1) so a controlled run is comparable to
// the §6 experiments; the lending and rebind knobs are the online analogues
// of §5 and §4.
type Config struct {
	// EpochSec is the decision cadence (also the observation epoch).
	EpochSec int
	// ExporterThreshold is the multiple of the mean forecast BS load at
	// which a BS becomes a migration exporter (default 1.2).
	ExporterThreshold float64
	// MigrateFraction is the share of mean load each exporter sheds per
	// epoch (default 0.2).
	MigrateFraction float64
	// ImprovementMargin gates movability exactly as in the balancer: a
	// segment moves only if the coldest BS plus the segment stays below
	// ImprovementMargin x the exporter's forecast (default 0.9).
	ImprovementMargin float64
	// LendRate caps how much of a VD's forecast cap headroom its VM
	// siblings may borrow (default 0.5).
	LendRate float64
	// RebindTrigger is the max/mean ratio of forecast per-WT load on a node
	// above which the hottest QP is rebound to the coldest WT (default 1.5).
	RebindTrigger float64
	// MigrationPenaltyUS is the backend-network latency surcharge IOs pay
	// on a segment during its landing epoch (default 150).
	MigrationPenaltyUS float64
}

func (c Config) withDefaults() Config {
	if c.ExporterThreshold <= 1 {
		c.ExporterThreshold = 1.2
	}
	if c.MigrateFraction <= 0 {
		c.MigrateFraction = 0.2
	}
	if c.ImprovementMargin <= 0 || c.ImprovementMargin >= 1 {
		c.ImprovementMargin = 0.9
	}
	if c.LendRate <= 0 || c.LendRate > 1 {
		c.LendRate = 0.5
	}
	if c.RebindTrigger <= 1 {
		c.RebindTrigger = 1.5
	}
	if c.MigrationPenaltyUS <= 0 {
		c.MigrationPenaltyUS = 150
	}
	return c
}

// Input is the fleet context the controller plans against. Everything is a
// pure function of the topology and the observe pass — no scheduling state —
// so BuildPlan is deterministic for a given (policy, config, input).
type Input struct {
	// Obs is the observe-pass telemetry.
	Obs *Observation
	// Placement is the base segment→BS map (cloned, never mutated).
	Placement *cluster.SegmentMap
	// Binding is the base per-QP node-local worker-thread binding.
	Binding []int8
	// Caps are the per-VD nominal throttle subscriptions.
	Caps []throttle.Caps
	// VMOfVD maps each VD to its VM; lending stays within a VM's disks.
	VMOfVD []int
	// NodeOfQP maps each QP to its compute node.
	NodeOfQP []int
	// Down reports whether BS bs is crashed at the instant epoch ep begins;
	// the controller evacuates segments off BSes that are down entering the
	// epoch it is planning. Nil means no fault information.
	Down func(ep, bs int) bool
}

func (in Input) validate() error {
	if in.Obs == nil {
		return fmt.Errorf("control: Input.Obs is nil")
	}
	sh := in.Obs.Shape
	if err := sh.Validate(); err != nil {
		return err
	}
	if in.Placement == nil {
		return fmt.Errorf("control: Input.Placement is nil")
	}
	if in.Placement.Len() != sh.Segments {
		return fmt.Errorf("control: placement has %d segments, observation %d", in.Placement.Len(), sh.Segments)
	}
	if len(in.Binding) != sh.QPs {
		return fmt.Errorf("control: binding has %d QPs, observation %d", len(in.Binding), sh.QPs)
	}
	if len(in.Caps) != sh.VDs {
		return fmt.Errorf("control: caps for %d VDs, observation %d", len(in.Caps), sh.VDs)
	}
	if len(in.VMOfVD) != sh.VDs {
		return fmt.Errorf("control: VMOfVD for %d VDs, observation %d", len(in.VMOfVD), sh.VDs)
	}
	if len(in.NodeOfQP) != sh.QPs {
		return fmt.Errorf("control: NodeOfQP for %d QPs, observation %d", len(in.NodeOfQP), sh.QPs)
	}
	return nil
}

// DecisionKind names the mitigation lever a decision pulls.
type DecisionKind uint8

// Decision kinds.
const (
	DecMigrate DecisionKind = iota
	DecEvacuate
	DecLend
	DecRebind
)

func (k DecisionKind) String() string {
	switch k {
	case DecMigrate:
		return "migrate"
	case DecEvacuate:
		return "evacuate"
	case DecLend:
		return "lend"
	case DecRebind:
		return "rebind"
	}
	return fmt.Sprintf("decision-%d", uint8(k))
}

// Decision is one entry of the control plane's decision log. Epoch is the
// epoch the action takes effect in (the controller decided it at the end of
// Epoch-1, seeing only observations <= Epoch-1).
type Decision struct {
	Epoch int
	Kind  DecisionKind

	// Migrate/evacuate: segment Seg moves From→To.
	Seg, From, To int

	// Lend: VD's caps shift by the deltas for this epoch only (negative:
	// lent to a VM sibling; positive: borrowed).
	VD                   int
	TputDelta, IOPSDelta float64

	// Rebind: QP is bound to node-local worker thread WT.
	QP, WT int

	// Forecast is the predicted value that motivated the decision (the
	// exporter's BS load, the borrower's demand, the hot WT's load).
	Forecast float64
}

// Plan is a compiled control run: the decision log, the timeline the engine
// applies, the migration log joinable against the balancer's format, and the
// per-epoch per-BS load measured under the placement in effect — the series
// the evaluation harness scores imbalance on.
type Plan struct {
	Policy    string
	Config    Config
	Decisions []Decision
	Timeline  *Timeline
	// Applied mirrors every migrate/evacuate decision as a balancer
	// migration entry (AtSec stamped with the landing epoch's boundary
	// second) so invariant checks can join the two logs.
	Applied []balancer.Migration
	// BSLoad[ep][bs] is epoch ep's bytes on bs under the live placement.
	BSLoad [][]float64
}

// LogFingerprint digests the decision log in canonical order; two plans
// fingerprint identically iff they made the same decisions. This is the
// byte-stability witness the worker-count invariance test pins.
func (p *Plan) LogFingerprint() string {
	h := sha256.New()
	wU64(h, uint64(len(p.Decisions)))
	for _, d := range p.Decisions {
		wU64(h, uint64(d.Epoch))
		wU64(h, uint64(d.Kind))
		wU64(h, uint64(int64(d.Seg)))
		wU64(h, uint64(int64(d.From)))
		wU64(h, uint64(int64(d.To)))
		wU64(h, uint64(int64(d.VD)))
		wU64(h, math.Float64bits(d.TputDelta))
		wU64(h, math.Float64bits(d.IOPSDelta))
		wU64(h, uint64(int64(d.QP)))
		wU64(h, uint64(int64(d.WT)))
		wU64(h, math.Float64bits(d.Forecast))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildPlan replays the observation epoch by epoch through the policy and
// compiles the resulting timeline. At the end of each epoch e the policy
// forecasts epoch e+1 from histories [0..e] only (the oracle policy is the
// single, explicit exception), and the controller turns forecasts into
// migrations, evacuations, lending grants and rebinds using the same
// threshold machinery for every policy — so plans differ across policies
// exactly as far as their forecasts do.
func BuildPlan(pol Policy, cfg Config, in Input) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	sh := in.Obs.Shape
	cfg.EpochSec = sh.EpochSec
	cfg = cfg.withDefaults()

	nEpochs := sh.Epochs()
	nBS := in.Placement.NumBS()
	live := in.Placement.Clone()
	binding := append([]int8(nil), in.Binding...)
	wtCount, err := wtCounts(sh)
	if err != nil {
		return nil, err
	}

	plan := &Plan{
		Policy:   pol.Name(),
		Config:   cfg,
		Timeline: NewTimeline(sh.EpochSec, sh.DurSec),
		BSLoad:   make([][]float64, 0, nEpochs),
	}
	plan.Timeline.PenaltyUS = cfg.MigrationPenaltyUS
	_, noop := pol.(NoOp)

	// Rolling histories, one slice per entity, appended as epochs replay.
	bsHist := histories(nBS, nEpochs)
	segHist := histories(sh.Segments, nEpochs)
	wtHist := histories(sh.WTs, nEpochs)
	vdBHist := histories(sh.VDs, nEpochs)
	vdIHist := histories(sh.VDs, nEpochs)

	fc := func(kind SeriesKind, id int, hist []float64) float64 {
		f := pol.Forecast(kind, id, hist)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return hist[len(hist)-1]
		}
		if f < 0 {
			return 0
		}
		return f
	}

	segLoad := make([]float64, sh.Segments)
	for e := 0; e < nEpochs; e++ {
		// Measure epoch e under the live placement and binding.
		bsLoad := make([]float64, nBS)
		for seg := 0; seg < sh.Segments; seg++ {
			v := in.Obs.SegBytes(e, seg)
			segLoad[seg] = v
			segHist[seg] = append(segHist[seg], v)
			bsLoad[live.BSOf(cluster.SegmentID(seg))] += v
		}
		plan.BSLoad = append(plan.BSLoad, bsLoad)
		wtLoad := wtLoads(in, sh, binding, e)
		for b := 0; b < nBS; b++ {
			bsHist[b] = append(bsHist[b], bsLoad[b])
		}
		for w := 0; w < sh.WTs; w++ {
			wtHist[w] = append(wtHist[w], wtLoad[w])
		}
		for vd := 0; vd < sh.VDs; vd++ {
			vdBHist[vd] = append(vdBHist[vd], in.Obs.VDBps(e, vd))
			vdIHist[vd] = append(vdIHist[vd], in.Obs.VDIOPS(e, vd))
		}

		target := e + 1
		if noop || target >= nEpochs {
			continue
		}
		if fa, ok := pol.(FutureAware); ok {
			fa.SetFuture(futureOf(in, sh, live, binding, target))
		}
		down := func(bs int) bool { return in.Down != nil && in.Down(target, bs) }

		// Forecast per-BS load for the target epoch, and per-segment load
		// for segment choice: a policy that foresees a BS heating up must
		// also foresee WHICH segments carry the heat, or it would export
		// the segments that were hot last epoch while the real culprit
		// stays behind (stale attribution — exactly the churn that makes
		// acting early worse than acting late).
		fBS := make([]float64, nBS)
		for b := 0; b < nBS; b++ {
			fBS[b] = fc(SeriesBS, b, bsHist[b])
		}
		fSeg := make([]float64, sh.Segments)
		for seg := 0; seg < sh.Segments; seg++ {
			fSeg[seg] = fc(SeriesSeg, seg, segHist[seg])
		}

		anyMoves := false
		move := func(seg int, from, to cluster.StorageNodeID, kind DecisionKind, forecast float64) {
			live.Move(cluster.SegmentID(seg), to)
			plan.Timeline.markMoved(target, seg, sh.Segments)
			plan.Decisions = append(plan.Decisions, Decision{
				Epoch: target, Kind: kind,
				Seg: seg, From: int(from), To: int(to), Forecast: forecast,
			})
			plan.Applied = append(plan.Applied, balancer.Migration{
				Period: target, AtSec: target * sh.EpochSec,
				Seg: cluster.SegmentID(seg), From: from, To: to,
				Failover: kind == DecEvacuate,
			})
			v := fSeg[seg]
			fBS[from] -= v
			fBS[to] += v
			anyMoves = true
		}

		// 1. Evacuate BSes that are down entering the target epoch: their
		// IOs would otherwise eat the full crash penalty all epoch.
		for b := 0; b < nBS; b++ {
			if !down(b) {
				continue
			}
			for _, seg := range live.SegmentsOn(cluster.StorageNodeID(b)) {
				dst := coldestBS(fBS, down, b)
				if dst < 0 {
					break // every other BS is down too; nothing to do
				}
				move(int(seg), cluster.StorageNodeID(b), cluster.StorageNodeID(dst), DecEvacuate, fBS[b])
			}
		}

		// 2. Threshold migrations off forecast-hot exporters, mirroring
		// balancer.balancePass but driven by predicted load.
		mean := 0.0
		for _, v := range fBS {
			mean += v
		}
		mean /= float64(nBS)
		if mean > 0 {
			for b := 0; b < nBS; b++ {
				if down(b) || fBS[b] <= cfg.ExporterThreshold*mean {
					continue
				}
				exporterForecast := fBS[b]
				minLoad := math.Inf(1)
				for o := 0; o < nBS; o++ {
					if o != b && !down(o) && fBS[o] < minLoad {
						minLoad = fBS[o]
					}
				}
				budget := cfg.MigrateFraction * mean
				moved := 0.0
				for _, seg := range hotSegments(live, fSeg, cluster.StorageNodeID(b)) {
					if moved >= budget {
						break
					}
					v := fSeg[seg]
					if v <= 0 {
						break
					}
					// Movability: landing on the coldest BS must genuinely
					// improve on the exporter, or the hotspot just relocates.
					if minLoad+v > cfg.ImprovementMargin*exporterForecast {
						continue
					}
					dst := coldestBS(fBS, down, b)
					if dst < 0 {
						break
					}
					move(int(seg), cluster.StorageNodeID(b), cluster.StorageNodeID(dst), DecMigrate, exporterForecast)
					moved += v
				}
			}
		}
		if anyMoves {
			row := make([]cluster.StorageNodeID, sh.Segments)
			for seg := 0; seg < sh.Segments; seg++ {
				row[seg] = live.BSOf(cluster.SegmentID(seg))
			}
			plan.Timeline.setPlacement(target, row)
		}

		// 3. Throttle lending inside each VM: siblings with forecast
		// headroom lend a bounded slice of it to siblings forecast over cap.
		planLending(plan, in, sh, fc, vdBHist, vdIHist, target, cfg)

		// 4. QP rebinding: on nodes whose forecast WT load is lopsided,
		// move the hottest QP of the hottest WT to the coldest WT.
		binding = planRebinds(plan, in, sh, fc, wtHist, segQPOps(in, sh, e), binding, wtCount, target, cfg)
	}
	return plan, nil
}

// histories allocates n empty series with room for the full window.
func histories(n, epochs int) [][]float64 {
	h := make([][]float64, n)
	for i := range h {
		h[i] = make([]float64, 0, epochs)
	}
	return h
}

// wtCounts derives each node's worker-thread count from the shape's bases.
func wtCounts(sh ObsShape) ([]int, error) {
	counts := make([]int, len(sh.WTBase))
	for n := range sh.WTBase {
		end := sh.WTs
		if n+1 < len(sh.WTBase) {
			end = sh.WTBase[n+1]
		}
		counts[n] = end - sh.WTBase[n]
		if counts[n] <= 0 {
			return nil, fmt.Errorf("control: node %d has %d worker threads in shape", n, counts[n])
		}
	}
	return counts, nil
}

// wtLoads folds epoch e's per-QP ops through the live binding into global
// per-WT loads. This deliberately ignores the observation's own WT column:
// planning must reflect the binding the controller has already changed.
func wtLoads(in Input, sh ObsShape, binding []int8, e int) []float64 {
	load := make([]float64, sh.WTs)
	for qp := 0; qp < sh.QPs; qp++ {
		load[sh.WTBase[in.NodeOfQP[qp]]+int(binding[qp])] += in.Obs.QPOps(e, qp)
	}
	return load
}

// segQPOps returns epoch e's per-QP op counts (rebind tie-breaking input).
func segQPOps(in Input, sh ObsShape, e int) []float64 {
	ops := make([]float64, sh.QPs)
	for qp := 0; qp < sh.QPs; qp++ {
		ops[qp] = in.Obs.QPOps(e, qp)
	}
	return ops
}

// futureOf builds the oracle's truth lookup: the target epoch's real values
// under the live placement and binding, assuming no further actuation.
func futureOf(in Input, sh ObsShape, live *cluster.SegmentMap, binding []int8, target int) func(SeriesKind, int) float64 {
	nextBS := make([]float64, live.NumBS())
	for seg := 0; seg < sh.Segments; seg++ {
		nextBS[live.BSOf(cluster.SegmentID(seg))] += in.Obs.SegBytes(target, seg)
	}
	nextWT := wtLoads(in, sh, binding, target)
	return func(kind SeriesKind, id int) float64 {
		switch kind {
		case SeriesBS:
			return nextBS[id]
		case SeriesSeg:
			return in.Obs.SegBytes(target, id)
		case SeriesVDBps:
			return in.Obs.VDBps(target, id)
		case SeriesVDIOPS:
			return in.Obs.VDIOPS(target, id)
		case SeriesWT:
			return nextWT[id]
		}
		return 0
	}
}

// coldestBS returns the up BS with the least forecast load, excluding
// exclude; -1 if every candidate is down.
func coldestBS(fBS []float64, down func(int) bool, exclude int) int {
	best, bestLoad := -1, math.Inf(1)
	for b := range fBS {
		if b == exclude || down(b) {
			continue
		}
		if fBS[b] < bestLoad {
			best, bestLoad = b, fBS[b]
		}
	}
	return best
}

// hotSegments returns bs's segments ordered hottest-first (ties: lowest ID),
// using the last measured epoch's per-segment bytes.
func hotSegments(live *cluster.SegmentMap, segLoad []float64, bs cluster.StorageNodeID) []cluster.SegmentID {
	segs := live.SegmentsOn(bs)
	ordered := append([]cluster.SegmentID(nil), segs...)
	// Insertion sort keeps the tie-break (stable on ascending IDs) explicit
	// and avoids pulling in sort.Slice's reflection for tiny slices.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && segLoad[ordered[j]] > segLoad[ordered[j-1]]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	return ordered
}

// planLending emits per-VM lending grants for the target epoch.
func planLending(plan *Plan, in Input, sh ObsShape, fc func(SeriesKind, int, []float64) float64,
	vdBHist, vdIHist [][]float64, target int, cfg Config) {
	// Group VDs by VM, VM order ascending, VDs ascending within a group.
	maxVM := -1
	for _, vm := range in.VMOfVD {
		if vm > maxVM {
			maxVM = vm
		}
	}
	groups := make([][]int, maxVM+1)
	for vd, vm := range in.VMOfVD {
		groups[vm] = append(groups[vm], vd)
	}
	const eps = 1e-6
	for _, group := range groups {
		if len(group) < 2 {
			continue
		}
		var dT, dI map[int]float64
		for dim := 0; dim < 2; dim++ {
			cap_ := func(vd int) float64 {
				if dim == 0 {
					return in.Caps[vd].Tput
				}
				return in.Caps[vd].IOPS
			}
			forecast := func(vd int) float64 {
				if dim == 0 {
					return fc(SeriesVDBps, vd, vdBHist[vd])
				}
				return fc(SeriesVDIOPS, vd, vdIHist[vd])
			}
			deltas := lendWithin(group, cap_, forecast, cfg.LendRate)
			if dim == 0 {
				dT = deltas
			} else {
				dI = deltas
			}
		}
		for _, vd := range group {
			t, i := dT[vd], dI[vd]
			if math.Abs(t) < eps && math.Abs(i) < eps {
				continue
			}
			plan.Decisions = append(plan.Decisions, Decision{
				Epoch: target, Kind: DecLend, VD: vd,
				TputDelta: t, IOPSDelta: i,
				Forecast: fc(SeriesVDBps, vd, vdBHist[vd]),
			})
			plan.Timeline.addLend(target, vd, sh.VDs, t, i)
		}
	}
}

// lendWithin computes one dimension's grant deltas for a VM group: greedy,
// deterministic (ascending VD order on both sides), and exactly conserving —
// every borrowed unit is debited from a sibling's headroom.
func lendWithin(group []int, cap_, forecast func(int) float64, lendRate float64) map[int]float64 {
	deltas := make(map[int]float64)
	for _, borrower := range group {
		c := cap_(borrower)
		if c <= 0 {
			continue
		}
		need := forecast(borrower) - c
		if need <= 0 {
			continue
		}
		for _, lender := range group {
			if need <= 0 {
				break
			}
			if lender == borrower {
				continue
			}
			lc := cap_(lender)
			headroom := lendRate*(lc-forecast(lender)) + deltas[lender]
			if lc <= 0 || headroom <= 0 {
				continue
			}
			grant := math.Min(need, headroom)
			deltas[lender] -= grant
			deltas[borrower] += grant
			need -= grant
		}
	}
	return deltas
}

// planRebinds emits at most one QP rebind per node for the target epoch and
// returns the (possibly replaced) binding row.
func planRebinds(plan *Plan, in Input, sh ObsShape, fc func(SeriesKind, int, []float64) float64,
	wtHist [][]float64, qpOps []float64, binding []int8, wtCount []int, target int, cfg Config) []int8 {
	mutated := false
	for n := range sh.WTBase {
		c := wtCount[n]
		if c < 2 {
			continue
		}
		base := sh.WTBase[n]
		fW := make([]float64, c)
		sum := 0.0
		for w := 0; w < c; w++ {
			fW[w] = fc(SeriesWT, base+w, wtHist[base+w])
			sum += fW[w]
		}
		mean := sum / float64(c)
		if mean <= 0 {
			continue
		}
		hot, cold := 0, 0
		for w := 1; w < c; w++ {
			if fW[w] > fW[hot] {
				hot = w
			}
			if fW[w] < fW[cold] {
				cold = w
			}
		}
		if hot == cold || fW[hot]/mean <= cfg.RebindTrigger {
			continue
		}
		// Hottest QP currently bound to the hot WT on this node.
		bestQP, bestOps := -1, 0.0
		for qp := 0; qp < sh.QPs; qp++ {
			if in.NodeOfQP[qp] != n || int(binding[qp]) != hot {
				continue
			}
			if bestQP < 0 || qpOps[qp] > bestOps {
				bestQP, bestOps = qp, qpOps[qp]
			}
		}
		if bestQP < 0 || bestOps <= 0 {
			continue
		}
		if !mutated {
			binding = append([]int8(nil), binding...)
			mutated = true
		}
		binding[bestQP] = int8(cold)
		plan.Decisions = append(plan.Decisions, Decision{
			Epoch: target, Kind: DecRebind, QP: bestQP, WT: cold, Forecast: fW[hot],
		})
	}
	if mutated {
		plan.Timeline.setBinding(target, binding)
	}
	return binding
}
