// Package control is the online predict→act mitigation control plane the
// paper's §8 thesis calls for: a runtime controller that watches per-epoch
// traffic observations accumulated *during* a simulation, feeds rolling
// per-BS/per-VD/per-WT rate series into predict models, and drives the
// mitigation levers the earlier chapters evaluated offline — inter-BS
// segment migrations (§6), throttle lending overrides (§5, Appendix B), and
// QP rebinding hints (§4) — one epoch ahead of the traffic they mitigate.
//
// Determinism is the design constraint everything here bends around. The
// engine simulates each virtual disk whole, from a single sequential RNG
// stream, so a controller cannot interleave with generation without changing
// draws. Instead a controlled run is two passes over the same seed: an
// observe pass that fills an Observation (integer counters per epoch and
// entity — commutative to merge, so worker-count invariant), then a
// sequential control loop replaying the epochs in order (each policy sees
// only epochs <= e when deciding for e+1), and finally an actuated pass that
// applies the compiled Timeline through RNG-free lookups in the engine's
// emit path. Every decision lands in an epoch-stamped, fingerprintable log,
// and invariant.CheckControlActuation holds the log and the applied actions
// to a bijection. See DESIGN.md, "Mitigation control plane".
package control

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"ebslab/internal/trace"
)

// ObsShape fixes the dimensions of an Observation so per-shard instances are
// mergeable and the controller can interpret the flattened counters. Every
// field is a pure function of (fleet, run options), never of scheduling.
type ObsShape struct {
	// EpochSec is the control cadence: observations aggregate into
	// ceil(DurSec/EpochSec) epochs and the controller decides once per epoch.
	EpochSec int
	// DurSec is the observed window.
	DurSec int
	// Segments, VDs, QPs and WTs size the entity axes (WTs counts worker
	// threads fleet-wide, flattened via WTBase).
	Segments int
	VDs      int
	QPs      int
	WTs      int
	// WTBase[node] is the global index of that compute node's worker thread
	// 0; a batch row's global WT index is WTBase[Node] + WT.
	WTBase []int
	// Scale rescales thinned counters back to full-rate units (the run's
	// EventSampleEvery), so series compare against caps directly.
	Scale float64
}

// Epochs returns the number of whole-or-partial epochs in the window.
func (s ObsShape) Epochs() int {
	if s.EpochSec <= 0 || s.DurSec <= 0 {
		return 0
	}
	return (s.DurSec + s.EpochSec - 1) / s.EpochSec
}

// Validate rejects shapes that cannot index a batch row.
func (s ObsShape) Validate() error {
	for _, c := range []struct {
		name string
		v    int
	}{
		{"EpochSec", s.EpochSec}, {"DurSec", s.DurSec},
		{"Segments", s.Segments}, {"VDs", s.VDs}, {"QPs", s.QPs}, {"WTs", s.WTs},
	} {
		if c.v <= 0 {
			return fmt.Errorf("control: ObsShape.%s is %d, want > 0", c.name, c.v)
		}
	}
	if len(s.WTBase) == 0 {
		return fmt.Errorf("control: ObsShape.WTBase is empty")
	}
	if s.Scale <= 0 || math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) {
		return fmt.Errorf("control: ObsShape.Scale is %v, want finite > 0", s.Scale)
	}
	return nil
}

// Observation is the controller's telemetry: exact integer counters per
// (epoch, entity). Counters are commutative sums of per-IO contributions, so
// per-shard observations over disjoint virtual disks merge into the same
// state in any order — the property that keeps the decision log byte-stable
// across worker counts. Memory is epochs x entities, independent of the IO
// count.
type Observation struct {
	Shape ObsShape

	// Flattened [epoch*axis + id] counters.
	segR, segW []uint64 // bytes read/written per segment
	vdBytes    []uint64 // bytes per VD
	vdOps      []uint64 // IOs per VD
	qpOps      []uint64 // IOs per queue pair
	wtOps      []uint64 // IOs per worker thread, as attributed in the batch
}

// NewObservation allocates a zeroed observation of the shape.
func NewObservation(shape ObsShape) *Observation {
	e := shape.Epochs()
	return &Observation{
		Shape:   shape,
		segR:    make([]uint64, e*shape.Segments),
		segW:    make([]uint64, e*shape.Segments),
		vdBytes: make([]uint64, e*shape.VDs),
		vdOps:   make([]uint64, e*shape.VDs),
		qpOps:   make([]uint64, e*shape.QPs),
		wtOps:   make([]uint64, e*shape.WTs),
	}
}

// EpochOf maps a simulated second to its epoch, clamped into range (the
// generator can emit at the window's final instant).
func (o *Observation) EpochOf(sec int) int {
	ep := sec / o.Shape.EpochSec
	if max := o.Shape.Epochs() - 1; ep > max {
		ep = max
	}
	if ep < 0 {
		ep = 0
	}
	return ep
}

// ObserveBatch folds one columnar batch into the counters. The engine calls
// this on every shard flush, so it sees every generated IO (not just the
// trace-sampled ones).
func (o *Observation) ObserveBatch(b *trace.Batch) {
	sh := &o.Shape
	for i := 0; i < b.Len(); i++ {
		ep := o.EpochOf(int(b.TimeUS[i] / 1_000_000))
		size := uint64(b.Size[i])
		seg := ep*sh.Segments + int(b.Segment[i])
		if b.Op[i] == trace.OpRead {
			o.segR[seg] += size
		} else {
			o.segW[seg] += size
		}
		vd := ep*sh.VDs + int(b.VD[i])
		o.vdBytes[vd] += size
		o.vdOps[vd]++
		o.qpOps[ep*sh.QPs+int(b.QP[i])]++
		o.wtOps[ep*sh.WTs+sh.WTBase[b.Node[i]]+int(b.WT[i])]++
	}
}

// Merge adds other's counters into o. Both observations must share a shape;
// merging is commutative, which is what makes the merged state independent
// of which worker observed which disk.
func (o *Observation) Merge(other *Observation) error {
	if o.Shape.Epochs() != other.Shape.Epochs() ||
		o.Shape.Segments != other.Shape.Segments || o.Shape.VDs != other.Shape.VDs ||
		o.Shape.QPs != other.Shape.QPs || o.Shape.WTs != other.Shape.WTs {
		return fmt.Errorf("control: merging observations of different shapes")
	}
	for _, pair := range [][2][]uint64{
		{o.segR, other.segR}, {o.segW, other.segW},
		{o.vdBytes, other.vdBytes}, {o.vdOps, other.vdOps},
		{o.qpOps, other.qpOps}, {o.wtOps, other.wtOps},
	} {
		for i := range pair[0] {
			pair[0][i] += pair[1][i]
		}
	}
	return nil
}

// SegBytes returns segment seg's total (read+write) bytes in epoch ep,
// rescaled to full-rate units.
func (o *Observation) SegBytes(ep, seg int) float64 {
	i := ep*o.Shape.Segments + seg
	return float64(o.segR[i]+o.segW[i]) * o.Shape.Scale
}

// VDBps returns VD vd's mean offered throughput (bytes/s) in epoch ep.
func (o *Observation) VDBps(ep, vd int) float64 {
	return float64(o.vdBytes[ep*o.Shape.VDs+vd]) * o.Shape.Scale / float64(o.epochLen(ep))
}

// VDIOPS returns VD vd's mean offered IO rate (ops/s) in epoch ep.
func (o *Observation) VDIOPS(ep, vd int) float64 {
	return float64(o.vdOps[ep*o.Shape.VDs+vd]) * o.Shape.Scale / float64(o.epochLen(ep))
}

// QPOps returns queue pair qp's IO count in epoch ep (full-rate units).
func (o *Observation) QPOps(ep, qp int) float64 {
	return float64(o.qpOps[ep*o.Shape.QPs+qp]) * o.Shape.Scale
}

// WTOps returns worker thread wt's (global index) attributed IO count in
// epoch ep. Under an actuated run this reflects the rebinding the timeline
// applied, so it is the measured outcome, not the planning input.
func (o *Observation) WTOps(ep, wt int) float64 {
	return float64(o.wtOps[ep*o.Shape.WTs+wt]) * o.Shape.Scale
}

// epochLen returns epoch ep's length in seconds (the last epoch may be
// truncated by the window).
func (o *Observation) epochLen(ep int) int {
	n := o.Shape.EpochSec
	if last := o.Shape.DurSec - ep*o.Shape.EpochSec; last < n {
		n = last
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Fingerprint digests every counter in canonical order; two observations
// fingerprint identically iff they observed the same traffic.
func (o *Observation) Fingerprint() string {
	h := sha256.New()
	wU64(h, uint64(o.Shape.Epochs()))
	for _, xs := range [][]uint64{o.segR, o.segW, o.vdBytes, o.vdOps, o.qpOps, o.wtOps} {
		wU64(h, uint64(len(xs)))
		for _, x := range xs {
			wU64(h, x)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func wU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}
