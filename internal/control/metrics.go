package control

import (
	"ebslab/internal/stats"
)

// ImbalanceReport scores a per-epoch per-BS load series. MeanCoV is the
// headline imbalance metric the evaluation harness compares policies on:
// the mean over epochs of the normalized coefficient of variation of per-BS
// load — 0 for a perfectly balanced cluster, 1 for all load on one BS.
type ImbalanceReport struct {
	// PerEpoch[ep] is the normalized CoV of per-BS load in epoch ep.
	PerEpoch []float64
	// MeanCoV and MaxCoV aggregate PerEpoch.
	MeanCoV, MaxCoV float64
	// PeakShare is the largest single-BS share of any epoch's total load —
	// the hot-spot severity measure.
	PeakShare float64
}

// Imbalance scores bsLoad[ep][bs] (as produced in Plan.BSLoad). Epochs with
// zero total load contribute CoV 0.
func Imbalance(bsLoad [][]float64) ImbalanceReport {
	rep := ImbalanceReport{PerEpoch: make([]float64, len(bsLoad))}
	for ep, loads := range bsLoad {
		cov := stats.NormCoV(loads)
		if cov != cov { // NaN: degenerate epoch
			cov = 0
		}
		rep.PerEpoch[ep] = cov
		rep.MeanCoV += cov
		if cov > rep.MaxCoV {
			rep.MaxCoV = cov
		}
		total, max := 0.0, 0.0
		for _, v := range loads {
			total += v
			if v > max {
				max = v
			}
		}
		if total > 0 && max/total > rep.PeakShare {
			rep.PeakShare = max / total
		}
	}
	if len(bsLoad) > 0 {
		rep.MeanCoV /= float64(len(bsLoad))
	}
	return rep
}
