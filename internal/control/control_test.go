package control

import (
	"strings"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
)

// testShape is a deliberately tiny world: 4 segments, 2 VDs, 2 QPs, one
// node with 2 WTs, 3 epochs of 10s (the last truncated to 5s).
func testShape() ObsShape {
	return ObsShape{
		EpochSec: 10, DurSec: 25,
		Segments: 4, VDs: 2, QPs: 2, WTs: 2,
		WTBase: []int{0}, Scale: 1,
	}
}

func TestObsShapeEpochs(t *testing.T) {
	sh := testShape()
	if got := sh.Epochs(); got != 3 {
		t.Fatalf("Epochs() = %d, want 3 (ceil 25/10)", got)
	}
	bad := sh
	bad.EpochSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("Validate accepted EpochSec 0")
	}
}

// observe appends one synthetic IO row to a batch.
func observe(b *trace.Batch, sec int, op trace.Op, size int32, vd, qp, seg int, wt int8) {
	i := b.Next()
	b.TimeUS[i] = int64(sec) * 1_000_000
	b.Op[i] = op
	b.Size[i] = size
	b.VD[i] = cluster.VDID(vd)
	b.QP[i] = cluster.QPID(qp)
	b.WT[i] = wt
	b.Node[i] = 0
	b.Segment[i] = cluster.SegmentID(seg)
}

func TestObservationCountsAndMerge(t *testing.T) {
	sh := testShape()
	a := NewObservation(sh)
	b := NewObservation(sh)

	batch := trace.NewBatch(8)
	observe(batch, 3, trace.OpRead, 100, 0, 0, 1, 0)
	observe(batch, 12, trace.OpWrite, 50, 1, 1, 2, 1)
	a.ObserveBatch(batch)

	batch2 := trace.NewBatch(8)
	observe(batch2, 24, trace.OpRead, 200, 0, 0, 1, 0)
	b.ObserveBatch(batch2)

	if got := a.SegBytes(0, 1); got != 100 {
		t.Fatalf("SegBytes(0,1) = %v, want 100", got)
	}
	if got := a.SegBytes(1, 2); got != 50 {
		t.Fatalf("SegBytes(1,2) = %v, want 50", got)
	}
	// Epoch 2 is truncated to 5s, so 200 bytes is 40 B/s.
	if got := b.VDBps(2, 0); got != 40 {
		t.Fatalf("VDBps(2,0) = %v, want 40 (5s epoch)", got)
	}
	if got := a.VDIOPS(1, 1); got != 0.1 {
		t.Fatalf("VDIOPS(1,1) = %v, want 0.1", got)
	}
	if got := a.QPOps(0, 0); got != 1 {
		t.Fatalf("QPOps(0,0) = %v, want 1", got)
	}
	if got := a.WTOps(1, 1); got != 1 {
		t.Fatalf("WTOps(1,1) = %v, want 1", got)
	}

	// Merge is commutative: a+b and b+a fingerprint identically.
	ab := NewObservation(sh)
	if err := ab.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := NewObservation(sh)
	if err := ba.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	if ab.Fingerprint() != ba.Fingerprint() {
		t.Fatalf("merge is not commutative: %s vs %s", ab.Fingerprint(), ba.Fingerprint())
	}
	if a.Fingerprint() == ab.Fingerprint() {
		t.Fatalf("merging new counters did not change the fingerprint")
	}

	other := testShape()
	other.Segments = 5
	if err := ab.Merge(NewObservation(other)); err == nil {
		t.Fatalf("Merge accepted a shape mismatch")
	}
}

func TestTimelineSemantics(t *testing.T) {
	tl := NewTimeline(10, 25)
	if !tl.Empty() {
		t.Fatalf("fresh timeline is not empty")
	}
	if got := tl.EpochOf(-3); got != 0 {
		t.Fatalf("EpochOf(-3) = %d, want 0", got)
	}
	if got := tl.EpochOf(24); got != 2 {
		t.Fatalf("EpochOf(24) = %d, want 2", got)
	}
	if got := tl.EpochOf(999); got != 2 {
		t.Fatalf("EpochOf(999) = %d (clamp), want 2", got)
	}

	row := []cluster.StorageNodeID{1, 0, 0, 0}
	tl.setPlacement(1, row)
	if tl.BSRow(0) != nil {
		t.Fatalf("epoch 0 has a placement row before any move")
	}
	// Forward fill: the row set at epoch 1 covers epoch 2 as well.
	for ep := 1; ep <= 2; ep++ {
		got := tl.BSRow(ep)
		if got == nil || got[0] != 1 {
			t.Fatalf("epoch %d placement row = %v, want seg0 on BS 1", ep, got)
		}
	}
	tl.markMoved(1, 0, 4)
	if !tl.MovedAt(1, 0) || tl.MovedAt(2, 0) || tl.MovedAt(1, 1) {
		t.Fatalf("moved bitset wrong: %v %v %v", tl.MovedAt(1, 0), tl.MovedAt(2, 0), tl.MovedAt(1, 1))
	}
	tl.addLend(2, 0, 2, 100, -5)
	if r := tl.LendTput(1); r != nil {
		t.Fatalf("epoch 1 lend row = %v, want nil (lends are per-epoch, not filled forward)", r)
	}
	if r := tl.LendTput(2); r == nil || r[0] != 100 {
		t.Fatalf("epoch 2 tput lend row = %v, want [100 0]", r)
	}
	if !tl.VDLends(0) || tl.VDLends(1) {
		t.Fatalf("VDLends wrong: %v %v", tl.VDLends(0), tl.VDLends(1))
	}
	if tl.Empty() {
		t.Fatalf("timeline with actions reports Empty")
	}
	if err := tl.Validate(4, 2, 2); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := tl.Validate(5, 2, 2); err == nil {
		t.Fatalf("Validate accepted a wrong segment count")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"noop", "reactive", "predictive", "predictive-holt", "predictive-arima", "predictive-gbt", "oracle"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("ByName(%s): empty policy name", name)
		}
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("ByName(nope) = %v, want unknown-policy error", err)
	}
}

// synthInput builds a 2-BS world where segment 0 is persistently hot on BS 0
// and VD 0 runs far over its throughput cap while its VM sibling VD 1 idles:
// the controller must migrate the hot segment and lend cap within the VM.
func synthInput(t *testing.T) Input {
	t.Helper()
	sh := ObsShape{
		EpochSec: 10, DurSec: 40,
		Segments: 4, VDs: 2, QPs: 2, WTs: 2,
		WTBase: []int{0}, Scale: 1,
	}
	obs := NewObservation(sh)
	batch := trace.NewBatch(64)
	for sec := 0; sec < 40; sec += 2 {
		// Segments 0 and 1 (VD 0, QP 0, WT 0) make BS 0 the hot spot,
		// 4 MB each every 2s. Two warm segments, not one: exporting one
		// of them genuinely improves the exporter, so the movability
		// margin allows the migration.
		observe(batch, sec, trace.OpWrite, 4<<20, 0, 0, 0, 0)
		observe(batch, sec, trace.OpWrite, 4<<20, 0, 0, 1, 0)
		// Segment 2 (VD 1, QP 1, WT 1) trickles.
		observe(batch, sec, trace.OpRead, 4096, 1, 1, 2, 1)
	}
	obs.ObserveBatch(batch)

	placement := cluster.NewSegmentMap(4, 2)
	for seg := 0; seg < 2; seg++ {
		placement.Assign(cluster.SegmentID(seg), 0)
	}
	for seg := 2; seg < 4; seg++ {
		placement.Assign(cluster.SegmentID(seg), 1)
	}
	return Input{
		Obs:       obs,
		Placement: placement,
		Binding:   []int8{0, 1},
		Caps: []throttle.Caps{
			{Tput: 1 << 20, IOPS: 1000}, // VD 0: 1 MB/s cap, demand ~4 MB/s
			{Tput: 64 << 20, IOPS: 1000},
		},
		VMOfVD:   []int{0, 0}, // same VM: lending is possible
		NodeOfQP: []int{0, 0},
	}
}

func TestBuildPlanMitigatesAndConserves(t *testing.T) {
	in := synthInput(t)
	plan, err := BuildPlan(Reactive{}, Config{EpochSec: 10}, in)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	var migrates, lends int
	lendSum := map[int]float64{}
	for _, d := range plan.Decisions {
		switch d.Kind {
		case DecMigrate:
			migrates++
			if d.From != 0 {
				t.Errorf("migration exports from BS %d, want 0 (the hot BS)", d.From)
			}
		case DecLend:
			lends++
			lendSum[d.Epoch] += d.TputDelta
		}
		if d.Epoch < 1 || d.Epoch >= in.Obs.Shape.Epochs() {
			t.Errorf("decision targets epoch %d outside (0, %d)", d.Epoch, in.Obs.Shape.Epochs())
		}
	}
	if migrates == 0 {
		t.Errorf("no migration decided for a persistently hot segment\n%+v", plan.Decisions)
	}
	if lends == 0 {
		t.Errorf("no lending decided for a VD at 4x its cap with an idle sibling\n%+v", plan.Decisions)
	}
	for ep, sum := range lendSum {
		if sum > 1e-6 {
			t.Errorf("epoch %d lending mints %v B/s", ep, sum)
		}
	}
	if len(plan.Applied) != migrates {
		t.Errorf("%d applied entries for %d migrate decisions", len(plan.Applied), migrates)
	}
	if len(plan.BSLoad) != in.Obs.Shape.Epochs() {
		t.Errorf("BSLoad has %d epochs, want %d", len(plan.BSLoad), in.Obs.Shape.Epochs())
	}

	// Determinism: the same input replans to the same decision log.
	again, err := BuildPlan(Reactive{}, Config{EpochSec: 10}, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.LogFingerprint() != again.LogFingerprint() {
		t.Fatalf("replanning the same input changed the decision log")
	}

	// The no-op policy decides nothing and compiles an empty timeline.
	noop, err := BuildPlan(NoOp{}, Config{EpochSec: 10}, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(noop.Decisions) != 0 || !noop.Timeline.Empty() {
		t.Fatalf("noop produced %d decisions, empty=%v", len(noop.Decisions), noop.Timeline.Empty())
	}
}

func TestImbalance(t *testing.T) {
	rep := Imbalance([][]float64{
		{1, 1, 1, 1}, // perfectly balanced epoch
		{4, 0, 0, 0}, // maximally skewed epoch
	})
	if rep.PerEpoch[0] != 0 {
		t.Fatalf("balanced epoch CoV = %v, want 0", rep.PerEpoch[0])
	}
	if rep.PerEpoch[1] <= rep.PerEpoch[0] || rep.MaxCoV != rep.PerEpoch[1] {
		t.Fatalf("skewed epoch CoV %v, max %v", rep.PerEpoch[1], rep.MaxCoV)
	}
	if rep.PeakShare != 1 {
		t.Fatalf("PeakShare = %v, want 1", rep.PeakShare)
	}
	if want := (rep.PerEpoch[0] + rep.PerEpoch[1]) / 2; rep.MeanCoV != want {
		t.Fatalf("MeanCoV = %v, want %v", rep.MeanCoV, want)
	}
}
