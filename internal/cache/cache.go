// Package cache implements the caching study of §7: page-granular FIFO and
// LRU caches, the FrozenHot-style "frozen cache" that pins the hottest LBA
// range without eviction, the hottest-block analyzer behind Figure 6, and a
// trace-driven hit-ratio simulator matching the Figure 7(a) protocol (4 KiB
// pages, cache sized to the block under study).
package cache

import (
	"container/list"
	"fmt"
)

// PageSize is the cache page granularity (4 KiB, §7.3.1).
const PageSize int64 = 4 << 10

// Access is one block IO as the cache sees it.
type Access struct {
	TimeUS int64
	Offset int64
	Size   int32
	Write  bool
}

// Cache is a page-granular cache over one VD's logical address space.
type Cache interface {
	// Name identifies the policy.
	Name() string
	// Touch accesses one page (by page index) and reports whether it hit.
	// Policies that admit on miss insert the page.
	Touch(page int64, write bool) bool
	// Len is the number of resident pages.
	Len() int
	// Capacity is the maximum number of resident pages.
	Capacity() int
}

// FIFO evicts in insertion order regardless of reuse.
type FIFO struct {
	cap   int
	queue []int64
	head  int
	set   map[int64]struct{}
}

// NewFIFO creates a FIFO cache holding capPages pages.
func NewFIFO(capPages int) *FIFO {
	if capPages <= 0 {
		panic("cache: capacity must be positive")
	}
	return &FIFO{cap: capPages, set: make(map[int64]struct{}, capPages)}
}

// Name implements Cache.
func (c *FIFO) Name() string { return "fifo" }

// Touch implements Cache.
func (c *FIFO) Touch(page int64, _ bool) bool {
	if _, ok := c.set[page]; ok {
		return true
	}
	if len(c.set) >= c.cap {
		victim := c.queue[c.head]
		c.head++
		delete(c.set, victim)
	}
	c.set[page] = struct{}{}
	c.queue = append(c.queue, page)
	// Compact the drained prefix occasionally to bound memory.
	if c.head > c.cap && c.head*2 > len(c.queue) {
		c.queue = append(c.queue[:0], c.queue[c.head:]...)
		c.head = 0
	}
	return false
}

// Len implements Cache.
func (c *FIFO) Len() int { return len(c.set) }

// Capacity implements Cache.
func (c *FIFO) Capacity() int { return c.cap }

// LRU evicts the least recently used page.
type LRU struct {
	cap int
	ll  *list.List // front = most recent; values are page indices
	pos map[int64]*list.Element
}

// NewLRU creates an LRU cache holding capPages pages.
func NewLRU(capPages int) *LRU {
	if capPages <= 0 {
		panic("cache: capacity must be positive")
	}
	return &LRU{cap: capPages, ll: list.New(), pos: make(map[int64]*list.Element, capPages)}
}

// Name implements Cache.
func (c *LRU) Name() string { return "lru" }

// Touch implements Cache.
func (c *LRU) Touch(page int64, _ bool) bool {
	if el, ok := c.pos[page]; ok {
		c.ll.MoveToFront(el)
		return true
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.pos, back.Value.(int64))
	}
	c.pos[page] = c.ll.PushFront(page)
	return false
}

// Len implements Cache.
func (c *LRU) Len() int { return c.ll.Len() }

// Capacity implements Cache.
func (c *LRU) Capacity() int { return c.cap }

// Frozen is the FrozenHot-style cache (§7.3.1): a fixed page range pinned at
// construction with no admission and no eviction, which eliminates cache
// management overhead entirely. A page hits iff it lies in the frozen range.
type Frozen struct {
	startPage, endPage int64 // [startPage, endPage)
}

// NewFrozen pins the byte range [offset, offset+length) of the address
// space; both should be page aligned (misalignment is tolerated by rounding
// outward).
func NewFrozen(offset, length int64) *Frozen {
	if length <= 0 {
		panic("cache: frozen range must be non-empty")
	}
	start := offset / PageSize
	end := (offset + length + PageSize - 1) / PageSize
	return &Frozen{startPage: start, endPage: end}
}

// Name implements Cache.
func (c *Frozen) Name() string { return "frozen" }

// Touch implements Cache.
func (c *Frozen) Touch(page int64, _ bool) bool {
	return page >= c.startPage && page < c.endPage
}

// Len implements Cache.
func (c *Frozen) Len() int { return int(c.endPage - c.startPage) }

// Capacity implements Cache.
func (c *Frozen) Capacity() int { return c.Len() }

// SimResult reports a hit-ratio simulation.
type SimResult struct {
	Policy string
	// PageHits / PageTotal count page touches (an IO spanning n pages
	// contributes n touches).
	PageHits, PageTotal int64
}

// HitRatio returns PageHits/PageTotal, or NaN with no traffic.
func (r SimResult) HitRatio() float64 {
	if r.PageTotal == 0 {
		return nan()
	}
	return float64(r.PageHits) / float64(r.PageTotal)
}

// Simulate replays accesses through the cache, touching every page an IO
// covers.
func Simulate(c Cache, accesses []Access) SimResult {
	res := SimResult{Policy: c.Name()}
	for _, a := range accesses {
		first := a.Offset / PageSize
		last := (a.Offset + int64(a.Size) - 1) / PageSize
		for p := first; p <= last; p++ {
			res.PageTotal++
			if c.Touch(p, a.Write) {
				res.PageHits++
			}
		}
	}
	return res
}

func nan() float64 {
	var z float64
	return z / z
}

// String renders the result for logs.
func (r SimResult) String() string {
	return fmt.Sprintf("%s: %d/%d pages (%.1f%%)", r.Policy, r.PageHits, r.PageTotal, 100*r.HitRatio())
}
