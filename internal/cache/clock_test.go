package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(2)
	if c.Touch(1, false) {
		t.Fatal("cold hit")
	}
	if !c.Touch(1, false) {
		t.Fatal("resident miss")
	}
	c.Touch(2, false)
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("Len/Cap = %d/%d", c.Len(), c.Capacity())
	}
	if c.Name() != "clock" {
		t.Fatal("name")
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(2)
	c.Touch(1, false)
	c.Touch(2, false)
	c.Touch(1, false) // reference 1: it gets a second chance
	c.Touch(3, false) // hand clears 1's bit, evicts 2
	if !c.Touch(1, false) {
		t.Fatal("referenced page was evicted despite second chance")
	}
	if c.Touch(2, false) {
		t.Fatal("unreferenced page survived")
	}
}

func TestClockApproximatesLRUOnLocalWorkload(t *testing.T) {
	// On a workload with reuse, CLOCK's hit ratio should land between FIFO
	// and LRU (inclusive), and well above zero.
	rng := rand.New(rand.NewSource(9))
	var accesses []Access
	for i := 0; i < 20000; i++ {
		var page int64
		if rng.Float64() < 0.8 {
			page = rng.Int63n(64) // hot set fits in cache
		} else {
			page = 64 + rng.Int63n(10000)
		}
		accesses = append(accesses, Access{Offset: page * PageSize, Size: int32(PageSize)})
	}
	fifo := Simulate(NewFIFO(128), accesses).HitRatio()
	clock := Simulate(NewClock(128), accesses).HitRatio()
	lru := Simulate(NewLRU(128), accesses).HitRatio()
	if !(clock >= fifo-0.02) {
		t.Fatalf("CLOCK %v well below FIFO %v", clock, fifo)
	}
	if !(clock <= lru+0.02) {
		t.Fatalf("CLOCK %v well above LRU %v", clock, lru)
	}
	if clock < 0.5 {
		t.Fatalf("CLOCK hit ratio %v too low for an in-cache hot set", clock)
	}
}

func TestClockNeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capPages := 1 + rng.Intn(16)
		c := NewClock(capPages)
		for i := 0; i < 400; i++ {
			c.Touch(rng.Int63n(48), false)
			if c.Len() > capPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClockPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) should panic")
		}
	}()
	NewClock(0)
}
