package cache

import (
	"math"

	"ebslab/internal/stats"
)

// BlockReport summarizes the hottest fixed-size block of one VD (Figure 6).
type BlockReport struct {
	BlockSize int64
	// Hottest is the index of the most-accessed block.
	Hottest int64
	// AccessRate is the fraction of IOs landing in the hottest block
	// (Fig 6a).
	AccessRate float64
	// BlockShare is blockSize / capacity — the fraction of the LBA the
	// hottest block occupies (Fig 6b).
	BlockShare float64
	// WrRatio is the normalized write-to-read ratio of IOs to the hottest
	// block (Fig 6c).
	WrRatio float64
	// Accesses is the total IO count analyzed.
	Accesses int
}

// AnalyzeBlocks divides a VD's LBA space into fixed-size blocks and finds
// the hottest one. Each IO is attributed to the block containing its start
// offset (IOs are far smaller than the study's 64 MiB+ blocks).
func AnalyzeBlocks(accesses []Access, capacity, blockSize int64) BlockReport {
	rep := BlockReport{BlockSize: blockSize, Hottest: -1}
	if capacity <= 0 || blockSize <= 0 || len(accesses) == 0 {
		rep.AccessRate = math.NaN()
		rep.WrRatio = math.NaN()
		rep.BlockShare = math.NaN()
		return rep
	}
	nBlocks := (capacity + blockSize - 1) / blockSize
	counts := make([]int, nBlocks)
	writes := make([]float64, nBlocks)
	reads := make([]float64, nBlocks)
	for _, a := range accesses {
		b := a.Offset / blockSize
		if b < 0 || b >= nBlocks {
			continue
		}
		counts[b]++
		if a.Write {
			writes[b]++
		} else {
			reads[b]++
		}
	}
	hot, hotCount := int64(-1), 0
	for b, c := range counts {
		if c > hotCount {
			hot, hotCount = int64(b), c
		}
	}
	rep.Accesses = len(accesses)
	rep.Hottest = hot
	if hot < 0 {
		rep.AccessRate = math.NaN()
		rep.WrRatio = math.NaN()
	} else {
		rep.AccessRate = float64(hotCount) / float64(len(accesses))
		rep.WrRatio = stats.WrRatio(writes[hot], reads[hot])
	}
	share := float64(blockSize) / float64(capacity)
	if share > 1 {
		share = 1
	}
	rep.BlockShare = share
	return rep
}

// HotRate implements Fig 6(d)'s temporal-continuity metric: given the
// hottest block identified over the whole window with overall access rate
// p, recompute the block's access rate in short windows and return the
// fraction of (non-idle) windows where it meets or exceeds p.
func HotRate(accesses []Access, blockSize int64, hottest int64, overallRate float64, windowUS int64) float64 {
	if len(accesses) == 0 || hottest < 0 || windowUS <= 0 || math.IsNaN(overallRate) {
		return math.NaN()
	}
	type agg struct{ hot, total int }
	windows := make(map[int64]*agg)
	for _, a := range accesses {
		w := a.TimeUS / windowUS
		g := windows[w]
		if g == nil {
			g = &agg{}
			windows[w] = g
		}
		g.total++
		if a.Offset/blockSize == hottest {
			g.hot++
		}
	}
	var meets, counted int
	for _, g := range windows {
		if g.total == 0 {
			continue
		}
		counted++
		if float64(g.hot)/float64(g.total) >= overallRate {
			meets++
		}
	}
	if counted == 0 {
		return math.NaN()
	}
	return float64(meets) / float64(counted)
}
