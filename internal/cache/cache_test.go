package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOBasics(t *testing.T) {
	c := NewFIFO(2)
	if c.Touch(1, false) {
		t.Fatal("cold cache hit")
	}
	if !c.Touch(1, false) {
		t.Fatal("resident page missed")
	}
	c.Touch(2, false)
	c.Touch(3, false) // evicts 1 (FIFO order), not 2
	if c.Touch(1, false) {
		t.Fatal("page 1 should have been evicted")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("Len/Cap = %d/%d", c.Len(), c.Capacity())
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(2)
	c.Touch(1, false)
	c.Touch(2, false)
	c.Touch(1, false) // re-touch does NOT move 1 to back of queue
	c.Touch(3, false) // evicts 1
	if c.Touch(1, false) {
		t.Fatal("FIFO should evict in insertion order despite reuse")
	}
}

func TestLRURespectsRecency(t *testing.T) {
	c := NewLRU(2)
	c.Touch(1, false)
	c.Touch(2, false)
	c.Touch(1, false) // 1 is now most recent
	c.Touch(3, false) // evicts 2
	if !c.Touch(1, false) {
		t.Fatal("LRU evicted the recently used page")
	}
	if c.Touch(2, false) {
		t.Fatal("LRU kept the stale page")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestFrozenRange(t *testing.T) {
	// Pin [64 MiB, 128 MiB).
	c := NewFrozen(64<<20, 64<<20)
	inside := (64 << 20) / PageSize
	if !c.Touch(inside, true) {
		t.Fatal("page inside frozen range missed")
	}
	if c.Touch(inside-1, false) {
		t.Fatal("page below frozen range hit")
	}
	if c.Touch(c.endPage, false) {
		t.Fatal("page past frozen range hit")
	}
	if c.Len() != int((64<<20)/PageSize) {
		t.Fatalf("frozen Len = %d", c.Len())
	}
	// Frozen never admits: repeated misses stay misses.
	if c.Touch(0, true) || c.Touch(0, true) {
		t.Fatal("frozen cache admitted a page")
	}
}

func TestCacheConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"fifo":   func() { NewFIFO(0) },
		"lru":    func() { NewLRU(-1) },
		"frozen": func() { NewFrozen(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor accepted bad capacity", name)
				}
			}()
			fn()
		}()
	}
}

func TestSimulateCountsPages(t *testing.T) {
	c := NewLRU(1024)
	accesses := []Access{
		{Offset: 0, Size: int32(2 * PageSize)}, // pages 0,1: misses
		{Offset: 0, Size: int32(PageSize)},     // page 0: hit
	}
	res := Simulate(c, accesses)
	if res.PageTotal != 3 || res.PageHits != 1 {
		t.Fatalf("sim = %+v", res)
	}
	if math.Abs(res.HitRatio()-1.0/3.0) > 1e-12 {
		t.Fatalf("hit ratio = %v", res.HitRatio())
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
	var empty SimResult
	if !math.IsNaN(empty.HitRatio()) {
		t.Fatal("empty sim hit ratio should be NaN")
	}
}

func TestSequentialWriteMakesFIFOEqualLRU(t *testing.T) {
	// §7.3.1: the hottest blocks do mostly sequential writes, which makes
	// FIFO and LRU behave identically — verify on a cyclic sequential
	// stream larger than the cache.
	mk := func() []Access {
		var out []Access
		for rep := 0; rep < 4; rep++ {
			for off := int64(0); off < 512*PageSize; off += PageSize {
				out = append(out, Access{Offset: off, Size: int32(PageSize), Write: true})
			}
		}
		return out
	}
	f := Simulate(NewFIFO(128), mk())
	l := Simulate(NewLRU(128), mk())
	if f.HitRatio() != l.HitRatio() {
		t.Fatalf("FIFO %v != LRU %v on sequential writes", f.HitRatio(), l.HitRatio())
	}
}

func TestFrozenWinsWithLargeCacheOnHotspot(t *testing.T) {
	// Hotspot traffic inside a 64 MiB range plus cold scans: a frozen cache
	// covering the hotspot hits on all hot IOs and never thrashes.
	rng := rand.New(rand.NewSource(3))
	var accesses []Access
	hotStart := int64(128 << 20)
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.7 {
			accesses = append(accesses, Access{
				Offset: hotStart + rng.Int63n(64<<20-int64(PageSize))/PageSize*PageSize,
				Size:   int32(PageSize), Write: true,
			})
		} else {
			accesses = append(accesses, Access{
				Offset: rng.Int63n(8<<30-int64(PageSize)) / PageSize * PageSize,
				Size:   int32(PageSize),
			})
		}
	}
	fc := Simulate(NewFrozen(hotStart, 64<<20), accesses)
	if fc.HitRatio() < 0.6 {
		t.Fatalf("frozen hit ratio %v, want >= hot fraction ~0.7", fc.HitRatio())
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	// Long-running FIFO must not grow its queue unboundedly.
	c := NewFIFO(4)
	for i := int64(0); i < 100000; i++ {
		c.Touch(i, false)
	}
	if len(c.queue)-c.head > 16 {
		t.Fatalf("queue not compacted: len=%d head=%d", len(c.queue), c.head)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUNeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capPages := 1 + rng.Intn(32)
		c := NewLRU(capPages)
		for i := 0; i < 500; i++ {
			c.Touch(rng.Int63n(64), rng.Intn(2) == 0)
			if c.Len() > capPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFONeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capPages := 1 + rng.Intn(32)
		c := NewFIFO(capPages)
		for i := 0; i < 500; i++ {
			c.Touch(rng.Int63n(64), false)
			if c.Len() > capPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeBlocks(t *testing.T) {
	blockSize := int64(64 << 20)
	capacity := int64(1 << 30) // 16 blocks
	var accesses []Access
	// 6 writes and 2 reads to block 3; 2 reads to block 7.
	for i := 0; i < 6; i++ {
		accesses = append(accesses, Access{Offset: 3*blockSize + int64(i)*PageSize, Write: true})
	}
	accesses = append(accesses,
		Access{Offset: 3 * blockSize}, Access{Offset: 3*blockSize + PageSize},
		Access{Offset: 7 * blockSize}, Access{Offset: 7*blockSize + PageSize},
	)
	rep := AnalyzeBlocks(accesses, capacity, blockSize)
	if rep.Hottest != 3 {
		t.Fatalf("hottest = %d, want 3", rep.Hottest)
	}
	if math.Abs(rep.AccessRate-0.8) > 1e-12 {
		t.Fatalf("access rate = %v, want 0.8", rep.AccessRate)
	}
	if math.Abs(rep.WrRatio-0.5) > 1e-12 {
		t.Fatalf("wr_ratio = %v, want (6-2)/(6+2)", rep.WrRatio)
	}
	if math.Abs(rep.BlockShare-1.0/16.0) > 1e-12 {
		t.Fatalf("block share = %v", rep.BlockShare)
	}
}

func TestAnalyzeBlocksEdgeCases(t *testing.T) {
	rep := AnalyzeBlocks(nil, 1<<30, 64<<20)
	if !math.IsNaN(rep.AccessRate) || rep.Hottest != -1 {
		t.Fatalf("empty analysis = %+v", rep)
	}
	// Block bigger than the disk: share clamps to 1.
	rep = AnalyzeBlocks([]Access{{Offset: 0}}, 32<<20, 64<<20)
	if rep.BlockShare != 1 {
		t.Fatalf("share = %v, want 1", rep.BlockShare)
	}
}

func TestHotRate(t *testing.T) {
	blockSize := int64(64 << 20)
	// Two windows: in window 0 the hot block gets 100%, in window 1 it gets
	// 0% — with overall rate 0.5, exactly half the windows meet it.
	accesses := []Access{
		{TimeUS: 0, Offset: 0},
		{TimeUS: 1, Offset: PageSize},
		{TimeUS: 1_000_001, Offset: blockSize},
		{TimeUS: 1_000_002, Offset: blockSize + PageSize},
	}
	got := HotRate(accesses, blockSize, 0, 0.5, 1_000_000)
	if got != 0.5 {
		t.Fatalf("hot rate = %v, want 0.5", got)
	}
	if !math.IsNaN(HotRate(nil, blockSize, 0, 0.5, 1e6)) {
		t.Fatal("empty hot rate should be NaN")
	}
	if !math.IsNaN(HotRate(accesses, blockSize, -1, 0.5, 1e6)) {
		t.Fatal("missing hottest block should be NaN")
	}
}
