package cache

// Clock is the classic second-chance approximation of LRU: pages sit on a
// circular buffer with a reference bit; the hand sweeps, clearing bits and
// evicting the first unreferenced page. It serves as an extension baseline
// between FIFO (no recency) and LRU (exact recency) in the §7 cache study.
type Clock struct {
	cap  int
	hand int
	ring []clockEntry
	pos  map[int64]int // page -> ring index
}

type clockEntry struct {
	page int64
	ref  bool
	used bool
}

// NewClock creates a CLOCK cache holding capPages pages.
func NewClock(capPages int) *Clock {
	if capPages <= 0 {
		panic("cache: capacity must be positive")
	}
	return &Clock{
		cap:  capPages,
		ring: make([]clockEntry, capPages),
		pos:  make(map[int64]int, capPages),
	}
}

// Name implements Cache.
func (c *Clock) Name() string { return "clock" }

// Touch implements Cache.
func (c *Clock) Touch(page int64, _ bool) bool {
	if i, ok := c.pos[page]; ok {
		c.ring[i].ref = true
		return true
	}
	// Find a victim slot: first unused, else sweep.
	for {
		e := &c.ring[c.hand]
		if !e.used {
			e.page, e.ref, e.used = page, false, true
			c.pos[page] = c.hand
			c.hand = (c.hand + 1) % c.cap
			return false
		}
		if e.ref {
			e.ref = false
			c.hand = (c.hand + 1) % c.cap
			continue
		}
		delete(c.pos, e.page)
		e.page, e.ref = page, false
		c.pos[page] = c.hand
		c.hand = (c.hand + 1) % c.cap
		return false
	}
}

// Len implements Cache.
func (c *Clock) Len() int { return len(c.pos) }

// Capacity implements Cache.
func (c *Clock) Capacity() int { return c.cap }
