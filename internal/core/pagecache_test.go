package core

import (
	"math"
	"strings"
	"testing"
)

func TestStudyPageCacheShiftsDominance(t *testing.T) {
	s := study(t)
	r := s.StudyPageCache(PageCacheOptions{MaxVDs: 12, MaxEventsPerVD: 8000, BlockMiB: 256})
	if r.VDs == 0 {
		t.Skip("no study VDs")
	}
	if math.IsNaN(r.AppWrRatio) || math.IsNaN(r.DeviceWrRatio) {
		t.Fatalf("NaN ratios: %+v", r)
	}
	// The page cache absorbs hot re-reads, so the EBS-visible hottest block
	// is more write-dominant than the application-level one (§7.2).
	if !(r.DeviceWrRatio > r.AppWrRatio) {
		t.Errorf("device wr_ratio %v not above app %v", r.DeviceWrRatio, r.AppWrRatio)
	}
	if !(r.AbsorbedReadFrac > 0) {
		t.Errorf("cache absorbed nothing: %v", r.AbsorbedReadFrac)
	}
	if !strings.Contains(r.Render(), "Page-cache study") {
		t.Fatal("render missing title")
	}
}
