package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ebslab/internal/cluster"
	"ebslab/internal/report"
	"ebslab/internal/sketch"
	"ebslab/internal/stats"
)

// ApproxOptions configures the streaming variant of the skewness analyses.
// The zero value of every field selects the documented default.
type ApproxOptions struct {
	// TopK is the SpaceSaving capacity of the hot-VD ranking (default 128).
	// The cumulative-contribution estimates read the top ceil(frac*n)
	// counters, so their relative error is bounded by ceil(frac*n)/TopK.
	TopK int
	// Alpha is the relative accuracy of the per-VD traffic quantile sketch
	// (default 0.01).
	Alpha float64
	// HLLPrecision is the active-VD cardinality estimator's register
	// exponent (default 12).
	HLLPrecision int
}

func (o ApproxOptions) withDefaults() ApproxOptions {
	if o.TopK <= 0 {
		o.TopK = 128
	}
	if !(o.Alpha > 0 && o.Alpha < 0.5) {
		o.Alpha = 0.01
	}
	if o.HLLPrecision < 4 || o.HLLPrecision > 16 {
		o.HLLPrecision = 12
	}
	return o
}

// ApproxSkewnessResult pairs every streamed skewness estimate with its exact
// batch-path reference and the estimator's documented error bound.
type ApproxSkewnessResult struct {
	VDs  int // virtual disks streamed
	TopK int
	Rows []report.AccuracyRow
	// HotVDOverlap is the fraction of the exact top-(TopK/4) virtual disks
	// (by total bytes) retained by the TopK-capacity SpaceSaving ranking.
	// The summary guarantees retention only for keys above the Mass/TopK
	// eviction floor, so the gate probes well inside that margin rather
	// than the churny boundary of the full ranking.
	HotVDOverlap float64
}

// ApproxSkewness recomputes the study's headline skewness metrics — CCR,
// normalized CoV, fleet P2A, traffic quantiles, active-VD count — through
// the streaming sketch layer, retaining only O(TopK + DurationSec + 2^p)
// state instead of the batch pipeline's per-entity slices, and reports each
// estimate against the exact value from the shared aggregation pass.
//
// CCR reads the top ceil(frac*n) SpaceSaving counters, so its error is
// bounded by ceil(frac*n)/TopK; CoV comes from exact streaming moments;
// quantiles inherit the sketch's alpha; the VD count inherits the HLL's
// 1.04*2^(-p/2) standard error.
func (s *Study) ApproxSkewness(opt ApproxOptions) ApproxSkewnessResult {
	opt = opt.withDefaults()
	t := s.ensureTotals()
	top := s.Fleet.Topology
	n := len(top.VDs)

	// Streaming pass: ascending-VD fold into constant-size sketch state.
	// Per-VD totals are reused from the shared aggregation pass (the stream
	// would see the identical values); the per-second fleet series is
	// re-streamed through the rate meter bucket by bucket.
	hot := sketch.NewSpaceSaving(opt.TopK)
	quant := sketch.NewLogQuantile(opt.Alpha)
	active := sketch.NewHLL(opt.HLLPrecision)
	rate := sketch.NewRateMeter(s.Dur)
	var cnt, sum, sumsq float64 // exact streaming moments for CoV
	exactSeries := make([]float64, s.Dur)
	for vd := 0; vd < n; vd++ {
		b := t.vdRead[vd] + t.vdWrite[vd]
		cnt++
		sum += b
		sumsq += b * b
		quant.Add(b, 1)
		if b > 0 {
			hot.Add(uint64(vd), uint64(math.Round(b)))
			active.Add(uint64(vd))
		}
		for sec, smp := range s.Fleet.VDSeries(cluster.VDID(vd), s.Dur) {
			rate.Add(sec, true, uint64(math.Round(smp.ReadBps)))
			rate.Add(sec, false, uint64(math.Round(smp.WriteBps)))
			exactSeries[sec] += smp.ReadBps + smp.WriteBps
		}
	}

	// Exact references over the same population.
	perVD := make([]float64, n)
	for vd := 0; vd < n; vd++ {
		perVD[vd] = t.vdRead[vd] + t.vdWrite[vd]
	}
	exactActive := 0.0
	for _, b := range perVD {
		if b > 0 {
			exactActive++
		}
	}

	res := ApproxSkewnessResult{VDs: n, TopK: opt.TopK}
	res.Rows = []report.AccuracyRow{
		{Metric: "1%-CCR", Exact: stats.CCR(perVD, 0.01),
			Sketch: ccrFromSketch(hot, 0.01, n), Bound: ccrBound(0.01, n, opt.TopK)},
		{Metric: "10%-CCR", Exact: stats.CCR(perVD, 0.10),
			Sketch: ccrFromSketch(hot, 0.10, n), Bound: ccrBound(0.10, n, opt.TopK)},
		{Metric: "NormCoV", Exact: stats.NormCoV(perVD),
			Sketch: normCoVFromMoments(cnt, sum, sumsq), Bound: 1e-9},
		{Metric: "P2A read", Exact: p2aOfSeries(s.seriesDir(t, dirRead)),
			Sketch: rate.P2A(true, false), Bound: 1e-4},
		{Metric: "P2A write", Exact: p2aOfSeries(s.seriesDir(t, dirWrite)),
			Sketch: rate.P2A(false, true), Bound: 1e-4},
		{Metric: "P2A total", Exact: stats.P2A(exactSeries),
			Sketch: rate.P2A(true, true), Bound: 1e-4},
		{Metric: "VD traffic p50", Exact: stats.Quantile(perVD, 0.5),
			Sketch: quant.Quantile(0.5), Bound: 2 * opt.Alpha},
		{Metric: "VD traffic p99", Exact: stats.Quantile(perVD, 0.99),
			Sketch: quant.Quantile(0.99), Bound: 2 * opt.Alpha},
		{Metric: "active VDs", Exact: exactActive,
			Sketch: active.Estimate(), Bound: 0.05},
	}

	res.HotVDOverlap = sketch.Overlap(exactTopVDs(perVD, opt.TopK/4), hot.Top(opt.TopK))
	return res
}

// seriesDir regenerates the fleet-wide per-second series for one direction
// (the exact P2A reference; the shared pass retains only totals).
func (s *Study) seriesDir(t *totals, dir direction) []float64 {
	out := make([]float64, s.Dur)
	for vd := range s.Fleet.Topology.VDs {
		for sec, smp := range s.Fleet.VDSeries(cluster.VDID(vd), s.Dur) {
			if dir == dirRead {
				out[sec] += smp.ReadBps
			} else {
				out[sec] += smp.WriteBps
			}
		}
	}
	return out
}

func p2aOfSeries(xs []float64) float64 { return stats.P2A(xs) }

// ccrFromSketch estimates the frac-CCR over n entities from the heavy-hitter
// summary: the summed counts of the top ceil(frac*n) counters over the total
// ingested mass.
func ccrFromSketch(ss *sketch.SpaceSaving, frac float64, n int) float64 {
	if n == 0 || ss.Mass() == 0 {
		return math.NaN()
	}
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	var topSum uint64
	for _, e := range ss.Top(k) {
		topSum += e.Count
	}
	return float64(topSum) / float64(ss.Mass())
}

// ccrBound is the documented relative error bound of ccrFromSketch:
// ceil(frac*n) counters each overestimated by at most Mass/TopK.
func ccrBound(frac float64, n, topK int) float64 {
	k := math.Ceil(frac * float64(n))
	if k < 1 {
		k = 1
	}
	return k/float64(topK) + 1e-6
}

// normCoVFromMoments is NormCoV from the exact streaming moments
// (count, sum, sum of squares) — the O(1)-state form of stats.NormCoV.
func normCoVFromMoments(n, sum, sumsq float64) float64 {
	if n < 2 || sum == 0 {
		return math.NaN()
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean / math.Sqrt(n-1)
}

// exactTopVDs ranks the exact per-VD totals and returns the top k as
// sketch entries (weight desc, VD asc on ties).
func exactTopVDs(perVD []float64, k int) []sketch.Entry {
	idx := make([]int, 0, len(perVD))
	for vd, b := range perVD {
		if b > 0 {
			idx = append(idx, vd)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if perVD[idx[a]] != perVD[idx[b]] {
			return perVD[idx[a]] > perVD[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]sketch.Entry, k)
	for i := 0; i < k; i++ {
		out[i] = sketch.Entry{Key: uint64(idx[i]), Count: uint64(math.Round(perVD[idx[i]]))}
	}
	return out
}

// Render prints the exact-vs-streamed comparison table.
func (r ApproxSkewnessResult) Render() string {
	var b strings.Builder
	b.WriteString(report.AccuracySection(
		fmt.Sprintf("Streaming skewness accuracy (%d VDs, top-%d summary)", r.VDs, r.TopK),
		r.Rows))
	fmt.Fprintf(&b, "  hot-VD ranking overlap vs exact top-%d: %.3f\n", r.TopK/4, r.HotVDOverlap)
	return b.String()
}
