package core

import (
	"math"
	"strings"
	"testing"
)

func TestApproxSkewnessWithinBounds(t *testing.T) {
	s := study(t)
	r := s.ApproxSkewness(ApproxOptions{})
	if r.VDs == 0 || len(r.Rows) == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	for _, row := range r.Rows {
		if math.IsNaN(row.Exact) {
			t.Errorf("%s: exact reference is NaN", row.Metric)
			continue
		}
		if !row.OK() {
			t.Errorf("%s: streamed %.6g vs exact %.6g, rel err %.4g outside bound %.4g",
				row.Metric, row.Sketch, row.Exact, row.RelErr(), row.Bound)
		}
	}
	if r.HotVDOverlap < 0.9 {
		t.Errorf("hot-VD overlap %.3f < 0.9", r.HotVDOverlap)
	}
}

func TestApproxSkewnessRender(t *testing.T) {
	s := study(t)
	out := s.ApproxSkewness(ApproxOptions{TopK: 64}).Render()
	for _, want := range []string{"Streaming skewness accuracy", "1%-CCR", "P2A total", "hot-VD ranking overlap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Fatalf("render reports a bound violation:\n%s", out)
	}
}

func TestNormCoVFromMoments(t *testing.T) {
	if !math.IsNaN(normCoVFromMoments(1, 5, 25)) {
		t.Fatal("single sample should be NaN")
	}
	if !math.IsNaN(normCoVFromMoments(3, 0, 0)) {
		t.Fatal("zero mean should be NaN")
	}
	// Constant stream: CoV 0.
	if got := normCoVFromMoments(4, 8, 16); got != 0 {
		t.Fatalf("constant stream NormCoV = %g", got)
	}
}
