package core

import (
	"fmt"
	"math"

	"ebslab/internal/guestcache"
	"ebslab/internal/hypervisor"
)

// This file defines the per-method option structs of the Study API. Every
// figure, table, and ablation method takes one small struct whose zero
// value selects the documented defaults — callers name only the knobs they
// change, instead of passing positional zeros. (The positional *Legacy
// wrappers that bridged the old signatures have been removed.)
//
// Each struct has a Validate method mirroring ebs.Options: zero values are
// defaults and always valid; negative counts and NaN or out-of-range rates
// are rejected rather than silently rewritten. The Study methods cannot
// return errors, so they panic on invalid options — misconfigured options
// are a programming error, like a negative slice capacity.

// intField and rateField are (name, value) pairs checked by the shared
// validators below.
type intField struct {
	name string
	v    int64
}

type rateField struct {
	name string
	v    float64
}

// nonNeg rejects negative counts; zero always means "use the default".
func nonNeg(structName string, fields ...intField) error {
	for _, f := range fields {
		if f.v < 0 {
			return fmt.Errorf("core: %s.%s is %d, want >= 0", structName, f.name, f.v)
		}
	}
	return nil
}

// unitRate rejects NaN and values outside [0, 1]; rates in this package are
// fractions (lending rate p, cache split, access-rate threshold).
func unitRate(structName string, fields ...rateField) error {
	for _, f := range fields {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("core: %s.%s is %v, want a rate in [0, 1]", structName, f.name, f.v)
		}
	}
	return nil
}

// lendingRates rejects a rate sweep containing NaN or values outside (0, 1);
// nil selects the documented default sweep.
func lendingRates(structName string, rates []float64) error {
	for i, r := range rates {
		if math.IsNaN(r) || r <= 0 || r >= 1 {
			return fmt.Errorf("core: %s.Rates[%d] is %v, want a lending rate in (0, 1)", structName, i, r)
		}
	}
	return nil
}

// mustOpt is the guard the Study methods place in front of their option
// struct: Validate errors become panics because the methods have no error
// return.
func mustOpt(err error) {
	if err != nil {
		panic(err)
	}
}

// Fig2dOptions tunes the Fig 2(d) rebinding study.
type Fig2dOptions struct {
	// MaxNodes caps the study to the busiest multi-QP nodes (0 = 60).
	MaxNodes int
	// WinSec is the simulated window in seconds (0 = 30).
	WinSec int
}

// Fig2efOptions tunes the Fig 2(e)/(f) burst-series study.
type Fig2efOptions struct {
	MaxNodes int // busiest-node cap (0 = 40)
	WinSec   int // window in seconds (0 = 20)
}

// Fig3deOptions tunes the Fig 3(d)/(e) reduction-rate study.
type Fig3deOptions struct {
	// MultiVMNode switches the grouping scope from multi-VD VMs (the
	// default) to multi-VM nodes.
	MultiVMNode bool
	// Rates are the lending rates evaluated (nil = 0.2, 0.4, 0.6, 0.8).
	Rates []float64
}

// Fig3fgOptions tunes the Fig 3(f)/(g) lending-gain simulation.
type Fig3fgOptions struct {
	MultiVMNode bool
	Rates       []float64 // lending rates (nil = 0.2, 0.4, 0.6, 0.8)
	PeriodSec   int       // lending re-evaluation period (0 = 60)
}

// Fig4aOptions tunes the Fig 4(a) frequent-migration study.
type Fig4aOptions struct {
	PeriodSec int   // balancing period in seconds (0 = 5)
	Windows   []int // window scales in periods (nil = 1, 2, 4)
}

// Fig4bOptions tunes the Fig 4(b) importer-selection comparison.
type Fig4bOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig4cOptions tunes the Fig 4(c) prediction-MSE comparison.
type Fig4cOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
	EpochLen  int // epoch length in periods for P3/P4 (0 = 30)
}

// Fig5aOptions tunes the Fig 5(a) read/write CoV study.
type Fig5aOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig5bOptions tunes the Fig 5(b) segment-dominance study.
type Fig5bOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig5cOptions tunes the Fig 5(c) write-then-read comparison.
type Fig5cOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig6Options tunes the Fig 6 LBA-hotspot analysis.
type Fig6Options struct {
	MaxVDs         int // busiest-VD cap (0 = 48)
	MaxEventsPerVD int // events replayed per VD (0 = 20000)
}

// Fig7aOptions tunes the Fig 7(a) cache hit-ratio replay.
type Fig7aOptions struct {
	MaxVDs         int // busiest-VD cap (0 = 32)
	MaxEventsPerVD int // events replayed per VD (0 = 20000)
}

// Fig7bcOptions tunes the Fig 7(b)/(c) frozen-cache latency study.
type Fig7bcOptions struct {
	MaxVDs         int   // busiest-VD cap (0 = 24)
	MaxEventsPerVD int   // events replayed per VD (0 = 12000)
	BlockMiB       int64 // frozen-cache block size in MiB (0 = 2048)
}

// Fig7dOptions tunes the Fig 7(d) space-utilization study.
type Fig7dOptions struct {
	// Threshold is the hottest-block access-rate cut above which a VD
	// counts as cacheable (0 = 0.25).
	Threshold float64
}

// RebindOptions tunes the rebinding ablation.
type RebindOptions struct {
	MaxNodes int // busiest-node cap (0 = 40)
	WinSec   int // window in seconds (0 = 20)
	// Config is the rebinding configuration under test (zero value =
	// hypervisor.DefaultRebindConfig()).
	Config hypervisor.RebindConfig
}

// DispatchOptions tunes the dispatch-policy ablation.
type DispatchOptions struct {
	MaxNodes int // busiest-node cap (0 = 40)
	WinSec   int // window in seconds (0 = 20)
	// Policy selects the dispatch model (zero value = single-WT hosting).
	Policy hypervisor.DispatchPolicy
}

// HostingOptions tunes the hosting-model ablation.
type HostingOptions struct {
	MaxNodes int // busiest-node cap (0 = 24)
	WinSec   int // window in seconds (0 = 10)
}

// CachePolicyOptions tunes the cache-policy ablation.
type CachePolicyOptions struct {
	MaxVDs         int   // busiest-VD cap (0 = 24)
	MaxEventsPerVD int   // events replayed per VD (0 = 8000)
	BlockMiB       int64 // cache block size in MiB (0 = 256)
}

// PredictorOptions tunes the predictor ablation.
type PredictorOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// CacheDeploymentOptions tunes the cache-deployment ablation.
type CacheDeploymentOptions struct {
	MaxVDs         int     // cacheable-VD cap (0 = 16)
	MaxEventsPerVD int     // events replayed per VD (0 = 8000)
	BlockMiB       int64   // frozen-cache block size in MiB (0 = 2048)
	CNFrac         float64 // hybrid split: fraction cached at the CN (0 = 0.25)
}

// FailoverOptions tunes the failover ablation.
type FailoverOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// PageCacheOptions tunes the guest page-cache study.
type PageCacheOptions struct {
	MaxVDs         int   // busiest-VD cap (0 = 16)
	MaxEventsPerVD int   // app-level events replayed per VD (0 = 10000)
	BlockMiB       int64 // hotspot block size in MiB (0 = 256)
	// Guest configures the simulated page cache (zero value = the default
	// config with a 2 s flush interval).
	Guest guestcache.Config
}

// --- Validate methods -------------------------------------------------------

// Validate reports whether the options are usable.
func (o Fig2dOptions) Validate() error {
	return nonNeg("Fig2dOptions",
		intField{"MaxNodes", int64(o.MaxNodes)}, intField{"WinSec", int64(o.WinSec)})
}

// Validate reports whether the options are usable.
func (o Fig2efOptions) Validate() error {
	return nonNeg("Fig2efOptions",
		intField{"MaxNodes", int64(o.MaxNodes)}, intField{"WinSec", int64(o.WinSec)})
}

// Validate reports whether the options are usable.
func (o Fig3deOptions) Validate() error {
	return lendingRates("Fig3deOptions", o.Rates)
}

// Validate reports whether the options are usable.
func (o Fig3fgOptions) Validate() error {
	if err := lendingRates("Fig3fgOptions", o.Rates); err != nil {
		return err
	}
	return nonNeg("Fig3fgOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o Fig4aOptions) Validate() error {
	if err := nonNeg("Fig4aOptions", intField{"PeriodSec", int64(o.PeriodSec)}); err != nil {
		return err
	}
	for i, w := range o.Windows {
		if w <= 0 {
			return fmt.Errorf("core: Fig4aOptions.Windows[%d] is %d, want > 0", i, w)
		}
	}
	return nil
}

// Validate reports whether the options are usable.
func (o Fig4bOptions) Validate() error {
	return nonNeg("Fig4bOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o Fig4cOptions) Validate() error {
	return nonNeg("Fig4cOptions",
		intField{"PeriodSec", int64(o.PeriodSec)}, intField{"EpochLen", int64(o.EpochLen)})
}

// Validate reports whether the options are usable.
func (o Fig5aOptions) Validate() error {
	return nonNeg("Fig5aOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o Fig5bOptions) Validate() error {
	return nonNeg("Fig5bOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o Fig5cOptions) Validate() error {
	return nonNeg("Fig5cOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o Fig6Options) Validate() error {
	return nonNeg("Fig6Options",
		intField{"MaxVDs", int64(o.MaxVDs)}, intField{"MaxEventsPerVD", int64(o.MaxEventsPerVD)})
}

// Validate reports whether the options are usable.
func (o Fig7aOptions) Validate() error {
	return nonNeg("Fig7aOptions",
		intField{"MaxVDs", int64(o.MaxVDs)}, intField{"MaxEventsPerVD", int64(o.MaxEventsPerVD)})
}

// Validate reports whether the options are usable.
func (o Fig7bcOptions) Validate() error {
	return nonNeg("Fig7bcOptions",
		intField{"MaxVDs", int64(o.MaxVDs)}, intField{"MaxEventsPerVD", int64(o.MaxEventsPerVD)},
		intField{"BlockMiB", o.BlockMiB})
}

// Validate reports whether the options are usable.
func (o Fig7dOptions) Validate() error {
	return unitRate("Fig7dOptions", rateField{"Threshold", o.Threshold})
}

// Validate reports whether the options are usable.
func (o RebindOptions) Validate() error {
	return nonNeg("RebindOptions",
		intField{"MaxNodes", int64(o.MaxNodes)}, intField{"WinSec", int64(o.WinSec)})
}

// Validate reports whether the options are usable.
func (o DispatchOptions) Validate() error {
	return nonNeg("DispatchOptions",
		intField{"MaxNodes", int64(o.MaxNodes)}, intField{"WinSec", int64(o.WinSec)})
}

// Validate reports whether the options are usable.
func (o HostingOptions) Validate() error {
	return nonNeg("HostingOptions",
		intField{"MaxNodes", int64(o.MaxNodes)}, intField{"WinSec", int64(o.WinSec)})
}

// Validate reports whether the options are usable.
func (o CachePolicyOptions) Validate() error {
	return nonNeg("CachePolicyOptions",
		intField{"MaxVDs", int64(o.MaxVDs)}, intField{"MaxEventsPerVD", int64(o.MaxEventsPerVD)},
		intField{"BlockMiB", o.BlockMiB})
}

// Validate reports whether the options are usable.
func (o PredictorOptions) Validate() error {
	return nonNeg("PredictorOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o CacheDeploymentOptions) Validate() error {
	if err := nonNeg("CacheDeploymentOptions",
		intField{"MaxVDs", int64(o.MaxVDs)}, intField{"MaxEventsPerVD", int64(o.MaxEventsPerVD)},
		intField{"BlockMiB", o.BlockMiB}); err != nil {
		return err
	}
	return unitRate("CacheDeploymentOptions", rateField{"CNFrac", o.CNFrac})
}

// Validate reports whether the options are usable.
func (o FailoverOptions) Validate() error {
	return nonNeg("FailoverOptions", intField{"PeriodSec", int64(o.PeriodSec)})
}

// Validate reports whether the options are usable.
func (o PageCacheOptions) Validate() error {
	return nonNeg("PageCacheOptions",
		intField{"MaxVDs", int64(o.MaxVDs)}, intField{"MaxEventsPerVD", int64(o.MaxEventsPerVD)},
		intField{"BlockMiB", o.BlockMiB})
}
