package core

import (
	"ebslab/internal/guestcache"
	"ebslab/internal/hypervisor"
)

// This file defines the per-method option structs of the Study API. Every
// figure, table, and ablation method takes one small struct whose zero
// value selects the documented defaults — callers name only the knobs they
// change, instead of passing positional zeros. The previous positional
// forms survive one release as *Legacy wrappers (see legacy.go).

// Fig2dOptions tunes the Fig 2(d) rebinding study.
type Fig2dOptions struct {
	// MaxNodes caps the study to the busiest multi-QP nodes (0 = 60).
	MaxNodes int
	// WinSec is the simulated window in seconds (0 = 30).
	WinSec int
}

// Fig2efOptions tunes the Fig 2(e)/(f) burst-series study.
type Fig2efOptions struct {
	MaxNodes int // busiest-node cap (0 = 40)
	WinSec   int // window in seconds (0 = 20)
}

// Fig3deOptions tunes the Fig 3(d)/(e) reduction-rate study.
type Fig3deOptions struct {
	// MultiVMNode switches the grouping scope from multi-VD VMs (the
	// default) to multi-VM nodes.
	MultiVMNode bool
	// Rates are the lending rates evaluated (nil = 0.2, 0.4, 0.6, 0.8).
	Rates []float64
}

// Fig3fgOptions tunes the Fig 3(f)/(g) lending-gain simulation.
type Fig3fgOptions struct {
	MultiVMNode bool
	Rates       []float64 // lending rates (nil = 0.2, 0.4, 0.6, 0.8)
	PeriodSec   int       // lending re-evaluation period (0 = 60)
}

// Fig4aOptions tunes the Fig 4(a) frequent-migration study.
type Fig4aOptions struct {
	PeriodSec int   // balancing period in seconds (0 = 5)
	Windows   []int // window scales in periods (nil = 1, 2, 4)
}

// Fig4bOptions tunes the Fig 4(b) importer-selection comparison.
type Fig4bOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig4cOptions tunes the Fig 4(c) prediction-MSE comparison.
type Fig4cOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
	EpochLen  int // epoch length in periods for P3/P4 (0 = 30)
}

// Fig5aOptions tunes the Fig 5(a) read/write CoV study.
type Fig5aOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig5bOptions tunes the Fig 5(b) segment-dominance study.
type Fig5bOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig5cOptions tunes the Fig 5(c) write-then-read comparison.
type Fig5cOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// Fig6Options tunes the Fig 6 LBA-hotspot analysis.
type Fig6Options struct {
	MaxVDs         int // busiest-VD cap (0 = 48)
	MaxEventsPerVD int // events replayed per VD (0 = 20000)
}

// Fig7aOptions tunes the Fig 7(a) cache hit-ratio replay.
type Fig7aOptions struct {
	MaxVDs         int // busiest-VD cap (0 = 32)
	MaxEventsPerVD int // events replayed per VD (0 = 20000)
}

// Fig7bcOptions tunes the Fig 7(b)/(c) frozen-cache latency study.
type Fig7bcOptions struct {
	MaxVDs         int   // busiest-VD cap (0 = 24)
	MaxEventsPerVD int   // events replayed per VD (0 = 12000)
	BlockMiB       int64 // frozen-cache block size in MiB (0 = 2048)
}

// Fig7dOptions tunes the Fig 7(d) space-utilization study.
type Fig7dOptions struct {
	// Threshold is the hottest-block access-rate cut above which a VD
	// counts as cacheable (0 = 0.25).
	Threshold float64
}

// RebindOptions tunes the rebinding ablation.
type RebindOptions struct {
	MaxNodes int // busiest-node cap (0 = 40)
	WinSec   int // window in seconds (0 = 20)
	// Config is the rebinding configuration under test (zero value =
	// hypervisor.DefaultRebindConfig()).
	Config hypervisor.RebindConfig
}

// DispatchOptions tunes the dispatch-policy ablation.
type DispatchOptions struct {
	MaxNodes int // busiest-node cap (0 = 40)
	WinSec   int // window in seconds (0 = 20)
	// Policy selects the dispatch model (zero value = single-WT hosting).
	Policy hypervisor.DispatchPolicy
}

// HostingOptions tunes the hosting-model ablation.
type HostingOptions struct {
	MaxNodes int // busiest-node cap (0 = 24)
	WinSec   int // window in seconds (0 = 10)
}

// CachePolicyOptions tunes the cache-policy ablation.
type CachePolicyOptions struct {
	MaxVDs         int   // busiest-VD cap (0 = 24)
	MaxEventsPerVD int   // events replayed per VD (0 = 8000)
	BlockMiB       int64 // cache block size in MiB (0 = 256)
}

// PredictorOptions tunes the predictor ablation.
type PredictorOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// CacheDeploymentOptions tunes the cache-deployment ablation.
type CacheDeploymentOptions struct {
	MaxVDs         int     // cacheable-VD cap (0 = 16)
	MaxEventsPerVD int     // events replayed per VD (0 = 8000)
	BlockMiB       int64   // frozen-cache block size in MiB (0 = 2048)
	CNFrac         float64 // hybrid split: fraction cached at the CN (0 = 0.25)
}

// FailoverOptions tunes the failover ablation.
type FailoverOptions struct {
	PeriodSec int // balancing period in seconds (0 = 5)
}

// PageCacheOptions tunes the guest page-cache study.
type PageCacheOptions struct {
	MaxVDs         int   // busiest-VD cap (0 = 16)
	MaxEventsPerVD int   // app-level events replayed per VD (0 = 10000)
	BlockMiB       int64 // hotspot block size in MiB (0 = 256)
	// Guest configures the simulated page cache (zero value = the default
	// config with a 2 s flush interval).
	Guest guestcache.Config
}
