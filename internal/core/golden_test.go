package core

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/workload"
)

// The golden harness pins the headline statistics of the figure and
// ablation pipelines to byte-exact JSON fixtures. Any change to the
// generator, the statistics, or the mitigation models shows up as a fixture
// diff; run `go test ./internal/core -run TestGolden -update` (the `make
// golden` target) to regenerate after an intentional change.
var updateGolden = flag.Bool("update", false, "rewrite golden fixtures under testdata/golden")

// goldenStudy is a dedicated small fleet so the fixture stays cheap to
// recompute and independent of the statistical test fleet.
var (
	goldenOnce  sync.Once
	goldenS     *Study
	goldenSErr  error
	goldenDur   = 120
	goldenMaxVD = 16
)

func goldenStudy(t *testing.T) *Study {
	t.Helper()
	goldenOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.DCs = 1
		cfg.NodesPerDC = 24
		cfg.BSPerDC = 8
		cfg.BSPerCluster = 4
		cfg.Users = 24
		cfg.DurationSec = goldenDur
		goldenS, goldenSErr = NewStudy(cfg)
	})
	if goldenSErr != nil {
		t.Fatalf("NewStudy: %v", goldenSErr)
	}
	return goldenS
}

// sanitize converts a result tree to a JSON-encodable form with floats
// rounded to 9 significant digits (well above the noise floor of any real
// regression, well below reorder-sensitivity of float summation) and the
// JSON-unrepresentable values replaced by string sentinels.
func sanitize(v reflect.Value) any {
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		return roundSig(v.Float())
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return sanitize(v.Elem())
	case reflect.Struct:
		out := make(map[string]any, v.NumField())
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if tp.Field(i).IsExported() {
				out[tp.Field(i).Name] = sanitize(v.Field(i))
			}
		}
		return out
	case reflect.Slice, reflect.Array:
		out := make([]any, v.Len())
		for i := 0; i < v.Len(); i++ {
			out[i] = sanitize(v.Index(i))
		}
		return out
	case reflect.Map:
		out := make(map[string]any, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			out[fmt.Sprint(iter.Key().Interface())] = sanitize(iter.Value())
		}
		return out
	default:
		if s, ok := v.Interface().(fmt.Stringer); ok && v.Kind() != reflect.String &&
			!v.CanInt() && !v.CanUint() {
			return s.String()
		}
		return v.Interface()
	}
}

// roundSig rounds to 9 significant digits; NaN and infinities become string
// sentinels (JSON cannot encode them).
func roundSig(f float64) any {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case f == 0:
		return 0.0
	}
	exp := math.Floor(math.Log10(math.Abs(f)))
	scale := math.Pow(10, 8-exp)
	return math.Round(f*scale) / scale
}

func goldenCompare(t *testing.T, name string, result any) {
	t.Helper()
	tree := sanitize(reflect.ValueOf(result))
	got, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no fixture %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden fixture %s (first diff at %q); rerun with -update if intended",
			name, path, firstDiffLine(got, want))
	}
}

// firstDiffLine returns the first line where got and want diverge.
func firstDiffLine(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d: %s != %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(gl), len(wl))
}

// TestGoldenFigures pins the headline statistics of Figures 2-7.
func TestGoldenFigures(t *testing.T) {
	s := goldenStudy(t)
	goldenCompare(t, "table2", s.Table2Summary())
	goldenCompare(t, "fig2b", s.Fig2bThreeTier())
	goldenCompare(t, "fig2c", s.Fig2cHottestQP())
	goldenCompare(t, "fig3b", s.Fig3bRAR(false))
	goldenCompare(t, "fig3de", s.Fig3deReduction(Fig3deOptions{}))
	goldenCompare(t, "fig3fg", s.Fig3fgLendingGain(Fig3fgOptions{}))
	goldenCompare(t, "fig4a", s.Fig4aFrequentMigration(Fig4aOptions{}))
	goldenCompare(t, "fig4b", s.Fig4bImporterSelection(Fig4bOptions{}))
	goldenCompare(t, "fig5a", s.Fig5aReadWriteCoV(Fig5aOptions{}))
	goldenCompare(t, "fig5b", s.Fig5bSegmentDominance(Fig5bOptions{}))
	goldenCompare(t, "fig5c", s.Fig5cWriteThenRead(Fig5cOptions{}))
	goldenCompare(t, "fig6", s.Fig6HottestBlocks(Fig6Options{MaxVDs: 12, MaxEventsPerVD: 4000}))
	goldenCompare(t, "fig7a", s.Fig7aHitRatio(Fig7aOptions{MaxVDs: 8, MaxEventsPerVD: 4000}))
	goldenCompare(t, "fig7d", s.Fig7dSpaceUtilization(Fig7dOptions{}))
}

// TestGoldenAblations pins the mitigation ablations.
func TestGoldenAblations(t *testing.T) {
	s := goldenStudy(t)
	goldenCompare(t, "ablation_dispatch", s.AblateDispatch(DispatchOptions{MaxNodes: 8, WinSec: 8}))
	goldenCompare(t, "ablation_hosting", s.AblateHosting(HostingOptions{MaxNodes: 8, WinSec: 8}))
	goldenCompare(t, "ablation_cachepolicy", s.AblateCachePolicy(CachePolicyOptions{MaxVDs: 6, MaxEventsPerVD: 2000}))
	goldenCompare(t, "ablation_predictors", s.AblatePredictors(PredictorOptions{}))
	goldenCompare(t, "ablation_failover", s.AblateFailover(FailoverOptions{}))
}

// goldenEngineRun is the engine configuration whose dataset fingerprint the
// fixture pins byte-exactly.
func goldenEngineRun(t *testing.T, workers int) *invariant.Artifacts {
	t.Helper()
	s := goldenStudy(t)
	ds, err := ebs.New(s.Fleet).Run(context.Background(), ebs.Options{
		DurationSec: 20, TraceSampleEvery: 1, EventSampleEvery: 4,
		MaxVDs: goldenMaxVD, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &invariant.Artifacts{Fleet: s.Fleet, Dataset: ds, EventSampleEvery: 4, TraceSampleEvery: 1}
}

// TestGoldenEngineFingerprint pins the end-to-end engine output: one hash
// covers every trace record and metric row, so a single IO dropped,
// duplicated, or relabeled anywhere in the path flips the fixture.
func TestGoldenEngineFingerprint(t *testing.T) {
	a := goldenEngineRun(t, 0)
	goldenCompare(t, "engine_fingerprint", map[string]any{
		"fingerprint": invariant.Fingerprint(a.Dataset),
		"records":     len(a.Dataset.Trace),
		"computeRows": len(a.Dataset.Compute),
		"storageRows": len(a.Dataset.Storage),
	})
}

// TestGoldenFingerprintConvictsDroppedIO is the golden half of the
// injected-bug acceptance test: dropping one IO from the merged dataset
// (the canonical shard-merge conservation bug) must change the pinned
// fingerprint.
func TestGoldenFingerprintConvictsDroppedIO(t *testing.T) {
	a := goldenEngineRun(t, 0)
	before := invariant.Fingerprint(a.Dataset)
	mid := len(a.Dataset.Trace) / 2
	a.Dataset.Trace = append(a.Dataset.Trace[:mid:mid], a.Dataset.Trace[mid+1:]...)
	if after := invariant.Fingerprint(a.Dataset); after == before {
		t.Fatal("fingerprint unchanged after dropping an IO; the golden pin is vacuous")
	}
}
