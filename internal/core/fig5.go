package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ebslab/internal/balancer"
	"ebslab/internal/stats"
)

// Fig5aResult is the per-cluster read-vs-write CoV comparison (Figure 5a).
type Fig5aResult struct {
	// ReadCoV[i], WriteCoV[i], NormWrite[i] describe storage cluster i:
	// mean per-period CoV of per-BS read and write traffic under the static
	// placement, and total write traffic normalized to the largest cluster.
	ReadCoV, WriteCoV, NormWrite []float64
	// FracAboveDiagonal is the fraction of clusters with read CoV >= write
	// CoV (96.8% in the paper).
	FracAboveDiagonal float64
}

// Fig5aReadWriteCoV measures per-cluster inter-BS skewness by direction.
func (s *Study) Fig5aReadWriteCoV(opt Fig5aOptions) Fig5aResult {
	mustOpt(opt.Validate())
	cts := s.clusterTraffics(opt.PeriodSec)
	var res Fig5aResult
	var maxW float64
	var above, counted int
	for _, ct := range cts {
		futureW := balancer.BSFutureMatrix(ct.Placement, ct.Traffic, func(x balancer.RW) float64 { return x.W })
		futureR := balancer.BSFutureMatrix(ct.Placement, ct.Traffic, func(x balancer.RW) float64 { return x.R })
		var covW, covR []float64
		var totW float64
		for p := 0; p < ct.NPeriods; p++ {
			col := func(m [][]float64) []float64 {
				out := make([]float64, len(m))
				for b := range m {
					out[b] = m[b][p]
				}
				return out
			}
			covW = appendNotNaN(covW, stats.NormCoV(col(futureW)))
			covR = appendNotNaN(covR, stats.NormCoV(col(futureR)))
		}
		for b := range futureW {
			totW += stats.Sum(futureW[b])
		}
		r, w := stats.Mean(covR), stats.Mean(covW)
		if math.IsNaN(r) || math.IsNaN(w) {
			continue
		}
		counted++
		if r >= w {
			above++
		}
		res.ReadCoV = append(res.ReadCoV, r)
		res.WriteCoV = append(res.WriteCoV, w)
		res.NormWrite = append(res.NormWrite, totW)
		if totW > maxW {
			maxW = totW
		}
	}
	for i := range res.NormWrite {
		if maxW > 0 {
			res.NormWrite[i] /= maxW
		}
	}
	if counted > 0 {
		res.FracAboveDiagonal = float64(above) / float64(counted)
	} else {
		res.FracAboveDiagonal = math.NaN()
	}
	return res
}

// Render prints Fig 5(a).
func (r Fig5aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 5(a): per-cluster inter-BS CoV, read vs write\n")
	fmt.Fprintf(&b, "  clusters with read CoV >= write CoV: %.1f%% (n=%d)\n",
		100*r.FracAboveDiagonal, len(r.ReadCoV))
	fmt.Fprintf(&b, "  median read CoV %.2f, median write CoV %.2f\n",
		stats.Median(r.ReadCoV), stats.Median(r.WriteCoV))
	return b.String()
}

// Fig5bResult is the segment read/write dominance histogram (Figure 5b).
type Fig5bResult struct {
	// MedianAbsWr[i] is cluster i's median |wr_ratio| over the segments
	// contributing the top 80% of its traffic.
	MedianAbsWr []float64
	// FracAbove09 is the fraction of clusters whose median exceeds 0.9
	// (85.2% in the paper).
	FracAbove09 float64
}

// Fig5bSegmentDominance measures how one-sided segments are, per cluster,
// restricted to the segments carrying the top 80% of cluster traffic.
func (s *Study) Fig5bSegmentDominance(opt Fig5bOptions) Fig5bResult {
	mustOpt(opt.Validate())
	cts := s.clusterTraffics(opt.PeriodSec)
	var res Fig5bResult
	for _, ct := range cts {
		type segTot struct{ r, w, tot float64 }
		segs := make([]segTot, len(ct.Traffic))
		var clusterTot float64
		for i, rows := range ct.Traffic {
			for _, rw := range rows {
				segs[i].r += rw.R
				segs[i].w += rw.W
			}
			segs[i].tot = segs[i].r + segs[i].w
			clusterTot += segs[i].tot
		}
		if clusterTot == 0 {
			continue
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].tot > segs[j].tot })
		var cum float64
		var absWr []float64
		for _, sg := range segs {
			if cum >= 0.8*clusterTot {
				break
			}
			cum += sg.tot
			wr := stats.WrRatio(sg.w, sg.r)
			if !math.IsNaN(wr) {
				absWr = append(absWr, math.Abs(wr))
			}
		}
		if m := stats.Median(absWr); !math.IsNaN(m) {
			res.MedianAbsWr = append(res.MedianAbsWr, m)
		}
	}
	res.FracAbove09 = stats.FractionWhere(res.MedianAbsWr, func(x float64) bool { return x > 0.9 })
	return res
}

// Render prints Fig 5(b).
func (r Fig5bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 5(b): segment dominance (median |wr_ratio| of top-80%-traffic segments)\n")
	fmt.Fprintf(&b, "  clusters with median > 0.9: %.1f%% (n=%d)\n", 100*r.FracAbove09, len(r.MedianAbsWr))
	fmt.Fprintf(&b, "  overall median: %.2f\n", stats.Median(r.MedianAbsWr))
	return b.String()
}

// Fig5cResult compares Write-Only and Write-then-Read migration (Figure 5c).
type Fig5cResult struct {
	ClusterIdx int
	// Mean per-period CoVs under each algorithm.
	WriteOnlyReadCoV, WriteOnlyWriteCoV float64
	WTRReadCoV, WTRWriteCoV             float64
	WriteMigs, ReadMigs                 int
}

// Fig5cWriteThenRead runs both balancing modes with the Ideal importer on
// the busiest cluster, as §6.2.2 does.
func (s *Study) Fig5cWriteThenRead(opt Fig5cOptions) Fig5cResult {
	mustOpt(opt.Validate())
	cts := s.clusterTraffics(opt.PeriodSec)
	victim := s.worstCluster(cts)
	ct := cts[victim]
	cfg := balancer.DefaultConfig()
	wo := balancer.Run(ct.Placement, ct.Traffic, balancer.OraclePolicy{}, cfg)

	cfg.Mode = balancer.WriteThenRead
	wtr := balancer.Run(ct.Placement, ct.Traffic, balancer.OraclePolicy{}, cfg)

	res := Fig5cResult{ClusterIdx: victim}
	res.WriteOnlyReadCoV = stats.Mean(stats.DropNaN(wo.ReadCoV))
	res.WriteOnlyWriteCoV = stats.Mean(stats.DropNaN(wo.WriteCoV))
	res.WTRReadCoV = stats.Mean(stats.DropNaN(wtr.ReadCoV))
	res.WTRWriteCoV = stats.Mean(stats.DropNaN(wtr.WriteCoV))
	res.WriteMigs, res.ReadMigs = balancer.MigrationCount(wtr.Migrations)
	return res
}

// Render prints Fig 5(c).
func (r Fig5cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5(c): write-only vs write-then-read migration on cluster %d\n", r.ClusterIdx)
	fmt.Fprintf(&b, "  write-only:      read CoV %.2f, write CoV %.2f\n", r.WriteOnlyReadCoV, r.WriteOnlyWriteCoV)
	fmt.Fprintf(&b, "  write-then-read: read CoV %.2f, write CoV %.2f (%d write + %d read migrations)\n",
		r.WTRReadCoV, r.WTRWriteCoV, r.WriteMigs, r.ReadMigs)
	return b.String()
}
