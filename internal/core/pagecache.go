package core

import (
	"fmt"
	"math"
	"strings"

	"ebslab/internal/cache"
	"ebslab/internal/guestcache"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// PageCacheStudy validates the §7.2 mechanism from first principles: the
// application-level stream of a hot disk is read-heavy, but running it
// through a guest page cache absorbs the hot-range re-reads, so the
// EBS-visible hottest block turns write-dominant — which is what the
// static HotReadFrac in the workload model encodes.
type PageCacheStudy struct {
	VDs int
	// Medians across study VDs of the hottest-block wr_ratio (bytes), at
	// the application level and after the page cache.
	AppWrRatio, DeviceWrRatio float64
	// AbsorbedReadFrac is the median fraction of application reads the
	// cache absorbed.
	AbsorbedReadFrac float64
	BlockMiB         int64
}

// StudyPageCache replays the busiest VDs' application-level streams
// through a guest page cache and measures hottest-block dominance before
// and after.
func (s *Study) StudyPageCache(opt PageCacheOptions) PageCacheStudy {
	mustOpt(opt.Validate())
	maxVDs, maxEventsPerVD := opt.MaxVDs, opt.MaxEventsPerVD
	blockMiB, cfg := opt.BlockMiB, opt.Guest
	if maxVDs <= 0 {
		maxVDs = 16
	}
	if maxEventsPerVD <= 0 {
		maxEventsPerVD = 10000
	}
	if blockMiB <= 0 {
		blockMiB = 256
	}
	if cfg.CachePages == 0 {
		cfg = guestcache.DefaultConfig()
		cfg.FlushIntervalUS = 2_000_000
	}
	blockSize := blockMiB << 20
	t := s.ensureTotals()
	var appRatios, devRatios, absorbed []float64
	vds := s.studyVDs(maxVDs)
	for _, vd := range vds {
		m := &s.Fleet.Models[vd]
		expOps := t.vdRead[vd]/m.ReadIOSize + t.vdWrite[vd]/m.WriteIOSize
		sampleEvery := 1
		if expOps > float64(maxEventsPerVD) {
			sampleEvery = int(math.Ceil(expOps / float64(maxEventsPerVD)))
		}
		var app []guestcache.IO
		s.Fleet.GenAppEvents(vd, s.Dur, sampleEvery, func(ev workloadEvent) {
			app = append(app, guestcache.IO{
				TimeUS: ev.TimeUS, Op: ev.Op, Offset: ev.Offset, Size: ev.Size,
			})
		})
		if len(app) < 100 {
			continue
		}
		device, st := guestcache.Filter(cfg, app)

		capBytes := s.Fleet.Topology.VDs[vd].Capacity
		appRep := analyzeIOs(app, capBytes, blockSize)
		devRep := analyzeIOs(device, capBytes, blockSize)
		if !math.IsNaN(appRep) {
			appRatios = append(appRatios, appRep)
		}
		if !math.IsNaN(devRep) {
			devRatios = append(devRatios, devRep)
		}
		if st.AppReads > 0 {
			absorbed = append(absorbed, float64(st.ReadHits)/float64(st.AppReads))
		}
	}
	return PageCacheStudy{
		VDs:              len(vds),
		AppWrRatio:       stats.Median(appRatios),
		DeviceWrRatio:    stats.Median(devRatios),
		AbsorbedReadFrac: stats.Median(absorbed),
		BlockMiB:         blockMiB,
	}
}

// analyzeIOs computes the byte-weighted wr_ratio of the hottest block of an
// IO stream.
func analyzeIOs(ios []guestcache.IO, capBytes, blockSize int64) float64 {
	if len(ios) == 0 {
		return math.NaN()
	}
	accesses := make([]cache.Access, 0, len(ios))
	for _, io := range ios {
		accesses = append(accesses, cache.Access{
			TimeUS: io.TimeUS, Offset: io.Offset, Size: io.Size,
			Write: io.Op == trace.OpWrite,
		})
	}
	rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
	if rep.Hottest < 0 {
		return math.NaN()
	}
	// Byte-weighted ratio over the hottest block.
	var w, r float64
	for _, a := range accesses {
		if a.Offset/blockSize != rep.Hottest {
			continue
		}
		if a.Write {
			w += float64(a.Size)
		} else {
			r += float64(a.Size)
		}
	}
	return stats.WrRatio(w, r)
}

// Render prints the page-cache study.
func (r PageCacheStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Page-cache study (%d MiB blocks, %d VDs)\n", r.BlockMiB, r.VDs)
	fmt.Fprintf(&b, "  hottest-block wr_ratio at application level: %+.2f\n", r.AppWrRatio)
	fmt.Fprintf(&b, "  hottest-block wr_ratio EBS-visible:          %+.2f\n", r.DeviceWrRatio)
	fmt.Fprintf(&b, "  median fraction of app reads absorbed:        %.1f%%\n", 100*r.AbsorbedReadFrac)
	return b.String()
}
