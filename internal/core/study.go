// Package core is the analysis pipeline — the paper's primary contribution
// re-expressed as code. A Study wraps one synthesized fleet and exposes one
// method per table and figure of the evaluation (see DESIGN.md's
// per-experiment index); each returns a typed result with a Render method
// that prints a paper-style text table.
package core

import (
	"context"
	"sync"

	"ebslab/internal/cluster"
	"ebslab/internal/par"
	"ebslab/internal/stats"
	"ebslab/internal/workload"
)

// Study is one analysis session over a generated fleet.
type Study struct {
	Fleet *workload.Fleet
	// Dur is the observation window in seconds (taken from the fleet config
	// unless overridden before first use).
	Dur int
	// Workers bounds the worker pool of the fleet-wide aggregation pass
	// (0 = one per CPU). Results are identical for every worker count.
	Workers int

	once sync.Once
	tot  totals
}

// totals caches the one-pass aggregation every spatial analysis shares.
type totals struct {
	// Per-QP total bytes over the window (indexed by QPID).
	qpRead, qpWrite []float64
	// Per-VD total bytes and P2A per direction (indexed by VDID).
	vdRead, vdWrite   []float64
	vdP2AR, vdP2AW    []float64
	vmRead, vmWrite   []float64 // per VM
	segRead, segWrite []float64 // per segment
}

// NewStudy generates a fleet from cfg and wraps it.
func NewStudy(cfg workload.Config) (*Study, error) {
	f, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Study{Fleet: f, Dur: cfg.DurationSec}, nil
}

// NewStudyFromFleet wraps an existing fleet.
func NewStudyFromFleet(f *workload.Fleet) *Study {
	return &Study{Fleet: f, Dur: f.Cfg.DurationSec}
}

// ensureTotals performs the shared aggregation pass over all VD series,
// parallelized across the study's worker pool. Every per-VD write lands in
// slice slots owned by that VD (its own QPs and segments), so the pass is
// race-free and its output independent of scheduling; the only cross-VD
// accumulation (per-VM sums) runs as a sequential fold afterwards.
func (s *Study) ensureTotals() *totals {
	s.once.Do(func() {
		top := s.Fleet.Topology
		t := &s.tot
		t.qpRead = make([]float64, len(top.QPs))
		t.qpWrite = make([]float64, len(top.QPs))
		t.vdRead = make([]float64, len(top.VDs))
		t.vdWrite = make([]float64, len(top.VDs))
		t.vdP2AR = make([]float64, len(top.VDs))
		t.vdP2AW = make([]float64, len(top.VDs))
		t.vmRead = make([]float64, len(top.VMs))
		t.vmWrite = make([]float64, len(top.VMs))
		t.segRead = make([]float64, len(top.Segments))
		t.segWrite = make([]float64, len(top.Segments))

		par.ForEach(context.Background(), len(top.VDs), s.Workers, func(vdIdx int) error {
			vd := &top.VDs[vdIdx]
			m := &s.Fleet.Models[vdIdx]
			series := s.Fleet.VDSeries(cluster.VDID(vdIdx), s.Dur)
			rs := make([]float64, len(series))
			ws := make([]float64, len(series))
			var rTot, wTot float64
			for i, smp := range series {
				rs[i], ws[i] = smp.ReadBps, smp.WriteBps
				rTot += smp.ReadBps
				wTot += smp.WriteBps
			}
			t.vdRead[vdIdx], t.vdWrite[vdIdx] = rTot, wTot
			t.vdP2AR[vdIdx] = stats.P2A(rs)
			t.vdP2AW[vdIdx] = stats.P2A(ws)
			for i, qp := range vd.QPs {
				t.qpRead[qp] = rTot * m.QPWeightsRead[i]
				t.qpWrite[qp] = wTot * m.QPWeightsWrite[i]
			}
			for i, seg := range vd.Segments {
				t.segRead[seg] = rTot * m.SegWeightsRead[i]
				t.segWrite[seg] = wTot * m.SegWeightsWrite[i]
			}
			return nil
		})
		// Per-VM sums cross VD boundaries; fold them sequentially in VD
		// order so float addition order (and thus the result) is fixed.
		for vdIdx := range top.VDs {
			vm := top.VDs[vdIdx].VM
			t.vmRead[vm] += t.vdRead[vdIdx]
			t.vmWrite[vm] += t.vdWrite[vdIdx]
		}
	})
	return &s.tot
}

// nodeQPTraffic returns per-QP totals (read+write, or one direction) for a
// node, aligned with Topology.NodeQPs order.
func (s *Study) nodeQPTraffic(n cluster.NodeID, dir direction) []float64 {
	t := s.ensureTotals()
	qps := s.Fleet.Topology.NodeQPs(n)
	out := make([]float64, len(qps))
	for i, qp := range qps {
		switch dir {
		case dirRead:
			out[i] = t.qpRead[qp]
		case dirWrite:
			out[i] = t.qpWrite[qp]
		default:
			out[i] = t.qpRead[qp] + t.qpWrite[qp]
		}
	}
	return out
}

// workloadEvent aliases the generator's event type for the cache analyses.
type workloadEvent = workload.Event

// direction selects read, write, or combined traffic in shared helpers.
type direction uint8

const (
	dirBoth direction = iota
	dirRead
	dirWrite
)

func (d direction) String() string {
	switch d {
	case dirRead:
		return "read"
	case dirWrite:
		return "write"
	}
	return "total"
}
