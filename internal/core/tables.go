package core

import (
	"fmt"
	"sort"
	"strings"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// Table2Result is the dataset high-level summary (Table 2).
type Table2Result struct {
	Users, VMs, VDs        int
	MedianVMsPerUser       float64
	MaxVMsPerUser          int
	MedianVDsPerUser       float64
	MaxVDsPerUser          int
	TotalWriteGiB          float64
	TotalReadGiB           float64
	EstWriteTraceM         float64 // traced (1/3200-sampled) writes, millions
	EstReadTraceM          float64
	DurationSec, Nodes, BS int
}

// Table2Summary computes the Table 2 counterpart for the synthetic fleet.
func (s *Study) Table2Summary() Table2Result {
	t := s.ensureTotals()
	top := s.Fleet.Topology
	res := Table2Result{
		Users: top.Users, VMs: len(top.VMs), VDs: len(top.VDs),
		DurationSec: s.Dur, Nodes: len(top.Nodes), BS: len(top.StorageNodes),
	}
	vmPerUser := make([]float64, top.Users)
	vdPerUser := make([]float64, top.Users)
	for i := range top.VMs {
		vmPerUser[top.VMs[i].User]++
		vdPerUser[top.VMs[i].User] += float64(len(top.VMs[i].VDs))
	}
	res.MedianVMsPerUser = stats.Median(vmPerUser)
	res.MaxVMsPerUser = int(stats.Max(vmPerUser))
	res.MedianVDsPerUser = stats.Median(vdPerUser)
	res.MaxVDsPerUser = int(stats.Max(vdPerUser))

	var rBytes, wBytes, rOps, wOps float64
	for vd := range top.VDs {
		rBytes += t.vdRead[vd]
		wBytes += t.vdWrite[vd]
		m := &s.Fleet.Models[vd]
		rOps += t.vdRead[vd] / m.ReadIOSize
		wOps += t.vdWrite[vd] / m.WriteIOSize
	}
	res.TotalReadGiB = rBytes / float64(1<<30)
	res.TotalWriteGiB = wBytes / float64(1<<30)
	res.EstReadTraceM = rOps / 3200 / 1e6
	res.EstWriteTraceM = wOps / 3200 / 1e6
	return res
}

// Render prints the summary as a two-column table.
func (r Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: dataset summary (%ds window)\n", r.DurationSec)
	rows := [][2]string{
		{"users / VMs / VDs", fmt.Sprintf("%d / %d / %d", r.Users, r.VMs, r.VDs)},
		{"compute nodes / BlockServers", fmt.Sprintf("%d / %d", r.Nodes, r.BS)},
		{"median / max VMs per user", fmt.Sprintf("%.0f / %d", r.MedianVMsPerUser, r.MaxVMsPerUser)},
		{"median / max VDs per user", fmt.Sprintf("%.0f / %d", r.MedianVDsPerUser, r.MaxVDsPerUser)},
		{"total write / read traffic (GiB)", fmt.Sprintf("%.1f / %.1f", r.TotalWriteGiB, r.TotalReadGiB)},
		{"est. write / read traces (millions)", fmt.Sprintf("%.3f / %.3f", r.EstWriteTraceM, r.EstReadTraceM)},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-38s %s\n", row[0], row[1])
	}
	return b.String()
}

// LevelStats is one cell group of Table 3: read/write CCRs and median P2A at
// one aggregation level in one DC.
type LevelStats struct {
	Level               string
	CCR1Read, CCR1Write float64 // 1%-CCR, percent
	CCR20Read, CCR20Wr  float64 // 20%-CCR, percent
	P2AMedR, P2AMedW    float64 // 50%ile P2A
	Entities            int
}

// Table3Result is the baseline statistics of Table 3: per DC, stats at the
// CN / VM / SN / Seg aggregation levels.
type Table3Result struct {
	DCs []DCBaseline
}

// DCBaseline is one DC's column group.
type DCBaseline struct {
	DC     cluster.DCID
	Levels []LevelStats // CN, VM, SN, Seg
}

// Table3Baseline computes spatial (CCR) and temporal (P2A) skewness at the
// compute-node, VM, storage-node, and segment levels for every DC.
func (s *Study) Table3Baseline() Table3Result {
	t := s.ensureTotals()
	top := s.Fleet.Topology
	var res Table3Result

	for dc := 0; dc < top.DCs; dc++ {
		dcID := cluster.DCID(dc)
		// Aggregated per-entity series for CN, VM, SN (P2A needs series).
		cnSeries := map[cluster.NodeID]*rwSeries{}
		vmSeries := map[cluster.VMID]*rwSeries{}
		snSeries := map[cluster.StorageNodeID]*rwSeries{}

		var segR, segW, segP2AR, segP2AW []float64

		for vdIdx := range top.VDs {
			vd := &top.VDs[vdIdx]
			vm := &top.VMs[vd.VM]
			node := &top.Nodes[vm.Node]
			if node.DC != dcID {
				continue
			}
			m := &s.Fleet.Models[vdIdx]
			series := s.Fleet.VDSeries(cluster.VDID(vdIdx), s.Dur)

			cn := getAgg(cnSeries, node.ID, s.Dur)
			vma := getAgg(vmSeries, vm.ID, s.Dur)
			for i, smp := range series {
				cn.r[i] += smp.ReadBps
				cn.w[i] += smp.WriteBps
				vma.r[i] += smp.ReadBps
				vma.w[i] += smp.WriteBps
			}
			for segPos, seg := range vd.Segments {
				sn := getAgg(snSeries, s.Fleet.Seg2BS.BSOf(seg), s.Dur)
				rw, ww := m.SegWeightsRead[segPos], m.SegWeightsWrite[segPos]
				for i, smp := range series {
					sn.r[i] += smp.ReadBps * rw
					sn.w[i] += smp.WriteBps * ww
				}
				segR = append(segR, t.segRead[seg])
				segW = append(segW, t.segWrite[seg])
				// A segment's series is its VD's series scaled per
				// direction, so its P2A equals the VD's.
				segP2AR = append(segP2AR, t.vdP2AR[vdIdx])
				segP2AW = append(segP2AW, t.vdP2AW[vdIdx])
			}
		}

		base := DCBaseline{DC: dcID}
		base.Levels = append(base.Levels, levelFromAggs("CN", cnSeries))
		base.Levels = append(base.Levels, levelFromAggs("VM", vmSeries))
		base.Levels = append(base.Levels, levelFromAggs("SN", snSeries))
		base.Levels = append(base.Levels, LevelStats{
			Level:     "Seg",
			CCR1Read:  100 * stats.CCR(segR, 0.01),
			CCR1Write: 100 * stats.CCR(segW, 0.01),
			CCR20Read: 100 * stats.CCR(segR, 0.20),
			CCR20Wr:   100 * stats.CCR(segW, 0.20),
			P2AMedR:   stats.Median(stats.DropNaN(segP2AR)),
			P2AMedW:   stats.Median(stats.DropNaN(segP2AW)),
			Entities:  len(segR),
		})
		res.DCs = append(res.DCs, base)
	}
	return res
}

// rwSeries is a per-entity pair of read/write time series.
type rwSeries struct{ r, w []float64 }

func getAgg[K comparable](m map[K]*rwSeries, k K, dur int) *rwSeries {
	a, ok := m[k]
	if !ok {
		a = &rwSeries{r: make([]float64, dur), w: make([]float64, dur)}
		m[k] = a
	}
	return a
}

func levelFromAggs[K comparable](name string, m map[K]*rwSeries) LevelStats {
	var totR, totW, p2aR, p2aW []float64
	for _, a := range m {
		totR = append(totR, stats.Sum(a.r))
		totW = append(totW, stats.Sum(a.w))
		p2aR = append(p2aR, stats.P2A(a.r))
		p2aW = append(p2aW, stats.P2A(a.w))
	}
	return LevelStats{
		Level:     name,
		CCR1Read:  100 * stats.CCR(totR, 0.01),
		CCR1Write: 100 * stats.CCR(totW, 0.01),
		CCR20Read: 100 * stats.CCR(totR, 0.20),
		CCR20Wr:   100 * stats.CCR(totW, 0.20),
		P2AMedR:   stats.Median(stats.DropNaN(p2aR)),
		P2AMedW:   stats.Median(stats.DropNaN(p2aW)),
		Entities:  len(m),
	}
}

// Render prints Table 3 in the paper's layout (read/write separated by '/').
func (r Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: baseline statistics (values read / write)\n")
	fmt.Fprintf(&b, "  %-6s %-5s %-15s %-15s %-21s %s\n", "DC", "Level", "1%-CCR", "20%-CCR", "50%ile P2A", "n")
	for _, dc := range r.DCs {
		for _, lv := range dc.Levels {
			fmt.Fprintf(&b, "  DC-%-3d %-5s %6.1f / %6.1f %6.1f / %6.1f %9.1f / %9.1f %d\n",
				dc.DC+1, lv.Level,
				lv.CCR1Read, lv.CCR1Write,
				lv.CCR20Read, lv.CCR20Wr,
				lv.P2AMedR, lv.P2AMedW, lv.Entities)
		}
	}
	return b.String()
}

// AppRow is one row of Table 4.
type AppRow struct {
	App                 cluster.AppClass
	CCR1Read, CCR1Write float64 // percent, VM level within the class
	CCR20Read, CCR20Wr  float64
	ShareRead, ShareWr  float64 // percent of fleet traffic
	VMs                 int
}

// Table4Result is the per-application skewness analysis of Table 4.
type Table4Result struct {
	Rows []AppRow
}

// Table4ByApp groups VM traffic by inferred application class.
func (s *Study) Table4ByApp() Table4Result {
	t := s.ensureTotals()
	top := s.Fleet.Topology
	byApp := make(map[cluster.AppClass]*struct{ r, w []float64 })
	var totR, totW float64
	for i := range top.VMs {
		app := top.VMs[i].App
		a, ok := byApp[app]
		if !ok {
			a = &struct{ r, w []float64 }{}
			byApp[app] = a
		}
		a.r = append(a.r, t.vmRead[i])
		a.w = append(a.w, t.vmWrite[i])
		totR += t.vmRead[i]
		totW += t.vmWrite[i]
	}
	var res Table4Result
	for app, a := range byApp {
		res.Rows = append(res.Rows, AppRow{
			App:       app,
			CCR1Read:  100 * stats.CCR(a.r, 0.01),
			CCR1Write: 100 * stats.CCR(a.w, 0.01),
			CCR20Read: 100 * stats.CCR(a.r, 0.20),
			CCR20Wr:   100 * stats.CCR(a.w, 0.20),
			ShareRead: 100 * stats.Sum(a.r) / totR,
			ShareWr:   100 * stats.Sum(a.w) / totW,
			VMs:       len(a.r),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].CCR1Read < res.Rows[j].CCR1Read })
	return res
}

// Render prints Table 4.
func (r Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: skewness by application type (read / write)\n")
	fmt.Fprintf(&b, "  %-11s %-15s %-15s %-15s %s\n", "App", "1%-CCR", "20%-CCR", "share (%)", "VMs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-11s %6.1f / %6.1f %6.1f / %6.1f %6.1f / %6.1f %d\n",
			row.App, row.CCR1Read, row.CCR1Write,
			row.CCR20Read, row.CCR20Wr, row.ShareRead, row.ShareWr, row.VMs)
	}
	return b.String()
}
