package core

import (
	"reflect"
	"testing"

	"ebslab/internal/workload"
)

// TestEnsureTotalsWorkerCountInvariance pins the aggregation pass's
// determinism contract: a Study with one worker and a Study with many must
// produce identical totals, down to float bit patterns.
func TestEnsureTotalsWorkerCountInvariance(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.DCs = 1
	cfg.NodesPerDC = 24
	cfg.DurationSec = 30
	mk := func(workers int) *Study {
		f, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStudyFromFleet(f)
		s.Workers = workers
		return s
	}
	ref := mk(1).ensureTotals()
	if len(ref.vdRead) == 0 || len(ref.qpRead) == 0 || len(ref.vmRead) == 0 {
		t.Fatal("reference totals are empty")
	}
	for _, workers := range []int{2, 8} {
		got := mk(workers).ensureTotals()
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("totals differ between 1 and %d workers", workers)
		}
	}
}
