package core

import (
	"math"
	"testing"
)

// validatable is what every option struct in options.go implements.
type validatable interface{ Validate() error }

func TestOptionsZeroValuesValidate(t *testing.T) {
	zeros := []validatable{
		Fig2dOptions{}, Fig2efOptions{}, Fig3deOptions{}, Fig3fgOptions{},
		Fig4aOptions{}, Fig4bOptions{}, Fig4cOptions{}, Fig5aOptions{},
		Fig5bOptions{}, Fig5cOptions{}, Fig6Options{}, Fig7aOptions{},
		Fig7bcOptions{}, Fig7dOptions{}, RebindOptions{}, DispatchOptions{},
		HostingOptions{}, CachePolicyOptions{}, PredictorOptions{},
		CacheDeploymentOptions{}, FailoverOptions{}, PageCacheOptions{},
	}
	for _, o := range zeros {
		if err := o.Validate(); err != nil {
			t.Errorf("%T zero value rejected: %v", o, err)
		}
	}
}

func TestOptionsValidateRejectsGarbage(t *testing.T) {
	bad := []validatable{
		Fig2dOptions{MaxNodes: -1},
		Fig2efOptions{WinSec: -5},
		Fig3deOptions{Rates: []float64{0.2, math.NaN()}},
		Fig3deOptions{Rates: []float64{-0.2}},
		Fig3deOptions{Rates: []float64{1.5}},
		Fig3fgOptions{PeriodSec: -60},
		Fig4aOptions{Windows: []int{2, 0}},
		Fig4cOptions{EpochLen: -1},
		Fig6Options{MaxEventsPerVD: -100},
		Fig7bcOptions{BlockMiB: -2048},
		Fig7dOptions{Threshold: math.NaN()},
		Fig7dOptions{Threshold: -0.1},
		Fig7dOptions{Threshold: 1.01},
		CacheDeploymentOptions{CNFrac: math.NaN()},
		CacheDeploymentOptions{CNFrac: 2},
		PageCacheOptions{MaxVDs: -3},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%T %+v passed Validate", o, o)
		}
	}
}

// TestStudyMethodsRejectInvalidOptions verifies the guard is actually wired
// into the method entry points, not just available.
func TestStudyMethodsRejectInvalidOptions(t *testing.T) {
	s := study(t)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted invalid options without panicking", name)
			}
		}()
		f()
	}
	mustPanic("Fig3deReduction", func() { s.Fig3deReduction(Fig3deOptions{Rates: []float64{math.NaN()}}) })
	mustPanic("Fig7dSpaceUtilization", func() { s.Fig7dSpaceUtilization(Fig7dOptions{Threshold: math.Inf(1)}) })
	mustPanic("AblateCacheDeployment", func() { s.AblateCacheDeployment(CacheDeploymentOptions{MaxVDs: -1}) })
	mustPanic("Fig4aFrequentMigration", func() { s.Fig4aFrequentMigration(Fig4aOptions{PeriodSec: -5}) })
}
