package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ebslab/internal/cache"
	"ebslab/internal/cluster"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// BlockSizesMiB are the block sizes the §7 analyses sweep.
var BlockSizesMiB = []int64{64, 256, 1024, 2048}

// studyVDs returns up to k VDs for the event-driven cache analyses. The
// paper analyzes every VD; at our scale we take a stratified sample across
// the traffic spectrum (every n-th VD of the traffic-sorted list, busiest
// first), restricted to disks active enough to yield events. Sampling only
// the busiest would bias toward read-burst-dominated disks.
func (s *Study) studyVDs(k int) []cluster.VDID {
	t := s.ensureTotals()
	m := s.Fleet.Models
	type vt struct {
		vd cluster.VDID
		v  float64
	}
	var all []vt
	for vd := range s.Fleet.Topology.VDs {
		ops := t.vdRead[vd]/m[vd].ReadIOSize + t.vdWrite[vd]/m[vd].WriteIOSize
		if ops < 500 {
			continue
		}
		all = append(all, vt{cluster.VDID(vd), t.vdRead[vd] + t.vdWrite[vd]})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	if k <= 0 || k > len(all) {
		k = len(all)
	}
	out := make([]cluster.VDID, 0, k)
	stride := len(all) / k
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(all) && len(out) < k; i += stride {
		out = append(out, all[i].vd)
	}
	return out
}

// vdAccesses generates a VD's IO stream capped near maxEvents by choosing a
// sampling rate from the expected op count.
func (s *Study) vdAccesses(vd cluster.VDID, maxEvents int) []cache.Access {
	t := s.ensureTotals()
	m := &s.Fleet.Models[vd]
	expOps := t.vdRead[vd]/m.ReadIOSize + t.vdWrite[vd]/m.WriteIOSize
	sampleEvery := 1
	if maxEvents > 0 && expOps > float64(maxEvents) {
		sampleEvery = int(math.Ceil(expOps / float64(maxEvents)))
	}
	var out []cache.Access
	s.Fleet.GenEvents(vd, s.Dur, sampleEvery, func(ev workloadEvent) {
		out = append(out, cache.Access{
			TimeUS: ev.TimeUS, Offset: ev.Offset, Size: ev.Size,
			Write: ev.Op == trace.OpWrite,
		})
	})
	return out
}

// Fig6Result holds the hottest-block statistics of Figure 6 for each block
// size.
type Fig6Result struct {
	BlockMiB []int64
	// Medians across study VDs.
	MedianAccessRate []float64 // Fig 6(a)
	MedianBlockShare []float64 // Fig 6(b)
	// Fractions of hottest blocks that are write- / read-dominant (Fig 6c).
	WriteDomFrac, ReadDomFrac []float64
	// MeanHotRate is the mean Fig 6(d) hot rate.
	MeanHotRate []float64
	VDs         int
}

// Fig6HottestBlocks analyzes LBA hotspots over the busiest maxVDs disks.
func (s *Study) Fig6HottestBlocks(opt Fig6Options) Fig6Result {
	mustOpt(opt.Validate())
	maxVDs, maxEventsPerVD := opt.MaxVDs, opt.MaxEventsPerVD
	if maxVDs <= 0 {
		maxVDs = 48
	}
	if maxEventsPerVD <= 0 {
		maxEventsPerVD = 20000
	}
	vds := s.studyVDs(maxVDs)
	res := Fig6Result{BlockMiB: BlockSizesMiB, VDs: len(vds)}
	windowUS := int64(s.Dur) * 1_000_000 / 15 // 15 sub-windows per window
	for _, mib := range BlockSizesMiB {
		blockSize := mib << 20
		var rates, shares, hotRates []float64
		var wd, rd, counted int
		for _, vd := range vds {
			accesses := s.vdAccesses(vd, maxEventsPerVD)
			capBytes := s.Fleet.Topology.VDs[vd].Capacity
			rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
			if math.IsNaN(rep.AccessRate) {
				continue
			}
			counted++
			rates = append(rates, rep.AccessRate)
			shares = append(shares, rep.BlockShare)
			if rep.WrRatio > 1.0/3 {
				wd++
			}
			if rep.WrRatio < -1.0/3 {
				rd++
			}
			hr := cache.HotRate(accesses, blockSize, rep.Hottest, rep.AccessRate, windowUS)
			hotRates = appendNotNaN(hotRates, hr)
		}
		res.MedianAccessRate = append(res.MedianAccessRate, stats.Median(rates))
		res.MedianBlockShare = append(res.MedianBlockShare, stats.Median(shares))
		if counted > 0 {
			res.WriteDomFrac = append(res.WriteDomFrac, float64(wd)/float64(counted))
			res.ReadDomFrac = append(res.ReadDomFrac, float64(rd)/float64(counted))
		} else {
			res.WriteDomFrac = append(res.WriteDomFrac, math.NaN())
			res.ReadDomFrac = append(res.ReadDomFrac, math.NaN())
		}
		res.MeanHotRate = append(res.MeanHotRate, stats.Mean(hotRates))
	}
	return res
}

// Render prints Fig 6.
func (r Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: hottest-block statistics over %d busiest VDs\n", r.VDs)
	fmt.Fprintf(&b, "  %-9s %-12s %-12s %-12s %-12s %s\n",
		"block", "access rate", "LBA share", "write-dom", "read-dom", "hot rate")
	for i, mib := range r.BlockMiB {
		fmt.Fprintf(&b, "  %4d MiB  %10.1f%%  %10.1f%%  %10.1f%%  %10.1f%%  %.1f%%\n",
			mib, 100*r.MedianAccessRate[i], 100*r.MedianBlockShare[i],
			100*r.WriteDomFrac[i], 100*r.ReadDomFrac[i], 100*r.MeanHotRate[i])
	}
	return b.String()
}
