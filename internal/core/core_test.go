package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"ebslab/internal/workload"
)

// The experiments are statistical, so the tests share one moderately-sized
// fleet and assert the paper's qualitative shapes rather than point values.
var (
	testStudyOnce sync.Once
	testStudy     *Study
	testStudyErr  error
)

func study(t *testing.T) *Study {
	t.Helper()
	testStudyOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.DCs = 2
		cfg.NodesPerDC = 60
		cfg.BSPerDC = 12
		cfg.BSPerCluster = 6
		cfg.Users = 80
		cfg.DurationSec = 300
		testStudy, testStudyErr = NewStudy(cfg)
	})
	if testStudyErr != nil {
		t.Fatalf("NewStudy: %v", testStudyErr)
	}
	return testStudy
}

func TestNewStudyRejectsBadConfig(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.DCs = 0
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("NewStudy accepted invalid config")
	}
}

func TestNewStudyFromFleet(t *testing.T) {
	s := study(t)
	s2 := NewStudyFromFleet(s.Fleet)
	if s2.Dur != s.Fleet.Cfg.DurationSec {
		t.Fatalf("Dur = %d", s2.Dur)
	}
}

func TestTable2Summary(t *testing.T) {
	s := study(t)
	r := s.Table2Summary()
	if r.Users != 80 || r.VMs == 0 || r.VDs < r.VMs {
		t.Fatalf("summary counts: %+v", r)
	}
	if r.MaxVMsPerUser < int(r.MedianVMsPerUser) {
		t.Fatal("max VMs per user below median")
	}
	if r.TotalWriteGiB <= 0 || r.TotalReadGiB <= 0 {
		t.Fatal("zero traffic")
	}
	if !strings.Contains(r.Render(), "Table 2") {
		t.Fatal("render missing title")
	}
}

func TestTable3ShapesHold(t *testing.T) {
	s := study(t)
	r := s.Table3Baseline()
	if len(r.DCs) != 2 {
		t.Fatalf("DCs = %d", len(r.DCs))
	}
	for _, dc := range r.DCs {
		byLevel := map[string]LevelStats{}
		for _, lv := range dc.Levels {
			byLevel[lv.Level] = lv
			if lv.CCR1Read < 0 || lv.CCR1Read > 100 || lv.CCR20Read < lv.CCR1Read {
				t.Fatalf("DC %d level %s: CCR inconsistent: %+v", dc.DC, lv.Level, lv)
			}
		}
		// O1/O2: VM-level temporal skew dwarfs SN-level; read P2A exceeds
		// write P2A at the VM level.
		vm, sn := byLevel["VM"], byLevel["SN"]
		if !(vm.P2AMedR > sn.P2AMedR) {
			t.Errorf("DC %d: VM read P2A %v not above SN %v", dc.DC, vm.P2AMedR, sn.P2AMedR)
		}
		if !(vm.P2AMedR > vm.P2AMedW) {
			t.Errorf("DC %d: VM read P2A %v not above write %v", dc.DC, vm.P2AMedR, vm.P2AMedW)
		}
		// Segment-level spatial skew is the worst of all levels.
		seg := byLevel["Seg"]
		if !(seg.CCR1Read >= vm.CCR1Read) {
			t.Errorf("DC %d: Seg 1%%-CCR %v below VM %v", dc.DC, seg.CCR1Read, vm.CCR1Read)
		}
	}
	if !strings.Contains(r.Render(), "Table 3") {
		t.Fatal("render missing title")
	}
}

func TestTable4Shapes(t *testing.T) {
	s := study(t)
	r := s.Table4ByApp()
	if len(r.Rows) == 0 {
		t.Fatal("no app rows")
	}
	var shareR, shareW float64
	byApp := map[string]AppRow{}
	for _, row := range r.Rows {
		shareR += row.ShareRead
		shareW += row.ShareWr
		byApp[row.App.String()] = row
	}
	if math.Abs(shareR-100) > 1 || math.Abs(shareW-100) > 1 {
		t.Fatalf("shares do not sum to 100: %v / %v", shareR, shareW)
	}
	// BigData carries the most traffic but the least skew (Table 4's core
	// finding).
	big, ok := byApp["BigData"]
	if !ok {
		t.Fatal("no BigData row")
	}
	for name, row := range byApp {
		if name == "BigData" {
			continue
		}
		if row.ShareRead+row.ShareWr > big.ShareRead+big.ShareWr {
			t.Errorf("%s share %v exceeds BigData %v", name, row.ShareRead+row.ShareWr, big.ShareRead+big.ShareWr)
		}
	}
	if !strings.Contains(r.Render(), "Table 4") {
		t.Fatal("render missing title")
	}
}

func TestFig2aShapes(t *testing.T) {
	s := study(t)
	r := s.Fig2aWTCoV([]int{30, 150})
	if len(r.MedianRead) != 2 {
		t.Fatalf("scales = %d", len(r.MedianRead))
	}
	for i := range r.MedianRead {
		if !(r.MedianRead[i] > 0.2) || !(r.MedianWrite[i] > 0.2) {
			t.Errorf("WT-CoV medians implausibly low: %+v", r)
		}
		if r.P90Read[i] < r.MedianRead[i] {
			t.Errorf("p90 below median")
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig2bShapes(t *testing.T) {
	s := study(t)
	r := s.Fig2bThreeTier()
	// VM->VD skew is extreme (paper: ~0.97).
	if !(r.VM2VDRead > 0.7) || !(r.VM2VDWrite > 0.7) {
		t.Errorf("VM->VD CoV too low: %+v", r)
	}
	// Write VD->QP skew exceeds read (paper: 0.81 vs 0.39).
	if !(r.VD2QPWrite > r.VD2QPRead) {
		t.Errorf("VD->QP write CoV %v not above read %v", r.VD2QPWrite, r.VD2QPRead)
	}
	// Type III dominates (paper: 78.9%).
	if !(r.TypeIIIPct > r.TypeIIPct) || !(r.TypeIIIPct > r.TypeIPct) {
		t.Errorf("type shares: %+v", r)
	}
	total := r.TypeIPct + r.TypeIIPct + r.TypeIIIPct
	if math.Abs(total-100) > 1 {
		t.Errorf("type shares sum to %v", total)
	}
	// The hottest VM dominates node traffic (paper: 86.4% / 75.0%).
	if !(r.HotVMShareRead > 50) || !(r.HotVMShareWrite > 50) {
		t.Errorf("hottest-VM shares too low: %+v", r)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig2cShapes(t *testing.T) {
	s := study(t)
	r := s.Fig2cHottestQP()
	if len(r.SharesRead) == 0 || len(r.SharesWrite) == 0 {
		t.Fatal("no share samples")
	}
	for _, v := range r.SharesRead {
		if v < 0 || v > 1 {
			t.Fatalf("share %v outside [0,1]", v)
		}
	}
	// A sizable fraction of nodes funnel >80% through one QP.
	if !(r.FracAbove80Read > 0.1) {
		t.Errorf("read frac above 80%% = %v, want > 0.1", r.FracAbove80Read)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig2dShapes(t *testing.T) {
	s := study(t)
	r := s.Fig2dRebinding(Fig2dOptions{MaxNodes: 30, WinSec: 10})
	if len(r.Points) == 0 {
		t.Fatal("no rebinding points")
	}
	// §4.3: rebinding helps only a minority of nodes.
	if !(r.FracImproved < 0.7) {
		t.Errorf("rebinding improved %v of nodes; expected a minority", r.FracImproved)
	}
	for _, p := range r.Points {
		if p.Ratio < 0 || p.Ratio > 1 {
			t.Fatalf("rebinding ratio %v outside [0,1]", p.Ratio)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig2efShapes(t *testing.T) {
	s := study(t)
	r := s.Fig2efBurstSeries(Fig2efOptions{MaxNodes: 20, WinSec: 10})
	if len(r.BurstySeries) == 0 || len(r.CalmSeries) == 0 {
		t.Fatal("missing series")
	}
	if !(r.BurstyP2A >= r.CalmP2A) {
		t.Errorf("bursty P2A %v below calm %v", r.BurstyP2A, r.CalmP2A)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig3aShapes(t *testing.T) {
	s := study(t)
	r := s.Fig3aSingleVDCase()
	if r.NumVDs == 0 {
		t.Skip("no throttled multi-VD VM in test window")
	}
	// The showcased case must have headroom while throttled.
	if !(r.PeakRAR > 0.3) {
		t.Errorf("peak RAR %v too low for a showcase", r.PeakRAR)
	}
	if len(r.VDNorm) != s.Dur || len(r.VMNorm) != s.Dur {
		t.Fatalf("series lengths %d/%d", len(r.VDNorm), len(r.VMNorm))
	}
	for i := range r.VDNorm {
		if r.VDNorm[i] > r.VMNorm[i]+1e-9 {
			t.Fatal("single VD exceeds VM total")
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig3bShapes(t *testing.T) {
	s := study(t)
	for _, multiVM := range []bool{false, true} {
		r := s.Fig3bRAR(multiVM)
		if r.Events == 0 {
			t.Skipf("no throttle events (%s)", r.Scope)
		}
		// §5.1: abundant headroom during throttles.
		if !(r.MedianRARTput > 0.3) {
			t.Errorf("%s: median RAR %v too low", r.Scope, r.MedianRARTput)
		}
		// §5.2: throttling is one-sided and write-driven; throughput
		// throttles far outnumber IOPS throttles.
		if !(r.WriteDriven > r.ReadDriven) {
			t.Errorf("%s: write-driven %v not above read-driven %v", r.Scope, r.WriteDriven, r.ReadDriven)
		}
		if !(r.Mixed < 0.3) {
			t.Errorf("%s: mixed fraction %v too high", r.Scope, r.Mixed)
		}
		if !(r.TputOverIOPS > 1) {
			t.Errorf("%s: tput/IOPS ratio %v not above 1", r.Scope, r.TputOverIOPS)
		}
		if r.Render() == "" {
			t.Fatal("empty render")
		}
	}
}

func TestFig3deShapes(t *testing.T) {
	s := study(t)
	r := s.Fig3deReduction(Fig3deOptions{})
	if len(r.Rates) != 4 {
		t.Fatalf("rates = %v", r.Rates)
	}
	// Reduction rate decreases monotonically with the lending rate.
	for i := 1; i < len(r.Rates); i++ {
		if !math.IsNaN(r.MedianRRTput[i]) && r.MedianRRTput[i] > r.MedianRRTput[i-1]+1e-9 {
			t.Errorf("RR tput not decreasing: %v", r.MedianRRTput)
		}
	}
	for i := range r.Rates {
		if !math.IsNaN(r.MedianRRTput[i]) && (r.MedianRRTput[i] <= 0 || r.MedianRRTput[i] > 1) {
			t.Errorf("RR outside (0,1]: %v", r.MedianRRTput[i])
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig3fgShapes(t *testing.T) {
	s := study(t)
	r := s.Fig3fgLendingGain(Fig3fgOptions{Rates: []float64{0.4, 0.8}, PeriodSec: 60})
	if r.Groups == 0 {
		t.Skip("no throttled groups")
	}
	// Lending yields positive gains for most groups at moderate rates, and
	// negative gains exist (the paper's §5.3 caution).
	if !(r.PosFrac[0] > 0.5) {
		t.Errorf("positive fraction at p=0.4 = %v", r.PosFrac[0])
	}
	for i := range r.Rates {
		if r.PosFrac[i]+r.NegFrac[i] > 1+1e-9 {
			t.Errorf("fractions exceed 1 at p=%v", r.Rates[i])
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig4aShapes(t *testing.T) {
	s := study(t)
	r := s.Fig4aFrequentMigration(Fig4aOptions{PeriodSec: 5, Windows: []int{1, 2, 4}})
	if len(r.WindowPeriods) != 3 {
		t.Fatalf("windows = %v", r.WindowPeriods)
	}
	// Larger windows catch at least as many frequent migrations.
	for i := 1; i < 3; i++ {
		a, b := r.MaxProp[i-1], r.MaxProp[i]
		if !math.IsNaN(a) && !math.IsNaN(b) && b < a-1e-9 {
			t.Errorf("max proportion not monotone in window: %v", r.MaxProp)
		}
	}
	for _, props := range r.Proportions {
		for _, p := range props {
			if p < 0 || p > 1 {
				t.Fatalf("proportion %v outside [0,1]", p)
			}
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig4bShapes(t *testing.T) {
	s := study(t)
	r := s.Fig4bImporterSelection(Fig4bOptions{PeriodSec: 5})
	if len(r.Policies) != 5 {
		t.Fatalf("policies = %v", r.Policies)
	}
	idx := map[string]int{}
	for i, p := range r.Policies {
		idx[p] = i
	}
	// §6.1.2: the oracle importer keeps placements valid at least as long
	// as the production min-traffic heuristic.
	ideal, minT := r.MedianInterval[idx["ideal"]], r.MedianInterval[idx["min-traffic"]]
	if !math.IsNaN(ideal) && !math.IsNaN(minT) && ideal < minT*0.8 {
		t.Errorf("ideal interval %v well below min-traffic %v", ideal, minT)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig4cShapes(t *testing.T) {
	s := study(t)
	r := s.Fig4cPredictionMSE(Fig4cOptions{PeriodSec: 5, EpochLen: 20})
	if len(r.Methods) != 5 {
		t.Fatalf("methods = %v", r.Methods)
	}
	get := func(prefix string) float64 {
		for i, m := range r.Methods {
			if strings.HasPrefix(m, prefix) {
				return r.MeanNormMSE[i]
			}
		}
		t.Fatalf("method %s missing", prefix)
		return 0
	}
	// §6.1.3 orderings: per-period attention beats per-epoch attention;
	// ARIMA beats the linear fit.
	if !(get("P5") < get("P4")) {
		t.Errorf("per-period attention %v not below per-epoch %v", get("P5"), get("P4"))
	}
	if !(get("P2") < get("P1")) {
		t.Errorf("ARIMA %v not below linear %v", get("P2"), get("P1"))
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5aShapes(t *testing.T) {
	s := study(t)
	r := s.Fig5aReadWriteCoV(Fig5aOptions{PeriodSec: 5})
	if len(r.ReadCoV) == 0 {
		t.Fatal("no clusters measured")
	}
	// §6.2.1: read skew >= write skew for nearly all clusters.
	if !(r.FracAboveDiagonal > 0.7) {
		t.Errorf("above-diagonal fraction = %v", r.FracAboveDiagonal)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5bShapes(t *testing.T) {
	s := study(t)
	r := s.Fig5bSegmentDominance(Fig5bOptions{PeriodSec: 5})
	if len(r.MedianAbsWr) == 0 {
		t.Fatal("no clusters measured")
	}
	// §6.2.2: top-traffic segments are strongly one-sided.
	if !(r.FracAbove09 > 0.5) {
		t.Errorf("fraction of clusters above 0.9 = %v", r.FracAbove09)
	}
	for _, v := range r.MedianAbsWr {
		if v < 0 || v > 1 {
			t.Fatalf("|wr_ratio| %v outside [0,1]", v)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5cShapes(t *testing.T) {
	s := study(t)
	r := s.Fig5cWriteThenRead(Fig5cOptions{PeriodSec: 5})
	// Write-then-read must not leave read balance worse, and must not
	// meaningfully hurt write balance (§6.2.2's surprise: it helps).
	if !(r.WTRReadCoV <= r.WriteOnlyReadCoV+0.05) {
		t.Errorf("WTR read CoV %v above write-only %v", r.WTRReadCoV, r.WriteOnlyReadCoV)
	}
	if !(r.WTRWriteCoV <= r.WriteOnlyWriteCoV+0.05) {
		t.Errorf("WTR write CoV %v above write-only %v", r.WTRWriteCoV, r.WriteOnlyWriteCoV)
	}
	if r.ReadMigs == 0 {
		t.Error("write-then-read produced no read migrations")
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig6Shapes(t *testing.T) {
	s := study(t)
	r := s.Fig6HottestBlocks(Fig6Options{MaxVDs: 24, MaxEventsPerVD: 6000})
	if r.VDs == 0 {
		t.Fatal("no study VDs")
	}
	for i := range r.BlockMiB {
		// §7.1: hottest-block access rate far exceeds its LBA share.
		if !(r.MedianAccessRate[i] > r.MedianBlockShare[i]) {
			t.Errorf("block %d MiB: access rate %v not above share %v",
				r.BlockMiB[i], r.MedianAccessRate[i], r.MedianBlockShare[i])
		}
		// §7.2: write-dominant hottest blocks outnumber read-dominant ones.
		if !(r.WriteDomFrac[i] > r.ReadDomFrac[i]) {
			t.Errorf("block %d MiB: write-dom %v not above read-dom %v",
				r.BlockMiB[i], r.WriteDomFrac[i], r.ReadDomFrac[i])
		}
		// §7.2: hot rate near 50% (temporal continuity).
		if !(r.MeanHotRate[i] > 0.25 && r.MeanHotRate[i] < 0.8) {
			t.Errorf("block %d MiB: hot rate %v far from 0.5", r.BlockMiB[i], r.MeanHotRate[i])
		}
	}
	// Access rate grows with block size.
	last := len(r.BlockMiB) - 1
	if !(r.MedianAccessRate[last] >= r.MedianAccessRate[0]) {
		t.Errorf("access rate not increasing with block size: %v", r.MedianAccessRate)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig7aShapes(t *testing.T) {
	s := study(t)
	r := s.Fig7aHitRatio(Fig7aOptions{MaxVDs: 16, MaxEventsPerVD: 6000})
	last := len(r.BlockMiB) - 1
	// §7.3.1: sequential-write hotspots make FIFO ~= LRU.
	for i := range r.BlockMiB {
		if math.Abs(r.FIFOMed[i]-r.LRUMed[i]) > 0.1 {
			t.Errorf("block %d MiB: FIFO %v vs LRU %v diverge", r.BlockMiB[i], r.FIFOMed[i], r.LRUMed[i])
		}
	}
	// Frozen cache catches up with (or passes) LRU at large blocks while
	// trailing at the smallest.
	if !(r.FCMed[last] > r.FCMed[0]) {
		t.Errorf("FC hit ratio not growing with block size: %v", r.FCMed)
	}
	if !(r.FCMed[last] > 0.8*r.LRUMed[last]) {
		t.Errorf("FC %v far below LRU %v at largest block", r.FCMed[last], r.LRUMed[last])
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig7bcShapes(t *testing.T) {
	s := study(t)
	r := s.Fig7bcLatencyGain(Fig7bcOptions{MaxVDs: 16, MaxEventsPerVD: 5000, BlockMiB: 2048})
	// CN-cache p0 gain is far stronger than BS-cache p0 gain (it skips the
	// whole storage cluster).
	if !math.IsNaN(r.CNWrite[0]) && !math.IsNaN(r.BSWrite[0]) {
		if !(r.CNWrite[0] < r.BSWrite[0]) {
			t.Errorf("CN p0 write gain %v not better than BS %v", r.CNWrite[0], r.BSWrite[0])
		}
	}
	// Gains are ratios in (0, ~1].
	for _, g := range [][3]float64{r.CNRead, r.CNWrite, r.BSRead, r.BSWrite} {
		for _, v := range g {
			if !math.IsNaN(v) && (v <= 0 || v > 1.2) {
				t.Errorf("gain %v outside plausible range", v)
			}
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig7dShapes(t *testing.T) {
	s := study(t)
	r := s.Fig7dSpaceUtilization(Fig7dOptions{Threshold: 0.25})
	if len(r.BlockMiB) == 0 {
		t.Fatal("no block sizes")
	}
	for i := range r.BlockMiB {
		// §7.3.2: BS-cache provisions more evenly than CN-cache.
		if !math.IsNaN(r.CNSpread[i]) && !math.IsNaN(r.BSSpread[i]) {
			if !(r.CNSpread[i] > r.BSSpread[i]) {
				t.Errorf("block %d MiB: CN spread %v not above BS %v",
					r.BlockMiB[i], r.CNSpread[i], r.BSSpread[i])
			}
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestClusterTrafficsConserveFleetTraffic(t *testing.T) {
	// Integration invariant: the per-cluster period matrices must sum to
	// exactly the fleet's total traffic (no segment lost or double-counted
	// in the renumbering).
	s := study(t)
	tt := s.ensureTotals()
	var want float64
	for vd := range s.Fleet.Topology.VDs {
		want += tt.vdRead[vd] + tt.vdWrite[vd]
	}
	var got float64
	var segs int
	for _, ct := range s.clusterTraffics(10) {
		segs += len(ct.Traffic)
		for _, rows := range ct.Traffic {
			for _, rw := range rows {
				got += rw.R + rw.W
			}
		}
	}
	if segs != len(s.Fleet.Topology.Segments) {
		t.Fatalf("clusters cover %d segments, want %d", segs, len(s.Fleet.Topology.Segments))
	}
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("cluster traffic %v != fleet traffic %v", got, want)
	}
}

func TestStudyVDsStratified(t *testing.T) {
	s := study(t)
	vds := s.studyVDs(20)
	if len(vds) == 0 || len(vds) > 20 {
		t.Fatalf("studyVDs returned %d", len(vds))
	}
	seen := map[int32]bool{}
	for _, vd := range vds {
		if seen[int32(vd)] {
			t.Fatal("duplicate study VD")
		}
		seen[int32(vd)] = true
	}
}
