package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ebslab/internal/cluster"
	"ebslab/internal/hypervisor"
	"ebslab/internal/report"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Fig2aResult holds the WT-CoV distributions of Figure 2(a) at several time
// scales.
type Fig2aResult struct {
	ScalesSec []int
	// MedianRead[i] / MedianWrite[i] are the median WT-CoV across nodes at
	// ScalesSec[i]; P90* are the 90th percentiles.
	MedianRead, MedianWrite []float64
	P90Read, P90Write       []float64
	Nodes                   int
}

// Fig2aWTCoV measures per-node worker-thread CoV under the round-robin
// binding at multiple time scales. The paper uses 1/30/60-minute scales over
// a 12 h window; scaled to our window the defaults are 30 s / 2 min / 5 min
// (pass nil for those).
func (s *Study) Fig2aWTCoV(scalesSec []int) Fig2aResult {
	if len(scalesSec) == 0 {
		scalesSec = []int{30, 120, 300}
	}
	top := s.Fleet.Topology
	res := Fig2aResult{ScalesSec: scalesSec, Nodes: len(top.Nodes)}

	// Per-node per-WT second series, built by streaming VDs once.
	type wtAgg struct{ r, w [][]float64 } // [wt][sec]
	nodeWT := make([]wtAgg, len(top.Nodes))
	for n := range top.Nodes {
		k := top.Nodes[n].WorkerNum
		nodeWT[n] = wtAgg{r: alloc2(k, s.Dur), w: alloc2(k, s.Dur)}
	}
	bindings := make([]*hypervisor.Binding, len(top.Nodes))
	qpWT := make(map[cluster.QPID]int8)
	for n := range top.Nodes {
		bindings[n] = hypervisor.RoundRobin(top, cluster.NodeID(n))
		for i, qp := range bindings[n].QPs {
			qpWT[qp] = bindings[n].WTOf[i]
		}
	}
	for vdIdx := range top.VDs {
		vd := &top.VDs[vdIdx]
		node := top.VMs[vd.VM].Node
		m := &s.Fleet.Models[vdIdx]
		series := s.Fleet.VDSeries(cluster.VDID(vdIdx), s.Dur)
		for i, qp := range vd.QPs {
			wt := qpWT[qp]
			rw, ww := m.QPWeightsRead[i], m.QPWeightsWrite[i]
			for t, smp := range series {
				nodeWT[node].r[wt][t] += smp.ReadBps * rw
				nodeWT[node].w[wt][t] += smp.WriteBps * ww
			}
		}
	}

	for _, scale := range scalesSec {
		var covR, covW []float64
		for n := range top.Nodes {
			k := top.Nodes[n].WorkerNum
			for start := 0; start+scale <= s.Dur; start += scale {
				wr := make([]float64, k)
				wwv := make([]float64, k)
				for wt := 0; wt < k; wt++ {
					for t := start; t < start+scale; t++ {
						wr[wt] += nodeWT[n].r[wt][t]
						wwv[wt] += nodeWT[n].w[wt][t]
					}
				}
				if c := stats.NormCoV(wr); !math.IsNaN(c) {
					covR = append(covR, c)
				}
				if c := stats.NormCoV(wwv); !math.IsNaN(c) {
					covW = append(covW, c)
				}
			}
		}
		res.MedianRead = append(res.MedianRead, stats.Median(covR))
		res.MedianWrite = append(res.MedianWrite, stats.Median(covW))
		res.P90Read = append(res.P90Read, stats.Quantile(covR, 0.9))
		res.P90Write = append(res.P90Write, stats.Quantile(covW, 0.9))
	}
	return res
}

func alloc2(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	backing := make([]float64, rows*cols)
	for i := range out {
		out[i], backing = backing[:cols:cols], backing[cols:]
	}
	return out
}

// Render prints Fig 2(a).
func (r Fig2aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2(a): WT-CoV by time scale (read / write)\n")
	for i, sc := range r.ScalesSec {
		fmt.Fprintf(&b, "  %4ds scale: median %.2f / %.2f   p90 %.2f / %.2f\n",
			sc, r.MedianRead[i], r.MedianWrite[i], r.P90Read[i], r.P90Write[i])
	}
	return b.String()
}

// Fig2bResult holds the three-tier CoV medians of Figure 2(b) plus the node
// taxonomy shares of §4.2.
type Fig2bResult struct {
	// Median CoVs for read / write at each tier.
	VM2QPRead, VM2QPWrite float64
	VM2VDRead, VM2VDWrite float64
	VD2QPRead, VD2QPWrite float64
	// Node type shares (of nodes with traffic), percent.
	TypeIPct, TypeIIPct, TypeIIIPct float64
	// Average traffic share of the hottest VM (read / write), percent.
	HotVMShareRead, HotVMShareWrite float64
}

// Fig2bThreeTier measures the VM-QP / VM-VD / VD-QP CoV hierarchy and
// classifies every node into the Type I/II/III taxonomy.
func (s *Study) Fig2bThreeTier() Fig2bResult {
	top := s.Fleet.Topology
	var res Fig2bResult
	var vm2qpR, vm2qpW, vm2vdR, vm2vdW, vd2qpR, vd2qpW []float64
	var nI, nII, nIII int
	var hotShareR, hotShareW []float64

	for n := range top.Nodes {
		nodeID := cluster.NodeID(n)
		readT := s.nodeQPTraffic(nodeID, dirRead)
		writeT := s.nodeQPTraffic(nodeID, dirWrite)
		both := make([]float64, len(readT))
		for i := range both {
			both[i] = readT[i] + writeT[i]
		}
		typ, _ := hypervisor.Classify(top, nodeID, both)
		switch typ {
		case hypervisor.TypeIdle:
			nI++
		case hypervisor.TypeSingleQP:
			nII++
		case hypervisor.TypeMultiQP:
			nIII++
		}
		mr := hypervisor.MeasureThreeTier(top, nodeID, readT)
		mw := hypervisor.MeasureThreeTier(top, nodeID, writeT)
		vm2qpR = appendNotNaN(vm2qpR, mr.VM2QP)
		vm2qpW = appendNotNaN(vm2qpW, mw.VM2QP)
		vm2vdR = appendNotNaN(vm2vdR, mr.VM2VD)
		vm2vdW = appendNotNaN(vm2vdW, mw.VM2VD)
		vd2qpR = appendNotNaN(vd2qpR, mr.VD2QP)
		vd2qpW = appendNotNaN(vd2qpW, mw.VD2QP)

		// Hottest VM share.
		if hr := hottestVMShare(top, nodeID, readT); !math.IsNaN(hr) {
			hotShareR = append(hotShareR, hr)
		}
		if hw := hottestVMShare(top, nodeID, writeT); !math.IsNaN(hw) {
			hotShareW = append(hotShareW, hw)
		}
	}
	total := float64(nI + nII + nIII)
	if total > 0 {
		res.TypeIPct = 100 * float64(nI) / total
		res.TypeIIPct = 100 * float64(nII) / total
		res.TypeIIIPct = 100 * float64(nIII) / total
	}
	res.VM2QPRead, res.VM2QPWrite = stats.Median(vm2qpR), stats.Median(vm2qpW)
	res.VM2VDRead, res.VM2VDWrite = stats.Median(vm2vdR), stats.Median(vm2vdW)
	res.VD2QPRead, res.VD2QPWrite = stats.Median(vd2qpR), stats.Median(vd2qpW)
	res.HotVMShareRead = 100 * stats.Mean(hotShareR)
	res.HotVMShareWrite = 100 * stats.Mean(hotShareW)
	return res
}

func appendNotNaN(xs []float64, v float64) []float64 {
	if math.IsNaN(v) {
		return xs
	}
	return append(xs, v)
}

// hottestVMShare returns the fraction of node traffic from its hottest VM.
func hottestVMShare(top *cluster.Topology, node cluster.NodeID, qpTraffic []float64) float64 {
	qps := top.NodeQPs(node)
	perVM := map[cluster.VMID]float64{}
	var total float64
	for i, qp := range qps {
		perVM[top.VMOfQP(qp)] += qpTraffic[i]
		total += qpTraffic[i]
	}
	if total == 0 {
		return math.NaN()
	}
	var best float64
	for _, v := range perVM {
		if v > best {
			best = v
		}
	}
	return best / total
}

// Render prints Fig 2(b).
func (r Fig2bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2(b): three-tier CoV medians (read / write)\n")
	fmt.Fprintf(&b, "  VM->QP CoV: %.2f / %.2f\n", r.VM2QPRead, r.VM2QPWrite)
	fmt.Fprintf(&b, "  VM->VD CoV: %.2f / %.2f\n", r.VM2VDRead, r.VM2VDWrite)
	fmt.Fprintf(&b, "  VD->QP CoV: %.2f / %.2f\n", r.VD2QPRead, r.VD2QPWrite)
	fmt.Fprintf(&b, "  node types: I %.1f%%  II %.1f%%  III %.1f%%\n", r.TypeIPct, r.TypeIIPct, r.TypeIIIPct)
	fmt.Fprintf(&b, "  hottest-VM share: %.1f%% / %.1f%%\n", r.HotVMShareRead, r.HotVMShareWrite)
	return b.String()
}

// Fig2cResult is the hottest-QP traffic-share CDF summary of Figure 2(c).
type Fig2cResult struct {
	// FracAbove80Read/Write is the fraction of nodes whose hottest QP
	// carries more than 80% of the node's traffic.
	FracAbove80Read, FracAbove80Write float64
	MedianRead, MedianWrite           float64
	SharesRead, SharesWrite           []float64 // per-node, for CDFs
}

// Fig2cHottestQP measures the per-node share of the hottest queue pair.
func (s *Study) Fig2cHottestQP() Fig2cResult {
	top := s.Fleet.Topology
	var res Fig2cResult
	for n := range top.Nodes {
		for _, dir := range []direction{dirRead, dirWrite} {
			tr := s.nodeQPTraffic(cluster.NodeID(n), dir)
			total := stats.Sum(tr)
			if total == 0 {
				continue
			}
			share := stats.Max(tr) / total
			if dir == dirRead {
				res.SharesRead = append(res.SharesRead, share)
			} else {
				res.SharesWrite = append(res.SharesWrite, share)
			}
		}
	}
	res.FracAbove80Read = stats.FractionWhere(res.SharesRead, func(x float64) bool { return x > 0.8 })
	res.FracAbove80Write = stats.FractionWhere(res.SharesWrite, func(x float64) bool { return x > 0.8 })
	res.MedianRead = stats.Median(res.SharesRead)
	res.MedianWrite = stats.Median(res.SharesWrite)
	return res
}

// Render prints Fig 2(c).
func (r Fig2cResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2(c): hottest-QP traffic share\n")
	fmt.Fprintf(&b, "  nodes with share > 80%%: read %.1f%%, write %.1f%%\n",
		100*r.FracAbove80Read, 100*r.FracAbove80Write)
	fmt.Fprintf(&b, "  median share: read %.1f%%, write %.1f%%\n",
		100*r.MedianRead, 100*r.MedianWrite)
	return b.String()
}

// Fig2dResult is the rebinding simulation of Figure 2(d).
type Fig2dResult struct {
	Points []hypervisor.RebindResult
	// FracImproved is the fraction of simulated nodes with gain < 1.
	FracImproved float64
	// MedianGain and MedianRatio summarize the scatter.
	MedianGain, MedianRatio float64
}

// rebindSampleEvery is the trace sampling applied before the Fig 2(d)
// rebinding simulation. The paper runs it on its 1/3200-sampled trace; our
// fleet moves roughly 40x less traffic per node, so 1/800 preserves the
// per-node sampled-event density the paper's simulation saw (and with it
// the fraction of nodes rebinding can actually help).
const rebindSampleEvery = trace.SampleRate / 4

// Fig2dRebinding simulates 10 ms QP-to-WT rebinding on the busiest
// multi-QP nodes. Exactly like the paper's §4.3 simulation, the input is
// the *sampled* trace: per-10 ms traffic is a sparse spike train, which is
// what makes periodic rebinding mostly chase bursts it has already missed.
func (s *Study) Fig2dRebinding(opt Fig2dOptions) Fig2dResult {
	mustOpt(opt.Validate())
	return s.rebindingWithSampling(opt.MaxNodes, opt.WinSec, rebindSampleEvery)
}

func (s *Study) rebindingWithSampling(maxNodes, winSec, sampleEvery int) Fig2dResult {
	if maxNodes <= 0 {
		maxNodes = 60
	}
	if winSec <= 0 {
		winSec = 30
	}
	nodes := s.busiestNodes(maxNodes)
	var res Fig2dResult
	var gains, ratios []float64
	for _, n := range nodes {
		slot := s.nodeSampledSlotTraffic(n, winSec, 100, sampleEvery)
		binding := hypervisor.RoundRobin(s.Fleet.Topology, n)
		r := hypervisor.SimulateRebinding(binding, slot, hypervisor.DefaultRebindConfig())
		if math.IsNaN(r.Gain) {
			continue
		}
		res.Points = append(res.Points, r)
		gains = append(gains, r.Gain)
		ratios = append(ratios, r.Ratio)
	}
	res.FracImproved = stats.FractionWhere(gains, func(x float64) bool { return x < 0.999 })
	res.MedianGain = stats.Median(gains)
	res.MedianRatio = stats.Median(ratios)
	return res
}

// nodeSampledSlotTraffic builds [qp][slot] traffic from the node's sampled
// IO events (bytes per slot), mirroring the paper's trace-driven setup.
func (s *Study) nodeSampledSlotTraffic(n cluster.NodeID, winSec, slotsPerSec, sampleEvery int) [][]float64 {
	top := s.Fleet.Topology
	qps := top.NodeQPs(n)
	idx := make(map[cluster.QPID]int, len(qps))
	for i, qp := range qps {
		idx[qp] = i
	}
	out := alloc2(len(qps), winSec*slotsPerSec)
	seen := map[cluster.VDID]bool{}
	slotUS := int64(1_000_000 / slotsPerSec)
	for _, qp := range qps {
		vd := top.VDOfQP(qp)
		if seen[vd] {
			continue
		}
		seen[vd] = true
		s.Fleet.GenEvents(vd, winSec, sampleEvery, func(ev workloadEvent) {
			slot := ev.TimeUS / slotUS
			if int(slot) >= winSec*slotsPerSec {
				slot = int64(winSec*slotsPerSec) - 1
			}
			out[idx[ev.QP]][slot] += float64(ev.Size)
		})
	}
	return out
}

// busiestNodes returns up to k node IDs ranked by total traffic.
func (s *Study) busiestNodes(k int) []cluster.NodeID {
	top := s.Fleet.Topology
	type nt struct {
		n cluster.NodeID
		v float64
	}
	var all []nt
	for n := range top.Nodes {
		tr := s.nodeQPTraffic(cluster.NodeID(n), dirBoth)
		if len(tr) < 2 {
			continue
		}
		all = append(all, nt{cluster.NodeID(n), stats.Sum(tr)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]cluster.NodeID, len(all))
	for i, x := range all {
		out[i] = x.n
	}
	return out
}

// nodeSlotTraffic builds [qp][slot] total traffic (bytes) for a node at
// slotsPerSec resolution over winSec seconds.
func (s *Study) nodeSlotTraffic(n cluster.NodeID, winSec, slotsPerSec int) [][]float64 {
	top := s.Fleet.Topology
	qps := top.NodeQPs(n)
	idx := make(map[cluster.QPID]int, len(qps))
	for i, qp := range qps {
		idx[qp] = i
	}
	out := alloc2(len(qps), winSec*slotsPerSec)
	seen := map[cluster.VDID]bool{}
	for _, qp := range qps {
		vd := top.VDOfQP(qp)
		if seen[vd] {
			continue
		}
		seen[vd] = true
		m := &s.Fleet.Models[vd]
		series := s.Fleet.VDSeries(vd, winSec)
		for sec, smp := range series {
			rb, wb := s.Fleet.FineSlots(vd, sec, slotsPerSec, workload.Sample(smp))
			for i, q := range top.VDs[vd].QPs {
				row := out[idx[q]]
				for sl := 0; sl < slotsPerSec; sl++ {
					row[sec*slotsPerSec+sl] += rb[sl]*m.QPWeightsRead[i] + wb[sl]*m.QPWeightsWrite[i]
				}
			}
		}
	}
	return out
}

// Render prints Fig 2(d).
func (r Fig2dResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2(d): 10ms rebinding simulation\n")
	fmt.Fprintf(&b, "  nodes simulated: %d\n", len(r.Points))
	fmt.Fprintf(&b, "  nodes improved (gain < 1): %.1f%%\n", 100*r.FracImproved)
	fmt.Fprintf(&b, "  median gain %.2f, median rebinding ratio %.2f\n", r.MedianGain, r.MedianRatio)
	return b.String()
}

// Fig2efResult contrasts a burst-heavy node (node-b) and a calmer node
// (node-r), Figure 2(e)/(f).
type Fig2efResult struct {
	BurstyP2A, CalmP2A   float64
	BurstyGain, CalmGain float64
	// HottestWTSeries are the 10 ms series of each node's hottest WT.
	BurstySeries, CalmSeries []float64
}

// Fig2efBurstSeries reruns the rebinding study and picks the node whose
// hottest-WT 10 ms series has the highest P2A (bursty) and the lowest
// (calm), returning both series.
func (s *Study) Fig2efBurstSeries(opt Fig2efOptions) Fig2efResult {
	mustOpt(opt.Validate())
	maxNodes, winSec := opt.MaxNodes, opt.WinSec
	if maxNodes <= 0 {
		maxNodes = 40
	}
	if winSec <= 0 {
		winSec = 20
	}
	var res Fig2efResult
	bestP2A, worstP2A := math.Inf(-1), math.Inf(1)
	for _, n := range s.busiestNodes(maxNodes) {
		slot := s.nodeSampledSlotTraffic(n, winSec, 100, rebindSampleEvery)
		binding := hypervisor.RoundRobin(s.Fleet.Topology, n)
		nSlots := 0
		if len(slot) > 0 {
			nSlots = len(slot[0])
		}
		// Hottest WT by total.
		wtTot := make([]float64, binding.WTs)
		for q := range slot {
			for t := range slot[q] {
				wtTot[binding.WTOf[q]] += slot[q][t]
			}
		}
		hot := 0
		for i, v := range wtTot {
			if v > wtTot[hot] {
				hot = i
			}
		}
		series := make([]float64, nSlots)
		for q := range slot {
			if int(binding.WTOf[q]) != hot {
				continue
			}
			for t := range slot[q] {
				series[t] += slot[q][t]
			}
		}
		p2a := stats.P2A(series)
		if math.IsNaN(p2a) {
			continue
		}
		gain := hypervisor.SimulateRebinding(binding, slot, hypervisor.DefaultRebindConfig()).Gain
		if p2a > bestP2A {
			bestP2A = p2a
			res.BurstyP2A, res.BurstySeries, res.BurstyGain = p2a, series, gain
		}
		if p2a < worstP2A {
			worstP2A = p2a
			res.CalmP2A, res.CalmSeries, res.CalmGain = p2a, series, gain
		}
	}
	return res
}

// Render prints Fig 2(e)/(f) with sparklines of the two hottest-WT series.
func (r Fig2efResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2(e,f): hottest-WT burst profiles at 10ms\n")
	fmt.Fprintf(&b, "  node-b (bursty): P2A %6.1f, rebinding gain %.2f  %s\n",
		r.BurstyP2A, r.BurstyGain, report.Sparkline(r.BurstySeries, 60))
	fmt.Fprintf(&b, "  node-r (calm):   P2A %6.1f, rebinding gain %.2f  %s\n",
		r.CalmP2A, r.CalmGain, report.Sparkline(r.CalmSeries, 60))
	return b.String()
}
