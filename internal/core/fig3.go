package core

import (
	"fmt"
	"math"
	"strings"

	"ebslab/internal/cluster"
	"ebslab/internal/report"
	"ebslab/internal/stats"
	"ebslab/internal/throttle"
)

// throttleGroup is one unit of §5's analysis: the VDs of a multi-VD VM, or
// all VDs of a tenant's VMs co-located on one compute node.
type throttleGroup struct {
	label string
	vds   []cluster.VDID
}

// multiVDGroups returns every VM mounting at least minVDs disks.
func (s *Study) multiVDGroups(minVDs int) []throttleGroup {
	var out []throttleGroup
	top := s.Fleet.Topology
	for i := range top.VMs {
		if len(top.VMs[i].VDs) >= minVDs {
			out = append(out, throttleGroup{
				label: fmt.Sprintf("vm-%d", i),
				vds:   top.VMs[i].VDs,
			})
		}
	}
	return out
}

// multiVMNodeGroups returns groups of VDs owned by a single tenant with at
// least two VMs on the same compute node.
func (s *Study) multiVMNodeGroups() []throttleGroup {
	top := s.Fleet.Topology
	var out []throttleGroup
	for n := range top.Nodes {
		byUser := map[cluster.UserID][]cluster.VDID{}
		vmCount := map[cluster.UserID]int{}
		for _, vm := range top.Nodes[n].VMs {
			u := top.VMs[vm].User
			vmCount[u]++
			byUser[u] = append(byUser[u], top.VMs[vm].VDs...)
		}
		for u, vds := range byUser {
			if vmCount[u] >= 2 {
				out = append(out, throttleGroup{
					label: fmt.Sprintf("node-%d-user-%d", n, u),
					vds:   vds,
				})
			}
		}
	}
	return out
}

// simulateGroup replays one group through the throttle, optionally with
// lending.
func (s *Study) simulateGroup(g throttleGroup, lend *throttle.Lending) throttle.Result {
	caps := make([]throttle.Caps, len(g.vds))
	demand := make([][]throttle.Demand, len(g.vds))
	for i, vd := range g.vds {
		d := &s.Fleet.Topology.VDs[vd]
		caps[i] = throttle.Caps{Tput: d.ThroughputCap, IOPS: d.IOPSCap}
		series := s.Fleet.VDSeries(vd, s.Dur)
		row := make([]throttle.Demand, len(series))
		for t, smp := range series {
			row[t] = throttle.Demand{
				ReadBps: smp.ReadBps, WriteBps: smp.WriteBps,
				ReadIOPS: smp.ReadIOPS, WriteIOPS: smp.WriteIOPS,
			}
		}
		demand[i] = row
	}
	if lend != nil {
		return throttle.SimulateWithLending(caps, demand, *lend)
	}
	return throttle.Simulate(caps, demand)
}

// Fig3aResult is the single-VD-throttle showcase of Figure 3(a): one VM
// where a disk throttles while the VM total sits far below its summed cap.
type Fig3aResult struct {
	VM            string
	NumVDs        int
	ThrottledSecs int
	// VDNorm and VMNorm are the throttled VD's and whole VM's throughput
	// per second, normalized by the VM's summed throughput cap.
	VDNorm, VMNorm []float64
	// VDCapNorm is the throttled VD's cap over the VM cap.
	VDCapNorm float64
	// PeakRAR is the highest RAR observed while throttled.
	PeakRAR float64
}

// Fig3aSingleVDCase finds the multi-VD VM whose throttle events have the
// most group headroom and extracts its normalized time series.
func (s *Study) Fig3aSingleVDCase() Fig3aResult {
	var best Fig3aResult
	best.PeakRAR = math.Inf(-1)
	for _, g := range s.multiVDGroups(4) {
		res := s.simulateGroup(g, nil)
		if len(res.Events) == 0 {
			continue
		}
		var peak float64
		hotVD := -1
		for _, ev := range res.Events {
			if ev.Dim == throttle.ByTput && ev.RAR > peak {
				peak, hotVD = ev.RAR, ev.VD
			}
		}
		if hotVD < 0 || peak <= best.PeakRAR {
			continue
		}
		var sumCap float64
		for _, vd := range g.vds {
			sumCap += s.Fleet.Topology.VDs[vd].ThroughputCap
		}
		vdNorm := make([]float64, s.Dur)
		vmNorm := make([]float64, s.Dur)
		for i, vd := range g.vds {
			series := s.Fleet.VDSeries(vd, s.Dur)
			for t, smp := range series {
				v := smp.Bps() / sumCap
				vmNorm[t] += v
				if i == hotVD {
					vdNorm[t] = v
				}
			}
		}
		best = Fig3aResult{
			VM: g.label, NumVDs: len(g.vds),
			ThrottledSecs: res.TotalThrottledSecs,
			VDNorm:        vdNorm, VMNorm: vmNorm,
			VDCapNorm: s.Fleet.Topology.VDs[g.vds[hotVD]].ThroughputCap / sumCap,
			PeakRAR:   peak,
		}
	}
	return best
}

// Render prints Fig 3(a).
func (r Fig3aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 3(a): single-VD throttle case\n")
	if r.NumVDs == 0 {
		b.WriteString("  no throttled multi-VD VM found in window\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %s with %d VDs: %d throttled seconds\n", r.VM, r.NumVDs, r.ThrottledSecs)
	fmt.Fprintf(&b, "  throttled VD cap = %.1f%% of VM cap; peak RAR at throttle = %.1f%%\n",
		100*r.VDCapNorm, 100*r.PeakRAR)
	fmt.Fprintf(&b, "  peak VM offered load = %.1f%% of VM cap\n", 100*stats.Max(r.VMNorm))
	fmt.Fprintf(&b, "  throttled VD: %s\n", report.Sparkline(r.VDNorm, 60))
	fmt.Fprintf(&b, "  whole VM:     %s\n", report.Sparkline(r.VMNorm, 60))
	return b.String()
}

// Fig3bcResult merges Figures 3(b) and 3(c): the RAR distribution and the
// wr_ratio distribution of throttle events, for multi-VD VMs and multi-VM
// nodes.
type Fig3bcResult struct {
	Scope string // "multi-VD VM" or "multi-VM node"
	// Median RAR by throttling dimension.
	MedianRARTput, MedianRARIOPS float64
	// Fraction of events that are write-driven (wr_ratio > 1/3), read-driven
	// (< -1/3), and mixed.
	WriteDriven, ReadDriven, Mixed float64
	// TputOverIOPS is the ratio of throughput-triggered to IOPS-triggered
	// throttle events.
	TputOverIOPS float64
	Events       int
	Groups       int
}

// Fig3bRAR runs the throttle over all groups of the chosen scope and
// summarizes RAR and wr_ratio of the events.
func (s *Study) Fig3bRAR(multiVMNode bool) Fig3bcResult {
	groups := s.multiVDGroups(2)
	scope := "multi-VD VM"
	if multiVMNode {
		groups = s.multiVMNodeGroups()
		scope = "multi-VM node"
	}
	res := Fig3bcResult{Scope: scope, Groups: len(groups)}
	var rarT, rarI, wr []float64
	var nTput, nIOPS int
	for _, g := range groups {
		r := s.simulateGroup(g, nil)
		for _, ev := range r.Events {
			res.Events++
			if ev.Dim == throttle.ByTput {
				nTput++
				rarT = appendNotNaN(rarT, ev.RAR)
			} else {
				nIOPS++
				rarI = appendNotNaN(rarI, ev.RAR)
			}
			wr = appendNotNaN(wr, ev.WrRatio)
		}
	}
	res.MedianRARTput = stats.Median(rarT)
	res.MedianRARIOPS = stats.Median(rarI)
	res.WriteDriven = stats.FractionWhere(wr, func(x float64) bool { return x > 1.0/3 })
	res.ReadDriven = stats.FractionWhere(wr, func(x float64) bool { return x < -1.0/3 })
	if !math.IsNaN(res.WriteDriven) && !math.IsNaN(res.ReadDriven) {
		res.Mixed = 1 - res.WriteDriven - res.ReadDriven
	} else {
		res.Mixed = math.NaN()
	}
	if nIOPS > 0 {
		res.TputOverIOPS = float64(nTput) / float64(nIOPS)
	} else {
		res.TputOverIOPS = math.Inf(1)
	}
	return res
}

// Render prints Fig 3(b)/(c).
func (r Fig3bcResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3(b,c): throttle events for %s (%d groups, %d events)\n", r.Scope, r.Groups, r.Events)
	fmt.Fprintf(&b, "  median RAR: throughput %.1f%%, IOPS %.1f%%\n", 100*r.MedianRARTput, 100*r.MedianRARIOPS)
	fmt.Fprintf(&b, "  events: write-driven %.1f%%, read-driven %.1f%%, mixed %.1f%%\n",
		100*r.WriteDriven, 100*r.ReadDriven, 100*r.Mixed)
	fmt.Fprintf(&b, "  throughput-triggered : IOPS-triggered = %.1f : 1\n", r.TputOverIOPS)
	return b.String()
}

// Fig3deResult is the theoretical reduction-rate study of Figures 3(d)/(e).
type Fig3deResult struct {
	Scope string
	Rates []float64 // lending rates p
	// MedianRR[i] is the median Equation-3 reduction rate at Rates[i],
	// split by dimension.
	MedianRRTput, MedianRRIOPS []float64
}

// Fig3deReduction evaluates Equation 3 at every throttle event for several
// lending rates.
func (s *Study) Fig3deReduction(opt Fig3deOptions) Fig3deResult {
	mustOpt(opt.Validate())
	multiVMNode, rates := opt.MultiVMNode, opt.Rates
	if len(rates) == 0 {
		rates = []float64{0.2, 0.4, 0.6, 0.8}
	}
	groups := s.multiVDGroups(2)
	scope := "multi-VD VM"
	if multiVMNode {
		groups = s.multiVMNodeGroups()
		scope = "multi-VM node"
	}
	res := Fig3deResult{Scope: scope, Rates: rates}
	// Collect events once.
	var events []throttle.Event
	for _, g := range groups {
		events = append(events, s.simulateGroup(g, nil).Events...)
	}
	for _, p := range rates {
		var rrT, rrI []float64
		for _, ev := range events {
			rr := throttle.ReductionRate(ev.Load, ev.AR, p)
			if math.IsNaN(rr) {
				continue
			}
			if ev.Dim == throttle.ByTput {
				rrT = append(rrT, rr)
			} else {
				rrI = append(rrI, rr)
			}
		}
		res.MedianRRTput = append(res.MedianRRTput, stats.Median(rrT))
		res.MedianRRIOPS = append(res.MedianRRIOPS, stats.Median(rrI))
	}
	return res
}

// Render prints Fig 3(d)/(e).
func (r Fig3deResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3(d,e): reduction rate for %s (lower = shorter throttle)\n", r.Scope)
	for i, p := range r.Rates {
		fmt.Fprintf(&b, "  p=%.1f: median RR throughput %.1f%%, IOPS %.1f%%\n",
			p, 100*r.MedianRRTput[i], 100*r.MedianRRIOPS[i])
	}
	return b.String()
}

// Fig3fgResult is the simulated lending-gain study of Figures 3(f)/(g).
type Fig3fgResult struct {
	Scope string
	Rates []float64
	// PosFrac[i] is the fraction of groups with positive gain at Rates[i];
	// NegFrac the fraction with negative gain; MedianGain the median.
	PosFrac, NegFrac, MedianGain []float64
	Groups                       int
}

// Fig3fgLendingGain simulates Appendix B lending over all groups at several
// rates.
func (s *Study) Fig3fgLendingGain(opt Fig3fgOptions) Fig3fgResult {
	mustOpt(opt.Validate())
	multiVMNode, rates, periodSec := opt.MultiVMNode, opt.Rates, opt.PeriodSec
	if len(rates) == 0 {
		rates = []float64{0.2, 0.4, 0.6, 0.8}
	}
	if periodSec <= 0 {
		periodSec = 60
	}
	groups := s.multiVDGroups(2)
	scope := "multi-VD VM"
	if multiVMNode {
		groups = s.multiVMNodeGroups()
		scope = "multi-VM node"
	}
	res := Fig3fgResult{Scope: scope, Rates: rates}
	// Baselines once per group.
	type pair struct {
		g  throttleGroup
		wo throttle.Result
	}
	var active []pair
	for _, g := range groups {
		wo := s.simulateGroup(g, nil)
		if wo.TotalThrottledSecs > 0 {
			active = append(active, pair{g, wo})
		}
	}
	res.Groups = len(active)
	for _, p := range rates {
		var gains []float64
		for _, a := range active {
			w := s.simulateGroup(a.g, &throttle.Lending{Rate: p, PeriodSec: periodSec})
			if g := throttle.LendingGain(a.wo, w); !math.IsNaN(g) {
				gains = append(gains, g)
			}
		}
		res.PosFrac = append(res.PosFrac, stats.FractionWhere(gains, func(x float64) bool { return x > 0 }))
		res.NegFrac = append(res.NegFrac, stats.FractionWhere(gains, func(x float64) bool { return x < 0 }))
		res.MedianGain = append(res.MedianGain, stats.Median(gains))
	}
	return res
}

// Render prints Fig 3(f)/(g).
func (r Fig3fgResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3(f,g): lending gain for %s (%d throttled groups)\n", r.Scope, r.Groups)
	for i, p := range r.Rates {
		fmt.Fprintf(&b, "  p=%.1f: positive %.1f%%, negative %.1f%%, median gain %.2f\n",
			p, 100*r.PosFrac[i], 100*r.NegFrac[i], r.MedianGain[i])
	}
	return b.String()
}
