package core

import (
	"fmt"
	"math"
	"strings"

	"ebslab/internal/cache"
	"ebslab/internal/cluster"
	"ebslab/internal/latency"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// Fig7aResult is the cache-policy hit-ratio sweep of Figure 7(a).
type Fig7aResult struct {
	BlockMiB []int64
	// Median and 10th-percentile hit ratios across study VDs, per policy.
	FIFOMed, LRUMed, FCMed []float64
	FIFOP10, LRUP10, FCP10 []float64
	VDs                    int
}

// Fig7aHitRatio replays each study VD's IO stream through FIFO, LRU and a
// frozen cache sized to each block size; the frozen cache pins the VD's
// hottest block of that size, matching §7.3.1's setup.
func (s *Study) Fig7aHitRatio(opt Fig7aOptions) Fig7aResult {
	mustOpt(opt.Validate())
	maxVDs, maxEventsPerVD := opt.MaxVDs, opt.MaxEventsPerVD
	if maxVDs <= 0 {
		maxVDs = 32
	}
	if maxEventsPerVD <= 0 {
		maxEventsPerVD = 20000
	}
	vds := s.studyVDs(maxVDs)
	res := Fig7aResult{BlockMiB: BlockSizesMiB, VDs: len(vds)}
	for _, mib := range BlockSizesMiB {
		blockSize := mib << 20
		capPages := int(blockSize / cache.PageSize)
		var fifo, lru, fc []float64
		for _, vd := range vds {
			accesses := s.vdAccesses(vd, maxEventsPerVD)
			if len(accesses) == 0 {
				continue
			}
			capBytes := s.Fleet.Topology.VDs[vd].Capacity
			rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
			fifo = appendNotNaN(fifo, cache.Simulate(cache.NewFIFO(capPages), accesses).HitRatio())
			lru = appendNotNaN(lru, cache.Simulate(cache.NewLRU(capPages), accesses).HitRatio())
			if rep.Hottest >= 0 {
				fcCache := cache.NewFrozen(rep.Hottest*blockSize, blockSize)
				fc = appendNotNaN(fc, cache.Simulate(fcCache, accesses).HitRatio())
			}
		}
		res.FIFOMed = append(res.FIFOMed, stats.Median(fifo))
		res.LRUMed = append(res.LRUMed, stats.Median(lru))
		res.FCMed = append(res.FCMed, stats.Median(fc))
		res.FIFOP10 = append(res.FIFOP10, stats.Quantile(fifo, 0.1))
		res.LRUP10 = append(res.LRUP10, stats.Quantile(lru, 0.1))
		res.FCP10 = append(res.FCP10, stats.Quantile(fc, 0.1))
	}
	return res
}

// Render prints Fig 7(a).
func (r Fig7aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(a): cache hit ratio over %d busiest VDs (median, p10)\n", r.VDs)
	fmt.Fprintf(&b, "  %-9s %-16s %-16s %s\n", "block", "FIFO", "LRU", "FrozenHot")
	for i, mib := range r.BlockMiB {
		fmt.Fprintf(&b, "  %4d MiB  %5.1f%% (%5.1f%%)  %5.1f%% (%5.1f%%)  %5.1f%% (%5.1f%%)\n",
			mib,
			100*r.FIFOMed[i], 100*r.FIFOP10[i],
			100*r.LRUMed[i], 100*r.LRUP10[i],
			100*r.FCMed[i], 100*r.FCP10[i])
	}
	return b.String()
}

// Fig7bcResult compares CN-cache and BS-cache latency gains (Figures 7b/7c).
type Fig7bcResult struct {
	// Median (across study VDs) latency gains at p0/p50/p99, per op and
	// location. Gains are with/without ratios in (0,1]; lower is better.
	CNRead, CNWrite, BSRead, BSWrite [3]float64
	VDs                              int
	BlockMiB                         int64
}

// Fig7bcLatencyGain evaluates frozen-cache latency gains at both deployment
// locations over the study VDs, using the given frozen-cache block size
// (2048 MiB in the paper's FC experiments).
func (s *Study) Fig7bcLatencyGain(opt Fig7bcOptions) Fig7bcResult {
	mustOpt(opt.Validate())
	maxVDs, maxEventsPerVD, blockMiB := opt.MaxVDs, opt.MaxEventsPerVD, opt.BlockMiB
	if maxVDs <= 0 {
		maxVDs = 24
	}
	if maxEventsPerVD <= 0 {
		maxEventsPerVD = 12000
	}
	if blockMiB <= 0 {
		blockMiB = 2048
	}
	blockSize := blockMiB << 20
	vds := s.studyVDs(maxVDs)
	model := latency.Default()
	var cnR, cnW, bsR, bsW [3][]float64
	for _, vd := range vds {
		accesses := s.vdAccesses(vd, maxEventsPerVD)
		if len(accesses) == 0 {
			continue
		}
		capBytes := s.Fleet.Topology.VDs[vd].Capacity
		rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
		if rep.Hottest < 0 || rep.AccessRate < 0.25 {
			// §7.3.2: caches are provisioned only for cacheable VDs (hottest
			// block above the access-rate threshold).
			continue
		}
		hotOff := rep.Hottest * blockSize
		hotLen := blockSize
		if hotOff+hotLen > capBytes {
			hotLen = capBytes - hotOff
		}
		for _, loc := range []latency.CacheLocation{latency.CNCache, latency.BSCache} {
			gains := latency.EvaluateGain(model, accesses, hotOff, hotLen, loc, s.Fleet.Cfg.Seed+int64(vd))
			for _, g := range gains {
				dst := &cnR
				switch {
				case loc == latency.CNCache && g.Op == trace.OpWrite:
					dst = &cnW
				case loc == latency.BSCache && g.Op == trace.OpRead:
					dst = &bsR
				case loc == latency.BSCache && g.Op == trace.OpWrite:
					dst = &bsW
				}
				for i, v := range []float64{g.P0, g.P50, g.P99} {
					if !math.IsNaN(v) {
						dst[i] = append(dst[i], v)
					}
				}
			}
		}
	}
	var res Fig7bcResult
	res.VDs = len(vds)
	res.BlockMiB = blockMiB
	for i := 0; i < 3; i++ {
		res.CNRead[i] = stats.Median(cnR[i])
		res.CNWrite[i] = stats.Median(cnW[i])
		res.BSRead[i] = stats.Median(bsR[i])
		res.BSWrite[i] = stats.Median(bsW[i])
	}
	return res
}

// Render prints Fig 7(b)/(c).
func (r Fig7bcResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(b,c): frozen-cache latency gain (%d MiB block, %d VDs; lower = better)\n", r.BlockMiB, r.VDs)
	fmt.Fprintf(&b, "  %-18s %-8s %-8s %s\n", "", "p0", "p50", "p99")
	row := func(name string, g [3]float64) {
		fmt.Fprintf(&b, "  %-18s %6.1f%% %6.1f%% %6.1f%%\n", name, 100*g[0], 100*g[1], 100*g[2])
	}
	row("CN-cache read", r.CNRead)
	row("CN-cache write", r.CNWrite)
	row("BS-cache read", r.BSRead)
	row("BS-cache write", r.BSWrite)
	return b.String()
}

// Fig7dResult is the cache-space-utilization comparison of Figure 7(d).
type Fig7dResult struct {
	BlockMiB []int64
	// Relative spreads (std/mean) of cacheable-VD counts per node, per
	// location: with uniformly-sized caches, std/mean is the fraction of
	// cache capacity stranded by provisioning for the mean. Raw stds are
	// kept for reference.
	CNSpread, BSSpread []float64
	CNStd, BSStd       []float64
	// CacheableVDs at each block size.
	Cacheable []int
	Threshold float64
}

// Fig7dSpaceUtilization counts cacheable VDs (hottest-block access rate
// above threshold, using the generator's ground-truth hotspot model) per
// compute node and per BlockServer, and compares the spreads.
func (s *Study) Fig7dSpaceUtilization(opt Fig7dOptions) Fig7dResult {
	mustOpt(opt.Validate())
	threshold := opt.Threshold
	if threshold <= 0 {
		threshold = 0.25
	}
	top := s.Fleet.Topology
	res := Fig7dResult{Threshold: threshold}
	for _, mib := range BlockSizesMiB {
		blockSize := mib << 20
		nodeOfCN := make([]int, len(top.VDs))
		nodeOfBS := make([]int, len(top.VDs))
		cacheable := make([]bool, len(top.VDs))
		var n int
		for vd := range top.VDs {
			m := &s.Fleet.Models[vd]
			// Effective hottest-block access rate at this block size from
			// the generator's ground truth: hot IOs weighted by op mix,
			// scaled by how much of the hot range one block covers.
			coverage := 1.0
			if m.HotspotLen > blockSize {
				coverage = float64(blockSize) / float64(m.HotspotLen)
			}
			wOps := m.MeanWriteBps / m.WriteIOSize
			rOps := m.MeanReadBps / m.ReadIOSize
			var rate float64
			if wOps+rOps > 0 {
				rate = (wOps*m.HotAccessFrac + rOps*m.HotReadFrac) / (wOps + rOps) * coverage
			}
			ok := rate >= threshold
			cacheable[vd] = ok
			if ok {
				n++
			}
			nodeOfCN[vd] = int(top.VMs[top.VDs[vd].VM].Node)
			hotSeg := top.SegmentOfOffset(cluster.VDID(vd), clampOffset(m.HotspotOffset, top.VDs[vd].Capacity))
			nodeOfBS[vd] = int(s.Fleet.Seg2BS.BSOf(hotSeg))
		}
		cn := latency.CountCacheablePerNode(nodeOfCN, cacheable, len(top.Nodes))
		bs := latency.CountCacheablePerNode(nodeOfBS, cacheable, len(top.StorageNodes))
		cnF, bsF := toF(cn), toF(bs)
		res.BlockMiB = append(res.BlockMiB, mib)
		res.CNStd = append(res.CNStd, stats.StdDev(cnF))
		res.BSStd = append(res.BSStd, stats.StdDev(bsF))
		res.CNSpread = append(res.CNSpread, relSpread(cnF))
		res.BSSpread = append(res.BSSpread, relSpread(bsF))
		res.Cacheable = append(res.Cacheable, n)
	}
	return res
}

// relSpread returns std/mean, or NaN for an all-zero population.
func relSpread(xs []float64) float64 {
	m := stats.Mean(xs)
	if !(m > 0) {
		return math.NaN()
	}
	return stats.StdDev(xs) / m
}

func clampOffset(off, capacity int64) int64 {
	if off >= capacity {
		return capacity - 1
	}
	if off < 0 {
		return 0
	}
	return off
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Render prints Fig 7(d).
func (r Fig7dResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7(d): cacheable-VD spread (threshold %.0f%%); lower spread = better provisioning\n", 100*r.Threshold)
	fmt.Fprintf(&b, "  %-9s %-12s %-12s %-10s %s\n", "block", "CN std/mean", "BS std/mean", "CN/BS", "cacheable VDs")
	for i, mib := range r.BlockMiB {
		ratio := math.NaN()
		if r.BSSpread[i] > 0 {
			ratio = r.CNSpread[i] / r.BSSpread[i]
		}
		fmt.Fprintf(&b, "  %4d MiB  %10.2f  %10.2f  %8.1fx  %d\n",
			mib, r.CNSpread[i], r.BSSpread[i], ratio, r.Cacheable[i])
	}
	return b.String()
}
