package core

import (
	"ebslab/internal/guestcache"
	"ebslab/internal/hypervisor"
)

// This file keeps the old positional Study signatures alive for one
// release under a Legacy suffix. Every wrapper forwards to the option-
// struct form; new code should call that form directly and name only the
// knobs it changes.

// Fig2dRebindingLegacy is the positional form of Fig2dRebinding.
//
// Deprecated: use Fig2dRebinding(Fig2dOptions{...}).
func (s *Study) Fig2dRebindingLegacy(maxNodes, winSec int) Fig2dResult {
	return s.Fig2dRebinding(Fig2dOptions{MaxNodes: maxNodes, WinSec: winSec})
}

// Fig2efBurstSeriesLegacy is the positional form of Fig2efBurstSeries.
//
// Deprecated: use Fig2efBurstSeries(Fig2efOptions{...}).
func (s *Study) Fig2efBurstSeriesLegacy(maxNodes, winSec int) Fig2efResult {
	return s.Fig2efBurstSeries(Fig2efOptions{MaxNodes: maxNodes, WinSec: winSec})
}

// Fig3deReductionLegacy is the positional form of Fig3deReduction.
//
// Deprecated: use Fig3deReduction(Fig3deOptions{...}).
func (s *Study) Fig3deReductionLegacy(multiVMNode bool, rates []float64) Fig3deResult {
	return s.Fig3deReduction(Fig3deOptions{MultiVMNode: multiVMNode, Rates: rates})
}

// Fig3fgLendingGainLegacy is the positional form of Fig3fgLendingGain.
//
// Deprecated: use Fig3fgLendingGain(Fig3fgOptions{...}).
func (s *Study) Fig3fgLendingGainLegacy(multiVMNode bool, rates []float64, periodSec int) Fig3fgResult {
	return s.Fig3fgLendingGain(Fig3fgOptions{MultiVMNode: multiVMNode, Rates: rates, PeriodSec: periodSec})
}

// Fig4aFrequentMigrationLegacy is the positional form of Fig4aFrequentMigration.
//
// Deprecated: use Fig4aFrequentMigration(Fig4aOptions{...}).
func (s *Study) Fig4aFrequentMigrationLegacy(periodSec int, windows []int) Fig4aResult {
	return s.Fig4aFrequentMigration(Fig4aOptions{PeriodSec: periodSec, Windows: windows})
}

// Fig4bImporterSelectionLegacy is the positional form of Fig4bImporterSelection.
//
// Deprecated: use Fig4bImporterSelection(Fig4bOptions{...}).
func (s *Study) Fig4bImporterSelectionLegacy(periodSec int) Fig4bResult {
	return s.Fig4bImporterSelection(Fig4bOptions{PeriodSec: periodSec})
}

// Fig4cPredictionMSELegacy is the positional form of Fig4cPredictionMSE.
//
// Deprecated: use Fig4cPredictionMSE(Fig4cOptions{...}).
func (s *Study) Fig4cPredictionMSELegacy(periodSec, epochLen int) Fig4cResult {
	return s.Fig4cPredictionMSE(Fig4cOptions{PeriodSec: periodSec, EpochLen: epochLen})
}

// Fig5aReadWriteCoVLegacy is the positional form of Fig5aReadWriteCoV.
//
// Deprecated: use Fig5aReadWriteCoV(Fig5aOptions{...}).
func (s *Study) Fig5aReadWriteCoVLegacy(periodSec int) Fig5aResult {
	return s.Fig5aReadWriteCoV(Fig5aOptions{PeriodSec: periodSec})
}

// Fig5bSegmentDominanceLegacy is the positional form of Fig5bSegmentDominance.
//
// Deprecated: use Fig5bSegmentDominance(Fig5bOptions{...}).
func (s *Study) Fig5bSegmentDominanceLegacy(periodSec int) Fig5bResult {
	return s.Fig5bSegmentDominance(Fig5bOptions{PeriodSec: periodSec})
}

// Fig5cWriteThenReadLegacy is the positional form of Fig5cWriteThenRead.
//
// Deprecated: use Fig5cWriteThenRead(Fig5cOptions{...}).
func (s *Study) Fig5cWriteThenReadLegacy(periodSec int) Fig5cResult {
	return s.Fig5cWriteThenRead(Fig5cOptions{PeriodSec: periodSec})
}

// Fig6HottestBlocksLegacy is the positional form of Fig6HottestBlocks.
//
// Deprecated: use Fig6HottestBlocks(Fig6Options{...}).
func (s *Study) Fig6HottestBlocksLegacy(maxVDs, maxEventsPerVD int) Fig6Result {
	return s.Fig6HottestBlocks(Fig6Options{MaxVDs: maxVDs, MaxEventsPerVD: maxEventsPerVD})
}

// Fig7aHitRatioLegacy is the positional form of Fig7aHitRatio.
//
// Deprecated: use Fig7aHitRatio(Fig7aOptions{...}).
func (s *Study) Fig7aHitRatioLegacy(maxVDs, maxEventsPerVD int) Fig7aResult {
	return s.Fig7aHitRatio(Fig7aOptions{MaxVDs: maxVDs, MaxEventsPerVD: maxEventsPerVD})
}

// Fig7bcLatencyGainLegacy is the positional form of Fig7bcLatencyGain.
//
// Deprecated: use Fig7bcLatencyGain(Fig7bcOptions{...}).
func (s *Study) Fig7bcLatencyGainLegacy(maxVDs, maxEventsPerVD int, blockMiB int64) Fig7bcResult {
	return s.Fig7bcLatencyGain(Fig7bcOptions{MaxVDs: maxVDs, MaxEventsPerVD: maxEventsPerVD, BlockMiB: blockMiB})
}

// Fig7dSpaceUtilizationLegacy is the positional form of Fig7dSpaceUtilization.
//
// Deprecated: use Fig7dSpaceUtilization(Fig7dOptions{...}).
func (s *Study) Fig7dSpaceUtilizationLegacy(threshold float64) Fig7dResult {
	return s.Fig7dSpaceUtilization(Fig7dOptions{Threshold: threshold})
}

// RebindWithConfigLegacy is the positional form of RebindWithConfig.
//
// Deprecated: use RebindWithConfig(RebindOptions{...}).
func (s *Study) RebindWithConfigLegacy(maxNodes, winSec int, cfg hypervisor.RebindConfig) Fig2dResult {
	return s.RebindWithConfig(RebindOptions{MaxNodes: maxNodes, WinSec: winSec, Config: cfg})
}

// AblateDispatchLegacy is the positional form of AblateDispatch.
//
// Deprecated: use AblateDispatch(DispatchOptions{...}).
func (s *Study) AblateDispatchLegacy(maxNodes, winSec int, policy hypervisor.DispatchPolicy) DispatchAblation {
	return s.AblateDispatch(DispatchOptions{MaxNodes: maxNodes, WinSec: winSec, Policy: policy})
}

// AblateHostingLegacy is the positional form of AblateHosting.
//
// Deprecated: use AblateHosting(HostingOptions{...}).
func (s *Study) AblateHostingLegacy(maxNodes, winSec int) HostingAblation {
	return s.AblateHosting(HostingOptions{MaxNodes: maxNodes, WinSec: winSec})
}

// AblateCachePolicyLegacy is the positional form of AblateCachePolicy.
//
// Deprecated: use AblateCachePolicy(CachePolicyOptions{...}).
func (s *Study) AblateCachePolicyLegacy(maxVDs, maxEventsPerVD int, blockMiB int64) CachePolicyAblation {
	return s.AblateCachePolicy(CachePolicyOptions{MaxVDs: maxVDs, MaxEventsPerVD: maxEventsPerVD, BlockMiB: blockMiB})
}

// AblatePredictorsLegacy is the positional form of AblatePredictors.
//
// Deprecated: use AblatePredictors(PredictorOptions{...}).
func (s *Study) AblatePredictorsLegacy(periodSec int) PredictorAblation {
	return s.AblatePredictors(PredictorOptions{PeriodSec: periodSec})
}

// AblateCacheDeploymentLegacy is the positional form of AblateCacheDeployment.
//
// Deprecated: use AblateCacheDeployment(CacheDeploymentOptions{...}).
func (s *Study) AblateCacheDeploymentLegacy(maxVDs, maxEventsPerVD int, blockMiB int64, cnFrac float64) DeploymentAblation {
	return s.AblateCacheDeployment(CacheDeploymentOptions{
		MaxVDs: maxVDs, MaxEventsPerVD: maxEventsPerVD, BlockMiB: blockMiB, CNFrac: cnFrac,
	})
}

// AblateFailoverLegacy is the positional form of AblateFailover.
//
// Deprecated: use AblateFailover(FailoverOptions{...}).
func (s *Study) AblateFailoverLegacy(periodSec int) FailoverAblation {
	return s.AblateFailover(FailoverOptions{PeriodSec: periodSec})
}

// StudyPageCacheLegacy is the positional form of StudyPageCache.
//
// Deprecated: use StudyPageCache(PageCacheOptions{...}).
func (s *Study) StudyPageCacheLegacy(maxVDs, maxEventsPerVD int, blockMiB int64, cfg guestcache.Config) PageCacheStudy {
	return s.StudyPageCache(PageCacheOptions{
		MaxVDs: maxVDs, MaxEventsPerVD: maxEventsPerVD, BlockMiB: blockMiB, Guest: cfg,
	})
}
