package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ebslab/internal/balancer"
	"ebslab/internal/cluster"
	"ebslab/internal/predict"
	"ebslab/internal/stats"
)

// clusterTraffic is the per-storage-cluster view the §6 experiments consume:
// segments renumbered locally, BlockServers renumbered 0..n-1, and the
// period traffic matrix restricted to the cluster.
type clusterTraffic struct {
	ClusterIdx int
	Placement  *cluster.SegmentMap // local BS numbering
	Traffic    [][]balancer.RW     // [localSeg][period]
	SegIDs     []cluster.SegmentID // local -> global segment ids
	NPeriods   int
	PeriodSec  int
}

// clusterTraffics builds the per-cluster matrices by streaming every VD
// series once.
func (s *Study) clusterTraffics(periodSec int) []clusterTraffic {
	if periodSec <= 0 {
		periodSec = 5
	}
	top := s.Fleet.Topology
	nPeriods := (s.Dur + periodSec - 1) / periodSec
	clusters := s.Fleet.StorageClusters

	// Global BS -> (cluster idx, local idx).
	type loc struct{ c, b int }
	bsLoc := map[cluster.StorageNodeID]loc{}
	for ci := range clusters {
		for bi, bs := range clusters[ci].BSs {
			bsLoc[bs] = loc{ci, bi}
		}
	}
	out := make([]clusterTraffic, len(clusters))
	// First pass: count segments per cluster and assign local ids.
	localOf := make([]int, len(top.Segments))
	for seg := range top.Segments {
		bs := s.Fleet.Seg2BS.BSOf(cluster.SegmentID(seg))
		l := bsLoc[bs]
		localOf[seg] = len(out[l.c].SegIDs)
		out[l.c].SegIDs = append(out[l.c].SegIDs, cluster.SegmentID(seg))
	}
	for ci := range out {
		out[ci].ClusterIdx = ci
		out[ci].NPeriods = nPeriods
		out[ci].PeriodSec = periodSec
		out[ci].Placement = cluster.NewSegmentMap(len(out[ci].SegIDs), len(clusters[ci].BSs))
		out[ci].Traffic = make([][]balancer.RW, len(out[ci].SegIDs))
		for i := range out[ci].Traffic {
			out[ci].Traffic[i] = make([]balancer.RW, nPeriods)
		}
	}
	for seg := range top.Segments {
		bs := s.Fleet.Seg2BS.BSOf(cluster.SegmentID(seg))
		l := bsLoc[bs]
		out[l.c].Placement.Assign(cluster.SegmentID(localOf[seg]), cluster.StorageNodeID(l.b))
	}
	// Stream traffic.
	for vdIdx := range top.VDs {
		vd := &top.VDs[vdIdx]
		m := &s.Fleet.Models[vdIdx]
		series := s.Fleet.VDSeries(cluster.VDID(vdIdx), s.Dur)
		for segPos, seg := range vd.Segments {
			bs := s.Fleet.Seg2BS.BSOf(seg)
			l := bsLoc[bs]
			row := out[l.c].Traffic[localOf[seg]]
			rw, ww := m.SegWeightsRead[segPos], m.SegWeightsWrite[segPos]
			for t, smp := range series {
				p := t / periodSec
				row[p].R += smp.ReadBps * rw
				row[p].W += smp.WriteBps * ww
			}
		}
	}
	return out
}

// Fig4aResult is the frequent-migration study of Figure 4(a).
type Fig4aResult struct {
	WindowPeriods []int
	// Proportions[w][c] is the frequent-migration proportion of cluster c at
	// window scale WindowPeriods[w] (NaN-free clusters only).
	Proportions [][]float64
	// ZeroFrac[w] is the fraction of clusters with no frequent migrations.
	ZeroFrac []float64
	// MaxProp[w] is the worst cluster's proportion.
	MaxProp []float64
}

// Fig4aFrequentMigration runs the production balancer (MinTraffic importer)
// on every storage cluster and measures frequent-migration proportions at
// several window scales (expressed in periods).
func (s *Study) Fig4aFrequentMigration(opt Fig4aOptions) Fig4aResult {
	mustOpt(opt.Validate())
	windows := opt.Windows
	if len(windows) == 0 {
		windows = []int{1, 2, 4}
	}
	cts := s.clusterTraffics(opt.PeriodSec)
	res := Fig4aResult{WindowPeriods: windows}
	migs := make([][]balancer.Migration, len(cts))
	for i, ct := range cts {
		r := balancer.Run(ct.Placement, ct.Traffic, balancer.MinTrafficPolicy{}, balancer.DefaultConfig())
		migs[i] = r.Migrations
	}
	for _, w := range windows {
		var props []float64
		var zero int
		maxProp := 0.0
		var counted int
		for i, ct := range cts {
			p := balancer.FrequentMigrationProportion(migs[i], ct.Placement.NumBS(), w)
			if math.IsNaN(p) {
				continue
			}
			counted++
			props = append(props, p)
			if p == 0 {
				zero++
			}
			if p > maxProp {
				maxProp = p
			}
		}
		res.Proportions = append(res.Proportions, props)
		if counted > 0 {
			res.ZeroFrac = append(res.ZeroFrac, float64(zero)/float64(counted))
		} else {
			res.ZeroFrac = append(res.ZeroFrac, math.NaN())
		}
		res.MaxProp = append(res.MaxProp, maxProp)
	}
	return res
}

// Render prints Fig 4(a).
func (r Fig4aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 4(a): frequent-migration proportion across storage clusters\n")
	for i, w := range r.WindowPeriods {
		med := stats.Median(r.Proportions[i])
		fmt.Fprintf(&b, "  window %d periods: %.1f%% of clusters have none; median %.1f%%, max %.1f%%\n",
			w, 100*r.ZeroFrac[i], 100*med, 100*r.MaxProp[i])
	}
	return b.String()
}

// Fig4bResult compares importer-selection policies (Figure 4(b)).
type Fig4bResult struct {
	Policies []string
	// MedianInterval[i] is the median normalized out-migration interval of
	// policy i on the busiest cluster (larger = placements last longer).
	MedianInterval []float64
	Migrations     []int
	ClusterIdx     int
}

// Fig4bImporterSelection runs the five importer policies of §6.1.2 on the
// storage cluster with the most frequent migrations under the production
// policy.
func (s *Study) Fig4bImporterSelection(opt Fig4bOptions) Fig4bResult {
	mustOpt(opt.Validate())
	cts := s.clusterTraffics(opt.PeriodSec)
	victim := s.worstCluster(cts)
	ct := cts[victim]
	policies := []balancer.ImporterPolicy{
		&balancer.RandomPolicy{Rng: rand.New(rand.NewSource(s.Fleet.Cfg.Seed))},
		balancer.MinTrafficPolicy{},
		balancer.MinVariancePolicy{},
		balancer.LunulePolicy{Window: 4},
		balancer.OraclePolicy{},
	}
	res := Fig4bResult{ClusterIdx: victim}
	for _, p := range policies {
		r := balancer.Run(ct.Placement, ct.Traffic, p, balancer.DefaultConfig())
		ivs := balancer.OutMigrationIntervals(r.Migrations, ct.NPeriods)
		res.Policies = append(res.Policies, p.Name())
		res.MedianInterval = append(res.MedianInterval, stats.Median(ivs))
		res.Migrations = append(res.Migrations, len(r.Migrations))
	}
	return res
}

// worstCluster picks the cluster with the highest frequent-migration
// proportion (ties broken by migration count) under the production policy.
func (s *Study) worstCluster(cts []clusterTraffic) int {
	best, bestScore := 0, math.Inf(-1)
	for i, ct := range cts {
		r := balancer.Run(ct.Placement, ct.Traffic, balancer.MinTrafficPolicy{}, balancer.DefaultConfig())
		p := balancer.FrequentMigrationProportion(r.Migrations, ct.Placement.NumBS(), 1)
		score := p
		if math.IsNaN(score) {
			score = -1
		}
		score += float64(len(r.Migrations)) * 1e-6
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Render prints Fig 4(b).
func (r Fig4bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4(b): importer selection on cluster %d (normalized out-migration interval)\n", r.ClusterIdx)
	for i, p := range r.Policies {
		fmt.Fprintf(&b, "  %-14s median interval %.3f (%d migrations)\n", p, r.MedianInterval[i], r.Migrations[i])
	}
	return b.String()
}

// Fig4cResult is the predictor comparison of Figure 4(c).
type Fig4cResult struct {
	Methods []string
	// MeanNormMSE[i] is the mean normalized MSE across BlockServers (MSE /
	// truth variance; < 1 beats predicting the mean).
	MeanNormMSE []float64
	BSSeries    int
	EpochLen    int
}

// Fig4cPredictionMSE evaluates the five predictor configurations of
// Appendix C on per-BS write traffic: P1 linear (per-period), P2 ARIMA
// (per-period), P3 GBT (per-epoch), P4 attention (per-epoch), P5 attention
// (per-period). epochLen scales the paper's 200-period epoch to our shorter
// window.
func (s *Study) Fig4cPredictionMSE(opt Fig4cOptions) Fig4cResult {
	mustOpt(opt.Validate())
	epochLen := opt.EpochLen
	if epochLen <= 0 {
		epochLen = 30
	}
	cts := s.clusterTraffics(opt.PeriodSec)
	// Per-BS write series across all clusters (under the initial placement).
	var series [][]float64
	for _, ct := range cts {
		future := balancer.BSFutureMatrix(ct.Placement, ct.Traffic, func(x balancer.RW) float64 { return x.W })
		for _, row := range future {
			if stats.Sum(row) > 0 {
				series = append(series, row)
			}
		}
	}
	type method struct {
		name  string
		mk    func() predict.Predictor
		refit int
	}
	methods := []method{
		{"P1 linear (per-period)", func() predict.Predictor { return predict.NewLinearFit(4) }, 1},
		{"P2 arima (per-period)", func() predict.Predictor { return predict.NewARIMA(4, 1) }, 1},
		{"P3 gbt (per-epoch)", func() predict.Predictor { return predict.NewGBT(4, 40, 3, 0.1) }, epochLen},
		{"P4 attention (per-epoch)", func() predict.Predictor { return predict.NewAttention(4, 256) }, epochLen},
		{"P5 attention (per-period)", func() predict.Predictor { return predict.NewAttention(4, 256) }, 1},
	}
	res := Fig4cResult{BSSeries: len(series), EpochLen: epochLen}
	warmup := 8
	for _, m := range methods {
		var nmses []float64
		for _, ser := range series {
			if len(ser) <= warmup+2 {
				continue
			}
			ev, err := predict.Evaluate(m.mk(), ser, warmup, m.refit)
			if err != nil || math.IsNaN(ev.NormMSE) {
				continue
			}
			nmses = append(nmses, ev.NormMSE)
		}
		res.Methods = append(res.Methods, m.name)
		// Median across BS series: single pathological series (near-zero
		// variance, one spike) would otherwise dominate the mean.
		res.MeanNormMSE = append(res.MeanNormMSE, stats.Median(nmses))
	}
	return res
}

// Render prints Fig 4(c).
func (r Fig4cResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4(c): per-BS traffic prediction, %d series, epoch=%d periods (normalized MSE, lower is better)\n",
		r.BSSeries, r.EpochLen)
	for i, m := range r.Methods {
		fmt.Fprintf(&b, "  %-26s %.3f\n", m, r.MeanNormMSE[i])
	}
	return b.String()
}
