package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ebslab/internal/balancer"
	"ebslab/internal/cache"
	"ebslab/internal/cluster"
	"ebslab/internal/hypervisor"
	"ebslab/internal/latency"
	"ebslab/internal/predict"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// stdRand aliases math/rand.Rand for the failover helper.
type stdRand = rand.Rand

func newStdRand(seed int64) *stdRand { return rand.New(rand.NewSource(seed)) }

// RebindWithConfig reruns the Fig 2(d) rebinding study under an explicit
// rebinding configuration — the ablation knob for the rebinding period and
// trigger threshold.
func (s *Study) RebindWithConfig(opt RebindOptions) Fig2dResult {
	mustOpt(opt.Validate())
	maxNodes, winSec, cfg := opt.MaxNodes, opt.WinSec, opt.Config
	if cfg == (hypervisor.RebindConfig{}) {
		cfg = hypervisor.DefaultRebindConfig()
	}
	if maxNodes <= 0 {
		maxNodes = 40
	}
	if winSec <= 0 {
		winSec = 20
	}
	var res Fig2dResult
	var gains, ratios []float64
	for _, n := range s.busiestNodes(maxNodes) {
		slot := s.nodeSampledSlotTraffic(n, winSec, 100, rebindSampleEvery)
		binding := hypervisor.RoundRobin(s.Fleet.Topology, n)
		r := hypervisor.SimulateRebinding(binding, slot, cfg)
		if math.IsNaN(r.Gain) {
			continue
		}
		res.Points = append(res.Points, r)
		gains = append(gains, r.Gain)
		ratios = append(ratios, r.Ratio)
	}
	res.FracImproved = stats.FractionWhere(gains, func(x float64) bool { return x < 0.999 })
	res.MedianGain = stats.Median(gains)
	res.MedianRatio = stats.Median(ratios)
	return res
}

// DispatchAblation summarizes the §4.4 dispatch-model comparison across
// the busiest nodes.
type DispatchAblation struct {
	Policy hypervisor.DispatchPolicy
	// MedianCoV is the median per-node normalized WT CoV.
	MedianCoV float64
	// SyncOps totals the cross-thread handoffs all nodes paid.
	SyncOps int
	Nodes   int
}

// AblateDispatch replays per-QP slot traffic of the busiest nodes under one
// dispatch policy (single-WT hosting vs per-IO dispatch).
func (s *Study) AblateDispatch(opt DispatchOptions) DispatchAblation {
	mustOpt(opt.Validate())
	maxNodes, winSec, policy := opt.MaxNodes, opt.WinSec, opt.Policy
	if maxNodes <= 0 {
		maxNodes = 40
	}
	if winSec <= 0 {
		winSec = 20
	}
	res := DispatchAblation{Policy: policy}
	var covs []float64
	for _, n := range s.busiestNodes(maxNodes) {
		slot := s.nodeSampledSlotTraffic(n, winSec, 100, rebindSampleEvery)
		binding := hypervisor.RoundRobin(s.Fleet.Topology, n)
		r := hypervisor.SimulateDispatch(binding, slot, policy)
		if math.IsNaN(r.CoV) {
			continue
		}
		res.Nodes++
		res.SyncOps += r.SyncOps
		covs = append(covs, r.CoV)
	}
	res.MedianCoV = stats.Median(covs)
	return res
}

// HostingAblation compares single-WT polling with a shared node-wide FIFO
// over real sampled IO events (§4.4's fairness-vs-balance tension).
type HostingAblation struct {
	// MedianIsolation[mode] and MedianWaitUS[mode] index by HostingMode.
	MedianIsolation map[hypervisor.HostingMode]float64
	MedianWaitUS    map[hypervisor.HostingMode]float64
	Nodes           int
}

// AblateHosting replays each busy node's sampled IO events through both
// hosting models and compares median wait and isolation.
func (s *Study) AblateHosting(opt HostingOptions) HostingAblation {
	mustOpt(opt.Validate())
	maxNodes, winSec := opt.MaxNodes, opt.WinSec
	if maxNodes <= 0 {
		maxNodes = 24
	}
	if winSec <= 0 {
		winSec = 10
	}
	top := s.Fleet.Topology
	res := HostingAblation{
		MedianIsolation: map[hypervisor.HostingMode]float64{},
		MedianWaitUS:    map[hypervisor.HostingMode]float64{},
	}
	iso := map[hypervisor.HostingMode][]float64{}
	wait := map[hypervisor.HostingMode][]float64{}
	for _, n := range s.busiestNodes(maxNodes) {
		binding := hypervisor.RoundRobin(top, n)
		var ios []hypervisor.PollIO
		seen := map[int32]bool{}
		for _, qp := range binding.QPs {
			vd := top.VDOfQP(qp)
			if seen[int32(vd)] {
				continue
			}
			seen[int32(vd)] = true
			s.Fleet.GenEvents(vd, winSec, 64, func(ev workloadEvent) {
				ios = append(ios, hypervisor.PollIO{
					QP: ev.QP, ArriveUS: ev.TimeUS,
					ServiceUS: hypervisor.ServiceModel(ev.Size),
				})
			})
		}
		if len(ios) < 10 {
			continue
		}
		res.Nodes++
		for _, mode := range []hypervisor.HostingMode{hypervisor.SingleWTPolling, hypervisor.SharedQueueFIFO} {
			r := hypervisor.SimulatePolling(binding, ios, mode)
			if !math.IsNaN(r.Isolation) {
				iso[mode] = append(iso[mode], r.Isolation)
			}
			var all []float64
			for _, w := range r.MeanWaitUS {
				if !math.IsNaN(w) {
					all = append(all, w)
				}
			}
			if len(all) > 0 {
				wait[mode] = append(wait[mode], stats.Mean(all))
			}
		}
	}
	for mode, xs := range iso {
		res.MedianIsolation[mode] = stats.Median(xs)
	}
	for mode, xs := range wait {
		res.MedianWaitUS[mode] = stats.Median(xs)
	}
	return res
}

// Render prints the hosting ablation.
func (r HostingAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: hosting model over %d nodes (isolation < 1 insulates light QPs)\n", r.Nodes)
	for _, mode := range []hypervisor.HostingMode{hypervisor.SingleWTPolling, hypervisor.SharedQueueFIFO} {
		fmt.Fprintf(&b, "  %-18s median isolation %.2f, median wait %.0f us\n",
			mode, r.MedianIsolation[mode], r.MedianWaitUS[mode])
	}
	return b.String()
}

// CachePolicyAblation extends Fig 7(a) with CLOCK alongside FIFO/LRU/FC.
type CachePolicyAblation struct {
	BlockMiB int64
	// Median hit ratios per policy name.
	Median map[string]float64
	VDs    int
}

// AblateCachePolicy replays study VDs through four cache policies at one
// block size.
func (s *Study) AblateCachePolicy(opt CachePolicyOptions) CachePolicyAblation {
	mustOpt(opt.Validate())
	maxVDs, maxEventsPerVD, blockMiB := opt.MaxVDs, opt.MaxEventsPerVD, opt.BlockMiB
	if maxVDs <= 0 {
		maxVDs = 24
	}
	if maxEventsPerVD <= 0 {
		maxEventsPerVD = 8000
	}
	if blockMiB <= 0 {
		blockMiB = 256
	}
	blockSize := blockMiB << 20
	capPages := int(blockSize / cache.PageSize)
	vds := s.studyVDs(maxVDs)
	hits := map[string][]float64{}
	for _, vd := range vds {
		accesses := s.vdAccesses(vd, maxEventsPerVD)
		if len(accesses) == 0 {
			continue
		}
		for _, mk := range []func() cache.Cache{
			func() cache.Cache { return cache.NewFIFO(capPages) },
			func() cache.Cache { return cache.NewLRU(capPages) },
			func() cache.Cache { return cache.NewClock(capPages) },
		} {
			c := mk()
			r := cache.Simulate(c, accesses)
			if v := r.HitRatio(); !math.IsNaN(v) {
				hits[c.Name()] = append(hits[c.Name()], v)
			}
		}
		rep := cache.AnalyzeBlocks(accesses, s.Fleet.Topology.VDs[vd].Capacity, blockSize)
		if rep.Hottest >= 0 {
			fc := cache.Simulate(cache.NewFrozen(rep.Hottest*blockSize, blockSize), accesses)
			if v := fc.HitRatio(); !math.IsNaN(v) {
				hits["frozen"] = append(hits["frozen"], v)
			}
		}
	}
	res := CachePolicyAblation{BlockMiB: blockMiB, VDs: len(vds), Median: map[string]float64{}}
	for name, xs := range hits {
		res.Median[name] = stats.Median(xs)
	}
	return res
}

// Render prints the cache-policy ablation.
func (r CachePolicyAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: cache policies at %d MiB over %d VDs (median hit ratio)\n", r.BlockMiB, r.VDs)
	for _, name := range []string{"fifo", "clock", "lru", "frozen"} {
		fmt.Fprintf(&b, "  %-8s %.1f%%\n", name, 100*r.Median[name])
	}
	return b.String()
}

// PredictorAblation runs the full forecaster roster (the Appendix C five
// plus naive, EWMA, and Holt) on per-BS write series.
type PredictorAblation struct {
	Methods []string
	Median  []float64 // median normalized MSE per method
	Series  int
}

// AblatePredictors evaluates every implemented predictor at per-period
// refit cadence.
func (s *Study) AblatePredictors(opt PredictorOptions) PredictorAblation {
	mustOpt(opt.Validate())
	cts := s.clusterTraffics(opt.PeriodSec)
	var series [][]float64
	for _, ct := range cts {
		future := bsWriteMatrix(ct)
		for _, row := range future {
			if stats.Sum(row) > 0 {
				series = append(series, row)
			}
		}
	}
	methods := []struct {
		name string
		mk   func() predict.Predictor
	}{
		{"naive", func() predict.Predictor { return &predict.Naive{} }},
		{"ewma", func() predict.Predictor { return &predict.EWMA{Alpha: 0.3} }},
		{"holt", func() predict.Predictor { return predict.NewHolt() }},
		{"linear", func() predict.Predictor { return predict.NewLinearFit(4) }},
		{"arima", func() predict.Predictor { return predict.NewARIMA(4, 1) }},
		{"gbt", func() predict.Predictor { return predict.NewGBT(4, 40, 3, 0.1) }},
		{"attention", func() predict.Predictor { return predict.NewAttention(4, 256) }},
	}
	res := PredictorAblation{Series: len(series)}
	for _, m := range methods {
		var nmses []float64
		for _, ser := range series {
			if len(ser) <= 10 {
				continue
			}
			ev, err := predict.Evaluate(m.mk(), ser, 8, 1)
			if err != nil || math.IsNaN(ev.NormMSE) {
				continue
			}
			nmses = append(nmses, ev.NormMSE)
		}
		res.Methods = append(res.Methods, m.name)
		res.Median = append(res.Median, stats.Median(nmses))
	}
	return res
}

// DeploymentAblation compares cache deployment locations — CN-only,
// BS-only, and the §7.3.2 hybrid — on the same IO populations.
type DeploymentAblation struct {
	BlockMiB int64
	CNFrac   float64
	// Median write-path p50 gains per deployment (lower = better).
	CNP50, BSP50, HybridP50 float64
	// Median hit ratios per deployment.
	CNHit, BSHit, HybridHit float64
	VDs                     int
}

// AblateCacheDeployment evaluates the three deployments over the cacheable
// study VDs.
func (s *Study) AblateCacheDeployment(opt CacheDeploymentOptions) DeploymentAblation {
	mustOpt(opt.Validate())
	maxVDs, maxEventsPerVD := opt.MaxVDs, opt.MaxEventsPerVD
	blockMiB, cnFrac := opt.BlockMiB, opt.CNFrac
	if maxVDs <= 0 {
		maxVDs = 16
	}
	if maxEventsPerVD <= 0 {
		maxEventsPerVD = 8000
	}
	if blockMiB <= 0 {
		blockMiB = 2048
	}
	if cnFrac <= 0 {
		cnFrac = 0.25
	}
	blockSize := blockMiB << 20
	model := latency.Default()
	var cnP, bsP, hyP, cnH, bsH, hyH []float64
	vds := s.studyVDs(maxVDs)
	for _, vd := range vds {
		accesses := s.vdAccesses(vd, maxEventsPerVD)
		if len(accesses) == 0 {
			continue
		}
		capBytes := s.Fleet.Topology.VDs[vd].Capacity
		rep := cache.AnalyzeBlocks(accesses, capBytes, blockSize)
		if rep.Hottest < 0 || rep.AccessRate < 0.25 {
			continue
		}
		hotOff := rep.Hottest * blockSize
		hotLen := blockSize
		if hotOff+hotLen > capBytes {
			hotLen = capBytes - hotOff
		}
		seed := s.Fleet.Cfg.Seed + int64(vd)
		take := func(rs []latency.GainResult, p *[]float64, h *[]float64) {
			for _, g := range rs {
				if g.Op == trace.OpWrite && !math.IsNaN(g.P50) {
					*p = append(*p, g.P50)
					*h = append(*h, g.HitRatio)
				}
			}
		}
		take(latency.EvaluateGain(model, accesses, hotOff, hotLen, latency.CNCache, seed), &cnP, &cnH)
		take(latency.EvaluateGain(model, accesses, hotOff, hotLen, latency.BSCache, seed), &bsP, &bsH)
		take(latency.EvaluateHybridGain(model, accesses, hotOff, hotLen, cnFrac, seed), &hyP, &hyH)
	}
	return DeploymentAblation{
		BlockMiB: blockMiB, CNFrac: cnFrac, VDs: len(vds),
		CNP50: stats.Median(cnP), BSP50: stats.Median(bsP), HybridP50: stats.Median(hyP),
		CNHit: stats.Median(cnH), BSHit: stats.Median(bsH), HybridHit: stats.Median(hyH),
	}
}

// Render prints the deployment ablation.
func (r DeploymentAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: cache deployment (%d MiB block, hybrid CN share %.0f%%, %d VDs; write p50 gain, lower=better)\n",
		r.BlockMiB, 100*r.CNFrac, r.VDs)
	fmt.Fprintf(&b, "  %-10s p50 gain %5.1f%%, hit %5.1f%%\n", "cn-only", 100*r.CNP50, 100*r.CNHit)
	fmt.Fprintf(&b, "  %-10s p50 gain %5.1f%%, hit %5.1f%%\n", "bs-only", 100*r.BSP50, 100*r.BSHit)
	fmt.Fprintf(&b, "  %-10s p50 gain %5.1f%%, hit %5.1f%%\n", "hybrid", 100*r.HybridP50, 100*r.HybridHit)
	return b.String()
}

// FailoverAblation compares BlockServer-failure recovery policies on the
// busiest storage cluster.
type FailoverAblation struct {
	ClusterIdx int
	Failed     int // local BS index that failed
	// Per policy: survivor max-overload (hottest survivor / survivor mean)
	// and survivor CoV after redistribution.
	Greedy, Random balancer.FailoverResult
}

// AblateFailover kills the hottest BlockServer of the busiest cluster at
// mid-window and redistributes its segments under both policies.
func (s *Study) AblateFailover(opt FailoverOptions) FailoverAblation {
	mustOpt(opt.Validate())
	cts := s.clusterTraffics(opt.PeriodSec)
	victimCluster := s.worstCluster(cts)
	ct := cts[victimCluster]
	period := ct.NPeriods / 2
	// Fail the hottest BS at that period.
	load := make([]float64, ct.Placement.NumBS())
	for seg, rows := range ct.Traffic {
		load[ct.Placement.BSOf(cluster.SegmentID(seg))] += rows[period].Total()
	}
	failed := cluster.StorageNodeID(0)
	for b := range load {
		if load[b] > load[failed] {
			failed = cluster.StorageNodeID(b)
		}
	}
	rng := func() *stdRand { return newStdRand(s.Fleet.Cfg.Seed) }
	res := FailoverAblation{ClusterIdx: victimCluster, Failed: int(failed)}
	res.Greedy = balancer.Failover(ct.Placement.Clone(), ct.Traffic, period, failed, balancer.FailoverGreedy, rng())
	res.Random = balancer.Failover(ct.Placement.Clone(), ct.Traffic, period, failed, balancer.FailoverRandom, rng())
	return res
}

// Render prints the failover ablation.
func (r FailoverAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: BS failover on cluster %d (failed BS %d)\n", r.ClusterIdx, r.Failed)
	for _, fr := range []balancer.FailoverResult{r.Greedy, r.Random} {
		fmt.Fprintf(&b, "  %-16s moved %3d segments: survivor CoV %.2f, max overload %.2fx\n",
			fr.Policy, fr.Moved, fr.CoVAfter, fr.MaxOverload)
	}
	return b.String()
}

// bsWriteMatrix sums per-BS write traffic per period under the cluster's
// static placement.
func bsWriteMatrix(ct clusterTraffic) [][]float64 {
	out := make([][]float64, ct.Placement.NumBS())
	for b := range out {
		out[b] = make([]float64, ct.NPeriods)
	}
	for seg, rows := range ct.Traffic {
		b := ct.Placement.BSOf(cluster.SegmentID(seg))
		for p, rw := range rows {
			out[b][p] += rw.W
		}
	}
	return out
}

// Render prints the predictor ablation.
func (r PredictorAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: predictors on %d per-BS write series (median normalized MSE)\n", r.Series)
	for i, m := range r.Methods {
		fmt.Fprintf(&b, "  %-10s %.3f\n", m, r.Median[i])
	}
	return b.String()
}
