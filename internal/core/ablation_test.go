package core

import (
	"math"
	"strings"
	"testing"

	"ebslab/internal/hypervisor"
)

func TestRebindWithConfigPeriodSweep(t *testing.T) {
	s := study(t)
	short := s.RebindWithConfig(RebindOptions{MaxNodes: 12, WinSec: 8, Config: hypervisor.RebindConfig{PeriodSlots: 1, Trigger: 1.2, EvalSlots: 5}})
	long := s.RebindWithConfig(RebindOptions{MaxNodes: 12, WinSec: 8, Config: hypervisor.RebindConfig{PeriodSlots: 50, Trigger: 1.2, EvalSlots: 5}})
	if len(short.Points) == 0 || len(long.Points) == 0 {
		t.Skip("no active nodes in sample")
	}
	// Ratio is per period, so normalize to rebinds per slot: a 500 ms
	// period cannot rebind more often per unit time than a 10 ms one.
	if !(long.MedianRatio/50 <= short.MedianRatio/1+1e-9) {
		t.Errorf("long-period rebinds/slot %v above short-period %v",
			long.MedianRatio/50, short.MedianRatio)
	}
}

func TestAblateDispatchOrdering(t *testing.T) {
	s := study(t)
	single := s.AblateDispatch(DispatchOptions{MaxNodes: 12, WinSec: 8, Policy: hypervisor.DispatchSingleWT})
	least := s.AblateDispatch(DispatchOptions{MaxNodes: 12, WinSec: 8, Policy: hypervisor.DispatchLeastLoaded})
	if single.Nodes == 0 {
		t.Skip("no active nodes")
	}
	if single.SyncOps != 0 {
		t.Errorf("single-WT paid %d sync ops", single.SyncOps)
	}
	if least.SyncOps == 0 {
		t.Errorf("least-loaded paid no sync ops")
	}
	// Per-IO dispatch balances at least as well as pinning.
	if !math.IsNaN(single.MedianCoV) && !math.IsNaN(least.MedianCoV) {
		if !(least.MedianCoV <= single.MedianCoV+1e-9) {
			t.Errorf("least-loaded CoV %v above single-WT %v", least.MedianCoV, single.MedianCoV)
		}
	}
}

func TestAblateHosting(t *testing.T) {
	s := study(t)
	r := s.AblateHosting(HostingOptions{MaxNodes: 12, WinSec: 6})
	if r.Nodes == 0 {
		t.Skip("no nodes with enough sampled IO")
	}
	poll := r.MedianIsolation[hypervisor.SingleWTPolling]
	fifo := r.MedianIsolation[hypervisor.SharedQueueFIFO]
	// Polling insulates light QPs at least as well as a shared FIFO.
	if !math.IsNaN(poll) && !math.IsNaN(fifo) && poll > fifo+0.3 {
		t.Errorf("polling isolation %v much worse than FIFO %v", poll, fifo)
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Fatal("render missing title")
	}
}

func TestAblateCachePolicy(t *testing.T) {
	s := study(t)
	r := s.AblateCachePolicy(CachePolicyOptions{MaxVDs: 10, MaxEventsPerVD: 4000, BlockMiB: 256})
	for _, name := range []string{"fifo", "lru", "clock", "frozen"} {
		v, ok := r.Median[name]
		if !ok {
			t.Fatalf("policy %s missing", name)
		}
		if !math.IsNaN(v) && (v < 0 || v > 1) {
			t.Fatalf("policy %s hit ratio %v", name, v)
		}
	}
	// CLOCK approximates LRU.
	if math.Abs(r.Median["clock"]-r.Median["lru"]) > 0.15 {
		t.Errorf("clock %v far from lru %v", r.Median["clock"], r.Median["lru"])
	}
	if !strings.Contains(r.Render(), "cache policies") {
		t.Fatal("render missing title")
	}
}

func TestAblateFailover(t *testing.T) {
	s := study(t)
	r := s.AblateFailover(FailoverOptions{PeriodSec: 10})
	if r.Greedy.Moved == 0 || r.Random.Moved != r.Greedy.Moved {
		t.Fatalf("moved counts: greedy %d, random %d", r.Greedy.Moved, r.Random.Moved)
	}
	// Load-aware recovery never leaves a worse hotspot than blind
	// scattering on the same scenario... not guaranteed per-seed, but it
	// must stay in a sane band.
	if !math.IsNaN(r.Greedy.MaxOverload) && r.Greedy.MaxOverload > r.Random.MaxOverload*1.5 {
		t.Errorf("greedy overload %v far above random %v", r.Greedy.MaxOverload, r.Random.MaxOverload)
	}
	if !strings.Contains(r.Render(), "failover") {
		t.Fatal("render missing title")
	}
}

func TestAblatePredictors(t *testing.T) {
	s := study(t)
	r := s.AblatePredictors(PredictorOptions{PeriodSec: 10})
	if len(r.Methods) != 7 {
		t.Fatalf("methods = %v", r.Methods)
	}
	vals := map[string]float64{}
	for i, m := range r.Methods {
		vals[m] = r.Median[i]
		if math.IsNaN(r.Median[i]) {
			t.Fatalf("method %s NaN", m)
		}
	}
	// Smoothing (EWMA) stays competitive with the naive forecast on
	// volatile series (strictly better on most seeds; never far worse).
	if !(vals["ewma"] < vals["naive"]*1.5) {
		t.Errorf("ewma %v far above naive %v", vals["ewma"], vals["naive"])
	}
	if !strings.Contains(r.Render(), "predictors") {
		t.Fatal("render missing title")
	}
}

func TestAblateCacheDeployment(t *testing.T) {
	s := study(t)
	r := s.AblateCacheDeployment(CacheDeploymentOptions{MaxVDs: 12, MaxEventsPerVD: 5000, BlockMiB: 2048, CNFrac: 0.25})
	if r.VDs == 0 {
		t.Skip("no study VDs")
	}
	if math.IsNaN(r.HybridP50) {
		t.Skip("no cacheable VDs in sample")
	}
	// The hybrid never does worse than BS-only (the BS level backs it) and
	// never better than an infinitely-large CN-only cache.
	if !(r.HybridP50 <= r.BSP50+0.05) {
		t.Errorf("hybrid p50 %v worse than bs-only %v", r.HybridP50, r.BSP50)
	}
	if !(r.HybridP50 >= r.CNP50-0.05) {
		t.Errorf("hybrid p50 %v better than cn-only %v", r.HybridP50, r.CNP50)
	}
	if !strings.Contains(r.Render(), "cache deployment") {
		t.Fatal("render missing title")
	}
}
