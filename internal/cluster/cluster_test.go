package cluster

import (
	"math/rand"
	"testing"
)

// tinyTopology builds a hand-wired 2-node, 2-VM, 3-VD topology used across
// the package tests.
func tinyTopology(t *testing.T) *Topology {
	t.Helper()
	top := &Topology{DCs: 1, Users: 2}
	top.Nodes = []ComputeNode{
		{ID: 0, DC: 0, WorkerNum: 4, VMs: []VMID{0}},
		{ID: 1, DC: 0, WorkerNum: 2, BareMetal: true, VMs: []VMID{1}},
	}
	top.VMs = []VM{
		{ID: 0, User: 0, Node: 0, App: AppDatabase, VDs: []VDID{0, 1}},
		{ID: 1, User: 1, Node: 1, App: AppBigData, VDs: []VDID{2}},
	}
	// VD 0: 64 GiB => 2 segments; VD 1: 40 GiB => 2 segments; VD 2: 32 GiB => 1.
	top.VDs = []VD{
		{ID: 0, VM: 0, Capacity: 64 << 30, QPs: []QPID{0, 1}, Segments: []SegmentID{0, 1}},
		{ID: 1, VM: 0, Capacity: 40 << 30, QPs: []QPID{2}, Segments: []SegmentID{2, 3}},
		{ID: 2, VM: 1, Capacity: 32 << 30, QPs: []QPID{3}, Segments: []SegmentID{4}},
	}
	top.QPs = []QP{
		{ID: 0, VD: 0}, {ID: 1, VD: 0}, {ID: 2, VD: 1}, {ID: 3, VD: 2},
	}
	top.Segments = []Segment{
		{ID: 0, VD: 0, Index: 0}, {ID: 1, VD: 0, Index: 1},
		{ID: 2, VD: 1, Index: 0}, {ID: 3, VD: 1, Index: 1},
		{ID: 4, VD: 2, Index: 0},
	}
	top.StorageNodes = []StorageNodeInfo{{ID: 0, DC: 0}, {ID: 1, DC: 0}, {ID: 2, DC: 0}}
	if err := top.Validate(); err != nil {
		t.Fatalf("tiny topology invalid: %v", err)
	}
	return top
}

func TestValidateCatchesBrokenBackPointers(t *testing.T) {
	top := tinyTopology(t)
	top.VDs[0].VM = 1 // break VD->VM back pointer
	if err := top.Validate(); err == nil {
		t.Fatal("Validate accepted a VD that does not point back to its VM")
	}
}

func TestValidateCatchesBadSegmentCount(t *testing.T) {
	top := tinyTopology(t)
	top.VDs[2].Capacity = 100 << 30 // capacity now requires 4 segments, has 1
	if err := top.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched segment count")
	}
}

func TestValidateCatchesBareMetalMultiVM(t *testing.T) {
	top := tinyTopology(t)
	top.Nodes[1].VMs = append(top.Nodes[1].VMs, 0)
	if err := top.Validate(); err == nil {
		t.Fatal("Validate accepted a bare-metal node with two VMs")
	}
}

func TestNodeQPs(t *testing.T) {
	top := tinyTopology(t)
	qps := top.NodeQPs(0)
	if len(qps) != 3 {
		t.Fatalf("NodeQPs(0) = %v, want 3 QPs", qps)
	}
	if qps[0] != 0 || qps[1] != 1 || qps[2] != 2 {
		t.Fatalf("NodeQPs(0) = %v, want [0 1 2]", qps)
	}
	if got := top.NodeQPs(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("NodeQPs(1) = %v, want [3]", got)
	}
}

func TestEntityNavigation(t *testing.T) {
	top := tinyTopology(t)
	if top.VDOfQP(2) != 1 {
		t.Fatalf("VDOfQP(2) = %d, want 1", top.VDOfQP(2))
	}
	if top.VMOfQP(3) != 1 {
		t.Fatalf("VMOfQP(3) = %d, want 1", top.VMOfQP(3))
	}
	if top.NodeOfQP(0) != 0 {
		t.Fatalf("NodeOfQP(0) = %d, want 0", top.NodeOfQP(0))
	}
	if top.UserOfVM(1) != 1 {
		t.Fatalf("UserOfVM(1) = %d, want 1", top.UserOfVM(1))
	}
	if top.NumWTs() != 6 {
		t.Fatalf("NumWTs = %d, want 6", top.NumWTs())
	}
}

func TestSegmentOfOffset(t *testing.T) {
	top := tinyTopology(t)
	if got := top.SegmentOfOffset(0, 0); got != 0 {
		t.Fatalf("SegmentOfOffset(vd0, 0) = %d, want 0", got)
	}
	if got := top.SegmentOfOffset(0, SegmentSize); got != 1 {
		t.Fatalf("SegmentOfOffset(vd0, 32GiB) = %d, want 1", got)
	}
	// VD 1 is 40 GiB: offset 39 GiB is in the (short) second segment.
	if got := top.SegmentOfOffset(1, 39<<30); got != 3 {
		t.Fatalf("SegmentOfOffset(vd1, 39GiB) = %d, want 3", got)
	}
	if got := top.SegmentOffset(3); got != SegmentSize {
		t.Fatalf("SegmentOffset(3) = %d, want %d", got, SegmentSize)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SegmentOfOffset out of capacity should panic")
		}
	}()
	top.SegmentOfOffset(2, 33<<30)
}

func TestAppClassString(t *testing.T) {
	names := map[AppClass]string{
		AppBigData: "BigData", AppWebApp: "WebApp", AppMiddleware: "Middleware",
		AppFileSystem: "FileSystem", AppDatabase: "Database", AppDocker: "Docker",
	}
	for app, want := range names {
		if got := app.String(); got != want {
			t.Errorf("AppClass(%d).String() = %q, want %q", app, got, want)
		}
	}
	if got := AppClass(99).String(); got != "AppClass(99)" {
		t.Errorf("unknown AppClass string = %q", got)
	}
	if NumAppClasses != 6 {
		t.Errorf("NumAppClasses = %d, want 6", NumAppClasses)
	}
}

func TestSegmentMapBasics(t *testing.T) {
	m := NewSegmentMap(5, 3)
	if m.Len() != 5 || m.NumBS() != 3 {
		t.Fatalf("Len/NumBS = %d/%d", m.Len(), m.NumBS())
	}
	if m.BSOf(2) != -1 {
		t.Fatal("fresh map should be unassigned")
	}
	m.Assign(2, 1)
	if m.BSOf(2) != 1 {
		t.Fatalf("BSOf(2) = %d, want 1", m.BSOf(2))
	}
	if prev := m.Move(2, 0); prev != 1 {
		t.Fatalf("Move returned prev %d, want 1", prev)
	}
	if got := m.SegmentsOn(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SegmentsOn(0) = %v", got)
	}
	counts := m.Counts()
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestSegmentMapCloneIsDeep(t *testing.T) {
	m := NewSegmentMap(3, 2)
	m.Assign(0, 0)
	c := m.Clone()
	c.Assign(0, 1)
	if m.BSOf(0) != 0 {
		t.Fatal("Clone is not deep")
	}
}

func TestSegmentMapAssignPanicsOnBadBS(t *testing.T) {
	m := NewSegmentMap(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Assign to out-of-range BS should panic")
		}
	}()
	m.Assign(0, 5)
}

func TestPlaceSegmentsSpreadsVDs(t *testing.T) {
	top := tinyTopology(t)
	rng := rand.New(rand.NewSource(7))
	m := PlaceSegments(top, 3, rng)
	for seg := 0; seg < m.Len(); seg++ {
		if m.BSOf(SegmentID(seg)) < 0 {
			t.Fatalf("segment %d left unassigned", seg)
		}
	}
	// VD 0 has two segments; with 3 BSs and stride >= 1 they must differ.
	if m.BSOf(0) == m.BSOf(1) {
		t.Fatalf("segments of VD 0 co-located on BS %d", m.BSOf(0))
	}
}
