package cluster

import "fmt"

// ShardRange is a half-open range [Lo, Hi) of virtual-disk indices — the
// unit of work the distributed simulation fabric dispatches. Shards are
// VD-disjoint by construction: every VD index belongs to exactly one shard,
// which is what makes shard results mergeable into a byte-identical dataset
// regardless of which worker (or how many) executed them.
type ShardRange struct {
	Lo, Hi int
}

// Len returns the number of VDs in the shard.
func (r ShardRange) Len() int { return r.Hi - r.Lo }

func (r ShardRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// PlanShards partitions nVDs virtual disks into at most nShards contiguous,
// disjoint, covering ranges whose sizes differ by at most one (the first
// nVDs%nShards shards absorb the remainder). The plan is a pure function of
// its arguments, so the coordinator and any auditor derive the same plan
// without communication. Fewer than nShards ranges are returned when there
// are fewer VDs than shards; nShards < 1 is clamped to 1.
func PlanShards(nVDs, nShards int) []ShardRange {
	if nVDs <= 0 {
		return nil
	}
	if nShards < 1 {
		nShards = 1
	}
	if nShards > nVDs {
		nShards = nVDs
	}
	base := nVDs / nShards
	extra := nVDs % nShards
	out := make([]ShardRange, 0, nShards)
	lo := 0
	for i := 0; i < nShards; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, ShardRange{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// PickShard is the fabric's shard-to-worker placement policy: given the
// pending shard IDs (ascending) it returns the first shard the asking
// worker has not already attempted, or -1 when nothing is placeable on that
// worker. Lowest-ID-first keeps placement deterministic for a fixed request
// order, and the attempted filter ensures a speculative re-dispatch of a
// straggling shard lands on a *different* worker than the one sitting on
// it — re-running it in the same place would race the same slow execution.
func PickShard(pending []int, attempted func(shard int) bool) int {
	for _, s := range pending {
		if attempted == nil || !attempted(s) {
			return s
		}
	}
	return -1
}
