package cluster

import (
	"fmt"
	"math/rand"
)

// SegmentMap is the mutable segment-to-BlockServer mapping ("Seg2BS" in
// Algorithm 1). It is the state the inter-BS load balancer migrates.
type SegmentMap struct {
	// bsOf[seg] is the storage node (BlockServer) currently hosting seg.
	bsOf []StorageNodeID
	// numBS is the number of BlockServers in the storage cluster.
	numBS int
}

// NewSegmentMap creates a mapping of nSegments segments over nBS
// BlockServers, all initially unassigned (-1). Use Place or Assign to fill
// it in.
func NewSegmentMap(nSegments, nBS int) *SegmentMap {
	m := &SegmentMap{bsOf: make([]StorageNodeID, nSegments), numBS: nBS}
	for i := range m.bsOf {
		m.bsOf[i] = -1
	}
	return m
}

// NumBS returns the number of BlockServers.
func (m *SegmentMap) NumBS() int { return m.numBS }

// Len returns the number of segments.
func (m *SegmentMap) Len() int { return len(m.bsOf) }

// BSOf returns the BlockServer hosting seg, or -1 if unassigned.
func (m *SegmentMap) BSOf(seg SegmentID) StorageNodeID { return m.bsOf[seg] }

// Assign places seg on bs, overwriting any previous placement.
func (m *SegmentMap) Assign(seg SegmentID, bs StorageNodeID) {
	if int(bs) < 0 || int(bs) >= m.numBS {
		panic(fmt.Sprintf("cluster: assign segment %d to invalid BS %d (have %d)", seg, bs, m.numBS))
	}
	m.bsOf[seg] = bs
}

// Move migrates seg to dst and returns its previous BlockServer.
func (m *SegmentMap) Move(seg SegmentID, dst StorageNodeID) StorageNodeID {
	prev := m.bsOf[seg]
	m.Assign(seg, dst)
	return prev
}

// Clone returns a deep copy; experiments mutate clones so the baseline
// placement can be reused.
func (m *SegmentMap) Clone() *SegmentMap {
	return &SegmentMap{bsOf: append([]StorageNodeID(nil), m.bsOf...), numBS: m.numBS}
}

// SegmentsOn returns the IDs of segments currently hosted on bs.
func (m *SegmentMap) SegmentsOn(bs StorageNodeID) []SegmentID {
	var out []SegmentID
	for seg, b := range m.bsOf {
		if b == bs {
			out = append(out, SegmentID(seg))
		}
	}
	return out
}

// Counts returns the number of segments per BlockServer.
func (m *SegmentMap) Counts() []int {
	out := make([]int, m.numBS)
	for _, b := range m.bsOf {
		if b >= 0 {
			out[b]++
		}
	}
	return out
}

// PlaceSegments produces an initial placement of every segment in t onto the
// given number of BlockServers. For reliability the placement spreads the
// segments of one VD across distinct BlockServers where possible (§6.1.3:
// "segments from the same VD should be distributed across different BSs"),
// choosing a random starting BS per VD so aggregate load spreads too.
func PlaceSegments(t *Topology, nBS int, rng *rand.Rand) *SegmentMap {
	if nBS <= 0 {
		panic("cluster: PlaceSegments needs at least one BlockServer")
	}
	m := NewSegmentMap(len(t.Segments), nBS)
	for i := range t.VDs {
		start := rng.Intn(nBS)
		stride := 1 + rng.Intn(max(1, nBS-1))
		for j, seg := range t.VDs[i].Segments {
			m.Assign(seg, StorageNodeID((start+j*stride)%nBS))
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StorageCluster identifies one balancing domain: a contiguous group of
// BlockServers within a DC. A VD's segments live entirely inside one
// storage cluster (its serving cluster), which is the unit the inter-BS
// balancer operates on.
type StorageCluster struct {
	DC    DCID
	Index int             // cluster index within the DC
	BSs   []StorageNodeID // global BS ids, ascending
}

// StorageClusters partitions nBSPerDC BlockServers per DC into groups of
// bsPerCluster (the last group in a DC absorbs any remainder).
func StorageClusters(dcs, nBSPerDC, bsPerCluster int) []StorageCluster {
	if bsPerCluster <= 0 || bsPerCluster > nBSPerDC {
		bsPerCluster = nBSPerDC
	}
	var out []StorageCluster
	for dc := 0; dc < dcs; dc++ {
		base := dc * nBSPerDC
		nClusters := nBSPerDC / bsPerCluster
		for c := 0; c < nClusters; c++ {
			sc := StorageCluster{DC: DCID(dc), Index: c}
			hi := (c + 1) * bsPerCluster
			if c == nClusters-1 {
				hi = nBSPerDC // absorb remainder
			}
			for b := c * bsPerCluster; b < hi; b++ {
				sc.BSs = append(sc.BSs, StorageNodeID(base+b))
			}
			out = append(out, sc)
		}
	}
	return out
}

// PlaceSegmentsClustered places every VD's segments inside one storage
// cluster of its DC (chosen at random), spreading the segments of each VD
// across distinct BlockServers of that cluster where possible. It returns
// the placement plus each VD's serving cluster (indexed by VDID into the
// returned clusters slice).
func PlaceSegmentsClustered(t *Topology, nBSPerDC, bsPerCluster int, rng *rand.Rand) (*SegmentMap, []StorageCluster, []int) {
	clusters := StorageClusters(t.DCs, nBSPerDC, bsPerCluster)
	if len(clusters) == 0 {
		panic("cluster: no storage clusters")
	}
	// Index clusters by DC for the random pick.
	byDC := make(map[DCID][]int)
	for i := range clusters {
		byDC[clusters[i].DC] = append(byDC[clusters[i].DC], i)
	}
	m := NewSegmentMap(len(t.Segments), t.DCs*nBSPerDC)
	clusterOf := make([]int, len(t.VDs))
	for i := range t.VDs {
		vd := &t.VDs[i]
		dc := t.Nodes[t.VMs[vd.VM].Node].DC
		choices := byDC[dc]
		ci := choices[rng.Intn(len(choices))]
		clusterOf[i] = ci
		bss := clusters[ci].BSs
		start := rng.Intn(len(bss))
		stride := 1 + rng.Intn(max(1, len(bss)-1))
		for j, seg := range vd.Segments {
			m.Assign(seg, bss[(start+j*stride)%len(bss)])
		}
	}
	return m, clusters, clusterOf
}
