package cluster

import "testing"

// TestPlanShards pins the plan's three invariants — disjoint, covering,
// balanced — across shapes including remainders, more shards than VDs, and
// degenerate inputs.
func TestPlanShards(t *testing.T) {
	cases := []struct {
		nVDs, nShards int
		wantShards    int
	}{
		{10, 2, 2},
		{10, 3, 3},
		{7, 7, 7},
		{3, 8, 3}, // clamp: never an empty shard
		{5, 0, 1}, // nShards < 1 clamps to 1
		{1, 1, 1},
		{120, 16, 16},
	}
	for _, tc := range cases {
		plan := PlanShards(tc.nVDs, tc.nShards)
		if len(plan) != tc.wantShards {
			t.Fatalf("PlanShards(%d, %d) = %d shards, want %d", tc.nVDs, tc.nShards, len(plan), tc.wantShards)
		}
		next := 0
		minLen, maxLen := tc.nVDs, 0
		for _, r := range plan {
			if r.Lo != next {
				t.Fatalf("PlanShards(%d, %d): shard %v not contiguous with previous end %d", tc.nVDs, tc.nShards, r, next)
			}
			if r.Len() <= 0 {
				t.Fatalf("PlanShards(%d, %d): empty shard %v", tc.nVDs, tc.nShards, r)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			next = r.Hi
		}
		if next != tc.nVDs {
			t.Fatalf("PlanShards(%d, %d): plan covers [0,%d)", tc.nVDs, tc.nShards, next)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("PlanShards(%d, %d): imbalance %d..%d", tc.nVDs, tc.nShards, minLen, maxLen)
		}
	}
	if got := PlanShards(0, 4); got != nil {
		t.Fatalf("PlanShards(0, 4) = %v, want nil", got)
	}
}

// TestPickShard pins the placement policy: lowest pending ID first, and a
// worker never receives a shard it already attempted (speculation must move
// to a different worker).
func TestPickShard(t *testing.T) {
	pending := []int{3, 5, 9}
	if got := PickShard(pending, nil); got != 3 {
		t.Fatalf("PickShard no filter = %d, want 3", got)
	}
	attempted := map[int]bool{3: true}
	if got := PickShard(pending, func(s int) bool { return attempted[s] }); got != 5 {
		t.Fatalf("PickShard skipping attempted = %d, want 5", got)
	}
	all := func(int) bool { return true }
	if got := PickShard(pending, all); got != -1 {
		t.Fatalf("PickShard all attempted = %d, want -1", got)
	}
	if got := PickShard(nil, nil); got != -1 {
		t.Fatalf("PickShard empty = %d, want -1", got)
	}
}
