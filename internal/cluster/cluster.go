// Package cluster models the topology of a disaggregated Elastic Block
// Storage deployment as described in §2.1 of the paper: compute clusters of
// Compute Nodes hosting Virtual Machines that mount Virtual Disks, each disk
// exposing one or more IO Queue Pairs served by per-node Worker Threads; and
// storage clusters of Storage Nodes, each running a BlockServer (and a
// co-located ChunkServer) that manages 32 GiB segments of virtual-disk
// address space.
//
// The topology is a plain in-memory object graph with integer IDs, designed
// to be cheap to traverse during trace-driven simulation. Mutable state that
// evolves during simulation (the segment-to-BlockServer mapping, QP-to-WT
// binding) lives in small dedicated structs so the static topology can be
// shared read-only between concurrent experiments.
package cluster

import "fmt"

// SegmentSize is the fixed size of a virtual-disk address-space segment
// (32 GiB, §2.1). Segments are the unit of inter-BlockServer load balancing.
const SegmentSize int64 = 32 << 30

// MaxQPsPerVD is the maximum number of IO queue pairs a virtual disk may
// expose, matching the paper's "up to 8" (§2.1).
const MaxQPsPerVD = 8

// Typed indices into the Topology's entity slices. IDs are dense and
// zero-based within a single Topology.
type (
	// UserID identifies a tenant.
	UserID int32
	// VMID identifies a virtual machine.
	VMID int32
	// VDID identifies a virtual disk.
	VDID int32
	// QPID identifies an IO queue pair, globally across the topology.
	QPID int32
	// NodeID identifies a compute node.
	NodeID int32
	// StorageNodeID identifies a storage node (equivalently its BlockServer).
	StorageNodeID int32
	// SegmentID identifies one 32 GiB segment of some virtual disk.
	SegmentID int32
	// DCID identifies a data center (one compute + one storage cluster).
	DCID int32
)

// AppClass is the inferred application category of a VM (Appendix D).
type AppClass uint8

// Application categories from Table 5 of the paper.
const (
	AppBigData AppClass = iota
	AppWebApp
	AppMiddleware
	AppFileSystem
	AppDatabase
	AppDocker
	numAppClasses
)

// NumAppClasses is the number of application categories.
const NumAppClasses = int(numAppClasses)

func (a AppClass) String() string {
	switch a {
	case AppBigData:
		return "BigData"
	case AppWebApp:
		return "WebApp"
	case AppMiddleware:
		return "Middleware"
	case AppFileSystem:
		return "FileSystem"
	case AppDatabase:
		return "Database"
	case AppDocker:
		return "Docker"
	}
	return fmt.Sprintf("AppClass(%d)", uint8(a))
}

// ComputeNode is a physical host in the compute cluster.
type ComputeNode struct {
	ID        NodeID
	DC        DCID
	WorkerNum int    // number of polling worker threads (each pinned to a core)
	BareMetal bool   // bare-metal nodes host exactly one VM
	VMs       []VMID // VMs placed on this node
}

// VM is a virtual machine owned by a tenant.
type VM struct {
	ID   VMID
	User UserID
	Node NodeID
	App  AppClass
	VDs  []VDID
}

// VD is a virtual disk mounted by a VM.
type VD struct {
	ID       VDID
	VM       VMID
	Capacity int64 // bytes
	QPs      []QPID
	Segments []SegmentID

	// Subscription caps enforced by the hypervisor throttle (§5).
	ThroughputCap float64 // bytes/s, summed read+write
	IOPSCap       float64 // ops/s, summed read+write
}

// QP is one IO queue pair of a virtual disk.
type QP struct {
	ID QPID
	VD VDID
}

// Segment is one 32 GiB slice of a VD's logical address space.
type Segment struct {
	ID    SegmentID
	VD    VDID
	Index int // position within the VD's address space: offset = Index*SegmentSize
}

// Topology is the static object graph of one or more data centers. All
// slices are indexed by the corresponding ID.
type Topology struct {
	DCs          int
	Users        int
	Nodes        []ComputeNode
	VMs          []VM
	VDs          []VD
	QPs          []QP
	Segments     []Segment
	StorageNodes []StorageNodeInfo
}

// StorageNodeInfo describes one storage node.
type StorageNodeInfo struct {
	ID StorageNodeID
	DC DCID
}

// NumWTs returns the total number of worker threads across all compute nodes.
func (t *Topology) NumWTs() int {
	var n int
	for i := range t.Nodes {
		n += t.Nodes[i].WorkerNum
	}
	return n
}

// NodeQPs returns all QP IDs hosted on the given compute node, in VD order.
func (t *Topology) NodeQPs(n NodeID) []QPID {
	node := &t.Nodes[n]
	var qps []QPID
	for _, vm := range node.VMs {
		for _, vd := range t.VMs[vm].VDs {
			qps = append(qps, t.VDs[vd].QPs...)
		}
	}
	return qps
}

// VDOfQP returns the virtual disk owning qp.
func (t *Topology) VDOfQP(qp QPID) VDID { return t.QPs[qp].VD }

// VMOfQP returns the virtual machine owning qp.
func (t *Topology) VMOfQP(qp QPID) VMID { return t.VDs[t.QPs[qp].VD].VM }

// NodeOfQP returns the compute node hosting qp.
func (t *Topology) NodeOfQP(qp QPID) NodeID { return t.VMs[t.VMOfQP(qp)].Node }

// UserOfVM returns the tenant owning vm.
func (t *Topology) UserOfVM(vm VMID) UserID { return t.VMs[vm].User }

// SegmentOffset returns the byte offset of seg within its VD's address space.
func (t *Topology) SegmentOffset(seg SegmentID) int64 {
	return int64(t.Segments[seg].Index) * SegmentSize
}

// SegmentOfOffset returns the segment of vd containing the given byte offset.
// It panics if the offset is outside the disk's capacity.
func (t *Topology) SegmentOfOffset(vd VDID, offset int64) SegmentID {
	d := &t.VDs[vd]
	if offset < 0 || offset >= d.Capacity {
		panic(fmt.Sprintf("cluster: offset %d outside VD %d capacity %d", offset, vd, d.Capacity))
	}
	idx := int(offset / SegmentSize)
	if idx >= len(d.Segments) {
		idx = len(d.Segments) - 1
	}
	return d.Segments[idx]
}

// Validate checks referential integrity of the topology; it is used by tests
// and by generators as a post-condition. It returns the first inconsistency
// found, or nil.
func (t *Topology) Validate() error {
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.WorkerNum <= 0 {
			return fmt.Errorf("node %d has %d worker threads", i, n.WorkerNum)
		}
		if n.BareMetal && len(n.VMs) != 1 {
			return fmt.Errorf("bare-metal node %d hosts %d VMs", i, len(n.VMs))
		}
		for _, vm := range n.VMs {
			if int(vm) >= len(t.VMs) || t.VMs[vm].Node != n.ID {
				return fmt.Errorf("node %d lists VM %d which does not point back", i, vm)
			}
		}
	}
	for i := range t.VMs {
		vm := &t.VMs[i]
		if vm.ID != VMID(i) {
			return fmt.Errorf("vm %d has ID %d", i, vm.ID)
		}
		if int(vm.User) >= t.Users {
			return fmt.Errorf("vm %d references user %d out of %d", i, vm.User, t.Users)
		}
		if len(vm.VDs) == 0 {
			return fmt.Errorf("vm %d has no virtual disks", i)
		}
		for _, vd := range vm.VDs {
			if int(vd) >= len(t.VDs) || t.VDs[vd].VM != vm.ID {
				return fmt.Errorf("vm %d lists VD %d which does not point back", i, vd)
			}
		}
	}
	for i := range t.VDs {
		vd := &t.VDs[i]
		if vd.ID != VDID(i) {
			return fmt.Errorf("vd %d has ID %d", i, vd.ID)
		}
		if len(vd.QPs) == 0 || len(vd.QPs) > MaxQPsPerVD {
			return fmt.Errorf("vd %d has %d QPs", i, len(vd.QPs))
		}
		if vd.Capacity <= 0 {
			return fmt.Errorf("vd %d has capacity %d", i, vd.Capacity)
		}
		wantSegs := int((vd.Capacity + SegmentSize - 1) / SegmentSize)
		if len(vd.Segments) != wantSegs {
			return fmt.Errorf("vd %d has %d segments, want %d for capacity %d",
				i, len(vd.Segments), wantSegs, vd.Capacity)
		}
		for _, qp := range vd.QPs {
			if int(qp) >= len(t.QPs) || t.QPs[qp].VD != vd.ID {
				return fmt.Errorf("vd %d lists QP %d which does not point back", i, qp)
			}
		}
		for j, seg := range vd.Segments {
			if int(seg) >= len(t.Segments) {
				return fmt.Errorf("vd %d references segment %d out of range", i, seg)
			}
			s := &t.Segments[seg]
			if s.VD != vd.ID || s.Index != j {
				return fmt.Errorf("vd %d segment %d does not point back (vd=%d idx=%d)",
					i, seg, s.VD, s.Index)
			}
		}
	}
	for i := range t.QPs {
		if t.QPs[i].ID != QPID(i) {
			return fmt.Errorf("qp %d has ID %d", i, t.QPs[i].ID)
		}
	}
	for i := range t.Segments {
		if t.Segments[i].ID != SegmentID(i) {
			return fmt.Errorf("segment %d has ID %d", i, t.Segments[i].ID)
		}
	}
	return nil
}
