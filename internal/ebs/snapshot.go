package ebs

import (
	"sync"

	"ebslab/internal/sketch"
)

// SnapshotSink receives a monotone mid-run view of a streaming run's sketch
// state: after each virtual disk completes, the engine folds that disk's
// sketch delta into the sink, so a concurrent reader (the gateway's
// StreamSnapshot op) can encode approximate quantiles and top-K rankings
// while the run is still executing. Because every sketch component combines
// as a commutative monoid over per-IO contributions, the sink's state after
// the last fold is fingerprint-identical to the run's final merged
// Options.Stream set — the streamed-vs-final identity the gateway tests pin.
//
// The zero value is ready to use; hand it to Options.Snapshots (which
// requires Options.Stream). All methods are safe for concurrent use.
type SnapshotSink struct {
	mu  sync.Mutex
	set *sketch.Set
	vds int
	seq uint64
}

// fold merges one completed disk's sketch delta. The delta is consumed
// (Set.Merge steals state); the engine hands over a per-VD scratch set it
// never touches again.
func (k *SnapshotSink) fold(delta *sketch.Set, cfg sketch.Config) {
	k.mu.Lock()
	if k.set == nil {
		k.set = sketch.NewSet(cfg)
	}
	k.set.Merge(delta)
	k.vds++
	k.seq++
	k.mu.Unlock()
}

// Snapshot returns the binary encoding (sketch.DecodeSet reverses it) of the
// sketch state folded so far, the number of completed virtual disks, and a
// sequence number that increases with every fold. Before the first fold it
// returns (nil, 0, 0).
func (k *SnapshotSink) Snapshot() (enc []byte, vds int, seq uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.set == nil {
		return nil, 0, 0
	}
	return k.set.EncodeBinary(), k.vds, k.seq
}

// Fingerprint returns the canonical digest of the folded sketch state, or ""
// before the first fold.
func (k *SnapshotSink) Fingerprint() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.set == nil {
		return ""
	}
	return k.set.Fingerprint()
}
