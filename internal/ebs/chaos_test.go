package ebs

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ebslab/internal/chaos"
)

func chaosPlan() *chaos.Plan {
	return &chaos.Plan{
		BSCrashes: 6, MeanDownSec: 3, FailoverPenaltyUS: 200,
		Storms: 4, StormFactor: 4, MeanStormSec: 3, Recoverable: true,
	}
}

func TestOptionsRejectInvalidChaosPlan(t *testing.T) {
	f := smallFleet(t)
	_, err := New(f).Run(context.Background(), Options{
		DurationSec: 4, MaxVDs: 4,
		Chaos: &chaos.Plan{Net: chaos.NetFaults{DropRate: 2}},
	})
	if err == nil || !strings.Contains(err.Error(), "Options.Chaos") {
		t.Fatalf("invalid plan accepted: %v", err)
	}
}

func TestChaosStatsPopulated(t *testing.T) {
	f := smallFleet(t)
	var st chaos.Stats
	plan := chaosPlan()
	_, err := New(f).Run(context.Background(), Options{
		DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 4,
		Chaos: plan, ChaosStats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := plan.Expand(f.Cfg.Seed, chaos.Shape{
		BSs: len(f.Topology.StorageNodes), VDs: len(f.Topology.VDs), DurSec: 10,
	})
	if st.CrashWindows != len(sched.Crashes) || st.StormWindows != len(sched.Storms) {
		t.Fatalf("stats windows %+v disagree with the schedule (%d crashes, %d storms)",
			st, len(sched.Crashes), len(sched.Storms))
	}
	if st.FaultedIOs == 0 {
		t.Fatal("no IO ever hit a crashed BS; the plan exercises nothing")
	}
}

// TestChaosRunPassesCheckMode: a disruptive schedule must still satisfy
// every conservation law — chaos bends latency and demand, never the
// accounting.
func TestChaosRunPassesCheckMode(t *testing.T) {
	f := smallFleet(t)
	_, err := New(f).Run(context.Background(), Options{
		DurationSec: 8, TraceSampleEvery: 1, EventSampleEvery: 4, MaxVDs: 16,
		Workers: 3, Check: true, Chaos: chaosPlan(),
	})
	if err != nil {
		t.Fatalf("check mode under chaos: %v", err)
	}
}

// TestChaosWorkerCountInvarianceDataset extends the engine's determinism
// contract to chaos runs: byte-identical datasets at every worker count.
func TestChaosWorkerCountInvarianceDataset(t *testing.T) {
	f := smallFleet(t)
	base := Options{
		DurationSec: 8, TraceSampleEvery: 2, EventSampleEvery: 4, MaxVDs: 16,
		Chaos: chaosPlan(),
	}
	opts1 := base
	opts1.Workers = 1
	var st1 chaos.Stats
	opts1.ChaosStats = &st1
	ref, err := New(f).Run(context.Background(), opts1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		opts := base
		opts.Workers = workers
		var st chaos.Stats
		opts.ChaosStats = &st
		got, err := New(f).Run(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Trace, got.Trace) {
			t.Fatalf("workers=%d: chaos trace differs from 1-worker run", workers)
		}
		if st != st1 {
			t.Fatalf("workers=%d: fault accounting %+v != %+v", workers, st, st1)
		}
	}
}

// TestChaosPenaltyOnlyRaisesLatency: with a penalty but no storms, the
// chaos run must contain exactly the fault-free records except for
// frontend-net latency on faulted IOs.
func TestChaosPenaltyOnlyRaisesLatency(t *testing.T) {
	f := smallFleet(t)
	base := Options{DurationSec: 8, TraceSampleEvery: 1, EventSampleEvery: 4, MaxVDs: 16, Workers: 2}
	clean, err := New(f).Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	var st chaos.Stats
	opts.Chaos = &chaos.Plan{BSCrashes: 8, MeanDownSec: 3, FailoverPenaltyUS: 500, Recoverable: true}
	opts.ChaosStats = &st
	faulted, err := New(f).Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultedIOs == 0 {
		t.Fatal("penalty plan faulted nothing")
	}
	if len(clean.Trace) != len(faulted.Trace) {
		t.Fatalf("record counts differ: %d vs %d", len(clean.Trace), len(faulted.Trace))
	}
	var raised int64
	for i := range clean.Trace {
		a, b := &clean.Trace[i], &faulted.Trace[i]
		if a.TraceID != b.TraceID || a.TimeUS != b.TimeUS || a.VD != b.VD ||
			a.Op != b.Op || a.Size != b.Size || a.Offset != b.Offset {
			t.Fatalf("record %d: identity fields changed under a penalty-only plan", i)
		}
		// Latencies are float32s, so the +500us penalty lands with rounding.
		switch d := b.TotalLatency() - a.TotalLatency(); {
		case d == 0:
		case d > 499 && d < 501:
			raised++
		default:
			t.Fatalf("record %d: latency moved by %v, want 0 or the 500us penalty", i, d)
		}
	}
	if raised != st.FaultedIOs {
		t.Fatalf("%d records paid the penalty but %d IOs were faulted", raised, st.FaultedIOs)
	}
}
