package ebs

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRunWorkerCountInvariance is the engine's determinism contract:
// the same seed must yield byte-identical datasets (trace records, compute
// rows, storage rows) no matter how many workers share the fleet.
func TestRunWorkerCountInvariance(t *testing.T) {
	f := smallFleet(t)
	base := Options{DurationSec: 8, TraceSampleEvery: 4, EventSampleEvery: 2, MaxVDs: 16}

	opts1 := base
	opts1.Workers = 1
	ref, err := New(f).Run(context.Background(), opts1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Trace) == 0 || len(ref.Compute) == 0 || len(ref.Storage) == 0 {
		t.Fatal("reference run produced empty datasets")
	}
	for _, workers := range []int{2, 3, 8} {
		opts := base
		opts.Workers = workers
		got, err := New(f).Run(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Trace, got.Trace) {
			t.Fatalf("workers=%d: trace records differ from 1-worker run", workers)
		}
		if !reflect.DeepEqual(ref.Compute, got.Compute) {
			t.Fatalf("workers=%d: compute rows differ from 1-worker run", workers)
		}
		if !reflect.DeepEqual(ref.Storage, got.Storage) {
			t.Fatalf("workers=%d: storage rows differ from 1-worker run", workers)
		}
	}
}

// TestRunCanonicalTraceOrder checks the merged trace contract: IDs
// are 1..N in (time, VD) order.
func TestRunCanonicalTraceOrder(t *testing.T) {
	f := smallFleet(t)
	ds, err := New(f).Run(context.Background(),
		Options{DurationSec: 6, TraceSampleEvery: 1, EventSampleEvery: 4, MaxVDs: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Trace {
		if ds.Trace[i].TraceID != uint64(i+1) {
			t.Fatalf("record %d has trace ID %d, want %d", i, ds.Trace[i].TraceID, i+1)
		}
		if i == 0 {
			continue
		}
		prev, cur := &ds.Trace[i-1], &ds.Trace[i]
		if cur.TimeUS < prev.TimeUS {
			t.Fatalf("records out of time order at %d: %d after %d", i, cur.TimeUS, prev.TimeUS)
		}
		if cur.TimeUS == prev.TimeUS && cur.VD < prev.VD {
			t.Fatalf("records out of VD order at %d within time %d", i, cur.TimeUS)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	f := smallFleet(t)
	// Pre-cancelled context: no work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := New(f).Run(ctx, Options{DurationSec: 5, MaxVDs: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: got (%v, %v), want context.Canceled", ds, err)
	}
	if ds != nil {
		t.Fatal("cancelled run must not return a dataset")
	}

	// Mid-run cancellation through the progress callback.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var calls int
	ds, err = New(f).Run(ctx2, Options{
		DurationSec: 5, MaxVDs: 12, Workers: 2,
		Progress: func(done, total int) {
			calls++
			if done >= 2 {
				cancel2()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got (%v, %v), want context.Canceled", ds, err)
	}
	if calls == 0 {
		t.Fatal("progress callback never ran")
	}
}

func TestRunProgressReachesTotal(t *testing.T) {
	f := smallFleet(t)
	var last, total int
	_, err := New(f).Run(context.Background(), Options{
		DurationSec: 4, MaxVDs: 9, Workers: 3,
		Progress: func(d, t int) { last, total = d, t },
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 || last != 9 {
		t.Fatalf("final progress (%d, %d), want (9, 9)", last, total)
	}
}

func TestOptionsValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"DurationSec", Options{DurationSec: -1}},
		{"TraceSampleEvery", Options{TraceSampleEvery: -3}},
		{"EventSampleEvery", Options{EventSampleEvery: -1}},
		{"MaxVDs", Options{MaxVDs: -2}},
		{"Workers", Options{Workers: -4}},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if err == nil {
			t.Fatalf("%s: negative value not rejected", c.name)
		}
		if !strings.Contains(err.Error(), c.name) {
			t.Fatalf("%s: error %q does not name the field", c.name, err)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}

	// Run must surface the validation error rather than clamping.
	f := smallFleet(t)
	if _, err := New(f).Run(context.Background(), Options{DurationSec: -5}); err == nil {
		t.Fatal("Run accepted a negative duration")
	}
}
