package ebs

import (
	"context"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

func smallFleet(t *testing.T) *workload.Fleet {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.NodesPerDC = 6
	cfg.DCs = 2
	cfg.BSPerDC = 3
	cfg.BSPerCluster = 3
	cfg.Users = 10
	cfg.DurationSec = 20
	f, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return f
}

func TestRunProducesConsistentDataset(t *testing.T) {
	f := smallFleet(t)
	sim := New(f)
	ds, err := sim.Run(context.Background(), Options{DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 4, MaxVDs: 12})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ds.Trace) == 0 {
		t.Fatal("no trace records")
	}
	if len(ds.Compute) == 0 || len(ds.Storage) == 0 {
		t.Fatal("missing metric rows")
	}
	top := f.Topology
	for i := range ds.Trace {
		r := &ds.Trace[i]
		if int(r.VD) >= 12 {
			t.Fatalf("record for VD %d beyond MaxVDs", r.VD)
		}
		// Path coherence: the record's entities must agree with topology.
		if top.VDs[r.VD].VM != r.VM || top.VMs[r.VM].Node != r.Node {
			t.Fatalf("incoherent path in record %+v", r)
		}
		if top.Segments[r.Segment].VD != r.VD {
			t.Fatalf("record's segment belongs to another VD: %+v", r)
		}
		if f.Seg2BS.BSOf(r.Segment) != r.Storage {
			t.Fatalf("record storage node mismatch: %+v", r)
		}
		if r.TimeUS < 0 || r.TimeUS >= 10*1_000_000 {
			t.Fatalf("record outside window: %+v", r)
		}
		if r.TotalLatency() <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
		if int(r.WT) >= top.Nodes[r.Node].WorkerNum {
			t.Fatalf("record WT %d out of range for node with %d WTs", r.WT, top.Nodes[r.Node].WorkerNum)
		}
	}
	if len(ds.VDSpecs) != len(top.VDs) || len(ds.VMSpecs) != len(top.VMs) {
		t.Fatal("spec data incomplete")
	}
}

func TestRunDeterministicTraceCount(t *testing.T) {
	f := smallFleet(t)
	a, err := New(f).Run(context.Background(), Options{DurationSec: 6, TraceSampleEvery: 1, EventSampleEvery: 8, MaxVDs: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(f).Run(context.Background(), Options{DurationSec: 6, TraceSampleEvery: 1, EventSampleEvery: 8, MaxVDs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace counts differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestEventSamplingScalesMetrics(t *testing.T) {
	f := smallFleet(t)
	full, err := New(f).Run(context.Background(), Options{DurationSec: 6, TraceSampleEvery: 1, EventSampleEvery: 1, MaxVDs: 4})
	if err != nil {
		t.Fatal(err)
	}
	thin, err := New(f).Run(context.Background(), Options{DurationSec: 6, TraceSampleEvery: 1, EventSampleEvery: 8, MaxVDs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(rows []trace.MetricRow) float64 {
		var s float64
		for i := range rows {
			s += rows[i].Bps()
		}
		return s
	}
	fs, ts := sum(full.Compute), sum(thin.Compute)
	if fs == 0 || ts == 0 {
		t.Skip("window too quiet to compare")
	}
	ratio := ts / fs
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("scaled thin-run traffic %v not within 3x of full-run %v", ts, fs)
	}
}

func TestThrottleAddsQueueDelay(t *testing.T) {
	f := smallFleet(t)
	// Force a tiny cap on VD 0 so it throttles hard.
	f.Topology.VDs[0].ThroughputCap = 1
	f.Topology.VDs[0].IOPSCap = 1

	with, err := New(f).Run(context.Background(), Options{DurationSec: 6, TraceSampleEvery: 1, MaxVDs: 1})
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(f).Run(context.Background(), Options{DurationSec: 6, TraceSampleEvery: 1, MaxVDs: 1, DisableThrottle: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Trace) == 0 {
		t.Skip("VD 0 idle in window")
	}
	var sumWith, sumWithout float64
	for i := range with.Trace {
		sumWith += float64(with.Trace[i].Latency[trace.StageComputeNode])
	}
	for i := range without.Trace {
		sumWithout += float64(without.Trace[i].Latency[trace.StageComputeNode])
	}
	if !(sumWith > sumWithout) {
		t.Fatalf("throttled run CN latency %v not above unthrottled %v", sumWith, sumWithout)
	}
}

func TestBindingAccessor(t *testing.T) {
	f := smallFleet(t)
	sim := New(f)
	b := sim.Binding(cluster.NodeID(0))
	if b == nil || b.Node != 0 {
		t.Fatal("Binding accessor broken")
	}
}
