package ebs

import (
	"context"
	"strings"
	"testing"

	"ebslab/internal/invariant"
	"ebslab/internal/trace"
)

// TestCheckModeCleanRun asserts the runtime validation subsystem passes a
// healthy run: every conservation law must hold by construction.
func TestCheckModeCleanRun(t *testing.T) {
	f := smallFleet(t)
	ds, err := New(f).Run(context.Background(), Options{
		DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 1,
		MaxVDs: 8, Check: true,
	})
	if err != nil {
		t.Fatalf("check mode rejected a healthy run: %v", err)
	}
	if len(ds.Trace) == 0 {
		t.Fatal("no trace records")
	}
}

// TestCheckModeWithSamplingAndThinning asserts the checkers stay sound when
// the trace is downsampled and the event stream thinned — the conservation
// laws must compare like with like under the scaling factors.
func TestCheckModeWithSamplingAndThinning(t *testing.T) {
	f := smallFleet(t)
	if _, err := New(f).Run(context.Background(), Options{
		DurationSec: 10, TraceSampleEvery: 16, EventSampleEvery: 4,
		MaxVDs: 10, Check: true,
	}); err != nil {
		t.Fatalf("check mode rejected a sampled+thinned run: %v", err)
	}
}

// artifactsOf builds check artifacts for a finished run by independently
// recounting the workload emission.
func artifactsOf(t *testing.T, r *fleetAndRun) *invariant.Artifacts {
	t.Helper()
	em, err := invariant.CountEmission(context.Background(), r.sim.fleet, r.maxVDs, r.dur, 1, 0)
	if err != nil {
		t.Fatalf("CountEmission: %v", err)
	}
	return &invariant.Artifacts{
		Fleet:            r.sim.fleet,
		Dataset:          r.ds,
		Emission:         em,
		EventSampleEvery: 1,
		TraceSampleEvery: 1,
	}
}

type fleetAndRun struct {
	sim    *Sim
	ds     *trace.Dataset
	maxVDs int
	dur    int
}

func cleanRun(t *testing.T) *fleetAndRun {
	t.Helper()
	f := smallFleet(t)
	sim := New(f)
	const maxVDs, dur = 8, 10
	ds, err := sim.Run(context.Background(), Options{DurationSec: dur, TraceSampleEvery: 1, EventSampleEvery: 1, MaxVDs: maxVDs})
	if err != nil {
		t.Fatal(err)
	}
	return &fleetAndRun{sim: sim, ds: ds, maxVDs: maxVDs, dur: dur}
}

func wantViolation(t *testing.T, rep *invariant.Report, law string) {
	t.Helper()
	if rep.OK() {
		t.Fatalf("corrupted dataset passed all invariants")
	}
	for _, v := range rep.Violations {
		if v.Law == law {
			return
		}
	}
	t.Errorf("no %q violation; got:\n%s", law, rep.String())
}

// TestCheckerCatchesDroppedRecord injects the canonical conservation bug —
// one IO silently dropped mid-merge — and asserts the runtime checker
// convicts it (acceptance criterion of the validation subsystem).
func TestCheckerCatchesDroppedRecord(t *testing.T) {
	r := cleanRun(t)
	a := artifactsOf(t, r)
	if rep := invariant.VerifyRun(a); !rep.OK() {
		t.Fatalf("baseline not clean:\n%s", rep.String())
	}

	// Drop one per-IO record from the middle of the merged trace.
	mid := len(r.ds.Trace) / 2
	r.ds.Trace = append(r.ds.Trace[:mid:mid], r.ds.Trace[mid+1:]...)
	rep := invariant.VerifyRun(a)
	wantViolation(t, rep, "trace/canonical-order")
	wantViolation(t, rep, "conserve/workload")
}

// TestCheckerCatchesDroppedRow injects a shard-merge bug in the metric
// dataset — one compute-domain row lost — and asserts both conservation
// laws convict it.
func TestCheckerCatchesDroppedRow(t *testing.T) {
	r := cleanRun(t)
	a := artifactsOf(t, r)
	mid := len(r.ds.Compute) / 2
	r.ds.Compute = append(r.ds.Compute[:mid:mid], r.ds.Compute[mid+1:]...)
	rep := invariant.VerifyRun(a)
	wantViolation(t, rep, "conserve/compute-vs-storage")
	wantViolation(t, rep, "conserve/workload")
}

// TestCheckerCatchesCorruptedRow injects a single-row miscount (one extra
// 4 KiB write attributed to a segment) and asserts the cross-domain law
// catches it even though every referential field stays valid.
func TestCheckerCatchesCorruptedRow(t *testing.T) {
	r := cleanRun(t)
	a := artifactsOf(t, r)
	r.ds.Storage[len(r.ds.Storage)/3].WriteBps += 4096
	rep := invariant.VerifyRun(a)
	wantViolation(t, rep, "conserve/compute-vs-storage")
}

// TestCheckerCatchesMisattributedRecord points one record at a storage node
// other than the one the placement assigns and asserts referential
// integrity convicts it.
func TestCheckerCatchesMisattributedRecord(t *testing.T) {
	r := cleanRun(t)
	a := artifactsOf(t, r)
	rec := &r.ds.Trace[len(r.ds.Trace)/4]
	rec.Storage++
	rep := invariant.VerifyRun(a)
	wantViolation(t, rep, "trace/integrity")
}

// TestDeterminismOracle asserts byte-identical datasets across worker
// counts via the replay fingerprint oracle.
func TestDeterminismOracle(t *testing.T) {
	f := smallFleet(t)
	sim := New(f)
	rep := &invariant.Report{}
	invariant.CheckDeterminism(rep, func(workers int) (*trace.Dataset, error) {
		return sim.Run(context.Background(), Options{
			DurationSec: 8, TraceSampleEvery: 1, EventSampleEvery: 2,
			MaxVDs: 10, Workers: workers,
		})
	}, 1, 2, 3)
	if !rep.OK() {
		t.Fatalf("engine not worker-count deterministic:\n%s", rep.String())
	}
}

// TestCheckModeErrorNamesLaw asserts a violation surfaces through the Run
// error path with its law identifier, so -check failures are actionable.
func TestCheckModeErrorNamesLaw(t *testing.T) {
	rep := &invariant.Report{}
	rep.Addf("conserve/workload", "VD 3: lost an IO")
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "conserve/workload") {
		t.Fatalf("report error %v does not name the law", err)
	}
}
