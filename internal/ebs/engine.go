package ebs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/diting"
	"ebslab/internal/invariant"
	"ebslab/internal/latency"
	"ebslab/internal/par"
	"ebslab/internal/sketch"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// vdIDBase spaces per-VD trace-ID streams far enough apart that no stream
// can run into the next one: 2^40 IOs per disk is ~34 years of traffic at
// the generator's 2^20 events/s cap.
func vdIDBase(vd cluster.VDID) uint64 { return (uint64(vd) + 1) << 40 }

// shard is the per-worker simulation state: its own tracer (the tracer is
// not safe for concurrent use) plus reusable buffers. In check mode each
// shard also accumulates its throttle-audit findings; under chaos it
// accumulates its fault counters (summed after the pool drains, so the
// totals are worker-count independent).
type shard struct {
	tracer *diting.Tracer
	demand []throttle.Demand
	audit  []string
	chaos  chaos.Stats
	sketch *sketch.Set // nil unless Options.Stream is set
}

// RunContext simulates the fleet's IO for the window across a bounded
// worker pool and returns the collected datasets. Virtual disks are
// independent by construction — per-VD series, event, and latency streams
// are all derived from (seed, VD) — so disks are dealt to workers
// dynamically and shard outputs are merged deterministically afterwards:
// the result is byte-identical for every Workers value.
//
// Cancellation is checked between virtual disks; on cancellation the
// partial work is discarded and ctx's error is returned.
func (s *Sim) RunContext(ctx context.Context, opts Options) (*trace.Dataset, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(s.fleet)
	top := s.fleet.Topology
	model := s.model
	if opts.Latency != nil {
		model = opts.Latency
	}
	nVDs := len(top.VDs)
	if opts.MaxVDs > 0 && opts.MaxVDs < nVDs {
		nVDs = opts.MaxVDs
	}

	// Per-node QP index lookup for worker-thread attribution (read-only
	// while the pool runs).
	wtOf := make(map[cluster.QPID]int8)
	for _, b := range s.bindings {
		for i, qp := range b.QPs {
			wtOf[qp] = b.WTOf[i]
		}
	}

	workers := par.Workers(opts.Workers)
	if workers > nVDs && nVDs > 0 {
		workers = nVDs
	}
	var streamCfg sketch.Config
	if opts.Stream != nil {
		streamCfg = s.streamConfigFor(opts, nVDs)
	}
	shards := make([]*shard, workers)
	for i := range shards {
		shards[i] = &shard{tracer: diting.New(opts.TraceSampleEvery)}
		if opts.Stream != nil {
			shards[i].sketch = sketch.NewSet(streamCfg)
		}
	}
	// Check mode counts every emitted IO at the source. Shards own disjoint
	// virtual disks, so per-VD slots have a single writer and the shared
	// Emission needs no locking.
	var emission *invariant.Emission
	if opts.Check {
		emission = invariant.NewEmission(len(top.VDs))
	}
	// Expand the fault plan once, before the pool: the schedule is a pure
	// function of (seed, plan, shape), read-only while workers run.
	var sched *chaos.Schedule
	if opts.Chaos != nil {
		sched = opts.Chaos.Expand(opts.Seed, chaos.Shape{
			BSs: len(top.StorageNodes), VDs: len(top.VDs), DurSec: opts.DurationSec,
		})
	}
	var (
		done      atomic.Int64
		progressM sync.Mutex
	)
	err := par.ForEachWorker(ctx, nVDs, workers, func(worker, vdIdx int) error {
		if err := s.simulateVD(shards[worker], vdIdx, opts, model, wtOf, emission, sched); err != nil {
			return err
		}
		if opts.Progress != nil {
			n := int(done.Add(1))
			progressM.Lock()
			opts.Progress(n, nVDs)
			progressM.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	merged := diting.Merge(opts.TraceSampleEvery, tracersOf(shards)...)
	ds := s.assembleDataset(opts, merged)
	// Merge the per-shard sketch sets into the caller's destination. Shards
	// own disjoint virtual disks, so Set.Merge is exactly commutative here
	// and the merged state is worker-count invariant.
	var shardTotals []sketch.Totals
	if opts.Stream != nil {
		mergedSketch := sketch.NewSet(streamCfg)
		for _, sh := range shards {
			shardTotals = append(shardTotals, sh.sketch.Totals())
			mergedSketch.Merge(sh.sketch)
		}
		*opts.Stream = *mergedSketch
	}
	if sched != nil && opts.ChaosStats != nil {
		st := chaos.Stats{CrashWindows: len(sched.Crashes), StormWindows: len(sched.Storms)}
		for _, sh := range shards {
			st.Merge(sh.chaos)
		}
		*opts.ChaosStats = st
	}
	if opts.Check {
		rep := invariant.VerifyRun(&invariant.Artifacts{
			Fleet:            s.fleet,
			Dataset:          ds,
			Emission:         emission,
			EventSampleEvery: opts.EventSampleEvery,
			TraceSampleEvery: opts.TraceSampleEvery,
		})
		for _, sh := range shards {
			rep.AddAll("throttle/grants", sh.audit)
		}
		if sched != nil {
			invariant.CheckChaosSchedule(rep, opts.Chaos, opts.Seed, sched)
		}
		if opts.Stream != nil {
			invariant.CheckSketchConservation(rep, opts.Stream, shardTotals, emission)
		}
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("ebs: check mode: %w", err)
		}
	}
	return ds, nil
}

// simulateVD replays one virtual disk's window into the shard's tracer:
// throttle replay for queue delay, event generation, per-stage latency
// sampling from the disk-derived RNG stream. Under a chaos schedule, storm
// windows boost the disk's offered demand (throttle and generator alike)
// and crash windows tax IOs bound for the dead BlockServer.
func (s *Sim) simulateVD(sh *shard, vdIdx int, opts Options, model *latency.Model, wtOf map[cluster.QPID]int8, emission *invariant.Emission, sched *chaos.Schedule) error {
	top := s.fleet.Topology
	vdID := cluster.VDID(vdIdx)
	vd := &top.VDs[vdIdx]
	vm := &top.VMs[vd.VM]
	node := &top.Nodes[vm.Node]

	var boost func(sec int) float64
	if sched != nil {
		boost = sched.VDStormFn(vdIdx)
	}

	// Per-VD throttle replay over the second-granularity series gives
	// each second's queue delay.
	var queueDelay []float64
	if !opts.DisableThrottle {
		series := s.fleet.VDSeries(vdID, opts.DurationSec)
		sh.demand = sh.demand[:0]
		for t, smp := range series {
			b := 1.0
			if boost != nil {
				b = boost(t)
			}
			sh.demand = append(sh.demand, throttle.Demand{
				ReadBps: b * smp.ReadBps, WriteBps: b * smp.WriteBps,
				ReadIOPS: b * smp.ReadIOPS, WriteIOPS: b * smp.WriteIOPS,
			})
		}
		caps := []throttle.Caps{{Tput: vd.ThroughputCap, IOPS: vd.IOPSCap}}
		group := [][]throttle.Demand{sh.demand}
		var res throttle.Result
		if opts.Check {
			var msgs []string
			res, msgs = throttle.SimulateAudited(caps, group)
			for _, m := range msgs {
				sh.audit = append(sh.audit, fmt.Sprintf("VD %d: %s", vdID, m))
			}
		} else {
			res = throttle.Simulate(caps, group)
		}
		queueDelay = res.QueueDelaySec[0]
	}

	rng := newLatencyRand(opts.Seed, vdID)
	tracer := sh.tracer
	tracer.StartStream(vdIDBase(vdID))

	var genErr error
	s.fleet.GenEventsBoosted(vdID, opts.DurationSec, opts.EventSampleEvery, boost, func(ev workload.Event) {
		if genErr != nil {
			return
		}
		if emission != nil {
			emission.Add(vdID, ev.Op, ev.Size)
		}
		seg := top.SegmentOfOffset(vdID, ev.Offset)
		sn := s.fleet.Seg2BS.BSOf(seg)
		if sn < 0 {
			genErr = fmt.Errorf("ebs: segment %d unplaced", seg)
			return
		}
		rec := trace.Record{
			TraceID: tracer.NextTraceID(),
			TimeUS:  ev.TimeUS,
			Op:      ev.Op,
			Size:    ev.Size,
			Offset:  ev.Offset,
			DC:      node.DC,
			Node:    node.ID,
			User:    vm.User,
			VM:      vm.ID,
			VD:      vdID,
			QP:      ev.QP,
			WT:      wtOf[ev.QP],
			Storage: sn,
			Segment: seg,
		}
		rec.Latency = model.Sample(rng, ev.Op, ev.Size, latency.NoCache, false)
		sec := int(ev.TimeUS / 1_000_000)
		if sched != nil {
			if sched.BSDownAt(int(sn), sec) {
				sh.chaos.FaultedIOs++
				if sched.PenaltyUS > 0 {
					rec.Latency[trace.StageFrontendNet] += float32(sched.PenaltyUS)
				}
			}
			if boost != nil && boost(sec) != 1 {
				sh.chaos.StormIOs++
			}
		}
		if queueDelay != nil {
			if sec < len(queueDelay) && queueDelay[sec] > 0 {
				rec.Latency[trace.StageComputeNode] += float32(queueDelay[sec] * 1e6)
			}
		}
		tracer.Observe(rec)
		if sh.sketch != nil {
			// The record is final here (queue delay and fault penalties
			// applied), so the latency sketch sees what the trace records.
			sh.sketch.Observe(&rec)
		}
	})
	return genErr
}

// tracersOf projects the shard slice to its tracers in shard order.
func tracersOf(shards []*shard) []*diting.Tracer {
	out := make([]*diting.Tracer, len(shards))
	for i, sh := range shards {
		out[i] = sh.tracer
	}
	return out
}
