package ebs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/diting"
	"ebslab/internal/invariant"
	"ebslab/internal/latency"
	"ebslab/internal/par"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
	"ebslab/internal/xrand"
)

// vdIDBase spaces per-VD trace-ID streams far enough apart that no stream
// can run into the next one: 2^40 IOs per disk is ~34 years of traffic at
// the generator's 2^20 events/s cap.
func vdIDBase(vd cluster.VDID) uint64 { return (uint64(vd) + 1) << 40 }

// shard is the per-worker simulation state: its own pooled tracer (the
// tracer is not safe for concurrent use), its columnar record batch, and
// every scratch buffer the per-VD replay needs, so steady-state simulation
// allocates nothing. In check mode each shard also accumulates its
// throttle-audit findings; under chaos it accumulates its fault counters
// (summed after the pool drains, so the totals are worker-count
// independent).
type shard struct {
	tracer *diting.Tracer
	sketch *sketch.Set // nil unless Options.Stream is set
	batch  *trace.Batch

	// snap is the current virtual disk's sketch delta, present only when
	// Options.Snapshots is set: it receives the same batches as the shard's
	// cumulative set and is folded into the sink when the disk completes.
	snap    *sketch.Set
	snapCfg sketch.Config
	sink    *SnapshotSink

	// em is the per-VD fill state behind emitFn; emitFn is bound once per
	// shard so the event generator callback costs no per-VD closure.
	em     vdEmitter
	emitFn func(workload.Event)

	series []workload.Sample
	delay  []float64 // scenario DelayModel scratch
	demand []throttle.Demand
	caps   [1]throttle.Caps
	group  [1][]throttle.Demand
	th     throttle.Scratch

	// obs is this shard's slice of the run's control-plane observation
	// (present only when Options.Observe is set); per-shard instances are
	// merged after the pool drains, commutatively, so the merged counters
	// are worker-count invariant.
	obs *control.Observation

	audit []string
	chaos chaos.Stats
}

// flush drains the shard's batch into the tracer and (when streaming) the
// sketch set, in that order — the same tracer-then-sketch sequence the
// record-at-a-time path observed per IO.
func (sh *shard) flush() {
	if sh.batch.Len() == 0 {
		return
	}
	sh.tracer.EmitBatch(sh.batch)
	if sh.sketch != nil {
		sh.sketch.ObserveBatch(sh.batch)
	}
	if sh.snap != nil {
		sh.snap.ObserveBatch(sh.batch)
	}
	if sh.obs != nil {
		sh.obs.ObserveBatch(sh.batch)
	}
	sh.batch.Reset()
}

// newShards builds the per-worker shard states for one run.
func (s *Sim) newShards(workers int, opts *Options, streamCfg sketch.Config) []*shard {
	shards := make([]*shard, workers)
	for i := range shards {
		sh := &shard{
			tracer: diting.Acquire(opts.TraceSampleEvery),
			batch:  trace.GetBatch(trace.DefaultBatchCap),
		}
		sh.emitFn = sh.em.emit
		if opts.Stream != nil {
			sh.sketch = sketch.NewSet(streamCfg)
		}
		if opts.Snapshots != nil {
			sh.sink = opts.Snapshots
			sh.snapCfg = streamCfg
		}
		if opts.Observe != nil {
			sh.obs = control.NewObservation(opts.Observe.Shape)
		}
		shards[i] = sh
	}
	return shards
}

// releaseShards returns the shards' pooled tracers and batches. Callers
// must have copied or detached everything they keep (Merge copies).
func releaseShards(shards []*shard) {
	for _, sh := range shards {
		sh.tracer.Release()
		sh.batch.Release()
	}
}

// Run simulates the fleet's IO for the window across a bounded worker pool
// and returns the collected datasets. It is the canonical entry point;
// every other runner (RunShard, the fabric worker) shares its batch
// pipeline. Virtual disks are independent by construction — per-VD series,
// event, and latency streams are all derived from (seed, VD) — so disks are
// dealt to workers dynamically and shard outputs are merged
// deterministically afterwards: the result is byte-identical for every
// Workers value.
//
// Cancellation is checked between virtual disks; on cancellation the
// partial work is discarded and ctx's error is returned. A nil ctx is
// treated as context.Background().
func (s *Sim) Run(ctx context.Context, opts Options) (*trace.Dataset, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := opts.prepare(s.fleet)
	if err != nil {
		return nil, err
	}
	top := s.fleet.Topology
	if err := s.checkControlOptions(&opts); err != nil {
		return nil, err
	}
	if err := s.checkScenarioOptions(&opts); err != nil {
		return nil, err
	}
	table := s.tableFor(opts)
	nVDs := s.runVDs(opts)

	workers := par.Workers(opts.Workers)
	if workers > nVDs && nVDs > 0 {
		workers = nVDs
	}
	var streamCfg sketch.Config
	if opts.Stream != nil {
		streamCfg = s.streamConfigFor(opts, nVDs)
	}
	shards := s.newShards(workers, &opts, streamCfg)
	// Check mode counts every emitted IO at the source. Shards own disjoint
	// virtual disks, so per-VD slots have a single writer and the shared
	// Emission needs no locking.
	var emission *invariant.Emission
	if opts.Check {
		emission = invariant.NewEmission(len(top.VDs))
	}
	// Expand the fault plan once, before the pool: the schedule is a pure
	// function of (seed, plan, shape), read-only while workers run.
	sched := s.expandChaos(opts)
	var (
		done      atomic.Int64
		progressM sync.Mutex
	)
	err = par.ForEachWorker(ctx, nVDs, workers, func(worker, vdIdx int) error {
		if err := s.simulateVD(shards[worker], vdIdx, &opts, table, emission, sched); err != nil {
			return err
		}
		if opts.Progress != nil {
			n := int(done.Add(1))
			progressM.Lock()
			opts.Progress(n, nVDs)
			progressM.Unlock()
		}
		return nil
	})
	if err != nil {
		releaseShards(shards)
		return nil, err
	}

	if opts.Observe != nil {
		for _, sh := range shards {
			if err := opts.Observe.Merge(sh.obs); err != nil {
				releaseShards(shards)
				return nil, err
			}
		}
	}
	merged := diting.Merge(opts.TraceSampleEvery, tracersOf(shards)...)
	ds := s.assembleDataset(opts, merged)
	var sets []*sketch.Set
	if opts.Stream != nil {
		sets = make([]*sketch.Set, len(shards))
		for i, sh := range shards {
			sets[i] = sh.sketch
		}
	}
	var ioStats chaos.Stats
	var audits []string
	for _, sh := range shards {
		ioStats.Merge(sh.chaos)
		audits = append(audits, sh.audit...)
	}
	releaseShards(shards)
	if err := s.runTail(opts, ds, sched, streamCfg, sets, ioStats, emission, audits); err != nil {
		return nil, err
	}
	return ds, nil
}

// runTail is the post-merge finalization shared by Run and MergeShards:
// publish the merged sketch state, publish chaos accounting, and run the
// check-mode verification suite.
func (s *Sim) runTail(opts Options, ds *trace.Dataset, sched *chaos.Schedule, streamCfg sketch.Config, sets []*sketch.Set, ioStats chaos.Stats, emission *invariant.Emission, audits []string) error {
	// Merge the per-shard sketch sets into the caller's destination. Shards
	// own disjoint virtual disks, so Set.Merge is exactly commutative here
	// and the merged state is worker-count invariant.
	var shardTotals []sketch.Totals
	if opts.Stream != nil {
		mergedSketch := sketch.NewSet(streamCfg)
		for _, set := range sets {
			shardTotals = append(shardTotals, set.Totals())
			mergedSketch.Merge(set)
		}
		*opts.Stream = *mergedSketch
	}
	if sched != nil && opts.ChaosStats != nil {
		st := chaos.Stats{CrashWindows: len(sched.Crashes), StormWindows: len(sched.Storms)}
		st.Merge(ioStats)
		*opts.ChaosStats = st
	}
	if opts.Check {
		rep := invariant.VerifyRun(&invariant.Artifacts{
			Fleet:            s.fleet,
			Dataset:          ds,
			Emission:         emission,
			EventSampleEvery: opts.EventSampleEvery,
			TraceSampleEvery: opts.TraceSampleEvery,
			Control:          opts.Control,
		})
		rep.AddAll("throttle/grants", audits)
		if sched != nil {
			invariant.CheckChaosSchedule(rep, opts.Chaos, opts.Seed, sched)
		}
		if opts.Stream != nil {
			invariant.CheckSketchConservation(rep, opts.Stream, shardTotals, emission)
		}
		if err := rep.Err(); err != nil {
			return fmt.Errorf("ebs: check mode: %w", err)
		}
	}
	return nil
}

// expandChaos expands the run's fault plan against the fleet shape, or
// returns nil when the run has none.
func (s *Sim) expandChaos(opts Options) *chaos.Schedule {
	if opts.Chaos == nil {
		return nil
	}
	top := s.fleet.Topology
	return opts.Chaos.Expand(opts.Seed, chaos.Shape{
		BSs: len(top.StorageNodes), VDs: len(top.VDs), DurSec: opts.DurationSec,
	})
}

// vdEmitter is the batch-fill state of the virtual disk a shard is
// currently replaying. One vdEmitter lives in each shard and is overwritten
// per disk; its emit method is the event generator's callback, appending
// one columnar row per IO and flushing the shard's batch as it fills.
type vdEmitter struct {
	sh         *shard
	top        *cluster.Topology
	seg2bs     *cluster.SegmentMap
	wtOf       []int8
	table      *latency.Table
	rng        *xrand.Rand
	emission   *invariant.Emission
	sched      *chaos.Schedule
	boost      func(sec int) float64
	queueDelay []float64
	// extraDelay is a scenario DelayModel's per-second latency term in µs,
	// landing on extraStage (nil when the run's scenario models no delay).
	extraDelay []float64
	extraStage trace.Stage
	ctl        *control.Timeline // nil unless the run applies a control timeline

	vdID cluster.VDID
	dc   cluster.DCID
	node cluster.NodeID
	user cluster.UserID
	vm   cluster.VMID

	genErr error
}

// emit appends one generated IO to the shard's batch: placement lookup,
// latency sampling from the disk-derived RNG stream, chaos penalties, and
// throttle queue delay, exactly as the record-at-a-time path applied them.
func (e *vdEmitter) emit(ev workload.Event) {
	if e.genErr != nil {
		return
	}
	if e.emission != nil {
		e.emission.Add(e.vdID, ev.Op, ev.Size)
	}
	seg := e.top.SegmentOfOffset(e.vdID, ev.Offset)
	sn := e.seg2bs.BSOf(seg)
	if sn < 0 {
		e.genErr = fmt.Errorf("ebs: segment %d unplaced", seg)
		return
	}
	sec := int(ev.TimeUS / 1_000_000)
	wt := e.wtOf[ev.QP]
	// Control-plane actuation: the timeline's epoch rows override the
	// segment's BS (migrations already landed) and the QP's worker thread
	// (rebinds), via pure lookups — no RNG draw, so the generated stream is
	// identical to an uncontrolled run's.
	var ctlEpoch int
	if e.ctl != nil {
		ctlEpoch = e.ctl.EpochOf(sec)
		if row := e.ctl.BSRow(ctlEpoch); row != nil {
			sn = row[seg]
		}
		if row := e.ctl.WTRow(ctlEpoch); row != nil {
			wt = row[ev.QP]
		}
	}
	sh := e.sh
	b := sh.batch
	if b.Full() {
		sh.flush()
	}
	i := b.Next()
	b.TraceID[i] = sh.tracer.NextTraceID()
	b.TimeUS[i] = ev.TimeUS
	b.Op[i] = ev.Op
	b.Size[i] = ev.Size
	b.Offset[i] = ev.Offset
	b.DC[i] = e.dc
	b.Node[i] = e.node
	b.User[i] = e.user
	b.VM[i] = e.vm
	b.VD[i] = e.vdID
	b.QP[i] = ev.QP
	b.WT[i] = wt
	b.Storage[i] = sn
	b.Segment[i] = seg
	e.table.SampleInto(e.rng.Rand, ev.Op, ev.Size, &b.Lat[i])
	if e.ctl != nil && e.ctl.MovedAt(ctlEpoch, int(seg)) {
		// The segment is landing on its new BS this epoch: data movement
		// competes with foreground traffic on the backend network.
		b.Lat[i][trace.StageBackendNet] += float32(e.ctl.PenaltyUS)
	}
	if e.sched != nil {
		if e.sched.BSDownAt(int(sn), sec) {
			sh.chaos.FaultedIOs++
			if e.sched.PenaltyUS > 0 {
				b.Lat[i][trace.StageFrontendNet] += float32(e.sched.PenaltyUS)
			}
		}
		if e.boost != nil && e.boost(sec) != 1 {
			sh.chaos.StormIOs++
		}
	}
	if e.queueDelay != nil {
		if sec < len(e.queueDelay) && e.queueDelay[sec] > 0 {
			b.Lat[i][trace.StageComputeNode] += float32(e.queueDelay[sec] * 1e6)
		}
	}
	if e.extraDelay != nil {
		if sec < len(e.extraDelay) && e.extraDelay[sec] > 0 {
			b.Lat[i][e.extraStage] += float32(e.extraDelay[sec])
		}
	}
}

// simulateVD replays one virtual disk's window into the shard's batch
// pipeline: throttle replay for queue delay, event generation over the
// shared traffic series, per-stage latency sampling from the disk-derived
// RNG stream. Under a chaos schedule, storm windows boost the disk's
// offered demand (throttle and generator alike) and crash windows tax IOs
// bound for the dead BlockServer.
func (s *Sim) simulateVD(sh *shard, vdIdx int, opts *Options, table *latency.Table, emission *invariant.Emission, sched *chaos.Schedule) error {
	top := s.fleet.Topology
	vdID := cluster.VDID(vdIdx)
	vd := &top.VDs[vdIdx]
	vm := &top.VMs[vd.VM]
	node := &top.Nodes[vm.Node]

	// A record-sourced replay scenario short-circuits the generative path:
	// the records are the traffic, verbatim.
	sc := opts.Scenario
	if rs, ok := sc.(scenario.RecordSource); ok && rs.SourcesRecords() {
		return s.replayVD(sh, vdID, opts, emission, sched, rs)
	}

	var boost func(sec int) float64
	if sched != nil {
		boost = sched.VDStormFn(vdIdx)
	}

	// One traffic series feeds both the throttle replay and the event
	// generator (their RNG streams are independent, so sharing the series
	// changes no draw). A scenario replaces the fleet's native series.
	if sc != nil {
		sh.series = sc.SeriesInto(sh.series, vdID, opts.DurationSec)
	} else {
		sh.series = s.fleet.VDSeriesInto(sh.series, vdID, opts.DurationSec)
	}

	// Per-VD throttle replay over the second-granularity series gives
	// each second's queue delay.
	var queueDelay []float64
	if !opts.DisableThrottle {
		sh.demand = sh.demand[:0]
		for t, smp := range sh.series {
			b := 1.0
			if boost != nil {
				b = boost(t)
			}
			sh.demand = append(sh.demand, throttle.Demand{
				ReadBps: b * smp.ReadBps, WriteBps: b * smp.WriteBps,
				ReadIOPS: b * smp.ReadIOPS, WriteIOPS: b * smp.WriteIOPS,
			})
		}
		sh.caps[0] = throttle.Caps{Tput: vd.ThroughputCap, IOPS: vd.IOPSCap}
		sh.group[0] = sh.demand
		// A VD carrying control-plane lending deltas replays against the
		// scheduled per-epoch caps; every other VD takes the plain path, so
		// the arithmetic (and the dataset) is untouched for them. Scheduled
		// caps compose from up to two sources, in order: a scenario
		// CapScheduler rewrites the second's base caps, then the control
		// plane's lending deltas apply on top.
		var capsAt func(t int, eff []throttle.Caps)
		capSch, _ := sc.(scenario.CapScheduler)
		var lend func(t int, eff []throttle.Caps)
		if opts.Control != nil && opts.Control.VDLends(vdIdx) {
			lend = lendCapsAt(opts.Control, vdIdx)
		}
		switch {
		case capSch != nil && lend != nil:
			base := sh.caps[0]
			capsAt = func(t int, eff []throttle.Caps) {
				eff[0] = capSch.CapsAt(vdID, base, t)
				lend(t, eff)
			}
		case capSch != nil:
			base := sh.caps[0]
			capsAt = func(t int, eff []throttle.Caps) {
				eff[0] = capSch.CapsAt(vdID, base, t)
			}
		case lend != nil:
			capsAt = lend
		}
		switch {
		case opts.Check && capsAt != nil:
			res, msgs := throttle.SimulateScheduledAudited(sh.caps[:], sh.group[:], capsAt)
			for _, m := range msgs {
				sh.audit = append(sh.audit, fmt.Sprintf("VD %d: %s", vdID, m))
			}
			queueDelay = res.QueueDelaySec[0]
		case opts.Check:
			res, msgs := throttle.SimulateAudited(sh.caps[:], sh.group[:])
			for _, m := range msgs {
				sh.audit = append(sh.audit, fmt.Sprintf("VD %d: %s", vdID, m))
			}
			queueDelay = res.QueueDelaySec[0]
		case capsAt != nil:
			res := sh.th.SimulateScheduled(sh.caps[:], sh.group[:], capsAt)
			queueDelay = res.QueueDelaySec[0]
		default:
			res := sh.th.Simulate(sh.caps[:], sh.group[:])
			queueDelay = res.QueueDelaySec[0]
		}
	}

	// A scenario delay model turns the demand series into a per-second
	// latency term on its chosen stage (e.g. bufferbloat's device queue).
	var extraDelay []float64
	var extraStage trace.Stage
	if dm, ok := sc.(scenario.DelayModel); ok {
		sh.delay, extraStage = dm.DelaySeries(sh.delay, vdID, sh.series)
		extraDelay = sh.delay
	}

	rng := xrand.Get(latencySeed(opts.Seed, vdID))
	defer rng.Release()
	sh.tracer.StartStream(vdIDBase(vdID))
	if sh.sink != nil {
		sh.snap = sketch.NewSet(sh.snapCfg)
	}

	sh.em = vdEmitter{
		sh:         sh,
		top:        top,
		seg2bs:     s.fleet.Seg2BS,
		wtOf:       s.wtOf,
		table:      table,
		rng:        rng,
		emission:   emission,
		sched:      sched,
		boost:      boost,
		queueDelay: queueDelay,
		extraDelay: extraDelay,
		extraStage: extraStage,
		ctl:        opts.Control,
		vdID:       vdID,
		dc:         node.DC,
		node:       node.ID,
		user:       vm.User,
		vm:         vm.ID,
	}
	if sc != nil {
		sc.GenEvents(vdID, sh.series, opts.EventSampleEvery, boost, sh.emitFn)
	} else {
		s.fleet.GenEventsBoostedOver(vdID, sh.series, opts.EventSampleEvery, boost, sh.emitFn)
	}
	sh.flush()
	if sh.sink != nil {
		// The disk is complete: hand its delta to the sink (which consumes
		// it) so concurrent snapshot readers see whole-disk increments only.
		sh.sink.fold(sh.snap, sh.snapCfg)
		sh.snap = nil
	}
	return sh.em.genErr
}

// replayVD streams one virtual disk's verbatim records (a record-sourced
// replay scenario) through the shard's batch pipeline. Placement, worker
// thread, and latencies come from the records themselves; the engine only
// renumbers trace IDs on the disk-derived stream (so sampling stays
// worker-count invariant), counts emission for check mode, and applies chaos
// crash penalties — storms cannot boost verbatim history, and the throttle's
// queue delay is already baked into the measured latencies.
func (s *Sim) replayVD(sh *shard, vdID cluster.VDID, opts *Options, emission *invariant.Emission, sched *chaos.Schedule, rs scenario.RecordSource) error {
	sh.tracer.StartStream(vdIDBase(vdID))
	if sh.sink != nil {
		sh.snap = sketch.NewSet(sh.snapCfg)
	}
	limitUS := int64(opts.DurationSec) * 1_000_000
	for _, r := range rs.Records(vdID) {
		if r.TimeUS >= limitUS {
			continue
		}
		if emission != nil {
			emission.Add(vdID, r.Op, r.Size)
		}
		b := sh.batch
		if b.Full() {
			sh.flush()
			b = sh.batch
		}
		i := b.Next()
		b.TraceID[i] = sh.tracer.NextTraceID()
		b.TimeUS[i] = r.TimeUS
		b.Op[i] = r.Op
		b.Size[i] = r.Size
		b.Offset[i] = r.Offset
		b.DC[i] = r.DC
		b.Node[i] = r.Node
		b.User[i] = r.User
		b.VM[i] = r.VM
		b.VD[i] = r.VD
		b.QP[i] = r.QP
		b.WT[i] = r.WT
		b.Storage[i] = r.Storage
		b.Segment[i] = r.Segment
		b.Lat[i] = r.Latency
		if sched != nil && sched.BSDownAt(int(r.Storage), int(r.TimeUS/1_000_000)) {
			sh.chaos.FaultedIOs++
			if sched.PenaltyUS > 0 {
				b.Lat[i][trace.StageFrontendNet] += float32(sched.PenaltyUS)
			}
		}
	}
	sh.flush()
	if sh.sink != nil {
		sh.sink.fold(sh.snap, sh.snapCfg)
		sh.snap = nil
	}
	return nil
}

// tracersOf projects the shard slice to its tracers in shard order.
func tracersOf(shards []*shard) []*diting.Tracer {
	out := make([]*diting.Tracer, len(shards))
	for i, sh := range shards {
		out[i] = sh.tracer
	}
	return out
}
