package ebs

import (
	"context"
	"math"
	"testing"

	"ebslab/internal/chaos"
	"ebslab/internal/invariant"
	"ebslab/internal/sketch"
)

// streamRun executes one streamed simulation and returns the merged sketch
// set.
func streamRun(t *testing.T, s *Sim, opts Options) *sketch.Set {
	t.Helper()
	set := sketch.NewSet(sketch.Config{})
	opts.Stream = set
	if _, err := s.Run(context.Background(), opts); err != nil {
		t.Fatalf("streamed run: %v", err)
	}
	return set
}

// TestStreamWorkerCountInvariance is the subsystem's acceptance contract:
// the merged sketch fingerprint must be identical for Workers=1, 2, and 8
// on the same seed — with and without an active chaos plan.
func TestStreamWorkerCountInvariance(t *testing.T) {
	f := smallFleet(t)
	s := New(f)
	for name, plan := range map[string]*chaos.Plan{
		"fault-free": nil,
		"chaos": {
			BSCrashes: 4, MeanDownSec: 3, FailoverPenaltyUS: 150,
			Storms: 3, StormFactor: 4, MeanStormSec: 3, Recoverable: true,
		},
	} {
		t.Run(name, func(t *testing.T) {
			rep := &invariant.Report{}
			invariant.CheckSketchDeterminism(rep, func(workers int) (*sketch.Set, error) {
				set := sketch.NewSet(sketch.Config{})
				_, err := s.Run(context.Background(), Options{
					DurationSec: 8, TraceSampleEvery: 4, EventSampleEvery: 2,
					MaxVDs: 16, Workers: workers, Chaos: plan, Stream: set,
				})
				return set, err
			}, 1, 2, 8)
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamIndependentOfTraceSampling: the sketches ingest every simulated
// IO regardless of the DiTing trace sampling rate, so thinning the trace
// must not move the sketch state at all.
func TestStreamIndependentOfTraceSampling(t *testing.T) {
	f := smallFleet(t)
	s := New(f)
	base := Options{DurationSec: 6, EventSampleEvery: 2, MaxVDs: 12, Workers: 2}
	full := base
	full.TraceSampleEvery = 1
	thin := base
	thin.TraceSampleEvery = 64
	a := streamRun(t, s, full)
	b := streamRun(t, s, thin)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("sketch state depends on the trace sampling rate")
	}
}

// TestStreamConservationUnderCheck runs the streamed path with the full
// invariant suite on: the sketch conservation law must hold against both
// the per-shard totals and the workload layer's emission accounting.
func TestStreamConservationUnderCheck(t *testing.T) {
	f := smallFleet(t)
	set := sketch.NewSet(sketch.Config{})
	ds, err := New(f).Run(context.Background(), Options{
		DurationSec: 6, TraceSampleEvery: 2, EventSampleEvery: 2,
		MaxVDs: 12, Workers: 3, Check: true, Stream: set,
	})
	if err != nil {
		t.Fatalf("check-mode streamed run: %v", err)
	}
	if len(ds.Trace) == 0 || set.Totals().IOs == 0 {
		t.Fatal("streamed run produced no data")
	}
}

// relErr returns |got-want|/|want| (infinity when want is 0 and got isn't).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSketchAccuracySmoke is the calibrated exact-vs-streamed gate wired
// into `make sketch-accuracy-smoke`: one run produces both views of the
// same IO stream (full trace retained for the exact batch path, sketches
// for the streamed path), and the streamed metrics must sit inside the
// documented error bounds.
func TestSketchAccuracySmoke(t *testing.T) {
	f := smallFleet(t)
	set := sketch.NewSet(sketch.Config{})
	ds, err := New(f).Run(context.Background(), Options{
		DurationSec: 10, TraceSampleEvery: 1, EventSampleEvery: 1,
		MaxVDs: 24, Workers: 4, Stream: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := sketch.ExactSkewness(ds, set.Config())
	got := set.Skewness()

	// Counting metrics are exact by construction: integer sketch counters
	// against integer-valued float row sums.
	for _, c := range []struct {
		name      string
		got, want float64
		bound     float64
	}{
		{"CCR1", got.CCR1, exact.CCR1, 1e-9},
		{"CCR10", got.CCR10, exact.CCR10, 1e-9},
		{"NormCoV", got.NormCoV, exact.NormCoV, 1e-9},
		{"P2ARead", got.P2ARead, exact.P2ARead, 1e-9},
		{"P2AWrite", got.P2AWrite, exact.P2AWrite, 1e-9},
		{"P2ATotal", got.P2ATotal, exact.P2ATotal, 1e-9},
		{"WrRatio", got.WrRatio, exact.WrRatio, 1e-9},
		{"MeanRAR", got.MeanRAR, exact.MeanRAR, 1e-9},
		{"EWMA", got.EWMABps, exact.EWMABps, 1e-9},
		{"Bytes", got.Bytes, exact.Bytes, 1e-9},
		// Quantile sketches carry alpha=1% bucket error; gate at 2%.
		{"LatencyP50", got.LatencyP50, exact.LatencyP50, 0.02},
		{"LatencyP99", got.LatencyP99, exact.LatencyP99, 0.02},
		{"SizeP50", got.SizeP50, exact.SizeP50, 0.02},
		{"SizeP99", got.SizeP99, exact.SizeP99, 0.02},
		// HLL at p=12 has ~1.6% standard error; gate at 10%.
		{"ActiveBlocks", got.ActiveBlocks, exact.ActiveBlocks, 0.10},
		{"ActiveSegments", got.ActiveSegments, exact.ActiveSegments, 0.10},
	} {
		if math.IsNaN(c.want) {
			t.Fatalf("%s: exact value is NaN", c.name)
		}
		if re := relErr(c.got, c.want); re > c.bound {
			t.Errorf("%s: streamed %.6g vs exact %.6g, rel err %.4g > %.4g",
				c.name, c.got, c.want, re, c.bound)
		}
	}

	// Top-K agreement: at least 90% of the exact heavy hitters retained.
	if ov := sketch.Overlap(exact.HotVDs, got.HotVDs); ov < 0.9 {
		t.Errorf("hot-VD overlap %.2f < 0.9", ov)
	}
	if ov := sketch.Overlap(exact.HotSegments, got.HotSegments); ov < 0.9 {
		t.Errorf("hot-segment overlap %.2f < 0.9", ov)
	}
	if got.IOs != exact.IOs {
		t.Errorf("IOs %d != exact %d", got.IOs, exact.IOs)
	}
}
