package ebs

import (
	"context"
	"testing"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/invariant"
	"ebslab/internal/sketch"
)

// TestRunShardMergeMatchesRun is the fabric's foundation: executing
// the run as VD-disjoint shards and merging the partials must reproduce the
// single-process dataset byte for byte, for several shard counts, including
// the full feature set (check mode, chaos, streaming sketches).
func TestRunShardMergeMatchesRun(t *testing.T) {
	f := smallFleet(t)
	mkOpts := func() (Options, *sketch.Set, *chaos.Stats) {
		stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
		stats := &chaos.Stats{}
		return Options{
			DurationSec: 8, TraceSampleEvery: 4, EventSampleEvery: 2,
			MaxVDs: 16, Workers: 2, Check: true,
			Chaos:      &chaos.Plan{BSCrashes: 4, MeanDownSec: 3, FailoverPenaltyUS: 1500, Storms: 3, StormFactor: 4, MeanStormSec: 3},
			ChaosStats: stats, Stream: stream,
		}, stream, stats
	}

	refOpts, refStream, refStats := mkOpts()
	ref, err := New(f).Run(context.Background(), refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refFP := invariant.Fingerprint(ref)

	for _, nShards := range []int{1, 2, 3, 5} {
		opts, stream, stats := mkOpts()
		sim := New(f)
		plan := cluster.PlanShards(16, nShards)
		var parts []*ShardPartial
		for _, r := range plan {
			p, err := sim.RunShard(context.Background(), opts, r.Lo, r.Hi)
			if err != nil {
				t.Fatalf("shards=%d: RunShard%v: %v", nShards, r, err)
			}
			parts = append(parts, p)
		}
		ds, err := sim.MergeShards(opts, parts)
		if err != nil {
			t.Fatalf("shards=%d: MergeShards: %v", nShards, err)
		}
		if got := invariant.Fingerprint(ds); got != refFP {
			t.Fatalf("shards=%d: dataset fingerprint %s != single-process %s", nShards, got, refFP)
		}
		if stream.Fingerprint() != refStream.Fingerprint() {
			t.Fatalf("shards=%d: sketch fingerprint drifted", nShards)
		}
		if *stats != *refStats {
			t.Fatalf("shards=%d: chaos stats %+v != %+v", nShards, *stats, *refStats)
		}
	}
}

// TestMergeShardsRejectsBadCoverage pins the merge's safety net: gaps,
// overlaps, and short coverage are errors, never a silently wrong dataset.
func TestMergeShardsRejectsBadCoverage(t *testing.T) {
	f := smallFleet(t)
	sim := New(f)
	opts := Options{DurationSec: 4, TraceSampleEvery: 1, EventSampleEvery: 4, MaxVDs: 8}
	run := func(lo, hi int) *ShardPartial {
		p, err := sim.RunShard(context.Background(), opts, lo, hi)
		if err != nil {
			t.Fatalf("RunShard[%d,%d): %v", lo, hi, err)
		}
		return p
	}
	cases := []struct {
		name  string
		parts []*ShardPartial
	}{
		{"gap", []*ShardPartial{run(0, 3), run(5, 8)}},
		{"overlap", []*ShardPartial{run(0, 5), run(3, 8)}},
		{"short", []*ShardPartial{run(0, 5)}},
		{"duplicate", []*ShardPartial{run(0, 4), run(0, 4), run(4, 8)}},
	}
	for _, tc := range cases {
		if _, err := sim.MergeShards(opts, tc.parts); err == nil {
			t.Fatalf("%s coverage merged without error", tc.name)
		}
	}
	if _, err := sim.MergeShards(opts, []*ShardPartial{run(0, 4), run(4, 8)}); err != nil {
		t.Fatalf("exact coverage rejected: %v", err)
	}
	if _, err := sim.RunShard(context.Background(), opts, 6, 12); err == nil {
		t.Fatal("RunShard beyond MaxVDs succeeded")
	}
}
