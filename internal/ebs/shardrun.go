package ebs

import (
	"context"
	"fmt"
	"sort"

	"ebslab/internal/chaos"
	"ebslab/internal/diting"
	"ebslab/internal/invariant"
	"ebslab/internal/par"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
)

// ShardPartial is the result of simulating one VD-disjoint shard [Lo, Hi) of
// the fleet: exactly what a fabric worker ships back to the coordinator.
// Metric rows are UNSCALED (event-thinning compensation is applied once, at
// the merge), records carry shard-local trace IDs (the merge reassigns the
// canonical 1..N numbering), and the sketch set — when streaming — is the
// shard's own partial state. Because shards own disjoint virtual disks,
// MergeShards over any covering set of partials reproduces the single-process
// dataset byte for byte.
type ShardPartial struct {
	Lo, Hi  int
	Records []trace.Record
	Compute []trace.MetricRow
	Storage []trace.MetricRow
	// Sketch is non-nil iff the run streams (Options.Stream was set).
	Sketch *sketch.Set
	// Chaos holds the shard's fault accounting (IO-level counters only; the
	// schedule-level window counts are coordinator-side).
	Chaos chaos.Stats
	// Emission is the per-VD workload-layer accounting for VDs [Lo, Hi),
	// present only in check mode.
	Emission []invariant.VDEmission
	// Audit holds the shard's throttle-audit findings, check mode only.
	Audit []string
}

// streamConfigFor derives the per-shard sketch configuration from the
// destination set, filling the thinning scale and the fleet throughput-cap
// sum (the RAR denominator) from the run's shape. nVDs is the run's global
// disk count: every shard derives the same configuration regardless of which
// slice of the fleet it executes, which is what keeps shard sketch state
// mergeable. Call only after opts.withDefaults.
func (s *Sim) streamConfigFor(opts Options, nVDs int) sketch.Config {
	cfg := opts.Stream.Config()
	cfg.Scale = float64(opts.EventSampleEvery)
	if cfg.DurationSec == 0 {
		cfg.DurationSec = opts.DurationSec
	}
	if cfg.TputCapSum == 0 {
		for i := 0; i < nVDs; i++ {
			cfg.TputCapSum += s.fleet.Topology.VDs[i].ThroughputCap
		}
	}
	return cfg
}

// runVDs bounds the run to the first MaxVDs disks. Call only after
// opts.withDefaults.
func (s *Sim) runVDs(opts Options) int {
	nVDs := len(s.fleet.Topology.VDs)
	if opts.MaxVDs > 0 && opts.MaxVDs < nVDs {
		nVDs = opts.MaxVDs
	}
	return nVDs
}

// assembleDataset builds the run's dataset from the fully merged tracer:
// scaled metric rows plus the fleet's (shared, read-only) VD/VM spec
// tables. This is the single place dataset assembly happens, shared by the
// in-process engine and the distributed merge, so the two paths cannot
// drift. The tracer's records are detached into the dataset and the tracer
// is released back to its pool.
func (s *Sim) assembleDataset(opts Options, merged *diting.Tracer) *trace.Dataset {
	vdSpecs, vmSpecs := s.specs()
	ds := &trace.Dataset{
		Topology:    s.fleet.Topology,
		Seg2BS:      s.fleet.Seg2BS,
		DurationSec: opts.DurationSec,
		Trace:       merged.DetachRecords(),
		Compute:     scaleRows(merged.ComputeRows(), float64(opts.EventSampleEvery)),
		Storage:     scaleRows(merged.StorageRows(), float64(opts.EventSampleEvery)),
		VDSpecs:     vdSpecs,
		VMSpecs:     vmSpecs,
	}
	merged.Release()
	return ds
}

// RunShard simulates virtual disks [lo, hi) of the run described by opts and
// returns the shard's unmerged partial. The shard observes the run's GLOBAL
// shape — chaos schedules expand against the whole fleet, sketch
// configuration sums every disk's throughput cap — so partials from any
// VD-disjoint covering of [0, nVDs) merge into the exact single-process
// dataset. Within the shard, disks are dealt across opts.Workers just like
// Run.
func (s *Sim) RunShard(ctx context.Context, opts Options, lo, hi int) (*ShardPartial, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := opts.prepare(s.fleet)
	if err != nil {
		return nil, err
	}
	if opts.Control != nil || opts.Observe != nil {
		return nil, fmt.Errorf("ebs: Control/Observe options are single-process only (the control loop is sequential over epochs); run the controlled study in-process")
	}
	if err := s.checkScenarioOptions(&opts); err != nil {
		return nil, err
	}
	nVDs := s.runVDs(opts)
	if lo < 0 || hi > nVDs || lo >= hi {
		return nil, fmt.Errorf("ebs: shard [%d,%d) outside run range [0,%d)", lo, hi, nVDs)
	}
	table := s.tableFor(opts)

	n := hi - lo
	workers := par.Workers(opts.Workers)
	if workers > n {
		workers = n
	}
	var streamCfg sketch.Config
	if opts.Stream != nil {
		streamCfg = s.streamConfigFor(opts, nVDs)
	}
	shards := s.newShards(workers, &opts, streamCfg)
	var emission *invariant.Emission
	if opts.Check {
		emission = invariant.NewEmission(len(s.fleet.Topology.VDs))
	}
	sched := s.expandChaos(opts)
	err = par.ForEachWorker(ctx, n, workers, func(worker, i int) error {
		return s.simulateVD(shards[worker], lo+i, &opts, table, emission, sched)
	})
	if err != nil {
		releaseShards(shards)
		return nil, err
	}

	merged := diting.Merge(opts.TraceSampleEvery, tracersOf(shards)...)
	p := &ShardPartial{
		Lo:      lo,
		Hi:      hi,
		Records: merged.DetachRecords(),
		Compute: merged.ComputeRows(),
		Storage: merged.StorageRows(),
	}
	merged.Release()
	if opts.Stream != nil {
		p.Sketch = sketch.NewSet(streamCfg)
		for _, sh := range shards {
			p.Sketch.Merge(sh.sketch)
		}
	}
	for _, sh := range shards {
		p.Chaos.Merge(sh.chaos)
		p.Audit = append(p.Audit, sh.audit...)
	}
	if emission != nil {
		p.Emission = append(p.Emission, emission.PerVD[lo:hi]...)
	}
	releaseShards(shards)
	return p, nil
}

// MergeShards deterministically combines shard partials into the run's final
// dataset. The partials must exactly cover [0, nVDs) without overlap — the
// at-most-once discipline upstream (fabric result accounting) guarantees
// this for distributed runs, and MergeShards re-verifies it. The merged
// dataset, streamed sketch state, chaos accounting, and check-mode verdict
// are byte-identical to a single-process Run with the same options.
func (s *Sim) MergeShards(opts Options, partials []*ShardPartial) (*trace.Dataset, error) {
	opts, err := opts.prepare(s.fleet)
	if err != nil {
		return nil, err
	}
	if opts.Control != nil || opts.Observe != nil {
		return nil, fmt.Errorf("ebs: Control/Observe options are single-process only (the control loop is sequential over epochs); run the controlled study in-process")
	}
	nVDs := s.runVDs(opts)
	top := s.fleet.Topology

	parts := append([]*ShardPartial(nil), partials...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Lo < parts[j].Lo })
	next := 0
	for _, p := range parts {
		if p.Lo != next {
			return nil, fmt.Errorf("ebs: shard coverage gap or overlap at VD %d (next shard starts at %d)", next, p.Lo)
		}
		next = p.Hi
	}
	if next != nVDs {
		return nil, fmt.Errorf("ebs: shards cover [0,%d), run needs [0,%d)", next, nVDs)
	}

	// FromParts tracers alias the partials' slices; they are merged (which
	// copies) and must never be pooled or released.
	tracers := make([]*diting.Tracer, len(parts))
	for i, p := range parts {
		tracers[i] = diting.FromParts(opts.TraceSampleEvery, p.Records, p.Compute, p.Storage)
	}
	merged := diting.Merge(opts.TraceSampleEvery, tracers...)
	ds := s.assembleDataset(opts, merged)

	sched := s.expandChaos(opts)
	var streamCfg sketch.Config
	var sets []*sketch.Set
	if opts.Stream != nil {
		streamCfg = s.streamConfigFor(opts, nVDs)
		for _, p := range parts {
			if p.Sketch == nil {
				return nil, fmt.Errorf("ebs: shard [%d,%d) has no sketch state in a streaming run", p.Lo, p.Hi)
			}
			sets = append(sets, p.Sketch)
		}
	}
	var ioStats chaos.Stats
	var audits []string
	for _, p := range parts {
		ioStats.Merge(p.Chaos)
		audits = append(audits, p.Audit...)
	}
	var emission *invariant.Emission
	if opts.Check {
		emission = invariant.NewEmission(len(top.VDs))
		for _, p := range parts {
			if len(p.Emission) != p.Hi-p.Lo {
				return nil, fmt.Errorf("ebs: shard [%d,%d) carries %d emission slots in a checked run", p.Lo, p.Hi, len(p.Emission))
			}
			copy(emission.PerVD[p.Lo:p.Hi], p.Emission)
		}
	}
	if err := s.runTail(opts, ds, sched, streamCfg, sets, ioStats, emission, audits); err != nil {
		return nil, err
	}
	return ds, nil
}
