package ebs

import (
	"context"
	"testing"
)

// TestRunSteadyStateAllocs pins the hot path's allocation budget: once the
// pools (tracers, batches, RNG sources) are warm, a full simulation run must
// stay within 130 allocations — the dataset assembly itself (record/row
// slices) plus a fixed per-run overhead, with ZERO allocations per simulated
// IO. A regression here means per-record churn crept back into the inner
// loop; see DESIGN.md's "Hot path & memory layout".
func TestRunSteadyStateAllocs(t *testing.T) {
	f := smallFleet(t)
	sim := New(f)
	opts := Options{DurationSec: 8, TraceSampleEvery: 1, EventSampleEvery: 8, MaxVDs: 10, Workers: 1}

	run := func() {
		ds, err := sim.Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(ds.Trace) == 0 {
			t.Fatal("no trace records")
		}
	}
	// Warm the pools: the first runs pay one-time slab, batch, and scratch
	// allocations that steady state reuses.
	for i := 0; i < 3; i++ {
		run()
	}
	const budget = 130
	if got := testing.AllocsPerRun(5, run); got > budget {
		t.Fatalf("steady-state Run allocates %.0f times, budget is %d", got, budget)
	}
}
