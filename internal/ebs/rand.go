package ebs

import (
	"math/rand"

	"ebslab/internal/cluster"
)

// latencySeed derives the latency-sampling seed of one virtual disk from
// the base seed (the fleet seed, or the Options.Seed override). Each disk
// gets its own child stream keyed by (seed, VD), so latency draws are a
// pure function of the disk — independent of simulation order, shard
// assignment, and worker count. The engine feeds this seed to the pooled
// xrand source; newLatencyRand remains as the plain constructor.
func latencySeed(seed int64, vd cluster.VDID) int64 {
	base := uint64(seed) ^ 0x1a7e9c
	return int64(splitmix64(base ^ (uint64(vd)+1)*0x9e3779b97f4a7c15))
}

// newLatencyRand builds the per-disk latency stream as a fresh *rand.Rand.
func newLatencyRand(seed int64, vd cluster.VDID) *rand.Rand {
	return rand.New(rand.NewSource(latencySeed(seed, vd)))
}

// splitmix64 is the finalizer of the splitmix64 generator; it decorrelates
// the per-VD seeds even for adjacent VD IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
