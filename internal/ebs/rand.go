package ebs

import "math/rand"

// newLatencyRand derives the latency-sampling stream from the fleet seed
// and an optional user override (0 keeps the fleet-derived stream).
func newLatencyRand(fleetSeed, override int64) *rand.Rand {
	seed := fleetSeed ^ 0x1a7e9c
	if override != 0 {
		seed = override
	}
	return rand.New(rand.NewSource(seed))
}
