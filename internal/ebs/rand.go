package ebs

import (
	"math/rand"

	"ebslab/internal/cluster"
)

// newLatencyRand derives the latency-sampling stream of one virtual disk
// from the base seed (the fleet seed, or the Options.Seed override). Each
// disk gets its own child stream keyed by (seed, VD), so latency draws are
// a pure function of the disk — independent of simulation order, shard
// assignment, and worker count.
func newLatencyRand(seed int64, vd cluster.VDID) *rand.Rand {
	base := uint64(seed) ^ 0x1a7e9c
	child := splitmix64(base ^ (uint64(vd)+1)*0x9e3779b97f4a7c15)
	return rand.New(rand.NewSource(int64(child)))
}

// splitmix64 is the finalizer of the splitmix64 generator; it decorrelates
// the per-VD seeds even for adjacent VD IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
