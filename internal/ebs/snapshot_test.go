package ebs

import (
	"sync/atomic"
	"testing"

	"ebslab/internal/sketch"
)

// TestSnapshotSinkStreamedEqualsFinal pins the gateway's streamed-vs-final
// contract at the engine layer: a run with a SnapshotSink folds per-VD sketch
// deltas whose merged state, after the last disk, is fingerprint-identical to
// the run's final Options.Stream set — i.e. the snapshot stream converges on
// exactly the answer a tenant would get by waiting for completion. A mid-run
// snapshot (taken from the Progress hook) must already decode and carry IOs.
func TestSnapshotSinkStreamedEqualsFinal(t *testing.T) {
	fleet := smallFleet(t)
	sim := New(fleet)

	final := sketch.NewSet(sketch.Config{})
	sink := &SnapshotSink{}
	var midIOs atomic.Uint64
	opts := Options{
		MaxVDs:           12,
		EventSampleEvery: 16,
		Stream:           final,
		Snapshots:        sink,
		Progress: func(done, total int) {
			if done != total/2 {
				return
			}
			enc, vds, seq := sink.Snapshot()
			if enc == nil || vds == 0 || seq == 0 {
				t.Errorf("mid-run snapshot empty at %d/%d VDs", done, total)
				return
			}
			set, err := sketch.DecodeSet(enc)
			if err != nil {
				t.Errorf("mid-run snapshot does not decode: %v", err)
				return
			}
			midIOs.Store(set.Totals().IOs)
		},
	}
	if _, err := sim.Run(nil, opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if midIOs.Load() == 0 {
		t.Fatal("mid-run snapshot observed no IOs")
	}
	if got, want := sink.Fingerprint(), final.Fingerprint(); got != want {
		t.Fatalf("streamed snapshot fingerprint %s != final sketch fingerprint %s", got, want)
	}
	_, vds, _ := sink.Snapshot()
	if vds != 12 {
		t.Fatalf("sink folded %d VDs, want 12", vds)
	}
	if final.Totals().IOs < midIOs.Load() {
		t.Fatalf("final IOs %d < mid-run IOs %d: snapshots are not monotone", final.Totals().IOs, midIOs.Load())
	}
}

// TestSnapshotsRequireStream pins the validation: a sink without a streaming
// destination is a configuration error, not a silent no-op.
func TestSnapshotsRequireStream(t *testing.T) {
	fleet := smallFleet(t)
	_, err := New(fleet).Run(nil, Options{MaxVDs: 2, Snapshots: &SnapshotSink{}})
	if err == nil {
		t.Fatal("Run accepted Snapshots without Stream")
	}
}
