package ebs

import (
	"context"
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/invariant"
	"ebslab/internal/scenario"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
)

// ObsShapeFor builds the control-plane observation shape for a run of this
// fleet: entity axes from the topology, window and thinning scale from the
// (validated, defaulted) options, epoch length from epochSec.
func (s *Sim) ObsShapeFor(opts Options, epochSec int) (control.ObsShape, error) {
	opts, err := opts.prepare(s.fleet)
	if err != nil {
		return control.ObsShape{}, err
	}
	top := s.fleet.Topology
	shape := control.ObsShape{
		EpochSec: epochSec,
		DurSec:   opts.DurationSec,
		Segments: len(top.Segments),
		VDs:      len(top.VDs),
		QPs:      len(top.QPs),
		WTs:      top.NumWTs(),
		WTBase:   make([]int, len(top.Nodes)),
		Scale:    float64(opts.EventSampleEvery),
	}
	base := 0
	for n := range top.Nodes {
		shape.WTBase[n] = base
		base += top.Nodes[n].WorkerNum
	}
	if err := shape.Validate(); err != nil {
		return control.ObsShape{}, err
	}
	return shape, nil
}

// ControlInput assembles the fleet-side planning context for control.BuildPlan:
// base placement and QP binding, per-VD caps, the VM and node maps, and — when
// the run has a chaos plan — the epoch-boundary down function derived from the
// expanded schedule (the controller sees a crash only once an epoch boundary
// passes with the BS down, exactly what a production watchdog polling at the
// control cadence would see).
func (s *Sim) ControlInput(opts Options, obs *control.Observation) (control.Input, error) {
	opts, err := opts.prepare(s.fleet)
	if err != nil {
		return control.Input{}, err
	}
	top := s.fleet.Topology
	in := control.Input{
		Obs:       obs,
		Placement: s.fleet.Seg2BS,
		Binding:   s.wtOf,
		Caps:      make([]throttle.Caps, len(top.VDs)),
		VMOfVD:    make([]int, len(top.VDs)),
		NodeOfQP:  make([]int, len(top.QPs)),
	}
	for i := range top.VDs {
		in.Caps[i] = throttle.Caps{Tput: top.VDs[i].ThroughputCap, IOPS: top.VDs[i].IOPSCap}
		in.VMOfVD[i] = int(top.VDs[i].VM)
	}
	for q := range top.QPs {
		in.NodeOfQP[q] = int(top.NodeOfQP(cluster.QPID(q)))
	}
	if sched := s.expandChaos(opts); sched != nil {
		epochSec := obs.Shape.EpochSec
		in.Down = func(ep, bs int) bool { return sched.BSDownAt(bs, ep*epochSec) }
	}
	return in, nil
}

// RunControlled executes the predict→act loop end to end: an observe pass
// over the seed fills an Observation, control.BuildPlan replays its epochs
// through the policy into a timeline, and an actuated pass re-runs the same
// seed with the timeline applied. Both passes draw identical RNG streams, so
// the only differences in the actuated dataset are the attribution and
// latency effects of the plan itself — a no-op policy returns a dataset
// byte-identical to s.Run(ctx, opts).
//
// The observe pass runs with streaming, snapshots, checking, and progress
// stripped (they belong to the run the caller asked for, not the telemetry
// pass). In check mode, the decision log and the timeline are additionally
// held to the actuation conservation laws before the actuated pass runs.
func (s *Sim) RunControlled(ctx context.Context, opts Options, pol control.Policy, cfg control.Config) (*trace.Dataset, *control.Plan, error) {
	if opts.Control != nil || opts.Observe != nil {
		return nil, nil, fmt.Errorf("ebs: RunControlled builds its own Control/Observe options; leave both nil")
	}
	if rs, ok := opts.Scenario.(scenario.RecordSource); ok && rs.SourcesRecords() {
		// Even an empty plan would be a lie here: the predict->act premise
		// needs re-simulatable traffic, and verbatim records replay their
		// measured latencies no matter what the controller decides.
		return nil, nil, fmt.Errorf("ebs: scenario %q replays verbatim records; the control plane cannot actuate over measured latencies (foreign-schema replays can)", opts.Scenario.Name())
	}
	opts, err := opts.prepare(s.fleet)
	if err != nil {
		return nil, nil, err
	}
	if cfg.EpochSec <= 0 {
		cfg.EpochSec = 30
	}
	shape, err := s.ObsShapeFor(opts, cfg.EpochSec)
	if err != nil {
		return nil, nil, err
	}

	obs := control.NewObservation(shape)
	observeOpts := opts
	observeOpts.Stream = nil
	observeOpts.Snapshots = nil
	observeOpts.ChaosStats = nil
	observeOpts.Progress = nil
	observeOpts.Check = false
	observeOpts.Observe = obs
	if _, err := s.Run(ctx, observeOpts); err != nil {
		return nil, nil, fmt.Errorf("ebs: observe pass: %w", err)
	}

	in, err := s.ControlInput(opts, obs)
	if err != nil {
		return nil, nil, err
	}
	plan, err := control.BuildPlan(pol, cfg, in)
	if err != nil {
		return nil, nil, err
	}
	if opts.Check {
		rep := &invariant.Report{}
		invariant.CheckControlActuation(rep, plan, in.Placement, in.Binding, in.Caps)
		if err := rep.Err(); err != nil {
			return nil, nil, fmt.Errorf("ebs: control plan: %w", err)
		}
	}

	actOpts := opts
	actOpts.Control = plan.Timeline
	ds, err := s.Run(ctx, actOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("ebs: actuated pass: %w", err)
	}
	return ds, plan, nil
}

// checkControlOptions validates Control/Observe against the fleet before a
// run, and drops an empty timeline so the uncontrolled hot path (a single
// nil check per IO) is taken whenever there is nothing to actuate.
func (s *Sim) checkControlOptions(opts *Options) error {
	top := s.fleet.Topology
	if opts.Control != nil {
		if err := opts.Control.Validate(len(top.Segments), len(top.QPs), len(top.VDs)); err != nil {
			return err
		}
		if opts.Control.DurSec != opts.DurationSec {
			return fmt.Errorf("ebs: control timeline spans %ds, run lasts %ds", opts.Control.DurSec, opts.DurationSec)
		}
		if opts.Control.Empty() {
			opts.Control = nil
		}
	}
	if opts.Observe != nil {
		sh := opts.Observe.Shape
		if sh.Segments != len(top.Segments) || sh.VDs != len(top.VDs) ||
			sh.QPs != len(top.QPs) || sh.WTs != top.NumWTs() {
			return fmt.Errorf("ebs: observation shape (%d seg, %d vd, %d qp, %d wt) does not match fleet (%d, %d, %d, %d)",
				sh.Segments, sh.VDs, sh.QPs, sh.WTs,
				len(top.Segments), len(top.VDs), len(top.QPs), top.NumWTs())
		}
		if sh.DurSec != opts.DurationSec {
			return fmt.Errorf("ebs: observation window %ds, run lasts %ds", sh.DurSec, opts.DurationSec)
		}
	}
	return nil
}

// lendCapsAt adapts a timeline's per-epoch cap deltas for one VD to the
// throttle's scheduled-caps hook (the engine replays each VD as its own
// one-disk group). Deltas clamp at zero: a lender never owes negative cap.
func lendCapsAt(ctl *control.Timeline, vd int) func(t int, eff []throttle.Caps) {
	return func(t int, eff []throttle.Caps) {
		ep := ctl.EpochOf(t)
		if r := ctl.LendTput(ep); r != nil {
			eff[0].Tput += r[vd]
			if eff[0].Tput < 0 {
				eff[0].Tput = 0
			}
		}
		if r := ctl.LendIOPS(ep); r != nil {
			eff[0].IOPS += r[vd]
			if eff[0].IOPS < 0 {
				eff[0].IOPS = 0
			}
		}
	}
}
