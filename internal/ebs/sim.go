// Package ebs wires every substrate into an end-to-end simulator of the EBS
// IO path of Figure 1: VMs issue block IOs to their VDs' queue pairs; the
// hypervisor's worker threads (round-robin bound) pick them up, applying the
// per-VD dual-cap throttle; requests cross the frontend network to the
// BlockServer owning the target segment, then the backend network to the
// ChunkServer; the DiTing tracer samples per-IO records and aggregates
// full-scale per-second metrics — producing exactly the two datasets the
// study consumes.
//
// The engine is sharded: virtual disks are partitioned across a bounded
// worker pool, each shard feeds its own tracer, and shard outputs are merged
// deterministically, so a run's datasets are byte-identical for any Workers
// value at a fixed seed (see DESIGN.md, "Parallel simulation engine").
package ebs

import (
	"fmt"
	"sync"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/control"
	"ebslab/internal/hypervisor"
	"ebslab/internal/latency"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Options configures a simulation run. The zero value of every field is the
// documented default; negative values are rejected by Validate rather than
// silently rewritten.
type Options struct {
	// DurationSec is the observation window (0 = the fleet config's window).
	DurationSec int
	// TraceSampleEvery is the DiTing per-IO sampling rate (0 =
	// trace.SampleRate = 3200; pass 1 to trace everything).
	TraceSampleEvery int
	// EventSampleEvery thins the generated IO stream itself for
	// tractability (0 or 1: generate every IO). Metric rows scale the
	// counted bytes back up so rates stay calibrated.
	EventSampleEvery int
	// MaxVDs bounds how many virtual disks are simulated (0 = all).
	MaxVDs int
	// Workers bounds the simulation worker pool (0 = one per CPU). Results
	// are identical for every worker count.
	Workers int
	// DisableThrottle turns off the hypervisor throttle.
	DisableThrottle bool
	// Check enables the runtime validation subsystem (the -check mode of
	// cmd/ebssim): the engine counts every IO the workload layer emits,
	// audits each per-VD throttle replay, and runs the invariant.DefaultSuite
	// conservation laws over the merged dataset. Any violation fails the run
	// with an error describing the broken law. Checking costs a constant
	// factor (~2x) but no extra passes over the fleet.
	Check bool
	// Chaos, when non-nil, runs the simulation under a deterministic
	// fault-injection plan: the plan is expanded once against (Seed, fleet
	// shape) into a chaos.Schedule, IOs targeting a crashed BlockServer pay
	// the plan's failover latency penalty, and storming VDs offer boosted
	// demand. The expansion is seed-derived, so results stay byte-identical
	// across worker counts; see DESIGN.md, "Fault model".
	Chaos *chaos.Plan
	// ChaosStats, when non-nil and Chaos is set, receives the run's merged
	// fault accounting.
	ChaosStats *chaos.Stats
	// Stream, when non-nil, enables the streaming analytics path (the
	// -stream mode of cmd/ebssim): every shard folds each completed IO into
	// its own sketch.Set — SpaceSaving heavy hitters, log-bucket quantile
	// sketches, HyperLogLog cardinality, per-second rate meters — and the
	// per-shard sets are merged at the join into *Stream. Create the
	// destination with sketch.NewSet; the engine fills the set's thinning
	// scale and throughput-cap sum from the run's shape when left zero.
	// Sketch state is deterministic and worker-count invariant, and its
	// memory is independent of the IO count; see DESIGN.md, "Streaming
	// sketch analytics".
	Stream *sketch.Set
	// Snapshots, when non-nil (requires Stream), receives a monotone mid-run
	// view of the streaming sketch state: after each virtual disk completes,
	// its sketch delta is folded into the sink under the sink's own lock, so
	// another goroutine can serve incremental snapshots while the run
	// executes. Like Progress, the sink never crosses the wire — distributed
	// runs snapshot from the coordinator's accepted shard partials instead.
	Snapshots *SnapshotSink
	// Control, when non-nil, applies a compiled mitigation timeline during
	// the run: per-epoch placement and QP-binding overrides, migration
	// landing penalties, and per-epoch throttle cap deltas, all looked up
	// without consuming any RNG draw — so an empty timeline is byte-identical
	// to no timeline. Timelines are produced by control.BuildPlan from an
	// observe pass; RunControlled orchestrates the two passes. Single-process
	// runs only: RunShard and MergeShards reject it (the control loop is
	// inherently sequential over epochs). See DESIGN.md, "Mitigation control
	// plane".
	Control *control.Timeline
	// Observe, when non-nil, accumulates per-epoch integer traffic counters
	// (per segment, VD, QP, and worker thread) into the destination during
	// the run. Counters are commutative per-shard sums, so the merged
	// observation is worker-count invariant. Create the destination with
	// control.NewObservation over a shape matching this fleet and the run's
	// options. Single-process runs only, like Control.
	Observe *control.Observation
	// Scenario, when non-nil, replaces the fleet's native traffic with a
	// bound scenario from the scenario library: the engine takes the demand
	// series and event stream (or, for a record-sourced replay, the verbatim
	// records) from the scenario instead of the fleet's generators, while
	// placement, worker threads, throttling, and latency stay fleet-derived.
	// The scenario must be Bound to this simulator's fleet; Run and RunShard
	// reject a foreign binding. Scenarios keep the engine's determinism
	// contract — datasets stay byte-identical for every Workers value — and
	// compose with Chaos, Stream, Check, and (except record-sourced replays,
	// whose measured latencies cannot be re-derived) Control/Observe. See
	// DESIGN.md, "Scenario library & trace replay".
	Scenario scenario.Workload
	// Latency overrides the latency model (default latency.Default()).
	Latency *latency.Model
	// Seed overrides the base seed of the per-VD latency sampling streams
	// (default: fleet seed).
	Seed int64
	// Progress, when non-nil, is called after each virtual disk finishes,
	// with the number of completed disks and the total. Calls are
	// serialized but may come from pool goroutines; keep it cheap.
	Progress func(done, total int)
}

// prepare is the single validation-and-defaulting gate of every entry
// point: Run, RunShard, and MergeShards all pass their options through it
// exactly once before use.
func (o Options) prepare(f *workload.Fleet) (Options, error) {
	if err := o.Validate(); err != nil {
		return o, err
	}
	return o.withDefaults(f), nil
}

// withDefaults fills zero-valued fields from the fleet configuration and
// package defaults. It assumes the options already passed Validate.
func (o Options) withDefaults(f *workload.Fleet) Options {
	if o.DurationSec == 0 {
		o.DurationSec = f.Cfg.DurationSec
	}
	if o.TraceSampleEvery == 0 {
		o.TraceSampleEvery = trace.SampleRate
	}
	if o.EventSampleEvery == 0 {
		o.EventSampleEvery = 1
	}
	if o.Seed == 0 {
		o.Seed = f.Cfg.Seed
	}
	return o
}

// Validate rejects option values that have no meaning. Zero values are
// defaults and always valid.
func (o Options) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"DurationSec", o.DurationSec},
		{"TraceSampleEvery", o.TraceSampleEvery},
		{"EventSampleEvery", o.EventSampleEvery},
		{"MaxVDs", o.MaxVDs},
		{"Workers", o.Workers},
	} {
		if f.v < 0 {
			return fmt.Errorf("ebs: Options.%s is %d, want >= 0", f.name, f.v)
		}
	}
	if o.Chaos != nil {
		if err := o.Chaos.Validate(); err != nil {
			return fmt.Errorf("ebs: Options.Chaos: %w", err)
		}
	}
	if o.Snapshots != nil && o.Stream == nil {
		return fmt.Errorf("ebs: Options.Snapshots requires Options.Stream (snapshots are views of the streaming sketch state)")
	}
	return nil
}

// Sim is an end-to-end EBS simulation over one generated fleet. Run-
// invariant derived state — the QP worker-thread table, the compiled
// default latency table, the dataset spec tables — is computed once and
// shared across runs.
type Sim struct {
	fleet    *workload.Fleet
	bindings []*hypervisor.Binding // per compute node
	model    *latency.Model
	table    *latency.Table // model, compiled
	wtOf     []int8         // QP -> hypervisor worker thread, dense by QPID

	specOnce sync.Once
	vdSpecs  []trace.VDSpec
	vmSpecs  []trace.VMSpec
}

// New builds a simulator over the fleet with production (round-robin)
// QP-to-WT bindings.
func New(f *workload.Fleet) *Sim {
	s := &Sim{fleet: f, model: latency.Default()}
	for n := range f.Topology.Nodes {
		s.bindings = append(s.bindings, hypervisor.RoundRobin(f.Topology, cluster.NodeID(n)))
	}
	s.table = s.model.Compile()
	// QP IDs are dense indices (Topology.Validate pins IDs == positions), so
	// the per-IO worker-thread attribution is a slice lookup.
	s.wtOf = make([]int8, len(f.Topology.QPs))
	for _, b := range s.bindings {
		for i, qp := range b.QPs {
			s.wtOf[qp] = b.WTOf[i]
		}
	}
	return s
}

// tableFor returns the compiled latency table of one run: the precompiled
// default, or a fresh compile of the run's override (compilation is a few
// hundred nanoseconds; overrides don't merit a cache).
func (s *Sim) tableFor(opts Options) *latency.Table {
	if opts.Latency != nil {
		return opts.Latency.Compile()
	}
	return s.table
}

// specs lazily builds the dataset's VD/VM spec tables. The tables are pure
// functions of the topology and are shared, read-only, by every dataset the
// Sim assembles.
func (s *Sim) specs() ([]trace.VDSpec, []trace.VMSpec) {
	s.specOnce.Do(func() {
		top := s.fleet.Topology
		s.vdSpecs = make([]trace.VDSpec, 0, len(top.VDs))
		for i := range top.VDs {
			vd := &top.VDs[i]
			s.vdSpecs = append(s.vdSpecs, trace.VDSpec{
				VD: vd.ID, Capacity: vd.Capacity,
				ThroughputCap: vd.ThroughputCap, IOPSCap: vd.IOPSCap,
				NumQPs: len(vd.QPs),
			})
		}
		s.vmSpecs = make([]trace.VMSpec, 0, len(top.VMs))
		for i := range top.VMs {
			vm := &top.VMs[i]
			s.vmSpecs = append(s.vmSpecs, trace.VMSpec{
				VM: vm.ID, Node: vm.Node, App: vm.App, VDs: vm.VDs,
			})
		}
	})
	return s.vdSpecs, s.vmSpecs
}

// Binding returns the QP binding of one compute node (for inspection).
func (s *Sim) Binding(n cluster.NodeID) *hypervisor.Binding { return s.bindings[n] }

// checkScenarioOptions validates the run's scenario binding: the scenario
// must be bound to this simulator's fleet (series, events, and records are
// expressed in that fleet's address space), and a record-sourced replay
// cannot run under the control plane — its latencies are measured, not
// modelled, so a timeline's placement overrides and migration penalties
// would falsify them. MergeShards deliberately skips this check: the
// coordinator merges partials against its own fleet instance while the
// scenario was bound worker-side.
func (s *Sim) checkScenarioOptions(opts *Options) error {
	sc := opts.Scenario
	if sc == nil {
		return nil
	}
	if sc.Fleet() != s.fleet {
		return fmt.Errorf("ebs: Options.Scenario %q is bound to a different fleet; Bind it to this simulator's fleet", sc.Name())
	}
	if rs, ok := sc.(scenario.RecordSource); ok && rs.SourcesRecords() {
		if opts.Control != nil {
			return fmt.Errorf("ebs: scenario %q replays verbatim records; the control plane cannot actuate over measured latencies (foreign-schema replays can)", sc.Name())
		}
	}
	return nil
}

// scaleRows compensates metric rows for event thinning so reported rates
// approximate the full-scale traffic.
func scaleRows(rows []trace.MetricRow, factor float64) []trace.MetricRow {
	if factor == 1 {
		return rows
	}
	for i := range rows {
		rows[i].ReadBps *= factor
		rows[i].WriteBps *= factor
		rows[i].ReadIOPS *= factor
		rows[i].WriteIOPS *= factor
	}
	return rows
}
