// Package ebs wires every substrate into an end-to-end simulator of the EBS
// IO path of Figure 1: VMs issue block IOs to their VDs' queue pairs; the
// hypervisor's worker threads (round-robin bound) pick them up, applying the
// per-VD dual-cap throttle; requests cross the frontend network to the
// BlockServer owning the target segment, then the backend network to the
// ChunkServer; the DiTing tracer samples per-IO records and aggregates
// full-scale per-second metrics — producing exactly the two datasets the
// study consumes.
package ebs

import (
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/diting"
	"ebslab/internal/hypervisor"
	"ebslab/internal/latency"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Options configures a simulation run.
type Options struct {
	// DurationSec is the observation window (defaults to the fleet config's
	// window).
	DurationSec int
	// TraceSampleEvery is the DiTing per-IO sampling rate (default
	// trace.SampleRate = 3200; pass 1 to trace everything).
	TraceSampleEvery int
	// EventSampleEvery thins the generated IO stream itself for
	// tractability (default 1: generate every IO). Metric rows scale the
	// counted bytes back up so rates stay calibrated.
	EventSampleEvery int
	// MaxVDs bounds how many virtual disks are simulated (0 = all).
	MaxVDs int
	// DisableThrottle turns off the hypervisor throttle.
	DisableThrottle bool
	// Latency overrides the latency model (default latency.Default()).
	Latency *latency.Model
	// Seed drives the latency sampling streams (default: fleet seed).
	Seed int64
}

// Sim is an end-to-end EBS simulation over one generated fleet.
type Sim struct {
	fleet    *workload.Fleet
	bindings []*hypervisor.Binding // per compute node
	model    *latency.Model
}

// New builds a simulator over the fleet with production (round-robin)
// QP-to-WT bindings.
func New(f *workload.Fleet) *Sim {
	s := &Sim{fleet: f, model: latency.Default()}
	for n := range f.Topology.Nodes {
		s.bindings = append(s.bindings, hypervisor.RoundRobin(f.Topology, cluster.NodeID(n)))
	}
	return s
}

// Binding returns the QP binding of one compute node (for inspection).
func (s *Sim) Binding(n cluster.NodeID) *hypervisor.Binding { return s.bindings[n] }

// Run simulates the fleet's IO for the window and returns the collected
// datasets.
func (s *Sim) Run(opts Options) (*trace.Dataset, error) {
	top := s.fleet.Topology
	if opts.DurationSec <= 0 {
		opts.DurationSec = s.fleet.Cfg.DurationSec
	}
	if opts.TraceSampleEvery <= 0 {
		opts.TraceSampleEvery = trace.SampleRate
	}
	if opts.EventSampleEvery <= 0 {
		opts.EventSampleEvery = 1
	}
	model := s.model
	if opts.Latency != nil {
		model = opts.Latency
	}
	nVDs := len(top.VDs)
	if opts.MaxVDs > 0 && opts.MaxVDs < nVDs {
		nVDs = opts.MaxVDs
	}

	tracer := diting.New(opts.TraceSampleEvery)
	rng := newLatencyRand(s.fleet.Cfg.Seed, opts.Seed)

	// Per-node QP index lookup for worker-thread attribution.
	wtOf := make(map[cluster.QPID]int8)
	for _, b := range s.bindings {
		for i, qp := range b.QPs {
			wtOf[qp] = b.WTOf[i]
		}
	}

	for vdIdx := 0; vdIdx < nVDs; vdIdx++ {
		vdID := cluster.VDID(vdIdx)
		vd := &top.VDs[vdIdx]
		vm := &top.VMs[vd.VM]
		node := &top.Nodes[vm.Node]

		// Per-VD throttle replay over the second-granularity series gives
		// each second's queue delay.
		var queueDelay []float64
		if !opts.DisableThrottle {
			series := s.fleet.VDSeries(vdID, opts.DurationSec)
			demand := make([]throttle.Demand, len(series))
			for i, smp := range series {
				demand[i] = throttle.Demand{
					ReadBps: smp.ReadBps, WriteBps: smp.WriteBps,
					ReadIOPS: smp.ReadIOPS, WriteIOPS: smp.WriteIOPS,
				}
			}
			res := throttle.Simulate(
				[]throttle.Caps{{Tput: vd.ThroughputCap, IOPS: vd.IOPSCap}},
				[][]throttle.Demand{demand})
			queueDelay = res.QueueDelaySec[0]
		}

		var genErr error
		s.fleet.GenEvents(vdID, opts.DurationSec, opts.EventSampleEvery, func(ev workload.Event) {
			if genErr != nil {
				return
			}
			seg := top.SegmentOfOffset(vdID, ev.Offset)
			sn := s.fleet.Seg2BS.BSOf(seg)
			if sn < 0 {
				genErr = fmt.Errorf("ebs: segment %d unplaced", seg)
				return
			}
			rec := trace.Record{
				TraceID: tracer.NextTraceID(),
				TimeUS:  ev.TimeUS,
				Op:      ev.Op,
				Size:    ev.Size,
				Offset:  ev.Offset,
				DC:      node.DC,
				Node:    node.ID,
				User:    vm.User,
				VM:      vm.ID,
				VD:      vdID,
				QP:      ev.QP,
				WT:      wtOf[ev.QP],
				Storage: sn,
				Segment: seg,
			}
			rec.Latency = model.Sample(rng, ev.Op, ev.Size, latency.NoCache, false)
			if queueDelay != nil {
				sec := int(ev.TimeUS / 1_000_000)
				if sec < len(queueDelay) && queueDelay[sec] > 0 {
					rec.Latency[trace.StageComputeNode] += float32(queueDelay[sec] * 1e6)
				}
			}
			tracer.Observe(rec)
		})
		if genErr != nil {
			return nil, genErr
		}
	}

	ds := &trace.Dataset{
		Topology:    top,
		Seg2BS:      s.fleet.Seg2BS,
		DurationSec: opts.DurationSec,
		Trace:       tracer.Records(),
		Compute:     scaleRows(tracer.ComputeRows(), float64(opts.EventSampleEvery)),
		Storage:     scaleRows(tracer.StorageRows(), float64(opts.EventSampleEvery)),
	}
	for i := range top.VDs {
		vd := &top.VDs[i]
		ds.VDSpecs = append(ds.VDSpecs, trace.VDSpec{
			VD: vd.ID, Capacity: vd.Capacity,
			ThroughputCap: vd.ThroughputCap, IOPSCap: vd.IOPSCap,
			NumQPs: len(vd.QPs),
		})
	}
	for i := range top.VMs {
		vm := &top.VMs[i]
		ds.VMSpecs = append(ds.VMSpecs, trace.VMSpec{
			VM: vm.ID, Node: vm.Node, App: vm.App, VDs: vm.VDs,
		})
	}
	return ds, nil
}

// scaleRows compensates metric rows for event thinning so reported rates
// approximate the full-scale traffic.
func scaleRows(rows []trace.MetricRow, factor float64) []trace.MetricRow {
	if factor == 1 {
		return rows
	}
	for i := range rows {
		rows[i].ReadBps *= factor
		rows[i].WriteBps *= factor
		rows[i].ReadIOPS *= factor
		rows[i].WriteIOPS *= factor
	}
	return rows
}
