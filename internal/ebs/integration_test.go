package ebs

import (
	"context"
	"math"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// TestMetricRowsMatchGeneratorGroundTruth is the cross-module integration
// check: the DiTing metric rows the end-to-end simulator aggregates must
// reproduce the workload generator's per-VD traffic within the event
// model's quantization error. This ties together workload -> events -> ebs
// path -> diting aggregation.
func TestMetricRowsMatchGeneratorGroundTruth(t *testing.T) {
	f := smallFleet(t)
	const dur = 12
	const maxVDs = 8
	ds, err := New(f).Run(context.Background(), Options{
		DurationSec: dur, TraceSampleEvery: 1, EventSampleEvery: 1,
		MaxVDs: maxVDs, DisableThrottle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate metric rows per VD.
	gotBytes := make(map[cluster.VDID]float64)
	for i := range ds.Compute {
		row := &ds.Compute[i]
		gotBytes[row.VD] += row.Bps() // one-second rows: rate == bytes
	}
	// Ground truth from the generator.
	for vd := 0; vd < maxVDs; vd++ {
		series := f.VDSeries(cluster.VDID(vd), dur)
		var want float64
		for _, s := range series {
			want += s.Bps()
		}
		got := gotBytes[cluster.VDID(vd)]
		if want < 1e6 {
			continue // too quiet for a stable comparison
		}
		if math.Abs(got-want)/want > 0.5 {
			t.Errorf("vd %d: metric bytes %.3g vs generator %.3g (>50%% off)", vd, got, want)
		}
	}
	// Storage rows must cover the same bytes as compute rows.
	var computeTotal, storageTotal float64
	for i := range ds.Compute {
		computeTotal += ds.Compute[i].Bps()
	}
	for i := range ds.Storage {
		storageTotal += ds.Storage[i].Bps()
	}
	if computeTotal == 0 {
		t.Skip("window too quiet")
	}
	if math.Abs(computeTotal-storageTotal)/computeTotal > 1e-9 {
		t.Errorf("compute domain %v != storage domain %v", computeTotal, storageTotal)
	}
}

// TestSampledTraceCountConsistent checks the 1/3200-style sampling: with
// sampling on, roughly total/sampleEvery records survive.
func TestSampledTraceCountConsistent(t *testing.T) {
	f := smallFleet(t)
	full, err := New(f).Run(context.Background(), Options{DurationSec: 10, TraceSampleEvery: 1, MaxVDs: 10})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := New(f).Run(context.Background(), Options{DurationSec: 10, TraceSampleEvery: 16, MaxVDs: 10})
	if err != nil {
		t.Fatal(err)
	}
	n := len(full.Trace)
	if n < 1000 {
		t.Skip("not enough IOs for a sampling-rate check")
	}
	got := float64(len(sampled.Trace))
	want := float64(n) / 16
	if math.Abs(got-want)/want > 0.5 {
		t.Errorf("sampled %v records, want ~%v", got, want)
	}
	// Metric rows must be identical (full-scale) regardless of sampling.
	if len(sampled.Compute) != len(full.Compute) {
		t.Errorf("metric rows differ under sampling: %d vs %d", len(sampled.Compute), len(full.Compute))
	}
}

// TestLatencyStagesPlausible sanity-checks the five-stage latency model
// through the simulator: ChunkServer dominates, networks are symmetric-ish.
func TestLatencyStagesPlausible(t *testing.T) {
	f := smallFleet(t)
	ds, err := New(f).Run(context.Background(), Options{DurationSec: 8, TraceSampleEvery: 1, MaxVDs: 10, DisableThrottle: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Trace) < 100 {
		t.Skip("too few IOs")
	}
	var sums [trace.NumStages]float64
	for i := range ds.Trace {
		for s := trace.Stage(0); s < trace.NumStages; s++ {
			sums[s] += float64(ds.Trace[i].Latency[s])
		}
	}
	if !(sums[trace.StageChunkServer] > sums[trace.StageFrontendNet]) {
		t.Error("ChunkServer should dominate network hops")
	}
	ratio := sums[trace.StageFrontendNet] / sums[trace.StageBackendNet]
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("network hops asymmetric: %v", ratio)
	}
}

// silence unused-import lint if workload types get refactored.
var _ = workload.DefaultConfig
