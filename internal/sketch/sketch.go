// Package sketch implements the streaming analytics subsystem: small,
// deterministic, mergeable summaries that compute the study's skewness
// metrics (CCR, P2A, CoV, wr_ratio, RAR, hot-entity rankings, latency and
// size quantiles, active-entity cardinality) online, in memory independent
// of the trace length. The paper's collection pipeline aggregates 310M IOs
// at the source for exactly this reason: at fleet scale the per-IO trace
// cannot be materialized first and analyzed later.
//
// Every structure in the package is a commutative monoid over its input
// multiset wherever it can afford to be — integer counters, register maxima,
// bucket sums — and the one structure that cannot (SpaceSaving, whose
// truncation is order-sensitive) is kept per virtual disk and folded in
// canonical VD order at finalization. Combined with the engine's rule that
// each virtual disk is processed whole by exactly one shard, merged results
// are byte-identical for every worker count; see DESIGN.md, "Streaming
// sketch analytics" for the full determinism argument and error bounds.
package sketch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"
)

// Entry is one ranked heavy-hitter: a key with its estimated weight and the
// maximum overestimation error of that weight. The true weight lies in
// [Count-Err, Count].
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// Totals is the exact ingest accounting every sketch set keeps alongside its
// approximations; the invariant layer's conservation law compares merged
// totals against the sum of per-shard totals.
type Totals struct {
	IOs   uint64
	Bytes uint64
}

// Add accumulates o into t.
func (t *Totals) Add(o Totals) {
	t.IOs += o.IOs
	t.Bytes += o.Bytes
}

// hash64 is the splitmix64 finalizer — the same mixer the trace sampler
// uses — applied to sketch keys before cardinality estimation.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// digest is a canonical-serialization writer shared by the AppendHash
// implementations: fixed-width little-endian words into a streaming hash.
type digest struct {
	h   hash.Hash
	buf [8]byte
}

func newDigest() *digest { return &digest{h: sha256.New()} }

func (d *digest) u64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

func (d *digest) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digest) sum() string { return hex.EncodeToString(d.h.Sum(nil)) }

// sortedKeys returns the map's keys in ascending order; every AppendHash and
// finalize fold iterates maps through it so serialization order never
// depends on map iteration order.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
