package sketch

import (
	"math"
	"sort"
)

// LogQuantile is a DDSketch-style quantile summary over positive values:
// geometric buckets with ratio gamma = (1+alpha)/(1-alpha) and integer
// counts, so any reported quantile of the ingested positive values carries
// at most alpha relative error and zero rank error. Non-positive values
// collapse into a dedicated zero bucket (reported as exactly 0).
//
// The sketch was chosen over t-digest and KLL deliberately: both of those
// re-cluster on ingest and merge, which makes their state depend on
// ingestion and merge order. LogQuantile's state is a pure function of the
// input multiset — bucket index is a pure function of the value, counts are
// integers — so Add commutes, Merge is a bucket-wise sum (associative,
// commutative), and merged results are byte-identical under any sharding.
type LogQuantile struct {
	alpha       float64
	gamma       float64
	invLogGamma float64
	zero        uint64           // weight of values <= 0
	buckets     map[int64]uint64 // bucket index -> weight
	total       uint64
}

// NewLogQuantile creates a summary with relative accuracy alpha (values
// outside (0, 0.5) fall back to the 0.01 default).
func NewLogQuantile(alpha float64) *LogQuantile {
	if !(alpha > 0 && alpha < 0.5) {
		alpha = 0.01
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &LogQuantile{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
		buckets:     make(map[int64]uint64),
	}
}

// Alpha returns the summary's relative accuracy target.
func (l *LogQuantile) Alpha() float64 { return l.alpha }

// Count returns the total ingested weight.
func (l *LogQuantile) Count() uint64 { return l.total }

// Add ingests weight w of value v. NaN values and zero weights are ignored.
func (l *LogQuantile) Add(v float64, w uint64) {
	if w == 0 || math.IsNaN(v) {
		return
	}
	l.total += w
	if v <= 0 {
		l.zero += w
		return
	}
	idx := int64(math.Ceil(math.Log(v) * l.invLogGamma))
	l.buckets[idx] += w
}

// Merge folds o (which must share l's alpha) into l bucket-wise.
func (l *LogQuantile) Merge(o *LogQuantile) {
	l.zero += o.zero
	l.total += o.total
	for idx, w := range o.buckets {
		l.buckets[idx] += w
	}
}

// Quantile returns the q-quantile estimate of the ingested values, or NaN
// for an empty summary or q outside [0, 1] (NaN q included). Positive
// values are reported as the bucket midpoint 2*gamma^i/(gamma+1), which is
// within alpha relative error of every value the bucket holds.
func (l *LogQuantile) Quantile(q float64) float64 {
	if l.total == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	// rank in [0, total-1], matching the order-statistic convention of
	// stats.Quantile (q=0 -> minimum, q=1 -> maximum).
	rank := uint64(math.Round(q * float64(l.total-1)))
	if rank < l.zero {
		return 0
	}
	cum := l.zero
	idxs := make([]int64, 0, len(l.buckets))
	for idx := range l.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		cum += l.buckets[idx]
		if rank < cum {
			return 2 * math.Pow(l.gamma, float64(idx)) / (l.gamma + 1)
		}
	}
	// Unreachable when counts are consistent; return the top bucket.
	return 2 * math.Pow(l.gamma, float64(idxs[len(idxs)-1])) / (l.gamma + 1)
}

// AppendHash writes the summary's canonical serialization into d.
func (l *LogQuantile) AppendHash(d *digest) {
	d.f64(l.alpha)
	d.u64(l.zero)
	d.u64(l.total)
	d.u64(uint64(len(l.buckets)))
	idxs := make([]int64, 0, len(l.buckets))
	for idx := range l.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		d.u64(uint64(idx))
		d.u64(l.buckets[idx])
	}
}
