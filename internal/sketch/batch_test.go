package sketch

import (
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// synthBatchRecords builds an engine-shaped stream: per-VD runs of records
// in time order.
func synthBatchRecords(seed int64, nVDs, perVD int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	var out []trace.Record
	for vd := 0; vd < nVDs; vd++ {
		timeUS := int64(0)
		for i := 0; i < perVD; i++ {
			timeUS += int64(rng.Intn(30_000))
			rec := trace.Record{
				TraceID: uint64(vd+1)<<40 + uint64(i+1),
				TimeUS:  timeUS,
				Op:      trace.Op(rng.Intn(2)),
				Size:    int32((rng.Intn(64) + 1) * 4096),
				Offset:  rng.Int63n(1 << 32),
				VD:      cluster.VDID(vd),
				Segment: cluster.SegmentID(vd*16 + rng.Intn(16)),
			}
			for st := range rec.Latency {
				rec.Latency[st] = float32(rng.Float64() * 800)
			}
			out = append(out, rec)
		}
	}
	return out
}

// TestObserveBatchEquivalence requires identical fingerprints from the
// batched and record-at-a-time ingest paths, across batch capacities that
// force flush boundaries inside and across VD runs.
func TestObserveBatchEquivalence(t *testing.T) {
	recs := synthBatchRecords(5, 7, 400)
	cfg := Config{TopK: 8, SegPerVD: 4, DurationSec: 16}

	want := NewSet(cfg)
	for i := range recs {
		want.Observe(&recs[i])
	}
	wantFP := want.Fingerprint()

	for _, capacity := range []int{1, 5, 256, trace.DefaultBatchCap} {
		got := NewSet(cfg)
		b := trace.GetBatch(capacity)
		for i := range recs {
			b.Append(&recs[i])
			if b.Full() {
				got.ObserveBatch(b)
				b.Reset()
			}
		}
		got.ObserveBatch(b)
		b.Release()
		if fp := got.Fingerprint(); fp != wantFP {
			t.Fatalf("cap %d: fingerprint %s != record-at-a-time %s", capacity, fp, wantFP)
		}
		if got.Totals() != want.Totals() {
			t.Fatalf("cap %d: totals %+v != %+v", capacity, got.Totals(), want.Totals())
		}
	}
}

// TestSketchAddBatch checks the individual sketches' batch adapters against
// their scalar Adds.
func TestSketchAddBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 5000)
	ws := make([]uint64, len(keys))
	vals := make([]float64, len(keys))
	for i := range keys {
		keys[i] = rng.Uint64() % 512
		ws[i] = uint64(rng.Intn(100) + 1)
		vals[i] = rng.Float64() * 1e6
	}

	h1, h2 := NewHLL(12), NewHLL(12)
	h1.AddBatch(keys)
	for _, k := range keys {
		h2.Add(k)
	}
	if h1.Estimate() != h2.Estimate() {
		t.Fatal("HLL AddBatch diverged from Add")
	}

	q1, q2 := NewLogQuantile(0.01), NewLogQuantile(0.01)
	q1.AddBatch(vals, ws)
	for i, v := range vals {
		q2.Add(v, ws[i])
	}
	if q1.Quantile(0.5) != q2.Quantile(0.5) || q1.Count() != q2.Count() {
		t.Fatal("LogQuantile AddBatch diverged from Add")
	}

	s1, s2 := NewSpaceSaving(16), NewSpaceSaving(16)
	s1.AddBatch(keys, ws)
	for i, k := range keys {
		s2.Add(k, ws[i])
	}
	e1, e2 := s1.Entries(), s2.Entries()
	if len(e1) != len(e2) {
		t.Fatal("SpaceSaving AddBatch diverged from Add")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("SpaceSaving entry %d: %+v != %+v", i, e1[i], e2[i])
		}
	}
}
