package sketch

import "math"

// HLL is a HyperLogLog cardinality estimator with 2^p single-byte
// registers. The standard error of the estimate is about 1.04/sqrt(2^p) —
// roughly 1.6% at the default p=12 (4 KiB of state). Registers take the
// maximum over observations, so Add commutes and Merge (register-wise max)
// is associative, commutative, and idempotent: the state is a pure function
// of the ingested key set.
type HLL struct {
	p         uint8
	registers []uint8
}

// NewHLL creates an estimator with 2^p registers (p outside [4, 16] falls
// back to the default 12).
func NewHLL(p int) *HLL {
	if p < 4 || p > 16 {
		p = 12
	}
	return &HLL{p: uint8(p), registers: make([]uint8, 1<<p)}
}

// P returns the register-count exponent.
func (h *HLL) P() int { return int(h.p) }

// Add ingests one key (hashed internally with splitmix64).
func (h *HLL) Add(key uint64) {
	x := hash64(key)
	idx := x >> (64 - h.p)
	// rho: position of the leftmost 1-bit in the remaining 64-p bits.
	rest := x<<h.p | 1<<(uint(h.p)-1) // sentinel caps rho at 64-p+1
	var rho uint8 = 1
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > h.registers[idx] {
		h.registers[idx] = rho
	}
}

// Merge folds o (which must share h's precision) into h register-wise.
func (h *HLL) Merge(o *HLL) {
	for i, v := range o.registers {
		if v > h.registers[i] {
			h.registers[i] = v
		}
	}
}

// Estimate returns the estimated number of distinct keys ingested, with the
// small-range linear-counting correction of the original paper.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// AppendHash writes the estimator's canonical serialization into d.
func (h *HLL) AppendHash(d *digest) {
	d.u64(uint64(h.p))
	for i := 0; i < len(h.registers); i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(h.registers[i+j]) << (8 * j)
		}
		d.u64(w)
	}
}
