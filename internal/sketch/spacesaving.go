package sketch

import "sort"

// SpaceSaving is the weighted SpaceSaving heavy-hitter summary (Metwally et
// al.): at most K counters, each an over-estimate of its key's true weight
// with a tracked error bound. For a stream of total weight W the
// overestimation of any retained key is at most W/K, and any key whose true
// weight exceeds W/K is guaranteed to be retained.
//
// Add is deterministic for a fixed ingest order (eviction picks the smallest
// count, ties broken by smallest key). Merge is the mergeable-summaries
// combination: counters are union-summed and the result truncated back to
// capacity by (count desc, err asc, key asc). Union-summing is commutative,
// but truncation is not associative in general — callers that need
// bit-identical results across shardings must either keep key spaces
// disjoint per shard (the engine's per-VD sketches) or fold in a canonical
// order (Set finalization).
type SpaceSaving struct {
	k        int
	counters map[uint64]ssCounter
}

type ssCounter struct {
	count uint64
	err   uint64
}

// NewSpaceSaving creates a summary with capacity k counters (values < 1 are
// clamped to 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, counters: make(map[uint64]ssCounter, k)}
}

// K returns the summary's counter capacity.
func (s *SpaceSaving) K() int { return s.k }

// Len returns the number of retained counters.
func (s *SpaceSaving) Len() int { return len(s.counters) }

// Add ingests weight w of key. Zero weights are ignored.
func (s *SpaceSaving) Add(key, w uint64) {
	if w == 0 {
		return
	}
	if c, ok := s.counters[key]; ok {
		c.count += w
		s.counters[key] = c
		return
	}
	if len(s.counters) < s.k {
		s.counters[key] = ssCounter{count: w}
		return
	}
	// Evict the minimum counter: smallest count, ties to the smallest key.
	// Capacities are small (tens), so a linear scan beats heap bookkeeping.
	var (
		minKey uint64
		minC   ssCounter
		first  = true
	)
	for k2, c2 := range s.counters {
		if first || c2.count < minC.count || (c2.count == minC.count && k2 < minKey) {
			minKey, minC, first = k2, c2, false
		}
	}
	delete(s.counters, minKey)
	s.counters[key] = ssCounter{count: minC.count + w, err: minC.count}
}

// Merge folds o into s: counts and errors of shared keys are summed, keys
// unique to either side are kept, and the union is truncated back to s's
// capacity in (count desc, err asc, key asc) order. o must not be used
// afterwards.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	for k, oc := range o.counters {
		if c, ok := s.counters[k]; ok {
			c.count += oc.count
			c.err += oc.err
			s.counters[k] = c
		} else {
			s.counters[k] = oc
		}
	}
	if len(s.counters) <= s.k {
		return
	}
	entries := s.Entries()
	s.counters = make(map[uint64]ssCounter, s.k)
	for _, e := range entries[:s.k] {
		s.counters[e.Key] = ssCounter{count: e.Count, err: e.Err}
	}
}

// Entries returns every retained counter ranked by (count desc, err asc,
// key asc).
func (s *SpaceSaving) Entries() []Entry {
	out := make([]Entry, 0, len(s.counters))
	for k, c := range s.counters {
		out = append(out, Entry{Key: k, Count: c.count, Err: c.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Err != out[j].Err {
			return out[i].Err < out[j].Err
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns the n highest-ranked entries (fewer if the summary holds
// fewer).
func (s *SpaceSaving) Top(n int) []Entry {
	e := s.Entries()
	if n < len(e) {
		e = e[:n]
	}
	return e
}

// Mass returns the summed counts of the retained counters — an upper bound
// on the weight the retained keys truly carry.
func (s *SpaceSaving) Mass() uint64 {
	var m uint64
	for _, c := range s.counters {
		m += c.count
	}
	return m
}

// AppendHash writes the summary's canonical serialization into d.
func (s *SpaceSaving) AppendHash(d *digest) {
	d.u64(uint64(s.k))
	d.u64(uint64(len(s.counters)))
	for _, k := range sortedKeys(s.counters) {
		c := s.counters[k]
		d.u64(k)
		d.u64(c.count)
		d.u64(c.err)
	}
}
