package sketch

import (
	"errors"
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// synthSet builds a deterministic, well-populated set: a few hundred
// records across several VDs, segments, seconds, and both directions.
func synthSet(seed int64, vds int) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := NewSet(Config{TopK: 8, SegPerVD: 4, DurationSec: 10})
	for i := 0; i < 400; i++ {
		rec := trace.Record{
			TimeUS:  int64(rng.Intn(10)) * 1_000_000,
			Op:      trace.Op(rng.Intn(2)),
			Size:    int32(4096 * (1 + rng.Intn(32))),
			Offset:  int64(rng.Intn(1<<20) * 4096),
			VD:      int32ToVDID(rng.Intn(vds)),
			Segment: int32ToSegID(rng.Intn(64)),
		}
		rec.Latency[0] = float32(50 + rng.Intn(500))
		rec.Latency[2] = float32(10 + rng.Intn(100))
		s.Observe(&rec)
	}
	return s
}

// TestSetCodecRoundTrip pins the codec contract: decode(encode(s)) carries
// the exact Fingerprint of s, and the encoding is canonical (re-encoding
// the decoded set reproduces the same bytes).
func TestSetCodecRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		s := synthSet(seed, 12)
		wire := s.EncodeBinary()
		got, err := DecodeSet(wire)
		if err != nil {
			t.Fatalf("seed %d: DecodeSet: %v", seed, err)
		}
		if got.Fingerprint() != s.Fingerprint() {
			t.Fatalf("seed %d: fingerprint drifted across the wire", seed)
		}
		if string(got.EncodeBinary()) != string(wire) {
			t.Fatalf("seed %d: re-encoding is not canonical", seed)
		}
	}
	// The empty set must round-trip too (a worker can finish a shard with
	// zero IOs).
	empty := NewSet(Config{})
	got, err := DecodeSet(empty.EncodeBinary())
	if err != nil {
		t.Fatalf("empty set: %v", err)
	}
	if got.Fingerprint() != empty.Fingerprint() {
		t.Fatal("empty set fingerprint drifted")
	}
}

// TestSetCodecMergePreservesFingerprint is the fabric's real requirement:
// merging sets decoded off the wire must fingerprint identically to merging
// the originals in process.
func TestSetCodecMergePreservesFingerprint(t *testing.T) {
	mk := func() (*Set, *Set, *Set) {
		// Disjoint VD key spaces, like engine shards.
		a := NewSet(Config{TopK: 8, SegPerVD: 4, DurationSec: 10})
		b := NewSet(Config{TopK: 8, SegPerVD: 4, DurationSec: 10})
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			rec := trace.Record{
				TimeUS:  int64(rng.Intn(10)) * 1_000_000,
				Op:      trace.Op(rng.Intn(2)),
				Size:    4096,
				Offset:  int64(i) * 4096,
				Segment: int32ToSegID(rng.Intn(32)),
			}
			if i%2 == 0 {
				rec.VD = int32ToVDID(rng.Intn(6))
				a.Observe(&rec)
			} else {
				rec.VD = int32ToVDID(6 + rng.Intn(6))
				b.Observe(&rec)
			}
		}
		dst := NewSet(Config{TopK: 8, SegPerVD: 4, DurationSec: 10})
		return a, b, dst
	}

	a1, b1, inProc := mk()
	inProc.Merge(a1)
	inProc.Merge(b1)

	a2, b2, viaWire := mk()
	da, err := DecodeSet(a2.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeSet(b2.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	viaWire.Merge(da)
	viaWire.Merge(db)

	if inProc.Fingerprint() != viaWire.Fingerprint() {
		t.Fatal("merged fingerprint differs between in-process and via-wire shard sets")
	}
}

// TestSetCodecRejectsCorruption drives the decoder over systematically
// damaged frames: every truncation must fail cleanly, and single-byte
// corruptions must either fail with ErrCodec or decode into a set that
// still re-encodes canonically — never panic.
func TestSetCodecRejectsCorruption(t *testing.T) {
	wire := synthSet(3, 8).EncodeBinary()
	for cut := 0; cut < len(wire); cut += 7 {
		if _, err := DecodeSet(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		} else if !errors.Is(err, ErrCodec) {
			t.Fatalf("truncation at %d: error %v not ErrCodec", cut, err)
		}
	}
	for pos := 0; pos < len(wire); pos += 11 {
		mut := append([]byte(nil), wire...)
		mut[pos] ^= 0x5a
		s, err := DecodeSet(mut)
		if err != nil {
			continue
		}
		if string(s.EncodeBinary()) == "" {
			t.Fatalf("corruption at %d decoded to an unencodable set", pos)
		}
	}
	if _, err := DecodeSet(nil); err == nil {
		t.Fatal("empty input decoded")
	}
}

func int32ToVDID(v int) cluster.VDID       { return cluster.VDID(v) }
func int32ToSegID(v int) cluster.SegmentID { return cluster.SegmentID(v) }
