package sketch

import (
	"math"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// synthRecords builds a deterministic stream of records over nVDs virtual
// disks. Segment IDs are disjoint per VD (seg = vd*100 + local), mirroring
// the topology invariant the engine relies on.
func synthRecords(seed rng, n, nVDs int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		vd := i % nVDs
		op := trace.OpRead
		if seed.next()%3 == 0 {
			op = trace.OpWrite
		}
		size := int32(4096 << (seed.next() % 5))
		recs[i] = trace.Record{
			TimeUS:  int64(i) * 700,
			Op:      op,
			Size:    size,
			Offset:  int64(seed.next() % (1 << 30)),
			VD:      cluster.VDID(vd),
			Segment: cluster.SegmentID(vd*100 + int(seed.next()%6)),
			Latency: [trace.NumStages]float32{float32(10 + seed.next()%500), 20, 30, 10, 40},
		}
	}
	return recs
}

// TestSetShardingInvariance is the subsystem's core determinism contract:
// however whole-VD record groups are distributed across shard sets, the
// merged fingerprint equals the single-set sequential ingest.
func TestSetShardingInvariance(t *testing.T) {
	const nVDs = 8
	recs := synthRecords(rng(42), 4000, nVDs)
	cfg := Config{DurationSec: 3, TputCapSum: 1e9}

	ref := NewSet(cfg)
	for vd := 0; vd < nVDs; vd++ {
		for i := range recs {
			if int(recs[i].VD) == vd {
				ref.Observe(&recs[i])
			}
		}
	}
	refFP := ref.Fingerprint()

	// Three different shardings, including reversed VD assignment order.
	for _, grouping := range [][][]int{
		{{0, 1, 2, 3, 4, 5, 6, 7}},
		{{0, 2, 4, 6}, {1, 3, 5, 7}},
		{{7, 1}, {6, 0}, {5, 3}, {4, 2}},
	} {
		shards := make([]*Set, len(grouping))
		for si, vds := range grouping {
			shards[si] = NewSet(cfg)
			for _, vd := range vds {
				for i := range recs {
					if int(recs[i].VD) == vd {
						shards[si].Observe(&recs[i])
					}
				}
			}
		}
		// Merge in shard order and, for the multi-shard cases, also in
		// reverse order: the combine must be order-insensitive.
		merged := NewSet(cfg)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if fp := merged.Fingerprint(); fp != refFP {
			t.Fatalf("grouping %v: fingerprint %s != reference %s", grouping, fp[:12], refFP[:12])
		}
	}
}

func TestSetMergeOrderInsensitive(t *testing.T) {
	recs := synthRecords(rng(9), 2000, 6)
	cfg := Config{}
	build := func(vds ...int) *Set {
		s := NewSet(cfg)
		for _, vd := range vds {
			for i := range recs {
				if int(recs[i].VD) == vd {
					s.Observe(&recs[i])
				}
			}
		}
		return s
	}
	ab := build(0, 1, 2)
	ab.Merge(build(3, 4, 5))
	ba := build(3, 4, 5)
	ba.Merge(build(0, 1, 2))
	if ab.Fingerprint() != ba.Fingerprint() {
		t.Fatal("Set.Merge is not order-insensitive")
	}
}

func TestSetTotalsConservation(t *testing.T) {
	recs := synthRecords(rng(5), 1000, 4)
	var wantBytes uint64
	for i := range recs {
		wantBytes += uint64(recs[i].Size)
	}
	a, b := NewSet(Config{}), NewSet(Config{})
	for i := range recs {
		if int(recs[i].VD) < 2 {
			a.Observe(&recs[i])
		} else {
			b.Observe(&recs[i])
		}
	}
	sum := a.Totals()
	sum.Add(b.Totals())
	a.Merge(b)
	if a.Totals() != sum {
		t.Fatalf("merged totals %+v != summed shard totals %+v", a.Totals(), sum)
	}
	if a.Totals().IOs != 1000 || a.Totals().Bytes != wantBytes {
		t.Fatalf("totals %+v, want 1000 IOs / %d bytes", a.Totals(), wantBytes)
	}
}

func TestSetSkewnessBasics(t *testing.T) {
	recs := synthRecords(rng(17), 6000, 8)
	s := NewSet(Config{TputCapSum: 1e12, Scale: 2})
	for i := range recs {
		s.Observe(&recs[i])
	}
	sk := s.Skewness()
	if sk.IOs != 12000 {
		t.Fatalf("scaled IOs = %d, want 12000", sk.IOs)
	}
	if !(sk.CCR10 > 0 && sk.CCR10 <= 1) || !(sk.CCR1 <= sk.CCR10) {
		t.Fatalf("CCR out of range: ccr1=%g ccr10=%g", sk.CCR1, sk.CCR10)
	}
	if !(sk.WrRatio >= -1 && sk.WrRatio <= 1) {
		t.Fatalf("wr_ratio = %g", sk.WrRatio)
	}
	if len(sk.HotVDs) != 8 {
		t.Fatalf("hot VDs = %d, want 8", len(sk.HotVDs))
	}
	if len(sk.HotSegments) == 0 || len(sk.HotSegments) > 32 {
		t.Fatalf("hot segments = %d", len(sk.HotSegments))
	}
	if !(sk.MeanRAR > 0 && sk.MeanRAR <= 1) {
		t.Fatalf("RAR = %g", sk.MeanRAR)
	}
	if !(sk.LatencyP50 > 0 && sk.LatencyP99 >= sk.LatencyP50) {
		t.Fatalf("latency quantiles p50=%g p99=%g", sk.LatencyP50, sk.LatencyP99)
	}
	if sk.ActiveSegments <= 0 || sk.ActiveBlocks <= 0 {
		t.Fatalf("cardinalities %g / %g", sk.ActiveBlocks, sk.ActiveSegments)
	}
	if math.IsNaN(sk.EWMABps) || sk.EWMABps <= 0 {
		t.Fatalf("EWMA = %g", sk.EWMABps)
	}
}
