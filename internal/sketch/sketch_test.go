package sketch

import (
	"math"
	"testing"

	"ebslab/internal/stats"
)

// rng is a tiny splitmix64 stream for deterministic test inputs.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	x := uint64(*r)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(8)
	want := map[uint64]uint64{1: 10, 2: 30, 3: 5, 4: 100}
	for k, w := range want {
		s.Add(k, w/2)
		s.Add(k, w-w/2)
	}
	es := s.Entries()
	if len(es) != len(want) {
		t.Fatalf("entries = %d, want %d", len(es), len(want))
	}
	for _, e := range es {
		if e.Count != want[e.Key] || e.Err != 0 {
			t.Fatalf("key %d: count %d err %d, want %d err 0", e.Key, e.Count, e.Err, want[e.Key])
		}
	}
	if es[0].Key != 4 || es[1].Key != 2 {
		t.Fatalf("ranking wrong: %+v", es)
	}
	if s.Mass() != 145 {
		t.Fatalf("mass = %d, want 145", s.Mass())
	}
}

func TestSpaceSavingErrorBound(t *testing.T) {
	const k = 16
	s := NewSpaceSaving(k)
	truth := make(map[uint64]uint64)
	var total uint64
	r := rng(7)
	// Zipf-ish: key j gets weight proportional to 1/(j+1), interleaved with
	// uniform noise keys to force evictions.
	for i := 0; i < 20000; i++ {
		var key uint64
		if i%2 == 0 {
			key = r.next() % 8
		} else {
			key = 100 + r.next()%500
		}
		w := 1 + r.next()%64
		s.Add(key, w)
		truth[key] += w
		total += w
	}
	if s.Len() > k {
		t.Fatalf("len = %d > capacity %d", s.Len(), k)
	}
	bound := total / k
	for _, e := range s.Entries() {
		tw := truth[e.Key]
		if e.Count < tw {
			t.Fatalf("key %d underestimated: %d < true %d", e.Key, e.Count, tw)
		}
		if e.Count-tw > bound {
			t.Fatalf("key %d overestimate %d exceeds W/k=%d", e.Key, e.Count-tw, bound)
		}
		if e.Err > bound {
			t.Fatalf("key %d err %d exceeds W/k=%d", e.Key, e.Err, bound)
		}
	}
	// Every key with true weight above W/k must be retained.
	retained := map[uint64]bool{}
	for _, e := range s.Entries() {
		retained[e.Key] = true
	}
	for key, tw := range truth {
		if tw > bound && !retained[key] {
			t.Fatalf("heavy key %d (weight %d > %d) evicted", key, tw, bound)
		}
	}
}

func TestSpaceSavingMergeCommutes(t *testing.T) {
	build := func(seed rng, n int) *SpaceSaving {
		s := NewSpaceSaving(8)
		for i := 0; i < n; i++ {
			s.Add(seed.next()%64, 1+seed.next()%16)
		}
		return s
	}
	ab := build(rng(1), 300)
	ab.Merge(build(rng(2), 200))
	ba := build(rng(2), 200)
	ba.Merge(build(rng(1), 300))
	da, db := newDigest(), newDigest()
	ab.AppendHash(da)
	ba.AppendHash(db)
	if da.sum() != db.sum() {
		t.Fatal("SpaceSaving merge is not commutative")
	}
	if ab.Len() > 8 {
		t.Fatalf("merged len %d exceeds capacity", ab.Len())
	}
}

func TestLogQuantileErrorBound(t *testing.T) {
	const alpha = 0.01
	lq := NewLogQuantile(alpha)
	var xs []float64
	r := rng(11)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~5 decades, the shape of latency data.
		v := math.Pow(10, 1+4*r.float())
		xs = append(xs, v)
		lq.Add(v, 1)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		exact := stats.Quantile(xs, q)
		got := lq.Quantile(q)
		rel := math.Abs(got-exact) / exact
		// alpha bucket error plus a little rank-interpolation slack.
		if rel > 2*alpha {
			t.Fatalf("q=%g: sketch %g vs exact %g, rel err %.4f > %.4f", q, got, exact, rel, 2*alpha)
		}
	}
}

func TestLogQuantileEdgeCases(t *testing.T) {
	lq := NewLogQuantile(0.01)
	if !math.IsNaN(lq.Quantile(0.5)) {
		t.Fatal("empty sketch must report NaN")
	}
	lq.Add(0, 3)
	lq.Add(-5, 1)
	lq.Add(100, 1)
	if got := lq.Quantile(0); got != 0 {
		t.Fatalf("q=0 over zero-heavy data = %g, want 0", got)
	}
	if got := lq.Quantile(1); math.Abs(got-100)/100 > 0.01 {
		t.Fatalf("q=1 = %g, want ~100", got)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(lq.Quantile(q)) {
			t.Fatalf("q=%v must report NaN", q)
		}
	}
	if lq.Count() != 5 {
		t.Fatalf("count = %d, want 5", lq.Count())
	}
}

func TestLogQuantileMergeCommutes(t *testing.T) {
	build := func(seed rng, n int) *LogQuantile {
		l := NewLogQuantile(0.01)
		for i := 0; i < n; i++ {
			l.Add(math.Pow(10, 5*seed.float()), 1+seed.next()%4)
		}
		return l
	}
	ab := build(rng(3), 500)
	ab.Merge(build(rng(4), 400))
	ba := build(rng(4), 400)
	ba.Merge(build(rng(3), 500))
	da, db := newDigest(), newDigest()
	ab.AppendHash(da)
	ba.AppendHash(db)
	if da.sum() != db.sum() {
		t.Fatal("LogQuantile merge is not commutative")
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 5000, 50000} {
		h := NewHLL(12)
		for i := 0; i < n; i++ {
			h.Add(uint64(i))
			h.Add(uint64(i)) // duplicates must not inflate
		}
		est := h.Estimate()
		rel := math.Abs(est-float64(n)) / float64(n)
		if rel > 0.1 {
			t.Fatalf("n=%d: estimate %.0f, rel err %.3f > 0.1", n, est, rel)
		}
	}
}

func TestHLLMergeMatchesUnionIngest(t *testing.T) {
	a, b, u := NewHLL(12), NewHLL(12), NewHLL(12)
	for i := 0; i < 3000; i++ {
		a.Add(uint64(i))
		u.Add(uint64(i))
	}
	for i := 2000; i < 6000; i++ {
		b.Add(uint64(i))
		u.Add(uint64(i))
	}
	a.Merge(b)
	da, du := newDigest(), newDigest()
	a.AppendHash(da)
	u.AppendHash(du)
	if da.sum() != du.sum() {
		t.Fatal("merged HLL state differs from union ingest")
	}
}

func TestRateMeter(t *testing.T) {
	r := NewRateMeter(4)
	r.Add(0, true, 100)
	r.Add(1, true, 100)
	r.Add(2, false, 100)
	r.Add(3, true, 500) // peak
	if got := r.P2A(true, true); math.Abs(got-500/200.0) > 1e-12 {
		t.Fatalf("P2A = %g, want 2.5", got)
	}
	if got := r.P2A(false, true); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("write P2A = %g, want 4", got)
	}
	// RAR with cap 1000: per-sec loads 100,100,100,500 -> RARs .9,.9,.9,.5
	if got := r.MeanRAR(1000, 1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("MeanRAR = %g, want 0.8", got)
	}
	if !math.IsNaN(r.MeanRAR(0, 1)) {
		t.Fatal("MeanRAR without caps must be NaN")
	}
	if e := r.EWMA(1, 1); !(e > 100 && e < 500) {
		t.Fatalf("EWMA = %g out of range", e)
	}

	// Merge extends and sums.
	o := NewRateMeter(0)
	o.Add(5, false, 40)
	o.Add(0, true, 1)
	r.Merge(o)
	if r.Seconds() != 6 || r.Bucket(5).WriteBytes != 40 || r.Bucket(0).ReadBytes != 101 {
		t.Fatalf("merge wrong: %+v", r.secs)
	}
	if r.Bucket(99) != (RateBucket{}) {
		t.Fatal("out-of-window bucket must be zero")
	}
}

func TestOverlap(t *testing.T) {
	a := []Entry{{Key: 1}, {Key: 2}, {Key: 3}, {Key: 4}}
	b := []Entry{{Key: 2}, {Key: 4}, {Key: 9}}
	if got := Overlap(a, b); got != 0.5 {
		t.Fatalf("overlap = %g, want 0.5", got)
	}
	if !math.IsNaN(Overlap(nil, b)) {
		t.Fatal("empty exact set must be NaN")
	}
}
