package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Binary wire codec for Set. The distributed simulation fabric ships each
// shard's sketch state from worker to coordinator as one of these frames;
// the contract (pinned by tests and the FuzzSetCodec target) is that
// decode(encode(s)) reproduces s's Fingerprint exactly, so merging decoded
// shard sets yields the same merged fingerprint as merging the originals.
//
// The format is versioned, little-endian, and canonical: map sections are
// written in ascending key order and the decoder rejects out-of-order or
// duplicate keys, so a Set has exactly one encoding. The decoder bounds
// every allocation by the remaining input length, so a hostile length
// prefix cannot commit memory the stream does not back.

// codecMagic opens every frame: "SKS" plus a format version byte.
const codecMagic = uint32('S')<<24 | uint32('K')<<16 | uint32('S')<<8 | 1

// Codec limits: caps on decoded structure sizes, far above anything the
// engine produces but small enough that a hostile frame cannot balloon
// memory. maxCodecSecs bounds the rate meter (≈ 12 days of seconds).
const (
	maxCodecK    = 1 << 20
	maxCodecSecs = 1 << 20
)

// ErrCodec reports a malformed Set frame.
var ErrCodec = errors.New("sketch: malformed Set encoding")

// wbuf is an append-only little-endian writer.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) f64(v float64) {
	w.u64(math.Float64bits(v))
}

// rbuf is the bounds-checked reader: the first short read latches err and
// every later read returns zeros, so decoders can be written straight-line
// and check err once per section.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *rbuf) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *rbuf) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *rbuf) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a section length and verifies the stream still holds at
// least elemSize bytes per element before the caller allocates.
func (r *rbuf) count(elemSize int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)-r.off) {
		r.fail("section of %d elements x %d bytes exceeds remaining %d", n, elemSize, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

// EncodeBinary serializes the set's entire state in canonical order.
func (s *Set) EncodeBinary() []byte {
	w := &wbuf{b: make([]byte, 0, 1024)}
	w.u32(codecMagic)

	w.u32(uint32(s.cfg.TopK))
	w.u32(uint32(s.cfg.SegPerVD))
	w.f64(s.cfg.QuantileAlpha)
	w.u32(uint32(s.cfg.HLLPrecision))
	w.f64(s.cfg.EWMAHalfLifeSec)
	w.f64(s.cfg.Scale)
	w.f64(s.cfg.TputCapSum)
	w.u32(uint32(s.cfg.DurationSec))

	w.u64(s.totals.IOs)
	w.u64(s.totals.Bytes)

	w.u32(uint32(len(s.vds)))
	for _, vd := range sortedKeys(s.vds) {
		dc := s.vds[vd]
		w.u64(vd)
		w.u64(dc.readBytes)
		w.u64(dc.writeBytes)
		w.u64(dc.readOps)
		w.u64(dc.writeOps)
	}

	w.u32(uint32(len(s.segHot)))
	for _, vd := range sortedKeys(s.segHot) {
		w.u64(vd)
		s.segHot[vd].appendBinary(w)
	}

	s.rate.appendBinary(w)
	s.lat.appendBinary(w)
	s.sizes.appendBinary(w)
	s.blocks.appendBinary(w)
	s.segs.appendBinary(w)
	return w.b
}

// DecodeSet parses a frame produced by EncodeBinary. It rejects truncated,
// oversized, non-canonical, and internally inconsistent frames with
// ErrCodec; a successful decode reproduces the source set's Fingerprint.
func DecodeSet(data []byte) (*Set, error) {
	r := &rbuf{b: data}
	if m := r.u32(); r.err == nil && m != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrCodec, m)
	}

	var cfg Config
	cfg.TopK = int(r.u32())
	cfg.SegPerVD = int(r.u32())
	cfg.QuantileAlpha = r.f64()
	cfg.HLLPrecision = int(r.u32())
	cfg.EWMAHalfLifeSec = r.f64()
	cfg.Scale = r.f64()
	cfg.TputCapSum = r.f64()
	cfg.DurationSec = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	// Encoded configs come from NewSet, so they are already normalized; a
	// config that withDefaults would rewrite is junk, as is one beyond the
	// codec's structural caps.
	if cfg != cfg.withDefaults() || cfg.TopK > maxCodecK || cfg.SegPerVD > maxCodecK ||
		cfg.DurationSec < 0 || cfg.DurationSec > maxCodecSecs {
		return nil, fmt.Errorf("%w: non-canonical config %+v", ErrCodec, cfg)
	}

	s := &Set{cfg: cfg}
	s.totals.IOs = r.u64()
	s.totals.Bytes = r.u64()

	nVDs := r.count(5 * 8)
	s.vds = make(map[uint64]*dirCount, nVDs)
	lastKey, first := uint64(0), true
	for i := 0; i < nVDs && r.err == nil; i++ {
		vd := r.u64()
		if !first && vd <= lastKey {
			r.fail("vds keys not strictly ascending at %d", vd)
			break
		}
		lastKey, first = vd, false
		s.vds[vd] = &dirCount{
			readBytes:  r.u64(),
			writeBytes: r.u64(),
			readOps:    r.u64(),
			writeOps:   r.u64(),
		}
	}

	nHot := r.count(8)
	s.segHot = make(map[uint64]*SpaceSaving, nHot)
	lastKey, first = 0, true
	for i := 0; i < nHot && r.err == nil; i++ {
		vd := r.u64()
		if !first && vd <= lastKey {
			r.fail("segHot keys not strictly ascending at %d", vd)
			break
		}
		lastKey, first = vd, false
		s.segHot[vd] = decodeSpaceSaving(r)
	}

	s.rate = decodeRateMeter(r)
	s.lat = decodeLogQuantile(r)
	s.sizes = decodeLogQuantile(r)
	s.blocks = decodeHLL(r)
	s.segs = decodeHLL(r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.b)-r.off)
	}
	return s, nil
}

func (s *SpaceSaving) appendBinary(w *wbuf) {
	w.u32(uint32(s.k))
	w.u32(uint32(len(s.counters)))
	for _, k := range sortedKeys(s.counters) {
		c := s.counters[k]
		w.u64(k)
		w.u64(c.count)
		w.u64(c.err)
	}
}

func decodeSpaceSaving(r *rbuf) *SpaceSaving {
	k := int(r.u32())
	if r.err == nil && (k < 1 || k > maxCodecK) {
		r.fail("SpaceSaving capacity %d", k)
	}
	n := r.count(3 * 8)
	if r.err == nil && n > k {
		r.fail("SpaceSaving holds %d counters over capacity %d", n, k)
	}
	if r.err != nil {
		return nil
	}
	s := &SpaceSaving{k: k, counters: make(map[uint64]ssCounter, n)}
	lastKey, first := uint64(0), true
	for i := 0; i < n && r.err == nil; i++ {
		key := r.u64()
		if !first && key <= lastKey {
			r.fail("SpaceSaving keys not strictly ascending at %d", key)
			break
		}
		lastKey, first = key, false
		c := ssCounter{count: r.u64(), err: r.u64()}
		if c.err > c.count {
			r.fail("SpaceSaving counter %d has err %d > count %d", key, c.err, c.count)
			break
		}
		s.counters[key] = c
	}
	return s
}

func (r *RateMeter) appendBinary(w *wbuf) {
	w.u32(uint32(len(r.secs)))
	for _, b := range r.secs {
		w.u64(b.ReadBytes)
		w.u64(b.WriteBytes)
		w.u64(b.ReadOps)
		w.u64(b.WriteOps)
	}
}

func decodeRateMeter(r *rbuf) *RateMeter {
	n := r.count(4 * 8)
	if r.err == nil && n > maxCodecSecs {
		r.fail("RateMeter spans %d seconds", n)
	}
	if r.err != nil {
		return nil
	}
	m := &RateMeter{secs: make([]RateBucket, n)}
	for i := 0; i < n && r.err == nil; i++ {
		m.secs[i] = RateBucket{
			ReadBytes:  r.u64(),
			WriteBytes: r.u64(),
			ReadOps:    r.u64(),
			WriteOps:   r.u64(),
		}
	}
	return m
}

func (l *LogQuantile) appendBinary(w *wbuf) {
	w.f64(l.alpha)
	w.u64(l.zero)
	w.u64(l.total)
	w.u32(uint32(len(l.buckets)))
	idxs := make([]int64, 0, len(l.buckets))
	for idx := range l.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		w.u64(uint64(idx))
		w.u64(l.buckets[idx])
	}
}

func decodeLogQuantile(r *rbuf) *LogQuantile {
	alpha := r.f64()
	if r.err == nil && !(alpha > 0 && alpha < 0.5) {
		r.fail("LogQuantile alpha %g", alpha)
	}
	zero := r.u64()
	total := r.u64()
	n := r.count(2 * 8)
	if r.err != nil {
		return nil
	}
	l := NewLogQuantile(alpha)
	l.zero, l.total = zero, total
	var sum uint64 = zero
	lastIdx, first := int64(0), true
	for i := 0; i < n && r.err == nil; i++ {
		idx := int64(r.u64())
		if !first && idx <= lastIdx {
			r.fail("LogQuantile buckets not strictly ascending at %d", idx)
			break
		}
		lastIdx, first = idx, false
		wgt := r.u64()
		if wgt == 0 {
			r.fail("LogQuantile empty bucket %d", idx)
			break
		}
		l.buckets[idx] = wgt
		sum += wgt
	}
	if r.err == nil && sum != total {
		r.fail("LogQuantile total %d != bucket sum %d", total, sum)
	}
	return l
}

func (h *HLL) appendBinary(w *wbuf) {
	w.u8(h.p)
	w.b = append(w.b, h.registers...)
}

func decodeHLL(r *rbuf) *HLL {
	p := int(r.u8())
	if r.err == nil && (p < 4 || p > 16) {
		r.fail("HLL precision %d", p)
	}
	if r.err != nil {
		return nil
	}
	regs := r.take(1 << p)
	if regs == nil {
		return nil
	}
	h := &HLL{p: uint8(p), registers: make([]uint8, 1<<p)}
	copy(h.registers, regs)
	for i, v := range h.registers {
		// rho never exceeds 64-p+1 bits of tail.
		if int(v) > 64-p+1 {
			r.fail("HLL register %d holds impossible rho %d", i, v)
			return nil
		}
	}
	return h
}
