package sketch

import (
	"math"
	"sort"

	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// ExactSkewness computes the same metric surface as Set.Skewness from a
// fully materialized dataset — the batch path the sketches approximate, and
// the reference side of every accuracy gate. Spatial and temporal metrics
// come from the full-scale metric rows (always exact); the latency/size
// quantiles and the active-entity counts come from the per-IO trace, so
// they equal the streamed view only when the run traced every IO
// (TraceSampleEvery=1). Metric rows are already scaled by the engine's
// event thinning, so cfg.Scale is not applied.
func ExactSkewness(ds *trace.Dataset, cfg Config) Skewness {
	cfg = cfg.withDefaults()

	// Spatial: per-VD and per-segment totals from the storage domain.
	vdBytes := make(map[uint64]float64)
	var vdRead, vdWrite float64
	segBytes := make(map[uint64]float64)
	secs := ds.DurationSec
	for i := range ds.Storage {
		if int(ds.Storage[i].Sec) >= secs {
			secs = int(ds.Storage[i].Sec) + 1
		}
	}
	secR := make([]float64, secs)
	secW := make([]float64, secs)
	for i := range ds.Storage {
		m := &ds.Storage[i]
		vdBytes[uint64(m.VD)] += m.Bps()
		segBytes[uint64(m.Segment)] += m.Bps()
		vdRead += m.ReadBps
		vdWrite += m.WriteBps
		secR[m.Sec] += m.ReadBps
		secW[m.Sec] += m.WriteBps
	}
	perVD := make([]float64, 0, len(vdBytes))
	for _, vd := range sortedKeys(vdBytes) {
		perVD = append(perVD, vdBytes[vd])
	}
	secT := make([]float64, secs)
	for i := range secT {
		secT[i] = secR[i] + secW[i]
	}

	out := Skewness{
		IOs:     uint64(math.Round(sumIOPS(ds))),
		Bytes:   vdRead + vdWrite,
		CCR1:    stats.CCR(perVD, 0.01),
		CCR10:   stats.CCR(perVD, 0.10),
		NormCoV: stats.NormCoV(perVD),
		WrRatio: stats.WrRatio(vdWrite, vdRead),

		P2ARead:  stats.P2A(secR),
		P2AWrite: stats.P2A(secW),
		P2ATotal: stats.P2A(secT),
		EWMABps:  ewma(secT, cfg.EWMAHalfLifeSec),
		MeanRAR:  meanRAR(secT, cfg.TputCapSum),

		HotVDs:      topEntries(vdBytes, cfg.TopK),
		HotSegments: topEntries(segBytes, cfg.TopK),
	}

	// Distributions and cardinality from the per-IO trace.
	lat := make([]float64, 0, len(ds.Trace))
	sizes := make([]float64, 0, len(ds.Trace))
	blocks := make(map[uint64]struct{})
	segSeen := make(map[uint64]struct{})
	for i := range ds.Trace {
		r := &ds.Trace[i]
		lat = append(lat, r.TotalLatency())
		sizes = append(sizes, float64(r.Size))
		blocks[blockKey(uint64(r.VD), r.Offset)] = struct{}{}
		segSeen[uint64(r.Segment)] = struct{}{}
	}
	out.LatencyP50 = stats.Quantile(lat, 0.5)
	out.LatencyP99 = stats.Quantile(lat, 0.99)
	out.SizeP50 = stats.Quantile(sizes, 0.5)
	out.SizeP99 = stats.Quantile(sizes, 0.99)
	out.ActiveBlocks = float64(len(blocks))
	out.ActiveSegments = float64(len(segSeen))
	return out
}

// sumIOPS totals the (scaled) operation counts of the storage rows.
func sumIOPS(ds *trace.Dataset) float64 {
	var s float64
	for i := range ds.Storage {
		s += ds.Storage[i].IOPS()
	}
	return s
}

// ewma mirrors RateMeter.EWMA over a plain series.
func ewma(xs []float64, halfLifeSec float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if halfLifeSec < 1 {
		halfLifeSec = 1
	}
	decay := math.Exp2(-1 / halfLifeSec)
	v := xs[0]
	for _, x := range xs[1:] {
		v = decay*v + (1-decay)*x
	}
	return v
}

// meanRAR mirrors RateMeter.MeanRAR over a plain series.
func meanRAR(xs []float64, capSum float64) float64 {
	if capSum <= 0 || len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		r := (capSum - v) / capSum
		if r < 0 {
			r = 0
		}
		sum += r
	}
	return sum / float64(len(xs))
}

// topEntries ranks a weight map's keys by (weight desc, key asc) and
// returns the top k as error-free entries with rounded integer counts.
func topEntries(weights map[uint64]float64, k int) []Entry {
	out := make([]Entry, 0, len(weights))
	for key, w := range weights {
		out = append(out, Entry{Key: key, Count: uint64(math.Round(w))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
