package sketch

import "math"

// RateBucket is one second of directional traffic accounting, in exact
// integer units (bytes and ops).
type RateBucket struct {
	ReadBytes  uint64
	WriteBytes uint64
	ReadOps    uint64
	WriteOps   uint64
}

// Bytes returns the bucket's summed read+write bytes.
func (b RateBucket) Bytes() uint64 { return b.ReadBytes + b.WriteBytes }

// RateMeter accumulates per-second directional rates over the observation
// window. State is a slice of integer buckets indexed by second, so Add
// commutes and Merge is an element-wise sum — exact, associative, and
// commutative. Derived statistics (P2A, EWMA, RAR) are computed at read
// time from the finalized buckets in ascending-second order, making them a
// deterministic function of the ingested multiset. Memory is bounded by the
// window length, never by the IO count.
type RateMeter struct {
	secs []RateBucket
}

// NewRateMeter creates a meter, pre-sizing for durSec seconds (the meter
// still grows if later seconds arrive).
func NewRateMeter(durSec int) *RateMeter {
	if durSec < 0 {
		durSec = 0
	}
	return &RateMeter{secs: make([]RateBucket, durSec)}
}

// Add ingests one IO of the given size at second sec (negative seconds are
// ignored).
func (r *RateMeter) Add(sec int, read bool, bytes uint64) {
	if sec < 0 {
		return
	}
	for sec >= len(r.secs) {
		r.secs = append(r.secs, RateBucket{})
	}
	b := &r.secs[sec]
	if read {
		b.ReadBytes += bytes
		b.ReadOps++
	} else {
		b.WriteBytes += bytes
		b.WriteOps++
	}
}

// Merge folds o into r element-wise, extending r to o's length if needed.
func (r *RateMeter) Merge(o *RateMeter) {
	for len(r.secs) < len(o.secs) {
		r.secs = append(r.secs, RateBucket{})
	}
	for i, b := range o.secs {
		r.secs[i].ReadBytes += b.ReadBytes
		r.secs[i].WriteBytes += b.WriteBytes
		r.secs[i].ReadOps += b.ReadOps
		r.secs[i].WriteOps += b.WriteOps
	}
}

// Seconds returns the number of tracked seconds.
func (r *RateMeter) Seconds() int { return len(r.secs) }

// Bucket returns second sec's accounting (zero value beyond the window).
func (r *RateMeter) Bucket(sec int) RateBucket {
	if sec < 0 || sec >= len(r.secs) {
		return RateBucket{}
	}
	return r.secs[sec]
}

// Series returns the per-second byte rates of the selected direction,
// scaled by scale (the engine's event-thinning compensation): read, write,
// or — when both flags are set or clear — total.
func (r *RateMeter) Series(read, write bool, scale float64) []float64 {
	if scale <= 0 {
		scale = 1
	}
	out := make([]float64, len(r.secs))
	both := read == write
	for i, b := range r.secs {
		var v uint64
		if read || both {
			v += b.ReadBytes
		}
		if write || both {
			v += b.WriteBytes
		}
		out[i] = float64(v) * scale
	}
	return out
}

// P2A returns the peak-to-average ratio of the selected direction's
// per-second byte rate, or NaN for an empty or all-zero meter. Scale
// factors cancel, so none is applied.
func (r *RateMeter) P2A(read, write bool) float64 {
	s := r.Series(read, write, 1)
	var sum, peak float64
	for _, v := range s {
		sum += v
		if v > peak {
			peak = v
		}
	}
	if len(s) == 0 || sum == 0 {
		return math.NaN()
	}
	return peak / (sum / float64(len(s)))
}

// EWMA returns the exponentially weighted moving average of the total
// per-second byte rate after the final second, with the given half-life in
// seconds (clamped to >= 1) and thinning scale. The fold runs in ascending
// second order, so the result is deterministic.
func (r *RateMeter) EWMA(halfLifeSec, scale float64) float64 {
	if len(r.secs) == 0 {
		return math.NaN()
	}
	if halfLifeSec < 1 {
		halfLifeSec = 1
	}
	decay := math.Exp2(-1 / halfLifeSec)
	s := r.Series(true, true, scale)
	ewma := s[0]
	for _, v := range s[1:] {
		ewma = decay*ewma + (1-decay)*v
	}
	return ewma
}

// MeanRAR returns the mean Resource Available Rate (Equation 1 of the
// paper) of the fleet over the window: per second, (capSum - load)/capSum
// clipped at zero, where load is the scaled total byte rate. It returns NaN
// when capSum is non-positive or the meter is empty.
func (r *RateMeter) MeanRAR(capSum, scale float64) float64 {
	if capSum <= 0 || len(r.secs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range r.Series(true, true, scale) {
		rar := (capSum - v) / capSum
		if rar < 0 {
			rar = 0
		}
		sum += rar
	}
	return sum / float64(len(r.secs))
}

// AppendHash writes the meter's canonical serialization into d.
func (r *RateMeter) AppendHash(d *digest) {
	d.u64(uint64(len(r.secs)))
	for _, b := range r.secs {
		d.u64(b.ReadBytes)
		d.u64(b.WriteBytes)
		d.u64(b.ReadOps)
		d.u64(b.WriteOps)
	}
}
