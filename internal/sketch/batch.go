package sketch

import (
	"ebslab/internal/trace"
)

// ObserveBatch ingests a columnar batch of completed IOs: the batched form
// of Observe with identical semantics (rows fold in batch order, so the
// resulting sketch state — and its Fingerprint — matches the record-at-a-
// time path bit for bit). Engine batches hold a single virtual disk's rows,
// which the loop exploits by hoisting the per-VD map lookups across
// same-VD runs; mixed-VD batches remain correct.
func (s *Set) ObserveBatch(b *trace.Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	lastVD := uint64(b.VD[0])
	dc := s.vdCount(lastVD)
	ss := s.vdSegHot(lastVD)
	for i := 0; i < n; i++ {
		vd := uint64(b.VD[i])
		if vd != lastVD {
			lastVD = vd
			dc = s.vdCount(vd)
			ss = s.vdSegHot(vd)
		}
		s.ingest(dc, ss, vd, b.Op[i] == trace.OpRead,
			b.Size[i], b.TimeUS[i], b.Offset[i], uint64(b.Segment[i]), b.TotalLatencyAt(i))
	}
}

// AddBatch folds a batch of keys into the cardinality estimator.
func (h *HLL) AddBatch(keys []uint64) {
	for _, k := range keys {
		h.Add(k)
	}
}

// AddBatch folds parallel value/weight columns into the quantile sketch
// (weights of 1 for a plain value stream).
func (l *LogQuantile) AddBatch(vals []float64, ws []uint64) {
	for i, v := range vals {
		w := uint64(1)
		if ws != nil {
			w = ws[i]
		}
		l.Add(v, w)
	}
}

// AddBatch folds parallel key/weight columns into the heavy-hitter summary.
func (s *SpaceSaving) AddBatch(keys, ws []uint64) {
	for i, k := range keys {
		s.Add(k, ws[i])
	}
}
