package sketch

import (
	"math"

	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// Config parameterizes a sketch Set. The zero value of every field selects
// the documented default.
type Config struct {
	// TopK is the capacity of the global heavy-hitter rankings (default 32).
	TopK int
	// SegPerVD is the capacity of each virtual disk's LBA-segment
	// heavy-hitter summary (default 8). Global segment ranking error is
	// bounded by the per-VD stream weight divided by this.
	SegPerVD int
	// QuantileAlpha is the relative accuracy of the latency/size quantile
	// sketches (default 0.01, i.e. 1%).
	QuantileAlpha float64
	// HLLPrecision is the register exponent p of the cardinality
	// estimators (default 12: 4096 registers, ~1.6% standard error).
	HLLPrecision int
	// EWMAHalfLifeSec is the half-life of the windowed EWMA rate meter
	// (default 30).
	EWMAHalfLifeSec float64
	// Scale compensates event thinning: every byte/op count is multiplied
	// by Scale when rates are reported (default 1). The engine sets it to
	// its EventSampleEvery.
	Scale float64
	// TputCapSum is the summed throughput cap (bytes/s) of the simulated
	// disks, the denominator of the fleet RAR; 0 leaves RAR undefined. The
	// engine fills it from the topology when left zero.
	TputCapSum float64
	// DurationSec pre-sizes the per-second rate meter (it still grows).
	DurationSec int
}

// withDefaults fills zero-valued fields with the package defaults.
func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.SegPerVD <= 0 {
		c.SegPerVD = 8
	}
	if !(c.QuantileAlpha > 0 && c.QuantileAlpha < 0.5) {
		c.QuantileAlpha = 0.01
	}
	if c.HLLPrecision < 4 || c.HLLPrecision > 16 {
		c.HLLPrecision = 12
	}
	if c.EWMAHalfLifeSec <= 0 {
		c.EWMAHalfLifeSec = 30
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// dirCount is one entity's exact directional accounting.
type dirCount struct {
	readBytes  uint64
	writeBytes uint64
	readOps    uint64
	writeOps   uint64
}

func (d dirCount) bytes() uint64 { return d.readBytes + d.writeBytes }

// Set bundles the streaming summaries the engine keeps per shard: exact
// per-VD directional counters (the VD space is fleet-bounded, so CCR and
// CoV come out exact), per-VD SpaceSaving segment heavy hitters, a fleet
// rate meter, latency and size quantile sketches, and active-block /
// active-segment cardinality estimators. Memory is O(VDs x SegPerVD +
// DurationSec + 2^HLLPrecision + quantile buckets) — independent of how
// many IOs stream through.
//
// Merge is a component-wise monoid combine. In the engine every virtual
// disk is ingested whole by exactly one shard, so the per-VD maps of two
// shard sets are key-disjoint and Merge is exactly commutative; order-
// sensitive truncation happens only inside Skewness, which folds per-VD
// state in ascending VD order.
type Set struct {
	cfg    Config
	totals Totals
	vds    map[uint64]*dirCount
	segHot map[uint64]*SpaceSaving
	rate   *RateMeter
	lat    *LogQuantile
	sizes  *LogQuantile
	blocks *HLL
	segs   *HLL
}

// NewSet creates a sketch set with the given configuration.
func NewSet(cfg Config) *Set {
	cfg = cfg.withDefaults()
	return &Set{
		cfg:    cfg,
		vds:    make(map[uint64]*dirCount),
		segHot: make(map[uint64]*SpaceSaving),
		rate:   NewRateMeter(cfg.DurationSec),
		lat:    NewLogQuantile(cfg.QuantileAlpha),
		sizes:  NewLogQuantile(cfg.QuantileAlpha),
		blocks: NewHLL(cfg.HLLPrecision),
		segs:   NewHLL(cfg.HLLPrecision),
	}
}

// Config returns the set's normalized configuration.
func (s *Set) Config() Config { return s.cfg }

// Totals returns the exact ingest accounting.
func (s *Set) Totals() Totals { return s.totals }

// blockKey derives a distinct-block key from a VD and a 4 KiB-aligned
// offset; the multiply spreads VD identity across the word before HLL's
// splitmix64 finishes the mixing.
func blockKey(vd uint64, offset int64) uint64 {
	return (vd+1)*0x9e3779b97f4a7c15 ^ uint64(offset>>12)
}

// vdCount returns (creating on first touch) the exact directional counter
// of one virtual disk.
func (s *Set) vdCount(vd uint64) *dirCount {
	dc := s.vds[vd]
	if dc == nil {
		dc = &dirCount{}
		s.vds[vd] = dc
	}
	return dc
}

// vdSegHot returns (creating on first touch) the segment heavy-hitter
// summary of one virtual disk.
func (s *Set) vdSegHot(vd uint64) *SpaceSaving {
	ss := s.segHot[vd]
	if ss == nil {
		ss = NewSpaceSaving(s.cfg.SegPerVD)
		s.segHot[vd] = ss
	}
	return ss
}

// Observe ingests one completed IO: the record-at-a-time wrapper over the
// same ingest the batched ObserveBatch path performs. The record's latency
// must be final (queue delay and fault penalties applied), since the
// latency sketch sees it here.
func (s *Set) Observe(rec *trace.Record) {
	vd := uint64(rec.VD)
	s.ingest(s.vdCount(vd), s.vdSegHot(vd), vd, rec.Op == trace.OpRead,
		rec.Size, rec.TimeUS, rec.Offset, uint64(rec.Segment), rec.TotalLatency())
}

// ingest folds one IO into every summary; dc and ss are the per-VD states
// of vd (hoisted by ObserveBatch across same-VD runs).
func (s *Set) ingest(dc *dirCount, ss *SpaceSaving, vd uint64, read bool, size32 int32, timeUS, offset int64, seg uint64, totalLat float64) {
	size := uint64(size32)
	s.totals.IOs++
	s.totals.Bytes += size
	if read {
		dc.readBytes += size
		dc.readOps++
	} else {
		dc.writeBytes += size
		dc.writeOps++
	}
	ss.Add(seg, size)
	s.rate.Add(int(timeUS/1_000_000), read, size)
	s.lat.Add(totalLat, 1)
	s.sizes.Add(float64(size32), 1)
	s.blocks.Add(blockKey(vd, offset))
	s.segs.Add(seg)
}

// Merge folds o (built with the same Config) into s. o must not be used
// afterwards.
func (s *Set) Merge(o *Set) {
	s.totals.Add(o.totals)
	for vd, odc := range o.vds {
		dc := s.vds[vd]
		if dc == nil {
			s.vds[vd] = odc
			continue
		}
		dc.readBytes += odc.readBytes
		dc.writeBytes += odc.writeBytes
		dc.readOps += odc.readOps
		dc.writeOps += odc.writeOps
	}
	for vd, oss := range o.segHot {
		ss := s.segHot[vd]
		if ss == nil {
			s.segHot[vd] = oss
			continue
		}
		ss.Merge(oss)
	}
	s.rate.Merge(o.rate)
	s.lat.Merge(o.lat)
	s.sizes.Merge(o.sizes)
	s.blocks.Merge(o.blocks)
	s.segs.Merge(o.segs)
}

// Fingerprint returns a collision-resistant digest of the set's entire
// state in canonical order; the worker-count determinism oracle compares
// these across replays.
func (s *Set) Fingerprint() string {
	d := newDigest()
	d.f64(s.cfg.QuantileAlpha)
	d.u64(uint64(s.cfg.TopK))
	d.u64(uint64(s.cfg.SegPerVD))
	d.u64(s.totals.IOs)
	d.u64(s.totals.Bytes)
	d.u64(uint64(len(s.vds)))
	for _, vd := range sortedKeys(s.vds) {
		dc := s.vds[vd]
		d.u64(vd)
		d.u64(dc.readBytes)
		d.u64(dc.writeBytes)
		d.u64(dc.readOps)
		d.u64(dc.writeOps)
	}
	d.u64(uint64(len(s.segHot)))
	for _, vd := range sortedKeys(s.segHot) {
		d.u64(vd)
		s.segHot[vd].AppendHash(d)
	}
	s.rate.AppendHash(d)
	s.lat.AppendHash(d)
	s.sizes.AppendHash(d)
	s.blocks.AppendHash(d)
	s.segs.AppendHash(d)
	return d.sum()
}

// Skewness is the streaming form of the study's skewness metric surface:
// everything the batch pipeline derives from materialized trace rows,
// computed from sketch state alone.
type Skewness struct {
	IOs   uint64
	Bytes float64 // scaled by Config.Scale

	// Spatial skew across virtual disks (total traffic).
	CCR1, CCR10 float64 // top-1% / top-10% cumulative contribution rate
	NormCoV     float64 // normalized CoV across per-VD totals

	// Temporal skew of the fleet second series.
	P2ARead, P2AWrite, P2ATotal float64
	EWMABps                     float64 // windowed EWMA of total Bps after the last second
	MeanRAR                     float64 // fleet Resource Available Rate (Eq. 1)

	// Directional skew.
	WrRatio float64 // (W-R)/(W+R) over bytes

	// Distributions.
	LatencyP50, LatencyP99 float64 // end-to-end microseconds
	SizeP50, SizeP99       float64 // bytes

	// Cardinality (estimates).
	ActiveBlocks, ActiveSegments float64

	// Rankings (counts scaled by Config.Scale).
	HotVDs      []Entry // key = VD id
	HotSegments []Entry // key = segment id
}

// Skewness finalizes the set into its metric surface. Per-VD state is
// folded in ascending VD order, so the result is a deterministic function
// of the merged sketch state.
func (s *Set) Skewness() Skewness {
	sc := s.cfg.Scale
	out := Skewness{
		IOs:            uint64(math.Round(float64(s.totals.IOs) * sc)),
		Bytes:          float64(s.totals.Bytes) * sc,
		P2ARead:        s.rate.P2A(true, false),
		P2AWrite:       s.rate.P2A(false, true),
		P2ATotal:       s.rate.P2A(true, true),
		EWMABps:        s.rate.EWMA(s.cfg.EWMAHalfLifeSec, sc),
		MeanRAR:        s.rate.MeanRAR(s.cfg.TputCapSum, sc),
		LatencyP50:     s.lat.Quantile(0.5),
		LatencyP99:     s.lat.Quantile(0.99),
		SizeP50:        s.sizes.Quantile(0.5),
		SizeP99:        s.sizes.Quantile(0.99),
		ActiveBlocks:   s.blocks.Estimate(),
		ActiveSegments: s.segs.Estimate(),
	}

	vdKeys := sortedKeys(s.vds)
	perVD := make([]float64, 0, len(vdKeys))
	var readBytes, writeBytes uint64
	hotVDs := NewSpaceSaving(s.cfg.TopK)
	for _, vd := range vdKeys {
		dc := s.vds[vd]
		perVD = append(perVD, float64(dc.bytes())*sc)
		readBytes += dc.readBytes
		writeBytes += dc.writeBytes
		hotVDs.Add(vd, dc.bytes())
	}
	out.CCR1 = stats.CCR(perVD, 0.01)
	out.CCR10 = stats.CCR(perVD, 0.10)
	out.NormCoV = stats.NormCoV(perVD)
	out.WrRatio = stats.WrRatio(float64(writeBytes), float64(readBytes))
	out.HotVDs = scaleEntries(hotVDs.Top(s.cfg.TopK), sc)

	hotSegs := NewSpaceSaving(s.cfg.TopK)
	for _, vd := range sortedKeys(s.segHot) {
		hotSegs.Merge(s.segHot[vd])
	}
	out.HotSegments = scaleEntries(hotSegs.Top(s.cfg.TopK), sc)
	return out
}

// scaleEntries multiplies entry counts/errors by the thinning scale,
// rounding to the nearest integer unit.
func scaleEntries(es []Entry, scale float64) []Entry {
	if scale == 1 {
		return es
	}
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = Entry{
			Key:   e.Key,
			Count: uint64(math.Round(float64(e.Count) * scale)),
			Err:   uint64(math.Round(float64(e.Err) * scale)),
		}
	}
	return out
}

// Overlap returns |exact ∩ got| / |exact| over the entry key sets — the
// top-K agreement score the accuracy gates assert on. It returns NaN when
// exact is empty.
func Overlap(exact, got []Entry) float64 {
	if len(exact) == 0 {
		return math.NaN()
	}
	keys := make(map[uint64]bool, len(got))
	for _, e := range got {
		keys[e.Key] = true
	}
	hit := 0
	for _, e := range exact {
		if keys[e.Key] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
