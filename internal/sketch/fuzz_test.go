package sketch

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// fuzzOps decodes the fuzzer's byte stream into (key, weight) pairs: 5
// bytes per op, one key byte (keeping collisions likely) and four weight
// bytes.
func fuzzOps(data []byte) [][2]uint64 {
	var ops [][2]uint64
	for len(data) >= 5 {
		key := uint64(data[0])
		w := uint64(binary.LittleEndian.Uint32(data[1:5]))
		ops = append(ops, [2]uint64{key, w})
		data = data[5:]
	}
	return ops
}

// FuzzSpaceSavingAddMerge checks the summary's structural invariants under
// arbitrary weighted streams split at an arbitrary point and merged both
// ways: capacity respected, mass conserved by Add, counts never below their
// error terms, and merge commutative.
func FuzzSpaceSavingAddMerge(f *testing.F) {
	f.Add([]byte{1, 2, 0, 0, 0, 3, 4, 0, 0, 0}, uint8(4), uint8(1))
	f.Add([]byte("heavy-hitters-here-we-go!"), uint8(2), uint8(12))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, splitRaw uint8) {
		k := int(kRaw%32) + 1
		ops := fuzzOps(data)
		var total uint64
		whole := NewSpaceSaving(k)
		for _, op := range ops {
			whole.Add(op[0], op[1])
			total += op[1]
		}
		if whole.Len() > k {
			t.Fatalf("len %d exceeds capacity %d", whole.Len(), k)
		}
		if whole.Mass() != total {
			t.Fatalf("mass %d, want total weight %d", whole.Mass(), total)
		}
		for _, e := range whole.Entries() {
			if e.Err > e.Count {
				t.Fatalf("entry %+v has err > count", e)
			}
		}

		split := 0
		if len(ops) > 0 {
			split = int(splitRaw) % (len(ops) + 1)
		}
		build := func(part [][2]uint64) *SpaceSaving {
			s := NewSpaceSaving(k)
			for _, op := range part {
				s.Add(op[0], op[1])
			}
			return s
		}
		ab := build(ops[:split])
		ab.Merge(build(ops[split:]))
		ba := build(ops[split:])
		ba.Merge(build(ops[:split]))
		da, db := newDigest(), newDigest()
		ab.AppendHash(da)
		ba.AppendHash(db)
		if da.sum() != db.sum() {
			t.Fatal("merge not commutative")
		}
		if ab.Len() > k {
			t.Fatalf("merged len %d exceeds capacity %d", ab.Len(), k)
		}
		if ab.Mass() > total {
			t.Fatalf("merged mass %d exceeds stream weight %d", ab.Mass(), total)
		}
	})
}

// FuzzLogQuantileMerge checks the quantile sketch on arbitrary value
// streams: merge must be commutative and byte-identical to whole-stream
// ingest, counts conserve, and quantiles stay inside the ingested range.
func FuzzLogQuantileMerge(f *testing.F) {
	f.Add([]byte{10, 0, 200, 3, 7, 9, 0, 0, 255, 1}, uint8(3))
	f.Add([]byte("quantiles"), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, splitRaw uint8) {
		// Two bytes per value: mantissa byte and exponent byte (spanning
		// sub-1 to huge, plus exact zeros).
		var vals []float64
		for i := 0; i+1 < len(data); i += 2 {
			v := float64(data[i]) * math.Pow(2, float64(int(data[i+1])-128))
			vals = append(vals, v)
		}
		whole := NewLogQuantile(0.01)
		for _, v := range vals {
			whole.Add(v, 1)
		}
		if whole.Count() != uint64(len(vals)) {
			t.Fatalf("count %d, want %d", whole.Count(), len(vals))
		}
		split := 0
		if len(vals) > 0 {
			split = int(splitRaw) % (len(vals) + 1)
		}
		build := func(part []float64) *LogQuantile {
			l := NewLogQuantile(0.01)
			for _, v := range part {
				l.Add(v, 1)
			}
			return l
		}
		ab := build(vals[:split])
		ab.Merge(build(vals[split:]))
		dw, dm := newDigest(), newDigest()
		whole.AppendHash(dw)
		ab.AppendHash(dm)
		if dw.sum() != dm.sum() {
			t.Fatal("merged state differs from whole-stream ingest")
		}
		if len(vals) == 0 {
			return
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		for _, q := range []float64{0, 0.5, 1} {
			got := whole.Quantile(q)
			if math.IsNaN(got) {
				t.Fatalf("q=%g NaN on non-empty sketch", q)
			}
			// Bucket midpoints stay within alpha of the range ends; zero
			// and negative values are reported as exactly 0.
			if got < 0 || (hi > 0 && got > hi*1.02) {
				t.Fatalf("q=%g estimate %g outside [0, %g]", q, got, hi*1.02)
			}
		}
	})
}

// FuzzSetCodec drives DecodeSet over arbitrary bytes: it must never panic
// or over-allocate, and whenever it accepts a frame, the decoded set must
// re-encode canonically (byte-identical) and fingerprint stably — the
// property the fabric's shard-result path depends on.
func FuzzSetCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SKS1 but not really"))
	f.Add(NewSet(Config{}).EncodeBinary())
	populated := NewSet(Config{TopK: 4, SegPerVD: 2, DurationSec: 4})
	for i := 0; i < 64; i++ {
		rec := fuzzRecord(i)
		populated.Observe(&rec)
	}
	f.Add(populated.EncodeBinary())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSet(data)
		if err != nil {
			return
		}
		wire := s.EncodeBinary()
		s2, err := DecodeSet(wire)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if s2.Fingerprint() != s.Fingerprint() {
			t.Fatal("fingerprint unstable across re-encode")
		}
		if !bytes.Equal(s2.EncodeBinary(), wire) {
			t.Fatal("encoding not canonical")
		}
	})
}

// fuzzRecord synthesizes record i of a small deterministic stream.
func fuzzRecord(i int) trace.Record {
	rec := trace.Record{
		TimeUS:  int64(i%4) * 1_000_000,
		Op:      trace.Op(i % 2),
		Size:    int32(4096 * (1 + i%8)),
		Offset:  int64(i) * 4096,
		VD:      cluster.VDID(i % 5),
		Segment: cluster.SegmentID(i % 9),
	}
	rec.Latency[0] = float32(100 + i)
	return rec
}
