package xrand

import (
	"math/rand"
	"testing"
)

// TestMirrorActive pins the fast path on the toolchain the repo builds
// with: if the stdlib generator ever changes shape, this fails loudly
// instead of silently running the slow fallback forever.
func TestMirrorActive(t *testing.T) {
	if !MirrorActive() {
		t.Fatal("mirror self-check failed: xrand is running on the math/rand fallback")
	}
}

// TestStreamEquivalence drives the pooled generator and a reference
// math/rand generator through the same mixed draw sequence — every method
// the simulation streams use — and requires bit-identical results.
func TestStreamEquivalence(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 1 << 40, -1234567890123, 890423}
	for _, seed := range seeds {
		got := Get(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			switch i % 7 {
			case 0:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 1:
				if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
				}
			case 2:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, g, w)
				}
			case 3:
				if g, w := got.Intn(1000), want.Intn(1000); g != w {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, g, w)
				}
			case 4:
				if g, w := got.ExpFloat64(), want.ExpFloat64(); g != w {
					t.Fatalf("seed %d draw %d: ExpFloat64 %v != %v", seed, i, g, w)
				}
			case 5:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, g, w)
				}
			case 6:
				gp, wp := got.Perm(17), want.Perm(17)
				for j := range gp {
					if gp[j] != wp[j] {
						t.Fatalf("seed %d draw %d: Perm %v != %v", seed, i, gp, wp)
					}
				}
			}
		}
		got.Release()
	}
}

// TestPoolReuse exercises the reseed-after-release path: a recycled
// generator must restart the seed's stream from the beginning.
func TestPoolReuse(t *testing.T) {
	const seed = 777
	a := Get(seed)
	first := make([]uint64, 100)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Release()
	for round := 0; round < 3; round++ {
		b := Get(seed)
		for i := range first {
			if got := b.Uint64(); got != first[i] {
				t.Fatalf("round %d draw %d: %d != first-use %d", round, i, got, first[i])
			}
		}
		b.Release()
	}
}

// TestCacheConsistency checks that a cache-hit reseed and a cold computed
// reseed produce the same stream (the memo stores post-Seed state only).
func TestCacheConsistency(t *testing.T) {
	const seed = 31337
	var cold source
	computeVec(seed, &cold.vec)
	cold.tap, cold.feed = 0, rngLen-rngTap

	warm := Get(seed) // populates the cache on first use in this process
	warm.Release()
	hit := Get(seed) // must restore from cache
	defer hit.Release()
	for i := 0; i < 1500; i++ {
		if g, w := hit.Uint64(), cold.Uint64(); g != w {
			t.Fatalf("draw %d: cache-restored %d != computed %d", i, g, w)
		}
	}
}

func BenchmarkGetRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Get(int64(i % 64))
		_ = r.Uint64()
		r.Release()
	}
}

func BenchmarkStdlibSeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i % 64)))
		_ = r.Uint64()
	}
}
