// Package xrand provides pooled math/rand generators whose streams are
// bit-identical to rand.New(rand.NewSource(seed)) at a fraction of the
// seeding cost. math/rand's lagged-Fibonacci source spends ~10µs per Seed
// filling its 607-word state vector through three scrambling passes; the
// simulation engine derives several fresh streams per virtual disk per run,
// which made reseeding the single largest CPU sink of the hot path.
//
// xrand removes that cost twice over. First, the post-Seed state vector is a
// pure function of the seed, so it is computed once and memoized: later
// acquisitions of the same seed restore the vector with one memcpy. Second,
// the generator objects themselves are pooled, so steady-state acquisition
// allocates nothing.
//
// Determinism is load-bearing here (golden fixtures pin every byte of the
// engine's output), so the package proves its own equivalence at init time:
// it reconstructs the stdlib's additive-constant table from an observed
// output stream and verifies a mirrored source against math/rand on several
// seeds. If the running stdlib ever changes its generator, the self-check
// fails and every Get transparently falls back to plain math/rand — slower,
// never wrong.
package xrand

import (
	"math/rand"
	"sync"
)

// Lagged-Fibonacci shape of math/rand's rngSource.
const (
	rngLen   = 607
	rngTap   = 273
	int32max = 1<<31 - 1
)

// source mirrors math/rand.rngSource: same state, same update rule, so a
// seeded mirror emits the identical Uint64/Int63 stream.
type source struct {
	tap, feed int
	vec       [rngLen]int64
}

func (s *source) Int63() int64 { return int64(s.Uint64() & (1<<63 - 1)) }

func (s *source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Seed implements rand.Source, matching rngSource.Seed bit for bit (it is
// only ever called through the pooled Rand's embedded methods, if at all).
func (s *source) Seed(seed int64) { s.reseed(seed) }

// reseed positions the mirror at the exact post-Seed state of rngSource,
// restoring a memoized vector when one exists.
func (s *source) reseed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	if v := cacheGet(seed); v != nil {
		s.vec = *v
		return
	}
	computeVec(seed, &s.vec)
	cachePut(seed, &s.vec)
}

// seedrand is rngSource's Lehmer scrambler: x' = 48271*x mod (2^31-1).
func seedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// cooked is the stdlib's rngCooked additive table, recovered at init (see
// recoverCooked). Valid only when mirrorOK.
var cooked [rngLen]int64

// computeVec fills vec with the post-Seed state of rngSource for seed,
// replicating Seed's scrambling chain over the recovered cooked table.
func computeVec(seed int64, vec *[rngLen]int64) {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := 0; i < 20; i++ {
		x = seedrand(x)
	}
	for i := 0; i < rngLen; i++ {
		x = seedrand(x)
		u := int64(x) << 40
		x = seedrand(x)
		u ^= int64(x) << 20
		x = seedrand(x)
		u ^= int64(x)
		u ^= cooked[i]
		vec[i] = u
	}
}

// recoverCooked reconstructs rngCooked from one observed output stream.
//
// After Seed, tap=0 and feed=334; the k-th Uint64 (k from 0) reads positions
// tap_k = (606-k) mod 607 and feed_k = (333-k) mod 607, writes feed_k, and
// returns their sum. A tap position is first overwritten 273 steps after it
// is read, so the first 607 outputs determine the whole initial vector:
//
//	k in [273,606]: out_k = init[feed_k] + out_{k-273}  (tap already rewritten)
//	k in [0,272]:   out_k = init[feed_k] + init[tap_k]  (tap still initial)
//
// Solving the first family recovers init at positions 0..60 and 334..606;
// substituting into the second recovers 61..333. Int64 addition wraps, and
// wrapping subtraction inverts it exactly. The cooked table then falls out
// of init via Seed's xor structure. Returns false if the stdlib source does
// not expose Uint64 (it always does today).
func recoverCooked() bool {
	src, ok := rand.NewSource(1).(rand.Source64)
	if !ok {
		return false
	}
	var out [rngLen]int64
	for i := range out {
		out[i] = int64(src.Uint64())
	}
	var init [rngLen]int64
	for k := 273; k <= 606; k++ {
		feed := 333 - k
		if feed < 0 {
			feed += rngLen
		}
		init[feed] = out[k] - out[k-273]
	}
	for k := 0; k <= 272; k++ {
		init[333-k] = out[k] - init[606-k]
	}
	// Replay Seed(1)'s scrambling chain to strip it off init.
	seed := int64(1)
	x := int32(seed)
	for i := 0; i < 20; i++ {
		x = seedrand(x)
	}
	for i := 0; i < rngLen; i++ {
		x = seedrand(x)
		u := int64(x) << 40
		x = seedrand(x)
		u ^= int64(x) << 20
		x = seedrand(x)
		u ^= int64(x)
		cooked[i] = init[i] ^ u
	}
	return true
}

// selfCheck verifies the mirror against math/rand over several seeds and
// enough draws to cross the state-vector wraparound.
func selfCheck() bool {
	for _, seed := range []int64{1, 0, -1, 12345, 1<<62 + 7, -987654321} {
		real64, ok := rand.NewSource(seed).(rand.Source64)
		if !ok {
			return false
		}
		var m source
		m.reseed(seed)
		for i := 0; i < 2*rngLen; i++ {
			if m.Uint64() != real64.Uint64() {
				return false
			}
		}
	}
	return true
}

// mirrorOK reports whether the mirrored source reproduces the running
// stdlib; when false, Get falls back to plain math/rand.
var mirrorOK = recoverCooked() && selfCheck()

// MirrorActive reports whether the fast mirrored path is in use (false
// means every Get transparently constructs a plain math/rand generator).
func MirrorActive() bool { return mirrorOK }

// Seed-vector memo. Hot simulation paths draw from a bounded set of derived
// seeds, so hit rates approach 1 after the first run; the map is reset when
// it would exceed maxCachedSeeds to bound memory on pathological workloads.
const maxCachedSeeds = 8192

var seedCache struct {
	sync.RWMutex
	m map[int64]*[rngLen]int64
}

func cacheGet(seed int64) *[rngLen]int64 {
	seedCache.RLock()
	v := seedCache.m[seed]
	seedCache.RUnlock()
	return v
}

func cachePut(seed int64, vec *[rngLen]int64) {
	cp := *vec
	seedCache.Lock()
	if seedCache.m == nil || len(seedCache.m) >= maxCachedSeeds {
		seedCache.m = make(map[int64]*[rngLen]int64)
	}
	seedCache.m[seed] = &cp
	seedCache.Unlock()
}

// Rand is a pooled generator. It embeds *rand.Rand, so every math/rand
// drawing method is available directly; Release returns it to the pool.
// Rand.Read must not be used (the wrapper's read state is not reset across
// pool reuse); the simulation streams never do.
type Rand struct {
	*rand.Rand
	src *source // nil on the fallback path
}

var pool = sync.Pool{
	New: func() any {
		s := &source{}
		return &Rand{Rand: rand.New(s), src: s}
	},
}

// Get returns a generator seeded with seed, bit-identical to
// rand.New(rand.NewSource(seed)). Call Release when the stream is done.
func Get(seed int64) *Rand {
	if !mirrorOK {
		return &Rand{Rand: rand.New(rand.NewSource(seed))}
	}
	r := pool.Get().(*Rand)
	r.src.reseed(seed)
	return r
}

// Release returns the generator to the pool. The Rand must not be used
// after Release.
func (r *Rand) Release() {
	if r.src != nil {
		pool.Put(r)
	}
}
