package latency

import (
	"math"
	"math/rand"

	"ebslab/internal/cache"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

// GainResult compares an IO population's latency with and without a cache
// at one location (Figure 7b/c): the latency gain at a percentile is
// pX(with)/pX(without), in (0, 1]; smaller is better.
type GainResult struct {
	Location CacheLocation
	Op       trace.Op
	// Gain at the 0th, 50th and 99th percentiles, as the paper reports.
	P0, P50, P99 float64
	// HitRatio of the cache over the replayed accesses of this op.
	HitRatio float64
	Count    int
}

// EvaluateGain replays accesses through a frozen cache at the given
// location and measures per-op latency gains. The same RNG substream is
// used for the with/without latency draws, so gains isolate the cache
// effect rather than sampling noise. hotOffset/hotLen position the frozen
// cache.
func EvaluateGain(m *Model, accesses []cache.Access, hotOffset, hotLen int64, loc CacheLocation, seed int64) []GainResult {
	frozen := cache.NewFrozen(hotOffset, hotLen)
	type bucket struct {
		with, without []float64
		hits, total   int
	}
	buckets := map[trace.Op]*bucket{trace.OpRead: {}, trace.OpWrite: {}}
	rng := rand.New(rand.NewSource(seed))
	for _, a := range accesses {
		op := trace.OpRead
		if a.Write {
			op = trace.OpWrite
		}
		// Whole-IO hit: every covered page must be inside the frozen range.
		first := a.Offset / cache.PageSize
		last := (a.Offset + int64(a.Size) - 1) / cache.PageSize
		hit := true
		for p := first; p <= last; p++ {
			if !frozen.Touch(p, a.Write) {
				hit = false
				break
			}
		}
		b := buckets[op]
		b.total++
		if hit {
			b.hits++
		}
		ioSeed := rng.Int63()
		sub := rand.New(rand.NewSource(ioSeed))
		without := Total(m.Sample(sub, op, a.Size, NoCache, false))
		sub = rand.New(rand.NewSource(ioSeed))
		with := Total(m.Sample(sub, op, a.Size, loc, hit))
		b.without = append(b.without, without)
		b.with = append(b.with, with)
	}
	var out []GainResult
	for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
		b := buckets[op]
		res := GainResult{Location: loc, Op: op, Count: b.total}
		if b.total == 0 {
			res.P0, res.P50, res.P99, res.HitRatio = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		} else {
			res.HitRatio = float64(b.hits) / float64(b.total)
			res.P0 = ratioAt(b.with, b.without, 0)
			res.P50 = ratioAt(b.with, b.without, 0.5)
			res.P99 = ratioAt(b.with, b.without, 0.99)
		}
		out = append(out, res)
	}
	return out
}

func ratioAt(with, without []float64, q float64) float64 {
	w := stats.Quantile(with, q)
	wo := stats.Quantile(without, q)
	if wo == 0 || math.IsNaN(w) || math.IsNaN(wo) {
		return math.NaN()
	}
	return w / wo
}

// EvaluateHybridGain evaluates the hybrid deployment §7.3.2 proposes as the
// cost-benefit compromise: a small CN-cache holds the hottest cnFrac of the
// hot range (fast path, skips the whole storage cluster) and a BS-cache
// backs the full hot range (catches what the CN-cache cannot hold). An IO
// is served at the nearest level that covers it.
func EvaluateHybridGain(m *Model, accesses []cache.Access, hotOffset, hotLen int64, cnFrac float64, seed int64) []GainResult {
	if cnFrac <= 0 {
		cnFrac = 0.25
	}
	if cnFrac > 1 {
		cnFrac = 1
	}
	cnLen := int64(float64(hotLen) * cnFrac)
	if cnLen < cache.PageSize {
		cnLen = cache.PageSize
	}
	cn := cache.NewFrozen(hotOffset, cnLen)
	bs := cache.NewFrozen(hotOffset, hotLen)

	type bucket struct {
		with, without []float64
		hits, total   int
	}
	buckets := map[trace.Op]*bucket{trace.OpRead: {}, trace.OpWrite: {}}
	rng := rand.New(rand.NewSource(seed))
	for _, a := range accesses {
		op := trace.OpRead
		if a.Write {
			op = trace.OpWrite
		}
		first := a.Offset / cache.PageSize
		last := (a.Offset + int64(a.Size) - 1) / cache.PageSize
		cnHit, bsHit := true, true
		for p := first; p <= last; p++ {
			if !cn.Touch(p, a.Write) {
				cnHit = false
			}
			if !bs.Touch(p, a.Write) {
				bsHit = false
				break
			}
		}
		loc, hit := NoCache, false
		switch {
		case cnHit:
			loc, hit = CNCache, true
		case bsHit:
			loc, hit = BSCache, true
		}
		b := buckets[op]
		b.total++
		if hit {
			b.hits++
		}
		ioSeed := rng.Int63()
		sub := rand.New(rand.NewSource(ioSeed))
		without := Total(m.Sample(sub, op, a.Size, NoCache, false))
		sub = rand.New(rand.NewSource(ioSeed))
		with := Total(m.Sample(sub, op, a.Size, loc, hit))
		b.without = append(b.without, without)
		b.with = append(b.with, with)
	}
	var out []GainResult
	for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
		b := buckets[op]
		res := GainResult{Location: HybridCache, Op: op, Count: b.total}
		if b.total == 0 {
			res.P0, res.P50, res.P99, res.HitRatio = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		} else {
			res.HitRatio = float64(b.hits) / float64(b.total)
			res.P0 = ratioAt(b.with, b.without, 0)
			res.P50 = ratioAt(b.with, b.without, 0.5)
			res.P99 = ratioAt(b.with, b.without, 0.99)
		}
		out = append(out, res)
	}
	return out
}

// CountCacheablePerNode implements Fig 7(d)'s provisioning metric: given
// each VD's hosting node (compute node for CN-cache, BlockServer of its
// hottest segment for BS-cache) and whether the VD is cacheable (hottest
// block access rate above the threshold), it returns the number of
// cacheable VDs per node. A wider spread means worse space utilization for
// uniformly-sized caches.
func CountCacheablePerNode(nodeOf []int, cacheable []bool, nNodes int) []int {
	counts := make([]int, nNodes)
	for i, n := range nodeOf {
		if n < 0 || n >= nNodes || !cacheable[i] {
			continue
		}
		counts[n]++
	}
	return counts
}
