package latency

import (
	"math"
	"math/rand"

	"ebslab/internal/trace"
)

// tableStage holds one stage's parameters pre-folded into the exact
// constants the sampling loop consumes, so the per-IO path performs no
// derived arithmetic:
//
//   - perByteUS = PerMiBUS / 2^20: division by a power of two is exact, so
//     perByteUS*size rounds identically to PerMiBUS*(size/2^20);
//   - halfSigmaSq = sigma^2/2, the lognormal mean correction;
//   - invTailAlpha = 1/TailAlpha, the Pareto inverse-CDF exponent.
//
// Each is the same float64 the uncompiled Sample computes per IO, so the
// compiled path is bit-identical.
type tableStage struct {
	baseUS       float64
	perByteUS    float64
	sigma        float64
	halfSigmaSq  float64
	tailProb     float64
	tailScaleUS  float64
	invTailAlpha float64
}

// Table is a latency model compiled for the uncached hot path: per-(op,
// stage) constants laid out for branch-light sequential sampling. Compile
// once per run; SampleInto draws are bit-identical to
// Model.Sample(rng, op, size, NoCache, false).
type Table struct {
	stages [2][trace.NumStages]tableStage // [op][stage]
}

// Compile folds the model's per-stage parameters into a sampling table.
func (m *Model) Compile() *Table {
	t := &Table{}
	for op, params := range [2]*[trace.NumStages]StageParams{&m.Read, &m.Write} {
		for s := 0; s < int(trace.NumStages); s++ {
			p := params[s]
			t.stages[op][s] = tableStage{
				baseUS:       p.BaseUS,
				perByteUS:    p.PerMiBUS / float64(1<<20),
				sigma:        p.JitterSigma,
				halfSigmaSq:  p.JitterSigma * p.JitterSigma / 2,
				tailProb:     p.TailProb,
				tailScaleUS:  p.TailScaleUS,
				invTailAlpha: 1 / p.TailAlpha,
			}
		}
	}
	return t
}

// SampleInto draws the five per-stage latencies of one uncached IO into
// out, consuming the same rng stream — and producing the same bits — as
// Model.Sample(rng, op, size, NoCache, false). Cache studies keep using
// Model.Sample; the simulation hot path uses this.
func (t *Table) SampleInto(rng *rand.Rand, op trace.Op, size int32, out *[trace.NumStages]float32) {
	ps := &t.stages[0]
	if op == trace.OpWrite {
		ps = &t.stages[1]
	}
	fsize := float64(size)
	for s := 0; s < int(trace.NumStages); s++ {
		p := &ps[s]
		v := p.baseUS + p.perByteUS*fsize
		v *= math.Exp(p.sigma*rng.NormFloat64() - p.halfSigmaSq)
		if p.tailProb > 0 && rng.Float64() < p.tailProb {
			u := rng.Float64()
			if u >= 1 {
				u = math.Nextafter(1, 0)
			}
			v += p.tailScaleUS / math.Pow(1-u, p.invTailAlpha)
		}
		out[s] = float32(v)
	}
}
