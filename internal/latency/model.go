// Package latency models per-IO latency across the five EBS stack
// components the trace dataset records (§2.3): compute node, frontend
// network, BlockServer, backend network, ChunkServer. The model combines a
// per-stage base cost, a size-proportional transfer term, lognormal jitter,
// and a Pareto long tail — enough structure to study where caching helps
// (Figure 7b/c) without pretending to reproduce the authors' testbed
// numbers.
package latency

import (
	"math"
	"math/rand"

	"ebslab/internal/trace"
)

// StageParams shapes one stage's latency in microseconds.
type StageParams struct {
	BaseUS      float64 // fixed cost
	PerMiBUS    float64 // transfer cost per MiB
	JitterSigma float64 // lognormal sigma on the subtotal
	TailProb    float64 // probability of a long-tail event
	TailScaleUS float64 // Pareto scale of the tail addition
	TailAlpha   float64 // Pareto shape of the tail addition
}

// Model holds per-stage parameters, split by direction where it matters.
type Model struct {
	Read  [trace.NumStages]StageParams
	Write [trace.NumStages]StageParams
}

// Default returns a model calibrated to the common shape of disaggregated
// block stores: network hops tens of microseconds, ChunkServer dominating
// (SSD access plus replication on writes), long tails mostly in the storage
// backend.
func Default() *Model {
	m := &Model{}
	net := StageParams{BaseUS: 25, PerMiBUS: 90, JitterSigma: 0.25, TailProb: 0.005, TailScaleUS: 150, TailAlpha: 1.6}
	m.Read = [trace.NumStages]StageParams{
		trace.StageComputeNode: {BaseUS: 12, PerMiBUS: 25, JitterSigma: 0.2, TailProb: 0.002, TailScaleUS: 80, TailAlpha: 1.8},
		trace.StageFrontendNet: net,
		trace.StageBlockServer: {BaseUS: 18, PerMiBUS: 35, JitterSigma: 0.25, TailProb: 0.004, TailScaleUS: 120, TailAlpha: 1.7},
		trace.StageBackendNet:  net,
		trace.StageChunkServer: {BaseUS: 85, PerMiBUS: 220, JitterSigma: 0.35, TailProb: 0.004, TailScaleUS: 400, TailAlpha: 1.4},
	}
	m.Write = m.Read
	// Writes persist with redundancy: the ChunkServer stage costs more and
	// tails harder. Tail events are kept rarer than 1%, so the p99 sits in
	// the lognormal body — caching the hot block then barely moves the p99,
	// matching §7.3.2's observation that neither cache fixes tail latency.
	m.Write[trace.StageChunkServer] = StageParams{
		BaseUS: 120, PerMiBUS: 300, JitterSigma: 0.4, TailProb: 0.006, TailScaleUS: 600, TailAlpha: 1.3,
	}
	return m
}

// CacheLocation is where a persistent cache is deployed (§7.3.2).
type CacheLocation uint8

// Cache deployment locations.
const (
	// NoCache disables caching.
	NoCache CacheLocation = iota
	// CNCache places the persistent cache on the compute node: hits skip
	// the storage cluster entirely.
	CNCache
	// BSCache places it on the BlockServer: hits skip the backend network
	// and the ChunkServer.
	BSCache
	// HybridCache is §7.3.2's compromise: a small CN-cache in front of a
	// larger BS-cache. Only used as a GainResult label; per-IO sampling
	// uses the level that actually served the IO.
	HybridCache
)

func (l CacheLocation) String() string {
	switch l {
	case NoCache:
		return "none"
	case CNCache:
		return "cn-cache"
	case BSCache:
		return "bs-cache"
	case HybridCache:
		return "hybrid"
	}
	return "unknown"
}

// cacheAccessUS is the cost of hitting the persistent cache medium (flash or
// PMEM) itself.
const cacheAccessUS = 15

// Sample draws the five per-stage latencies for one IO. cacheHit describes
// whether the IO hit a cache at the given location; stages the hit skips
// report zero. Writes that hit still pay the cache-medium persistence cost
// in the stage hosting the cache (the paper requires persisted-with-
// redundancy semantics, so the cache must be a persistent cache).
func (m *Model) Sample(rng *rand.Rand, op trace.Op, size int32, loc CacheLocation, cacheHit bool) [trace.NumStages]float32 {
	params := &m.Read
	if op == trace.OpWrite {
		params = &m.Write
	}
	var out [trace.NumStages]float32
	mib := float64(size) / float64(1<<20)
	for s := trace.Stage(0); s < trace.NumStages; s++ {
		if cacheHit && skipsStage(loc, s) {
			continue
		}
		p := params[s]
		v := p.BaseUS + p.PerMiBUS*mib
		v *= math.Exp(p.JitterSigma*rng.NormFloat64() - p.JitterSigma*p.JitterSigma/2)
		if p.TailProb > 0 && rng.Float64() < p.TailProb {
			u := rng.Float64()
			if u >= 1 {
				u = math.Nextafter(1, 0)
			}
			v += p.TailScaleUS / math.Pow(1-u, 1/p.TailAlpha)
		}
		out[s] = float32(v)
	}
	if cacheHit {
		switch loc {
		case CNCache:
			out[trace.StageComputeNode] += cacheAccessUS
		case BSCache:
			out[trace.StageBlockServer] += cacheAccessUS
		}
	}
	return out
}

// skipsStage reports whether a hit at loc skips stage s.
func skipsStage(loc CacheLocation, s trace.Stage) bool {
	switch loc {
	case CNCache:
		return s != trace.StageComputeNode
	case BSCache:
		return s == trace.StageBackendNet || s == trace.StageChunkServer
	}
	return false
}

// Total sums a stage vector.
func Total(stages [trace.NumStages]float32) float64 {
	var t float64
	for _, v := range stages {
		t += float64(v)
	}
	return t
}
