package latency

import (
	"math/rand"
	"testing"

	"ebslab/internal/trace"
)

// TestTableBitIdentical drives Model.Sample and Table.SampleInto with twin
// rng streams over the default model and randomized models, requiring
// bit-identical stage vectors (the engine's golden fixtures depend on it).
func TestTableBitIdentical(t *testing.T) {
	models := []*Model{Default()}
	mrng := rand.New(rand.NewSource(99))
	for k := 0; k < 8; k++ {
		m := &Model{}
		for s := 0; s < int(trace.NumStages); s++ {
			randomize := func() StageParams {
				p := StageParams{
					BaseUS:      mrng.Float64() * 200,
					PerMiBUS:    mrng.Float64() * 500,
					JitterSigma: mrng.Float64() * 0.6,
					TailScaleUS: mrng.Float64() * 800,
					TailAlpha:   0.8 + mrng.Float64()*2,
				}
				if mrng.Intn(3) > 0 { // include TailProb==0 (no tail draw at all)
					p.TailProb = mrng.Float64() * 0.02
				}
				return p
			}
			m.Read[s] = randomize()
			m.Write[s] = randomize()
		}
		models = append(models, m)
	}

	for mi, m := range models {
		tab := m.Compile()
		seed := int64(1000 + mi)
		a := rand.New(rand.NewSource(seed))
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 20000; i++ {
			op := trace.Op(i % 2)
			size := int32((i*4096 + 4096) % (4 << 20))
			want := m.Sample(a, op, size, NoCache, false)
			var got [trace.NumStages]float32
			tab.SampleInto(b, op, size, &got)
			if got != want {
				t.Fatalf("model %d draw %d (op %v size %d): %v != %v", mi, i, op, size, got, want)
			}
		}
		// The streams must stay in lockstep, too.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("model %d: rng streams diverged", mi)
		}
	}
}
