package latency

import (
	"math"
	"math/rand"
	"testing"

	"ebslab/internal/cache"
	"ebslab/internal/stats"
	"ebslab/internal/trace"
)

func TestSampleAllStagesPositive(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(1))
	for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
		s := m.Sample(rng, op, 4096, NoCache, false)
		for st, v := range s {
			if v <= 0 {
				t.Fatalf("%v stage %d latency %v", op, st, v)
			}
		}
	}
}

func TestWritesSlowerAtChunkServer(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(2))
	var readCS, writeCS float64
	const n = 3000
	for i := 0; i < n; i++ {
		readCS += float64(m.Sample(rng, trace.OpRead, 16<<10, NoCache, false)[trace.StageChunkServer])
		writeCS += float64(m.Sample(rng, trace.OpWrite, 16<<10, NoCache, false)[trace.StageChunkServer])
	}
	if writeCS <= readCS {
		t.Fatalf("mean CS write %v not above read %v", writeCS/n, readCS/n)
	}
}

func TestLargerIOsSlower(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(3))
	var small, large float64
	const n = 2000
	for i := 0; i < n; i++ {
		small += Total(m.Sample(rng, trace.OpRead, 4<<10, NoCache, false))
		large += Total(m.Sample(rng, trace.OpRead, 1<<20, NoCache, false))
	}
	if large <= small {
		t.Fatalf("1MiB mean %v not above 4KiB mean %v", large/n, small/n)
	}
}

func TestCNCacheHitSkipsStorageStages(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(4))
	s := m.Sample(rng, trace.OpRead, 4096, CNCache, true)
	for _, st := range []trace.Stage{trace.StageFrontendNet, trace.StageBlockServer, trace.StageBackendNet, trace.StageChunkServer} {
		if s[st] != 0 {
			t.Fatalf("CN-cache hit paid stage %v: %v", st, s[st])
		}
	}
	if s[trace.StageComputeNode] <= 0 {
		t.Fatal("CN stage should include cache access cost")
	}
}

func TestBSCacheHitSkipsBackendOnly(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(5))
	s := m.Sample(rng, trace.OpRead, 4096, BSCache, true)
	if s[trace.StageBackendNet] != 0 || s[trace.StageChunkServer] != 0 {
		t.Fatalf("BS-cache hit paid backend stages: %v", s)
	}
	if s[trace.StageFrontendNet] == 0 || s[trace.StageComputeNode] == 0 || s[trace.StageBlockServer] == 0 {
		t.Fatalf("BS-cache hit should still traverse the front half: %v", s)
	}
}

func TestMissPaysFullPath(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(6))
	s := m.Sample(rng, trace.OpRead, 4096, CNCache, false)
	for st, v := range s {
		if v <= 0 {
			t.Fatalf("miss skipped stage %d", st)
		}
	}
}

func TestCacheLocationString(t *testing.T) {
	if NoCache.String() != "none" || CNCache.String() != "cn-cache" || BSCache.String() != "bs-cache" {
		t.Fatal("CacheLocation strings wrong")
	}
	if CacheLocation(9).String() != "unknown" {
		t.Fatal("unknown location string wrong")
	}
}

// hotspotAccesses builds a write-dominant hotspot population shaped like the
// paper's hottest blocks: ~25% of IOs in the 64 MiB hot range (mostly
// writes), the rest spread over 4 GiB.
func hotspotAccesses(n int, seed int64) []cache.Access {
	rng := rand.New(rand.NewSource(seed))
	hotStart := int64(256 << 20)
	out := make([]cache.Access, 0, n)
	for i := 0; i < n; i++ {
		a := cache.Access{Size: 16 << 10, TimeUS: int64(i) * 100}
		if rng.Float64() < 0.25 {
			a.Offset = hotStart + rng.Int63n((64<<20)/cache.PageSize-4)*cache.PageSize
			a.Write = rng.Float64() < 0.9
		} else {
			a.Offset = rng.Int63n((4<<30)/cache.PageSize-4) * cache.PageSize
			a.Write = rng.Float64() < 0.5
		}
		out = append(out, a)
	}
	return out
}

func TestEvaluateGainCNBeatsBSForWrites(t *testing.T) {
	m := Default()
	accesses := hotspotAccesses(4000, 7)
	hotStart := int64(256 << 20)
	cn := EvaluateGain(m, accesses, hotStart, 64<<20, CNCache, 1)
	bs := EvaluateGain(m, accesses, hotStart, 64<<20, BSCache, 1)
	var cnW, bsW GainResult
	for _, g := range cn {
		if g.Op == trace.OpWrite {
			cnW = g
		}
	}
	for _, g := range bs {
		if g.Op == trace.OpWrite {
			bsW = g
		}
	}
	if !(cnW.P50 < bsW.P50) {
		t.Fatalf("CN-cache p50 write gain %v not better than BS-cache %v", cnW.P50, bsW.P50)
	}
	if !(cnW.P50 < 1) {
		t.Fatalf("CN-cache p50 write gain %v should beat no-cache", cnW.P50)
	}
	if cnW.HitRatio <= 0.2 {
		t.Fatalf("hit ratio %v too low for a 25%% hotspot of 90%% writes", cnW.HitRatio)
	}
	// p99 is dominated by cold long-tail IOs; caching the hotspot should
	// barely move it (the paper's observation).
	if cnW.P99 < 0.5 {
		t.Fatalf("p99 gain %v implausibly strong", cnW.P99)
	}
}

func TestEvaluateGainEmpty(t *testing.T) {
	m := Default()
	res := EvaluateGain(m, nil, 0, 64<<20, CNCache, 1)
	for _, g := range res {
		if !math.IsNaN(g.P50) || g.Count != 0 {
			t.Fatalf("empty gain = %+v", g)
		}
	}
}

func TestEvaluateHybridGain(t *testing.T) {
	m := Default()
	accesses := hotspotAccesses(4000, 13)
	hotStart := int64(256 << 20)
	hybrid := EvaluateHybridGain(m, accesses, hotStart, 64<<20, 0.25, 1)
	cn := EvaluateGain(m, accesses, hotStart, 64<<20, CNCache, 1)
	bs := EvaluateGain(m, accesses, hotStart, 64<<20, BSCache, 1)

	pick := func(rs []GainResult, op trace.Op) GainResult {
		for _, g := range rs {
			if g.Op == op {
				return g
			}
		}
		t.Fatal("op missing")
		return GainResult{}
	}
	hw, cw, bw := pick(hybrid, trace.OpWrite), pick(cn, trace.OpWrite), pick(bs, trace.OpWrite)
	if hw.Location != HybridCache || hw.Location.String() != "hybrid" {
		t.Fatalf("hybrid label wrong: %v", hw.Location)
	}
	// The hybrid's hit ratio matches the full-coverage caches (BS backs the
	// whole hot range), and its p50 gain sits between CN-only and BS-only.
	if math.Abs(hw.HitRatio-bw.HitRatio) > 0.01 {
		t.Errorf("hybrid hit ratio %v differs from BS coverage %v", hw.HitRatio, bw.HitRatio)
	}
	if !(hw.P50 <= bw.P50+0.02) {
		t.Errorf("hybrid p50 %v worse than BS-only %v", hw.P50, bw.P50)
	}
	if !(hw.P50 >= cw.P50-0.02) {
		t.Errorf("hybrid p50 %v better than CN-only %v (impossible at quarter size)", hw.P50, cw.P50)
	}
	// Degenerate cnFrac handling.
	deg := EvaluateHybridGain(m, accesses, hotStart, 64<<20, -1, 1)
	if len(deg) != 2 {
		t.Fatal("degenerate cnFrac run broken")
	}
}

func TestCountCacheablePerNode(t *testing.T) {
	nodeOf := []int{0, 0, 1, 2, 2, 2, -1}
	cacheable := []bool{true, false, true, true, true, false, true}
	counts := CountCacheablePerNode(nodeOf, cacheable, 3)
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// A flat assignment has lower spread than a concentrated one.
	flat := CountCacheablePerNode([]int{0, 1, 2}, []bool{true, true, true}, 3)
	conc := CountCacheablePerNode([]int{0, 0, 0}, []bool{true, true, true}, 3)
	fs := make([]float64, 3)
	cs := make([]float64, 3)
	for i := 0; i < 3; i++ {
		fs[i], cs[i] = float64(flat[i]), float64(conc[i])
	}
	if stats.StdDev(fs) >= stats.StdDev(cs) {
		t.Fatal("spread ordering wrong")
	}
}

func TestTotal(t *testing.T) {
	var s [trace.NumStages]float32
	s[0], s[4] = 1.5, 2.5
	if Total(s) != 4 {
		t.Fatalf("Total = %v", Total(s))
	}
}
