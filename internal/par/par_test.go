package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 200
		var seen [n]atomic.Int32
		err := ForEach(context.Background(), n, workers, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	wantErr := func(i int) error { return fmt.Errorf("item %d", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 100, workers, func(i int) error {
			if i == 7 || i == 23 {
				return wantErr(i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7" {
			t.Fatalf("workers=%d: got %v, want item 7", workers, err)
		}
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 1000, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() > 8 {
		t.Fatalf("ran %d items after cancellation", ran.Load())
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("no") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}
