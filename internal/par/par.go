// Package par provides the bounded worker pool shared by the parallel
// simulation engine (internal/ebs) and the study's fleet-wide aggregations
// (internal/core). Work items are indexed tasks; the pool hands indices to
// workers dynamically, so callers must make per-item work independent of
// which worker runs it (and merge per-item results in canonical index order
// when order matters).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values > 0 are returned as-is,
// 0 means "one per available CPU" (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across up to workers goroutines
// (clamped to n; 0 means GOMAXPROCS). It returns the error of the
// lowest-indexed failing item, or ctx.Err() if the context is cancelled
// first. On error or cancellation, remaining items are skipped but items
// already in flight run to completion before ForEach returns.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachWorker(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn additionally receives
// the index of the pool goroutine running the item, in [0, effective worker
// count). Exactly one goroutine owns each worker index for the pool's whole
// lifetime, so callers can keep lock-free per-worker state (shard tracers,
// scratch buffers) in a slice indexed by it.
func ForEachWorker(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Fast path: no goroutines, same cancellation semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstE  error
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if i < firstI {
						firstI, firstE = i, err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	return ctx.Err()
}
