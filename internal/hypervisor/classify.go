package hypervisor

import (
	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// NodeType is the skewness taxonomy of §4.2.
type NodeType uint8

// Node skewness categories.
const (
	// TypeIdle (Type I): fewer QPs than worker threads, so at least one WT
	// is structurally idle.
	TypeIdle NodeType = iota + 1
	// TypeSingleQP (Type II): the node's hottest VM funnels everything
	// through a single QP, so one WT takes all of its traffic.
	TypeSingleQP
	// TypeMultiQP (Type III): the hottest VM has multiple QPs, but traffic
	// still concentrates on a few of them.
	TypeMultiQP
)

func (t NodeType) String() string {
	switch t {
	case TypeIdle:
		return "TypeI-IdleWT"
	case TypeSingleQP:
		return "TypeII-SingleQP"
	case TypeMultiQP:
		return "TypeIII-MultiQP"
	}
	return "TypeUnknown"
}

// Classify assigns the node to one of the three skewness categories, using
// total per-QP traffic over the window (aligned with Topology.NodeQPs
// order). The second return is the hottest VM, or -1 when the node moved no
// traffic (such nodes are reported as Type I: everything idles).
func Classify(top *cluster.Topology, node cluster.NodeID, qpTraffic []float64) (NodeType, cluster.VMID) {
	qps := top.NodeQPs(node)
	if len(qps) < top.Nodes[node].WorkerNum {
		return TypeIdle, hottestVM(top, node, qps, qpTraffic)
	}
	hot := hottestVM(top, node, qps, qpTraffic)
	if hot < 0 {
		return TypeIdle, -1
	}
	vm := &top.VMs[hot]
	var hotQPs int
	for _, vd := range vm.VDs {
		hotQPs += len(top.VDs[vd].QPs)
	}
	if len(vm.VDs) == 1 && hotQPs == 1 {
		return TypeSingleQP, hot
	}
	if hotQPs == 1 {
		// A single QP across multiple VDs cannot happen (every VD has at
		// least one QP), but guard anyway.
		return TypeSingleQP, hot
	}
	return TypeMultiQP, hot
}

// hottestVM returns the VM with the largest summed QP traffic, or -1 when
// all traffic is zero.
func hottestVM(top *cluster.Topology, node cluster.NodeID, qps []cluster.QPID, qpTraffic []float64) cluster.VMID {
	perVM := make(map[cluster.VMID]float64)
	for i, qp := range qps {
		perVM[top.VMOfQP(qp)] += qpTraffic[i]
	}
	best := cluster.VMID(-1)
	var bestV float64
	for vm, v := range perVM {
		if v > bestV {
			best, bestV = vm, v
		}
	}
	return best
}

// ThreeTierCoV holds the per-node hierarchy skewness measurements of Fig
// 2(b): the CoV of QP traffic within the hottest VM, of VD traffic within
// the hottest VM, and of QP traffic within each VD (reported for the
// hottest VD).
type ThreeTierCoV struct {
	VM2QP float64 // CoV of QP traffic inside the hottest VM
	VM2VD float64 // CoV of VD traffic inside the hottest VM
	VD2QP float64 // CoV of QP traffic inside the hottest VD of the hottest VM
}

// MeasureThreeTier computes Fig 2(b)'s three CoVs for one node. Any level
// with fewer than two children yields NaN, matching how the paper reports
// only multi-child distributions.
func MeasureThreeTier(top *cluster.Topology, node cluster.NodeID, qpTraffic []float64) ThreeTierCoV {
	qps := top.NodeQPs(node)
	byQP := make(map[cluster.QPID]float64, len(qps))
	for i, qp := range qps {
		byQP[qp] = qpTraffic[i]
	}
	hot := hottestVM(top, node, qps, qpTraffic)
	var out ThreeTierCoV
	out.VM2QP, out.VM2VD, out.VD2QP = nan(), nan(), nan()
	if hot < 0 {
		return out
	}
	vm := &top.VMs[hot]

	var vmQPs []float64
	vdTraffic := make([]float64, len(vm.VDs))
	hotVD, hotVDVal := -1, -1.0
	for i, vd := range vm.VDs {
		for _, qp := range top.VDs[vd].QPs {
			vmQPs = append(vmQPs, byQP[qp])
			vdTraffic[i] += byQP[qp]
		}
		if vdTraffic[i] > hotVDVal {
			hotVD, hotVDVal = i, vdTraffic[i]
		}
	}
	out.VM2QP = normCoVOrNaN(vmQPs)
	out.VM2VD = normCoVOrNaN(vdTraffic)
	if hotVD >= 0 {
		var qpVals []float64
		for _, qp := range top.VDs[vm.VDs[hotVD]].QPs {
			qpVals = append(qpVals, byQP[qp])
		}
		out.VD2QP = normCoVOrNaN(qpVals)
	}
	return out
}

func normCoVOrNaN(xs []float64) float64 {
	if len(xs) < 2 {
		return nan()
	}
	// stats.NormCoV already yields NaN for zero-mean input.
	return stats.NormCoV(xs)
}
