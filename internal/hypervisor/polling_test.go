package hypervisor

import (
	"math"
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
)

// pollTopology: one node, 2 WTs, 4 single-QP VDs (QPs 0..3). Round-robin
// puts QPs {0,2} on WT0 and {1,3} on WT1.
func pollTopology(t *testing.T) *cluster.Topology {
	t.Helper()
	top := &cluster.Topology{DCs: 1, Users: 1}
	top.Nodes = []cluster.ComputeNode{{ID: 0, WorkerNum: 2, VMs: []cluster.VMID{0}}}
	vm := cluster.VM{ID: 0, User: 0, Node: 0}
	for d := 0; d < 4; d++ {
		vd := cluster.VD{
			ID: cluster.VDID(d), VM: 0, Capacity: 32 << 30,
			QPs:      []cluster.QPID{cluster.QPID(d)},
			Segments: []cluster.SegmentID{cluster.SegmentID(d)},
		}
		top.VDs = append(top.VDs, vd)
		top.QPs = append(top.QPs, cluster.QP{ID: cluster.QPID(d), VD: cluster.VDID(d)})
		top.Segments = append(top.Segments, cluster.Segment{ID: cluster.SegmentID(d), VD: cluster.VDID(d)})
		vm.VDs = append(vm.VDs, cluster.VDID(d))
	}
	top.VMs = []cluster.VM{vm}
	if err := top.Validate(); err != nil {
		t.Fatalf("topology: %v", err)
	}
	return top
}

func TestServiceModel(t *testing.T) {
	if ServiceModel(4096) <= ServiceModel(0) {
		t.Fatal("service time not increasing in size")
	}
}

func TestPollingServesEverything(t *testing.T) {
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	var ios []PollIO
	for i := 0; i < 100; i++ {
		ios = append(ios, PollIO{QP: cluster.QPID(i % 4), ArriveUS: int64(i * 10), ServiceUS: 5})
	}
	for _, mode := range []HostingMode{SingleWTPolling, SharedQueueFIFO} {
		res := SimulatePolling(b, ios, mode)
		if res.IOs != 100 {
			t.Fatalf("%v served %d of 100", mode, res.IOs)
		}
		var busy int64
		for _, v := range res.WTBusyUS {
			busy += v
		}
		if busy != 500 {
			t.Fatalf("%v total busy %d, want 500", mode, busy)
		}
	}
}

func TestPollingFairnessUnderHotQP(t *testing.T) {
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	// QP0 floods; QP2 (same WT under round-robin) trickles. Under polling,
	// QP2 is served every other visit, so its waits stay bounded; under a
	// shared FIFO its IOs queue behind QP0's backlog.
	var ios []PollIO
	for i := 0; i < 400; i++ {
		ios = append(ios, PollIO{QP: 0, ArriveUS: 0, ServiceUS: 10}) // burst at t=0
	}
	for i := 0; i < 10; i++ {
		ios = append(ios, PollIO{QP: 2, ArriveUS: int64(i * 100), ServiceUS: 10})
	}
	poll := SimulatePolling(b, ios, SingleWTPolling)
	fifo := SimulatePolling(b, ios, SharedQueueFIFO)

	// QP2's mean wait under polling must be far below its wait under FIFO.
	if !(poll.MeanWaitUS[2] < fifo.MeanWaitUS[2]/5) {
		t.Fatalf("polling QP2 wait %v not well below FIFO %v", poll.MeanWaitUS[2], fifo.MeanWaitUS[2])
	}
	// Polling insulates the light QP (isolation << 1); FIFO makes it
	// inherit the hog's backlog (isolation ~ 1).
	if !(poll.Isolation < fifo.Isolation*0.5) {
		t.Fatalf("polling isolation %v not well below FIFO %v", poll.Isolation, fifo.Isolation)
	}
	// FIFO scores "fairer" on equality-of-waiting — everyone suffers alike
	// — which is exactly why Jain over waits is the wrong lens here.
	if !(fifo.Fairness > poll.Fairness) {
		t.Logf("note: fifo fairness %v vs poll %v (informational)", fifo.Fairness, poll.Fairness)
	}
}

func TestSharedQueueBalancesBetter(t *testing.T) {
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	// All traffic on QP0: single-WT hosting leaves WT1 idle; the shared
	// queue spreads service across both threads (the §4.4 motivation).
	var ios []PollIO
	for i := 0; i < 200; i++ {
		ios = append(ios, PollIO{QP: 0, ArriveUS: 0, ServiceUS: 10})
	}
	poll := SimulatePolling(b, ios, SingleWTPolling)
	fifo := SimulatePolling(b, ios, SharedQueueFIFO)
	if poll.WTBusyUS[1] != 0 {
		t.Fatalf("single-WT hosting used WT1: %v", poll.WTBusyUS)
	}
	if fifo.WTBusyUS[0] == 0 || fifo.WTBusyUS[1] == 0 {
		t.Fatalf("shared queue left a thread idle: %v", fifo.WTBusyUS)
	}
	// Balanced service halves the hot QP's mean wait.
	if !(fifo.MeanWaitUS[0] < poll.MeanWaitUS[0]) {
		t.Fatalf("FIFO wait %v not below polling %v for the hot QP", fifo.MeanWaitUS[0], poll.MeanWaitUS[0])
	}
}

func TestPollingIdleQPsAreNaN(t *testing.T) {
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	ios := []PollIO{{QP: 0, ArriveUS: 5, ServiceUS: 3}}
	res := SimulatePolling(b, ios, SingleWTPolling)
	if math.IsNaN(res.MeanWaitUS[0]) {
		t.Fatal("active QP reported NaN")
	}
	for _, i := range []int{1, 2, 3} {
		if !math.IsNaN(res.MeanWaitUS[i]) {
			t.Fatalf("idle QP %d has wait %v", i, res.MeanWaitUS[i])
		}
	}
	// A lone IO arriving later than t=0 must not wait.
	if res.MeanWaitUS[0] != 0 {
		t.Fatalf("lone IO waited %v", res.MeanWaitUS[0])
	}
}

func TestPollingIgnoresForeignQPs(t *testing.T) {
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	ios := []PollIO{{QP: 99, ArriveUS: 0, ServiceUS: 3}}
	res := SimulatePolling(b, ios, SingleWTPolling)
	if res.IOs != 0 {
		t.Fatal("foreign QP IO was served")
	}
}

func TestJainIndex(t *testing.T) {
	if got := jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal waits fairness = %v", got)
	}
	if got := jain([]float64{100, 0, 0, 0}); got > 0.3 {
		t.Fatalf("single-sufferer fairness = %v, want ~0.25", got)
	}
	if !math.IsNaN(jain(nil)) {
		t.Fatal("empty fairness should be NaN")
	}
}

func TestHostingModeString(t *testing.T) {
	if SingleWTPolling.String() == "" || SharedQueueFIFO.String() == "" {
		t.Fatal("empty mode strings")
	}
}

func TestPollingDeterministic(t *testing.T) {
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	rng := rand.New(rand.NewSource(4))
	var ios []PollIO
	for i := 0; i < 300; i++ {
		ios = append(ios, PollIO{
			QP: cluster.QPID(rng.Intn(4)), ArriveUS: int64(rng.Intn(5000)), ServiceUS: int64(1 + rng.Intn(20)),
		})
	}
	a := SimulatePolling(b, ios, SingleWTPolling)
	c := SimulatePolling(b, ios, SingleWTPolling)
	for i := range a.MeanWaitUS {
		aw, cw := a.MeanWaitUS[i], c.MeanWaitUS[i]
		if aw != cw && !(math.IsNaN(aw) && math.IsNaN(cw)) {
			t.Fatal("polling simulation not deterministic")
		}
	}
}

func TestPollingConservation(t *testing.T) {
	// Property-ish check: served IOs == offered IOs on valid QPs, and busy
	// time equals summed service time, for random workloads.
	top := pollTopology(t)
	b := RoundRobin(top, 0)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ios []PollIO
		var service int64
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s := int64(1 + rng.Intn(30))
			service += s
			ios = append(ios, PollIO{QP: cluster.QPID(rng.Intn(4)), ArriveUS: int64(rng.Intn(2000)), ServiceUS: s})
		}
		for _, mode := range []HostingMode{SingleWTPolling, SharedQueueFIFO} {
			res := SimulatePolling(b, ios, mode)
			if res.IOs != n {
				t.Fatalf("seed %d %v: served %d of %d", seed, mode, res.IOs, n)
			}
			var busy int64
			for _, v := range res.WTBusyUS {
				busy += v
			}
			if busy != service {
				t.Fatalf("seed %d %v: busy %d != service %d", seed, mode, busy, service)
			}
		}
	}
}
