package hypervisor

import (
	"math"

	"ebslab/internal/stats"
)

// RebindConfig tunes the periodic QP-to-WT rebinding balancer the paper
// simulates in §4.3 (a FinNVMe/LPNS-style mechanism).
type RebindConfig struct {
	// PeriodSlots is the rebinding period expressed in traffic slots (the
	// paper uses 10 ms periods over 10 ms slots, i.e. PeriodSlots = 1).
	PeriodSlots int
	// Trigger is the hottest/coldest ratio that triggers a swap (1.2 in the
	// paper).
	Trigger float64
	// EvalSlots is the window (in slots) over which WT-CoV is evaluated:
	// per-WT traffic is summed per window and the reported CoV is the mean
	// across windows. Defaults to 100 slots (1 s at 10 ms slots). Rebinding
	// can only reduce this CoV when hotspots persist longer than the
	// rebinding period — the paper's central observation.
	EvalSlots int
}

// DefaultRebindConfig matches the paper's simulation settings.
func DefaultRebindConfig() RebindConfig {
	return RebindConfig{PeriodSlots: 1, Trigger: 1.2, EvalSlots: 5}
}

// RebindResult summarizes one node's rebinding simulation (one point of
// Fig 2(d)).
type RebindResult struct {
	// Ratio is the fraction of periods that triggered a rebinding.
	Ratio float64
	// Gain is WT-CoV with rebinding divided by WT-CoV without: below 1 the
	// balancer helped, near 1 it churned without helping. (The paper plots
	// the same quantity as a percentage.)
	Gain float64
	// CoVBefore and CoVAfter are the underlying normalized CoVs.
	CoVBefore, CoVAfter float64
	// Periods is how many periods were simulated.
	Periods int
}

// SimulateRebinding replays a node's per-QP slot traffic against the
// periodic rebinding balancer. slotTraffic is indexed [qp][slot] and aligned
// with binding.QPs; binding is not mutated.
//
// Per period the balancer measures per-WT traffic under the current binding
// and, when the hottest WT exceeds Trigger x the coldest, swaps the QP sets
// of those two threads — exactly the paper's §4.3 setup. The "before" CoV
// is measured on total per-WT traffic under the static binding; "after"
// under the evolving one.
func SimulateRebinding(binding *Binding, slotTraffic [][]float64, cfg RebindConfig) RebindResult {
	if cfg.PeriodSlots <= 0 {
		cfg.PeriodSlots = 1
	}
	if cfg.Trigger <= 1 {
		cfg.Trigger = 1.2
	}
	if cfg.EvalSlots <= 0 {
		cfg.EvalSlots = 100
	}
	nQPs := len(binding.QPs)
	if len(slotTraffic) != nQPs {
		panic("hypervisor: slotTraffic rows must match binding QPs")
	}
	var nSlots int
	if nQPs > 0 {
		nSlots = len(slotTraffic[0])
	}
	static := binding
	dynamic := binding.Clone()

	staticWin := make([]float64, binding.WTs)
	dynamicWin := make([]float64, binding.WTs)
	periodWT := make([]float64, binding.WTs)

	var res RebindResult
	var covBeforeSum, covAfterSum float64
	var covWindows int
	flushWindow := func() {
		cb := stats.NormCoV(staticWin)
		ca := stats.NormCoV(dynamicWin)
		if !math.IsNaN(cb) && !math.IsNaN(ca) {
			covBeforeSum += cb
			covAfterSum += ca
			covWindows++
		}
		for i := range staticWin {
			staticWin[i], dynamicWin[i] = 0, 0
		}
	}
	for start := 0; start < nSlots; start += cfg.PeriodSlots {
		end := start + cfg.PeriodSlots
		if end > nSlots {
			end = nSlots
		}
		for i := range periodWT {
			periodWT[i] = 0
		}
		for q := 0; q < nQPs; q++ {
			var sum float64
			for s := start; s < end; s++ {
				sum += slotTraffic[q][s]
			}
			staticWin[static.WTOf[q]] += sum
			dynamicWin[dynamic.WTOf[q]] += sum
			periodWT[dynamic.WTOf[q]] += sum
		}
		res.Periods++
		// Balance for the next period based on what this period showed.
		hot, cold := argmaxF(periodWT), argminF(periodWT)
		if periodWT[cold]*cfg.Trigger < periodWT[hot] {
			dynamic.SwapWTs(int8(hot), int8(cold))
			res.Ratio++
		}
		if end%cfg.EvalSlots == 0 || end == nSlots {
			flushWindow()
		}
	}
	if res.Periods > 0 {
		res.Ratio /= float64(res.Periods)
	}
	if covWindows == 0 {
		res.CoVBefore, res.CoVAfter, res.Gain = math.NaN(), math.NaN(), math.NaN()
		return res
	}
	res.CoVBefore = covBeforeSum / float64(covWindows)
	res.CoVAfter = covAfterSum / float64(covWindows)
	if res.CoVBefore == 0 {
		res.Gain = math.NaN()
	} else {
		res.Gain = res.CoVAfter / res.CoVBefore
	}
	return res
}

func argmaxF(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argminF(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
