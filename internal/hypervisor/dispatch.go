package hypervisor

import (
	"ebslab/internal/stats"
)

// DispatchPolicy selects how per-slot traffic reaches worker threads in the
// multi-WT hosting model of §4.4, where a hot QP's traffic may be shared by
// several threads instead of pinning to one.
type DispatchPolicy uint8

// Dispatch policies.
const (
	// DispatchSingleWT is the production model: each QP's slot goes wholly
	// to its bound worker thread.
	DispatchSingleWT DispatchPolicy = iota
	// DispatchLeastLoaded sends each QP-slot to the currently least-loaded
	// worker thread (per-IO dispatch, the hardware-offload proposal).
	DispatchLeastLoaded
	// DispatchRoundRobinIO sprays each QP's slots across worker threads in
	// turn, ignoring load.
	DispatchRoundRobinIO
)

func (p DispatchPolicy) String() string {
	switch p {
	case DispatchSingleWT:
		return "single-wt"
	case DispatchLeastLoaded:
		return "least-loaded"
	case DispatchRoundRobinIO:
		return "round-robin-io"
	}
	return "unknown"
}

// DispatchResult summarizes a dispatch-model simulation.
type DispatchResult struct {
	Policy DispatchPolicy
	// CoV is the normalized CoV of total per-WT traffic.
	CoV float64
	// SyncOps counts cross-thread handoffs — slots that landed on a WT other
	// than the QP's home thread. Under single-WT hosting it is zero; it is
	// the currency multi-WT hosting pays in locking/cache-miss overhead.
	SyncOps int
}

// SimulateDispatch replays per-QP slot traffic under a dispatch policy.
// slotTraffic is indexed [qp][slot], aligned with binding.QPs. The binding
// supplies each QP's home thread (used by SingleWT and to count handoffs).
func SimulateDispatch(binding *Binding, slotTraffic [][]float64, policy DispatchPolicy) DispatchResult {
	nQPs := len(binding.QPs)
	if len(slotTraffic) != nQPs {
		panic("hypervisor: slotTraffic rows must match binding QPs")
	}
	var nSlots int
	if nQPs > 0 {
		nSlots = len(slotTraffic[0])
	}
	wt := make([]float64, binding.WTs)
	res := DispatchResult{Policy: policy}
	rr := 0
	for s := 0; s < nSlots; s++ {
		for q := 0; q < nQPs; q++ {
			v := slotTraffic[q][s]
			if v == 0 {
				continue
			}
			home := int(binding.WTOf[q])
			var target int
			switch policy {
			case DispatchSingleWT:
				target = home
			case DispatchLeastLoaded:
				target = argminF(wt)
			case DispatchRoundRobinIO:
				target = rr % binding.WTs
				rr++
			}
			if target != home {
				res.SyncOps++
			}
			wt[target] += v
		}
	}
	res.CoV = stats.NormCoV(wt)
	return res
}
