// Package hypervisor models the compute-side IO virtualization framework of
// §2.2 and §4: polling worker threads (WTs) that host virtual-disk queue
// pairs (QPs) under single-WT hosting, the round-robin QP-to-WT load
// balancer, the node skewness taxonomy (Type I/II/III), the periodic
// QP-rebinding balancer the paper evaluates and finds wanting, and the
// per-IO multi-WT dispatch alternative it proposes.
package hypervisor

import (
	"fmt"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// Binding maps each QP of one compute node to a worker-thread index in
// [0, WorkerNum). The QP order is the node's canonical order
// (Topology.NodeQPs).
type Binding struct {
	Node cluster.NodeID
	QPs  []cluster.QPID // canonical QP order of the node
	WTOf []int8         // WTOf[i] is the worker thread of QPs[i]
	WTs  int
}

// RoundRobin builds the production binding (§2.2): QPs are assigned to
// worker threads in round-robin order as they are created.
func RoundRobin(top *cluster.Topology, node cluster.NodeID) *Binding {
	qps := top.NodeQPs(node)
	b := &Binding{
		Node: node,
		QPs:  qps,
		WTOf: make([]int8, len(qps)),
		WTs:  top.Nodes[node].WorkerNum,
	}
	for i := range qps {
		b.WTOf[i] = int8(i % b.WTs)
	}
	return b
}

// Clone returns a deep copy of the binding.
func (b *Binding) Clone() *Binding {
	return &Binding{
		Node: b.Node,
		QPs:  b.QPs, // canonical order is immutable, safe to share
		WTOf: append([]int8(nil), b.WTOf...),
		WTs:  b.WTs,
	}
}

// SwapWTs exchanges the QP sets bound to worker threads a and b, which is
// the paper's rebinding action (§4.3).
func (b *Binding) SwapWTs(a, c int8) {
	for i, wt := range b.WTOf {
		switch wt {
		case a:
			b.WTOf[i] = c
		case c:
			b.WTOf[i] = a
		}
	}
}

// WTTraffic folds per-QP traffic into per-WT totals. qpTraffic must align
// with b.QPs.
func (b *Binding) WTTraffic(qpTraffic []float64) []float64 {
	if len(qpTraffic) != len(b.QPs) {
		panic(fmt.Sprintf("hypervisor: %d QP traffic values for %d QPs", len(qpTraffic), len(b.QPs)))
	}
	out := make([]float64, b.WTs)
	for i, v := range qpTraffic {
		out[b.WTOf[i]] += v
	}
	return out
}

// WTCoV returns the normalized CoV of worker-thread traffic under the
// binding (the paper's WT-CoV, §4.1). It returns NaN when the node moved no
// traffic.
func (b *Binding) WTCoV(qpTraffic []float64) float64 {
	return stats.NormCoV(b.WTTraffic(qpTraffic))
}

// HottestColdestShare returns the traffic shares of the hottest and coldest
// worker threads. Shares are fractions of node traffic in [0,1]; both are
// NaN for an idle node.
func (b *Binding) HottestColdestShare(qpTraffic []float64) (hottest, coldest float64) {
	wt := b.WTTraffic(qpTraffic)
	total := stats.Sum(wt)
	if total == 0 {
		return nan(), nan()
	}
	return stats.Max(wt) / total, stats.Min(wt) / total
}

func nan() float64 { return stats.Mean(nil) }
