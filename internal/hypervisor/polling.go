package hypervisor

import (
	"container/heap"
	"math"
	"sort"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// PollIO is one IO submitted to a queue pair, as the polling runtime sees
// it: an arrival time and a service cost.
type PollIO struct {
	QP        cluster.QPID
	ArriveUS  int64
	ServiceUS int64
}

// ServiceModel converts IO size to worker-thread service time; the default
// models a ~5 us fixed cost plus ~2 us per 4 KiB of payload handling.
func ServiceModel(sizeBytes int32) int64 {
	return 5 + int64(sizeBytes)/2048
}

// HostingMode selects the thread model of §4.4.
type HostingMode uint8

// Hosting modes.
const (
	// SingleWTPolling is production: each QP is pinned to one worker
	// thread, which polls its bound QPs round-robin — one IO per visit, so
	// a hot QP cannot starve its neighbours.
	SingleWTPolling HostingMode = iota
	// SharedQueueFIFO is the naive multi-WT alternative: every IO enters
	// one node-wide FIFO served by all worker threads. It balances load
	// perfectly but a hot QP's backlog delays everyone behind it.
	SharedQueueFIFO
)

func (m HostingMode) String() string {
	if m == SingleWTPolling {
		return "single-wt-polling"
	}
	return "shared-queue-fifo"
}

// PollingResult reports the per-QP service quality of a run.
type PollingResult struct {
	Mode HostingMode
	// MeanWaitUS[i] is the mean queueing delay of binding.QPs[i] (NaN if
	// the QP issued nothing).
	MeanWaitUS []float64
	// P99WaitUS[i] is the 99th-percentile wait of binding.QPs[i].
	P99WaitUS []float64
	// Fairness is Jain's index over per-QP mean waits of QPs that issued
	// IO: 1 means every QP waited equally. Note this measures equality of
	// *waiting* — a FIFO that makes everyone inherit the hog's backlog
	// scores high. Isolation is the §4.4 metric.
	Fairness float64
	// Isolation is the mean wait of the lighter half of active QPs divided
	// by the overall mean wait: below 1 means light QPs are insulated from
	// heavy ones (what single-WT polling provides); near or above 1 means
	// they inherit the hogs' queueing.
	Isolation float64
	// WTBusyUS[w] is the total service time worker thread w spent.
	WTBusyUS []int64
	// IOs is the number of IOs served.
	IOs int
}

// SimulatePolling replays a node's IOs under a hosting mode. ios may be in
// any order; the simulator sorts by arrival. The binding supplies the
// QP-to-WT pinning for SingleWTPolling and the thread count for both modes.
func SimulatePolling(binding *Binding, ios []PollIO, mode HostingMode) PollingResult {
	res := PollingResult{
		Mode:       mode,
		MeanWaitUS: make([]float64, len(binding.QPs)),
		P99WaitUS:  make([]float64, len(binding.QPs)),
		WTBusyUS:   make([]int64, binding.WTs),
	}
	qpIdx := make(map[cluster.QPID]int, len(binding.QPs))
	for i, qp := range binding.QPs {
		qpIdx[qp] = i
	}
	sorted := append([]PollIO(nil), ios...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArriveUS < sorted[j].ArriveUS })

	waits := make([][]float64, len(binding.QPs))
	record := func(qp int, waitUS int64) {
		waits[qp] = append(waits[qp], float64(waitUS))
		res.IOs++
	}

	switch mode {
	case SingleWTPolling:
		// Partition IOs by worker thread and run each WT's polling loop.
		perWT := make([][]PollIO, binding.WTs)
		for _, io := range sorted {
			idx, ok := qpIdx[io.QP]
			if !ok {
				continue
			}
			wt := binding.WTOf[idx]
			perWT[wt] = append(perWT[wt], io)
		}
		for wt := range perWT {
			res.WTBusyUS[wt] = pollOneWT(binding, int8(wt), perWT[wt], qpIdx, record)
		}
	case SharedQueueFIFO:
		// k-server FIFO: each IO starts on the earliest-free thread.
		free := make(wtHeap, binding.WTs)
		for w := range free {
			free[w] = wtSlot{at: 0, wt: w}
		}
		heap.Init(&free)
		for _, io := range sorted {
			idx, ok := qpIdx[io.QP]
			if !ok {
				continue
			}
			slot := heap.Pop(&free).(wtSlot)
			start := max64(slot.at, io.ArriveUS)
			record(idx, start-io.ArriveUS)
			slot.at = start + io.ServiceUS
			res.WTBusyUS[slot.wt] += io.ServiceUS
			heap.Push(&free, slot)
		}
	}

	var meanWaits, counts []float64
	for i := range waits {
		if len(waits[i]) == 0 {
			res.MeanWaitUS[i] = math.NaN()
			res.P99WaitUS[i] = math.NaN()
			continue
		}
		res.MeanWaitUS[i] = stats.Mean(waits[i])
		res.P99WaitUS[i] = stats.Quantile(waits[i], 0.99)
		meanWaits = append(meanWaits, res.MeanWaitUS[i])
		counts = append(counts, float64(len(waits[i])))
	}
	res.Fairness = jain(meanWaits)
	res.Isolation = isolation(meanWaits, counts)
	return res
}

// isolation computes the light-QP wait ratio: the mean of mean-waits among
// QPs with at most the median IO count, over the overall mean of
// mean-waits. NaN with fewer than two active QPs.
func isolation(meanWaits, counts []float64) float64 {
	if len(meanWaits) < 2 {
		return math.NaN()
	}
	medianCount := stats.Median(counts)
	var lightSum float64
	var lightN int
	for i, c := range counts {
		if c <= medianCount {
			lightSum += meanWaits[i]
			lightN++
		}
	}
	overall := stats.Mean(meanWaits)
	if lightN == 0 || overall <= 0 {
		return math.NaN()
	}
	return (lightSum / float64(lightN)) / overall
}

// pollOneWT runs one worker thread's polling loop over its QPs: the thread
// cycles through bound queue pairs, serving at most one queued IO per
// visit; when every queue is empty it sleeps until the next arrival.
func pollOneWT(binding *Binding, wt int8, ios []PollIO, qpIdx map[cluster.QPID]int, record func(qp int, waitUS int64)) int64 {
	// Per-QP FIFO queues (by arrival; ios are pre-sorted).
	var qps []int // QP indices bound to this WT, in canonical order
	for i := range binding.QPs {
		if binding.WTOf[i] == wt {
			qps = append(qps, i)
		}
	}
	if len(qps) == 0 || len(ios) == 0 {
		return 0
	}
	queues := make(map[int][]PollIO, len(qps))
	next := 0 // next unarrived IO in ios
	var clock, busy int64
	cursor := 0 // round-robin position within qps

	admit := func(until int64) {
		for next < len(ios) && ios[next].ArriveUS <= until {
			idx := qpIdx[ios[next].QP]
			queues[idx] = append(queues[idx], ios[next])
			next++
		}
	}
	remaining := len(ios)
	for remaining > 0 {
		admit(clock)
		// One polling sweep: visit each QP once from the cursor.
		served := false
		for v := 0; v < len(qps); v++ {
			qp := qps[(cursor+v)%len(qps)]
			q := queues[qp]
			if len(q) == 0 {
				continue
			}
			io := q[0]
			queues[qp] = q[1:]
			record(qp, clock-io.ArriveUS)
			clock += io.ServiceUS
			busy += io.ServiceUS
			remaining--
			cursor = (cursor + v + 1) % len(qps)
			served = true
			break
		}
		if !served {
			// Idle: jump to the next arrival.
			if next < len(ios) {
				if ios[next].ArriveUS > clock {
					clock = ios[next].ArriveUS
				}
				admit(clock)
			} else {
				break
			}
		}
	}
	return busy
}

// jain computes Jain's fairness index over non-negative values; waits of
// zero are clamped to a small epsilon so an all-zero run is perfectly fair.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		sum += x
		sumSq += x * x
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// wtHeap is a min-heap of worker-thread availability times.
type wtSlot struct {
	at int64
	wt int
}

type wtHeap []wtSlot

func (h wtHeap) Len() int            { return len(h) }
func (h wtHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h wtHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wtHeap) Push(x interface{}) { *h = append(*h, x.(wtSlot)) }
func (h *wtHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
