package hypervisor

import (
	"math"
	"testing"

	"ebslab/internal/cluster"
)

// testTopology builds a node with 4 WTs hosting 2 VMs: VM0 has one VD with
// one QP, VM1 has two VDs with (2,1) QPs — 4 QPs total. A second node has 4
// WTs but only 2 QPs (Type I shape).
func testTopology(t *testing.T) *cluster.Topology {
	t.Helper()
	top := &cluster.Topology{DCs: 1, Users: 2}
	top.Nodes = []cluster.ComputeNode{
		{ID: 0, WorkerNum: 4, VMs: []cluster.VMID{0, 1}},
		{ID: 1, WorkerNum: 4, VMs: []cluster.VMID{2}},
	}
	top.VMs = []cluster.VM{
		{ID: 0, User: 0, Node: 0, VDs: []cluster.VDID{0}},
		{ID: 1, User: 1, Node: 0, VDs: []cluster.VDID{1, 2}},
		{ID: 2, User: 1, Node: 1, VDs: []cluster.VDID{3}},
	}
	top.VDs = []cluster.VD{
		{ID: 0, VM: 0, Capacity: 32 << 30, QPs: []cluster.QPID{0}, Segments: []cluster.SegmentID{0}},
		{ID: 1, VM: 1, Capacity: 32 << 30, QPs: []cluster.QPID{1, 2}, Segments: []cluster.SegmentID{1}},
		{ID: 2, VM: 1, Capacity: 32 << 30, QPs: []cluster.QPID{3}, Segments: []cluster.SegmentID{2}},
		{ID: 3, VM: 2, Capacity: 32 << 30, QPs: []cluster.QPID{4, 5}, Segments: []cluster.SegmentID{3}},
	}
	top.QPs = []cluster.QP{
		{ID: 0, VD: 0}, {ID: 1, VD: 1}, {ID: 2, VD: 1}, {ID: 3, VD: 2},
		{ID: 4, VD: 3}, {ID: 5, VD: 3},
	}
	top.Segments = []cluster.Segment{
		{ID: 0, VD: 0}, {ID: 1, VD: 1}, {ID: 2, VD: 2}, {ID: 3, VD: 3},
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("test topology invalid: %v", err)
	}
	return top
}

func TestRoundRobinBinding(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	if len(b.QPs) != 4 || b.WTs != 4 {
		t.Fatalf("binding shape: %d QPs, %d WTs", len(b.QPs), b.WTs)
	}
	for i, wt := range b.WTOf {
		if int(wt) != i%4 {
			t.Fatalf("WTOf[%d] = %d, want %d", i, wt, i%4)
		}
	}
}

func TestWTTrafficAndCoV(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	// All traffic on QP 0 -> WT 0 takes everything.
	traffic := []float64{100, 0, 0, 0}
	wt := b.WTTraffic(traffic)
	if wt[0] != 100 || wt[1]+wt[2]+wt[3] != 0 {
		t.Fatalf("WTTraffic = %v", wt)
	}
	if got := b.WTCoV(traffic); math.Abs(got-1) > 1e-9 {
		t.Fatalf("WTCoV of single spike = %v, want 1", got)
	}
	hot, cold := b.HottestColdestShare(traffic)
	if hot != 1 || cold != 0 {
		t.Fatalf("shares = %v/%v, want 1/0", hot, cold)
	}
	// Perfectly balanced.
	if got := b.WTCoV([]float64{5, 5, 5, 5}); math.Abs(got) > 1e-9 {
		t.Fatalf("WTCoV balanced = %v, want 0", got)
	}
	// Idle node.
	if h, _ := b.HottestColdestShare([]float64{0, 0, 0, 0}); !math.IsNaN(h) {
		t.Fatal("idle node share should be NaN")
	}
}

func TestWTTrafficPanicsOnMismatch(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched traffic should panic")
		}
	}()
	b.WTTraffic([]float64{1})
}

func TestSwapWTs(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	b.SwapWTs(0, 1)
	if b.WTOf[0] != 1 || b.WTOf[1] != 0 {
		t.Fatalf("after swap WTOf = %v", b.WTOf)
	}
	// Swap back restores.
	b.SwapWTs(0, 1)
	for i, wt := range b.WTOf {
		if int(wt) != i%4 {
			t.Fatalf("double swap not identity: %v", b.WTOf)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	c := b.Clone()
	c.SwapWTs(0, 1)
	if b.WTOf[0] != 0 {
		t.Fatal("Clone shares WTOf storage")
	}
}

func TestClassifyTypeI(t *testing.T) {
	top := testTopology(t)
	// Node 1 has 4 WTs but only 2 QPs.
	typ, _ := Classify(top, 1, []float64{10, 5})
	if typ != TypeIdle {
		t.Fatalf("node 1 type = %v, want TypeIdle", typ)
	}
}

func TestClassifyTypeII(t *testing.T) {
	top := testTopology(t)
	// Node 0: hottest VM is VM0 (single VD, single QP).
	typ, vm := Classify(top, 0, []float64{100, 1, 1, 1})
	if typ != TypeSingleQP || vm != 0 {
		t.Fatalf("type/vm = %v/%d, want TypeSingleQP/0", typ, vm)
	}
}

func TestClassifyTypeIII(t *testing.T) {
	top := testTopology(t)
	// Node 0: hottest VM is VM1 (QPs 1,2,3).
	typ, vm := Classify(top, 0, []float64{1, 100, 5, 5})
	if typ != TypeMultiQP || vm != 1 {
		t.Fatalf("type/vm = %v/%d, want TypeMultiQP/1", typ, vm)
	}
}

func TestClassifyIdleTraffic(t *testing.T) {
	top := testTopology(t)
	typ, vm := Classify(top, 0, []float64{0, 0, 0, 0})
	if typ != TypeIdle || vm != -1 {
		t.Fatalf("all-zero node type/vm = %v/%d, want TypeIdle/-1", typ, vm)
	}
}

func TestNodeTypeString(t *testing.T) {
	if TypeIdle.String() == "" || TypeSingleQP.String() == "" || TypeMultiQP.String() == "" {
		t.Fatal("empty NodeType strings")
	}
	if NodeType(0).String() != "TypeUnknown" {
		t.Fatal("zero NodeType should be unknown")
	}
}

func TestMeasureThreeTier(t *testing.T) {
	top := testTopology(t)
	// Hottest VM is VM1; its VD1 has QPs 1,2 and VD2 has QP 3.
	m := MeasureThreeTier(top, 0, []float64{1, 80, 0, 20})
	if math.IsNaN(m.VM2QP) || math.IsNaN(m.VM2VD) || math.IsNaN(m.VD2QP) {
		t.Fatalf("three-tier has unexpected NaN: %+v", m)
	}
	if m.VM2QP <= 0 || m.VM2QP > 1 {
		t.Fatalf("VM2QP = %v outside (0,1]", m.VM2QP)
	}
	// VD2QP is CoV of {80, 0}: a single spike over two QPs -> 1.
	if math.Abs(m.VD2QP-1) > 1e-9 {
		t.Fatalf("VD2QP = %v, want 1", m.VD2QP)
	}
	// Idle node: all NaN.
	idle := MeasureThreeTier(top, 0, []float64{0, 0, 0, 0})
	if !math.IsNaN(idle.VM2QP) || !math.IsNaN(idle.VM2VD) || !math.IsNaN(idle.VD2QP) {
		t.Fatalf("idle three-tier = %+v, want NaNs", idle)
	}
}

func TestSimulateRebindingBalancesSlowSkew(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	// QP 0 is persistently hot; rebinding every period should spread load
	// over time (swapping cannot split one QP, but CoV after should not
	// exceed before, and the ratio should be high).
	const slots = 400
	traffic := make([][]float64, 4)
	for q := range traffic {
		traffic[q] = make([]float64, slots)
		for s := range traffic[q] {
			if q == 0 {
				traffic[q][s] = 10
			} else {
				traffic[q][s] = 1
			}
		}
	}
	res := SimulateRebinding(b, traffic, DefaultRebindConfig())
	if res.Periods != slots {
		t.Fatalf("periods = %d, want %d", res.Periods, slots)
	}
	if res.Ratio <= 0.5 {
		t.Fatalf("persistent skew should trigger rebinding nearly always, ratio = %v", res.Ratio)
	}
	if !(res.Gain <= 1.0+1e-9) {
		t.Fatalf("gain = %v, want <= 1 for stable skew", res.Gain)
	}
}

func TestSimulateRebindingCannotCatchAlternatingBursts(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	// Bursts alternate between QPs on different WTs faster than the
	// rebinding period: the balancer always reacts one period late, so the
	// gain stays near (or above) 1 — the paper's node-b phenomenon.
	const slots = 400
	traffic := make([][]float64, 4)
	for q := range traffic {
		traffic[q] = make([]float64, slots)
	}
	for s := 0; s < slots; s++ {
		traffic[s%2][s] = 100 // hot QP flips every slot between QP0 and QP1
	}
	res := SimulateRebinding(b, traffic, DefaultRebindConfig())
	if res.Ratio == 0 {
		t.Fatal("alternating bursts should trigger rebinding")
	}
	if res.Gain < 0.95 {
		t.Fatalf("gain = %v; late-by-one rebinding should not help alternating bursts", res.Gain)
	}
}

func TestSimulateRebindingIdleNode(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	traffic := make([][]float64, 4)
	for q := range traffic {
		traffic[q] = make([]float64, 10)
	}
	res := SimulateRebinding(b, traffic, DefaultRebindConfig())
	if !math.IsNaN(res.Gain) {
		t.Fatalf("idle node gain = %v, want NaN", res.Gain)
	}
	if res.Ratio != 0 {
		t.Fatalf("idle node ratio = %v, want 0", res.Ratio)
	}
}

func TestSimulateRebindingDoesNotMutateBinding(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	traffic := [][]float64{{5}, {1}, {1}, {1}}
	SimulateRebinding(b, traffic, RebindConfig{PeriodSlots: 1, Trigger: 1.1})
	for i, wt := range b.WTOf {
		if int(wt) != i%4 {
			t.Fatal("SimulateRebinding mutated the input binding")
		}
	}
}

func TestSimulateDispatchPolicies(t *testing.T) {
	top := testTopology(t)
	b := RoundRobin(top, 0)
	const slots = 50
	traffic := make([][]float64, 4)
	for q := range traffic {
		traffic[q] = make([]float64, slots)
	}
	for s := 0; s < slots; s++ {
		traffic[0][s] = 40 // one extremely hot QP
		traffic[1][s] = 1
	}
	single := SimulateDispatch(b, traffic, DispatchSingleWT)
	least := SimulateDispatch(b, traffic, DispatchLeastLoaded)
	rr := SimulateDispatch(b, traffic, DispatchRoundRobinIO)

	if single.SyncOps != 0 {
		t.Fatalf("single-WT sync ops = %d, want 0", single.SyncOps)
	}
	if least.CoV >= single.CoV {
		t.Fatalf("least-loaded CoV %v should beat single-WT CoV %v", least.CoV, single.CoV)
	}
	if least.SyncOps == 0 {
		t.Fatal("least-loaded dispatch should pay handoffs")
	}
	if rr.CoV >= single.CoV {
		t.Fatalf("round-robin-IO CoV %v should beat single-WT CoV %v on a hot QP", rr.CoV, single.CoV)
	}
	for _, r := range []DispatchResult{single, least, rr} {
		if r.Policy.String() == "unknown" {
			t.Fatalf("policy %d stringifies to unknown", r.Policy)
		}
	}
}
