// Package fabric is the distributed simulation control plane: a coordinator
// partitions the synthetic fleet into VD-disjoint shards, dispatches them to
// worker processes over the netblock protocol's fabric ops (JoinFleet,
// AssignShard, ShardResult, Heartbeat, Drain), and deterministically merges
// the shard partials into a dataset byte-identical to a single-process run —
// for any worker count, and across worker crashes, stragglers, and duplicate
// results. The shard ledger itself is a replicated state machine: with
// Replicas > 1 every mutation is committed through a consensus log before it
// takes effect, so a coordinator replica can die mid-run and a newly elected
// leader resumes from the identical ledger. See DESIGN.md, "Distributed
// execution" and "Control-plane replication".
package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ebslab/internal/cluster"
	"ebslab/internal/consensus"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Config describes one distributed run.
type Config struct {
	// Fleet is the generation recipe, shipped to every worker.
	Fleet workload.Config
	// Opts are the run options. Coordinator-side destinations (Stream,
	// ChaosStats) are honored: the merged run fills them exactly like
	// ebs.Sim.Run would. Progress and Latency do not cross the wire.
	Opts ebs.Options
	// Scenario optionally names a scenario spec ("bufferbloat,period=16")
	// every worker binds to its regenerated fleet. The coordinator never
	// binds it — merging needs only the shard partials — so Opts.Scenario
	// must stay nil (it cannot be bound to the coordinator's internal fleet
	// from outside); NewCoordinator rejects it.
	Scenario string
	// Shards is how many shards to plan (0 = 4; more shards than workers
	// keeps the fleet busy when shard runtimes are uneven).
	Shards int
	// HeartbeatEvery is the beat interval workers are told to use
	// (default 500ms).
	HeartbeatEvery time.Duration
	// LivenessTimeout declares a silent worker dead and requeues its shards
	// (default 4 * HeartbeatEvery).
	LivenessTimeout time.Duration
	// SpeculateAfter re-dispatches a still-running shard to an idle worker
	// once the shard has been out that long (default 30s; straggler
	// mitigation). At-most-once accounting keeps duplicate results safe.
	SpeculateAfter time.Duration
	// AssignHold is how long an AssignShard request with nothing placeable is
	// held server-side waiting for availability to change (a result landing,
	// a shard requeuing) before the worker is told to back off and retry
	// (default 50ms). Event-driven wakeup keeps an idle worker from sleeping
	// a full WaitPoll after the run's last result arrives.
	AssignHold time.Duration

	// ReplicaID is this coordinator's identity in the replica set, in
	// [0, Replicas). Replica 0 bootstraps as the initial leader.
	ReplicaID int
	// Replicas is the control-plane replica count (0 or 1 = unreplicated:
	// a single-node consensus group that commits inline, with no ticker
	// and no transport).
	Replicas int
	// Transport delivers consensus messages to peer replicas. Required when
	// Replicas > 1; ignored otherwise.
	Transport consensus.Transport
	// PeerAddrs optionally maps replica IDs to dialable addresses, included
	// in leader redirects so workers can jump straight to the leader.
	PeerAddrs []string
	// TickEvery is the consensus logical-clock interval (default 5ms when
	// Replicas > 1). Election and heartbeat spans are multiples of it.
	TickEvery time.Duration
	// ProposeTimeout bounds how long a control-plane request waits for its
	// ledger command to commit (default 10s; typically: no quorum).
	ProposeTimeout time.Duration

	// now overrides the clock in tests. The leader stamps proposals with it;
	// replicas never read a clock of their own.
	now func() time.Time
	// onLeader fires when this replica wins (or bootstraps) leadership.
	onLeader func(term uint64, id int)
	// onApplied fires after each committed ledger command applies locally;
	// the replica set's chaos leader-kill trigger hangs here.
	onApplied func(kind uint8, reply any, leader bool)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.LivenessTimeout <= 0 {
		c.LivenessTimeout = 4 * c.HeartbeatEvery
	}
	if c.SpeculateAfter <= 0 {
		c.SpeculateAfter = 30 * time.Second
	}
	if c.AssignHold <= 0 {
		c.AssignHold = 50 * time.Millisecond
	}
	if c.Replicas <= 1 {
		c.Replicas = 1
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 5 * time.Millisecond
	}
	if c.ProposeTimeout <= 0 {
		c.ProposeTimeout = 10 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Coordinator runs the control plane. It implements netblock.Handler: mount
// it on a netblock.Server (NewHandlerServer) over any listener — TCP for
// real deployments, Loopback for in-process fabrics. Every ledger mutation
// is proposed to the consensus runner and applied only once committed; on a
// non-leader replica the fabric ops answer StatusRedirect so workers can
// find the leader.
type Coordinator struct {
	cfg    Config
	sim    *ebs.Sim
	fleet  *workload.Fleet
	plan   []cluster.ShardRange
	fsm    *ledgerFSM
	runner *consensus.Runner

	mergeOnce sync.Once
	result    *trace.Dataset
	mergeErr  error
}

// NewCoordinator generates the fleet, plans the shards, and returns a
// coordinator ready to be served.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Opts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Opts.Scenario != nil {
		return nil, fmt.Errorf("fabric: set Config.Scenario (the spec string), not Opts.Scenario — workers bind the scenario to their own fleets")
	}
	if cfg.Scenario != "" {
		// Fail at construction, not on every worker: the spec must parse and
		// validate. The binding itself happens worker-side.
		if _, err := scenario.Build(cfg.Scenario); err != nil {
			return nil, fmt.Errorf("fabric: %w", err)
		}
	}
	if cfg.ReplicaID < 0 || cfg.ReplicaID >= cfg.Replicas {
		return nil, fmt.Errorf("fabric: replica ID %d outside the %d-replica set", cfg.ReplicaID, cfg.Replicas)
	}
	if cfg.Replicas > 1 && cfg.Transport == nil {
		return nil, fmt.Errorf("fabric: %d replicas need a consensus transport", cfg.Replicas)
	}
	fleet, err := workload.Generate(cfg.Fleet)
	if err != nil {
		return nil, fmt.Errorf("fabric: generate fleet: %w", err)
	}
	nVDs := len(fleet.Topology.VDs)
	if cfg.Opts.MaxVDs > 0 && cfg.Opts.MaxVDs < nVDs {
		nVDs = cfg.Opts.MaxVDs
	}
	plan := cluster.PlanShards(nVDs, cfg.Shards)
	if len(plan) == 0 {
		return nil, fmt.Errorf("fabric: nothing to plan (%d VDs)", nVDs)
	}
	co := &Coordinator{
		cfg:   cfg,
		sim:   ebs.New(fleet),
		fleet: fleet,
		plan:  plan,
		fsm:   newLedgerFSM(cfg, plan),
	}
	tick := cfg.TickEvery
	if cfg.Replicas == 1 {
		tick = 0 // single-node groups commit inline; no ticker goroutine
	}
	co.runner = consensus.NewRunner(consensus.RunnerConfig{
		Node: consensus.NewNode(consensus.Config{
			ID:              cfg.ReplicaID,
			Peers:           cfg.Replicas,
			BootstrapLeader: 0,
			Seed:            cfg.Fleet.Seed,
		}),
		FSM:            co.fsm,
		Transport:      cfg.Transport,
		TickEvery:      tick,
		OnBecomeLeader: cfg.onLeader,
		OnApply:        co.applied,
	})
	return co, nil
}

// applied adapts the runner's apply hook to the config's, surfacing the
// command kind so the replica set can watch for accepted results.
func (co *Coordinator) applied(cmd []byte, reply any, leader bool) {
	if co.cfg.onApplied == nil || len(cmd) == 0 {
		return
	}
	co.cfg.onApplied(cmd[0], reply, leader)
}

// Plan exposes the shard plan (for reporting).
func (co *Coordinator) Plan() []cluster.ShardRange { return co.plan }

// Stop shuts the replica down: the consensus runner stops, parked proposals
// fail, and every later control-plane request is rejected. This is both the
// orderly teardown and the chaos "kill this replica" primitive.
func (co *Coordinator) Stop() { co.runner.Stop() }

// Deliver feeds one consensus message into this replica (used by in-process
// replica sets; TCP deployments arrive through Handle instead).
func (co *Coordinator) Deliver(m consensus.Message) { co.runner.Deliver(m) }

// DoneCh is closed once every shard has an accepted result in this
// replica's ledger.
func (co *Coordinator) DoneCh() <-chan struct{} { return co.fsm.allDone }

// Handle implements netblock.Handler for the fabric control plane: the five
// worker-facing ops (proposed through the consensus log) plus the replica-
// to-replica consensus ops and the leader-discovery query.
func (co *Coordinator) Handle(req *netblock.Request) *netblock.Response {
	resp := &netblock.Response{ID: req.ID, Status: netblock.StatusOK}
	fail := func(err error) *netblock.Response {
		resp.Status = netblock.StatusError
		resp.Payload = []byte(err.Error())
		return resp
	}
	switch req.Op {
	case netblock.OpRequestVote, netblock.OpAppendEntries:
		m, err := consensus.DecodeMessage(req.Payload)
		if err != nil {
			return fail(err)
		}
		co.runner.Deliver(*m)
		return resp // one-way: responses travel as their own messages
	case netblock.OpRedirectLeader:
		leader, _ := co.runner.LeaderInfo()
		resp.Payload = mustJSON(co.redirectFor(leader))
		return resp
	case netblock.OpJoinFleet:
		return co.propose(resp, command{Kind: cmdJoin})
	case netblock.OpAssignShard:
		var m workerMsg
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		return co.assignHold(resp, m.WorkerID)
	case netblock.OpShardResult:
		// No pre-validation: the FSM decodes the frame at apply time and a
		// malformed one comes back as an error reply (StatusError). Decoding
		// a shard result is the most expensive control-plane operation, so
		// doing it once — not once to validate and again to apply — is what
		// keeps the dispatch hot path at its unreplicated cost.
		return co.propose(resp, command{Kind: cmdResult, Frame: req.Payload})
	case netblock.OpHeartbeat:
		var m workerMsg
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		return co.propose(resp, command{Kind: cmdHeartbeat, Worker: m.WorkerID})
	case netblock.OpDrain:
		var m workerMsg
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		return co.propose(resp, command{Kind: cmdDrain, Worker: m.WorkerID})
	default:
		return fail(fmt.Errorf("fabric: op %s is not a control-plane request", req.Op))
	}
}

// assignHold proposes the assign and, when the ledger has nothing placeable,
// holds the reply instead of bouncing AssignWait straight back: it parks on
// the FSM's availability pulse and re-proposes the moment a result lands or
// a shard requeues, up to cfg.AssignHold. An idle worker at the tail of a
// run gets its AssignDone (or the freed shard) with sub-millisecond latency
// instead of discovering it a WaitPoll later — which is the difference
// between the dispatch benchmark's p50 and a 25ms sleep. Only this handler
// goroutine blocks; redirects, errors, and replica shutdown all break out.
func (co *Coordinator) assignHold(resp *netblock.Response, workerID uint64) *netblock.Response {
	// The hold timer is allocated lazily: most assigns place a shard on the
	// first try and never park, and this path runs once per shard.
	var hold *time.Timer
	defer func() {
		if hold != nil {
			hold.Stop()
		}
	}()
	for {
		// Grab the pulse channel before proposing: any availability change
		// after our command applies closes this channel, so a wakeup can
		// never slip between the apply and the park.
		avail := co.fsm.avail.wait()
		reply, err := co.proposeRaw(command{Kind: cmdAssign, Worker: workerID})
		a, isAssign := reply.(AssignReply)
		if err != nil || !isAssign || a.Status != AssignWait {
			return co.render(resp, reply, err) // shard, done, redirect, or error
		}
		if hold == nil {
			hold = time.NewTimer(co.cfg.AssignHold)
		}
		select {
		case <-avail:
		case <-hold.C:
			return co.render(resp, reply, nil)
		case <-co.runner.Done():
			// Replica stopping: hand the wait back, the worker fails over.
			return co.render(resp, reply, nil)
		}
	}
}

// proposeRaw stamps the command with the leader clock and commits it through
// the consensus log, returning the FSM's reply unrendered.
func (co *Coordinator) proposeRaw(c command) (any, error) {
	c.At = co.cfg.now().UnixNano()
	return co.runner.Propose(encodeCommand(&c), co.cfg.ProposeTimeout)
}

// propose commits the command and renders the FSM's reply. On a non-leader
// replica the response is a StatusRedirect carrying the leader hint, so the
// worker can re-aim instead of stalling.
func (co *Coordinator) propose(resp *netblock.Response, c command) *netblock.Response {
	reply, err := co.proposeRaw(c)
	return co.render(resp, reply, err)
}

// render turns a proposal outcome into the wire response.
func (co *Coordinator) render(resp *netblock.Response, reply any, err error) *netblock.Response {
	if err != nil {
		var nle *consensus.NotLeaderError
		if errors.As(err, &nle) {
			resp.Status = netblock.StatusRedirect
			resp.Payload = mustJSON(co.redirectFor(nle.Leader))
			return resp
		}
		resp.Status = netblock.StatusError
		resp.Payload = []byte(err.Error())
		return resp
	}
	switch v := reply.(type) {
	case error:
		resp.Status = netblock.StatusError
		resp.Payload = []byte(v.Error())
	case nil: // cmdDrain wants no payload
	default:
		resp.Payload = mustJSON(v)
	}
	return resp
}

// redirectFor builds the redirect payload for a hinted leader ID.
func (co *Coordinator) redirectFor(leader int) RedirectReply {
	r := RedirectReply{Leader: leader, Known: leader != consensus.None}
	if r.Known && leader < len(co.cfg.PeerAddrs) {
		r.Addr = co.cfg.PeerAddrs[leader]
	}
	return r
}

// Done reports whether every shard has an accepted result.
func (co *Coordinator) Done() bool {
	var done bool
	co.runner.Read(func() { done = co.fsm.remaining == 0 })
	return done
}

// Workers returns how many workers are currently registered.
func (co *Coordinator) Workers() int {
	var n int
	co.runner.Read(func() { n = len(co.fsm.workers) })
	return n
}

// LeaderInfo exposes the replica's current leader hint and whether this
// replica is that leader.
func (co *Coordinator) LeaderInfo() (leader int, isLeader bool) {
	return co.runner.LeaderInfo()
}

// Ledger snapshots the dispatch/result accounting for the cross-process
// conservation law.
func (co *Coordinator) Ledger() *invariant.ShardLedger {
	var l *invariant.ShardLedger
	co.runner.Read(func() { l = co.fsm.ledger() })
	return l
}

// SketchSnapshot merges the sketch state of every shard result accepted so
// far into a fresh set, reporting how many virtual disks it covers. This is
// the distributed analogue of ebs.SnapshotSink: the gateway serves it to
// tenants streaming a fabric-run study mid-flight. Ledger partials are
// immutable once accepted, so they are re-encoded under the runner's lock
// and merged from decoded copies outside it — the ledger is never mutated.
// Before any result lands it returns (nil, 0, nil). Streaming runs only;
// without Options.Stream the partials carry no sketch state and the
// snapshot stays empty.
func (co *Coordinator) SketchSnapshot() (*sketch.Set, int, error) {
	var encs [][]byte
	var vds int
	co.runner.Read(func() {
		for _, sh := range co.fsm.shards {
			if sh.partial != nil && sh.partial.Sketch != nil {
				encs = append(encs, sh.partial.Sketch.EncodeBinary())
				vds += sh.r.Hi - sh.r.Lo
			}
		}
	})
	if len(encs) == 0 {
		return nil, 0, nil
	}
	var merged *sketch.Set
	for _, enc := range encs {
		set, err := sketch.DecodeSet(enc)
		if err != nil {
			return nil, 0, fmt.Errorf("fabric: snapshot: %w", err)
		}
		if merged == nil {
			merged = sketch.NewSet(set.Config())
		}
		merged.Merge(set)
	}
	return merged, vds, nil
}

// Wait blocks until every shard is accounted for (or ctx ends), then merges
// the partials — verifying the fabric accounting law first — and returns the
// final dataset. The merge runs once; concurrent and repeated Waits share
// its result. Any replica whose ledger reached completion can merge: the
// partials were committed through the log, so they are byte-identical
// everywhere.
func (co *Coordinator) Wait(ctx context.Context) (*trace.Dataset, error) {
	select {
	case <-co.fsm.allDone:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	co.mergeOnce.Do(func() {
		var rep invariant.Report
		invariant.CheckFabricAccounting(&rep, co.Ledger())
		if err := rep.Err(); err != nil {
			co.mergeErr = fmt.Errorf("fabric: %w", err)
			return
		}
		parts := make([]*ebs.ShardPartial, 0, len(co.plan))
		co.runner.Read(func() {
			for _, sh := range co.fsm.shards {
				parts = append(parts, sh.partial)
			}
		})
		co.result, co.mergeErr = co.sim.MergeShards(co.cfg.Opts, parts)
	})
	return co.result, co.mergeErr
}
