// Package fabric is the distributed simulation control plane: a coordinator
// partitions the synthetic fleet into VD-disjoint shards, dispatches them to
// worker processes over the netblock protocol's fabric ops (JoinFleet,
// AssignShard, ShardResult, Heartbeat, Drain), and deterministically merges
// the shard partials into a dataset byte-identical to a single-process run —
// for any worker count, and across worker crashes, stragglers, and duplicate
// results. See DESIGN.md, "Distributed execution".
package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ebslab/internal/cluster"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// Config describes one distributed run.
type Config struct {
	// Fleet is the generation recipe, shipped to every worker.
	Fleet workload.Config
	// Opts are the run options. Coordinator-side destinations (Stream,
	// ChaosStats) are honored: the merged run fills them exactly like
	// ebs.Sim.Run would. Progress and Latency do not cross the wire.
	Opts ebs.Options
	// Shards is how many shards to plan (0 = 4; more shards than workers
	// keeps the fleet busy when shard runtimes are uneven).
	Shards int
	// HeartbeatEvery is the beat interval workers are told to use
	// (default 500ms).
	HeartbeatEvery time.Duration
	// LivenessTimeout declares a silent worker dead and requeues its shards
	// (default 4 * HeartbeatEvery).
	LivenessTimeout time.Duration
	// SpeculateAfter re-dispatches a still-running shard to an idle worker
	// once the shard has been out that long (default 30s; straggler
	// mitigation). At-most-once accounting keeps duplicate results safe.
	SpeculateAfter time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.LivenessTimeout <= 0 {
		c.LivenessTimeout = 4 * c.HeartbeatEvery
	}
	if c.SpeculateAfter <= 0 {
		c.SpeculateAfter = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Shard dispatch states.
const (
	shardPending = iota
	shardRunning
	shardDone
)

// shardState tracks one planned shard through dispatch, execution, and
// result accounting.
type shardState struct {
	r     cluster.ShardRange
	state int
	// attempted records every worker the shard was ever dispatched to, so
	// re-dispatch (speculation or requeue) lands on a different worker.
	attempted map[uint64]bool
	// running is the subset of attempted workers believed alive and still
	// executing the shard.
	running map[uint64]bool
	// firstDispatch anchors straggler detection.
	firstDispatch time.Time
	lastDispatch  time.Time
	partial       *ebs.ShardPartial

	dispatched, returned, accepted int
}

// workerState is the coordinator's view of one joined worker.
type workerState struct {
	id       uint64
	lastBeat time.Time
}

// Coordinator runs the control plane. It implements netblock.Handler: mount
// it on a netblock.Server (NewHandlerServer) over any listener — TCP for
// real deployments, Loopback for in-process fabrics.
type Coordinator struct {
	cfg   Config
	sim   *ebs.Sim
	fleet *workload.Fleet
	spec  RunSpec
	plan  []cluster.ShardRange

	mu        sync.Mutex
	shards    []*shardState
	workers   map[uint64]*workerState
	nextID    uint64
	remaining int

	allDone   chan struct{}
	mergeOnce sync.Once
	result    *trace.Dataset
	mergeErr  error
}

// NewCoordinator generates the fleet, plans the shards, and returns a
// coordinator ready to be served.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Opts.Validate(); err != nil {
		return nil, err
	}
	fleet, err := workload.Generate(cfg.Fleet)
	if err != nil {
		return nil, fmt.Errorf("fabric: generate fleet: %w", err)
	}
	nVDs := len(fleet.Topology.VDs)
	if cfg.Opts.MaxVDs > 0 && cfg.Opts.MaxVDs < nVDs {
		nVDs = cfg.Opts.MaxVDs
	}
	plan := cluster.PlanShards(nVDs, cfg.Shards)
	if len(plan) == 0 {
		return nil, fmt.Errorf("fabric: nothing to plan (%d VDs)", nVDs)
	}
	co := &Coordinator{
		cfg:       cfg,
		sim:       ebs.New(fleet),
		fleet:     fleet,
		spec:      specOf(cfg.Opts),
		plan:      plan,
		workers:   make(map[uint64]*workerState),
		remaining: len(plan),
		allDone:   make(chan struct{}),
	}
	for _, r := range plan {
		co.shards = append(co.shards, &shardState{
			r:         r,
			attempted: make(map[uint64]bool),
			running:   make(map[uint64]bool),
		})
	}
	return co, nil
}

// Plan exposes the shard plan (for reporting).
func (co *Coordinator) Plan() []cluster.ShardRange { return co.plan }

// Handle implements netblock.Handler for the five fabric ops.
func (co *Coordinator) Handle(req *netblock.Request) *netblock.Response {
	resp := &netblock.Response{ID: req.ID, Status: netblock.StatusOK}
	fail := func(err error) *netblock.Response {
		resp.Status = netblock.StatusError
		resp.Payload = []byte(err.Error())
		return resp
	}
	switch req.Op {
	case netblock.OpJoinFleet:
		resp.Payload = mustJSON(co.join())
	case netblock.OpAssignShard:
		var m workerMsg
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		resp.Payload = mustJSON(co.assign(m.WorkerID))
	case netblock.OpShardResult:
		rep, err := co.acceptResult(req.Payload)
		if err != nil {
			return fail(err)
		}
		resp.Payload = mustJSON(rep)
	case netblock.OpHeartbeat:
		var m workerMsg
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		co.heartbeat(m.WorkerID)
		resp.Payload = mustJSON(resultReply{Done: co.Done()})
	case netblock.OpDrain:
		var m workerMsg
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		co.drain(m.WorkerID)
	default:
		return fail(fmt.Errorf("fabric: op %s is not a control-plane request", req.Op))
	}
	return resp
}

// join registers a new worker and hands it the run description.
func (co *Coordinator) join() JoinReply {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.nextID++
	id := co.nextID
	co.workers[id] = &workerState{id: id, lastBeat: co.cfg.now()}
	return JoinReply{
		WorkerID:    id,
		Fleet:       co.cfg.Fleet,
		Spec:        co.spec,
		Shards:      len(co.plan),
		HeartbeatMS: co.cfg.HeartbeatEvery.Milliseconds(),
	}
}

// assign places a shard on the asking worker: first a pending shard the
// worker has not attempted, then — when nothing is pending but shards are
// still out — a speculative copy of the slowest straggling shard.
func (co *Coordinator) assign(workerID uint64) AssignReply {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.now()
	co.touchLocked(workerID, now)
	co.reapLocked(now)

	if co.remaining == 0 {
		return AssignReply{Status: AssignDone}
	}
	var pending []int
	for i, sh := range co.shards {
		if sh.state == shardPending {
			pending = append(pending, i)
		}
	}
	pick := cluster.PickShard(pending, func(s int) bool { return co.shards[s].attempted[workerID] })
	if pick < 0 {
		pick = co.straggler(workerID, now)
	}
	if pick < 0 {
		return AssignReply{Status: AssignWait}
	}
	sh := co.shards[pick]
	sh.state = shardRunning
	sh.attempted[workerID] = true
	sh.running[workerID] = true
	sh.dispatched++
	if sh.firstDispatch.IsZero() {
		sh.firstDispatch = now
	}
	sh.lastDispatch = now
	return AssignReply{Status: AssignShard, Shard: pick, Lo: sh.r.Lo, Hi: sh.r.Hi}
}

// straggler picks the running shard that has been out the longest, if it
// crossed the speculation threshold and this worker never attempted it.
// Called with co.mu held.
func (co *Coordinator) straggler(workerID uint64, now time.Time) int {
	best := -1
	for i, sh := range co.shards {
		if sh.state != shardRunning || sh.attempted[workerID] {
			continue
		}
		if now.Sub(sh.lastDispatch) < co.cfg.SpeculateAfter {
			continue
		}
		if best < 0 || sh.firstDispatch.Before(co.shards[best].firstDispatch) {
			best = i
		}
	}
	return best
}

// result_ accounts one returned shard result. The first result per shard
// wins; later copies (from speculation or requeue races) are acknowledged
// but dropped, so every shard contributes to the merge at most once.
func (co *Coordinator) acceptResult(frame []byte) (resultReply, error) {
	workerID, shardID, p, err := decodeResult(frame)
	if err != nil {
		return resultReply{}, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if shardID < 0 || shardID >= len(co.shards) {
		return resultReply{}, fmt.Errorf("fabric: result for unknown shard %d", shardID)
	}
	now := co.cfg.now()
	co.touchLocked(workerID, now)
	sh := co.shards[shardID]
	if p.Lo != sh.r.Lo || p.Hi != sh.r.Hi {
		return resultReply{}, fmt.Errorf("fabric: shard %d result covers [%d,%d), plan says %v",
			shardID, p.Lo, p.Hi, sh.r)
	}
	sh.returned++
	delete(sh.running, workerID)
	if sh.state == shardDone {
		return resultReply{Accepted: false, Done: co.remaining == 0}, nil
	}
	sh.state = shardDone
	sh.partial = p
	sh.accepted++
	co.remaining--
	if co.remaining == 0 {
		close(co.allDone)
	}
	return resultReply{Accepted: true, Done: co.remaining == 0}, nil
}

// heartbeat refreshes a worker's liveness and sweeps for dead peers.
func (co *Coordinator) heartbeat(workerID uint64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.now()
	co.touchLocked(workerID, now)
	co.reapLocked(now)
}

// drain deregisters a worker that announced an orderly exit. Shards it was
// still listed on go back to pending (an orderly worker finishes its shard
// before draining, so normally there are none).
func (co *Coordinator) drain(workerID uint64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	delete(co.workers, workerID)
	co.requeueLocked(workerID)
}

func (co *Coordinator) touchLocked(workerID uint64, now time.Time) {
	if w := co.workers[workerID]; w != nil {
		w.lastBeat = now
	}
}

// reapLocked declares workers silent past the liveness timeout dead and
// requeues their shards. Liveness is evaluated on control-plane traffic
// (every assign and heartbeat), so a fleet with any live worker converges
// without a background timer.
func (co *Coordinator) reapLocked(now time.Time) {
	for id, w := range co.workers {
		if now.Sub(w.lastBeat) > co.cfg.LivenessTimeout {
			delete(co.workers, id)
			co.requeueLocked(id)
		}
	}
}

// requeueLocked removes the worker from every running shard; shards left
// with no live executor return to pending (the worker stays in attempted, so
// the retry lands elsewhere when possible).
func (co *Coordinator) requeueLocked(workerID uint64) {
	for _, sh := range co.shards {
		if sh.state != shardRunning || !sh.running[workerID] {
			continue
		}
		delete(sh.running, workerID)
		if len(sh.running) == 0 {
			sh.state = shardPending
		}
	}
}

// Done reports whether every shard has an accepted result.
func (co *Coordinator) Done() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.remaining == 0
}

// Workers returns how many workers are currently registered.
func (co *Coordinator) Workers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.workers)
}

// Ledger snapshots the dispatch/result accounting for the cross-process
// conservation law.
func (co *Coordinator) Ledger() *invariant.ShardLedger {
	co.mu.Lock()
	defer co.mu.Unlock()
	l := &invariant.ShardLedger{
		Dispatched: make([]int, len(co.shards)),
		Returned:   make([]int, len(co.shards)),
		Accepted:   make([]int, len(co.shards)),
	}
	for i, sh := range co.shards {
		l.Dispatched[i] = sh.dispatched
		l.Returned[i] = sh.returned
		l.Accepted[i] = sh.accepted
	}
	return l
}

// Wait blocks until every shard is accounted for (or ctx ends), then merges
// the partials — verifying the fabric accounting law first — and returns the
// final dataset. The merge runs once; concurrent and repeated Waits share
// its result.
func (co *Coordinator) Wait(ctx context.Context) (*trace.Dataset, error) {
	select {
	case <-co.allDone:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	co.mergeOnce.Do(func() {
		var rep invariant.Report
		invariant.CheckFabricAccounting(&rep, co.Ledger())
		if err := rep.Err(); err != nil {
			co.mergeErr = fmt.Errorf("fabric: %w", err)
			return
		}
		co.mu.Lock()
		parts := make([]*ebs.ShardPartial, 0, len(co.shards))
		for _, sh := range co.shards {
			parts = append(parts, sh.partial)
		}
		co.mu.Unlock()
		co.result, co.mergeErr = co.sim.MergeShards(co.cfg.Opts, parts)
	})
	return co.result, co.mergeErr
}
