package fabric

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ebslab/internal/chaos"
	"ebslab/internal/consensus"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
)

// ReplicaSet runs N coordinator replicas in-process, each served over its
// own Loopback listener, wired together by a synchronous consensus fan.
// Workers dial any replica (Dials) and are redirected to the leader. The
// set consumes the chaos plan's leader-kill windows: when the replicated
// ledger accepts its AfterResults-th shard result, whichever replica leads
// is killed — runner stopped, listener closed — and the run must complete
// under a successor with a byte-identical dataset.
type ReplicaSet struct {
	n    int
	cos  []*Coordinator
	lbs  []*Loopback
	srvs []*netblock.Server
	// sched is the expanded chaos schedule (nil without a plan); its
	// LeaderKills drive the kill queue.
	sched *chaos.Schedule

	// OnAccepted, when set before any worker joins, fires after the acting
	// leader's ledger applies each accepted shard result, with that
	// replica's accepted total. The gateway's test harness hangs its
	// deterministic mid-study progress observation here.
	OnAccepted func(total int)

	mu          sync.Mutex
	transitions []invariant.LeaderTransition
	kills       []chaos.LeaderKill
	nextKill    int
	counts      []int // accepted results applied, per replica
	killed      []bool
	killWG      sync.WaitGroup
	closeOnce   sync.Once
}

// replicaFan is the in-process consensus transport: Send delivers the
// message synchronously into the destination replica. Synchronous delivery
// keeps every follower's log flush with the leader at the instant a kill
// fires, which is what makes the post-kill election order (and so the
// golden leadership-transition log) deterministic. No lock is held across
// Send — the consensus runner emits messages outside its lock — so the
// delivery chain cannot deadlock.
type replicaFan struct {
	rs *ReplicaSet
}

func (f *replicaFan) Send(m consensus.Message) {
	if m.To < 0 || m.To >= f.rs.n {
		return
	}
	f.rs.cos[m.To].Deliver(m) // no-op on a stopped (killed) replica
}

// NewReplicaSet builds and serves `replicas` coordinator replicas of cfg.
// cfg's replication fields (ReplicaID, Replicas, Transport) are overwritten
// per replica; everything else — fleet, options, shard plan, liveness knobs —
// is shared, which is what makes every replica's FSM identical.
func NewReplicaSet(cfg Config, replicas int) (*ReplicaSet, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("fabric: replica set needs >= 1 replicas, got %d", replicas)
	}
	rs := &ReplicaSet{
		n:      replicas,
		counts: make([]int, replicas),
		killed: make([]bool, replicas),
	}
	fan := &replicaFan{rs: rs}
	for i := 0; i < replicas; i++ {
		c := cfg
		c.ReplicaID = i
		c.Replicas = replicas
		c.Transport = fan
		c.onLeader = rs.recordLeader
		id := i
		c.onApplied = func(kind uint8, reply any, leader bool) {
			rs.applied(id, kind, reply, leader)
		}
		co, err := NewCoordinator(c)
		if err != nil {
			rs.Close()
			return nil, err
		}
		lb := NewLoopback()
		srv := netblock.NewHandlerServer(co)
		go srv.Serve(lb) //nolint:errcheck — ends with the loopback
		rs.cos = append(rs.cos, co)
		rs.lbs = append(rs.lbs, lb)
		rs.srvs = append(rs.srvs, srv)
	}
	// Expand the chaos plan's leader-kill windows against the shard plan.
	// The trigger counts are a pure function of (seed, shard count), so the
	// same study kills its leader at the same ledger position every run.
	if opts := cfg.Opts; opts.Chaos != nil && opts.Chaos.LeaderKills > 0 && replicas > 1 {
		rs.sched = opts.Chaos.Expand(cfg.Fleet.Seed, chaos.Shape{Shards: len(rs.cos[0].Plan())})
		rs.kills = rs.sched.LeaderKills
	}
	return rs, nil
}

// recordLeader appends one entry to the leadership-transition log. Only the
// winning replica fires this hook, so the log is the run's election history.
func (rs *ReplicaSet) recordLeader(term uint64, id int) {
	rs.mu.Lock()
	rs.transitions = append(rs.transitions, invariant.LeaderTransition{Term: term, Leader: id})
	rs.mu.Unlock()
}

// applied is every replica's post-apply hook: it counts accepted results in
// commit order and, when the next kill window's trigger count is reached on
// the replica that currently leads, consumes the window and kills that
// replica asynchronously (the teardown stops the runner this callback
// belongs to, so it cannot run inline).
func (rs *ReplicaSet) applied(id int, kind uint8, reply any, leader bool) {
	if kind != cmdResult {
		return
	}
	rr, ok := reply.(resultReply)
	if !ok || !rr.Accepted {
		return
	}
	rs.mu.Lock()
	rs.counts[id]++
	count := rs.counts[id]
	kill := leader && !rs.killed[id] && rs.nextKill < len(rs.kills) &&
		rs.counts[id] >= rs.kills[rs.nextKill].AfterResults
	if kill {
		rs.nextKill++
		rs.killed[id] = true
		rs.killWG.Add(1)
	}
	rs.mu.Unlock()
	if leader && rs.OnAccepted != nil {
		rs.OnAccepted(count)
	}
	if kill {
		go func() {
			defer rs.killWG.Done()
			rs.kill(id)
		}()
	}
}

// kill tears one replica down the hard way: consensus runner stopped (every
// parked proposal fails), listener closed (workers' connections die), server
// drained. The surviving replicas elect a successor and the run continues
// from the replicated ledger.
func (rs *ReplicaSet) kill(id int) {
	rs.cos[id].Stop()
	rs.lbs[id].Close()
	rs.srvs[id].Close()
}

// Dials returns one control-plane dialer per replica, indexed by replica ID
// (the order leader redirects refer to).
func (rs *ReplicaSet) Dials() []func() (net.Conn, error) {
	out := make([]func() (net.Conn, error), rs.n)
	for i, lb := range rs.lbs {
		out[i] = lb.Dial
	}
	return out
}

// Transitions snapshots the leadership history.
func (rs *ReplicaSet) Transitions() []invariant.LeaderTransition {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]invariant.LeaderTransition, len(rs.transitions))
	copy(out, rs.transitions)
	return out
}

// KillsExecuted reports how many leader-kill windows have fired.
func (rs *ReplicaSet) KillsExecuted() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.nextKill
}

// Schedule returns the expanded chaos schedule driving the kill queue, or
// nil when the run has no leader-kill plan.
func (rs *ReplicaSet) Schedule() *chaos.Schedule { return rs.sched }

// Coordinator returns replica id's coordinator (for ledger inspection).
func (rs *ReplicaSet) Coordinator(id int) *Coordinator { return rs.cos[id] }

// SketchSnapshot returns the most advanced replica's merged view of the
// accepted shard partials' sketch state (see Coordinator.SketchSnapshot).
// Replicas may trail the leader by a few commits; taking the view covering
// the most virtual disks keeps the snapshot stream monotone across leader
// kills.
func (rs *ReplicaSet) SketchSnapshot() (*sketch.Set, int, error) {
	var best *sketch.Set
	var bestVDs int
	for _, co := range rs.cos {
		set, vds, err := co.SketchSnapshot()
		if err != nil {
			return nil, 0, err
		}
		if vds > bestVDs {
			best, bestVDs = set, vds
		}
	}
	return best, bestVDs, nil
}

// Wait blocks until some replica's ledger holds every shard result (or ctx
// ends), verifies the fabric accounting and leadership-continuity laws, and
// merges that replica's partials into the final dataset.
func (rs *ReplicaSet) Wait(ctx context.Context) (*trace.Dataset, error) {
	done := make(chan int, rs.n)
	for i, co := range rs.cos {
		go func(i int, ch <-chan struct{}) {
			select {
			case <-ch:
				done <- i
			case <-ctx.Done():
			}
		}(i, co.DoneCh())
	}
	var idx int
	select {
	case idx = <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	// Let any in-flight kill finish so the leadership log is complete
	// before the continuity law reads it.
	rs.killWG.Wait()
	ds, err := rs.cos[idx].Wait(ctx)
	if err != nil {
		return nil, err
	}
	var rep invariant.Report
	invariant.CheckLeadershipContinuity(&rep, rs.n, rs.Transitions())
	if err := rep.Err(); err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	return ds, nil
}

// Close stops every replica that is still alive.
func (rs *ReplicaSet) Close() {
	rs.closeOnce.Do(func() {
		rs.killWG.Wait()
		for i := range rs.cos {
			rs.mu.Lock()
			dead := rs.killed[i]
			rs.killed[i] = true
			rs.mu.Unlock()
			if dead {
				continue
			}
			rs.kill(i)
		}
	})
}

// --- TCP peer transport -----------------------------------------------------

// PeerTransport carries consensus messages between coordinator replicas over
// netblock TCP connections: one lazily-dialed client and one sender
// goroutine per peer, fed by a bounded outbox. A full outbox or a dead peer
// drops messages — the consensus protocol's retries (heartbeats, re-votes)
// make delivery eventually succeed without the transport ever blocking the
// replica.
type PeerTransport struct {
	self  int
	addrs []string
	outs  []chan consensus.Message
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// NewPeerTransport wires replica self into a TCP replica set. addrs is
// indexed by replica ID (self's own slot is ignored). Close releases the
// sender goroutines.
func NewPeerTransport(self int, addrs []string) *PeerTransport {
	t := &PeerTransport{
		self:  self,
		addrs: addrs,
		outs:  make([]chan consensus.Message, len(addrs)),
		stop:  make(chan struct{}),
	}
	for i := range addrs {
		if i == self {
			continue
		}
		t.outs[i] = make(chan consensus.Message, 256)
		t.wg.Add(1)
		go t.sendLoop(i)
	}
	return t
}

// Send enqueues a message toward its destination, dropping on overflow.
func (t *PeerTransport) Send(m consensus.Message) {
	if m.To < 0 || m.To >= len(t.outs) || m.To == t.self || t.outs[m.To] == nil {
		return
	}
	select {
	case t.outs[m.To] <- m:
	default:
	}
}

// Close stops the sender goroutines and closes peer connections.
func (t *PeerTransport) Close() {
	t.once.Do(func() { close(t.stop) })
	t.wg.Wait()
}

func (t *PeerTransport) sendLoop(peer int) {
	defer t.wg.Done()
	var cl *netblock.Client
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	for {
		select {
		case <-t.stop:
			return
		case m := <-t.outs[peer]:
			if cl == nil {
				c, err := netblock.DialConfig("tcp", t.addrs[peer], netblock.Config{Timeout: 2 * time.Second})
				if err != nil {
					continue // dropped; the protocol retransmits
				}
				cl = c
			}
			op := netblock.OpAppendEntries
			if m.Type == consensus.MsgVote || m.Type == consensus.MsgVoteResp {
				op = netblock.OpRequestVote
			}
			if _, err := cl.Call(op, consensus.EncodeMessage(&m)); err != nil {
				cl.Close()
				cl = nil
			}
		}
	}
}
