package fabric

import (
	"fmt"
	"sync"
	"time"

	"ebslab/internal/cluster"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
)

// --- Replicated control-plane commands -------------------------------------
//
// Every mutation of the shard ledger travels through the consensus log as one
// binary command, so the ledger is a deterministic function of the committed
// command sequence: any replica that applies the same prefix holds the same
// shards, workers, and accounting — which is what lets a new leader resume a
// run mid-flight after the old one dies.
//
//	command: u8 kind | u64 worker | i64 atUnixNano | u32 frameLen | frame
//
// At is stamped by the proposing leader from its clock, so time-dependent
// transitions (liveness reaping, speculation thresholds) replay identically
// on every replica: FSM time only advances when entries commit.

// Command kinds, one per control-plane op.
const (
	cmdJoin uint8 = iota + 1
	cmdAssign
	cmdResult
	cmdHeartbeat
	cmdDrain
)

// command is one decoded ledger mutation. Frame is the raw shard-result
// frame for cmdResult (empty otherwise): embedding the worker's exact bytes
// lets every replica decode the identical partial.
type command struct {
	Kind   uint8
	Worker uint64
	At     int64
	Frame  []byte
}

func encodeCommand(c *command) []byte {
	w := &wireWriter{b: make([]byte, 0, 1+8+8+4+len(c.Frame))}
	w.u8(c.Kind)
	w.u64(c.Worker)
	w.i64(c.At)
	w.u32(uint32(len(c.Frame)))
	w.b = append(w.b, c.Frame...)
	return w.b
}

func decodeCommand(data []byte) (command, error) {
	r := &wireReader{b: data}
	var c command
	c.Kind = r.u8()
	c.Worker = r.u64()
	c.At = r.i64()
	c.Frame = r.take(r.count(1))
	if r.err == nil && r.remaining() != 0 {
		r.fail()
	}
	if r.err == nil && (c.Kind < cmdJoin || c.Kind > cmdDrain) {
		r.fail()
	}
	if r.err != nil {
		return command{}, fmt.Errorf("%w: bad ledger command", ErrWire)
	}
	return c, nil
}

// Shard dispatch states.
const (
	shardPending = iota
	shardRunning
	shardDone
)

// shardState tracks one planned shard through dispatch, execution, and
// result accounting.
type shardState struct {
	r     cluster.ShardRange
	state int
	// attempted records every worker the shard was ever dispatched to, so
	// re-dispatch (speculation or requeue) lands on a different worker.
	attempted map[uint64]bool
	// running is the subset of attempted workers believed alive and still
	// executing the shard.
	running map[uint64]bool
	// returnedBy records workers whose result for this shard was already
	// accounted, so a retransmit after a lost reply (leader failover) is
	// acknowledged without double-counting the ledger.
	returnedBy map[uint64]bool
	// firstDispatch anchors straggler detection.
	firstDispatch time.Time
	lastDispatch  time.Time
	partial       *ebs.ShardPartial

	dispatched, returned, accepted int
}

// workerState is the control plane's view of one joined worker.
type workerState struct {
	id       uint64
	lastBeat time.Time
}

// pulse is a reusable broadcast: wait hands out the current channel, fire
// closes it and installs a fresh one, waking every waiter at once. The FSM
// fires it when shard availability changes; assign long-polls wait on it.
// Its mutex is a leaf — fire runs under the Runner's lock and must not
// acquire anything else.
type pulse struct {
	mu sync.Mutex
	ch chan struct{}
}

func newPulse() *pulse { return &pulse{ch: make(chan struct{})} }

func (p *pulse) wait() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ch
}

func (p *pulse) fire() {
	p.mu.Lock()
	close(p.ch)
	p.ch = make(chan struct{})
	p.mu.Unlock()
}

// ledgerFSM is the replicated shard ledger: the deterministic state machine
// the consensus Runner applies committed commands to. All methods run under
// the Runner's lock; nothing here reads the wall clock — every timestamp
// comes from the command being applied.
type ledgerFSM struct {
	cfg  Config // defaults resolved; supplies liveness/speculation knobs
	plan []cluster.ShardRange

	shards    []*shardState
	workers   map[uint64]*workerState
	nextID    uint64
	remaining int
	// acceptedTotal counts accepted results across all shards, in commit
	// order — the logical clock chaos leader-kill triggers key on.
	acceptedTotal int

	doneOnce sync.Once
	allDone  chan struct{}
	// avail fires whenever a shard becomes placeable or the run completes
	// (result accepted, shard requeued): the coordinator's assign long-poll
	// re-asks on it instead of making workers retry on a timer.
	avail *pulse
}

func newLedgerFSM(cfg Config, plan []cluster.ShardRange) *ledgerFSM {
	f := &ledgerFSM{
		cfg:       cfg,
		plan:      plan,
		workers:   make(map[uint64]*workerState),
		remaining: len(plan),
		allDone:   make(chan struct{}),
		avail:     newPulse(),
	}
	for _, r := range plan {
		f.shards = append(f.shards, &shardState{
			r:          r,
			attempted:  make(map[uint64]bool),
			running:    make(map[uint64]bool),
			returnedBy: make(map[uint64]bool),
		})
	}
	return f
}

// Apply consumes one committed command. The reply is what the proposing
// handler sends back to the worker; error replies surface as StatusError.
// Apply is a pure function of (ledger state, command): map iteration never
// decides anything order-sensitive, and time is read from the command stamp,
// so replicas applying the same log converge on identical ledgers.
func (f *ledgerFSM) Apply(index uint64, cmd []byte) any {
	c, err := decodeCommand(cmd)
	if err != nil {
		return err
	}
	now := time.Unix(0, c.At)
	switch c.Kind {
	case cmdJoin:
		return f.join(now)
	case cmdAssign:
		return f.assign(c.Worker, now)
	case cmdResult:
		return f.result(c.Frame, now)
	case cmdHeartbeat:
		f.touch(c.Worker, now)
		f.reap(now)
		return resultReply{Done: f.remaining == 0}
	case cmdDrain:
		delete(f.workers, c.Worker)
		f.requeue(c.Worker)
		return resultReply{Done: f.remaining == 0}
	}
	return fmt.Errorf("fabric: unknown ledger command kind %d", c.Kind)
}

// join registers a new worker and hands it the run description.
func (f *ledgerFSM) join(now time.Time) JoinReply {
	f.nextID++
	id := f.nextID
	f.workers[id] = &workerState{id: id, lastBeat: now}
	spec := specOf(f.cfg.Opts)
	spec.Scenario = f.cfg.Scenario
	return JoinReply{
		WorkerID:    id,
		Fleet:       f.cfg.Fleet,
		Spec:        spec,
		Shards:      len(f.plan),
		HeartbeatMS: f.cfg.HeartbeatEvery.Milliseconds(),
	}
}

// assign places a shard on the asking worker: first a pending shard the
// worker has not attempted, then — when nothing is pending but shards are
// still out — a speculative copy of the slowest straggling shard.
func (f *ledgerFSM) assign(workerID uint64, now time.Time) AssignReply {
	f.touch(workerID, now)
	f.reap(now)

	if f.remaining == 0 {
		return AssignReply{Status: AssignDone}
	}
	// A worker the ledger already lists as executing a shard is re-asking
	// because its assign reply was lost (leader failover between commit and
	// response). Re-offer the same shard instead of parking it: a second
	// dispatch would strand the first copy until speculation rescues it.
	for i, sh := range f.shards {
		if sh.state == shardRunning && sh.running[workerID] {
			return AssignReply{Status: AssignShard, Shard: i, Lo: sh.r.Lo, Hi: sh.r.Hi}
		}
	}
	var pending []int
	for i, sh := range f.shards {
		if sh.state == shardPending {
			pending = append(pending, i)
		}
	}
	pick := cluster.PickShard(pending, func(s int) bool { return f.shards[s].attempted[workerID] })
	if pick < 0 {
		pick = f.straggler(workerID, now)
	}
	if pick < 0 {
		return AssignReply{Status: AssignWait}
	}
	sh := f.shards[pick]
	sh.state = shardRunning
	sh.attempted[workerID] = true
	sh.running[workerID] = true
	sh.dispatched++
	if sh.firstDispatch.IsZero() {
		sh.firstDispatch = now
	}
	sh.lastDispatch = now
	return AssignReply{Status: AssignShard, Shard: pick, Lo: sh.r.Lo, Hi: sh.r.Hi}
}

// straggler picks the running shard that has been out the longest, if it
// crossed the speculation threshold and this worker never attempted it.
func (f *ledgerFSM) straggler(workerID uint64, now time.Time) int {
	best := -1
	for i, sh := range f.shards {
		if sh.state != shardRunning || sh.attempted[workerID] {
			continue
		}
		if now.Sub(sh.lastDispatch) < f.cfg.SpeculateAfter {
			continue
		}
		if best < 0 || sh.firstDispatch.Before(f.shards[best].firstDispatch) {
			best = i
		}
	}
	return best
}

// result accounts one returned shard result. The first result per shard
// wins; later copies (from speculation or requeue races) are acknowledged
// but dropped, so every shard contributes to the merge at most once. A
// worker re-uploading a result it already delivered (retransmit after a
// leader failover ate the reply) is acknowledged without touching the
// ledger at all.
func (f *ledgerFSM) result(frame []byte, now time.Time) any {
	workerID, shardID, p, err := decodeResult(frame)
	if err != nil {
		return err
	}
	if shardID < 0 || shardID >= len(f.shards) {
		return fmt.Errorf("fabric: result for unknown shard %d", shardID)
	}
	f.touch(workerID, now)
	sh := f.shards[shardID]
	if p.Lo != sh.r.Lo || p.Hi != sh.r.Hi {
		return fmt.Errorf("fabric: shard %d result covers [%d,%d), plan says %v",
			shardID, p.Lo, p.Hi, sh.r)
	}
	if sh.returnedBy[workerID] {
		return resultReply{Accepted: false, Done: f.remaining == 0}
	}
	sh.returnedBy[workerID] = true
	sh.returned++
	delete(sh.running, workerID)
	if sh.state == shardDone {
		return resultReply{Accepted: false, Done: f.remaining == 0}
	}
	sh.state = shardDone
	sh.partial = p
	sh.accepted++
	f.acceptedTotal++
	f.remaining--
	if f.remaining == 0 {
		f.doneOnce.Do(func() { close(f.allDone) })
	}
	// An accepted result changes what the next assign answers (fewer shards
	// out, possibly done): wake any worker parked in an assign long-poll.
	f.avail.fire()
	return resultReply{Accepted: true, Done: f.remaining == 0}
}

func (f *ledgerFSM) touch(workerID uint64, now time.Time) {
	if w := f.workers[workerID]; w != nil {
		w.lastBeat = now
	}
}

// reap declares workers silent past the liveness timeout dead and requeues
// their shards. Liveness is evaluated on control-plane traffic (every assign
// and heartbeat), so a fleet with any live worker converges without a
// background timer — and, because the evaluation happens at apply time from
// command stamps, every replica reaps the same workers at the same log
// position. Requeues commute (each removes one worker from disjoint running
// sets), so map iteration order cannot diverge replicas.
func (f *ledgerFSM) reap(now time.Time) {
	for id, w := range f.workers {
		if now.Sub(w.lastBeat) > f.cfg.LivenessTimeout {
			delete(f.workers, id)
			f.requeue(id)
		}
	}
}

// requeue removes the worker from every running shard; shards left with no
// live executor return to pending (the worker stays in attempted, so the
// retry lands elsewhere when possible).
func (f *ledgerFSM) requeue(workerID uint64) {
	freed := false
	for _, sh := range f.shards {
		if sh.state != shardRunning || !sh.running[workerID] {
			continue
		}
		delete(sh.running, workerID)
		if len(sh.running) == 0 {
			sh.state = shardPending
			freed = true
		}
	}
	if freed {
		f.avail.fire() // a shard went back to pending: long-polls can place it
	}
}

// ledger snapshots the dispatch/result accounting. Caller must hold the
// Runner's lock (via Runner.Read).
func (f *ledgerFSM) ledger() *invariant.ShardLedger {
	l := &invariant.ShardLedger{
		Dispatched: make([]int, len(f.shards)),
		Returned:   make([]int, len(f.shards)),
		Accepted:   make([]int, len(f.shards)),
	}
	for i, sh := range f.shards {
		l.Dispatched[i] = sh.dispatched
		l.Returned[i] = sh.returned
		l.Accepted[i] = sh.accepted
	}
	return l
}
