package fabric

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/sketch"
	"ebslab/internal/testclock"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

func testFleetConfig() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.NodesPerDC = 6
	cfg.DCs = 1
	cfg.BSPerDC = 3
	cfg.BSPerCluster = 3
	cfg.Users = 8
	cfg.DurationSec = 10
	return cfg
}

func testOpts(stream *sketch.Set) ebs.Options {
	return ebs.Options{
		DurationSec: 6, TraceSampleEvery: 2, EventSampleEvery: 4,
		MaxVDs: 16, Workers: 2, Check: true, Stream: stream,
	}
}

// baseline runs the same options single-process and returns the dataset and
// sketch fingerprints the fabric must reproduce.
func baseline(t *testing.T) (string, string) {
	t.Helper()
	fleet, err := workload.Generate(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	ds, err := ebs.New(fleet).Run(context.Background(), testOpts(stream))
	if err != nil {
		t.Fatal(err)
	}
	return invariant.Fingerprint(ds), stream.Fingerprint()
}

// startFabric serves a coordinator over a loopback and returns both plus a
// cleanup-registered shutdown.
func startFabric(t *testing.T, cfg Config) (*Coordinator, *Loopback) {
	t.Helper()
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	srv := netblock.NewHandlerServer(co)
	go srv.Serve(lb) //nolint:errcheck — ends with the loopback
	t.Cleanup(func() {
		lb.Close()
		srv.Close()
	})
	return co, lb
}

// runFabric executes a full distributed run with n workers (worker i gets
// faultHook[i] if present) and returns the merged dataset plus each worker's
// exit error.
func runFabric(t *testing.T, co *Coordinator, lb *Loopback, n int, hooks map[int]func(int) error) (*trace.Dataset, []error) {
	t.Helper()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), WorkerConfig{
				Dial:      lb.Dial,
				FaultHook: hooks[i],
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ds, err := co.Wait(ctx)
	if err != nil {
		t.Fatalf("fabric run failed: %v", err)
	}
	wg.Wait()
	return ds, errs
}

// TestFabricMatchesSingleProcess is the tentpole's acceptance oracle: a
// 2-worker and a 4-worker loopback fabric must produce the byte-identical
// dataset (and sketch state) of a single-process run.
func TestFabricMatchesSingleProcess(t *testing.T) {
	wantDS, wantSK := baseline(t)
	for _, workers := range []int{2, 4} {
		stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
		co, lb := startFabric(t, Config{
			Fleet: testFleetConfig(), Opts: testOpts(stream), Shards: 5,
			HeartbeatEvery: 20 * time.Millisecond,
		})
		ds, errs := runFabric(t, co, lb, workers, nil)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d: worker %d exited: %v", workers, i, err)
			}
		}
		if got := invariant.Fingerprint(ds); got != wantDS {
			t.Fatalf("workers=%d: dataset fingerprint %s, single-process %s", workers, got, wantDS)
		}
		if got := stream.Fingerprint(); got != wantSK {
			t.Fatalf("workers=%d: sketch fingerprint drifted", workers)
		}
		if co.Workers() != 0 {
			t.Fatalf("workers=%d: %d workers still registered after completion", workers, co.Workers())
		}
	}
}

// TestFabricWorkerCrashMidShard kills one worker after it finished computing
// its shard but before uploading — the worst moment, since the work is lost
// but the dispatch is on the books. The survivor must inherit the shard via
// liveness reaping and the merged dataset must still match single-process.
func TestFabricWorkerCrashMidShard(t *testing.T) {
	wantDS, _ := baseline(t)
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	co, lb := startFabric(t, Config{
		Fleet: testFleetConfig(), Opts: testOpts(stream), Shards: 4,
		HeartbeatEvery:  10 * time.Millisecond,
		LivenessTimeout: 60 * time.Millisecond,
	})
	crash := errors.New("simulated worker crash")
	ds, errs := runFabric(t, co, lb, 2, map[int]func(int) error{
		1: func(shard int) error { return crash },
	})
	if !errors.Is(errs[1], crash) {
		t.Fatalf("crashing worker exited with %v, want the injected crash", errs[1])
	}
	if errs[0] != nil {
		t.Fatalf("surviving worker exited: %v", errs[0])
	}
	if got := invariant.Fingerprint(ds); got != wantDS {
		t.Fatalf("dataset fingerprint %s after crash, single-process %s", got, wantDS)
	}
	l := co.Ledger()
	redispatched := false
	for i := range l.Dispatched {
		if l.Dispatched[i] > 1 {
			redispatched = true
		}
		if l.Accepted[i] != 1 {
			t.Fatalf("shard %d accepted %d results", i, l.Accepted[i])
		}
	}
	if !redispatched {
		t.Fatal("no shard was ever re-dispatched; the crash exercised nothing")
	}
}

// fakeWorker drives the control plane directly (no RunWorker loop) so tests
// can sequence speculation and duplicate results deterministically.
type fakeWorker struct {
	t   *testing.T
	cl  *netblock.Client
	id  uint64
	sim *ebs.Sim
	opt ebs.Options
}

func newFakeWorker(t *testing.T, lb *Loopback) *fakeWorker {
	t.Helper()
	conn, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := netblock.NewClient(conn)
	t.Cleanup(func() { cl.Close() })
	raw, err := cl.Call(netblock.OpJoinFleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	var join JoinReply
	if err := fromJSON(raw, &join); err != nil {
		t.Fatal(err)
	}
	fleet, err := workload.Generate(join.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeWorker{t: t, cl: cl, id: join.WorkerID, sim: ebs.New(fleet), opt: join.Spec.options()}
}

func (w *fakeWorker) assign() AssignReply {
	w.t.Helper()
	raw, err := w.cl.Call(netblock.OpAssignShard, mustJSON(workerMsg{WorkerID: w.id}))
	if err != nil {
		w.t.Fatal(err)
	}
	var a AssignReply
	if err := fromJSON(raw, &a); err != nil {
		w.t.Fatal(err)
	}
	return a
}

func (w *fakeWorker) upload(a AssignReply) resultReply {
	w.t.Helper()
	p, err := w.sim.RunShard(context.Background(), w.opt, a.Lo, a.Hi)
	if err != nil {
		w.t.Fatal(err)
	}
	raw, err := w.cl.Call(netblock.OpShardResult, encodeResult(w.id, a.Shard, p))
	if err != nil {
		w.t.Fatal(err)
	}
	var rep resultReply
	if err := fromJSON(raw, &rep); err != nil {
		w.t.Fatal(err)
	}
	return rep
}

// TestFabricSpeculativeDuplicateDroppedOnce walks the straggler path end to
// end: shard 0 is dispatched to a slow worker, the speculation threshold
// passes, an idle worker gets a speculative copy of the SAME shard (on a
// different worker, per placement policy), both results come back, and
// exactly one is accepted.
func TestFabricSpeculativeDuplicateDroppedOnce(t *testing.T) {
	clock := testclock.AtUnix(1000)
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	opts := testOpts(stream)
	co, lb := startFabric(t, Config{
		Fleet: testFleetConfig(), Opts: opts, Shards: 2,
		SpeculateAfter:  time.Minute,
		LivenessTimeout: time.Hour, // liveness must not interfere here
		now:             clock.Now,
	})

	slow := newFakeWorker(t, lb)
	fast := newFakeWorker(t, lb)

	a0 := slow.assign()
	if a0.Status != AssignShard {
		t.Fatalf("slow worker got %q, want a shard", a0.Status)
	}
	a1 := fast.assign()
	if a1.Status != AssignShard || a1.Shard == a0.Shard {
		t.Fatalf("fast worker got %+v, want the other shard", a1)
	}
	if rep := fast.upload(a1); !rep.Accepted {
		t.Fatal("fast worker's own shard was rejected")
	}

	// Before the threshold: nothing placeable on the fast worker.
	if a := fast.assign(); a.Status != AssignWait {
		t.Fatalf("pre-threshold assign = %+v, want wait", a)
	}
	clock.Advance(2 * time.Minute)
	spec := fast.assign()
	if spec.Status != AssignShard || spec.Shard != a0.Shard {
		t.Fatalf("post-threshold assign = %+v, want speculative copy of shard %d", spec, a0.Shard)
	}

	// Both the straggler and the speculator finish: first result wins.
	if rep := slow.upload(a0); !rep.Accepted {
		t.Fatal("straggler's result (first to arrive) was rejected")
	}
	if rep := fast.upload(spec); rep.Accepted {
		t.Fatal("duplicate speculative result was accepted")
	}

	l := co.Ledger()
	if l.Dispatched[a0.Shard] != 2 || l.Returned[a0.Shard] != 2 || l.Accepted[a0.Shard] != 1 {
		t.Fatalf("speculated shard ledger d=%d r=%d a=%d, want 2/2/1",
			l.Dispatched[a0.Shard], l.Returned[a0.Shard], l.Accepted[a0.Shard])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantDS, wantSK := baseline(t)
	if got := invariant.Fingerprint(ds); got != wantDS {
		t.Fatalf("dataset fingerprint %s with duplicate, single-process %s", got, wantDS)
	}
	if stream.Fingerprint() != wantSK {
		t.Fatal("sketch fingerprint drifted through the duplicate path")
	}
}

// TestFabricDrainCompletesCurrentShard: a drain requested while a shard is
// in flight must let that shard finish and upload, then deregister the
// worker — its result is on the books, and the coordinator forgets it.
func TestFabricDrainCompletesCurrentShard(t *testing.T) {
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	co, lb := startFabric(t, Config{
		Fleet: testFleetConfig(), Opts: testOpts(stream), Shards: 3,
		HeartbeatEvery: 20 * time.Millisecond,
	})

	drain := make(chan struct{})
	var drainOnce sync.Once
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			Dial:  lb.Dial,
			Drain: drain,
			// The hook fires between simulation and upload: requesting the
			// drain here proves the in-flight shard still completes.
			FaultHook: func(shard int) error {
				drainOnce.Do(func() { close(drain) })
				return nil
			},
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("draining worker exited: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("draining worker never exited")
	}
	if co.Workers() != 0 {
		t.Fatalf("%d workers registered after drain, want 0", co.Workers())
	}
	l := co.Ledger()
	var accepted int
	for _, a := range l.Accepted {
		accepted += a
	}
	if accepted != 1 {
		t.Fatalf("drained worker left %d accepted shards, want exactly its in-flight 1", accepted)
	}
	if co.Done() {
		t.Fatal("run reported done with shards still unexecuted")
	}

	// A fresh worker finishes the rest; the run still converges.
	if _, errs := runFabric(t, co, lb, 1, nil); errs[0] != nil {
		t.Fatalf("second worker exited: %v", errs[0])
	}
}

// TestShardResultCodecRoundTrip pins the bulk frame: a populated partial
// survives the wire bit-exactly, and corrupted frames are rejected, never
// accepted partially.
func TestShardResultCodecRoundTrip(t *testing.T) {
	fleet, err := workload.Generate(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	p, err := ebs.New(fleet).RunShard(context.Background(), testOpts(stream), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.Audit = []string{"VD 3: demo finding"}
	frame := encodeResult(42, 7, p)
	workerID, shardID, got, err := decodeResult(frame)
	if err != nil {
		t.Fatal(err)
	}
	if workerID != 42 || shardID != 7 || got.Lo != 2 || got.Hi != 7 {
		t.Fatalf("frame identity drifted: worker=%d shard=%d range=[%d,%d)", workerID, shardID, got.Lo, got.Hi)
	}
	if len(got.Records) != len(p.Records) || len(got.Compute) != len(p.Compute) || len(got.Storage) != len(p.Storage) {
		t.Fatal("section lengths drifted")
	}
	for i := range p.Records {
		if got.Records[i] != p.Records[i] {
			t.Fatalf("record %d drifted", i)
		}
	}
	for i := range p.Compute {
		if got.Compute[i] != p.Compute[i] {
			t.Fatalf("compute row %d drifted", i)
		}
	}
	if got.Sketch == nil || got.Sketch.Fingerprint() != p.Sketch.Fingerprint() {
		t.Fatal("sketch state drifted")
	}
	if len(got.Emission) != len(p.Emission) || got.Emission[0] != p.Emission[0] {
		t.Fatal("emission slots drifted")
	}
	if len(got.Audit) != 1 || got.Audit[0] != p.Audit[0] {
		t.Fatal("audit strings drifted")
	}
	for cut := 0; cut < len(frame); cut += 97 {
		if _, _, _, err := decodeResult(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, _, _, err := decodeResult(append(frame, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
