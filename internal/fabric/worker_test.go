package fabric

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/sketch"
)

// TestFabricWorkerRetriesLostResultReply is the regression test for the
// silent-coordinator hang: the server executes the worker's first ShardResult
// but never answers (exactly what a leader dying between commit and reply
// looks like). The worker's call timeout must fire, the link must redial and
// retransmit, and the ledger must absorb the retransmit without
// double-counting — the run completes in bounded time instead of hanging
// until the liveness reaper forgets the worker.
func TestFabricWorkerRetriesLostResultReply(t *testing.T) {
	wantDS, _ := baseline(t)
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	co, err := NewCoordinator(Config{
		Fleet: testFleetConfig(), Opts: testOpts(stream), Shards: 3,
		HeartbeatEvery: 50 * time.Millisecond,
		// Liveness alone must NOT be what rescues the run: it is far longer
		// than the budget this test allows for completion.
		LivenessTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	srv := netblock.NewHandlerServer(co)
	var dropped atomic.Bool
	srv.SetFaultHook(func(req *netblock.Request) netblock.FaultDecision {
		if req.Op == netblock.OpShardResult && dropped.CompareAndSwap(false, true) {
			return netblock.FaultDecision{Fault: netblock.FaultDrop}
		}
		return netblock.FaultDecision{}
	})
	go srv.Serve(lb) //nolint:errcheck — ends with the loopback
	t.Cleanup(func() {
		lb.Close()
		srv.Close()
	})

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			Dial:        lb.Dial,
			CallTimeout: 300 * time.Millisecond,
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds, err := co.Wait(ctx)
	if err != nil {
		t.Fatalf("run never completed after the dropped reply: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker exited: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("run took %v: recovery rode the liveness reaper, not the call timeout", elapsed)
	}
	if !dropped.Load() {
		t.Fatal("fault hook never fired; the test exercised nothing")
	}
	if got := invariant.Fingerprint(ds); got != wantDS {
		t.Fatalf("dataset fingerprint %s after retransmit, single-process %s", got, wantDS)
	}
	// The retransmitted frame must have been acknowledged via the dedup path:
	// every shard returned exactly once despite two uploads of one of them.
	l := co.Ledger()
	for i := range l.Dispatched {
		if l.Dispatched[i] != 1 || l.Returned[i] != 1 || l.Accepted[i] != 1 {
			t.Fatalf("shard %d ledger d=%d r=%d a=%d, want 1/1/1",
				i, l.Dispatched[i], l.Returned[i], l.Accepted[i])
		}
	}
}

// TestFabricWorkerFailsFastWhenControlPlaneDies kills the whole control plane
// between AssignShard and ShardResult. Before the call-timeout fix the worker
// hung forever inside the upload; now it must give up within its failover
// window and surface an error promptly.
func TestFabricWorkerFailsFastWhenControlPlaneDies(t *testing.T) {
	co, err := NewCoordinator(Config{
		Fleet: testFleetConfig(), Opts: testOpts(nil), Shards: 2,
		HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	srv := netblock.NewHandlerServer(co)
	go srv.Serve(lb) //nolint:errcheck — ends with the loopback
	t.Cleanup(func() {
		lb.Close()
		srv.Close()
	})
	done := make(chan error, 1)
	var killedAt atomic.Int64
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			Dial:           lb.Dial,
			CallTimeout:    200 * time.Millisecond,
			FailoverWindow: 500 * time.Millisecond,
			// Fires after the shard simulation, before its upload: the worst
			// window, with work in hand and nobody left to give it to.
			FaultHook: func(shard int) error {
				killedAt.Store(time.Now().UnixNano())
				lb.Close()
				srv.Close()
				return nil
			},
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker exited cleanly with the control plane dead")
		}
		took := time.Since(time.Unix(0, killedAt.Load()))
		if took > 10*time.Second {
			t.Fatalf("worker needed %v to notice the dead control plane", took)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker hung on the dead control plane (the pre-fix behavior)")
	}
}
