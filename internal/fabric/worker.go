package fabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ebslab/internal/ebs"
	"ebslab/internal/netblock"
	"ebslab/internal/scenario"
	"ebslab/internal/workload"
)

// WorkerConfig describes one worker process.
type WorkerConfig struct {
	// Dial opens the control-plane connection to a single coordinator
	// (legacy single-replica form; equivalent to a one-element Dials).
	Dial func() (net.Conn, error)
	// Dials lists the control-plane endpoints of every coordinator replica,
	// indexed by replica ID. The worker follows leader redirects across them
	// and fails over to the next replica when a connection dies.
	Dials []func() (net.Conn, error)
	// Drain, when non-nil, asks the worker for an orderly exit: it finishes
	// (and uploads) the shard it is executing, deregisters with the
	// coordinator, and returns nil.
	Drain <-chan struct{}
	// WaitPoll is the retry interval when the coordinator has nothing
	// placeable for this worker (default 25ms).
	WaitPoll time.Duration
	// CallTimeout bounds each control-plane RPC (default 10s). A coordinator
	// connection that dies silently between AssignShard and ShardResult now
	// fails the call — and triggers failover — instead of hanging the worker
	// until the coordinator's liveness reaper forgets it.
	CallTimeout time.Duration
	// FailoverWindow bounds how long the worker hunts across replicas for a
	// live leader after a control-plane failure before giving up
	// (default 15s; spans a leader election comfortably).
	FailoverWindow time.Duration
	// FaultHook, when non-nil, is consulted after each shard's simulation
	// and before its result upload. Returning an error makes the worker die
	// on the spot — no upload, no drain — which is how tests and chaos
	// drills stage a mid-shard worker crash.
	FaultHook func(shard int) error
}

// ctrlLink is the worker's resilient control-plane connection: one live
// netblock client over whichever replica currently answers, swapped on
// redirect hints and transport failures. Calls are serialized — the shard
// loop and the heartbeat goroutine share the link — so a replica swap can
// never race an in-flight exchange.
type ctrlLink struct {
	dials   []func() (net.Conn, error)
	timeout time.Duration
	window  time.Duration

	mu  sync.Mutex
	cl  *netblock.Client
	cur int
}

func newCtrlLink(wc WorkerConfig) (*ctrlLink, error) {
	dials := wc.Dials
	if len(dials) == 0 && wc.Dial != nil {
		dials = []func() (net.Conn, error){wc.Dial}
	}
	if len(dials) == 0 {
		return nil, fmt.Errorf("fabric: worker needs Dial or Dials")
	}
	timeout := wc.CallTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	window := wc.FailoverWindow
	if window <= 0 {
		window = 15 * time.Second
	}
	return &ctrlLink{dials: dials, timeout: timeout, window: window}, nil
}

// dropLocked abandons the current client (the connection is dead or aimed
// at the wrong replica).
func (l *ctrlLink) dropLocked() {
	if l.cl != nil {
		l.cl.Close()
		l.cl = nil
	}
}

func (l *ctrlLink) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropLocked()
}

// call performs one control-plane RPC, redialing and failing over across
// replicas until it succeeds or the failover window closes. A StatusRedirect
// answer re-aims the link at the hinted leader; a transport failure advances
// round-robin to the next replica.
func (l *ctrlLink) call(ctx context.Context, op netblock.OpCode, payload []byte) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	deadline := time.Now().Add(l.window)
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if l.cl == nil {
			conn, err := l.dials[l.cur]()
			if err != nil {
				lastErr = err
				l.cur = (l.cur + 1) % len(l.dials)
			} else {
				l.cl = netblock.NewClientConfig(conn, netblock.Config{Timeout: l.timeout})
			}
		}
		if l.cl != nil {
			raw, err := l.cl.Call(op, payload)
			if err == nil {
				return raw, nil
			}
			lastErr = err
			var re *netblock.RedirectError
			if errors.As(err, &re) {
				// The replica answered but is not the leader. Follow a
				// usable hint; otherwise (mid-election) re-ask shortly —
				// any replica learns the outcome.
				if r, ok := decodeRedirect(re.Info); ok && r.Known &&
					r.Leader >= 0 && r.Leader < len(l.dials) && r.Leader != l.cur {
					l.dropLocked()
					l.cur = r.Leader
					continue
				}
			} else {
				l.dropLocked()
				l.cur = (l.cur + 1) % len(l.dials)
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fabric: control plane unreachable for %v: %w", l.window, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// RunWorker joins the coordinator's fleet, executes shards until the run
// completes (or ctx ends / Drain fires), and deregisters. The worker
// regenerates the fleet from the coordinator's recipe, so its shard results
// are bit-identical to the coordinator simulating the same VDs itself. With
// a replicated control plane (Dials), the worker transparently follows
// leader redirects and rides out a coordinator death mid-run.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	if wc.WaitPoll <= 0 {
		wc.WaitPoll = 25 * time.Millisecond
	}
	link, err := newCtrlLink(wc)
	if err != nil {
		return err
	}
	defer link.close()

	raw, err := link.call(ctx, netblock.OpJoinFleet, nil)
	if err != nil {
		return fmt.Errorf("fabric: join: %w", err)
	}
	var join JoinReply
	if err := fromJSON(raw, &join); err != nil {
		return err
	}
	fleet, err := workload.Generate(join.Fleet)
	if err != nil {
		return fmt.Errorf("fabric: worker fleet: %w", err)
	}
	sim := ebs.New(fleet)
	opts := join.Spec.options()
	if join.Spec.Scenario != "" {
		built, err := scenario.Build(join.Spec.Scenario)
		if err != nil {
			return fmt.Errorf("fabric: worker scenario: %w", err)
		}
		wl, err := built.Bind(fleet)
		if err != nil {
			return fmt.Errorf("fabric: worker scenario: %w", err)
		}
		opts.Scenario = wl
	}
	me := mustJSON(workerMsg{WorkerID: join.WorkerID})

	// Heartbeats ride their own goroutine so a long shard simulation cannot
	// starve liveness; the link serializes them against control calls.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		every := time.Duration(join.HeartbeatMS) * time.Millisecond
		if every <= 0 {
			every = 500 * time.Millisecond
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				link.call(hbCtx, netblock.OpHeartbeat, me) //nolint:errcheck — liveness is best-effort
			}
		}
	}()

	drainNow := func() error {
		if _, err := link.call(ctx, netblock.OpDrain, me); err != nil {
			return fmt.Errorf("fabric: drain: %w", err)
		}
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wc.Drain:
			return drainNow()
		default:
		}
		raw, err := link.call(ctx, netblock.OpAssignShard, me)
		if err != nil {
			return fmt.Errorf("fabric: assign: %w", err)
		}
		var a AssignReply
		if err := fromJSON(raw, &a); err != nil {
			return err
		}
		switch a.Status {
		case AssignDone:
			return drainNow()
		case AssignWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-wc.Drain:
				return drainNow()
			case <-time.After(wc.WaitPoll):
			}
		case AssignShard:
			p, err := sim.RunShard(ctx, opts, a.Lo, a.Hi)
			if err != nil {
				return fmt.Errorf("fabric: shard %d: %w", a.Shard, err)
			}
			if wc.FaultHook != nil {
				if err := wc.FaultHook(a.Shard); err != nil {
					return err // simulated crash: vanish without uploading
				}
			}
			// Frame buffers come from a pool: the call is synchronous, so the
			// buffer is free for the next shard the moment the upload returns.
			frameBuf := framePool.Get().(*[]byte)
			frame := encodeResultInto(*frameBuf, join.WorkerID, a.Shard, p)
			*frameBuf = frame
			if len(frame) > netblock.MaxShardResultPayload {
				framePool.Put(frameBuf)
				return fmt.Errorf("fabric: shard %d result is %d bytes, over the %d-byte wire cap: rerun with more shards (fewer VDs per shard)",
					a.Shard, len(frame), netblock.MaxShardResultPayload)
			}
			_, err = link.call(ctx, netblock.OpShardResult, frame)
			framePool.Put(frameBuf)
			if err != nil {
				return fmt.Errorf("fabric: upload shard %d: %w", a.Shard, err)
			}
			// An orderly drain completes the current shard first — which just
			// happened — so honor it before asking for more work.
			select {
			case <-wc.Drain:
				return drainNow()
			default:
			}
		default:
			return fmt.Errorf("%w: assign status %q", ErrWire, a.Status)
		}
	}
}
