package fabric

import (
	"context"
	"fmt"
	"net"
	"time"

	"ebslab/internal/ebs"
	"ebslab/internal/netblock"
	"ebslab/internal/workload"
)

// WorkerConfig describes one worker process.
type WorkerConfig struct {
	// Dial opens the control-plane connection to the coordinator.
	Dial func() (net.Conn, error)
	// Drain, when non-nil, asks the worker for an orderly exit: it finishes
	// (and uploads) the shard it is executing, deregisters with the
	// coordinator, and returns nil.
	Drain <-chan struct{}
	// WaitPoll is the retry interval when the coordinator has nothing
	// placeable for this worker (default 25ms).
	WaitPoll time.Duration
	// FaultHook, when non-nil, is consulted after each shard's simulation
	// and before its result upload. Returning an error makes the worker die
	// on the spot — no upload, no drain — which is how tests and chaos
	// drills stage a mid-shard worker crash.
	FaultHook func(shard int) error
}

// RunWorker joins the coordinator's fleet, executes shards until the run
// completes (or ctx ends / Drain fires), and deregisters. The worker
// regenerates the fleet from the coordinator's recipe, so its shard results
// are bit-identical to the coordinator simulating the same VDs itself.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	if wc.WaitPoll <= 0 {
		wc.WaitPoll = 25 * time.Millisecond
	}
	conn, err := wc.Dial()
	if err != nil {
		return fmt.Errorf("fabric: worker dial: %w", err)
	}
	cl := netblock.NewClient(conn)
	defer cl.Close()

	raw, err := cl.Call(netblock.OpJoinFleet, nil)
	if err != nil {
		return fmt.Errorf("fabric: join: %w", err)
	}
	var join JoinReply
	if err := fromJSON(raw, &join); err != nil {
		return err
	}
	fleet, err := workload.Generate(join.Fleet)
	if err != nil {
		return fmt.Errorf("fabric: worker fleet: %w", err)
	}
	sim := ebs.New(fleet)
	opts := join.Spec.options()
	me := mustJSON(workerMsg{WorkerID: join.WorkerID})

	// Heartbeats ride their own goroutine so a long shard simulation cannot
	// starve liveness; the pipelining client multiplexes both safely.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		every := time.Duration(join.HeartbeatMS) * time.Millisecond
		if every <= 0 {
			every = 500 * time.Millisecond
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				cl.Call(netblock.OpHeartbeat, me) //nolint:errcheck — liveness is best-effort
			}
		}
	}()

	drainNow := func() error {
		if _, err := cl.Call(netblock.OpDrain, me); err != nil {
			return fmt.Errorf("fabric: drain: %w", err)
		}
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wc.Drain:
			return drainNow()
		default:
		}
		raw, err := cl.Call(netblock.OpAssignShard, me)
		if err != nil {
			return fmt.Errorf("fabric: assign: %w", err)
		}
		var a AssignReply
		if err := fromJSON(raw, &a); err != nil {
			return err
		}
		switch a.Status {
		case AssignDone:
			return drainNow()
		case AssignWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-wc.Drain:
				return drainNow()
			case <-time.After(wc.WaitPoll):
			}
		case AssignShard:
			p, err := sim.RunShard(ctx, opts, a.Lo, a.Hi)
			if err != nil {
				return fmt.Errorf("fabric: shard %d: %w", a.Shard, err)
			}
			if wc.FaultHook != nil {
				if err := wc.FaultHook(a.Shard); err != nil {
					return err // simulated crash: vanish without uploading
				}
			}
			// Frame buffers come from a pool: Call is synchronous, so the
			// buffer is free for the next shard the moment the upload returns.
			frameBuf := framePool.Get().(*[]byte)
			frame := encodeResultInto(*frameBuf, join.WorkerID, a.Shard, p)
			*frameBuf = frame
			if len(frame) > netblock.MaxShardResultPayload {
				framePool.Put(frameBuf)
				return fmt.Errorf("fabric: shard %d result is %d bytes, over the %d-byte wire cap: rerun with more shards (fewer VDs per shard)",
					a.Shard, len(frame), netblock.MaxShardResultPayload)
			}
			_, err = cl.Call(netblock.OpShardResult, frame)
			framePool.Put(frameBuf)
			if err != nil {
				return fmt.Errorf("fabric: upload shard %d: %w", a.Shard, err)
			}
			// An orderly drain completes the current shard first — which just
			// happened — so honor it before asking for more work.
			select {
			case <-wc.Drain:
				return drainNow()
			default:
			}
		default:
			return fmt.Errorf("%w: assign status %q", ErrWire, a.Status)
		}
	}
}
