package fabric

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ebslab/internal/cluster"
	"ebslab/internal/ebs"
	"ebslab/internal/testclock"
	"ebslab/internal/workload"
)

// TestLedgerCommandCodecRoundTrip pins the replicated command frame.
func TestLedgerCommandCodecRoundTrip(t *testing.T) {
	cases := []command{
		{Kind: cmdJoin, At: 12345},
		{Kind: cmdAssign, Worker: 7, At: -9},
		{Kind: cmdResult, Worker: 2, At: 1e9, Frame: []byte{1, 2, 3, 4}},
		{Kind: cmdHeartbeat, Worker: ^uint64(0), At: 0},
		{Kind: cmdDrain, Worker: 1, At: 77},
	}
	for _, want := range cases {
		got, err := decodeCommand(encodeCommand(&want))
		if err != nil {
			t.Fatalf("kind %d: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Worker != want.Worker || got.At != want.At ||
			string(got.Frame) != string(want.Frame) {
			t.Fatalf("kind %d round-trip drifted: %+v != %+v", want.Kind, got, want)
		}
	}
	if _, err := decodeCommand(nil); err == nil {
		t.Fatal("empty command decoded")
	}
	if _, err := decodeCommand([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("kind 0 accepted")
	}
	frame := encodeCommand(&command{Kind: cmdJoin})
	if _, err := decodeCommand(append(frame, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := decodeCommand(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

// TestLedgerFSMDeterministicReplay is the replication soundness test: two FSM
// instances fed the identical committed command sequence — including liveness
// reaping triggered purely by command timestamps and a duplicate result — must
// emit identical replies at every step and converge on identical ledgers.
// This is the property that lets a follower take over mid-run: its ledger IS
// the leader's ledger.
func TestLedgerFSMDeterministicReplay(t *testing.T) {
	cfg := Config{
		Fleet: testFleetConfig(), Opts: testOpts(nil), Shards: 3,
		LivenessTimeout: time.Second,
	}.withDefaults()
	fleet, err := workload.Generate(cfg.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	plan := cluster.PlanShards(planVDs(fleet, cfg.Opts), cfg.Shards)
	if len(plan) != 3 {
		t.Fatalf("planned %d shards, want 3", len(plan))
	}
	sim := ebs.New(fleet)
	partialFrame := func(worker uint64, shard int) []byte {
		p, err := sim.RunShard(context.Background(), testOpts(nil), plan[shard].Lo, plan[shard].Hi)
		if err != nil {
			t.Fatal(err)
		}
		return encodeResult(worker, shard, p)
	}

	clock := testclock.AtUnix(50)
	at := func() int64 { return clock.Now().UnixNano() }
	// The script: two workers join; worker 1 takes a shard and goes silent;
	// worker 2 works through everything, a liveness reap rescuing worker 1's
	// shard; worker 1's zombie result for the reaped shard arrives late and is
	// dropped; worker 2 drains.
	var script [][]byte
	step := func(c command) { script = append(script, encodeCommand(&c)) }
	step(command{Kind: cmdJoin, At: at()})                     // worker 1
	step(command{Kind: cmdJoin, At: at()})                     // worker 2
	step(command{Kind: cmdAssign, Worker: 1, At: at()})        // w1 takes shard A
	step(command{Kind: cmdAssign, Worker: 2, At: at()})        // w2 takes shard B
	step(command{Kind: cmdResult, Worker: 2, At: at(), Frame: partialFrame(2, 1)})
	clock.Advance(2 * time.Second)                             // w1 silent past liveness
	step(command{Kind: cmdAssign, Worker: 2, At: at()})        // reaps w1, w2 inherits A
	step(command{Kind: cmdResult, Worker: 2, At: at(), Frame: partialFrame(2, 0)})
	step(command{Kind: cmdResult, Worker: 1, At: at(), Frame: partialFrame(1, 0)}) // zombie dup
	step(command{Kind: cmdAssign, Worker: 2, At: at()})        // w2 takes the last shard
	step(command{Kind: cmdResult, Worker: 2, At: at(), Frame: partialFrame(2, 2)})
	step(command{Kind: cmdHeartbeat, Worker: 2, At: at()})
	step(command{Kind: cmdDrain, Worker: 2, At: at()})

	a, b := newLedgerFSM(cfg, plan), newLedgerFSM(cfg, plan)
	for i, cmd := range script {
		ra, rb := a.Apply(uint64(i+1), cmd), b.Apply(uint64(i+1), cmd)
		if !reflect.DeepEqual(describeReply(ra), describeReply(rb)) {
			t.Fatalf("step %d: replies diverged: %#v != %#v", i, ra, rb)
		}
	}
	if !reflect.DeepEqual(a.ledger(), b.ledger()) {
		t.Fatalf("ledgers diverged:\n%+v\n%+v", a.ledger(), b.ledger())
	}
	if len(a.workers) != 0 || len(b.workers) != 0 {
		t.Fatalf("workers left registered: %d and %d, want 0", len(a.workers), len(b.workers))
	}
	if a.remaining != 0 || b.remaining != 0 {
		t.Fatalf("remaining %d and %d, want 0", a.remaining, b.remaining)
	}
	l := a.ledger()
	for i := range l.Accepted {
		if l.Accepted[i] != 1 {
			t.Fatalf("shard %d accepted %d results, want 1", i, l.Accepted[i])
		}
	}
	// The reaped shard was dispatched twice and — via the zombie — returned twice.
	if l.Dispatched[0] != 2 || l.Returned[0] != 2 {
		t.Fatalf("reaped shard d=%d r=%d, want 2/2", l.Dispatched[0], l.Returned[0])
	}
}

// describeReply normalizes an Apply reply for cross-replica comparison:
// errors compare by message, everything else by value.
func describeReply(r any) any {
	if err, ok := r.(error); ok {
		return "error: " + err.Error()
	}
	return r
}

// planVDs mirrors NewCoordinator's shard-plan sizing: the fleet's VD count
// clamped by Options.MaxVDs.
func planVDs(fleet *workload.Fleet, opts ebs.Options) int {
	n := len(fleet.Topology.VDs)
	if opts.MaxVDs > 0 && opts.MaxVDs < n {
		n = opts.MaxVDs
	}
	return n
}

// TestLedgerFSMRetransmitAcknowledgedOnce covers the lost-reply window: a
// worker whose accepted result got no answer (leader died post-commit)
// re-uploads the identical frame; the ledger must acknowledge without
// double-counting, and a re-asked assign must re-offer the shard a worker is
// already running rather than dispatching a second copy.
func TestLedgerFSMRetransmitAcknowledgedOnce(t *testing.T) {
	cfg := Config{
		Fleet: testFleetConfig(), Opts: testOpts(nil), Shards: 2,
		LivenessTimeout: time.Hour,
	}.withDefaults()
	fleet, err := workload.Generate(cfg.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	plan := cluster.PlanShards(planVDs(fleet, cfg.Opts), cfg.Shards)
	f := newLedgerFSM(cfg, plan)
	at := time.Unix(50, 0).UnixNano()

	f.Apply(1, encodeCommand(&command{Kind: cmdJoin, At: at}))
	first := f.Apply(2, encodeCommand(&command{Kind: cmdAssign, Worker: 1, At: at})).(AssignReply)
	if first.Status != AssignShard {
		t.Fatalf("assign = %+v, want a shard", first)
	}
	// Lost assign reply: the worker re-asks and must get the SAME shard back,
	// with no extra dispatch on the books.
	again := f.Apply(3, encodeCommand(&command{Kind: cmdAssign, Worker: 1, At: at})).(AssignReply)
	if again.Status != AssignShard || again.Shard != first.Shard {
		t.Fatalf("re-ask = %+v, want shard %d again", again, first.Shard)
	}
	if d := f.ledger().Dispatched[first.Shard]; d != 1 {
		t.Fatalf("re-offered shard dispatched %d times, want 1", d)
	}

	p, err := ebs.New(fleet).RunShard(context.Background(), testOpts(nil), plan[first.Shard].Lo, plan[first.Shard].Hi)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeResult(1, first.Shard, p)
	r1 := f.Apply(4, encodeCommand(&command{Kind: cmdResult, Worker: 1, At: at, Frame: frame})).(resultReply)
	if !r1.Accepted {
		t.Fatal("first upload rejected")
	}
	// Lost result reply: the retransmit is acknowledged but changes nothing.
	r2 := f.Apply(5, encodeCommand(&command{Kind: cmdResult, Worker: 1, At: at, Frame: frame})).(resultReply)
	if r2.Accepted {
		t.Fatal("retransmitted result accepted twice")
	}
	l := f.ledger()
	if l.Dispatched[first.Shard] != 1 || l.Returned[first.Shard] != 1 || l.Accepted[first.Shard] != 1 {
		t.Fatalf("retransmit leaked into the ledger: d=%d r=%d a=%d, want 1/1/1",
			l.Dispatched[first.Shard], l.Returned[first.Shard], l.Accepted[first.Shard])
	}
}
