package fabric

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ebslab/internal/chaos"
	"ebslab/internal/consensus"
	"ebslab/internal/invariant"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden leader-kill fixture under testdata")

// replicaConfig is the fixed replicated-control-plane setup the leader-kill
// tests share: 3 replicas, 5 shards, fast ticks so elections finish in tens
// of milliseconds, and a liveness timeout generously above the election time
// so workers are not spuriously reaped while the control plane is headless.
func replicaConfig(stream *sketch.Set, kills int) Config {
	opts := testOpts(stream)
	opts.Chaos = &chaos.Plan{LeaderKills: kills, Recoverable: true}
	return Config{
		Fleet: testFleetConfig(), Opts: opts, Shards: 5,
		HeartbeatEvery:  20 * time.Millisecond,
		LivenessTimeout: 2 * time.Second,
		TickEvery:       2 * time.Millisecond,
	}
}

// runReplicated drives a full distributed run over a replica set with n
// workers that dial every replica and follow leader redirects.
func runReplicated(t *testing.T, rs *ReplicaSet, n int) *trace.Dataset {
	t.Helper()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), WorkerConfig{
				Dials:          rs.Dials(),
				CallTimeout:    2 * time.Second,
				FailoverWindow: 20 * time.Second,
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ds, err := rs.Wait(ctx)
	if err != nil {
		t.Fatalf("replicated run failed: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d exited: %v", i, err)
		}
	}
	return ds
}

// TestReplicaSetMatchesSingleProcess: with no chaos at all, a 3-replica
// control plane must be invisible — same dataset, same sketches as one
// process, with every mutation having travelled the consensus log.
func TestReplicaSetMatchesSingleProcess(t *testing.T) {
	wantDS, wantSK := baseline(t)
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	cfg := replicaConfig(stream, 0)
	cfg.Opts.Chaos = nil
	rs, err := NewReplicaSet(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	ds := runReplicated(t, rs, 2)
	if got := invariant.Fingerprint(ds); got != wantDS {
		t.Fatalf("dataset fingerprint %s via replicated control plane, single-process %s", got, wantDS)
	}
	if stream.Fingerprint() != wantSK {
		t.Fatal("sketch fingerprint drifted through the replicated control plane")
	}
	tr := rs.Transitions()
	if len(tr) != 1 || tr[0].Term != 1 || tr[0].Leader != 0 {
		t.Fatalf("fault-free run saw transitions %+v, want the bootstrap leader only", tr)
	}
	if rs.KillsExecuted() != 0 {
		t.Fatalf("%d kills executed with no chaos plan", rs.KillsExecuted())
	}
}

type leaderKillGolden struct {
	// ScheduleFP pins the expanded chaos schedule (kill positions included).
	ScheduleFP string
	// DatasetFP is the merged dataset fingerprint — equal, by construction,
	// to the fault-free single-process fingerprint.
	DatasetFP string
	// Transitions is the leadership history, "term=T leader=L" per entry.
	Transitions []string
	// Kills is how many leader-kill windows actually fired.
	Kills int
}

func leaderKillGoldenPath() string {
	return filepath.Join("testdata", "golden", "leaderkill.json")
}

// TestReplicaSetLeaderKillGolden is the tentpole acceptance test: the chaos
// plan kills the coordinator leader mid-run, a successor is elected, workers
// fail over through redirects, and the run completes with the dataset
// byte-identical to a fault-free single-process run. The schedule, the
// leadership-transition log, and the dataset fingerprint are pinned to a
// golden fixture; regenerate after an intentional change with
//
//	go test ./internal/fabric -run TestReplicaSetLeaderKillGolden -update
func TestReplicaSetLeaderKillGolden(t *testing.T) {
	wantDS, wantSK := baseline(t)
	stream := sketch.NewSet(sketch.Config{TopK: 8, SegPerVD: 4})
	rs, err := NewReplicaSet(replicaConfig(stream, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	if rs.Schedule() == nil || len(rs.Schedule().LeaderKills) != 1 {
		t.Fatalf("plan expanded to %+v, want exactly one kill window", rs.Schedule())
	}

	ds := runReplicated(t, rs, 2)

	// The hard guarantee first, independent of the fixture: a leader died and
	// the dataset is still the fault-free one, bit for bit.
	if rs.KillsExecuted() != 1 {
		t.Fatalf("%d leader kills executed, want 1", rs.KillsExecuted())
	}
	got := leaderKillGolden{
		ScheduleFP: rs.Schedule().Fingerprint(),
		DatasetFP:  invariant.Fingerprint(ds),
		Kills:      rs.KillsExecuted(),
	}
	if got.DatasetFP != wantDS {
		t.Fatalf("dataset fingerprint %s after leader kill, fault-free single-process %s", got.DatasetFP, wantDS)
	}
	if stream.Fingerprint() != wantSK {
		t.Fatal("sketch fingerprint drifted through the leader kill")
	}
	for _, tr := range rs.Transitions() {
		got.Transitions = append(got.Transitions, fmt.Sprintf("term=%d leader=%d", tr.Term, tr.Leader))
	}
	if len(got.Transitions) < 2 {
		t.Fatalf("leadership log %v never shows a succession; the kill exercised nothing", got.Transitions)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(leaderKillGoldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(leaderKillGoldenPath(), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden leader-kill fixture updated: %s", leaderKillGoldenPath())
		return
	}
	blob, err := os.ReadFile(leaderKillGoldenPath())
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to create): %v", err)
	}
	var want leaderKillGolden
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("golden fixture corrupt: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("leader-kill scenario drifted from the golden fixture.\n got: %+v\nwant: %+v\n(after an intentional change: go test ./internal/fabric -run TestReplicaSetLeaderKillGolden -update)", got, want)
	}
}

// TestCoordinatorRejectsBadReplicaConfig pins the construction-time guards.
func TestCoordinatorRejectsBadReplicaConfig(t *testing.T) {
	base := Config{Fleet: testFleetConfig(), Opts: testOpts(nil), Shards: 2}
	bad := base
	bad.Replicas = 3
	if _, err := NewCoordinator(bad); err == nil {
		t.Fatal("3 replicas without a transport accepted")
	}
	bad = base
	bad.Replicas = 3
	bad.ReplicaID = 3
	bad.Transport = noopTransport{}
	if _, err := NewCoordinator(bad); err == nil {
		t.Fatal("replica ID outside the set accepted")
	}
	if _, err := NewReplicaSet(base, 0); err == nil {
		t.Fatal("0-replica set accepted")
	}
}

type noopTransport struct{}

func (noopTransport) Send(consensus.Message) {}
