package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"ebslab/internal/chaos"
	"ebslab/internal/cluster"
	"ebslab/internal/ebs"
	"ebslab/internal/invariant"
	"ebslab/internal/sketch"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// ErrWire reports a malformed fabric message.
var ErrWire = errors.New("fabric: malformed message")

// RunSpec is the serializable description of a distributed run: everything a
// worker needs to regenerate the fleet and execute shards byte-identically
// to the coordinator's own single-process run. Fields mirror ebs.Options;
// Stream carries the sketch configuration (nil = no streaming) because a
// live *sketch.Set cannot cross the wire — each worker builds its own
// destination set from the config.
type RunSpec struct {
	DurationSec      int
	TraceSampleEvery int
	EventSampleEvery int
	MaxVDs           int
	Workers          int
	DisableThrottle  bool
	Check            bool
	Seed             int64
	Chaos            *chaos.Plan    `json:",omitempty"`
	Stream           *sketch.Config `json:",omitempty"`
	// Scenario is the scenario spec string ("" = the fleet's native
	// traffic). A live scenario.Workload cannot cross the wire — it is bound
	// to a fleet instance — so workers rebuild from the spec and bind the
	// result to their own regenerated fleet, which the scenario determinism
	// contract makes bit-identical to any other binding of the same recipe.
	Scenario string `json:",omitempty"`
}

// specOf projects the serializable subset of opts. Callback and destination
// fields (Progress, ChaosStats, Latency) stay coordinator-side; a non-nil
// Stream is reduced to its configuration.
func specOf(opts ebs.Options) RunSpec {
	spec := RunSpec{
		DurationSec:      opts.DurationSec,
		TraceSampleEvery: opts.TraceSampleEvery,
		EventSampleEvery: opts.EventSampleEvery,
		MaxVDs:           opts.MaxVDs,
		Workers:          opts.Workers,
		DisableThrottle:  opts.DisableThrottle,
		Check:            opts.Check,
		Seed:             opts.Seed,
		Chaos:            opts.Chaos,
	}
	if opts.Stream != nil {
		cfg := opts.Stream.Config()
		spec.Stream = &cfg
	}
	return spec
}

// options reconstitutes executable run options from the spec.
func (r RunSpec) options() ebs.Options {
	opts := ebs.Options{
		DurationSec:      r.DurationSec,
		TraceSampleEvery: r.TraceSampleEvery,
		EventSampleEvery: r.EventSampleEvery,
		MaxVDs:           r.MaxVDs,
		Workers:          r.Workers,
		DisableThrottle:  r.DisableThrottle,
		Check:            r.Check,
		Seed:             r.Seed,
		Chaos:            r.Chaos,
	}
	if r.Stream != nil {
		opts.Stream = sketch.NewSet(*r.Stream)
	}
	return opts
}

// JoinReply answers a worker's JoinFleet: its assigned identity plus the full
// run description. The worker regenerates the fleet from the config — the
// generator is deterministic, so shipping the recipe instead of the topology
// keeps the join payload small and the worker's view bit-identical.
type JoinReply struct {
	WorkerID    uint64
	Fleet       workload.Config
	Spec        RunSpec
	Shards      int
	HeartbeatMS int64
}

// Assignment statuses.
const (
	// AssignShard hands the worker a shard to execute.
	AssignShard = "shard"
	// AssignWait means nothing is placeable on this worker right now (it
	// already attempted every pending shard); poll again shortly.
	AssignWait = "wait"
	// AssignDone means every shard is accounted for; the worker may leave.
	AssignDone = "done"
)

// workerMsg is the generic worker-identified request body (AssignShard,
// Heartbeat, Drain).
type workerMsg struct {
	WorkerID uint64
}

// AssignReply answers AssignShard.
type AssignReply struct {
	Status string
	Shard  int
	Lo, Hi int
}

// resultReply answers ShardResult. Accepted is false when at-most-once
// accounting dropped the result as a duplicate.
type resultReply struct {
	Accepted bool
	Done     bool
}

// RedirectReply is the payload of a StatusRedirect response (and of the
// OpRedirectLeader query): the answering replica's best knowledge of who
// leads the control plane. Known is false mid-election; Addr is set when the
// replica was configured with peer addresses.
type RedirectReply struct {
	Leader int
	Addr   string `json:",omitempty"`
	Known  bool
}

// decodeRedirect parses a redirect payload, tolerating malformed hints (a
// worker falls back to round-robin probing when ok is false).
func decodeRedirect(info []byte) (r RedirectReply, ok bool) {
	if err := fromJSON(info, &r); err != nil {
		return RedirectReply{}, false
	}
	return r, true
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fabric: marshal %T: %v", v, err))
	}
	return b
}

func fromJSON(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: %v", ErrWire, err)
	}
	return nil
}

// --- ShardResult binary codec ---------------------------------------------
//
// The result frame is the fabric's bulk path: a whole shard's sampled trace
// records, metric rows, sketch state, and accounting. Floats travel as raw
// IEEE bits so the coordinator merges exactly the values the worker
// computed — a lossy text encoding here would break the byte-identical
// dataset guarantee.
//
//	frame: u64 workerID | u32 shardID | partial
//	partial: u32 lo | u32 hi
//	       | u32 nRec  | nRec  * record
//	       | u32 nComp | nComp * metricRow
//	       | u32 nStor | nStor * metricRow
//	       | u8 hasSketch [| u32 len | sketch.Set binary]
//	       | chaos: u64 faultedIOs | u64 stormIOs
//	       | u32 nEmit | nEmit * (5 * u64)
//	       | u32 nAudit | nAudit * (u32 len | bytes)

const (
	recordWire    = 8 + 8 + 1 + 4 + 8 + 8*4 + 1 + 4*int(trace.NumStages)
	metricRowWire = 1 + 4 + 8*4 + 1 + 4*8
	emissionWire  = 5 * 8
)

type wireWriter struct{ b []byte }

func (w *wireWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wireWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wireWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wireWriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *wireWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *wireWriter) f32(v float32) {
	w.u32(math.Float32bits(v))
}
func (w *wireWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}

type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrWire
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.b)-r.off < n {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *wireReader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *wireReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *wireReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *wireReader) i32() int32     { return int32(r.u32()) }
func (r *wireReader) i64() int64     { return int64(r.u64()) }
func (r *wireReader) f32() float32   { return math.Float32frombits(r.u32()) }
func (r *wireReader) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *wireReader) remaining() int { return len(r.b) - r.off }

// count reads a u32 element count and pre-validates it against the bytes
// actually remaining, so a hostile header cannot size an allocation.
func (r *wireReader) count(elemSize int) int {
	n := int(r.u32())
	if r.err == nil && (n < 0 || elemSize > 0 && n > r.remaining()/elemSize) {
		r.fail()
	}
	if r.err != nil {
		return 0
	}
	return n
}

func appendRecord(w *wireWriter, rec *trace.Record) {
	w.u64(rec.TraceID)
	w.i64(rec.TimeUS)
	w.u8(uint8(rec.Op))
	w.i32(rec.Size)
	w.i64(rec.Offset)
	w.i32(int32(rec.DC))
	w.i32(int32(rec.Node))
	w.i32(int32(rec.User))
	w.i32(int32(rec.VM))
	w.i32(int32(rec.VD))
	w.i32(int32(rec.QP))
	w.u8(uint8(rec.WT))
	w.i32(int32(rec.Storage))
	w.i32(int32(rec.Segment))
	for _, l := range rec.Latency {
		w.f32(l)
	}
}

func readRecord(r *wireReader) trace.Record {
	var rec trace.Record
	rec.TraceID = r.u64()
	rec.TimeUS = r.i64()
	rec.Op = trace.Op(r.u8())
	rec.Size = r.i32()
	rec.Offset = r.i64()
	rec.DC = cluster.DCID(r.i32())
	rec.Node = cluster.NodeID(r.i32())
	rec.User = cluster.UserID(r.i32())
	rec.VM = cluster.VMID(r.i32())
	rec.VD = cluster.VDID(r.i32())
	rec.QP = cluster.QPID(r.i32())
	rec.WT = int8(r.u8())
	rec.Storage = cluster.StorageNodeID(r.i32())
	rec.Segment = cluster.SegmentID(r.i32())
	for i := range rec.Latency {
		rec.Latency[i] = r.f32()
	}
	if rec.Op > trace.OpWrite {
		r.fail()
	}
	return rec
}

func appendMetricRow(w *wireWriter, row *trace.MetricRow) {
	w.u8(uint8(row.Domain))
	w.i32(row.Sec)
	w.i32(int32(row.DC))
	w.i32(int32(row.User))
	w.i32(int32(row.VM))
	w.i32(int32(row.VD))
	w.i32(int32(row.Node))
	w.i32(int32(row.QP))
	w.u8(uint8(row.WT))
	w.i32(int32(row.Storage))
	w.i32(int32(row.Segment))
	w.f64(row.ReadBps)
	w.f64(row.WriteBps)
	w.f64(row.ReadIOPS)
	w.f64(row.WriteIOPS)
}

func readMetricRow(r *wireReader) trace.MetricRow {
	var row trace.MetricRow
	row.Domain = trace.Domain(r.u8())
	row.Sec = r.i32()
	row.DC = cluster.DCID(r.i32())
	row.User = cluster.UserID(r.i32())
	row.VM = cluster.VMID(r.i32())
	row.VD = cluster.VDID(r.i32())
	row.Node = cluster.NodeID(r.i32())
	row.QP = cluster.QPID(r.i32())
	row.WT = int8(r.u8())
	row.Storage = cluster.StorageNodeID(r.i32())
	row.Segment = cluster.SegmentID(r.i32())
	row.ReadBps = r.f64()
	row.WriteBps = r.f64()
	row.ReadIOPS = r.f64()
	row.WriteIOPS = r.f64()
	if row.Domain > trace.DomainStorage {
		r.fail()
	}
	return row
}

// framePool recycles shard-result frame buffers. netblock.Client.Call is
// synchronous — the frame is fully written before Call returns — so a worker
// can hand the buffer back as soon as the upload call completes.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// encodeResult frames one shard result for the wire.
func encodeResult(workerID uint64, shardID int, p *ebs.ShardPartial) []byte {
	return encodeResultInto(nil, workerID, shardID, p)
}

// encodeResultInto is encodeResult appending into buf (grown as needed),
// letting callers reuse frame memory across shards.
func encodeResultInto(buf []byte, workerID uint64, shardID int, p *ebs.ShardPartial) []byte {
	need := 16 + len(p.Records)*recordWire + (len(p.Compute)+len(p.Storage))*metricRowWire
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	w := &wireWriter{b: buf[:0]}
	w.u64(workerID)
	w.u32(uint32(shardID))
	w.u32(uint32(p.Lo))
	w.u32(uint32(p.Hi))
	w.u32(uint32(len(p.Records)))
	for i := range p.Records {
		appendRecord(w, &p.Records[i])
	}
	w.u32(uint32(len(p.Compute)))
	for i := range p.Compute {
		appendMetricRow(w, &p.Compute[i])
	}
	w.u32(uint32(len(p.Storage)))
	for i := range p.Storage {
		appendMetricRow(w, &p.Storage[i])
	}
	if p.Sketch != nil {
		w.u8(1)
		enc := p.Sketch.EncodeBinary()
		w.u32(uint32(len(enc)))
		w.b = append(w.b, enc...)
	} else {
		w.u8(0)
	}
	w.i64(p.Chaos.FaultedIOs)
	w.i64(p.Chaos.StormIOs)
	w.u32(uint32(len(p.Emission)))
	for i := range p.Emission {
		e := &p.Emission[i]
		w.i64(e.Events)
		w.i64(e.ReadOps)
		w.i64(e.WriteOps)
		w.i64(e.ReadBytes)
		w.i64(e.WriteBytes)
	}
	w.u32(uint32(len(p.Audit)))
	for _, s := range p.Audit {
		w.u32(uint32(len(s)))
		w.b = append(w.b, s...)
	}
	return w.b
}

// decodeResult parses one shard-result frame. Every section length is
// validated against the bytes actually present before allocation, and
// trailing bytes are rejected: a frame either decodes completely or not at
// all.
func decodeResult(data []byte) (workerID uint64, shardID int, p *ebs.ShardPartial, err error) {
	r := &wireReader{b: data}
	workerID = r.u64()
	shardID = int(r.u32())
	p = &ebs.ShardPartial{}
	p.Lo = int(r.u32())
	p.Hi = int(r.u32())
	if n := r.count(recordWire); n > 0 {
		p.Records = make([]trace.Record, n)
		for i := range p.Records {
			p.Records[i] = readRecord(r)
		}
	}
	if n := r.count(metricRowWire); n > 0 {
		p.Compute = make([]trace.MetricRow, n)
		for i := range p.Compute {
			p.Compute[i] = readMetricRow(r)
		}
	}
	if n := r.count(metricRowWire); n > 0 {
		p.Storage = make([]trace.MetricRow, n)
		for i := range p.Storage {
			p.Storage[i] = readMetricRow(r)
		}
	}
	switch r.u8() {
	case 0:
	case 1:
		enc := r.take(r.count(1))
		if r.err == nil {
			set, serr := sketch.DecodeSet(enc)
			if serr != nil {
				return 0, 0, nil, fmt.Errorf("%w: sketch: %v", ErrWire, serr)
			}
			p.Sketch = set
		}
	default:
		r.fail()
	}
	p.Chaos.FaultedIOs = r.i64()
	p.Chaos.StormIOs = r.i64()
	if n := r.count(emissionWire); n > 0 {
		p.Emission = make([]invariant.VDEmission, n)
		for i := range p.Emission {
			e := &p.Emission[i]
			e.Events = r.i64()
			e.ReadOps = r.i64()
			e.WriteOps = r.i64()
			e.ReadBytes = r.i64()
			e.WriteBytes = r.i64()
		}
	}
	if n := r.count(4); n > 0 {
		p.Audit = make([]string, n)
		for i := range p.Audit {
			p.Audit[i] = string(r.take(r.count(1)))
		}
	}
	if r.err == nil && r.remaining() != 0 {
		r.fail()
	}
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	if p.Lo < 0 || p.Hi < p.Lo {
		return 0, 0, nil, fmt.Errorf("%w: shard range [%d,%d)", ErrWire, p.Lo, p.Hi)
	}
	return workerID, shardID, p, nil
}
