package fabric

import (
	"net"
	"sync"
)

// Loopback is an in-process net.Listener whose connections are net.Pipe
// pairs: the fabric runs coordinator and workers through the real netblock
// codec and server without sockets, so tests and the -dist smoke mode
// exercise the exact wire path of a TCP deployment.
type Loopback struct {
	ch        chan net.Conn
	closeOnce sync.Once
	closed    chan struct{}
}

// NewLoopback returns a listening loopback.
func NewLoopback() *Loopback {
	return &Loopback{ch: make(chan net.Conn), closed: make(chan struct{})}
}

// Dial opens a new connection to the listener; it blocks until the server
// accepts (or the listener closes).
func (l *Loopback) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}

// Accept implements net.Listener.
func (l *Loopback) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ch:
		return conn, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *Loopback) Close() error {
	l.closeOnce.Do(func() { close(l.closed) })
	return nil
}

// Addr implements net.Listener.
func (l *Loopback) Addr() net.Addr { return loopbackAddr{} }

type loopbackAddr struct{}

func (loopbackAddr) Network() string { return "loopback" }
func (loopbackAddr) String() string  { return "loopback" }
