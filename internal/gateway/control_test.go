package gateway

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestSubmitCodecControlRoundTrip(t *testing.T) {
	reqs := []SubmitRequest{
		{Tenant: "alice", Spec: StudySpec{Seed: 42, Control: "noop", ControlEpochSec: 1}},
		{Tenant: "bob", Spec: StudySpec{
			Seed: 7, DurationSec: 16, Nodes: 4, Users: 16,
			EventSampleEvery: 8, TraceSampleEvery: 1,
			Control: "predictive-holt", ControlEpochSec: 2,
		}},
	}
	for _, want := range reqs {
		enc := EncodeSubmit(want)
		got, err := DecodeSubmit(enc)
		if err != nil {
			t.Fatalf("DecodeSubmit(%s): %v", want.Spec.Control, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if !bytes.Equal(EncodeSubmit(got), enc) {
			t.Fatalf("re-encode of %s is not canonical", want.Spec.Control)
		}
	}
}

// TestSubmitCodecPreControlCompat pins the wire compatibility contract: a
// frame without the optional control section — exactly what every encoder
// predating the control plane emits — still decodes, to a spec with no
// control policy.
func TestSubmitCodecPreControlCompat(t *testing.T) {
	old := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 3, DurationSec: 8}})
	got, err := DecodeSubmit(old)
	if err != nil {
		t.Fatalf("pre-control frame rejected: %v", err)
	}
	if got.Spec.Control != "" || got.Spec.ControlEpochSec != 0 {
		t.Fatalf("pre-control frame decoded a control section: %+v", got.Spec)
	}
	// And the uncontrolled encoding itself is byte-identical to the
	// pre-control layout: no suffix at all.
	withCtl := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 3, DurationSec: 8, Control: "noop", ControlEpochSec: 1}})
	if len(withCtl) != len(old)+1+len("noop")+4 {
		t.Fatalf("control suffix is %d bytes over the base frame, want %d",
			len(withCtl)-len(old), 1+len("noop")+4)
	}
}

func TestSubmitCodecRejectsMalformedControl(t *testing.T) {
	valid := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 1, Control: "oracle", ControlEpochSec: 5}})
	oversized := append(append([]byte(nil), valid[:len(valid)-1-len("oracle")-4]...), maxControlLen+1)
	oversized = append(oversized, strings.Repeat("x", maxControlLen+1)...)
	oversized = binary.LittleEndian.AppendUint32(oversized, 5)
	unprintable := append([]byte(nil), valid...)
	unprintable[len(unprintable)-5] = ' ' // last policy byte
	cases := map[string][]byte{
		"zero-length control":  append(append([]byte(nil), valid[:len(valid)-1-len("oracle")-4]...), 0),
		"oversized control":    oversized,
		"truncated epoch sec":  valid[:len(valid)-1],
		"trailing byte":        append(append([]byte(nil), valid...), 0),
		"unprintable control":  unprintable,
		"missing control body": valid[:len(valid)-len("oracle")-4],
	}
	for name, frame := range cases {
		if _, err := DecodeSubmit(frame); !errors.Is(err, ErrWire) {
			t.Errorf("%s: got %v, want ErrWire", name, err)
		}
	}
}

func TestControlSpecValidation(t *testing.T) {
	base := StudySpec{Seed: 1, DurationSec: 8}
	cases := map[string]StudySpec{
		"epoch without policy": func() StudySpec { s := base; s.ControlEpochSec = 2; return s }(),
		"unknown policy":       func() StudySpec { s := base; s.Control = "nope"; return s }(),
		"epoch over duration":  func() StudySpec { s := base; s.Control = "noop"; s.ControlEpochSec = 9; return s }(),
		"controlled on shards": func() StudySpec { s := base; s.Control = "noop"; s.Shards = 2; return s }(),
		"controlled with kills": func() StudySpec {
			s := base
			s.Control = "noop"
			s.LeaderKills = 1
			return s
		}(),
	}
	for name, spec := range cases {
		if err := spec.withDefaults().Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := base
	ok.Control = "predictive"
	if err := ok.withDefaults().Validate(); err != nil {
		t.Errorf("valid controlled spec rejected: %v", err)
	}
	if got := ok.withDefaults().ControlEpochSec; got != 1 {
		t.Errorf("default epoch for an 8s study = %d, want 1", got)
	}
}

func TestControlSpecKey(t *testing.T) {
	plain := StudySpec{Seed: 9}
	controlled := StudySpec{Seed: 9, Control: "reactive"}
	if plain.key() == controlled.key() {
		t.Fatal("controlled and uncontrolled specs must content-address differently")
	}
	other := StudySpec{Seed: 9, Control: "oracle"}
	if controlled.key() == other.key() {
		t.Fatal("different policies must content-address differently")
	}
	// Appending the control section only for controlled studies keeps every
	// pre-existing content address stable; pin one known normalization pair.
	spelled := StudySpec{Seed: 9, DurationSec: 8, Nodes: 4, Users: 16, EventSampleEvery: 8, TraceSampleEvery: 1}
	if plain.key() != spelled.key() {
		t.Fatal("uncontrolled content addresses changed")
	}
}
