package gateway

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSubmitCodecScenarioRoundTrip(t *testing.T) {
	reqs := []SubmitRequest{
		{Tenant: "alice", Spec: StudySpec{Seed: 42, Scenario: "bufferbloat"}},
		{Tenant: "bob", Spec: StudySpec{
			Seed: 7, DurationSec: 16, Nodes: 4, Users: 16,
			EventSampleEvery: 8, TraceSampleEvery: 1,
			Scenario: "elastic,hi=2,step=4",
		}},
		{Tenant: "carol", Spec: StudySpec{
			Seed: 9, Control: "predictive", ControlEpochSec: 2,
			Scenario: "batchburst,wave=20,width=4",
		}},
	}
	for _, want := range reqs {
		enc := EncodeSubmit(want)
		got, err := DecodeSubmit(enc)
		if err != nil {
			t.Fatalf("DecodeSubmit(%s): %v", want.Spec.Scenario, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if !bytes.Equal(EncodeSubmit(got), enc) {
			t.Fatalf("re-encode of %s is not canonical", want.Spec.Scenario)
		}
	}
}

// TestSubmitCodecPreScenarioCompat pins the wire compatibility contract: a
// frame without the optional scenario section — what every encoder predating
// the scenario library emits, with or without a control section — still
// decodes, to a spec with no scenario.
func TestSubmitCodecPreScenarioCompat(t *testing.T) {
	for name, spec := range map[string]StudySpec{
		"plain":      {Seed: 3, DurationSec: 8},
		"controlled": {Seed: 3, DurationSec: 8, Control: "noop", ControlEpochSec: 1},
	} {
		old := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: spec})
		got, err := DecodeSubmit(old)
		if err != nil {
			t.Fatalf("%s pre-scenario frame rejected: %v", name, err)
		}
		if got.Spec.Scenario != "" {
			t.Fatalf("%s pre-scenario frame decoded a scenario section: %+v", name, got.Spec)
		}
	}
	// A scenario without a control policy rides behind the zero
	// control-length marker (1 byte) plus the scenario section itself.
	old := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 3}})
	withSc := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 3, Scenario: "bufferbloat"}})
	if want := len(old) + 1 + 1 + len("bufferbloat"); len(withSc) != want {
		t.Fatalf("scenario suffix is %d bytes over the base frame, want %d", len(withSc)-len(old), want-len(old))
	}
}

func TestSubmitCodecRejectsMalformedScenario(t *testing.T) {
	valid := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 1, Scenario: "elastic"}})
	sec := 1 + 1 + len("elastic") // zero control marker + scenario length + body
	base := valid[:len(valid)-sec]
	oversized := append(append([]byte(nil), base...), 0, maxScenarioLen+1)
	oversized = append(oversized, strings.Repeat("x", maxScenarioLen+1)...)
	unprintable := append([]byte(nil), valid...)
	unprintable[len(unprintable)-1] = ' ' // last scenario byte
	cases := map[string][]byte{
		"bare zero control marker": append(append([]byte(nil), base...), 0),
		"zero-length scenario":     append(append([]byte(nil), base...), 0, 0),
		"oversized scenario":       oversized,
		"truncated scenario body":  valid[:len(valid)-1],
		"trailing byte":            append(append([]byte(nil), valid...), 0),
		"unprintable scenario":     unprintable,
	}
	for name, frame := range cases {
		if _, err := DecodeSubmit(frame); !errors.Is(err, ErrWire) {
			t.Errorf("%s: got %v, want ErrWire", name, err)
		}
	}
}

func TestScenarioSpecValidation(t *testing.T) {
	base := StudySpec{Seed: 1, DurationSec: 8}
	cases := map[string]StudySpec{
		"unknown scenario": func() StudySpec { s := base; s.Scenario = "quakestorm"; return s }(),
		"bad param":        func() StudySpec { s := base; s.Scenario = "elastic,bogus=1"; return s }(),
		"replay not servable": func() StudySpec {
			s := base
			s.Scenario = "replay,path=/etc/passwd"
			return s
		}(),
		"oversized scenario": func() StudySpec {
			s := base
			s.Scenario = "elastic,step=" + strings.Repeat("9", maxScenarioLen)
			return s
		}(),
	}
	for name, spec := range cases {
		if err := spec.withDefaults().Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := base
	ok.Scenario = "bufferbloat,duty=0.5"
	if err := ok.withDefaults().Validate(); err != nil {
		t.Errorf("valid scenario spec rejected: %v", err)
	}
	okCtl := ok
	okCtl.Control = "reactive"
	if err := okCtl.withDefaults().Validate(); err != nil {
		t.Errorf("scenario + control spec rejected: %v", err)
	}
}

func TestScenarioSpecKey(t *testing.T) {
	plain := StudySpec{Seed: 9}
	withSc := StudySpec{Seed: 9, Scenario: "bufferbloat"}
	if plain.key() == withSc.key() {
		t.Fatal("scenario and scenario-less specs must content-address differently")
	}
	other := StudySpec{Seed: 9, Scenario: "elastic"}
	if withSc.key() == other.key() {
		t.Fatal("different scenarios must content-address differently")
	}
	ctl := StudySpec{Seed: 9, Control: "reactive", Scenario: "bufferbloat"}
	if ctl.key() == withSc.key() {
		t.Fatal("control + scenario must content-address differently from scenario alone")
	}
	// The scenario section is append-only: every pre-existing content
	// address is stable.
	spelled := StudySpec{Seed: 9, DurationSec: 8, Nodes: 4, Users: 16, EventSampleEvery: 8, TraceSampleEvery: 1}
	if plain.key() != spelled.key() {
		t.Fatal("scenario-less content addresses changed")
	}
}
