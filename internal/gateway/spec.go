// Package gateway is the serving plane: a persistent multi-tenant service
// that accepts skewness-study submissions over the netblock protocol's
// gateway ops (SubmitStudy, StudyStatus, StreamSnapshot, CancelStudy,
// TenantStats), queues them FIFO per tenant behind token-bucket submission
// caps, dequeues with weighted-fair queueing, and executes each study either
// in-process (ebs.Run) or on the replicated fabric. Tenants can stream
// incremental sketch snapshots of a running study and the final answer is
// always byte-identical to a single-process run of the same spec — including
// runs where chaos kills the acting fabric leader mid-study. See DESIGN.md,
// "Serving plane".
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"ebslab/internal/control"
	"ebslab/internal/ebs"
	"ebslab/internal/scenario"
	"ebslab/internal/workload"
)

// StudySpec is a tenant's study request: the seed-addressed slice of the
// synthetic fleet to observe and how to sample it. The zero value of every
// field except Seed means "gateway default" (see withDefaults); the mapping
// from spec to fleet configuration and run options is exported precisely so
// test oracles can run the identical study through ebs.Run directly.
type StudySpec struct {
	// Seed selects the fleet (same seed, same fleet, same traffic).
	Seed int64
	// DurationSec is the observation window (default 8).
	DurationSec int
	// Nodes is the compute-node count of the single-DC study fleet
	// (default 4).
	Nodes int
	// Users is the tenant count inside the study fleet (default 16).
	Users int
	// MaxVDs bounds how many virtual disks are simulated (0 = all).
	MaxVDs int
	// EventSampleEvery thins the generated IO stream (default 8).
	EventSampleEvery int
	// TraceSampleEvery is the per-IO trace sampling rate (default 1).
	TraceSampleEvery int
	// Shards is the fabric shard count for distributed execution (0 =
	// fabric default; ignored for in-process execution).
	Shards int
	// LeaderKills schedules chaos kills of the acting fabric leader
	// mid-study. Requires the gateway to run a replicated fabric.
	LeaderKills int
	// Check runs the invariant suite over the study.
	Check bool
	// Control, when non-empty, runs the study through the mitigation
	// control plane (ebs.RunControlled) under the named policy — one of
	// control.ByName's: noop, reactive, predictive[-holt|-arima|-gbt],
	// oracle. The control loop is sequential over epochs, so controlled
	// studies always execute in-process: Shards and LeaderKills must be
	// zero.
	Control string
	// ControlEpochSec is the control epoch length (default: an eighth of
	// the study window, at least 1s — eight control decisions per study).
	// Must be zero when Control is empty.
	ControlEpochSec int
	// Scenario, when non-empty, reshapes the study fleet's traffic with a
	// scenario-library spec string ("bufferbloat", "elastic,step=4", ...).
	// Replay scenarios are not servable — they read server-local trace
	// files, which an untrusted submission must not be able to do; run them
	// through cmd/ebssim instead. Composes with Control (controlled studies
	// stay in-process) and with fabric execution (workers rebuild the
	// scenario from the spec string).
	Scenario string
}

// Spec bounds: the gateway decodes specs from untrusted connections, so every
// dimension is capped to what the serving host can actually execute.
const (
	maxTenantLen   = 64
	maxDuration    = 3600
	maxNodes       = 1024
	maxUsers       = 4096
	maxSpecVDs     = 1 << 20
	maxSampling    = 1 << 20
	maxSpecShards  = 256
	maxKills       = 8
	maxControlLen  = 32
	maxScenarioLen = 128
)

// withDefaults fills zero-valued dimensions with the gateway's laptop-scale
// study defaults. Submissions are normalized before keying, so two specs that
// differ only in spelled-out defaults content-address identically.
func (s StudySpec) withDefaults() StudySpec {
	if s.DurationSec == 0 {
		s.DurationSec = 8
	}
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.Users == 0 {
		s.Users = 16
	}
	if s.EventSampleEvery == 0 {
		s.EventSampleEvery = 8
	}
	if s.TraceSampleEvery == 0 {
		s.TraceSampleEvery = 1
	}
	if s.Control != "" && s.ControlEpochSec == 0 {
		s.ControlEpochSec = s.DurationSec / 8
		if s.ControlEpochSec < 1 {
			s.ControlEpochSec = 1
		}
	}
	return s
}

// Validate bounds a normalized spec. Call after withDefaults.
func (s StudySpec) Validate() error {
	for _, c := range []struct {
		name    string
		v       int
		min, mx int
	}{
		{"DurationSec", s.DurationSec, 1, maxDuration},
		{"Nodes", s.Nodes, 1, maxNodes},
		{"Users", s.Users, 1, maxUsers},
		{"MaxVDs", s.MaxVDs, 0, maxSpecVDs},
		{"EventSampleEvery", s.EventSampleEvery, 1, maxSampling},
		{"TraceSampleEvery", s.TraceSampleEvery, 1, maxSampling},
		{"Shards", s.Shards, 0, maxSpecShards},
		{"LeaderKills", s.LeaderKills, 0, maxKills},
	} {
		if c.v < c.min || c.v > c.mx {
			return fmt.Errorf("gateway: spec %s is %d, want [%d, %d]", c.name, c.v, c.min, c.mx)
		}
	}
	if s.Scenario != "" {
		if len(s.Scenario) > maxScenarioLen {
			return fmt.Errorf("gateway: spec Scenario is %d bytes, want <= %d", len(s.Scenario), maxScenarioLen)
		}
		built, err := scenario.Build(s.Scenario)
		if err != nil {
			return err
		}
		if built.Name() == "replay" {
			return fmt.Errorf("gateway: replay scenarios read server-local trace files and are not servable; run them through cmd/ebssim")
		}
	}
	if s.Control == "" {
		if s.ControlEpochSec != 0 {
			return fmt.Errorf("gateway: spec ControlEpochSec %d without a Control policy", s.ControlEpochSec)
		}
		return nil
	}
	if len(s.Control) > maxControlLen {
		return fmt.Errorf("gateway: spec Control name is %d bytes, want <= %d", len(s.Control), maxControlLen)
	}
	if _, err := control.ByName(s.Control); err != nil {
		return err
	}
	if s.ControlEpochSec < 1 || s.ControlEpochSec > s.DurationSec {
		return fmt.Errorf("gateway: spec ControlEpochSec %d, want [1, %d]", s.ControlEpochSec, s.DurationSec)
	}
	if s.Shards != 0 || s.LeaderKills != 0 {
		return fmt.Errorf("gateway: controlled studies run in-process (the control loop is sequential over epochs); Shards and LeaderKills must be 0")
	}
	return nil
}

// FleetConfig maps the spec onto a workload generation recipe, using the same
// single-DC projection as cmd/ebssim so a gateway study and a CLI run of the
// same dimensions observe the identical fleet.
func (s StudySpec) FleetConfig() workload.Config {
	s = s.withDefaults()
	cfg := workload.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.DCs = 1
	cfg.NodesPerDC = s.Nodes
	cfg.BSPerDC = 12
	cfg.BSPerCluster = 6
	cfg.Users = s.Users
	cfg.DurationSec = s.DurationSec
	return cfg
}

// RunOptions maps the spec onto engine options. The gateway adds its own
// Stream/Snapshots destinations per execution; chaos leader kills are fabric
// configuration, not engine options, and are likewise added at run time.
func (s StudySpec) RunOptions() ebs.Options {
	s = s.withDefaults()
	return ebs.Options{
		DurationSec:      s.DurationSec,
		TraceSampleEvery: s.TraceSampleEvery,
		EventSampleEvery: s.EventSampleEvery,
		MaxVDs:           s.MaxVDs,
		Check:            s.Check,
	}
}

// key is the spec's content address: the hash of its canonical (normalized,
// fixed-width) encoding. Completed studies are stored under this key, so a
// re-submission of an identical spec — by any tenant — is answered from the
// finished result instead of re-running the study.
func (s StudySpec) key() string {
	s = s.withDefaults()
	b := make([]byte, 41, 41+1+len(s.Control)+4)
	binary.LittleEndian.PutUint64(b[0:], uint64(s.Seed))
	binary.LittleEndian.PutUint32(b[8:], uint32(s.DurationSec))
	binary.LittleEndian.PutUint32(b[12:], uint32(s.Nodes))
	binary.LittleEndian.PutUint32(b[16:], uint32(s.Users))
	binary.LittleEndian.PutUint32(b[20:], uint32(s.MaxVDs))
	binary.LittleEndian.PutUint32(b[24:], uint32(s.EventSampleEvery))
	binary.LittleEndian.PutUint32(b[28:], uint32(s.TraceSampleEvery))
	binary.LittleEndian.PutUint32(b[32:], uint32(s.Shards))
	binary.LittleEndian.PutUint32(b[36:], uint32(s.LeaderKills))
	if s.Check {
		b[40] = 1
	}
	// The control section is appended only for controlled studies, so every
	// pre-existing (uncontrolled) spec keeps its content address.
	if s.Control != "" {
		b = append(b, uint8(len(s.Control)))
		b = append(b, s.Control...)
		b = binary.LittleEndian.AppendUint32(b, uint32(s.ControlEpochSec))
	}
	// The scenario section is likewise append-only, tagged with 'S' (0x53):
	// a control suffix always starts with its length byte <= maxControlLen,
	// so the tag cannot collide with any pre-scenario encoding.
	if s.Scenario != "" {
		b = append(b, 'S', uint8(len(s.Scenario)))
		b = append(b, s.Scenario...)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
