package gateway_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ebslab/internal/gateway"
	"ebslab/internal/testclock"
)

var update = flag.Bool("update", false, "rewrite the golden contention fixture")

func goldenPath() string {
	return filepath.Join("testdata", "golden", "contention.json")
}

// goldenStudy is one study's terminal record in the fixture.
type goldenStudy struct {
	StudyID   uint64
	State     string
	DatasetFP string
	SketchFP  string
}

// goldenContention freezes the full observable outcome of the scripted
// two-tenant contention run: every admission decision in arrival order, the
// scheduler's grant log with virtual timestamps, both tenants' final
// statistics, and each study's fingerprints. Any change to admission,
// weighted-fair dequeue, token pacing, dedup, or the engine itself shows up
// as a fixture diff.
type goldenContention struct {
	Admissions []gateway.Admission
	Grants     []gateway.Grant
	Alice      gateway.TenantStats
	Bob        gateway.TenantStats
	Studies    map[string]goldenStudy
}

// settleGolden waits for the scripted gateway to go quiescent at a known
// grant count: with the fake clock frozen, no further grants are possible
// once every token is spent, so (grants, running==0) is a fixed point.
func settleGolden(t *testing.T, gw *gateway.Gateway, wantGrants int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if l := gw.Ledger(); len(gw.Grants()) >= wantGrants && l.Running == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("gateway did not settle at %d grants: ledger %+v, %d grants",
		wantGrants, gw.Ledger(), len(gw.Grants()))
}

// TestGoldenContention runs the canonical two-tenant contention script on a
// fake clock and compares every observable against the committed fixture.
// The script: alice (weight 2) floods four studies into a one-slot gateway
// with a 1/sec-per-tenant cap and a three-deep admission bound — her fifth
// submission is rejected — while bob (weight 1) queues two; the clock then
// advances a second at a time until everything drains, and bob finally
// re-submits alice's first spec, which dedups against the stored result.
//
// After an intentional behavior change:
//
//	go test ./internal/gateway -run TestGoldenContention -update
func TestGoldenContention(t *testing.T) {
	clock := testclock.AtUnix(2000)
	gw := gateway.New(gateway.Config{
		Now:                clock.Now,
		MaxConcurrent:      1,
		SubmitRate:         1,
		SubmitBurst:        1,
		MaxQueuedPerTenant: 3,
		WeightOf:           map[string]float64{"alice": 2, "bob": 1},
	})
	defer gw.Close()

	spec := func(seed int64) gateway.StudySpec {
		return gateway.StudySpec{Seed: seed, DurationSec: 1, Nodes: 1, Users: 2, MaxVDs: 2, EventSampleEvery: 32}
	}

	ids := map[string]uint64{}
	submit := func(label, tenant string, s gateway.StudySpec) {
		t.Helper()
		reply, err := gw.Submit(tenant, s)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		ids[label] = reply.StudyID
	}

	// t=0: alice floods. a1 takes her banked token and the only run slot;
	// a2-a4 queue; a5 hits the admission bound.
	submit("a1", "alice", spec(301))
	submit("a2", "alice", spec(302))
	submit("a3", "alice", spec(303))
	submit("a4", "alice", spec(304))
	if _, err := gw.Submit("alice", spec(305)); err == nil {
		t.Fatal("alice's fifth submission should be rejected at the admission bound")
	}
	// t=0: bob queues two behind the busy slot.
	submit("b1", "bob", spec(311))
	submit("b2", "bob", spec(312))
	settleGolden(t, gw, 2) // a1 then b1 drain the banked tokens

	for _, grants := range []int{4, 5, 6} {
		clock.Advance(time.Second)
		gw.Poke()
		settleGolden(t, gw, grants)
	}

	// Re-submitting a completed spec — from the other tenant — dedups.
	dedup, err := gw.Submit("bob", spec(301))
	if err != nil {
		t.Fatal(err)
	}
	if !dedup.Deduped || dedup.StudyID != ids["a1"] {
		t.Fatalf("dedup reply %+v, want a1's study %d", dedup, ids["a1"])
	}

	got := goldenContention{
		Admissions: gw.Admissions(),
		Grants:     gw.Grants(),
		Studies:    map[string]goldenStudy{},
	}
	if got.Alice, err = gw.Stats("alice"); err != nil {
		t.Fatal(err)
	}
	if got.Bob, err = gw.Stats("bob"); err != nil {
		t.Fatal(err)
	}
	for label, id := range ids {
		st, err := gw.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		got.Studies[label] = goldenStudy{StudyID: id, State: st.State, DatasetFP: st.DatasetFP, SketchFP: st.SketchFP}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden contention fixture updated: %s", goldenPath())
		return
	}
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to create): %v", err)
	}
	var want goldenContention
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("golden fixture does not parse: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		gotBuf, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("contention run drifted from the golden fixture.\n got: %s\n(after an intentional change: go test ./internal/gateway -run TestGoldenContention -update)", gotBuf)
	}
}
