package gateway

import (
	"bytes"
	"errors"
	"testing"
)

func TestSubmitCodecRoundTrip(t *testing.T) {
	reqs := []SubmitRequest{
		{Tenant: "alice", Spec: StudySpec{Seed: 42}},
		{Tenant: "b", Spec: StudySpec{
			Seed: -7, DurationSec: 8, Nodes: 4, Users: 16, MaxVDs: 100,
			EventSampleEvery: 8, TraceSampleEvery: 1, Shards: 5, LeaderKills: 1,
			Check: true,
		}},
		{Tenant: "tenant-64-chars-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", Spec: StudySpec{}},
	}
	for _, want := range reqs {
		enc := EncodeSubmit(want)
		got, err := DecodeSubmit(enc)
		if err != nil {
			t.Fatalf("DecodeSubmit(%q): %v", want.Tenant, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if !bytes.Equal(EncodeSubmit(got), enc) {
			t.Fatalf("re-encode of %q is not canonical", want.Tenant)
		}
	}
}

func TestSubmitCodecRejectsMalformed(t *testing.T) {
	valid := EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 1}})
	cases := map[string][]byte{
		"empty":              nil,
		"bad magic":          append([]byte("EBGX"), valid[4:]...),
		"zero tenant length": append(append([]byte("EBG1"), 0), valid[10:]...),
		"oversized tenant":   append(append([]byte("EBG1"), 200), valid[5:]...),
		"unprintable tenant": EncodeSubmit(SubmitRequest{Tenant: "a b", Spec: StudySpec{}}),
		"truncated spec":     valid[:len(valid)-3],
		"trailing byte":      append(append([]byte(nil), valid...), 0),
		"check flag 2":       append(append([]byte(nil), valid[:len(valid)-1]...), 2),
	}
	for name, frame := range cases {
		if _, err := DecodeSubmit(frame); !errors.Is(err, ErrWire) {
			t.Errorf("%s: got %v, want ErrWire", name, err)
		}
	}
}

func TestSnapshotReplyCodecRoundTrip(t *testing.T) {
	reps := []SnapshotReply{
		{StudyID: 1, State: StateQueued},
		{StudyID: 9, State: StateRunning, Seq: 3, VDsDone: 7, VDsTotal: 20,
			SketchFP: "sha256:abcdef", Sketch: []byte{1, 2, 3, 0, 255}},
	}
	for _, want := range reps {
		enc := EncodeSnapshotReply(want)
		got, err := DecodeSnapshotReply(enc)
		if err != nil {
			t.Fatalf("DecodeSnapshotReply: %v", err)
		}
		if got.StudyID != want.StudyID || got.State != want.State || got.Seq != want.Seq ||
			got.VDsDone != want.VDsDone || got.VDsTotal != want.VDsTotal ||
			got.SketchFP != want.SketchFP || !bytes.Equal(got.Sketch, want.Sketch) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if !bytes.Equal(EncodeSnapshotReply(got), enc) {
			t.Fatal("re-encode is not canonical")
		}
	}
}

func TestSnapshotReplyCodecRejectsMalformed(t *testing.T) {
	valid := EncodeSnapshotReply(SnapshotReply{StudyID: 2, State: StateDone, SketchFP: "fp", Sketch: []byte{9}})
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte("EBG9"), valid[4:]...),
		"short header":   valid[:10],
		"fp overrun":     append(append([]byte(nil), valid[:29]...), 255),
		"sketch overrun": valid[:len(valid)-1],
		"trailing byte":  append(append([]byte(nil), valid...), 0),
	}
	for name, frame := range cases {
		if _, err := DecodeSnapshotReply(frame); !errors.Is(err, ErrWire) {
			t.Errorf("%s: got %v, want ErrWire", name, err)
		}
	}
}

func TestSnapshotRequestCodec(t *testing.T) {
	id, err := DecodeSnapshotRequest(EncodeSnapshotRequest(77))
	if err != nil || id != 77 {
		t.Fatalf("got (%d, %v), want (77, nil)", id, err)
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, make([]byte, 9)} {
		if _, err := DecodeSnapshotRequest(bad); !errors.Is(err, ErrWire) {
			t.Errorf("len %d: got %v, want ErrWire", len(bad), err)
		}
	}
}

// FuzzGatewayCodec drives every binary gateway decoder with arbitrary bytes.
// The contract under fuzz: a decoder either rejects the frame with an error
// wrapping ErrWire, or accepts it — and an accepted frame must re-encode to
// the identical bytes (the codecs are bijective, so no two frames decode to
// the same value and nothing on the wire is ignored).
func FuzzGatewayCodec(f *testing.F) {
	f.Add(EncodeSubmit(SubmitRequest{Tenant: "alice", Spec: StudySpec{Seed: 42, DurationSec: 8, Shards: 5, LeaderKills: 1, Check: true}}))
	f.Add(EncodeSubmit(SubmitRequest{Tenant: "carol", Spec: StudySpec{Seed: 7, DurationSec: 16, Control: "predictive-holt", ControlEpochSec: 2}}))
	f.Add(EncodeSnapshotReply(SnapshotReply{StudyID: 3, State: StateRunning, Seq: 2, VDsDone: 4, VDsTotal: 9, SketchFP: "fp", Sketch: []byte{1, 2}}))
	f.Add(EncodeSnapshotRequest(123456))
	f.Add([]byte("EBG1"))
	f.Add([]byte("EBG3 not a frame"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if sub, err := DecodeSubmit(data); err == nil {
			if !bytes.Equal(EncodeSubmit(sub), data) {
				t.Fatalf("submit re-encode diverges for %x", data)
			}
		} else if !errors.Is(err, ErrWire) {
			t.Fatalf("DecodeSubmit error %v does not wrap ErrWire", err)
		}
		if rep, err := DecodeSnapshotReply(data); err == nil {
			if !bytes.Equal(EncodeSnapshotReply(rep), data) {
				t.Fatalf("snapshot re-encode diverges for %x", data)
			}
		} else if !errors.Is(err, ErrWire) {
			t.Fatalf("DecodeSnapshotReply error %v does not wrap ErrWire", err)
		}
		if id, err := DecodeSnapshotRequest(data); err == nil {
			if !bytes.Equal(EncodeSnapshotRequest(id), data) {
				t.Fatalf("snapshot request re-encode diverges for %x", data)
			}
		} else if !errors.Is(err, ErrWire) {
			t.Fatalf("DecodeSnapshotRequest error %v does not wrap ErrWire", err)
		}
	})
}
