package gateway_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ebslab/internal/gateway"
	"ebslab/internal/invariant"
	"ebslab/internal/testclock"
)

// TestSoakConcurrentTenants is the race/soak arm: eight tenant goroutines
// hammer one gateway — submitting, canceling, and polling concurrently —
// while the test body walks a fake clock forward a quarter second at a time.
// Run under -race this exercises every lock-ordering in the serving plane;
// the exit criteria are the conservation laws: nothing deadlocks, every
// study settles, no job leaks, and no tenant ever outran its token bucket.
func TestSoakConcurrentTenants(t *testing.T) {
	const (
		nTenants  = 8
		perTenant = 6
		rate      = 2.0
		burst     = 2.0
	)
	clock := testclock.AtUnix(5000)
	gw := gateway.New(gateway.Config{
		Now:                clock.Now,
		MaxConcurrent:      4,
		SubmitRate:         rate,
		SubmitBurst:        burst,
		MaxQueuedPerTenant: perTenant + 1,
	})
	defer gw.Close()

	spec := func(tenant, i int) gateway.StudySpec {
		// Three seeds per tenant, revisited: later rounds dedup against
		// earlier completions, mixing the dedup path into the soak.
		return gateway.StudySpec{
			Seed: int64(tenant*100 + i%3), DurationSec: 1, Nodes: 1, Users: 2,
			MaxVDs: 2, EventSampleEvery: 32,
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nTenants)
	for ti := 0; ti < nTenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("soak-%d", ti)
			var prev uint64
			for i := 0; i < perTenant; i++ {
				reply, err := gw.Submit(tenant, spec(ti, i))
				if err != nil {
					errCh <- fmt.Errorf("%s submit %d: %v", tenant, i, err)
					return
				}
				// Cancel every third submission's predecessor: depending on
				// scheduling it is queued, running, or already terminal —
				// all three cancel paths get traffic.
				if i%3 == 2 && prev != 0 {
					if _, err := gw.Cancel(prev); err != nil {
						errCh <- fmt.Errorf("%s cancel %d: %v", tenant, prev, err)
						return
					}
				}
				if !reply.Deduped {
					prev = reply.StudyID
				}
				if _, err := gw.Status(reply.StudyID); err != nil {
					errCh <- fmt.Errorf("%s status: %v", tenant, err)
					return
				}
				if _, err := gw.Snapshot(reply.StudyID); err != nil {
					errCh <- fmt.Errorf("%s snapshot: %v", tenant, err)
					return
				}
				if _, err := gw.Stats(tenant); err != nil {
					errCh <- fmt.Errorf("%s stats: %v", tenant, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(ti)
	}

	// Drive the fake clock while the tenants run, then keep driving until
	// the gateway drains: queued studies are gated on token refills, so
	// standing still would be the deadlock the test exists to rule out.
	submittersDone := make(chan struct{})
	go func() { wg.Wait(); close(submittersDone) }()
	deadline := time.Now().Add(120 * time.Second)
	drained := false
	for time.Now().Before(deadline) {
		clock.Advance(250 * time.Millisecond)
		gw.Poke()
		select {
		case <-submittersDone:
			l := gw.Ledger()
			if l.Queued == 0 && l.Running == 0 {
				drained = true
			}
		default:
		}
		if drained {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if !drained {
		t.Fatalf("gateway did not drain in 2 minutes: ledger %+v", gw.Ledger())
	}

	var rep invariant.Report
	l := gw.Ledger()
	invariant.CheckGatewayAccounting(&rep, &l, true)
	total := invariant.StudyLedger{}
	for ti := 0; ti < nTenants; ti++ {
		tenant := fmt.Sprintf("soak-%d", ti)
		tl, ok := gw.TenantLedger(tenant)
		if !ok {
			t.Fatalf("tenant %s has no ledger", tenant)
		}
		invariant.CheckGatewayAccounting(&rep, &tl, true)
		total.Submitted += tl.Submitted
		total.Deduped += tl.Deduped
		total.Granted += tl.Granted
		st, err := gw.Stats(tenant)
		if err != nil {
			t.Fatal(err)
		}
		invariant.CheckGrantPacing(&rep, tenant, rate, burst, st.GrantsAtSec)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("soak invariants: %v", err)
	}
	if got := total.Submitted + total.Deduped; got != nTenants*perTenant {
		t.Fatalf("%d submissions accounted, want %d", got, nTenants*perTenant)
	}
	if gl := gw.Ledger(); gl.Submitted != total.Submitted || gl.Granted != total.Granted {
		t.Fatalf("gateway ledger %+v does not sum tenant ledgers (%+v)", gl, total)
	}
}
