package gateway

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrWire reports a malformed gateway frame.
var ErrWire = errors.New("gateway: malformed message")

// Study lifecycle states, in wire order. A study is Queued from admission
// until the scheduler grants it a run slot, Running until its execution
// returns, then exactly one of Done, Failed, or Canceled.
const (
	StateQueued uint8 = iota + 1
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

// StateName renders a state for JSON replies and logs.
func StateName(s uint8) string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return fmt.Sprintf("state-%d", s)
}

// SubmitRequest is the OpSubmitStudy payload: who is asking and what to run.
type SubmitRequest struct {
	Tenant string
	Spec   StudySpec
}

// submitMagic versions the submit frame; snapMagic the snapshot reply.
var (
	submitMagic = []byte("EBG1")
	snapMagic   = []byte("EBG3")
)

// EncodeSubmit frames a submission for the wire:
//
//	"EBG1" | u8 tenantLen | tenant
//	      | i64 seed | u32 dur | u32 nodes | u32 users | u32 maxVDs
//	      | u32 eventSample | u32 traceSample | u32 shards | u32 kills
//	      | u8 check
//	      [ u8 controlLen | control | u32 controlEpochSec ]
//	      [ u8 scenarioLen | scenario ]
//
// Integers are little-endian, matching the netblock frame the payload rides
// in. The binary layout (rather than JSON) is what makes the decoder an
// honest fuzz target: every byte means something. The control section is
// appended only when the spec names a mitigation policy, so uncontrolled
// submissions frame byte-identically to every gateway that predates the
// control plane; the scenario section likewise appends only when a scenario
// is set. A scenario without a control policy emits a zero control-length
// marker byte first — pre-scenario decoders reject a zero length, so the
// frame is unambiguously new-format, never misparsed.
func EncodeSubmit(r SubmitRequest) []byte {
	b := make([]byte, 0, 5+len(r.Tenant)+41+1+len(r.Spec.Control)+4+2+len(r.Spec.Scenario))
	b = append(b, submitMagic...)
	b = append(b, uint8(len(r.Tenant)))
	b = append(b, r.Tenant...)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Spec.Seed))
	for _, v := range []int{
		r.Spec.DurationSec, r.Spec.Nodes, r.Spec.Users, r.Spec.MaxVDs,
		r.Spec.EventSampleEvery, r.Spec.TraceSampleEvery, r.Spec.Shards,
		r.Spec.LeaderKills,
	} {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	if r.Spec.Check {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if r.Spec.Control != "" {
		b = append(b, uint8(len(r.Spec.Control)))
		b = append(b, r.Spec.Control...)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Spec.ControlEpochSec))
	}
	if r.Spec.Scenario != "" {
		if r.Spec.Control == "" {
			b = append(b, 0) // explicit empty control section
		}
		b = append(b, uint8(len(r.Spec.Scenario)))
		b = append(b, r.Spec.Scenario...)
	}
	return b
}

// DecodeSubmit parses a submit frame. A frame either decodes completely —
// magic, tenant, every spec field, no trailing bytes — or not at all; spec
// bounds are enforced later at admission (Validate), tenant well-formedness
// here, so a hostile frame cannot allocate or run anything.
func DecodeSubmit(b []byte) (SubmitRequest, error) {
	var r SubmitRequest
	if len(b) < len(submitMagic)+1 || string(b[:len(submitMagic)]) != string(submitMagic) {
		return r, fmt.Errorf("%w: bad submit magic", ErrWire)
	}
	b = b[len(submitMagic):]
	tl := int(b[0])
	b = b[1:]
	if tl == 0 || tl > maxTenantLen || len(b) < tl {
		return r, fmt.Errorf("%w: tenant length %d", ErrWire, tl)
	}
	r.Tenant = string(b[:tl])
	for _, c := range r.Tenant {
		if c < 0x21 || c > 0x7e {
			return r, fmt.Errorf("%w: tenant name contains %q", ErrWire, c)
		}
	}
	b = b[tl:]
	if len(b) < 8+8*4+1 {
		return r, fmt.Errorf("%w: submit spec is %d bytes, want >= %d", ErrWire, len(b), 8+8*4+1)
	}
	r.Spec.Seed = int64(binary.LittleEndian.Uint64(b))
	b = b[8:]
	dst := []*int{
		&r.Spec.DurationSec, &r.Spec.Nodes, &r.Spec.Users, &r.Spec.MaxVDs,
		&r.Spec.EventSampleEvery, &r.Spec.TraceSampleEvery, &r.Spec.Shards,
		&r.Spec.LeaderKills,
	}
	for _, p := range dst {
		*p = int(int32(binary.LittleEndian.Uint32(b)))
		b = b[4:]
	}
	switch b[0] {
	case 0:
	case 1:
		r.Spec.Check = true
	default:
		return r, fmt.Errorf("%w: check flag %d", ErrWire, b[0])
	}
	b = b[1:]
	if len(b) == 0 {
		return r, nil // pre-control-plane frame: no control section
	}
	cl := int(b[0])
	b = b[1:]
	if cl > 0 {
		if cl > maxControlLen || len(b) < cl+4 {
			return r, fmt.Errorf("%w: control section length %d with %d bytes left", ErrWire, cl, len(b))
		}
		r.Spec.Control = string(b[:cl])
		for _, c := range r.Spec.Control {
			if c < 0x21 || c > 0x7e {
				return r, fmt.Errorf("%w: control policy name contains %q", ErrWire, c)
			}
		}
		r.Spec.ControlEpochSec = int(int32(binary.LittleEndian.Uint32(b[cl:])))
		b = b[cl+4:]
		if len(b) == 0 {
			return r, nil // pre-scenario frame: no scenario section
		}
	} else if len(b) == 0 {
		// A zero control length is only ever the marker in front of a
		// scenario section; bare it means a truncated frame.
		return r, fmt.Errorf("%w: empty control section with no scenario section", ErrWire)
	}
	sl := int(b[0])
	b = b[1:]
	if sl == 0 || sl > maxScenarioLen || len(b) != sl {
		return r, fmt.Errorf("%w: scenario section length %d with %d bytes left", ErrWire, sl, len(b))
	}
	r.Spec.Scenario = string(b)
	for _, c := range r.Spec.Scenario {
		if c < 0x21 || c > 0x7e {
			return r, fmt.Errorf("%w: scenario spec contains %q", ErrWire, c)
		}
	}
	return r, nil
}

// SnapshotReply is the OpStreamSnapshot answer: where the study is and, once
// it runs, the incremental sketch state covering every virtual disk (local
// execution) or shard (fabric execution) completed so far. Seq is a monotone
// progress counter; Sketch is sketch.Set binary (empty until the first unit
// of work lands). SketchFP fingerprints exactly the returned state, so a
// tenant can verify the stream converges on the final answer.
type SnapshotReply struct {
	StudyID  uint64
	State    uint8
	Seq      uint64
	VDsDone  uint32
	VDsTotal uint32
	SketchFP string
	Sketch   []byte
}

// EncodeSnapshotReply frames a snapshot:
//
//	"EBG3" | u64 id | u8 state | u64 seq | u32 vdsDone | u32 vdsTotal
//	      | u8 fpLen | fp | u32 sketchLen | sketch
func EncodeSnapshotReply(r SnapshotReply) []byte {
	b := make([]byte, 0, 4+8+1+8+4+4+1+len(r.SketchFP)+4+len(r.Sketch))
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, r.StudyID)
	b = append(b, r.State)
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = binary.LittleEndian.AppendUint32(b, r.VDsDone)
	b = binary.LittleEndian.AppendUint32(b, r.VDsTotal)
	b = append(b, uint8(len(r.SketchFP)))
	b = append(b, r.SketchFP...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Sketch)))
	b = append(b, r.Sketch...)
	return b
}

// DecodeSnapshotReply parses a snapshot frame, rejecting short bodies,
// oversized length prefixes, and trailing bytes. The sketch bytes are not
// decoded here — the caller hands them to sketch.DecodeSet when it wants the
// state, and that decoder does its own validation.
func DecodeSnapshotReply(b []byte) (SnapshotReply, error) {
	var r SnapshotReply
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != string(snapMagic) {
		return r, fmt.Errorf("%w: bad snapshot magic", ErrWire)
	}
	b = b[len(snapMagic):]
	if len(b) < 8+1+8+4+4+1 {
		return r, fmt.Errorf("%w: snapshot header short", ErrWire)
	}
	r.StudyID = binary.LittleEndian.Uint64(b)
	r.State = b[8]
	r.Seq = binary.LittleEndian.Uint64(b[9:])
	r.VDsDone = binary.LittleEndian.Uint32(b[17:])
	r.VDsTotal = binary.LittleEndian.Uint32(b[21:])
	fpLen := int(b[25])
	b = b[26:]
	if len(b) < fpLen+4 {
		return r, fmt.Errorf("%w: fingerprint length %d", ErrWire, fpLen)
	}
	r.SketchFP = string(b[:fpLen])
	b = b[fpLen:]
	skLen := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != skLen {
		return r, fmt.Errorf("%w: sketch length %d with %d bytes left", ErrWire, skLen, len(b))
	}
	if skLen > 0 {
		r.Sketch = append([]byte(nil), b...)
	}
	return r, nil
}

// EncodeSnapshotRequest frames an OpStreamSnapshot request: the study ID as
// a little-endian u64.
func EncodeSnapshotRequest(id uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, id)
}

// DecodeSnapshotRequest parses the 8-byte study-ID payload.
func DecodeSnapshotRequest(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: snapshot request is %d bytes, want 8", ErrWire, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// --- JSON control messages --------------------------------------------------
//
// The low-rate control ops (status, cancel, per-tenant stats) and the submit
// reply travel as JSON, matching the fabric's control-plane idiom.

// SubmitReply answers OpSubmitStudy.
type SubmitReply struct {
	StudyID uint64
	State   string
	// Deduped is set when the submission was answered from a completed
	// study with the same content address; StudyID is that study's.
	Deduped bool
}

// StatusRequest asks for one study's status.
type StatusRequest struct {
	StudyID uint64
}

// StatusReply is the study's full lifecycle view.
type StatusReply struct {
	StudyID  uint64
	Tenant   string
	State    string
	QueuePos int `json:",omitempty"` // 0 = head of the tenant queue
	VDsDone  int
	VDsTotal int
	// DatasetFP is the invariant fingerprint of the completed dataset;
	// SketchFP the final streaming-sketch fingerprint. Both empty until
	// the study completes.
	DatasetFP string `json:",omitempty"`
	SketchFP  string `json:",omitempty"`
	// Kills counts the chaos leader kills that actually fired during a
	// fabric execution of the study.
	Kills int    `json:",omitempty"`
	Error string `json:",omitempty"`
	// ControlLogFP fingerprints the mitigation decision log and
	// ControlDecisions counts its entries; both are set only for completed
	// controlled studies (StudySpec.Control non-empty).
	ControlLogFP     string `json:",omitempty"`
	ControlDecisions int    `json:",omitempty"`
}

// CancelRequest cancels one study.
type CancelRequest struct {
	StudyID uint64
}

// CancelReply reports the state the study ended in.
type CancelReply struct {
	State string
}

// StatsRequest asks for one tenant's serving statistics.
type StatsRequest struct {
	Tenant string
}

// TenantStats is a tenant's accounting view: its study ledger, its current
// token balance, and its grant log (seconds since the gateway started) — the
// inputs of the invariant.CheckGrantPacing law.
type TenantStats struct {
	Tenant          string
	Submitted       int
	Rejected        int
	Deduped         int
	Granted         int
	Completed       int
	Failed          int
	CanceledQueued  int
	CanceledRunning int
	Queued          int
	Running         int
	Tokens          int
	GrantsAtSec     []float64 `json:",omitempty"`
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("gateway: marshal %T: %v", v, err))
	}
	return b
}

func fromJSON(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: %v", ErrWire, err)
	}
	return nil
}
