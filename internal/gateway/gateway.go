package gateway

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ebslab/internal/chaos"
	"ebslab/internal/control"
	"ebslab/internal/ebs"
	"ebslab/internal/fabric"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/throttle"
	"ebslab/internal/trace"
	"ebslab/internal/workload"
)

// FabricConfig tells the gateway to execute studies on an in-process fabric
// instead of calling ebs.Run directly: each granted study gets its own
// replica set and worker pool over loopback transports. Replicas >= 2 is
// what makes chaos leader-kill studies (StudySpec.LeaderKills) admissible.
type FabricConfig struct {
	// Replicas is the control-plane replica count per study (default 1).
	Replicas int
	// Workers is the worker count per study (default 1).
	Workers int
	// Shards overrides the fabric shard count when the study spec leaves
	// Shards zero.
	Shards int
}

// Config shapes one gateway.
type Config struct {
	// MaxConcurrent bounds how many studies run at once (default 1).
	MaxConcurrent int
	// SubmitRate and SubmitBurst are the per-tenant token-bucket cap on
	// study starts: rate in grants/sec, burst the bank (default 1 when a
	// rate is set). Rate 0 means uncapped. An over-cap submission is
	// QUEUED behind the tenant's bucket, never dropped — the same
	// queue-don't-drop discipline internal/throttle applies to IOs.
	SubmitRate  float64
	SubmitBurst float64
	// MaxQueuedPerTenant is the admission bound: a submission arriving at
	// a tenant whose queue is already this deep is rejected (default 16).
	MaxQueuedPerTenant int
	// WeightOf sets per-tenant weighted-fair-queueing weights (default 1).
	// A weight-2 tenant drains its backlog twice as fast as a weight-1
	// tenant under contention.
	WeightOf map[string]float64
	// Fabric, when non-nil, executes studies on an in-process fabric.
	Fabric *FabricConfig
	// Now overrides the clock (tests pass testclock.Clock.Now). With a
	// fake clock the gateway never arms wall timers — after advancing the
	// clock, call Poke to re-run admission.
	Now func() time.Time
	// OnProgress, when non-nil, fires as a granted study progresses:
	// per completed virtual disk for local execution, per accepted shard
	// for fabric execution. Calls come from run goroutines; keep it cheap
	// or fully synchronous (the e2e tests hang mid-run snapshot probes
	// here precisely because it is deterministic).
	OnProgress func(study uint64, done, total int)
}

// Grant is one scheduler decision: tenant, study, and when (seconds since
// the gateway started).
type Grant struct {
	Tenant string
	Study  uint64
	AtSec  float64
}

// Admission is one admission decision, in arrival order. Decision is
// "queued", "rejected", or "deduped".
type Admission struct {
	Tenant   string
	Study    uint64 `json:",omitempty"`
	Decision string
	AtSec    float64
}

type tenant struct {
	name     string
	weight   float64
	bucket   *throttle.TokenBucket // nil: no submission cap
	queue    []*job
	pass     float64 // WFQ virtual finish time
	ledger   invariant.StudyLedger
	grantsAt []float64
}

type job struct {
	id     uint64
	tenant string
	spec   StudySpec // normalized
	key    string

	// Mutable lifecycle state, guarded by Gateway.mu.
	state    uint8
	canceled bool
	errMsg   string
	cancel   context.CancelFunc
	ctx      context.Context

	// Snapshot sources. sink serves local runs; rs fabric runs. snapMu
	// serializes fabric snapshot reads against the final ledger merge,
	// which consumes the shard partials' sketch state.
	sink   *ebs.SnapshotSink
	rs     *fabric.ReplicaSet
	snapMu sync.Mutex

	vdsDone  atomic.Int64
	vdsTotal atomic.Int64

	// Final answers, set under Gateway.mu when the study completes.
	dsFP         string // invariant.Fingerprint of the dataset
	sketchFP     string // final Options.Stream fingerprint
	streamFP     string // final snapshot-path fingerprint (== sketchFP)
	finalSketch  []byte
	finalSeq     uint64
	kills        int
	ctlFP        string // control decision-log fingerprint (controlled studies)
	ctlDecisions int

	done chan struct{}
}

// Gateway is the always-on serving plane. It implements netblock.Handler:
// mount it with netblock.NewHandlerServer over any listener — TCP for real
// deployments, fabric.Loopback for in-process harnesses. All methods are
// safe for concurrent use.
type Gateway struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	closed  bool
	nextID  uint64
	tenants map[string]*tenant
	names   []string // sorted; deterministic WFQ tie-break order
	byID    map[uint64]*job
	results map[string]*job // completed studies by content address
	ledger  invariant.StudyLedger
	grants  []Grant
	adms    []Admission
	running int
	vtime   float64
	changed chan struct{}
	timer   *time.Timer

	runWG sync.WaitGroup
}

// New builds a gateway. Close releases it.
func New(cfg Config) *Gateway {
	gw := &Gateway{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		byID:    make(map[uint64]*job),
		results: make(map[string]*job),
		changed: make(chan struct{}),
	}
	gw.start = gw.now()
	return gw
}

func (gw *Gateway) now() time.Time {
	if gw.cfg.Now != nil {
		return gw.cfg.Now()
	}
	return time.Now()
}

// bumpLocked wakes every Wait-er; call with mu held after any state change.
func (gw *Gateway) bumpLocked() {
	close(gw.changed)
	gw.changed = make(chan struct{})
}

func (gw *Gateway) tenantLocked(name string, now time.Time) *tenant {
	tn := gw.tenants[name]
	if tn != nil {
		return tn
	}
	tn = &tenant{name: name, weight: 1}
	if w := gw.cfg.WeightOf[name]; w > 0 {
		tn.weight = w
	}
	if gw.cfg.SubmitRate > 0 {
		burst := gw.cfg.SubmitBurst
		if burst <= 0 {
			burst = 1
		}
		tn.bucket = throttle.NewTokenBucket(gw.cfg.SubmitRate, burst, now)
	}
	gw.tenants[name] = tn
	gw.names = append(gw.names, name)
	sort.Strings(gw.names)
	return tn
}

// Submit admits one study. The reply carries the study ID to poll; a
// rejection (tenant queue at its admission bound, malformed spec, gateway
// closed) is an error. Over-cap-rate submissions are NOT errors: they queue
// behind the tenant's token bucket and start when it refills.
func (gw *Gateway) Submit(tenantName string, spec StudySpec) (SubmitReply, error) {
	if n := len(tenantName); n == 0 || n > maxTenantLen {
		return SubmitReply{}, fmt.Errorf("gateway: tenant name length %d, want [1, %d]", n, maxTenantLen)
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return SubmitReply{}, err
	}
	if spec.LeaderKills > 0 {
		fc := gw.cfg.Fabric
		if fc == nil || fc.Replicas < 2 {
			return SubmitReply{}, fmt.Errorf("gateway: leader-kill studies need a replicated fabric (this gateway runs %s)", gw.fabricDesc())
		}
		if max := (fc.Replicas - 1) / 2; spec.LeaderKills > max {
			return SubmitReply{}, fmt.Errorf("gateway: a %d-replica fabric survives at most %d leader kills", fc.Replicas, max)
		}
	}
	now := gw.now()
	key := spec.key()

	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.closed {
		return SubmitReply{}, errors.New("gateway: closed")
	}
	at := now.Sub(gw.start).Seconds()
	tn := gw.tenantLocked(tenantName, now)
	if prev := gw.results[key]; prev != nil {
		gw.ledger.Deduped++
		tn.ledger.Deduped++
		gw.adms = append(gw.adms, Admission{Tenant: tenantName, Study: prev.id, Decision: "deduped", AtSec: at})
		return SubmitReply{StudyID: prev.id, State: StateName(StateDone), Deduped: true}, nil
	}
	depth := gw.cfg.MaxQueuedPerTenant
	if depth <= 0 {
		depth = 16
	}
	if len(tn.queue) >= depth {
		gw.ledger.Rejected++
		tn.ledger.Rejected++
		gw.adms = append(gw.adms, Admission{Tenant: tenantName, Decision: "rejected", AtSec: at})
		return SubmitReply{}, fmt.Errorf("gateway: tenant %q queue full (%d queued)", tenantName, len(tn.queue))
	}
	gw.nextID++
	j := &job{
		id:     gw.nextID,
		tenant: tenantName,
		spec:   spec,
		key:    key,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	gw.byID[j.id] = j
	if len(tn.queue) == 0 && tn.pass < gw.vtime {
		// A tenant re-entering the backlog starts at the current virtual
		// time: it cannot bank credit from its idle period.
		tn.pass = gw.vtime
	}
	tn.queue = append(tn.queue, j)
	gw.ledger.Submitted++
	tn.ledger.Submitted++
	gw.ledger.Queued++
	tn.ledger.Queued++
	gw.adms = append(gw.adms, Admission{Tenant: tenantName, Study: j.id, Decision: "queued", AtSec: at})
	gw.scheduleLocked(now)
	gw.bumpLocked()
	return SubmitReply{StudyID: j.id, State: StateName(j.state)}, nil
}

func (gw *Gateway) fabricDesc() string {
	if gw.cfg.Fabric == nil {
		return "in-process execution"
	}
	return fmt.Sprintf("%d replica(s)", gw.cfg.Fabric.Replicas)
}

// scheduleLocked grants run slots: while a slot is free, pick the
// lowest-virtual-time tenant (ties broken by name) whose queue is non-empty
// and whose token bucket has a grant banked, charge the bucket, and start
// the head study. Stride scheduling — each grant advances the tenant's
// virtual time by 1/weight — is what bounds any backlogged tenant's share
// to its weight within one grant.
func (gw *Gateway) scheduleLocked(now time.Time) {
	maxc := gw.cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 1
	}
	for gw.running < maxc && !gw.closed {
		var best *tenant
		for _, name := range gw.names {
			tn := gw.tenants[name]
			if len(tn.queue) == 0 {
				continue
			}
			if tn.bucket != nil && tn.bucket.Tokens(now) < 1 {
				continue
			}
			if best == nil || tn.pass < best.pass {
				best = tn
			}
		}
		if best == nil {
			break
		}
		if best.bucket != nil {
			best.bucket.Take(now)
		}
		j := best.queue[0]
		best.queue = best.queue[1:]
		gw.vtime = best.pass
		best.pass += 1 / best.weight
		at := now.Sub(gw.start).Seconds()
		gw.grants = append(gw.grants, Grant{Tenant: best.name, Study: j.id, AtSec: at})
		best.grantsAt = append(best.grantsAt, at)
		gw.ledger.Queued--
		best.ledger.Queued--
		gw.ledger.Granted++
		best.ledger.Granted++
		gw.ledger.Running++
		best.ledger.Running++
		j.state = StateRunning
		j.ctx, j.cancel = context.WithCancel(context.Background())
		gw.running++
		gw.runWG.Add(1)
		go gw.runJob(j)
	}
	gw.armTimerLocked(now)
}

// armTimerLocked schedules a wall-clock re-kick at the earliest token refill
// among gated backlogged tenants. Fake-clock gateways (cfg.Now set) never arm
// timers; tests drive re-admission with Poke.
func (gw *Gateway) armTimerLocked(now time.Time) {
	if gw.cfg.Now != nil || gw.closed {
		return
	}
	var earliest time.Time
	for _, tn := range gw.tenants {
		if len(tn.queue) == 0 || tn.bucket == nil || tn.bucket.Tokens(now) >= 1 {
			continue
		}
		na := tn.bucket.NextAt(now)
		if na.IsZero() {
			continue
		}
		if earliest.IsZero() || na.Before(earliest) {
			earliest = na
		}
	}
	if gw.timer != nil {
		gw.timer.Stop()
		gw.timer = nil
	}
	if earliest.IsZero() {
		return
	}
	d := earliest.Sub(now)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	gw.timer = time.AfterFunc(d, gw.Poke)
}

// Poke re-runs admission against the current clock. Call it after advancing
// a fake clock; real-clock gateways poke themselves via refill timers.
func (gw *Gateway) Poke() {
	now := gw.now()
	gw.mu.Lock()
	if !gw.closed {
		gw.scheduleLocked(now)
	}
	gw.bumpLocked()
	gw.mu.Unlock()
}

// runJob executes one granted study and settles its terminal state.
func (gw *Gateway) runJob(j *job) {
	defer gw.runWG.Done()
	var err error
	if gw.cfg.Fabric != nil {
		err = gw.runFabric(j)
	} else {
		err = gw.runLocal(j)
	}
	now := gw.now()
	gw.mu.Lock()
	tn := gw.tenants[j.tenant]
	gw.running--
	gw.ledger.Running--
	tn.ledger.Running--
	switch {
	case j.canceled:
		j.state = StateCanceled
		gw.ledger.CanceledRunning++
		tn.ledger.CanceledRunning++
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		gw.ledger.Failed++
		tn.ledger.Failed++
	default:
		j.state = StateDone
		gw.results[j.key] = j
		gw.ledger.Completed++
		tn.ledger.Completed++
	}
	j.cancel()
	gw.scheduleLocked(now)
	gw.bumpLocked()
	gw.mu.Unlock()
	close(j.done)
}

// runLocal executes the study in-process: ebs.Run with a streaming sketch
// destination plus a SnapshotSink serving incremental mid-run state.
func (gw *Gateway) runLocal(j *job) error {
	fleet, err := workload.Generate(j.spec.FleetConfig())
	if err != nil {
		return err
	}
	stream := sketch.NewSet(sketch.Config{})
	sink := &ebs.SnapshotSink{}
	gw.mu.Lock()
	j.sink = sink
	gw.mu.Unlock()
	opts := j.spec.RunOptions()
	opts.Stream = stream
	opts.Snapshots = sink
	if j.spec.Scenario != "" {
		built, err := scenario.Build(j.spec.Scenario)
		if err != nil {
			return err
		}
		wl, err := built.Bind(fleet)
		if err != nil {
			return err
		}
		opts.Scenario = wl
	}
	opts.Progress = func(done, total int) {
		j.vdsTotal.Store(int64(total))
		j.vdsDone.Store(int64(done))
		if gw.cfg.OnProgress != nil {
			gw.cfg.OnProgress(j.id, done, total)
		}
	}
	sim := ebs.New(fleet)
	var ds *trace.Dataset
	if j.spec.Control != "" {
		// Controlled study: the full predict→act loop. The observe pass
		// runs bare (RunControlled strips stream/snapshot/progress from
		// it), so the sink and the progress counters see only the
		// actuated pass the tenant's answer comes from.
		pol, err := control.ByName(j.spec.Control)
		if err != nil {
			return err
		}
		var plan *control.Plan
		ds, plan, err = sim.RunControlled(j.ctx, opts, pol, control.Config{EpochSec: j.spec.ControlEpochSec})
		if err != nil {
			return err
		}
		gw.mu.Lock()
		j.ctlFP = plan.LogFingerprint()
		j.ctlDecisions = len(plan.Decisions)
		gw.mu.Unlock()
	} else {
		var err error
		ds, err = sim.Run(j.ctx, opts)
		if err != nil {
			return err
		}
	}
	enc, _, seq := sink.Snapshot()
	gw.mu.Lock()
	j.dsFP = invariant.Fingerprint(ds)
	j.sketchFP = stream.Fingerprint()
	j.streamFP = sink.Fingerprint()
	j.finalSketch = enc
	j.finalSeq = seq
	gw.mu.Unlock()
	return nil
}

// runFabric executes the study on its own in-process fabric: a replica set
// (with chaos leader kills when the spec asks for them) plus a worker pool
// over loopback transports. Mid-run snapshots merge the accepted shard
// partials; the final answer must match what ebs.Run would have produced.
func (gw *Gateway) runFabric(j *job) error {
	// The control loop is sequential over epochs, so controlled studies run
	// in-process even on a fabric-backed gateway (admission already pinned
	// Shards and LeaderKills to zero for them).
	if j.spec.Control != "" {
		return gw.runLocal(j)
	}
	fc := *gw.cfg.Fabric
	if fc.Replicas < 1 {
		fc.Replicas = 1
	}
	if fc.Workers < 1 {
		fc.Workers = 1
	}
	shards := j.spec.Shards
	if shards == 0 {
		shards = fc.Shards
	}
	stream := sketch.NewSet(sketch.Config{})
	opts := j.spec.RunOptions()
	opts.Stream = stream
	if j.spec.LeaderKills > 0 {
		// Leader kills are control-plane-only chaos: they never reach
		// worker schedules, so the no-chaos oracle stays valid.
		opts.Chaos = &chaos.Plan{Recoverable: true, LeaderKills: j.spec.LeaderKills}
	}
	rs, err := fabric.NewReplicaSet(fabric.Config{Fleet: j.spec.FleetConfig(), Opts: opts, Scenario: j.spec.Scenario, Shards: shards}, fc.Replicas)
	if err != nil {
		return err
	}
	defer rs.Close()
	plan := rs.Coordinator(0).Plan()
	j.vdsTotal.Store(int64(plan[len(plan)-1].Hi))
	nShards := len(plan)
	rs.OnAccepted = func(n int) {
		if gw.cfg.OnProgress != nil {
			gw.cfg.OnProgress(j.id, n, nShards)
		}
	}
	gw.mu.Lock()
	j.rs = rs
	gw.mu.Unlock()

	var wg sync.WaitGroup
	workerErrs := make([]error, fc.Workers)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = fabric.RunWorker(j.ctx, fabric.WorkerConfig{
				Dials:       rs.Dials(),
				CallTimeout: 2 * time.Second,
			})
		}(i)
	}

	// Wait for ledger completion WITHOUT merging: the final streamed
	// snapshot must be captured from the immutable partials before
	// rs.Wait's merge consumes their sketch state.
	doneAny := make(chan struct{})
	var once sync.Once
	for i := 0; i < fc.Replicas; i++ {
		go func(ch <-chan struct{}) {
			select {
			case <-ch:
				once.Do(func() { close(doneAny) })
			case <-j.ctx.Done():
			}
		}(rs.Coordinator(i).DoneCh())
	}
	select {
	case <-doneAny:
	case <-j.ctx.Done():
		rs.Close()
		wg.Wait()
		return j.ctx.Err()
	}

	var streamFP string
	var finalVDs int
	if set, vds, serr := rs.SketchSnapshot(); serr == nil && set != nil {
		streamFP = set.Fingerprint()
		finalVDs = vds
	}

	// The merge consumes the partials' sketch state; snapMu keeps any
	// in-flight snapshot RPC ordered strictly before it, and the final
	// fields are published inside the same critical section so a snapshot
	// arriving after the merge serves the stored final state.
	j.snapMu.Lock()
	ds, err := rs.Wait(j.ctx)
	if err == nil {
		gw.mu.Lock()
		j.rs = nil
		j.dsFP = invariant.Fingerprint(ds)
		j.sketchFP = stream.Fingerprint()
		j.streamFP = streamFP
		j.finalSketch = stream.EncodeBinary()
		j.finalSeq = uint64(finalVDs)
		j.kills = rs.KillsExecuted()
		gw.mu.Unlock()
	}
	j.snapMu.Unlock()
	if err != nil {
		rs.Close()
		wg.Wait()
		return err
	}
	// Let the workers observe AssignDone and drain against the still-open
	// control plane; the deferred rs.Close tears the listeners down after.
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil && !errors.Is(werr, context.Canceled) {
			return fmt.Errorf("gateway: fabric worker %d: %w", i, werr)
		}
	}
	if sched := rs.Schedule(); sched != nil && rs.KillsExecuted() != len(sched.LeaderKills) {
		return fmt.Errorf("gateway: %d of %d scheduled leader kills fired", rs.KillsExecuted(), len(sched.LeaderKills))
	}
	return nil
}

// Status reports one study's lifecycle view.
func (gw *Gateway) Status(id uint64) (StatusReply, error) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	j := gw.byID[id]
	if j == nil {
		return StatusReply{}, fmt.Errorf("gateway: no study %d", id)
	}
	rep := StatusReply{
		StudyID:   j.id,
		Tenant:    j.tenant,
		State:     StateName(j.state),
		VDsDone:   int(j.vdsDone.Load()),
		VDsTotal:  int(j.vdsTotal.Load()),
		DatasetFP: j.dsFP,
		SketchFP:  j.sketchFP,
		Kills:     j.kills,
		Error:     j.errMsg,

		ControlLogFP:     j.ctlFP,
		ControlDecisions: j.ctlDecisions,
	}
	if j.state == StateQueued {
		for i, q := range gw.tenants[j.tenant].queue {
			if q == j {
				rep.QueuePos = i
				break
			}
		}
	}
	return rep, nil
}

// Snapshot serves the study's current streamed sketch state: the sink's
// folded deltas for local execution, the merged accepted shard partials for
// fabric execution, or the stored final state once the study completes.
func (gw *Gateway) Snapshot(id uint64) (SnapshotReply, error) {
	gw.mu.Lock()
	j := gw.byID[id]
	if j == nil {
		gw.mu.Unlock()
		return SnapshotReply{}, fmt.Errorf("gateway: no study %d", id)
	}
	rep := SnapshotReply{
		StudyID:  j.id,
		State:    j.state,
		VDsDone:  uint32(j.vdsDone.Load()),
		VDsTotal: uint32(j.vdsTotal.Load()),
	}
	if j.finalSketch != nil || j.state == StateQueued || j.state == StateFailed || j.state == StateCanceled {
		rep.Sketch = j.finalSketch
		rep.SketchFP = j.streamFP
		rep.Seq = j.finalSeq
		gw.mu.Unlock()
		return rep, nil
	}
	sink, rs := j.sink, j.rs
	gw.mu.Unlock()

	switch {
	case rs != nil:
		j.snapMu.Lock()
		// Re-check: the run may have completed (and merged) while this
		// request waited on snapMu; the partials are no longer readable
		// but the final state is published.
		gw.mu.Lock()
		if j.finalSketch != nil {
			rep.State = j.state
			rep.Sketch = j.finalSketch
			rep.SketchFP = j.streamFP
			rep.Seq = j.finalSeq
			rep.VDsDone = uint32(j.vdsDone.Load())
			gw.mu.Unlock()
			j.snapMu.Unlock()
			return rep, nil
		}
		gw.mu.Unlock()
		set, vds, err := rs.SketchSnapshot()
		j.snapMu.Unlock()
		if err != nil {
			return SnapshotReply{}, err
		}
		if set != nil {
			rep.Sketch = set.EncodeBinary()
			rep.SketchFP = set.Fingerprint()
			rep.Seq = uint64(vds)
			rep.VDsDone = uint32(vds)
		}
	case sink != nil:
		enc, vds, seq := sink.Snapshot()
		if enc != nil {
			rep.Sketch = enc
			rep.SketchFP = sink.Fingerprint()
			rep.Seq = seq
			rep.VDsDone = uint32(vds)
		}
	}
	return rep, nil
}

// Cancel cancels one study: a queued study leaves its tenant queue
// immediately, a running study has its context canceled and settles as
// canceled when the run returns. Terminal studies are left untouched.
func (gw *Gateway) Cancel(id uint64) (CancelReply, error) {
	gw.mu.Lock()
	j := gw.byID[id]
	if j == nil {
		gw.mu.Unlock()
		return CancelReply{}, fmt.Errorf("gateway: no study %d", id)
	}
	var cancel context.CancelFunc
	switch j.state {
	case StateQueued:
		tn := gw.tenants[j.tenant]
		for i, q := range tn.queue {
			if q == j {
				tn.queue = append(tn.queue[:i], tn.queue[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		gw.ledger.Queued--
		tn.ledger.Queued--
		gw.ledger.CanceledQueued++
		tn.ledger.CanceledQueued++
		close(j.done)
		gw.bumpLocked()
	case StateRunning:
		if !j.canceled {
			j.canceled = true
			cancel = j.cancel
		}
	}
	state := StateName(j.state)
	gw.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return CancelReply{State: state}, nil
}

// Stats reports one tenant's ledger, token balance, and grant log.
func (gw *Gateway) Stats(tenantName string) (TenantStats, error) {
	now := gw.now()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	tn := gw.tenants[tenantName]
	if tn == nil {
		return TenantStats{}, fmt.Errorf("gateway: no tenant %q", tenantName)
	}
	st := TenantStats{
		Tenant:          tenantName,
		Submitted:       tn.ledger.Submitted,
		Rejected:        tn.ledger.Rejected,
		Deduped:         tn.ledger.Deduped,
		Granted:         tn.ledger.Granted,
		Completed:       tn.ledger.Completed,
		Failed:          tn.ledger.Failed,
		CanceledQueued:  tn.ledger.CanceledQueued,
		CanceledRunning: tn.ledger.CanceledRunning,
		Queued:          tn.ledger.Queued,
		Running:         tn.ledger.Running,
		GrantsAtSec:     append([]float64(nil), tn.grantsAt...),
	}
	if tn.bucket != nil {
		st.Tokens = tn.bucket.Tokens(now)
	}
	return st, nil
}

// Ledger snapshots the gateway-wide study accounting (the
// invariant.CheckGatewayAccounting subject).
func (gw *Gateway) Ledger() invariant.StudyLedger {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.ledger
}

// TenantLedger snapshots one tenant's accounting.
func (gw *Gateway) TenantLedger(name string) (invariant.StudyLedger, bool) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	tn := gw.tenants[name]
	if tn == nil {
		return invariant.StudyLedger{}, false
	}
	return tn.ledger, true
}

// Grants snapshots the scheduler's grant log.
func (gw *Gateway) Grants() []Grant {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return append([]Grant(nil), gw.grants...)
}

// Admissions snapshots the admission log.
func (gw *Gateway) Admissions() []Admission {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return append([]Admission(nil), gw.adms...)
}

// Wait blocks until the gateway is idle — no queued and no running studies —
// or ctx ends. A tenant gated behind an empty token bucket counts as queued:
// on a fake clock, advance it and Poke.
func (gw *Gateway) Wait(ctx context.Context) error {
	for {
		gw.mu.Lock()
		idle := gw.ledger.Queued == 0 && gw.ledger.Running == 0
		ch := gw.changed
		gw.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close shuts the gateway down: new submissions are refused, queued studies
// are canceled, running studies have their contexts canceled, and Close
// returns once every run goroutine has settled. Callers wanting a graceful
// drain call Wait first.
func (gw *Gateway) Close() {
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		gw.runWG.Wait()
		return
	}
	gw.closed = true
	if gw.timer != nil {
		gw.timer.Stop()
		gw.timer = nil
	}
	var cancels []context.CancelFunc
	for _, tn := range gw.tenants {
		for _, j := range tn.queue {
			j.state = StateCanceled
			gw.ledger.Queued--
			tn.ledger.Queued--
			gw.ledger.CanceledQueued++
			tn.ledger.CanceledQueued++
			close(j.done)
		}
		tn.queue = nil
	}
	for _, j := range gw.byID {
		if j.state == StateRunning && !j.canceled {
			j.canceled = true
			cancels = append(cancels, j.cancel)
		}
	}
	gw.bumpLocked()
	gw.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	gw.runWG.Wait()
}

// Handle implements netblock.Handler for the five gateway ops.
func (gw *Gateway) Handle(req *netblock.Request) *netblock.Response {
	resp := &netblock.Response{ID: req.ID, Status: netblock.StatusOK}
	fail := func(err error) *netblock.Response {
		resp.Status = netblock.StatusError
		resp.Payload = []byte(err.Error())
		return resp
	}
	switch req.Op {
	case netblock.OpSubmitStudy:
		sub, err := DecodeSubmit(req.Payload)
		if err != nil {
			return fail(err)
		}
		reply, err := gw.Submit(sub.Tenant, sub.Spec)
		if err != nil {
			return fail(err)
		}
		resp.Payload = mustJSON(reply)
	case netblock.OpStudyStatus:
		var m StatusRequest
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		reply, err := gw.Status(m.StudyID)
		if err != nil {
			return fail(err)
		}
		resp.Payload = mustJSON(reply)
	case netblock.OpStreamSnapshot:
		id, err := DecodeSnapshotRequest(req.Payload)
		if err != nil {
			return fail(err)
		}
		reply, err := gw.Snapshot(id)
		if err != nil {
			return fail(err)
		}
		resp.Payload = EncodeSnapshotReply(reply)
	case netblock.OpCancelStudy:
		var m CancelRequest
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		reply, err := gw.Cancel(m.StudyID)
		if err != nil {
			return fail(err)
		}
		resp.Payload = mustJSON(reply)
	case netblock.OpTenantStats:
		var m StatsRequest
		if err := fromJSON(req.Payload, &m); err != nil {
			return fail(err)
		}
		reply, err := gw.Stats(m.Tenant)
		if err != nil {
			return fail(err)
		}
		resp.Payload = mustJSON(reply)
	default:
		return fail(fmt.Errorf("gateway: op %s is not a gateway request", req.Op))
	}
	return resp
}
