package gateway

import (
	"net"
	"time"

	"ebslab/internal/netblock"
)

// Client is a typed gateway client over one netblock connection. Methods are
// safe for concurrent use (the underlying protocol multiplexes by request
// ID). The gateway trusts its network — tenancy is declared, not
// authenticated — exactly like the fabric trusts its workers.
type Client struct {
	c *netblock.Client
}

// Dial connects to a gateway over TCP.
func Dial(addr string) (*Client, error) {
	c, err := netblock.DialConfig("tcp", addr, netblock.Config{Timeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// NewClient wraps an established connection (harnesses dial a
// fabric.Loopback and hand the conn here).
func NewClient(conn net.Conn) *Client {
	return &Client{c: netblock.NewClient(conn)}
}

// Close tears the connection down.
func (cl *Client) Close() error { return cl.c.Close() }

// Submit submits one study for tenant.
func (cl *Client) Submit(tenant string, spec StudySpec) (SubmitReply, error) {
	payload, err := cl.c.Call(netblock.OpSubmitStudy, EncodeSubmit(SubmitRequest{Tenant: tenant, Spec: spec}))
	if err != nil {
		return SubmitReply{}, err
	}
	var r SubmitReply
	if err := fromJSON(payload, &r); err != nil {
		return SubmitReply{}, err
	}
	return r, nil
}

// Status polls one study.
func (cl *Client) Status(id uint64) (StatusReply, error) {
	payload, err := cl.c.Call(netblock.OpStudyStatus, mustJSON(StatusRequest{StudyID: id}))
	if err != nil {
		return StatusReply{}, err
	}
	var r StatusReply
	if err := fromJSON(payload, &r); err != nil {
		return StatusReply{}, err
	}
	return r, nil
}

// Snapshot streams one incremental sketch snapshot of a study.
func (cl *Client) Snapshot(id uint64) (SnapshotReply, error) {
	payload, err := cl.c.Call(netblock.OpStreamSnapshot, EncodeSnapshotRequest(id))
	if err != nil {
		return SnapshotReply{}, err
	}
	return DecodeSnapshotReply(payload)
}

// Cancel cancels one study.
func (cl *Client) Cancel(id uint64) (CancelReply, error) {
	payload, err := cl.c.Call(netblock.OpCancelStudy, mustJSON(CancelRequest{StudyID: id}))
	if err != nil {
		return CancelReply{}, err
	}
	var r CancelReply
	if err := fromJSON(payload, &r); err != nil {
		return CancelReply{}, err
	}
	return r, nil
}

// TenantStats fetches one tenant's serving statistics.
func (cl *Client) TenantStats(tenant string) (TenantStats, error) {
	payload, err := cl.c.Call(netblock.OpTenantStats, mustJSON(StatsRequest{Tenant: tenant}))
	if err != nil {
		return TenantStats{}, err
	}
	var r TenantStats
	if err := fromJSON(payload, &r); err != nil {
		return TenantStats{}, err
	}
	return r, nil
}
