package gateway_test

import (
	"context"
	"testing"

	"ebslab/internal/ebs"
	"ebslab/internal/gateway"
	"ebslab/internal/gateway/gatewaytest"
	"ebslab/internal/invariant"
	"ebslab/internal/scenario"
	"ebslab/internal/sketch"
	"ebslab/internal/workload"
)

// scenarioOracle is RunOracle with the scenario bound the way the gateway
// binds it: rebuilt from the spec string against the spec's fleet.
func scenarioOracle(t *testing.T, spec gateway.StudySpec) (string, string) {
	t.Helper()
	fleet, err := workload.Generate(spec.FleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	built, err := scenario.Build(spec.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := built.Bind(fleet)
	if err != nil {
		t.Fatal(err)
	}
	stream := sketch.NewSet(sketch.Config{})
	opts := spec.RunOptions()
	opts.Stream = stream
	opts.Scenario = wl
	ds, err := ebs.New(fleet).Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return invariant.Fingerprint(ds), stream.Fingerprint()
}

// TestE2EScenarioStudy pushes a scenario study through a live gateway — once
// in-process and once on a two-worker fabric — and requires both served
// answers to be byte-identical to a direct run of the same bound scenario.
func TestE2EScenarioStudy(t *testing.T) {
	spec := gateway.StudySpec{
		Seed: 4242, DurationSec: 2, Nodes: 2, Users: 4, MaxVDs: 6,
		EventSampleEvery: 4, Scenario: "bufferbloat,period=8,duty=0.5",
	}
	wantDS, wantSK := scenarioOracle(t, spec)

	for name, cfg := range map[string]gateway.Config{
		"local":  {MaxConcurrent: 1},
		"fabric": {MaxConcurrent: 1, Fabric: &gateway.FabricConfig{Workers: 2}},
	} {
		t.Run(name, func(t *testing.T) {
			h := gatewaytest.Start(cfg)
			defer h.Close()
			cl, err := h.Client()
			if err != nil {
				t.Fatal(err)
			}
			sub, err := cl.Submit("alice", spec)
			if err != nil {
				t.Fatalf("submit scenario study: %v", err)
			}
			st := pollDone(t, cl, sub.StudyID)
			if st.DatasetFP != wantDS {
				t.Errorf("served dataset fingerprint %s, direct-run oracle %s", st.DatasetFP, wantDS)
			}
			if st.SketchFP != wantSK {
				t.Errorf("served sketch fingerprint %s, direct-run oracle %s", st.SketchFP, wantSK)
			}

			// The scenario-less twin is a distinct content address.
			plain := spec
			plain.Scenario = ""
			psub, err := cl.Submit("alice", plain)
			if err != nil {
				t.Fatal(err)
			}
			if psub.Deduped {
				t.Fatal("scenario-less spec deduped against its scenario twin")
			}
			pst := pollDone(t, cl, psub.StudyID)
			if pst.DatasetFP == wantDS {
				t.Error("scenario-less study answered the scenario dataset")
			}
		})
	}
}
