package gateway_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ebslab/internal/gateway"
	"ebslab/internal/gateway/gatewaytest"
	"ebslab/internal/invariant"
	"ebslab/internal/sketch"
)

// snapProbe hangs one mid-run snapshot capture per study off the gateway's
// progress hook: the first time a study reports partial progress, it grabs a
// streamed snapshot through the serving API. The hook runs on the study's own
// run goroutine with no gateway locks held, so the probe exercises exactly
// the concurrent-read path a live tenant would.
type snapProbe struct {
	gw *gateway.Gateway

	mu    sync.Mutex
	snaps map[uint64]gateway.SnapshotReply
}

func newSnapProbe() *snapProbe {
	return &snapProbe{snaps: make(map[uint64]gateway.SnapshotReply)}
}

func (p *snapProbe) onProgress(study uint64, done, total int) {
	if done < 1 || done >= total {
		return
	}
	p.mu.Lock()
	_, seen := p.snaps[study]
	p.mu.Unlock()
	if seen {
		return
	}
	rep, err := p.gw.Snapshot(study)
	if err != nil || len(rep.Sketch) == 0 {
		return
	}
	p.mu.Lock()
	p.snaps[study] = rep
	p.mu.Unlock()
}

func (p *snapProbe) get(study uint64) (gateway.SnapshotReply, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep, ok := p.snaps[study]
	return rep, ok
}

// pollDone polls a study through the protocol client until it settles.
func pollDone(t *testing.T, cl *gateway.Client, id uint64) gateway.StatusReply {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := cl.Status(id)
		if err != nil {
			t.Fatalf("status %d: %v", id, err)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "canceled":
			t.Fatalf("study %d settled as %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("study %d stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verifySnapshot checks a streamed frame's internal consistency: the carried
// sketch bytes must decode, and their fingerprint must be the fingerprint the
// frame claims — so a tenant can trust any single frame in isolation.
func verifySnapshot(t *testing.T, rep gateway.SnapshotReply) {
	t.Helper()
	if len(rep.Sketch) == 0 || rep.SketchFP == "" {
		t.Fatalf("snapshot frame for study %d carries no sketch", rep.StudyID)
	}
	set, err := sketch.DecodeSet(rep.Sketch)
	if err != nil {
		t.Fatalf("study %d snapshot does not decode: %v", rep.StudyID, err)
	}
	if fp := set.Fingerprint(); fp != rep.SketchFP {
		t.Fatalf("study %d snapshot fingerprint %s, frame claims %s", rep.StudyID, fp, rep.SketchFP)
	}
}

// TestE2EConcurrentTenantsMatchOracle is the headline end-to-end run: three
// tenants push four studies each through a live gateway over loopback,
// concurrently, and every completed study's dataset fingerprint must be
// byte-identical to a direct single-process ebs.Run of the same spec. Each
// study must also serve at least one mid-run streamed snapshot, and the final
// streamed state must converge on the final sketch fingerprint.
func TestE2EConcurrentTenantsMatchOracle(t *testing.T) {
	probe := newSnapProbe()
	h := gatewaytest.Start(gateway.Config{
		MaxConcurrent: 4,
		OnProgress:    probe.onProgress,
	})
	defer h.Close()
	probe.gw = h.GW

	spec := func(seed int64) gateway.StudySpec {
		return gateway.StudySpec{Seed: seed, DurationSec: 1, Nodes: 2, Users: 4, MaxVDs: 6, EventSampleEvery: 4}
	}
	scripts := map[string][]gateway.StudySpec{}
	for ti := 0; ti < 3; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for si := 0; si < 4; si++ {
			scripts[tenant] = append(scripts[tenant], spec(int64(1000+ti*10+si)))
		}
	}
	subs, err := h.RunScripts(scripts)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}
	for tenant, list := range subs {
		if len(list) != 4 {
			t.Fatalf("tenant %s: %d submissions recorded, want 4", tenant, len(list))
		}
		for _, sub := range list {
			if sub.Err != nil {
				t.Fatalf("tenant %s: submit failed: %v", tenant, sub.Err)
			}
			st := pollDone(t, cl, sub.Reply.StudyID)

			oracle, err := gatewaytest.RunOracle(context.Background(), sub.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if st.DatasetFP != oracle.DatasetFP {
				t.Errorf("tenant %s study %d: dataset fingerprint %s, oracle %s",
					tenant, st.StudyID, st.DatasetFP, oracle.DatasetFP)
			}
			if st.SketchFP != oracle.SketchFP {
				t.Errorf("tenant %s study %d: sketch fingerprint %s, oracle %s",
					tenant, st.StudyID, st.SketchFP, oracle.SketchFP)
			}

			mid, ok := probe.get(st.StudyID)
			if !ok {
				t.Fatalf("tenant %s study %d served no mid-run snapshot", tenant, st.StudyID)
			}
			verifySnapshot(t, mid)
			if mid.Seq == 0 {
				t.Errorf("study %d mid-run snapshot has zero sequence", st.StudyID)
			}

			final, err := cl.Snapshot(st.StudyID)
			if err != nil {
				t.Fatal(err)
			}
			verifySnapshot(t, final)
			if final.SketchFP != st.SketchFP {
				t.Errorf("study %d final streamed fingerprint %s diverges from final sketch %s",
					st.StudyID, final.SketchFP, st.SketchFP)
			}
			if final.Seq < mid.Seq {
				t.Errorf("study %d stream went backward: mid seq %d, final seq %d",
					st.StudyID, mid.Seq, final.Seq)
			}
		}
	}

	var rep invariant.Report
	l := h.GW.Ledger()
	invariant.CheckGatewayAccounting(&rep, &l, true)
	if err := rep.Err(); err != nil {
		t.Fatalf("gateway accounting after e2e: %v", err)
	}
	if l.Submitted != 12 || l.Completed != 12 {
		t.Fatalf("ledger %+v, want 12 submitted and completed", l)
	}
}

// TestE2EFabricLeaderKillMatchesOracle runs a study on a 3-replica fabric
// with chaos killing the acting leader mid-study. The surviving replicas must
// finish the study, the kill must actually fire, and the answer must still be
// byte-identical to the single-process oracle — the serving plane's whole
// availability claim in one assertion.
func TestE2EFabricLeaderKillMatchesOracle(t *testing.T) {
	probe := newSnapProbe()
	h := gatewaytest.Start(gateway.Config{
		MaxConcurrent: 1,
		Fabric:        &gateway.FabricConfig{Replicas: 3, Workers: 2},
		OnProgress:    probe.onProgress,
	})
	defer h.Close()
	probe.gw = h.GW

	spec := gateway.StudySpec{
		Seed: 7, DurationSec: 1, Nodes: 2, Users: 4, MaxVDs: 10,
		EventSampleEvery: 4, Shards: 5, LeaderKills: 1,
	}
	cl, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := cl.Submit("chaos-tenant", spec)
	if err != nil {
		t.Fatal(err)
	}
	st := pollDone(t, cl, reply.StudyID)
	if st.Kills != 1 {
		t.Fatalf("study %d executed %d leader kills, want 1", st.StudyID, st.Kills)
	}

	oracle, err := gatewaytest.RunOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetFP != oracle.DatasetFP {
		t.Fatalf("dataset fingerprint %s, oracle %s (leader kill corrupted the study)", st.DatasetFP, oracle.DatasetFP)
	}
	if st.SketchFP != oracle.SketchFP {
		t.Fatalf("sketch fingerprint %s, oracle %s", st.SketchFP, oracle.SketchFP)
	}

	if mid, ok := probe.get(st.StudyID); ok {
		verifySnapshot(t, mid)
	}
	final, err := cl.Snapshot(st.StudyID)
	if err != nil {
		t.Fatal(err)
	}
	verifySnapshot(t, final)
	if final.SketchFP != st.SketchFP {
		t.Fatalf("final streamed fingerprint %s diverges from final sketch %s", final.SketchFP, st.SketchFP)
	}
}

// TestE2EFabricNoKillMatchesOracle is the control arm: the identical spec on
// the same fabric shape without chaos must land on the identical fingerprints.
func TestE2EFabricNoKillMatchesOracle(t *testing.T) {
	h := gatewaytest.Start(gateway.Config{
		MaxConcurrent: 1,
		Fabric:        &gateway.FabricConfig{Replicas: 3, Workers: 2},
	})
	defer h.Close()

	spec := gateway.StudySpec{
		Seed: 7, DurationSec: 1, Nodes: 2, Users: 4, MaxVDs: 10,
		EventSampleEvery: 4, Shards: 5,
	}
	cl, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := cl.Submit("calm-tenant", spec)
	if err != nil {
		t.Fatal(err)
	}
	st := pollDone(t, cl, reply.StudyID)
	if st.Kills != 0 {
		t.Fatalf("no-chaos study executed %d kills", st.Kills)
	}
	oracle, err := gatewaytest.RunOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetFP != oracle.DatasetFP || st.SketchFP != oracle.SketchFP {
		t.Fatalf("fabric run diverged from oracle: %s/%s vs %s/%s",
			st.DatasetFP, st.SketchFP, oracle.DatasetFP, oracle.SketchFP)
	}
}
