// Package gatewaytest is the end-to-end harness for the serving plane: it
// stands up a live gateway behind a netblock server on an in-process
// loopback listener, hands out protocol clients, runs deterministic
// per-tenant submission scripts, and computes single-process oracle
// fingerprints for any study spec. It deliberately does not import package
// testing (the httptest discipline), so CLIs and benchmarks can drive the
// same harness the test suite does.
package gatewaytest

import (
	"context"
	"fmt"
	"sync"

	"ebslab/internal/ebs"
	"ebslab/internal/fabric"
	"ebslab/internal/gateway"
	"ebslab/internal/invariant"
	"ebslab/internal/netblock"
	"ebslab/internal/sketch"
	"ebslab/internal/workload"
)

// Harness is one live gateway behind a loopback netblock server.
type Harness struct {
	GW *gateway.Gateway

	lb  *fabric.Loopback
	srv *netblock.Server

	mu      sync.Mutex
	clients []*gateway.Client
}

// Start builds a gateway from cfg and serves it.
func Start(cfg gateway.Config) *Harness {
	h := &Harness{
		GW: gateway.New(cfg),
		lb: fabric.NewLoopback(),
	}
	h.srv = netblock.NewHandlerServer(h.GW)
	go h.srv.Serve(h.lb) //nolint:errcheck — lifecycle ends with Close
	return h
}

// Client dials the gateway over the loopback and returns a protocol client.
// The harness closes it at teardown.
func (h *Harness) Client() (*gateway.Client, error) {
	conn, err := h.lb.Dial()
	if err != nil {
		return nil, err
	}
	cl := gateway.NewClient(conn)
	h.mu.Lock()
	h.clients = append(h.clients, cl)
	h.mu.Unlock()
	return cl, nil
}

// Close tears the harness down: clients, server, listener, gateway.
func (h *Harness) Close() {
	h.mu.Lock()
	clients := h.clients
	h.clients = nil
	h.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	h.srv.Close()
	h.lb.Close()
	h.GW.Close()
}

// Submission is one script step's outcome.
type Submission struct {
	Tenant string
	Spec   gateway.StudySpec
	Reply  gateway.SubmitReply
	Err    error
}

// RunScripts submits each tenant's study list concurrently — one goroutine
// and one protocol client per tenant, steps within a tenant strictly in
// order — and returns every outcome grouped by tenant. Submission errors are
// recorded, not fatal: admission rejections are part of what scripts probe.
func (h *Harness) RunScripts(scripts map[string][]gateway.StudySpec) (map[string][]Submission, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	out := make(map[string][]Submission, len(scripts))
	var dialErr error
	for tenant, specs := range scripts {
		cl, err := h.Client()
		if err != nil {
			dialErr = err
			break
		}
		wg.Add(1)
		go func(tenant string, specs []gateway.StudySpec) {
			defer wg.Done()
			subs := make([]Submission, 0, len(specs))
			for _, spec := range specs {
				reply, err := cl.Submit(tenant, spec)
				subs = append(subs, Submission{Tenant: tenant, Spec: spec, Reply: reply, Err: err})
			}
			mu.Lock()
			out[tenant] = subs
			mu.Unlock()
		}(tenant, specs)
	}
	wg.Wait()
	return out, dialErr
}

// Oracle is the single-process reference answer for one study spec.
type Oracle struct {
	DatasetFP string
	SketchFP  string
}

// RunOracle executes spec directly through ebs.Run — same fleet mapping,
// same options, fresh streaming sketch — and returns the fingerprints every
// gateway execution of that spec (local, fabric, fabric with leader kills)
// must reproduce byte for byte. Fabric-only spec fields (Shards,
// LeaderKills) do not influence the result: sharding is merge-invariant and
// leader kills are control-plane-only chaos.
func RunOracle(ctx context.Context, spec gateway.StudySpec) (Oracle, error) {
	fleet, err := workload.Generate(spec.FleetConfig())
	if err != nil {
		return Oracle{}, fmt.Errorf("gatewaytest: oracle fleet: %w", err)
	}
	stream := sketch.NewSet(sketch.Config{})
	opts := spec.RunOptions()
	opts.Stream = stream
	ds, err := ebs.New(fleet).Run(ctx, opts)
	if err != nil {
		return Oracle{}, fmt.Errorf("gatewaytest: oracle run: %w", err)
	}
	return Oracle{DatasetFP: invariant.Fingerprint(ds), SketchFP: stream.Fingerprint()}, nil
}
