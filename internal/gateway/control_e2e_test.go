package gateway_test

import (
	"context"
	"testing"

	"ebslab/internal/gateway"
	"ebslab/internal/gateway/gatewaytest"
)

// TestE2EControlledStudy pushes controlled studies through a live gateway and
// pins the serving-plane contract for the control plane: a noop-controlled
// study answers byte-identically to the uncontrolled oracle of the same
// dimensions, every controlled status carries a decision-log fingerprint, and
// a controlled spec never dedups against its uncontrolled twin.
func TestE2EControlledStudy(t *testing.T) {
	h := gatewaytest.Start(gateway.Config{MaxConcurrent: 2})
	defer h.Close()
	cl, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}

	base := gateway.StudySpec{Seed: 4242, DurationSec: 2, Nodes: 2, Users: 4, MaxVDs: 6, EventSampleEvery: 4}

	noop := base
	noop.Control = "noop"
	sub, err := cl.Submit("alice", noop)
	if err != nil {
		t.Fatalf("submit noop-controlled: %v", err)
	}
	st := pollDone(t, cl, sub.StudyID)
	if st.ControlLogFP == "" {
		t.Error("controlled study status carries no decision-log fingerprint")
	}
	if st.ControlDecisions != 0 {
		t.Errorf("noop made %d decisions, want 0", st.ControlDecisions)
	}
	oracle, err := gatewaytest.RunOracle(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetFP != oracle.DatasetFP {
		t.Errorf("noop-controlled dataset fingerprint %s, uncontrolled oracle %s", st.DatasetFP, oracle.DatasetFP)
	}
	if st.SketchFP != oracle.SketchFP {
		t.Errorf("noop-controlled sketch fingerprint %s, uncontrolled oracle %s", st.SketchFP, oracle.SketchFP)
	}

	// The uncontrolled twin is a distinct content address: no dedup in
	// either direction.
	plain, err := cl.Submit("alice", base)
	if err != nil {
		t.Fatalf("submit uncontrolled twin: %v", err)
	}
	if plain.Deduped {
		t.Fatal("uncontrolled spec deduped against its controlled twin")
	}
	pst := pollDone(t, cl, plain.StudyID)
	if pst.ControlLogFP != "" || pst.ControlDecisions != 0 {
		t.Errorf("uncontrolled status carries control fields: %+v", pst)
	}

	// Re-submitting the identical controlled spec IS answered from cache.
	again, err := cl.Submit("bob", noop)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.StudyID != sub.StudyID {
		t.Fatalf("identical controlled spec not deduped: %+v", again)
	}

	// A mitigating policy flows through the same path; its fingerprint must
	// differ from noop's exactly when it decided anything.
	re := base
	re.Control = "reactive"
	rsub, err := cl.Submit("alice", re)
	if err != nil {
		t.Fatal(err)
	}
	rst := pollDone(t, cl, rsub.StudyID)
	if rst.ControlLogFP == "" {
		t.Error("reactive study status carries no decision-log fingerprint")
	}
	if (rst.ControlLogFP == st.ControlLogFP) != (rst.ControlDecisions == 0) {
		t.Errorf("reactive made %d decisions but its log fingerprint %s vs noop %s",
			rst.ControlDecisions, rst.ControlLogFP, st.ControlLogFP)
	}
}

// TestE2EControlledOnFabricGateway proves a fabric-backed gateway still
// serves controlled studies: admission pins them to Shards=0, and runFabric
// routes them through the in-process path.
func TestE2EControlledOnFabricGateway(t *testing.T) {
	h := gatewaytest.Start(gateway.Config{
		MaxConcurrent: 1,
		Fabric:        &gateway.FabricConfig{Replicas: 1, Workers: 2, Shards: 2},
	})
	defer h.Close()
	cl, err := h.Client()
	if err != nil {
		t.Fatal(err)
	}
	spec := gateway.StudySpec{Seed: 99, DurationSec: 2, Nodes: 2, Users: 4, MaxVDs: 6, EventSampleEvery: 4, Control: "noop"}
	sub, err := cl.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	st := pollDone(t, cl, sub.StudyID)
	if st.ControlLogFP == "" {
		t.Fatal("controlled study on a fabric gateway lost its decision log")
	}
	plain := spec
	plain.Control = ""
	oracle, err := gatewaytest.RunOracle(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetFP != oracle.DatasetFP {
		t.Errorf("fabric-gateway noop dataset fingerprint %s, oracle %s", st.DatasetFP, oracle.DatasetFP)
	}
}
