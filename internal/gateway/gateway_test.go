package gateway

import (
	"context"
	"strings"
	"testing"
	"time"

	"ebslab/internal/invariant"
	"ebslab/internal/testclock"
)

// tinySpec is the smallest study the scheduler tests run: scheduling
// behavior is the subject, the simulation just has to finish quickly.
// Distinct seeds keep content addresses distinct (no accidental dedup).
func tinySpec(seed int64) StudySpec {
	return StudySpec{Seed: seed, DurationSec: 1, Nodes: 1, Users: 2, MaxVDs: 2, EventSampleEvery: 32}
}

// settle polls until the gateway has issued wantGrants grants and has no
// running study — the quiescent point between fake-clock advances.
func settle(t *testing.T, gw *Gateway, wantGrants int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		l := gw.Ledger()
		if len(gw.Grants()) >= wantGrants && l.Running == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("gateway did not settle at %d grants: ledger %+v, grants %d",
		wantGrants, gw.Ledger(), len(gw.Grants()))
}

func checkAccounting(t *testing.T, gw *Gateway, drained bool) {
	t.Helper()
	var rep invariant.Report
	l := gw.Ledger()
	invariant.CheckGatewayAccounting(&rep, &l, drained)
	if err := rep.Err(); err != nil {
		t.Fatalf("gateway accounting: %v", err)
	}
}

func TestSpecKeyNormalization(t *testing.T) {
	zero := StudySpec{Seed: 9}
	spelled := StudySpec{Seed: 9, DurationSec: 8, Nodes: 4, Users: 16, EventSampleEvery: 8, TraceSampleEvery: 1}
	if zero.key() != spelled.key() {
		t.Fatal("defaulted and spelled-out specs should content-address identically")
	}
	if zero.key() == (StudySpec{Seed: 10}).key() {
		t.Fatal("different seeds should content-address differently")
	}
	if zero.key() == (StudySpec{Seed: 9, Check: true}).key() {
		t.Fatal("Check flag should be part of the content address")
	}
}

func TestSubmitValidation(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{Now: clock.Now})
	defer gw.Close()

	if _, err := gw.Submit("", tinySpec(1)); err == nil {
		t.Error("empty tenant name accepted")
	}
	if _, err := gw.Submit(strings.Repeat("x", 65), tinySpec(1)); err == nil {
		t.Error("oversized tenant name accepted")
	}
	if _, err := gw.Submit("t", StudySpec{Seed: 1, DurationSec: -1}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := gw.Submit("t", StudySpec{Seed: 1, Nodes: maxNodes + 1}); err == nil {
		t.Error("oversized node count accepted")
	}
	// Leader-kill studies need a replicated fabric; this gateway runs
	// in-process.
	if _, err := gw.Submit("t", StudySpec{Seed: 1, LeaderKills: 1}); err == nil {
		t.Error("leader-kill study accepted without a fabric")
	}
	if l := gw.Ledger(); l.Submitted != 0 || l.Rejected != 0 {
		t.Fatalf("validation failures should not touch the ledger: %+v", l)
	}
}

func TestLeaderKillAdmissionNeedsQuorumHeadroom(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{Now: clock.Now, Fabric: &FabricConfig{Replicas: 3, Workers: 1}})
	defer gw.Close()
	// A 3-replica fabric survives exactly (3-1)/2 = 1 leader kill.
	if _, err := gw.Submit("t", StudySpec{Seed: 1, LeaderKills: 2, Shards: 2}); err == nil {
		t.Fatal("2 leader kills on a 3-replica fabric accepted")
	}
}

// TestWFQFairness pins the weighted-fair dequeue order. A blocker study holds
// the only run slot while tenants "a" (weight 2) and "b" (weight 1) each
// backlog 6 studies; the stride scheduler must then drain the static backlog
// in the exact virtual-time order, giving a twice b's share while both are
// backlogged.
func TestWFQFairness(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{
		Now:           clock.Now,
		MaxConcurrent: 1,
		WeightOf:      map[string]float64{"a": 2, "b": 1},
	})
	defer gw.Close()

	// The blocker is deliberately heavier than the tiny backlog studies so
	// the 12 in-memory submissions below land while it still runs.
	if _, err := gw.Submit("zz", StudySpec{Seed: 999, DurationSec: 4, Nodes: 2, Users: 8, MaxVDs: 20, EventSampleEvery: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := gw.Submit("a", tinySpec(int64(100+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := gw.Submit("b", tinySpec(int64(200+i))); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, gw, 13)

	got := make([]string, 0, 12)
	for _, g := range gw.Grants()[1:] {
		got = append(got, g.Tenant)
	}
	want := []string{"a", "b", "a", "a", "b", "a", "a", "b", "a", "b", "b", "b"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("WFQ grant order:\n got %v\nwant %v", got, want)
	}
	checkAccounting(t, gw, true)
}

// TestRateCapQueuesNotDrops pins the cap discipline: a tenant submitting
// faster than its token bucket refills has the excess QUEUED, not rejected,
// and the grant log obeys the pacing law exactly.
func TestRateCapQueuesNotDrops(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{
		Now:           clock.Now,
		MaxConcurrent: 4,
		SubmitRate:    1,
		SubmitBurst:   2,
	})
	defer gw.Close()

	for i := 0; i < 4; i++ {
		if _, err := gw.Submit("t", tinySpec(int64(10+i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st, err := gw.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted != 2 || st.Queued != 2 || st.Rejected != 0 {
		t.Fatalf("after burst: granted %d queued %d rejected %d, want 2/2/0",
			st.Granted, st.Queued, st.Rejected)
	}

	clock.Advance(time.Second)
	gw.Poke()
	settle(t, gw, 3)
	clock.Advance(time.Second)
	gw.Poke()
	settle(t, gw, 4)
	if err := gw.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	st, _ = gw.Stats("t")
	wantAt := []float64{0, 0, 1, 2}
	if len(st.GrantsAtSec) != len(wantAt) {
		t.Fatalf("grant log %v, want %v", st.GrantsAtSec, wantAt)
	}
	for i, at := range st.GrantsAtSec {
		if at != wantAt[i] {
			t.Fatalf("grant log %v, want %v", st.GrantsAtSec, wantAt)
		}
	}
	var rep invariant.Report
	invariant.CheckGrantPacing(&rep, "t", 1, 2, st.GrantsAtSec)
	if err := rep.Err(); err != nil {
		t.Fatalf("grant pacing: %v", err)
	}
	checkAccounting(t, gw, true)
}

// TestAdmissionRejectsDeepQueue pins the admission bound: submissions beyond
// MaxQueuedPerTenant are rejected with an error and counted, while everything
// under the bound queues.
func TestAdmissionRejectsDeepQueue(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{
		Now:                clock.Now,
		SubmitRate:         0.001, // first grant consumes the banked token; refill is far away
		SubmitBurst:        1,
		MaxQueuedPerTenant: 2,
	})
	defer gw.Close()

	if _, err := gw.Submit("t", tinySpec(1)); err != nil { // granted
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // queued
		if _, err := gw.Submit("t", tinySpec(int64(2+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gw.Submit("t", tinySpec(9)); err == nil {
		t.Fatal("submission over the admission bound accepted")
	}
	l, _ := gw.TenantLedger("t")
	if l.Rejected != 1 || l.Submitted != 3 {
		t.Fatalf("rejected %d submitted %d, want 1/3", l.Rejected, l.Submitted)
	}
	adms := gw.Admissions()
	if adms[len(adms)-1].Decision != "rejected" {
		t.Fatalf("last admission %+v, want rejected", adms[len(adms)-1])
	}
}

// TestDedup pins content-addressed result reuse: re-submitting a completed
// spec — from any tenant — is answered from the stored study without running
// anything.
func TestDedup(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{Now: clock.Now})
	defer gw.Close()

	spec := tinySpec(77)
	first, err := gw.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	settle(t, gw, 1)
	if err := gw.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := gw.Status(first.StudyID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.DatasetFP == "" || st.SketchFP == "" {
		t.Fatalf("first study did not complete cleanly: %+v", st)
	}

	again, err := gw.Submit("bob", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.StudyID != first.StudyID {
		t.Fatalf("dedup reply %+v, want Deduped for study %d", again, first.StudyID)
	}
	if l := gw.Ledger(); l.Deduped != 1 || l.Submitted != 1 {
		t.Fatalf("ledger %+v, want Deduped 1 / Submitted 1", l)
	}
	bl, _ := gw.TenantLedger("bob")
	if bl.Deduped != 1 || bl.Submitted != 0 {
		t.Fatalf("bob's ledger %+v, want only the dedup", bl)
	}
	checkAccounting(t, gw, true)
}

func TestCancelQueued(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{Now: clock.Now, SubmitRate: 0.001, SubmitBurst: 1})
	defer gw.Close()

	if _, err := gw.Submit("t", tinySpec(1)); err != nil { // granted
		t.Fatal(err)
	}
	queued, err := gw.Submit("t", tinySpec(2)) // gated behind the bucket
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gw.Cancel(queued.StudyID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != "canceled" {
		t.Fatalf("cancel reply %+v, want canceled", rep)
	}
	l, _ := gw.TenantLedger("t")
	if l.CanceledQueued != 1 || l.Queued != 0 {
		t.Fatalf("ledger %+v, want CanceledQueued 1 / Queued 0", l)
	}
	settle(t, gw, 1)
	checkAccounting(t, gw, true)
}

func TestCancelRunning(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{Now: clock.Now})
	defer gw.Close()

	// Big enough that the cancel lands mid-run.
	reply, err := gw.Submit("t", StudySpec{Seed: 5, DurationSec: 8, Nodes: 4, Users: 16, EventSampleEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Cancel(reply.StudyID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := gw.Status(reply.StudyID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "canceled" {
			break
		}
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("canceled study settled as %s", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("study stuck in %s after cancel", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	l := gw.Ledger()
	if l.CanceledRunning != 1 {
		t.Fatalf("ledger %+v, want CanceledRunning 1", l)
	}
	checkAccounting(t, gw, true)
}

// TestCloseCancelsEverything pins shutdown semantics: queued studies settle
// as canceled-queued, running studies as canceled-running, and Close returns
// only once every run goroutine is gone.
func TestCloseCancelsEverything(t *testing.T) {
	clock := testclock.AtUnix(1000)
	gw := New(Config{Now: clock.Now, MaxConcurrent: 1})

	if _, err := gw.Submit("t", StudySpec{Seed: 6, DurationSec: 8, Nodes: 4, Users: 16, EventSampleEvery: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Submit("t", tinySpec(7)); err != nil { // queued behind the slot
		t.Fatal(err)
	}
	gw.Close()
	if _, err := gw.Submit("t", tinySpec(8)); err == nil {
		t.Fatal("closed gateway accepted a submission")
	}
	l := gw.Ledger()
	if l.CanceledQueued != 1 || l.CanceledRunning != 1 || l.Queued != 0 || l.Running != 0 {
		t.Fatalf("ledger after close %+v", l)
	}
	checkAccounting(t, gw, true)
}

func TestStatusUnknownStudy(t *testing.T) {
	gw := New(Config{Now: testclock.AtUnix(0).Now})
	defer gw.Close()
	if _, err := gw.Status(404); err == nil {
		t.Fatal("unknown study ID answered")
	}
	if _, err := gw.Snapshot(404); err == nil {
		t.Fatal("unknown study snapshot answered")
	}
	if _, err := gw.Cancel(404); err == nil {
		t.Fatal("unknown study cancel answered")
	}
	if _, err := gw.Stats("ghost"); err == nil {
		t.Fatal("unknown tenant stats answered")
	}
}
