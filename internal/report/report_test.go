package report

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width = %d", utf8.RuneCountInString(s))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Fatalf("sparkline ends wrong: %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Fatal("zero width should render empty")
	}
	// Constant series renders uniformly.
	c := Sparkline([]float64{5, 5, 5, 5}, 4)
	for _, r := range c {
		if r != '▁' {
			t.Fatalf("constant series rendered %q", c)
		}
	}
	// NaN renders as space.
	n := Sparkline([]float64{math.NaN(), 1}, 2)
	if []rune(n)[0] != ' ' {
		t.Fatalf("NaN rendered %q", n)
	}
	// Downsampling keeps peaks: a single spike must still hit max height.
	xs := make([]float64, 100)
	xs[37] = 100
	d := Sparkline(xs, 10)
	if !strings.ContainsRune(d, '█') {
		t.Fatalf("peak lost in downsample: %q", d)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); utf8.RuneCountInString(got) != 10 {
		t.Fatalf("bar width wrong: %q", got)
	}
	if Bar(0, 4) != "░░░░" || Bar(1, 4) != "████" {
		t.Fatal("bar extremes wrong")
	}
	if Bar(-1, 4) != "░░░░" || Bar(2, 4) != "████" {
		t.Fatal("bar clamping wrong")
	}
	if Bar(math.NaN(), 4) != "????" {
		t.Fatal("NaN bar wrong")
	}
	if Bar(0.5, 0) != "" {
		t.Fatal("zero width bar")
	}
}

func TestHistogramRows(t *testing.T) {
	out := HistogramRows([]float64{1, 1, 2, 3, 3, 3}, 3, 10)
	if !strings.Contains(out, "█") {
		t.Fatalf("no bars: %q", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("rows = %d", strings.Count(out, "\n"))
	}
	if HistogramRows(nil, 3, 10) != "(no data)\n" {
		t.Fatal("empty histogram")
	}
}

func TestCDFRows(t *testing.T) {
	out := CDFRows([]float64{1, 2, 3, 4})
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Fatalf("missing quantiles: %q", out)
	}
	if CDFRows(nil) != "(no data)\n" {
		t.Fatal("empty CDF")
	}
}

func TestScatterSummary(t *testing.T) {
	out := ScatterSummary([]float64{1, 2}, []float64{2, 1})
	if !strings.Contains(out, "50.0% above") {
		t.Fatalf("summary: %q", out)
	}
	if ScatterSummary([]float64{1}, []float64{1, 2}) != "(no data)\n" {
		t.Fatal("mismatched scatter")
	}
}
