package report

import (
	"fmt"
	"math"
	"strings"
)

// AccuracyRow is one exact-vs-sketch metric comparison: the batch-path
// reference value, the streamed estimate, and the estimator's documented
// relative error bound.
type AccuracyRow struct {
	Metric string
	Exact  float64
	Sketch float64
	// Bound is the documented relative error bound for this estimator
	// (e.g. 0.02 for a 1%-accuracy quantile sketch gated at 2x).
	Bound float64
}

// RelErr is the row's observed relative error |sketch-exact|/|exact|. A zero
// exact value yields 0 when the sketch agrees and +Inf when it does not.
func (r AccuracyRow) RelErr() float64 {
	if r.Exact == 0 {
		if r.Sketch == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(r.Sketch-r.Exact) / math.Abs(r.Exact)
}

// OK reports whether the observed error sits inside the documented bound.
// NaN on either side fails unless both sides are NaN (agreeing "no data").
func (r AccuracyRow) OK() bool {
	if math.IsNaN(r.Exact) || math.IsNaN(r.Sketch) {
		return math.IsNaN(r.Exact) && math.IsNaN(r.Sketch)
	}
	return r.RelErr() <= r.Bound
}

// AccuracySection renders an exact-vs-sketch comparison table: one line per
// metric with the observed relative error against its bound, then a verdict
// line counting violations.
func AccuracySection(title string, rows []AccuracyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-22s %12s %12s %9s %9s\n",
		"metric", "exact", "sketch", "rel err", "bound")
	bad := 0
	for _, r := range rows {
		mark := ""
		if !r.OK() {
			mark = "  VIOLATION"
			bad++
		}
		fmt.Fprintf(&b, "  %-22s %12.5g %12.5g %8.3f%% %8.3f%%%s\n",
			r.Metric, r.Exact, r.Sketch, 100*r.RelErr(), 100*r.Bound, mark)
	}
	if bad == 0 {
		fmt.Fprintf(&b, "  all %d metrics within documented error bounds\n", len(rows))
	} else {
		fmt.Fprintf(&b, "  %d of %d metrics OUTSIDE documented error bounds\n", bad, len(rows))
	}
	return b.String()
}
