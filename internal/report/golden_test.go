package report

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden harness pins the exact rendered text of every visualization
// primitive — sparklines, bars, histograms, CDF tables, scatter summaries,
// and the exact-vs-sketch accuracy section — to one fixture. Run
// `go test ./internal/report -run TestGoldenRender -update` to regenerate
// after an intentional formatting change.
var updateGolden = flag.Bool("update", false, "rewrite the golden render fixture under testdata")

// goldenDocument composes one deterministic document from fixed inputs.
func goldenDocument() string {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 100 + 80*math.Sin(float64(i)/5) + float64(i%7)*10
	}
	series[41] = 900 // burst: must survive downsampling

	var b strings.Builder
	b.WriteString("sparkline:\n  " + Sparkline(series, 30) + "\n")
	b.WriteString("bars:\n")
	for _, f := range []float64{0, 0.33, 0.5, 1, math.NaN()} {
		fmt.Fprintf(&b, "  %4.2f %s\n", f, Bar(f, 12))
	}
	b.WriteString("histogram:\n" + HistogramRows(series, 5, 20))
	b.WriteString("cdf:\n" + CDFRows(series))
	b.WriteString("scatter:\n" + ScatterSummary(series[:30], series[30:]))
	b.WriteString(AccuracySection("accuracy: streamed vs exact", []AccuracyRow{
		{Metric: "1%-CCR", Exact: 0.3124, Sketch: 0.3127, Bound: 0.02},
		{Metric: "P2A total", Exact: 4.551, Sketch: 4.551, Bound: 1e-4},
		{Metric: "latency p99", Exact: 1890.2, Sketch: 1901.7, Bound: 0.02},
		{Metric: "active VDs", Exact: 512, Sketch: 540, Bound: 0.05, // out of bound
		},
		{Metric: "no data", Exact: math.NaN(), Sketch: math.NaN(), Bound: 0.02},
	}))
	b.WriteString(AccuracySection("accuracy: empty", nil))
	return b.String()
}

func TestGoldenRender(t *testing.T) {
	got := goldenDocument()
	path := filepath.Join("testdata", "render.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no fixture %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("rendered output drifted from %s; rerun with -update if intended.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}
