// Package report renders small ASCII visualizations — sparklines, bar
// histograms, CDF tables — so the figure experiments can show their series
// and distributions directly in a terminal, next to the paper's plots.
package report

import (
	"fmt"
	"math"
	"strings"

	"ebslab/internal/stats"
)

// sparkTicks are the eight sparkline glyphs from lowest to highest.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a one-line sparkline, downsampling to width
// columns by taking per-bucket maxima (bursts must stay visible). NaNs
// render as spaces. Empty input yields an empty string.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	if width > len(xs) {
		width = len(xs)
	}
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		buckets[i] = stats.Max(xs[lo:hi])
	}
	minV, maxV := stats.Min(buckets), stats.Max(buckets)
	var b strings.Builder
	for _, v := range buckets {
		if math.IsNaN(v) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if maxV > minV {
			idx = int((v - minV) / (maxV - minV) * float64(len(sparkTicks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkTicks) {
			idx = len(sparkTicks) - 1
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// Bar renders a horizontal bar of the given fractional fill in [0,1] with
// the given width, e.g. "██████░░░░".
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if math.IsNaN(frac) {
		return strings.Repeat("?", width)
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", fill) + strings.Repeat("░", width-fill)
}

// HistogramRows renders a labeled ASCII histogram of xs with nbins bins.
func HistogramRows(xs []float64, nbins, width int) string {
	counts, edges := stats.Histogram(xs, nbins)
	if counts == nil {
		return "(no data)\n"
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		frac := 0.0
		if maxC > 0 {
			frac = float64(c) / float64(maxC)
		}
		fmt.Fprintf(&b, "  [%9.3g, %9.3g) %s %d\n", edges[i], edges[i+1], Bar(frac, width), c)
	}
	return b.String()
}

// CDFRows renders quantiles of xs at the canonical probe points.
func CDFRows(xs []float64) string {
	if len(xs) == 0 {
		return "(no data)\n"
	}
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	vals := stats.Quantiles(xs, qs)
	var b strings.Builder
	for i, q := range qs {
		fmt.Fprintf(&b, "  p%-4.0f %12.4g\n", q*100, vals[i])
	}
	return b.String()
}

// ScatterSummary renders a compact summary of an (x, y) point cloud with a
// reference diagonal: how many points sit above y = x, plus the medians.
func ScatterSummary(xs, ys []float64) string {
	if len(xs) != len(ys) || len(xs) == 0 {
		return "(no data)\n"
	}
	var above int
	for i := range xs {
		if ys[i] >= xs[i] {
			above++
		}
	}
	return fmt.Sprintf("  n=%d, %.1f%% above y=x, median x %.3g, median y %.3g\n",
		len(xs), 100*float64(above)/float64(len(xs)), stats.Median(xs), stats.Median(ys))
}
