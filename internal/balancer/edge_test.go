package balancer

import (
	"math"
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/predict"
)

// Edge cases of importer selection and failover when no candidate exists:
// every policy must report "no importer" as -1 rather than pick the
// exporter, Run must tolerate the -1, and Failover must survive losing the
// only BlockServer.

// TestPoliciesReturnNoImporterWhenAllExcluded: with one BS the exporter is
// the only candidate, so every policy must decline to select.
func TestPoliciesReturnNoImporterWhenAllExcluded(t *testing.T) {
	hist := [][]float64{{10, 20, 30}}
	policies := []ImporterPolicy{
		&RandomPolicy{Rng: rand.New(rand.NewSource(1))},
		MinTrafficPolicy{},
		MinVariancePolicy{},
		LunulePolicy{Window: 2},
		&IdealPolicy{Future: hist},
		OraclePolicy{},
		&PredictorPolicy{Label: "naive", New: func() predict.Predictor { return &predict.Naive{} }},
	}
	for _, p := range policies {
		if got := p.Select(hist, 2, 0); got != -1 {
			t.Errorf("%s: selected %d with every candidate excluded, want -1", p.Name(), got)
		}
	}
}

// TestOracleSelectPlacedAllExcluded covers the placement-aware path of the
// same degenerate cluster.
func TestOracleSelectPlacedAllExcluded(t *testing.T) {
	m := cluster.NewSegmentMap(3, 1)
	for seg := 0; seg < 3; seg++ {
		m.Assign(cluster.SegmentID(seg), 0)
	}
	traffic := [][]RW{{{W: 10}, {W: 20}}, {{W: 5}, {W: 5}}, {{W: 1}, {W: 2}}}
	if got := (OraclePolicy{}).SelectPlaced(m, traffic, 0, false, 0); got != -1 {
		t.Fatalf("SelectPlaced picked %d on a single-BS cluster, want -1", got)
	}
}

// TestIdealPolicyEmptyFuture: an oracle with no future periods has nothing
// to say; it must return -1, not index out of range.
func TestIdealPolicyEmptyFuture(t *testing.T) {
	p := &IdealPolicy{Future: [][]float64{{}, {}}}
	if got := p.Select(nil, 0, 1); got != -1 {
		t.Fatalf("empty-future oracle selected %d, want -1", got)
	}
}

// TestRunToleratesNoImporter: a single-BS cluster with wildly skewed
// segments gives the exporter nowhere to send load; Run must finish with an
// empty migration log instead of moving segments onto their own server.
func TestRunToleratesNoImporter(t *testing.T) {
	const nSegs, nPeriods = 8, 4
	m := cluster.NewSegmentMap(nSegs, 1)
	traffic := make([][]RW, nSegs)
	for seg := 0; seg < nSegs; seg++ {
		m.Assign(cluster.SegmentID(seg), 0)
		traffic[seg] = make([]RW, nPeriods)
		for p := range traffic[seg] {
			traffic[seg][p] = RW{W: 1000 * float64(1+seg)}
		}
	}
	res := Run(m, traffic, MinTrafficPolicy{}, DefaultConfig())
	if len(res.Migrations) != 0 {
		t.Fatalf("single-BS run produced %d migrations", len(res.Migrations))
	}
	if len(res.WriteCoV) != nPeriods {
		t.Fatalf("missing per-period CoVs: %d, want %d", len(res.WriteCoV), nPeriods)
	}
}

// TestFailoverNoSurvivors: losing the only BlockServer re-homes nothing and
// reports the after-state as undefined (NaN), leaving the placement intact.
func TestFailoverNoSurvivors(t *testing.T) {
	m := cluster.NewSegmentMap(3, 1)
	for seg := 0; seg < 3; seg++ {
		m.Assign(cluster.SegmentID(seg), 0)
	}
	traffic := [][]RW{{{W: 10}}, {{W: 20}}, {{W: 30}}}
	res := Failover(m, traffic, 0, 0, FailoverGreedy, rand.New(rand.NewSource(1)))
	if res.Moved != 0 {
		t.Fatalf("moved %d segments with no survivors", res.Moved)
	}
	if !math.IsNaN(res.CoVAfter) || !math.IsNaN(res.MaxOverload) {
		t.Fatalf("no-survivor CoV/overload not NaN: %+v", res)
	}
	for seg := 0; seg < 3; seg++ {
		if m.BSOf(cluster.SegmentID(seg)) != 0 {
			t.Fatalf("segment %d re-homed off a failed cluster with no survivors", seg)
		}
	}
}
