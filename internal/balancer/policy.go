package balancer

import (
	"math"
	"math/rand"

	"ebslab/internal/cluster"
	"ebslab/internal/predict"
	"ebslab/internal/stats"
)

// ImporterPolicy selects which BlockServer receives migrated segments.
// bsHist[b] is the per-period traffic history of BS b up to and including
// the current period (bsHist[b][period] is this period's load under the
// current placement).
type ImporterPolicy interface {
	Name() string
	Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID
}

// RandomPolicy (S1) picks a uniformly random importer.
type RandomPolicy struct {
	Rng *rand.Rand
}

// Name implements ImporterPolicy.
func (p *RandomPolicy) Name() string { return "random" }

// Select implements ImporterPolicy.
func (p *RandomPolicy) Select(bsHist [][]float64, _ int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	n := len(bsHist)
	if n < 2 {
		return -1
	}
	for {
		b := cluster.StorageNodeID(p.Rng.Intn(n))
		if b != exclude {
			return b
		}
	}
}

// MinTrafficPolicy (S2) is the production heuristic: pick the BS with the
// lowest traffic in the current period.
type MinTrafficPolicy struct{}

// Name implements ImporterPolicy.
func (MinTrafficPolicy) Name() string { return "min-traffic" }

// Select implements ImporterPolicy.
func (MinTrafficPolicy) Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	best, bestV := cluster.StorageNodeID(-1), math.Inf(1)
	for b := range bsHist {
		if cluster.StorageNodeID(b) == exclude {
			continue
		}
		if v := bsHist[b][period]; v < bestV {
			best, bestV = cluster.StorageNodeID(b), v
		}
	}
	return best
}

// MinVariancePolicy (S3) picks the BS whose traffic history has the lowest
// variance — a stability-seeking heuristic.
type MinVariancePolicy struct{}

// Name implements ImporterPolicy.
func (MinVariancePolicy) Name() string { return "min-variance" }

// Select implements ImporterPolicy.
func (MinVariancePolicy) Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	best, bestV := cluster.StorageNodeID(-1), math.Inf(1)
	for b := range bsHist {
		if cluster.StorageNodeID(b) == exclude {
			continue
		}
		v := stats.Variance(bsHist[b][:period+1])
		if math.IsNaN(v) {
			v = math.Inf(1)
		}
		if v < bestV {
			best, bestV = cluster.StorageNodeID(b), v
		}
	}
	return best
}

// LunulePolicy (S4) predicts next-period traffic with a linear fit over the
// last Window periods (Lunule's approach) and picks the lowest forecast.
type LunulePolicy struct {
	// Window is the linear-fit window (4, per Appendix C).
	Window int
}

// Name implements ImporterPolicy.
func (p LunulePolicy) Name() string { return "lunule-linear" }

// Select implements ImporterPolicy.
func (p LunulePolicy) Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	w := p.Window
	if w < 2 {
		w = 4
	}
	lf := predict.NewLinearFit(w)
	best, bestV := cluster.StorageNodeID(-1), math.Inf(1)
	for b := range bsHist {
		if cluster.StorageNodeID(b) == exclude {
			continue
		}
		if err := lf.Fit(bsHist[b][:period+1]); err != nil {
			continue
		}
		v := lf.Predict()
		if v < bestV {
			best, bestV = cluster.StorageNodeID(b), v
		}
	}
	return best
}

// IdealPolicy (S5) cheats with oracle knowledge of next-period traffic: it
// picks the BS with the lowest actual traffic in period+1. Build it with
// the ground-truth future matrix.
type IdealPolicy struct {
	// Future[b][p] is the true per-BS traffic per period under the *initial*
	// placement. The oracle is approximate once segments move, exactly like
	// the paper's simulation, which knows "all the future traffic".
	Future [][]float64
}

// Name implements ImporterPolicy.
func (p *IdealPolicy) Name() string { return "ideal" }

// Select implements ImporterPolicy.
func (p *IdealPolicy) Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	next := period + 1
	best, bestV := cluster.StorageNodeID(-1), math.Inf(1)
	for b := range p.Future {
		if cluster.StorageNodeID(b) == exclude {
			continue
		}
		idx := next
		if idx >= len(p.Future[b]) {
			idx = len(p.Future[b]) - 1
		}
		if idx < 0 {
			return -1
		}
		if v := p.Future[b][idx]; v < bestV {
			best, bestV = cluster.StorageNodeID(b), v
		}
	}
	return best
}

// PlacementAware is an optional ImporterPolicy extension: policies that
// implement it are given the live segment placement, so they can reason
// about loads that migrations have already changed.
type PlacementAware interface {
	SelectPlaced(placement *cluster.SegmentMap, segTraffic [][]RW, period int,
		readPass bool, exclude cluster.StorageNodeID) cluster.StorageNodeID
}

// OraclePolicy is the paper's S5 "Ideal": it knows the true next-period
// traffic of every segment and evaluates it under the *live* placement, so
// it always picks the BS that will genuinely be coldest next period.
type OraclePolicy struct{}

// Name implements ImporterPolicy.
func (OraclePolicy) Name() string { return "ideal" }

// Select implements ImporterPolicy as a fallback when no placement is
// available (equivalent to min-traffic on the current period).
func (OraclePolicy) Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	return MinTrafficPolicy{}.Select(bsHist, period, exclude)
}

// SelectPlaced implements PlacementAware.
func (OraclePolicy) SelectPlaced(placement *cluster.SegmentMap, segTraffic [][]RW, period int,
	readPass bool, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	var nPeriods int
	if len(segTraffic) > 0 {
		nPeriods = len(segTraffic[0])
	}
	next := period + 1
	if next >= nPeriods {
		next = nPeriods - 1
	}
	if next < 0 {
		return -1
	}
	loads := make([]float64, placement.NumBS())
	for seg := range segTraffic {
		rw := segTraffic[seg][next]
		v := rw.W
		if readPass {
			v = rw.R
		}
		loads[placement.BSOf(cluster.SegmentID(seg))] += v
	}
	best, bestV := cluster.StorageNodeID(-1), math.Inf(1)
	for b, v := range loads {
		if cluster.StorageNodeID(b) == exclude {
			continue
		}
		if v < bestV {
			best, bestV = cluster.StorageNodeID(b), v
		}
	}
	return best
}

// PredictorPolicy wraps any predict.Predictor as an importer policy: the
// model is refit on each BS's history every RefitEvery periods and the
// lowest forecast wins. This is how the §6.1.3 prediction study plugs into
// the balancer.
type PredictorPolicy struct {
	Label      string
	New        func() predict.Predictor
	RefitEvery int

	models  []predict.Predictor
	lastFit []int
}

// Name implements ImporterPolicy.
func (p *PredictorPolicy) Name() string { return p.Label }

// Select implements ImporterPolicy.
func (p *PredictorPolicy) Select(bsHist [][]float64, period int, exclude cluster.StorageNodeID) cluster.StorageNodeID {
	if p.models == nil {
		p.models = make([]predict.Predictor, len(bsHist))
		p.lastFit = make([]int, len(bsHist))
		for b := range p.models {
			p.models[b] = p.New()
			p.lastFit[b] = -1
		}
	}
	refit := p.RefitEvery
	if refit < 1 {
		refit = 1
	}
	best, bestV := cluster.StorageNodeID(-1), math.Inf(1)
	for b := range bsHist {
		if cluster.StorageNodeID(b) == exclude {
			continue
		}
		if p.lastFit[b] < 0 || period-p.lastFit[b] >= refit {
			if err := p.models[b].Fit(bsHist[b][:period+1]); err != nil {
				continue
			}
			p.lastFit[b] = period
		}
		if v := p.models[b].Predict(); v < bestV {
			best, bestV = cluster.StorageNodeID(b), v
		}
	}
	return best
}
