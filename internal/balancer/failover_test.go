package balancer

import (
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
)

// failoverScenario: 4 BSs; BS 0 hosts 6 segments of mixed heat, others
// balanced.
func failoverScenario() (*cluster.SegmentMap, [][]RW) {
	m := cluster.NewSegmentMap(18, 4)
	traffic := make([][]RW, 18)
	for seg := 0; seg < 18; seg++ {
		bs := 0
		if seg >= 6 {
			bs = 1 + (seg-6)%3
		}
		m.Assign(cluster.SegmentID(seg), cluster.StorageNodeID(bs))
		w := 10.0
		if seg == 0 {
			w = 60 // one hot orphan
		}
		traffic[seg] = []RW{{W: w, R: 5}}
	}
	return m, traffic
}

func TestFailoverMovesEverything(t *testing.T) {
	m, traffic := failoverScenario()
	rng := rand.New(rand.NewSource(1))
	res := Failover(m, traffic, 0, 0, FailoverGreedy, rng)
	if res.Moved != 6 {
		t.Fatalf("moved %d, want 6", res.Moved)
	}
	if got := m.SegmentsOn(0); len(got) != 0 {
		t.Fatalf("failed BS still hosts %v", got)
	}
	for seg := 0; seg < 18; seg++ {
		if m.BSOf(cluster.SegmentID(seg)) == 0 {
			t.Fatal("segment left on failed BS")
		}
	}
}

func TestGreedyBeatsRandomFailover(t *testing.T) {
	// Average the random policy over seeds; greedy should produce a lower
	// or equal survivor max-overload.
	mG, traffic := failoverScenario()
	rng := rand.New(rand.NewSource(1))
	greedy := Failover(mG, traffic, 0, 0, FailoverGreedy, rng)

	var worstRandom float64
	for seed := int64(0); seed < 10; seed++ {
		mR, _ := failoverScenario()
		r := Failover(mR, traffic, 0, 0, FailoverRandom, rand.New(rand.NewSource(seed)))
		if r.MaxOverload > worstRandom {
			worstRandom = r.MaxOverload
		}
	}
	if !(greedy.MaxOverload <= worstRandom+1e-9) {
		t.Fatalf("greedy overload %v above worst random %v", greedy.MaxOverload, worstRandom)
	}
	if greedy.MaxOverload > 1.5 {
		t.Fatalf("greedy overload %v too high for this scenario", greedy.MaxOverload)
	}
}

func TestFailoverSingleSurvivorDegenerate(t *testing.T) {
	m := cluster.NewSegmentMap(2, 2)
	m.Assign(0, 0)
	m.Assign(1, 1)
	traffic := [][]RW{{{W: 5}}, {{W: 5}}}
	res := Failover(m, traffic, 0, 0, FailoverGreedy, rand.New(rand.NewSource(1)))
	if res.Moved != 1 || m.BSOf(0) != 1 {
		t.Fatalf("failover to single survivor broken: %+v", res)
	}
}

func TestFailoverPolicyString(t *testing.T) {
	if FailoverGreedy.String() == "" || FailoverRandom.String() == "" {
		t.Fatal("empty policy strings")
	}
}
