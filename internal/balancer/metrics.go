package balancer

import (
	"math"

	"ebslab/internal/cluster"
)

// FrequentMigrationProportion implements §6.1.1's metric: time is divided
// into windows of windowPeriods periods; a migration is "frequent" when its
// BlockServer had both an incoming and an outgoing migration within the same
// window (segments bouncing in and straight back out). The result is the
// fraction of all migrations that are frequent; NaN when there were none.
func FrequentMigrationProportion(migs []Migration, nBS, windowPeriods int) float64 {
	if len(migs) == 0 {
		return math.NaN()
	}
	if windowPeriods < 1 {
		windowPeriods = 1
	}
	type cell struct{ in, out bool }
	// state[window][bs]
	state := make(map[int]map[cluster.StorageNodeID]*cell)
	get := func(w int, b cluster.StorageNodeID) *cell {
		m, ok := state[w]
		if !ok {
			m = make(map[cluster.StorageNodeID]*cell)
			state[w] = m
		}
		c, ok := m[b]
		if !ok {
			c = &cell{}
			m[b] = c
		}
		return c
	}
	for _, m := range migs {
		w := m.Period / windowPeriods
		get(w, m.From).out = true
		get(w, m.To).in = true
	}
	var frequent int
	for _, m := range migs {
		w := m.Period / windowPeriods
		if c := get(w, m.From); c.in && c.out {
			frequent++
			continue
		}
		if c := get(w, m.To); c.in && c.out {
			frequent++
		}
	}
	return float64(frequent) / float64(len(migs))
}

// OutMigrationIntervals implements §6.1.2's metric: for every BlockServer,
// the gaps (in periods) between consecutive periods in which it exported
// segments, normalized by the observation length. Longer intervals mean the
// balancer's placements stay good for longer.
func OutMigrationIntervals(migs []Migration, nPeriods int) []float64 {
	if nPeriods <= 0 {
		return nil
	}
	outPeriods := make(map[cluster.StorageNodeID][]int)
	for _, m := range migs {
		ps := outPeriods[m.From]
		if len(ps) == 0 || ps[len(ps)-1] != m.Period {
			outPeriods[m.From] = append(ps, m.Period)
		}
	}
	var out []float64
	for _, ps := range outPeriods {
		for i := 1; i < len(ps); i++ {
			out = append(out, float64(ps[i]-ps[i-1])/float64(nPeriods))
		}
	}
	return out
}

// MigrationCount returns how many segment moves occurred, split by pass.
func MigrationCount(migs []Migration) (write, read int) {
	for _, m := range migs {
		if m.Read {
			read++
		} else {
			write++
		}
	}
	return write, read
}

// BSFutureMatrix computes per-BS per-period traffic under a fixed placement,
// which is what IdealPolicy consumes as its oracle. metric selects the value
// per segment-period (for the paper's balancer, the write bytes).
func BSFutureMatrix(seg2bs *cluster.SegmentMap, segTraffic [][]RW, metric func(RW) float64) [][]float64 {
	nBS := seg2bs.NumBS()
	var nPeriods int
	if len(segTraffic) > 0 {
		nPeriods = len(segTraffic[0])
	}
	out := make([][]float64, nBS)
	for b := range out {
		out[b] = make([]float64, nPeriods)
	}
	for seg, rows := range segTraffic {
		b := seg2bs.BSOf(cluster.SegmentID(seg))
		for p, rw := range rows {
			out[b][p] += metric(rw)
		}
	}
	return out
}
