package balancer

import (
	"math/rand"
	"reflect"
	"testing"

	"ebslab/internal/cluster"
)

// crashWindow marks one BS down for a period range [from, to).
func crashWindow(bs cluster.StorageNodeID, from, to int) DownFn {
	return func(p int, b cluster.StorageNodeID) bool {
		return b == bs && p >= from && p < to
	}
}

func TestRunWithFailuresNilDownEqualsRun(t *testing.T) {
	m, traffic := skewedScenario(10)
	want := Run(m, traffic, MinTrafficPolicy{}, DefaultConfig())
	got := RunWithFailures(m, traffic, MinTrafficPolicy{}, DefaultConfig(),
		nil, FailoverGreedy, rand.New(rand.NewSource(1)))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("nil down schedule must reproduce Run bit-exactly")
	}
}

// TestCrashWindowEvacuatesAndExcludes is the failover contract: the window
// opening evacuates the casualty, no migration lands on it while it is
// down, and recovery re-admits it as an importer.
func TestCrashWindowEvacuatesAndExcludes(t *testing.T) {
	const nPeriods, winFrom, winTo = 12, 3, 6
	m, traffic := skewedScenario(nPeriods)
	down := crashWindow(0, winFrom, winTo)
	res := RunWithFailures(m, traffic, MinTrafficPolicy{}, DefaultConfig(),
		down, FailoverGreedy, rand.New(rand.NewSource(1)))

	var evacuated, readmitted int
	for _, mig := range res.Migrations {
		inWindow := mig.Period >= winFrom && mig.Period < winTo
		if mig.Failover {
			if mig.Period != winFrom {
				t.Fatalf("failover migration outside the window-open period: %+v", mig)
			}
			if mig.From != 0 {
				t.Fatalf("failover evacuated the wrong BS: %+v", mig)
			}
			if mig.To == 0 {
				t.Fatalf("failover landed a segment back on the casualty: %+v", mig)
			}
			evacuated++
		}
		if inWindow {
			if mig.To == 0 {
				t.Fatalf("migration targeted the dead BS inside its window: %+v", mig)
			}
			if !mig.Failover && mig.From == 0 {
				t.Fatalf("the dead BS exported inside its window: %+v", mig)
			}
		}
		if mig.Period >= winTo && mig.To == 0 {
			readmitted++
		}
	}
	if evacuated == 0 {
		t.Fatal("window open evacuated nothing despite hosted segments")
	}
	if readmitted == 0 {
		t.Fatal("recovered BS was never re-admitted as an importer")
	}
}

// TestOverlappingCrashesNeverCrossContaminate: with two BSs down at once,
// neither evacuation may land segments on the other casualty.
func TestOverlappingCrashesNeverCrossContaminate(t *testing.T) {
	m, traffic := skewedScenario(8)
	isDown := func(p int, b cluster.StorageNodeID) bool {
		switch b {
		case 0:
			return p >= 2 && p < 6
		case 1:
			return p >= 3 && p < 5
		}
		return false
	}
	res := RunWithFailures(m, traffic, MinTrafficPolicy{}, DefaultConfig(),
		isDown, FailoverGreedy, rand.New(rand.NewSource(1)))
	var failovers int
	for _, mig := range res.Migrations {
		if isDown(mig.Period, mig.To) {
			t.Fatalf("migration landed on a BS that was down at the time: %+v", mig)
		}
		if mig.Failover {
			failovers++
		}
	}
	if failovers == 0 {
		t.Fatal("no failover migrations recorded for two crash windows")
	}
	// The second casualty (BS 1) must have been evacuated too, and never
	// onto BS 0, which was already down when BS 1's window opened.
	var bs1Evacuated bool
	for _, mig := range res.Migrations {
		if mig.Failover && mig.From == 1 {
			bs1Evacuated = true
			if mig.To == 0 {
				t.Fatalf("BS 1's evacuation landed on the already-down BS 0: %+v", mig)
			}
		}
	}
	if !bs1Evacuated {
		t.Fatal("BS 1 was never evacuated")
	}
}

// TestFailoverExcludingBarsExtraCasualties: the plain Failover path with an
// exclusion set must never pick an excluded survivor, and the nil exclusion
// must reproduce Failover exactly.
func TestFailoverExcludingBarsExtraCasualties(t *testing.T) {
	m, traffic := skewedScenario(4)
	a := m.Clone()
	b := m.Clone()
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	resA := Failover(a, traffic, 0, 0, FailoverGreedy, rngA)
	resB := FailoverExcluding(b, traffic, 0, 0, FailoverGreedy, rngB, nil)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("nil exclusion diverged from plain Failover")
	}

	c := m.Clone()
	FailoverExcluding(c, traffic, 0, 0, FailoverGreedy, rand.New(rand.NewSource(3)),
		func(id cluster.StorageNodeID) bool { return id == 1 })
	for _, seg := range c.SegmentsOn(1) {
		if m.BSOf(seg) != 1 {
			t.Fatalf("segment %d landed on the excluded BS 1", seg)
		}
	}
}
