package balancer

import (
	"math"
	"math/rand"
	"sort"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// FailoverPolicy selects where a failed BlockServer's segments land.
type FailoverPolicy uint8

// Failover policies.
const (
	// FailoverGreedy assigns each orphaned segment (hottest first) to the
	// currently least-loaded survivor — the load-aware choice.
	FailoverGreedy FailoverPolicy = iota
	// FailoverRandom scatters orphaned segments uniformly (what a placement
	// that only knows capacity, not traffic, would do).
	FailoverRandom
)

func (p FailoverPolicy) String() string {
	if p == FailoverGreedy {
		return "greedy-min-load"
	}
	return "random"
}

// FailoverResult reports a failure-recovery simulation.
type FailoverResult struct {
	Policy FailoverPolicy
	Failed cluster.StorageNodeID
	// Moved is how many segments were re-homed.
	Moved int
	// CoVBefore is the per-BS load CoV just before the failure (all BSs);
	// CoVAfter is the survivors' CoV after redistribution.
	CoVBefore, CoVAfter float64
	// MaxOverload is the survivors' hottest-BS load divided by the survivor
	// average after redistribution — the spike a bad policy creates.
	MaxOverload float64
}

// Failover removes one BlockServer at the given period and re-homes its
// segments across the survivors according to the policy, mutating the
// placement in place. Load is measured as read+write bytes of the period.
func Failover(placement *cluster.SegmentMap, segTraffic [][]RW, period int,
	failed cluster.StorageNodeID, policy FailoverPolicy, rng *rand.Rand) FailoverResult {
	return FailoverExcluding(placement, segTraffic, period, failed, policy, rng, nil)
}

// FailoverExcluding is Failover with further BlockServers barred from
// receiving orphans (nil bars none): under a crash schedule, several BSs can
// be down at once and evacuating one must not land segments on another
// casualty.
func FailoverExcluding(placement *cluster.SegmentMap, segTraffic [][]RW, period int,
	failed cluster.StorageNodeID, policy FailoverPolicy, rng *rand.Rand,
	excluded func(cluster.StorageNodeID) bool) FailoverResult {

	nBS := placement.NumBS()
	res := FailoverResult{Policy: policy, Failed: failed}
	load := make([]float64, nBS)
	for seg, rows := range segTraffic {
		if period < len(rows) {
			load[placement.BSOf(cluster.SegmentID(seg))] += rows[period].Total()
		}
	}
	res.CoVBefore = stats.NormCoV(load)

	orphans := placement.SegmentsOn(failed)
	segLoad := func(seg cluster.SegmentID) float64 {
		if period < len(segTraffic[seg]) {
			return segTraffic[seg][period].Total()
		}
		return 0
	}
	sort.Slice(orphans, func(i, j int) bool { return segLoad(orphans[i]) > segLoad(orphans[j]) })

	survivors := make([]cluster.StorageNodeID, 0, nBS-1)
	for b := 0; b < nBS; b++ {
		id := cluster.StorageNodeID(b)
		if id != failed && (excluded == nil || !excluded(id)) {
			survivors = append(survivors, id)
		}
	}
	if len(survivors) == 0 {
		res.CoVAfter = math.NaN()
		res.MaxOverload = math.NaN()
		return res
	}
	for _, seg := range orphans {
		var dst cluster.StorageNodeID
		switch policy {
		case FailoverGreedy:
			dst = survivors[0]
			for _, b := range survivors {
				if load[b] < load[dst] {
					dst = b
				}
			}
		case FailoverRandom:
			dst = survivors[rng.Intn(len(survivors))]
		}
		placement.Move(seg, dst)
		load[dst] += segLoad(seg)
		res.Moved++
	}
	load[failed] = 0

	surv := make([]float64, 0, len(survivors))
	for _, b := range survivors {
		surv = append(surv, load[b])
	}
	res.CoVAfter = stats.NormCoV(surv)
	if mean := stats.Mean(surv); mean > 0 {
		res.MaxOverload = stats.Max(surv) / mean
	} else {
		res.MaxOverload = math.NaN()
	}
	return res
}
