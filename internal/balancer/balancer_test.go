package balancer

import (
	"math"
	"math/rand"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// skewedScenario builds 4 BSs and 16 segments, where segments 0..3 (on BS 0)
// are hot writers and everything else is cold; traffic is stable over
// periods.
func skewedScenario(nPeriods int) (*cluster.SegmentMap, [][]RW) {
	m := cluster.NewSegmentMap(16, 4)
	for seg := 0; seg < 16; seg++ {
		m.Assign(cluster.SegmentID(seg), cluster.StorageNodeID(seg/4))
	}
	traffic := make([][]RW, 16)
	for seg := range traffic {
		traffic[seg] = make([]RW, nPeriods)
		for p := range traffic[seg] {
			if seg < 4 {
				traffic[seg][p] = RW{W: 100, R: 5}
			} else {
				traffic[seg][p] = RW{W: 10, R: 5}
			}
		}
	}
	return m, traffic
}

func TestRunBalancesStableSkew(t *testing.T) {
	m, traffic := skewedScenario(12)
	res := Run(m, traffic, MinTrafficPolicy{}, DefaultConfig())
	if len(res.Migrations) == 0 {
		t.Fatal("no migrations despite a 4x hot BS")
	}
	first, last := res.WriteCoV[0], res.WriteCoV[len(res.WriteCoV)-1]
	if !(last < first) {
		t.Fatalf("write CoV did not improve: %v -> %v", first, last)
	}
	if res.Policy != "min-traffic" || res.Mode != WriteOnly {
		t.Fatalf("result metadata: %+v", res)
	}
}

func TestRunDoesNotMutateInputPlacement(t *testing.T) {
	m, traffic := skewedScenario(6)
	before := make([]cluster.StorageNodeID, m.Len())
	for i := range before {
		before[i] = m.BSOf(cluster.SegmentID(i))
	}
	Run(m, traffic, MinTrafficPolicy{}, DefaultConfig())
	for i := range before {
		if m.BSOf(cluster.SegmentID(i)) != before[i] {
			t.Fatal("Run mutated the caller's placement")
		}
	}
}

func TestRunNoMigrationWhenBalanced(t *testing.T) {
	m := cluster.NewSegmentMap(4, 4)
	traffic := make([][]RW, 4)
	for seg := 0; seg < 4; seg++ {
		m.Assign(cluster.SegmentID(seg), cluster.StorageNodeID(seg))
		traffic[seg] = []RW{{W: 50}, {W: 50}}
	}
	res := Run(m, traffic, MinTrafficPolicy{}, DefaultConfig())
	if len(res.Migrations) != 0 {
		t.Fatalf("balanced cluster migrated %d segments", len(res.Migrations))
	}
}

func TestRunPanicsOnMismatch(t *testing.T) {
	m := cluster.NewSegmentMap(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched traffic matrix should panic")
		}
	}()
	Run(m, make([][]RW, 3), MinTrafficPolicy{}, DefaultConfig())
}

func TestWriteThenReadBalancesRead(t *testing.T) {
	// Writes are balanced; reads are concentrated on BS 0. Write-only must
	// leave the read skew alone; write-then-read must fix it.
	m := cluster.NewSegmentMap(8, 4)
	traffic := make([][]RW, 8)
	const nPeriods = 10
	for seg := 0; seg < 8; seg++ {
		m.Assign(cluster.SegmentID(seg), cluster.StorageNodeID(seg/2))
		traffic[seg] = make([]RW, nPeriods)
		for p := 0; p < nPeriods; p++ {
			traffic[seg][p] = RW{W: 20}
			if seg < 2 {
				traffic[seg][p].R = 200 // read-hot segments on BS 0
			} else {
				traffic[seg][p].R = 1
			}
		}
	}
	cfgW := DefaultConfig()
	resW := Run(m, traffic, MinTrafficPolicy{}, cfgW)
	cfgWR := DefaultConfig()
	cfgWR.Mode = WriteThenRead
	resWR := Run(m, traffic, MinTrafficPolicy{}, cfgWR)

	lastReadW := resW.ReadCoV[nPeriods-1]
	lastReadWR := resWR.ReadCoV[nPeriods-1]
	if !(lastReadWR < lastReadW) {
		t.Fatalf("write-then-read read CoV %v not below write-only %v", lastReadWR, lastReadW)
	}
	w, r := MigrationCount(resWR.Migrations)
	if r == 0 {
		t.Fatal("write-then-read produced no read migrations")
	}
	if w2, r2 := MigrationCount(resW.Migrations); r2 != 0 || w2 != len(resW.Migrations) {
		t.Fatal("write-only produced read migrations")
	}
	_ = w
}

func TestPoliciesReturnValidImporter(t *testing.T) {
	hist := [][]float64{{10, 20}, {5, 1}, {7, 30}, {2, 2}}
	future := [][]float64{{10, 20, 100}, {5, 1, 0}, {7, 30, 50}, {2, 2, 60}}
	policies := []ImporterPolicy{
		&RandomPolicy{Rng: rand.New(rand.NewSource(1))},
		MinTrafficPolicy{},
		MinVariancePolicy{},
		LunulePolicy{Window: 2},
		&IdealPolicy{Future: future},
	}
	for _, p := range policies {
		got := p.Select(hist, 1, 0)
		if got < 0 || int(got) >= len(hist) || got == 0 {
			t.Errorf("%s selected %d", p.Name(), got)
		}
		if p.Name() == "" {
			t.Errorf("%T empty name", p)
		}
	}
}

func TestMinTrafficPicksColdest(t *testing.T) {
	hist := [][]float64{{10}, {1}, {5}}
	if got := (MinTrafficPolicy{}).Select(hist, 0, 2); got != 1 {
		t.Fatalf("min-traffic picked %d, want 1", got)
	}
	// Excluding the coldest falls back to next.
	if got := (MinTrafficPolicy{}).Select(hist, 0, 1); got != 2 {
		t.Fatalf("min-traffic with exclusion picked %d, want 2", got)
	}
}

func TestIdealPicksNextPeriodMin(t *testing.T) {
	future := [][]float64{{0, 100}, {100, 0}}
	p := &IdealPolicy{Future: future}
	// At period 0 the next-period minimum is BS 1.
	if got := p.Select(nil, 0, -1); got != 1 {
		t.Fatalf("ideal picked %d, want 1", got)
	}
	// At the horizon it clamps to the last column.
	if got := p.Select(nil, 5, -1); got != 1 {
		t.Fatalf("ideal at horizon picked %d, want 1", got)
	}
}

func TestRandomPolicyExcludes(t *testing.T) {
	p := &RandomPolicy{Rng: rand.New(rand.NewSource(7))}
	hist := [][]float64{{1}, {1}}
	for i := 0; i < 50; i++ {
		if got := p.Select(hist, 0, 0); got != 1 {
			t.Fatalf("random returned excluded BS")
		}
	}
	if got := p.Select([][]float64{{1}}, 0, 0); got != -1 {
		t.Fatalf("random on single-BS cluster = %d, want -1", got)
	}
}

func TestMinVarianceIgnoresLevel(t *testing.T) {
	// BS 0: high but steady. BS 1: low but volatile.
	hist := [][]float64{{100, 100, 100}, {0, 90, 0}}
	if got := (MinVariancePolicy{}).Select(hist, 2, -1); got != 0 {
		t.Fatalf("min-variance picked %d, want steady BS 0", got)
	}
}

func TestLunuleExtrapolates(t *testing.T) {
	// BS 0 is rising fast (low now, high next); BS 1 is falling.
	hist := [][]float64{{0, 10, 20, 30}, {60, 50, 40, 35}}
	got := (LunulePolicy{Window: 4}).Select(hist, 3, -1)
	if got != 1 {
		t.Fatalf("lunule picked %d, want falling BS 1", got)
	}
	// MinTraffic would pick BS 0 (30 < 35) — the policies must differ here.
	mt := (MinTrafficPolicy{}).Select(hist, 3, -1)
	if mt != 0 {
		t.Fatalf("min-traffic picked %d, want 0", mt)
	}
}

func TestFrequentMigrationProportion(t *testing.T) {
	// BS 1 both imports (period 0) and exports (period 1) inside a 2-period
	// window: all three migrations touch it, so all are frequent.
	migs := []Migration{
		{Period: 0, Seg: 0, From: 0, To: 1},
		{Period: 1, Seg: 0, From: 1, To: 2},
		{Period: 1, Seg: 1, From: 1, To: 2},
	}
	got := FrequentMigrationProportion(migs, 3, 2)
	if got != 1 {
		t.Fatalf("proportion = %v, want 1", got)
	}
	// With 1-period windows, period 0's import and period 1's exports no
	// longer coincide, so nothing is frequent.
	got = FrequentMigrationProportion(migs, 3, 1)
	if got != 0 {
		t.Fatalf("proportion = %v, want 0", got)
	}
	if !math.IsNaN(FrequentMigrationProportion(nil, 3, 2)) {
		t.Fatal("empty migration list should be NaN")
	}
}

func TestOutMigrationIntervals(t *testing.T) {
	migs := []Migration{
		{Period: 0, From: 0, To: 1},
		{Period: 4, From: 0, To: 2},
		{Period: 6, From: 0, To: 1},
		{Period: 3, From: 1, To: 0},
	}
	got := OutMigrationIntervals(migs, 10)
	if len(got) != 2 {
		t.Fatalf("intervals = %v, want 2 entries", got)
	}
	// Intervals for BS 0: (4-0)/10 and (6-4)/10.
	want := map[float64]bool{0.4: true, 0.2: true}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected interval %v", v)
		}
	}
	if OutMigrationIntervals(migs, 0) != nil {
		t.Fatal("zero periods should yield nil")
	}
}

func TestBSFutureMatrix(t *testing.T) {
	m := cluster.NewSegmentMap(2, 2)
	m.Assign(0, 0)
	m.Assign(1, 1)
	traffic := [][]RW{
		{{W: 5, R: 1}, {W: 7, R: 2}},
		{{W: 3, R: 9}, {W: 4, R: 8}},
	}
	got := BSFutureMatrix(m, traffic, func(x RW) float64 { return x.W })
	if got[0][0] != 5 || got[0][1] != 7 || got[1][0] != 3 || got[1][1] != 4 {
		t.Fatalf("future matrix = %v", got)
	}
}

func TestIdealBeatsMinTrafficOnVolatileTraffic(t *testing.T) {
	// Construct volatility where the coldest-now BS becomes the hottest
	// next period (rotating hotspot): Ideal should migrate less often after
	// placement stabilizes, or at least achieve no worse balance.
	rng := rand.New(rand.NewSource(5))
	const nSegs, nBS, nPeriods = 24, 4, 40
	m := cluster.NewSegmentMap(nSegs, nBS)
	for s := 0; s < nSegs; s++ {
		m.Assign(cluster.SegmentID(s), cluster.StorageNodeID(s%nBS))
	}
	traffic := make([][]RW, nSegs)
	for s := range traffic {
		traffic[s] = make([]RW, nPeriods)
		for p := range traffic[s] {
			base := 5 + rng.Float64()
			// Rotating burst: a different quarter of segments is hot each
			// period.
			if (p+s)%8 == 0 {
				base += 120
			}
			traffic[s][p] = RW{W: base}
		}
	}
	future := BSFutureMatrix(m, traffic, func(x RW) float64 { return x.W })
	resIdeal := Run(m, traffic, &IdealPolicy{Future: future}, DefaultConfig())
	resMin := Run(m, traffic, MinTrafficPolicy{}, DefaultConfig())

	intIdeal := stats.Median(OutMigrationIntervals(resIdeal.Migrations, nPeriods))
	intMin := stats.Median(OutMigrationIntervals(resMin.Migrations, nPeriods))
	if !math.IsNaN(intIdeal) && !math.IsNaN(intMin) && intIdeal < intMin*0.5 {
		t.Fatalf("ideal intervals %v far below min-traffic %v", intIdeal, intMin)
	}
}
