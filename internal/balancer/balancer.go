// Package balancer implements the inter-BlockServer load balancer of §6 and
// Appendix A: a periodic heuristic that detects exporters (BlockServers
// whose traffic exceeds 1.2x the cluster average), peels off their hottest
// segments until roughly 0.2x the average traffic has moved, and ships them
// to an importer chosen by a pluggable policy. The five importer-selection
// policies of Figure 4(b) are provided, together with the migration metrics
// the paper uses (frequent-migration proportion, normalized migration
// intervals) and the Write-Only / Write-then-Read variants of Figure 5(c).
package balancer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// RW is one period's read/write byte totals for a segment.
type RW struct {
	R float64
	W float64
}

// Total returns R+W.
func (x RW) Total() float64 { return x.R + x.W }

// Config tunes Algorithm 1.
type Config struct {
	// ExporterThreshold is the multiple of the cluster average at which a
	// BlockServer becomes an exporter (1.2 in the paper).
	ExporterThreshold float64
	// MigrateFraction is the share of average traffic each exporter sheds
	// per period (0.2 in the paper).
	MigrateFraction float64
	// ImprovementMargin gates segment movability: a segment is movable only
	// if landing it on the currently coldest BS leaves that BS below
	// ImprovementMargin x the exporter's load — otherwise the move merely
	// relocates the hotspot and ping-pongs forever. Algorithm 1 leaves this
	// implicit; production balancers bound the bundle. Default 0.9.
	ImprovementMargin float64
	// Mode selects which traffic the balancer acts on.
	Mode Mode
	// ReadPolicy, when non-nil, selects importers for the read-balancing
	// pass of WriteThenRead; otherwise the write-pass policy is reused
	// (fed with read history).
	ReadPolicy ImporterPolicy
	// PeriodSec is the simulated length of one balancing period in seconds,
	// used only to stamp Migration.AtSec so the migration log can be joined
	// against time-stamped logs (the control plane's decision log). Zero or
	// negative means 1: AtSec equals the period index.
	PeriodSec int
}

// Mode selects the migration algorithm of Figure 5(c).
type Mode uint8

// Balancing modes.
const (
	// WriteOnly migrates based solely on write traffic (production default,
	// §2.2).
	WriteOnly Mode = iota
	// WriteThenRead first balances write traffic, then runs a second pass
	// balancing read traffic.
	WriteThenRead
)

func (m Mode) String() string {
	if m == WriteOnly {
		return "write-only"
	}
	return "write-then-read"
}

// DefaultConfig matches Appendix A.
func DefaultConfig() Config {
	return Config{ExporterThreshold: 1.2, MigrateFraction: 0.2, ImprovementMargin: 0.9, Mode: WriteOnly}
}

// Migration records one segment move.
type Migration struct {
	Period int
	// AtSec is the simulated second the move takes effect: the period (or
	// control epoch) boundary, Period x Config.PeriodSec. Logs produced by
	// different subsystems join on this timestamp.
	AtSec int
	Seg   cluster.SegmentID
	From  cluster.StorageNodeID
	To    cluster.StorageNodeID
	// Read reports whether the move came from the read-balancing pass.
	Read bool
	// Failover reports whether the move evacuated a crashed BlockServer
	// (RunWithFailures) rather than rebalancing load.
	Failover bool
}

// Result summarizes one balancer run.
type Result struct {
	Policy     string
	Mode       Mode
	Migrations []Migration
	// WriteCoV[p] and ReadCoV[p] are the normalized CoVs of per-BS write and
	// read traffic in period p, measured under the placement in effect
	// during that period (i.e. after the previous period's migrations).
	WriteCoV []float64
	ReadCoV  []float64
}

// Run simulates the balancer over the per-segment period traffic matrix
// (indexed [segment][period], as produced by workload.SegmentPeriodMatrix).
// The starting placement is cloned; the caller's map is not mutated.
func Run(seg2bs *cluster.SegmentMap, segTraffic [][]RW, policy ImporterPolicy, cfg Config) Result {
	if len(segTraffic) != seg2bs.Len() {
		panic(fmt.Sprintf("balancer: %d traffic rows for %d segments", len(segTraffic), seg2bs.Len()))
	}
	if cfg.ExporterThreshold <= 1 {
		cfg.ExporterThreshold = 1.2
	}
	if cfg.MigrateFraction <= 0 {
		cfg.MigrateFraction = 0.2
	}
	placement := seg2bs.Clone()
	nBS := placement.NumBS()
	var nPeriods int
	if len(segTraffic) > 0 {
		nPeriods = len(segTraffic[0])
	}
	res := Result{Policy: policy.Name(), Mode: cfg.Mode}

	// bsHistW/bsHistR: per-BS traffic per period under the placement in
	// effect at each period — the history importer policies consult.
	bsHistW := make([][]float64, nBS)
	bsHistR := make([][]float64, nBS)
	for b := 0; b < nBS; b++ {
		bsHistW[b] = make([]float64, 0, nPeriods)
		bsHistR[b] = make([]float64, 0, nPeriods)
	}
	readPolicy := cfg.ReadPolicy
	if readPolicy == nil {
		readPolicy = policy
	}

	for p := 0; p < nPeriods; p++ {
		// Measure this period under the current placement.
		bsW := make([]float64, nBS)
		bsR := make([]float64, nBS)
		for seg, rows := range segTraffic {
			b := placement.BSOf(cluster.SegmentID(seg))
			bsW[b] += rows[p].W
			bsR[b] += rows[p].R
		}
		res.WriteCoV = append(res.WriteCoV, stats.NormCoV(bsW))
		res.ReadCoV = append(res.ReadCoV, stats.NormCoV(bsR))
		for b := 0; b < nBS; b++ {
			bsHistW[b] = append(bsHistW[b], bsW[b])
			bsHistR[b] = append(bsHistR[b], bsR[b])
		}

		// Write-balancing pass (Algorithm 1).
		res.Migrations = append(res.Migrations,
			balancePass(placement, segTraffic, p, bsW, bsHistW, policy, cfg, false, nil)...)
		if cfg.Mode == WriteThenRead {
			res.Migrations = append(res.Migrations,
				balancePass(placement, segTraffic, p, bsR, bsHistR, readPolicy, cfg, true, nil)...)
		}
	}
	return res
}

// DownFn reports whether a BlockServer is inside a crash window during a
// balancing period (chaos.Schedule.DownFnPeriods adapts a fault schedule to
// this shape).
type DownFn func(period int, bs cluster.StorageNodeID) bool

// RunWithFailures is Run under a crash schedule. At the start of each
// period, every newly-crashed BlockServer is evacuated: its segments are
// re-homed across the healthy survivors by the failover policy (recorded as
// Failover migrations). While down, a BS is excluded from exporter scans and
// importer selection — if the importer policy nominates a casualty, the
// balancer falls back to the least-loaded healthy BS. A recovered BS rejoins
// empty the following period and is re-admitted by normal importer
// selection. A nil down delegates to Run.
func RunWithFailures(seg2bs *cluster.SegmentMap, segTraffic [][]RW, policy ImporterPolicy,
	cfg Config, down DownFn, fpol FailoverPolicy, rng *rand.Rand) Result {
	if down == nil {
		return Run(seg2bs, segTraffic, policy, cfg)
	}
	if len(segTraffic) != seg2bs.Len() {
		panic(fmt.Sprintf("balancer: %d traffic rows for %d segments", len(segTraffic), seg2bs.Len()))
	}
	if cfg.ExporterThreshold <= 1 {
		cfg.ExporterThreshold = 1.2
	}
	if cfg.MigrateFraction <= 0 {
		cfg.MigrateFraction = 0.2
	}
	placement := seg2bs.Clone()
	nBS := placement.NumBS()
	var nPeriods int
	if len(segTraffic) > 0 {
		nPeriods = len(segTraffic[0])
	}
	res := Result{Policy: policy.Name(), Mode: cfg.Mode}

	bsHistW := make([][]float64, nBS)
	bsHistR := make([][]float64, nBS)
	for b := 0; b < nBS; b++ {
		bsHistW[b] = make([]float64, 0, nPeriods)
		bsHistR[b] = make([]float64, 0, nPeriods)
	}
	readPolicy := cfg.ReadPolicy
	if readPolicy == nil {
		readPolicy = policy
	}

	wasDown := make([]bool, nBS)
	isDown := make([]bool, nBS)
	for p := 0; p < nPeriods; p++ {
		for b := 0; b < nBS; b++ {
			isDown[b] = down(p, cluster.StorageNodeID(b))
		}
		// Evacuate newly-crashed BSs before measuring: their segments are
		// unreachable and must be re-homed on the healthy survivors.
		for b := 0; b < nBS; b++ {
			if !isDown[b] || wasDown[b] {
				continue
			}
			failed := cluster.StorageNodeID(b)
			orphans := placement.SegmentsOn(failed)
			FailoverExcluding(placement, segTraffic, p, failed, fpol, rng,
				func(id cluster.StorageNodeID) bool { return isDown[id] })
			for _, seg := range orphans {
				to := placement.BSOf(seg)
				if to == failed {
					continue // no healthy survivor could take it
				}
				res.Migrations = append(res.Migrations, Migration{
					Period: p, AtSec: p * periodSec(cfg), Seg: seg, From: failed, To: to, Failover: true,
				})
			}
		}

		// Measure this period under the current placement.
		bsW := make([]float64, nBS)
		bsR := make([]float64, nBS)
		for seg, rows := range segTraffic {
			b := placement.BSOf(cluster.SegmentID(seg))
			bsW[b] += rows[p].W
			bsR[b] += rows[p].R
		}
		res.WriteCoV = append(res.WriteCoV, stats.NormCoV(bsW))
		res.ReadCoV = append(res.ReadCoV, stats.NormCoV(bsR))
		for b := 0; b < nBS; b++ {
			bsHistW[b] = append(bsHistW[b], bsW[b])
			bsHistR[b] = append(bsHistR[b], bsR[b])
		}

		res.Migrations = append(res.Migrations,
			balancePass(placement, segTraffic, p, bsW, bsHistW, policy, cfg, false, isDown)...)
		if cfg.Mode == WriteThenRead {
			res.Migrations = append(res.Migrations,
				balancePass(placement, segTraffic, p, bsR, bsHistR, readPolicy, cfg, true, isDown)...)
		}
		copy(wasDown, isDown)
	}
	return res
}

// periodSec returns the configured period length for AtSec stamping.
func periodSec(cfg Config) int {
	if cfg.PeriodSec > 0 {
		return cfg.PeriodSec
	}
	return 1
}

// balancePass runs one Algorithm 1 sweep over the metric in bsLoad (write
// bytes, or read bytes for the read pass), mutating placement. A non-nil
// isDown excludes crashed BSs from both sides of every move.
func balancePass(placement *cluster.SegmentMap, segTraffic [][]RW, period int,
	bsLoad []float64, bsHist [][]float64, policy ImporterPolicy, cfg Config, readPass bool,
	isDown []bool) []Migration {

	nBS := len(bsLoad)
	avg := stats.Mean(bsLoad)
	if !(avg > 0) {
		return nil
	}
	metric := func(seg int) float64 {
		if readPass {
			return segTraffic[seg][period].R
		}
		return segTraffic[seg][period].W
	}

	var out []Migration
	for b := 0; b < nBS; b++ {
		if isDown != nil && isDown[b] {
			continue // a crashed BS exports nothing (it was evacuated)
		}
		if bsLoad[b] < cfg.ExporterThreshold*avg {
			continue
		}
		// sorted_segs <- sort({ws(k)}, descending)
		segs := placement.SegmentsOn(cluster.StorageNodeID(b))
		sort.Slice(segs, func(i, j int) bool { return metric(int(segs[i])) > metric(int(segs[j])) })

		// Movability: a segment may move only if placing it on the coldest
		// BS genuinely reduces the imbalance; otherwise it is pinned (the
		// hotspot would just relocate). A BS hot only because of pinned
		// segments is skipped — migration cannot fix it, only churn.
		margin := cfg.ImprovementMargin
		if margin <= 0 || margin > 1 {
			margin = 0.9
		}
		minLoad := math.Inf(1)
		for ob := 0; ob < nBS; ob++ {
			if isDown != nil && isDown[ob] {
				continue // the coldest *healthy* BS is what matters
			}
			if ob != b && bsLoad[ob] < minLoad {
				minLoad = bsLoad[ob]
			}
		}
		movable := func(v float64) bool { return minLoad+v <= margin*bsLoad[b] }
		var pinned float64
		for _, seg := range segs {
			if v := metric(int(seg)); !movable(v) {
				pinned += v
			}
		}
		if bsLoad[b]-pinned < cfg.ExporterThreshold*avg {
			continue
		}

		// mig_segs <- top-x movable segments whose summed traffic exceeds
		// 0.2*avg.
		var moving []cluster.SegmentID
		var sum float64
		for _, seg := range segs {
			if sum >= cfg.MigrateFraction*avg {
				break
			}
			v := metric(int(seg))
			if v <= 0 {
				break
			}
			if !movable(v) {
				continue // pinned: would just relocate the hotspot
			}
			moving = append(moving, seg)
			sum += v
		}
		if len(moving) == 0 {
			continue
		}
		var importer cluster.StorageNodeID
		if pa, ok := policy.(PlacementAware); ok {
			importer = pa.SelectPlaced(placement, segTraffic, period, readPass, cluster.StorageNodeID(b))
		} else {
			importer = policy.Select(bsHist, period, cluster.StorageNodeID(b))
		}
		if importer < 0 || int(importer) >= nBS || importer == cluster.StorageNodeID(b) {
			continue
		}
		if isDown != nil && isDown[importer] {
			// The policy nominated a casualty; fall back to the least-loaded
			// healthy BS so the exporter still sheds its bundle.
			importer = -1
			for ob := 0; ob < nBS; ob++ {
				if ob == b || isDown[ob] {
					continue
				}
				if importer < 0 || bsLoad[ob] < bsLoad[importer] {
					importer = cluster.StorageNodeID(ob)
				}
			}
			if importer < 0 {
				continue // no healthy importer exists
			}
		}
		for _, seg := range moving {
			placement.Move(seg, importer)
			out = append(out, Migration{
				Period: period, AtSec: period * periodSec(cfg), Seg: seg,
				From: cluster.StorageNodeID(b), To: importer, Read: readPass,
			})
		}
		// Keep the in-period accounting coherent so later exporters see the
		// importer's new load (Algorithm 1 line 8).
		bsLoad[importer] += sum
		bsLoad[b] -= sum
	}
	return out
}
