// Package balancer implements the inter-BlockServer load balancer of §6 and
// Appendix A: a periodic heuristic that detects exporters (BlockServers
// whose traffic exceeds 1.2x the cluster average), peels off their hottest
// segments until roughly 0.2x the average traffic has moved, and ships them
// to an importer chosen by a pluggable policy. The five importer-selection
// policies of Figure 4(b) are provided, together with the migration metrics
// the paper uses (frequent-migration proportion, normalized migration
// intervals) and the Write-Only / Write-then-Read variants of Figure 5(c).
package balancer

import (
	"fmt"
	"math"
	"sort"

	"ebslab/internal/cluster"
	"ebslab/internal/stats"
)

// RW is one period's read/write byte totals for a segment.
type RW struct {
	R float64
	W float64
}

// Total returns R+W.
func (x RW) Total() float64 { return x.R + x.W }

// Config tunes Algorithm 1.
type Config struct {
	// ExporterThreshold is the multiple of the cluster average at which a
	// BlockServer becomes an exporter (1.2 in the paper).
	ExporterThreshold float64
	// MigrateFraction is the share of average traffic each exporter sheds
	// per period (0.2 in the paper).
	MigrateFraction float64
	// ImprovementMargin gates segment movability: a segment is movable only
	// if landing it on the currently coldest BS leaves that BS below
	// ImprovementMargin x the exporter's load — otherwise the move merely
	// relocates the hotspot and ping-pongs forever. Algorithm 1 leaves this
	// implicit; production balancers bound the bundle. Default 0.9.
	ImprovementMargin float64
	// Mode selects which traffic the balancer acts on.
	Mode Mode
	// ReadPolicy, when non-nil, selects importers for the read-balancing
	// pass of WriteThenRead; otherwise the write-pass policy is reused
	// (fed with read history).
	ReadPolicy ImporterPolicy
}

// Mode selects the migration algorithm of Figure 5(c).
type Mode uint8

// Balancing modes.
const (
	// WriteOnly migrates based solely on write traffic (production default,
	// §2.2).
	WriteOnly Mode = iota
	// WriteThenRead first balances write traffic, then runs a second pass
	// balancing read traffic.
	WriteThenRead
)

func (m Mode) String() string {
	if m == WriteOnly {
		return "write-only"
	}
	return "write-then-read"
}

// DefaultConfig matches Appendix A.
func DefaultConfig() Config {
	return Config{ExporterThreshold: 1.2, MigrateFraction: 0.2, ImprovementMargin: 0.9, Mode: WriteOnly}
}

// Migration records one segment move.
type Migration struct {
	Period int
	Seg    cluster.SegmentID
	From   cluster.StorageNodeID
	To     cluster.StorageNodeID
	// Read reports whether the move came from the read-balancing pass.
	Read bool
}

// Result summarizes one balancer run.
type Result struct {
	Policy     string
	Mode       Mode
	Migrations []Migration
	// WriteCoV[p] and ReadCoV[p] are the normalized CoVs of per-BS write and
	// read traffic in period p, measured under the placement in effect
	// during that period (i.e. after the previous period's migrations).
	WriteCoV []float64
	ReadCoV  []float64
}

// Run simulates the balancer over the per-segment period traffic matrix
// (indexed [segment][period], as produced by workload.SegmentPeriodMatrix).
// The starting placement is cloned; the caller's map is not mutated.
func Run(seg2bs *cluster.SegmentMap, segTraffic [][]RW, policy ImporterPolicy, cfg Config) Result {
	if len(segTraffic) != seg2bs.Len() {
		panic(fmt.Sprintf("balancer: %d traffic rows for %d segments", len(segTraffic), seg2bs.Len()))
	}
	if cfg.ExporterThreshold <= 1 {
		cfg.ExporterThreshold = 1.2
	}
	if cfg.MigrateFraction <= 0 {
		cfg.MigrateFraction = 0.2
	}
	placement := seg2bs.Clone()
	nBS := placement.NumBS()
	var nPeriods int
	if len(segTraffic) > 0 {
		nPeriods = len(segTraffic[0])
	}
	res := Result{Policy: policy.Name(), Mode: cfg.Mode}

	// bsHistW/bsHistR: per-BS traffic per period under the placement in
	// effect at each period — the history importer policies consult.
	bsHistW := make([][]float64, nBS)
	bsHistR := make([][]float64, nBS)
	for b := 0; b < nBS; b++ {
		bsHistW[b] = make([]float64, 0, nPeriods)
		bsHistR[b] = make([]float64, 0, nPeriods)
	}
	readPolicy := cfg.ReadPolicy
	if readPolicy == nil {
		readPolicy = policy
	}

	for p := 0; p < nPeriods; p++ {
		// Measure this period under the current placement.
		bsW := make([]float64, nBS)
		bsR := make([]float64, nBS)
		for seg, rows := range segTraffic {
			b := placement.BSOf(cluster.SegmentID(seg))
			bsW[b] += rows[p].W
			bsR[b] += rows[p].R
		}
		res.WriteCoV = append(res.WriteCoV, stats.NormCoV(bsW))
		res.ReadCoV = append(res.ReadCoV, stats.NormCoV(bsR))
		for b := 0; b < nBS; b++ {
			bsHistW[b] = append(bsHistW[b], bsW[b])
			bsHistR[b] = append(bsHistR[b], bsR[b])
		}

		// Write-balancing pass (Algorithm 1).
		res.Migrations = append(res.Migrations,
			balancePass(placement, segTraffic, p, bsW, bsHistW, policy, cfg, false)...)
		if cfg.Mode == WriteThenRead {
			res.Migrations = append(res.Migrations,
				balancePass(placement, segTraffic, p, bsR, bsHistR, readPolicy, cfg, true)...)
		}
	}
	return res
}

// balancePass runs one Algorithm 1 sweep over the metric in bsLoad (write
// bytes, or read bytes for the read pass), mutating placement.
func balancePass(placement *cluster.SegmentMap, segTraffic [][]RW, period int,
	bsLoad []float64, bsHist [][]float64, policy ImporterPolicy, cfg Config, readPass bool) []Migration {

	nBS := len(bsLoad)
	avg := stats.Mean(bsLoad)
	if !(avg > 0) {
		return nil
	}
	metric := func(seg int) float64 {
		if readPass {
			return segTraffic[seg][period].R
		}
		return segTraffic[seg][period].W
	}

	var out []Migration
	for b := 0; b < nBS; b++ {
		if bsLoad[b] < cfg.ExporterThreshold*avg {
			continue
		}
		// sorted_segs <- sort({ws(k)}, descending)
		segs := placement.SegmentsOn(cluster.StorageNodeID(b))
		sort.Slice(segs, func(i, j int) bool { return metric(int(segs[i])) > metric(int(segs[j])) })

		// Movability: a segment may move only if placing it on the coldest
		// BS genuinely reduces the imbalance; otherwise it is pinned (the
		// hotspot would just relocate). A BS hot only because of pinned
		// segments is skipped — migration cannot fix it, only churn.
		margin := cfg.ImprovementMargin
		if margin <= 0 || margin > 1 {
			margin = 0.9
		}
		minLoad := math.Inf(1)
		for ob := 0; ob < nBS; ob++ {
			if ob != b && bsLoad[ob] < minLoad {
				minLoad = bsLoad[ob]
			}
		}
		movable := func(v float64) bool { return minLoad+v <= margin*bsLoad[b] }
		var pinned float64
		for _, seg := range segs {
			if v := metric(int(seg)); !movable(v) {
				pinned += v
			}
		}
		if bsLoad[b]-pinned < cfg.ExporterThreshold*avg {
			continue
		}

		// mig_segs <- top-x movable segments whose summed traffic exceeds
		// 0.2*avg.
		var moving []cluster.SegmentID
		var sum float64
		for _, seg := range segs {
			if sum >= cfg.MigrateFraction*avg {
				break
			}
			v := metric(int(seg))
			if v <= 0 {
				break
			}
			if !movable(v) {
				continue // pinned: would just relocate the hotspot
			}
			moving = append(moving, seg)
			sum += v
		}
		if len(moving) == 0 {
			continue
		}
		var importer cluster.StorageNodeID
		if pa, ok := policy.(PlacementAware); ok {
			importer = pa.SelectPlaced(placement, segTraffic, period, readPass, cluster.StorageNodeID(b))
		} else {
			importer = policy.Select(bsHist, period, cluster.StorageNodeID(b))
		}
		if importer < 0 || int(importer) >= nBS || importer == cluster.StorageNodeID(b) {
			continue
		}
		for _, seg := range moving {
			placement.Move(seg, importer)
			out = append(out, Migration{
				Period: period, Seg: seg,
				From: cluster.StorageNodeID(b), To: importer, Read: readPass,
			})
		}
		// Keep the in-period accounting coherent so later exporters see the
		// importer's new load (Algorithm 1 line 8).
		bsLoad[importer] += sum
		bsLoad[b] -= sum
	}
	return out
}
