package diting

import (
	"math/rand"
	"reflect"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// synthRecord builds a record shaped like engine output for a small VD set.
func synthRecord(rng *rand.Rand, id uint64, vd int, timeUS int64) trace.Record {
	rec := trace.Record{
		TraceID: id,
		TimeUS:  timeUS,
		Op:      trace.Op(rng.Intn(2)),
		Size:    int32((rng.Intn(64) + 1) * 4096),
		Offset:  rng.Int63n(1 << 30),
		DC:      cluster.DCID(vd % 2),
		Node:    cluster.NodeID(vd % 5),
		User:    cluster.UserID(vd % 3),
		VM:      cluster.VMID(vd),
		VD:      cluster.VDID(vd),
		QP:      cluster.QPID(vd*4 + rng.Intn(4)),
		WT:      int8(rng.Intn(8)),
		Storage: cluster.StorageNodeID(vd % 7),
		Segment: cluster.SegmentID(vd*16 + rng.Intn(16)),
	}
	for s := range rec.Latency {
		rec.Latency[s] = float32(rng.Float64() * 500)
	}
	return rec
}

// TestEmitBatchEquivalence streams the same synthetic workload through
// Observe and through EmitBatch at several batch capacities (forcing flush
// boundaries mid-second and mid-VD) and requires identical records and
// metric rows.
func TestEmitBatchEquivalence(t *testing.T) {
	const sampleEvery = 4
	makeRecords := func() [][]trace.Record {
		rng := rand.New(rand.NewSource(7))
		var perVD [][]trace.Record
		for vd := 0; vd < 6; vd++ {
			var recs []trace.Record
			base := uint64(vd+1) << 40
			n := 200 + rng.Intn(200)
			timeUS := int64(0)
			for i := 0; i < n; i++ {
				timeUS += int64(rng.Intn(40_000))
				recs = append(recs, synthRecord(rng, base+uint64(i+1), vd, timeUS))
			}
			perVD = append(perVD, recs)
		}
		return perVD
	}

	want := New(sampleEvery)
	for _, recs := range makeRecords() {
		for _, rec := range recs {
			want.Observe(rec)
		}
	}

	for _, capacity := range []int{1, 3, 64, trace.DefaultBatchCap} {
		got := Acquire(sampleEvery)
		b := trace.GetBatch(capacity)
		for _, recs := range makeRecords() {
			for i := range recs {
				b.Append(&recs[i])
				if b.Full() {
					got.EmitBatch(b)
					b.Reset()
				}
			}
		}
		got.EmitBatch(b)
		b.Release()

		if !reflect.DeepEqual(got.Records(), want.Records()) {
			t.Fatalf("cap %d: sampled records differ (%d vs %d)", capacity, len(got.Records()), len(want.Records()))
		}
		if !reflect.DeepEqual(got.ComputeRows(), want.ComputeRows()) {
			t.Fatalf("cap %d: compute rows differ", capacity)
		}
		if !reflect.DeepEqual(got.StorageRows(), want.StorageRows()) {
			t.Fatalf("cap %d: storage rows differ", capacity)
		}
		got.Release()
	}
}

// TestMergeCopiesAccums verifies Merge output survives shard Release: the
// regression this guards is Merge aliasing shard-owned accumulators that a
// pooled tracer then recycles.
func TestMergeCopiesAccums(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sh1, sh2 := Acquire(1), Acquire(1)
	for i := 0; i < 300; i++ {
		sh1.Observe(synthRecord(rng, uint64(i+1), 0, int64(i)*3000))
		sh2.Observe(synthRecord(rng, uint64(i+1)<<32, 1, int64(i)*3000))
	}
	merged := Merge(1, sh1, sh2)
	wantCompute := merged.ComputeRows()
	wantStorage := merged.StorageRows()
	wantRecords := append([]trace.Record(nil), merged.Records()...)

	// Recycle the shards and dirty their successors' slabs.
	sh1.Release()
	sh2.Release()
	d := Acquire(1)
	for i := 0; i < 300; i++ {
		d.Observe(synthRecord(rng, uint64(i+977), 2, int64(i)*1500))
	}

	if !reflect.DeepEqual(merged.ComputeRows(), wantCompute) {
		t.Fatal("merged compute rows changed after shard release+reuse")
	}
	if !reflect.DeepEqual(merged.StorageRows(), wantStorage) {
		t.Fatal("merged storage rows changed after shard release+reuse")
	}
	if !reflect.DeepEqual(merged.Records(), wantRecords) {
		t.Fatal("merged records changed after shard release+reuse")
	}
	d.Release()
}

// TestDetachRecords verifies detached records survive the tracer's release
// and reuse.
func TestDetachRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := Acquire(1)
	for i := 0; i < 100; i++ {
		tr.Observe(synthRecord(rng, uint64(i+1), 3, int64(i)*9000))
	}
	recs := tr.DetachRecords()
	snapshot := append([]trace.Record(nil), recs...)
	tr.Release()
	tr2 := Acquire(1)
	for i := 0; i < 100; i++ {
		tr2.Observe(synthRecord(rng, uint64(i+1), 4, int64(i)*9000))
	}
	if !reflect.DeepEqual(recs, snapshot) {
		t.Fatal("detached records mutated by tracer reuse")
	}
	tr2.Release()
}
