package diting

import (
	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

// qpMemoEnt and segMemoEnt memoize accumulator pointers for the second
// currently being ingested, replacing two map lookups per IO with a short
// linear scan: a virtual disk touches only a handful of queue pairs and
// segments within one second, and engine batches arrive in time order.
type qpMemoEnt struct {
	qp cluster.QPID
	a  *accum
}

type segMemoEnt struct {
	seg cluster.SegmentID
	a   *accum
}

// maxMemoEnts bounds the memo scan; pathological seconds fall back to the
// maps, which remain the source of truth.
const maxMemoEnts = 32

// EmitBatch ingests a columnar batch of completed IOs: the batched form of
// Observe, with identical semantics — rows are folded per record in batch
// order, so float accumulation order (and therefore every output bit)
// matches the record-at-a-time path.
func (t *Tracer) EmitBatch(b *trace.Batch) {
	n := b.Len()
	for i := 0; i < n; i++ {
		if t.sampled(b.TraceID[i]) {
			t.records = append(t.records, b.Record(i))
		}
		sec := int32(b.TimeUS[i] / 1_000_000)
		if sec != t.memoSec {
			t.memoSec = sec
			t.qpMemo = t.qpMemo[:0]
			t.segMemo = t.segMemo[:0]
		}
		bytes := float64(b.Size[i])

		qp := b.QP[i]
		var ca *accum
		for j := range t.qpMemo {
			if t.qpMemo[j].qp == qp {
				ca = t.qpMemo[j].a
				break
			}
		}
		if ca == nil {
			ck := computeKey{sec: sec, qp: qp}
			ca = t.compute[ck]
			if ca == nil {
				ca = t.alloc()
				ca.row = trace.MetricRow{
					Domain: trace.DomainCompute, Sec: sec, DC: b.DC[i],
					User: b.User[i], VM: b.VM[i], VD: b.VD[i],
					Node: b.Node[i], QP: qp, WT: b.WT[i],
				}
				t.compute[ck] = ca
			}
			if len(t.qpMemo) < maxMemoEnts {
				t.qpMemo = append(t.qpMemo, qpMemoEnt{qp: qp, a: ca})
			}
		}
		addDirectional(&ca.row, b.Op[i], bytes)

		seg := b.Segment[i]
		var sa *accum
		for j := range t.segMemo {
			if t.segMemo[j].seg == seg {
				sa = t.segMemo[j].a
				break
			}
		}
		if sa == nil {
			sk := storageKey{sec: sec, seg: seg}
			sa = t.storage[sk]
			if sa == nil {
				sa = t.alloc()
				sa.row = trace.MetricRow{
					Domain: trace.DomainStorage, Sec: sec, DC: b.DC[i],
					User: b.User[i], VM: b.VM[i], VD: b.VD[i],
					Storage: b.Storage[i], Segment: seg,
				}
				t.storage[sk] = sa
			}
			if len(t.segMemo) < maxMemoEnts {
				t.segMemo = append(t.segMemo, segMemoEnt{seg: seg, a: sa})
			}
		}
		addDirectional(&sa.row, b.Op[i], bytes)
	}
}
