package diting

import (
	"reflect"
	"testing"

	"ebslab/internal/cluster"
	"ebslab/internal/trace"
)

func TestObserveAggregatesPerSecond(t *testing.T) {
	tr := New(1)
	tr.Observe(trace.Record{TraceID: 1, TimeUS: 100, Op: trace.OpWrite, Size: 4096, QP: 7, Segment: 3})
	tr.Observe(trace.Record{TraceID: 2, TimeUS: 999_999, Op: trace.OpWrite, Size: 4096, QP: 7, Segment: 3})
	tr.Observe(trace.Record{TraceID: 3, TimeUS: 1_000_000, Op: trace.OpRead, Size: 8192, QP: 7, Segment: 3})

	rows := tr.ComputeRows()
	if len(rows) != 2 {
		t.Fatalf("compute rows = %d, want 2 (two seconds)", len(rows))
	}
	if rows[0].WriteBps != 8192 || rows[0].WriteIOPS != 2 || rows[0].ReadBps != 0 {
		t.Fatalf("second 0 row = %+v", rows[0])
	}
	if rows[1].ReadBps != 8192 || rows[1].ReadIOPS != 1 {
		t.Fatalf("second 1 row = %+v", rows[1])
	}
	srows := tr.StorageRows()
	if len(srows) != 2 || srows[0].Segment != 3 {
		t.Fatalf("storage rows = %+v", srows)
	}
	if len(tr.Records()) != 3 {
		t.Fatalf("sample-everything tracer kept %d records", len(tr.Records()))
	}
}

func TestSamplingThinsRecordsButNotMetrics(t *testing.T) {
	tr := New(100)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Observe(trace.Record{TraceID: tr.NextTraceID(), TimeUS: 5, Op: trace.OpWrite, Size: 512, QP: 1, Segment: 1})
	}
	kept := len(tr.Records())
	if kept == 0 || kept > n/50 {
		t.Fatalf("kept %d records out of %d at 1/100 sampling", kept, n)
	}
	rows := tr.ComputeRows()
	if len(rows) != 1 || rows[0].WriteIOPS != n {
		t.Fatalf("metric rows must count every IO: %+v", rows)
	}
}

func TestDistinctQPsGetDistinctRows(t *testing.T) {
	tr := New(1)
	tr.Observe(trace.Record{TraceID: 1, TimeUS: 0, Op: trace.OpRead, Size: 1024, QP: 1, Segment: 5})
	tr.Observe(trace.Record{TraceID: 2, TimeUS: 0, Op: trace.OpRead, Size: 2048, QP: 2, Segment: 5})
	rows := tr.ComputeRows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].QP != 1 || rows[1].QP != 2 {
		t.Fatalf("rows not sorted by QP: %+v", rows)
	}
	// Same segment -> one storage row with the sum.
	srows := tr.StorageRows()
	if len(srows) != 1 || srows[0].ReadBps != 3072 {
		t.Fatalf("storage rows = %+v", srows)
	}
}

// TestMergeMatchesSingleTracer feeds one stream whole into a single tracer
// and split across shards (per-VD, as the engine shards), and requires the
// merged output to match the single tracer's rows exactly, with records in
// canonical (time, VD) order and renumbered 1..N.
func TestMergeMatchesSingleTracer(t *testing.T) {
	mkRec := func(vd int, seq int, timeUS int64, op trace.Op, size int32) trace.Record {
		return trace.Record{
			TimeUS: timeUS, Op: op, Size: size,
			VD: cluster.VDID(vd), QP: cluster.QPID(vd), Segment: cluster.SegmentID(vd),
		}
	}
	// Three VDs with interleaved timestamps, including duplicates.
	streams := map[int][]trace.Record{
		0: {mkRec(0, 0, 10, trace.OpRead, 4096), mkRec(0, 1, 30, trace.OpWrite, 8192), mkRec(0, 2, 30, trace.OpWrite, 512)},
		1: {mkRec(1, 0, 5, trace.OpWrite, 1024), mkRec(1, 1, 30, trace.OpRead, 2048)},
		2: {mkRec(2, 0, 30, trace.OpRead, 4096), mkRec(2, 1, 50, trace.OpWrite, 4096)},
	}
	base := func(vd int) uint64 { return (uint64(vd) + 1) << 40 }

	observe := func(tr *Tracer, vd int) {
		tr.StartStream(base(vd))
		for _, r := range streams[vd] {
			r.TraceID = tr.NextTraceID()
			tr.Observe(r)
		}
	}

	single := New(1)
	for vd := 0; vd < 3; vd++ {
		observe(single, vd)
	}
	// Shard assignment intentionally scrambled: VD 2 and VD 0 share a
	// shard, VD 1 sits alone, processed out of VD order.
	shardA, shardB := New(1), New(1)
	observe(shardA, 2)
	observe(shardB, 1)
	observe(shardA, 0)
	merged := Merge(1, shardA, shardB)

	wantOrder := []struct {
		timeUS int64
		vd     cluster.VDID
	}{{5, 1}, {10, 0}, {30, 0}, {30, 0}, {30, 1}, {30, 2}, {50, 2}}
	recs := merged.Records()
	if len(recs) != len(wantOrder) {
		t.Fatalf("merged %d records, want %d", len(recs), len(wantOrder))
	}
	for i, w := range wantOrder {
		if recs[i].TraceID != uint64(i+1) {
			t.Fatalf("record %d: trace ID %d, want %d", i, recs[i].TraceID, i+1)
		}
		if recs[i].TimeUS != w.timeUS || recs[i].VD != w.vd {
			t.Fatalf("record %d: (%d, vd%d), want (%d, vd%d)", i, recs[i].TimeUS, recs[i].VD, w.timeUS, w.vd)
		}
	}
	// Same-VD same-time records must preserve generation order (8192 then
	// 512 for VD 0 at t=30).
	if recs[2].Size != 8192 || recs[3].Size != 512 {
		t.Fatalf("generation order lost within VD 0: %d then %d", recs[2].Size, recs[3].Size)
	}

	wantC, gotC := single.ComputeRows(), merged.ComputeRows()
	if !reflect.DeepEqual(wantC, gotC) {
		t.Fatalf("compute rows differ:\nwant %+v\ngot  %+v", wantC, gotC)
	}
	wantS, gotS := single.StorageRows(), merged.StorageRows()
	if !reflect.DeepEqual(wantS, gotS) {
		t.Fatalf("storage rows differ:\nwant %+v\ngot  %+v", wantS, gotS)
	}
}

// TestMergeSumsCollidingKeys covers the general contract: two shards that
// touched the same (sec, qp) key merge into one row with summed rates.
func TestMergeSumsCollidingKeys(t *testing.T) {
	a, b := New(1), New(1)
	a.Observe(trace.Record{TraceID: 1, TimeUS: 0, Op: trace.OpRead, Size: 1024, QP: 9, Segment: 4})
	b.Observe(trace.Record{TraceID: 2, TimeUS: 100, Op: trace.OpRead, Size: 2048, QP: 9, Segment: 4})
	rows := Merge(1, a, b).ComputeRows()
	if len(rows) != 1 || rows[0].ReadBps != 3072 || rows[0].ReadIOPS != 2 {
		t.Fatalf("merged rows = %+v", rows)
	}
}

func TestStartStreamOffsetsIDs(t *testing.T) {
	tr := New(1)
	tr.StartStream(1 << 40)
	if id := tr.NextTraceID(); id != (1<<40)+1 {
		t.Fatalf("first ID after StartStream = %d", id)
	}
}

func TestNextTraceIDUnique(t *testing.T) {
	tr := New(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.NextTraceID()
		if seen[id] {
			t.Fatal("duplicate trace ID")
		}
		seen[id] = true
	}
}
