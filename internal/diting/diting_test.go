package diting

import (
	"testing"

	"ebslab/internal/trace"
)

func TestObserveAggregatesPerSecond(t *testing.T) {
	tr := New(1)
	tr.Observe(trace.Record{TraceID: 1, TimeUS: 100, Op: trace.OpWrite, Size: 4096, QP: 7, Segment: 3})
	tr.Observe(trace.Record{TraceID: 2, TimeUS: 999_999, Op: trace.OpWrite, Size: 4096, QP: 7, Segment: 3})
	tr.Observe(trace.Record{TraceID: 3, TimeUS: 1_000_000, Op: trace.OpRead, Size: 8192, QP: 7, Segment: 3})

	rows := tr.ComputeRows()
	if len(rows) != 2 {
		t.Fatalf("compute rows = %d, want 2 (two seconds)", len(rows))
	}
	if rows[0].WriteBps != 8192 || rows[0].WriteIOPS != 2 || rows[0].ReadBps != 0 {
		t.Fatalf("second 0 row = %+v", rows[0])
	}
	if rows[1].ReadBps != 8192 || rows[1].ReadIOPS != 1 {
		t.Fatalf("second 1 row = %+v", rows[1])
	}
	srows := tr.StorageRows()
	if len(srows) != 2 || srows[0].Segment != 3 {
		t.Fatalf("storage rows = %+v", srows)
	}
	if len(tr.Records()) != 3 {
		t.Fatalf("sample-everything tracer kept %d records", len(tr.Records()))
	}
}

func TestSamplingThinsRecordsButNotMetrics(t *testing.T) {
	tr := New(100)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Observe(trace.Record{TraceID: tr.NextTraceID(), TimeUS: 5, Op: trace.OpWrite, Size: 512, QP: 1, Segment: 1})
	}
	kept := len(tr.Records())
	if kept == 0 || kept > n/50 {
		t.Fatalf("kept %d records out of %d at 1/100 sampling", kept, n)
	}
	rows := tr.ComputeRows()
	if len(rows) != 1 || rows[0].WriteIOPS != n {
		t.Fatalf("metric rows must count every IO: %+v", rows)
	}
}

func TestDistinctQPsGetDistinctRows(t *testing.T) {
	tr := New(1)
	tr.Observe(trace.Record{TraceID: 1, TimeUS: 0, Op: trace.OpRead, Size: 1024, QP: 1, Segment: 5})
	tr.Observe(trace.Record{TraceID: 2, TimeUS: 0, Op: trace.OpRead, Size: 2048, QP: 2, Segment: 5})
	rows := tr.ComputeRows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].QP != 1 || rows[1].QP != 2 {
		t.Fatalf("rows not sorted by QP: %+v", rows)
	}
	// Same segment -> one storage row with the sum.
	srows := tr.StorageRows()
	if len(srows) != 1 || srows[0].ReadBps != 3072 {
		t.Fatalf("storage rows = %+v", srows)
	}
}

func TestNextTraceIDUnique(t *testing.T) {
	tr := New(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.NextTraceID()
		if seen[id] {
			t.Fatal("duplicate trace ID")
		}
		seen[id] = true
	}
}
